package bench

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/dta"
)

// Dijkstra parameters (Table 1: 10 nodes).
const (
	DijkstraNodes   = 10
	DijkstraRepeats = 24
	dijkstraINF     = 0x7FFFFFFF
)

// Dijkstra returns the all-pairs shortest-path benchmark: an array-based
// Dijkstra run from every source of a complete weighted 10-node graph,
// repeated to match Table 1's kernel length. The output is the 10x10
// distance matrix; the metric is the percentage of node pairs whose
// minimum distance is wrong.
func Dijkstra() *Benchmark {
	return &Benchmark{
		Name:       "dijkstra",
		MetricName: "mismatch in min. distance",
		// Distance compares involve small 16-bit-ish magnitudes.
		Profile:      dta.Profile{circuit.UnitCompare: "u16"},
		PaperKCycles: 984,
		OutSymbol:    "outd",
		OutWords:     DijkstraNodes * DijkstraNodes,
		Metric:       MismatchPct,
		QualityName:  "path-cost accuracy",
		Quality:      func(int64) QualityFunc { return PathCostQuality },
		Build:        buildDijkstra,
	}
}

// goldenDijkstra mirrors the kernel: INF sentinel, strict unsigned
// less-than in both the min scan and the relaxation, zero-weight entries
// meaning "no edge".
func goldenDijkstra(adj []uint32) []uint32 {
	n := DijkstraNodes
	out := make([]uint32, n*n)
	for src := 0; src < n; src++ {
		dist := make([]uint32, n)
		vis := make([]bool, n)
		for j := range dist {
			dist[j] = dijkstraINF
		}
		dist[src] = 0
		for round := 0; round < n; round++ {
			best := uint32(dijkstraINF)
			bestj := 0
			for j := 0; j < n; j++ {
				if !vis[j] && dist[j] < best {
					best = dist[j]
					bestj = j
				}
			}
			vis[bestj] = true
			if best == dijkstraINF {
				continue
			}
			for j := 0; j < n; j++ {
				w := adj[bestj*n+j]
				if w == 0 {
					continue
				}
				if nd := w + best; nd < dist[j] {
					dist[j] = nd
				}
			}
		}
		copy(out[src*n:], dist)
	}
	return out
}

func buildDijkstra(seed int64) (string, []uint32, error) {
	r := rng(seed)
	n := DijkstraNodes
	adj := make([]uint32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				adj[i*n+j] = uint32(r.Intn(100) + 1)
			}
		}
	}
	want := goldenDijkstra(adj)

	src := fmt.Sprintf(`
; all-pairs Dijkstra on a complete %d-node graph, repeated %d times
	l.movhi r1,hi(adj)
	l.ori   r1,r1,lo(adj)
	l.movhi r2,hi(outd)
	l.ori   r2,r2,lo(outd)
	l.movhi r3,hi(dist)
	l.ori   r3,r3,lo(dist)
	l.movhi r4,hi(vis)
	l.ori   r4,r4,lo(vis)
	l.sys 1
	l.addi  r6,r0,0         ; repeat counter
rep_loop:
	l.addi  r5,r0,0         ; source node
src_loop:
	; init dist = INF, vis = 0
	l.addi  r8,r0,0
init_loop:
	l.slli  r12,r8,2
	l.add   r13,r3,r12
	l.movhi r14,0x7fff
	l.ori   r14,r14,0xffff
	l.sw    0(r13),r14
	l.add   r13,r4,r12
	l.sw    0(r13),r0
	l.addi  r8,r8,1
	l.sfltsi r8,%d
	l.bf    init_loop
	l.slli  r12,r5,2
	l.add   r13,r3,r12
	l.sw    0(r13),r0       ; dist[src] = 0
	l.addi  r7,r0,0         ; round
round_loop:
	; scan for the unvisited minimum
	l.movhi r10,0x7fff
	l.ori   r10,r10,0xffff  ; best = INF
	l.addi  r11,r0,0        ; best node
	l.addi  r8,r0,0
scan_loop:
	l.slli  r12,r8,2
	l.add   r13,r4,r12
	l.lwz   r14,0(r13)
	l.sfnei r14,0
	l.bf    scan_next       ; already visited
	l.add   r13,r3,r12
	l.lwz   r14,0(r13)
	l.sfltu r14,r10
	l.bnf   scan_next
	l.add   r10,r14,r0
	l.add   r11,r8,r0
scan_next:
	l.addi  r8,r8,1
	l.sfltsi r8,%d
	l.bf    scan_loop
	; mark visited
	l.slli  r12,r11,2
	l.add   r13,r4,r12
	l.addi  r14,r0,1
	l.sw    0(r13),r14
	; unreachable remainder: skip relaxation
	l.movhi r14,0x7fff
	l.ori   r14,r14,0xffff
	l.sfeq  r10,r14
	l.bf    round_next
	; relax all edges out of the chosen node
	l.slli  r15,r11,5       ; bestj * 40 = (bestj<<5)+(bestj<<3)
	l.slli  r12,r11,3
	l.add   r15,r15,r12
	l.add   r15,r1,r15      ; &adj[bestj][0]
	l.addi  r8,r0,0
relax_loop:
	l.slli  r12,r8,2
	l.add   r13,r15,r12
	l.lwz   r14,0(r13)      ; w
	l.sfeqi r14,0
	l.bf    relax_next      ; no edge
	l.add   r14,r14,r10     ; nd = w + best
	l.add   r13,r3,r12
	l.lwz   r16,0(r13)
	l.sfltu r14,r16
	l.bnf   relax_next
	l.sw    0(r13),r14
relax_next:
	l.addi  r8,r8,1
	l.sfltsi r8,%d
	l.bf    relax_loop
round_next:
	l.addi  r7,r7,1
	l.sfltsi r7,%d
	l.bf    round_loop
	; copy dist into the output row
	l.slli  r12,r5,5        ; src * 40
	l.slli  r13,r5,3
	l.add   r12,r12,r13
	l.add   r12,r2,r12
	l.addi  r8,r0,0
copy_loop:
	l.slli  r13,r8,2
	l.add   r14,r3,r13
	l.lwz   r16,0(r14)
	l.add   r14,r12,r13
	l.sw    0(r14),r16
	l.addi  r8,r8,1
	l.sfltsi r8,%d
	l.bf    copy_loop
	l.addi  r5,r5,1
	l.sfltsi r5,%d
	l.bf    src_loop
	l.addi  r6,r6,1
	l.sfltsi r6,%d
	l.bf    rep_loop
	l.sys 2
	l.sys 0
.data
outd:
	.space %d
dist:
	.space %d
vis:
	.space %d
adj:
`, n, DijkstraRepeats, n, n, n, n, n, n, DijkstraRepeats,
		4*n*n, 4*n, 4*n)
	src += wordList(adj)
	return src, want, nil
}
