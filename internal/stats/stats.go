// Package stats provides small statistical helpers used throughout the
// fault-injection simulator: empirical CDFs over timing samples, online
// moment accumulators, deterministic seed fan-out for parallel Monte-Carlo
// trials, and a clipped normal sampler for supply-voltage noise.
//
// stats is a leaf of the dependency graph (stdlib only), used by
// nearly every layer: timing's CDFs, fi's samplers and hazard math,
// the mc engine's seed fan-out and Wilson-interval adaptive stopping.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ECDF is an empirical cumulative distribution function over float64
// samples. The zero value is unusable; build one with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an empirical CDF from the given samples. The input slice
// is copied and may be reused by the caller.
func NewECDF(samples []float64) *ECDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the number of samples backing the CDF.
func (e *ECDF) Len() int { return len(e.sorted) }

// P returns the empirical probability P(X <= x).
func (e *ECDF) P(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// Number of samples <= x.
	n := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(e.sorted))
}

// Exceed returns the empirical probability P(X > x), the tail used for
// timing-violation probabilities.
func (e *ECDF) Exceed(x float64) float64 { return 1 - e.P(x) }

// Quantile returns the q-quantile (0 <= q <= 1) using the nearest-rank
// method. Quantile(0) is the minimum, Quantile(1) the maximum.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return e.sorted[i]
}

// Min returns the smallest sample, or NaN when empty.
func (e *ECDF) Min() float64 { return e.Quantile(0) }

// Max returns the largest sample, or NaN when empty.
func (e *ECDF) Max() float64 { return e.Quantile(1) }

// Online accumulates mean, variance, min and max of a stream of values
// using Welford's algorithm. The zero value is ready to use.
type Online struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() uint64 { return o.n }

// Mean returns the running mean (0 when empty).
func (o *Online) Mean() float64 { return o.mean }

// Var returns the unbiased sample variance (0 for fewer than 2 samples).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest observation (0 when empty).
func (o *Online) Min() float64 {
	if o.n == 0 {
		return 0
	}
	return o.min
}

// Max returns the largest observation (0 when empty).
func (o *Online) Max() float64 {
	if o.n == 0 {
		return 0
	}
	return o.max
}

// SplitMix64 advances a 64-bit state and returns the next value of the
// SplitMix64 sequence. It is used to derive statistically independent
// sub-seeds from a master seed so that parallel Monte-Carlo trials are
// reproducible regardless of scheduling.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SubSeed deterministically derives the i-th sub-seed from a master seed.
func SubSeed(master int64, i int) int64 {
	s := uint64(master)
	// Mix the index in twice so adjacent indices diverge quickly.
	s ^= SplitMix64(&s) + uint64(i)*0x9e3779b97f4a7c15
	v := SplitMix64(&s)
	return int64(v)
}

// NewRand returns a seeded *rand.Rand. It centralizes RNG construction so
// every stochastic component of the simulator is reproducible.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// xoshiro256pp is a xoshiro256++ rand.Source64. Seeding costs four
// SplitMix64 steps instead of the ~2.5 KiB state expansion of the
// stdlib lagged-Fibonacci source, which matters when a fresh stream is
// created per Monte-Carlo trial: stdlib seeding alone costs ~14 µs, a
// large fraction of a short fault trial.
type xoshiro256pp struct{ s0, s1, s2, s3 uint64 }

// Seed (re)derives the four state words from a 64-bit seed via
// SplitMix64, the initialization recommended by the xoshiro authors.
func (x *xoshiro256pp) Seed(seed int64) {
	s := uint64(seed)
	x.s0 = SplitMix64(&s)
	x.s1 = SplitMix64(&s)
	x.s2 = SplitMix64(&s)
	x.s3 = SplitMix64(&s)
}

func rotl64(v uint64, k uint) uint64 { return v<<k | v>>(64-k) }

func (x *xoshiro256pp) Uint64() uint64 {
	r := rotl64(x.s0+x.s3, 23) + x.s0
	t := x.s1 << 17
	x.s2 ^= x.s0
	x.s3 ^= x.s1
	x.s1 ^= x.s2
	x.s0 ^= x.s3
	x.s2 ^= t
	x.s3 = rotl64(x.s3, 45)
	return r
}

func (x *xoshiro256pp) Int63() int64 { return int64(x.Uint64() >> 1) }

// NewTrialRand returns a seeded *rand.Rand over a xoshiro256++ source.
// It is the per-trial RNG constructor for Monte-Carlo fault trials,
// where a stream is built per (master seed, trial index) pair and
// stdlib seeding would dominate short trials. The stream differs from
// NewRand's for the same seed, so components whose cached artifacts
// embed NewRand-derived draws (DTA characterization) must keep NewRand.
func NewTrialRand(seed int64) *rand.Rand {
	src := &xoshiro256pp{}
	src.Seed(seed)
	return rand.New(src)
}

// ClippedNormal samples a normal distribution with the given mean and
// standard deviation, saturating at mean +/- clip*sigma. The paper clips
// supply-voltage noise at 2 sigma to avoid physically unrealistic spikes
// from the tails of the distribution; saturation (not rejection) is used,
// which places a probability atom at the clip boundaries.
func ClippedNormal(rng *rand.Rand, mean, sigma, clip float64) float64 {
	if sigma == 0 {
		return mean
	}
	x := rng.NormFloat64() * sigma
	lim := clip * sigma
	if x > lim {
		x = lim
	} else if x < -lim {
		x = -lim
	}
	return mean + x
}

// NormalCDF returns Phi(x), the standard normal cumulative distribution
// function. It is exact to full float64 precision in both tails (erfc
// avoids the cancellation that 0.5*(1+erf) suffers for x << 0).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// normalPDF is the standard normal density.
func normalPDF(x float64) float64 {
	return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
}

// NormalQuantile returns Phi^-1(p), the standard normal quantile
// (probit) function: NormalCDF(NormalQuantile(p)) == p to near machine
// precision. It is the inversion step of first-fault sampling, which
// draws supply-noise values conditioned on a timing violation instead of
// simulating cycle-by-cycle. p outside (0, 1) returns -Inf / +Inf.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Acklam's rational approximation (|eps| < 1.15e-9)...
	const (
		a1   = -3.969683028665376e+01
		a2   = 2.209460984245205e+02
		a3   = -2.759285104469687e+02
		a4   = 1.383577518672690e+02
		a5   = -3.066479806614716e+01
		a6   = 2.506628277459239e+00
		b1   = -5.447609879822406e+01
		b2   = 1.615858368580409e+02
		b3   = -1.556989798598866e+02
		b4   = 6.680131188771972e+01
		b5   = -1.328068155288572e+01
		c1   = -7.784894002430293e-03
		c2   = -3.223964580411365e-01
		c3   = -2.400758277161838e+00
		c4   = -2.549732539343734e+00
		c5   = 4.374664141464968e+00
		c6   = 2.938163982698783e+00
		d1   = 7.784695709041462e-03
		d2   = 3.224671290700398e-01
		d3   = 2.445134137142996e+00
		d4   = 3.754408661907416e+00
		plow = 0.02425
	)
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	default:
		q := p - 0.5
		r := q * q
		x = (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	}
	// ...polished by two Halley steps against the exact CDF, which takes
	// the error to a few ulps across the whole domain.
	for i := 0; i < 2; i++ {
		e := NormalCDF(x) - p
		u := e / normalPDF(x)
		x -= u / (1 + x*u/2)
	}
	return x
}

// WilsonZ95 is the normal quantile for a two-sided 95% confidence
// interval, the default for adaptive Monte-Carlo trial allocation.
const WilsonZ95 = 1.959963984540054

// Wilson returns the Wilson score confidence interval [lo, hi] for a
// binomial proportion with k successes out of n trials at normal
// quantile z. Unlike the normal approximation it stays inside [0, 1]
// and remains informative at k = 0 and k = n, which is exactly where
// the adaptive sweep engine needs it: a point with zero failures so far
// still has a non-trivial upper bound on its failure probability.
// Wilson(k, 0, z) returns the uninformative interval [0, 1].
func Wilson(k, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	nn := float64(n)
	z2 := z * z
	denom := 1 + z2/nn
	center := (p + z2/(2*nn)) / denom
	half := z * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn)) / denom
	lo = center - half
	hi = center + half
	// Pin the degenerate edges: rounding in the sqrt can otherwise leave
	// lo a few ulps above 0 at k=0 (or hi below 1 at k=n), violating the
	// invariant that the interval contains the sample proportion.
	if k == 0 || lo < 0 {
		lo = 0
	}
	if k == n || hi > 1 {
		hi = 1
	}
	return lo, hi
}

// WilsonFrac returns the Wilson score interval for the mean of a
// [0, 1]-bounded variable with observed sum over n observations,
// treating the mean as a pseudo-proportion (fractional success count).
// For a genuinely binary variable it reduces exactly to Wilson; for a
// continuous quality score in [0, 1] it is a conservative
// "Wilson-style" interval — the variance bound p(1-p) dominates the
// true variance of any [0, 1] variable with that mean — which is what
// the mc engine reports for per-point quality distributions.
// WilsonFrac(sum, 0, z) returns the uninformative interval [0, 1].
func WilsonFrac(sum float64, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	if sum < 0 {
		sum = 0
	}
	nn := float64(n)
	if sum > nn {
		sum = nn
	}
	p := sum / nn
	z2 := z * z
	denom := 1 + z2/nn
	center := (p + z2/(2*nn)) / denom
	half := z * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn)) / denom
	lo = center - half
	hi = center + half
	if sum == 0 || lo < 0 {
		lo = 0
	}
	if sum == nn || hi > 1 {
		hi = 1
	}
	return lo, hi
}

// WilsonLower returns only the lower bound of the Wilson interval.
func WilsonLower(k, n int, z float64) float64 {
	lo, _ := Wilson(k, n, z)
	return lo
}

// WilsonUpper returns only the upper bound of the Wilson interval.
func WilsonUpper(k, n int, z float64) float64 {
	_, hi := Wilson(k, n, z)
	return hi
}

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MSE returns the mean squared error between two equal-length series.
func MSE(got, want []float64) (float64, error) {
	if len(got) != len(want) {
		return 0, fmt.Errorf("stats: MSE length mismatch %d vs %d", len(got), len(want))
	}
	if len(got) == 0 {
		return 0, nil
	}
	var s float64
	for i := range got {
		d := got[i] - want[i]
		s += d * d
	}
	return s / float64(len(got)), nil
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}
