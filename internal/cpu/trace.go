// Golden-trace recording and checkpoint/restore.
//
// One fault-free execution per (program, timing config) can be recorded
// as a Trace: the per-cycle ALU activity that the fault-injection models
// consume (instruction, operands, result, write-back target, and the EX
// endpoint latch values), the data-memory store log, and periodic
// architectural checkpoints. A Monte-Carlo trial can then be decided
// against the trace alone — below the point of first failure the vast
// majority of trials never flip a bit and are bit-for-bit the golden
// run — and, when a fault does fire, full simulation resumes from the
// nearest checkpoint via Restore instead of from the reset vector. The
// replay machinery on top of this lives in internal/fi (trace-driven
// injector queries) and internal/mc (trial dispatch).

package cpu

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/isa"
)

// DefaultCheckpointInterval is the default cycle spacing between trace
// checkpoints: small enough that a fork re-executes only a tiny prefix
// before the first fault, large enough that checkpoints stay a rounding
// error next to the recorded ALU events.
const DefaultCheckpointInterval = 4096

// TraceEvent records one FI-eligible ALU cycle of a golden run: the
// instruction in EX, its operand and result values, the write-back
// target, and the EX endpoint latch values of the previous cycle. The
// (Op, Result, Prev, Flag, PrevFlag) tuple is exactly the argument list
// the core hands to Injector.Inject on that cycle; A, B and RD are not
// consumed by the injection models and exist for trace-fidelity tests
// and offline trace inspection.
type TraceEvent struct {
	Op             isa.Op
	A, B           uint32 // operand values read in EX
	RD             uint8  // write-back register (0 for compares)
	Result         uint32 // fault-free ALU result
	Prev           uint32 // EX result latch before this cycle
	Flag, PrevFlag bool   // fault-free flag outcome and its latch
}

// StoreRec records one architectural data-memory store (address, access
// size in bytes, and the unmasked source register value). Replaying the
// log up to a checkpoint's StoreIndex reconstructs data memory exactly.
type StoreRec struct {
	Addr uint32
	Size uint8
	Val  uint32
}

// Checkpoint is a complete architectural snapshot at an instruction
// boundary of the recorded run. Memory is not copied; it is recovered by
// reloading the program images and replaying Stores[:StoreIndex].
type Checkpoint struct {
	Cycles          uint64
	KernelCycles    uint64
	KernelALUCycles uint64
	Retired         uint64
	OpCounts        [isa.NumOps]uint64

	Regs         [32]uint32
	PC           uint32
	Flag         bool
	PrevEXResult uint32
	PrevFlag     bool
	LastWasLoad  bool
	LastLoadRD   uint8
	InWindow     bool

	EventIndex int // ALU trace events recorded before this point
	StoreIndex int // store-log entries recorded before this point

	Loads, Stores uint64 // memory access counters
}

// Trace is one recorded golden execution.
type Trace struct {
	Events      []TraceEvent
	Stores      []StoreRec
	Checkpoints []Checkpoint

	// Totals of the recorded run, filled by StopTrace.
	Cycles          uint64
	KernelCycles    uint64
	KernelALUCycles uint64
	Retired         uint64
	Status          Status

	CheckpointEvery uint64
}

// CheckpointBefore returns the latest checkpoint taken at or before
// trace event index k, i.e. a state from which re-execution reaches the
// k-th injector query without having issued it yet. Recording always
// takes a checkpoint at cycle 0, so the result is never nil for k >= 0.
func (t *Trace) CheckpointBefore(k int) *Checkpoint {
	i := sort.Search(len(t.Checkpoints), func(i int) bool {
		return t.Checkpoints[i].EventIndex > k
	}) - 1
	if i < 0 {
		return nil
	}
	return &t.Checkpoints[i]
}

// StartTrace attaches a fresh trace to the core and returns it; the
// following Run records every FI-eligible ALU cycle, every store, and a
// checkpoint each checkpointEvery cycles (DefaultCheckpointInterval when
// zero), starting with one at the current cycle. Recording is meant for
// golden (fault-free) runs: the recorded values are whatever the core
// executes, so an injecting run would bake its faults into the trace.
func (c *CPU) StartTrace(checkpointEvery uint64) *Trace {
	if checkpointEvery == 0 {
		checkpointEvery = DefaultCheckpointInterval
	}
	c.trace = &Trace{CheckpointEvery: checkpointEvery}
	c.nextCkpt = c.Cycles
	return c.trace
}

// StopTrace detaches the trace, fills in the run totals, and returns it.
func (c *CPU) StopTrace() *Trace {
	t := c.trace
	if t == nil {
		return nil
	}
	t.Cycles = c.Cycles
	t.KernelCycles = c.KernelCycles
	t.KernelALUCycles = c.KernelALUCycles
	t.Retired = c.Retired
	t.Status = c.status
	c.trace = nil
	return t
}

// recordStore appends to the trace's store log when recording.
func (c *CPU) recordStore(addr uint32, size uint8, val uint32) {
	if c.trace != nil {
		c.trace.Stores = append(c.trace.Stores, StoreRec{Addr: addr, Size: size, Val: val})
	}
}

// checkpoint snapshots the architectural state at the current
// instruction boundary and advances the next-checkpoint cycle.
func (c *CPU) checkpoint() {
	t := c.trace
	t.Checkpoints = append(t.Checkpoints, Checkpoint{
		Cycles:          c.Cycles,
		KernelCycles:    c.KernelCycles,
		KernelALUCycles: c.KernelALUCycles,
		Retired:         c.Retired,
		OpCounts:        c.OpCounts,
		Regs:            c.Regs,
		PC:              c.PC,
		Flag:            c.Flag,
		PrevEXResult:    c.prevEXResult,
		PrevFlag:        c.prevFlag,
		LastWasLoad:     c.lastWasLoad,
		LastLoadRD:      c.lastLoadRD,
		InWindow:        c.InWindow,
		EventIndex:      len(t.Events),
		StoreIndex:      len(t.Stores),
		Loads:           c.Mem.Loads,
		Stores:          c.Mem.Stores,
	})
	for c.nextCkpt <= c.Cycles {
		c.nextCkpt += t.CheckpointEvery
	}
}

// Restore rewinds the core and its memory to a recorded checkpoint of a
// golden trace: the program images are reloaded, the store log is
// replayed up to the checkpoint, and every architectural and accounting
// field is reset to the recorded values. Like Load, it assumes the
// memory outside the program images is already zeroed (Mem.Reset).
// Execution then continues exactly as the recorded run did from that
// boundary.
func (c *CPU) Restore(p *asm.Program, t *Trace, cp *Checkpoint) error {
	if err := c.Load(p); err != nil {
		return err
	}
	for _, s := range t.Stores[:cp.StoreIndex] {
		var err error
		switch s.Size {
		case 1:
			err = c.Mem.StoreByte(s.Addr, uint8(s.Val))
		case 2:
			err = c.Mem.StoreHalf(s.Addr, uint16(s.Val))
		case 4:
			err = c.Mem.StoreWord(s.Addr, s.Val)
		default:
			err = fmt.Errorf("cpu: store record with size %d", s.Size)
		}
		if err != nil {
			return fmt.Errorf("cpu: replaying store log: %w", err)
		}
	}
	c.Regs = cp.Regs
	c.PC = cp.PC
	c.Flag = cp.Flag
	c.prevEXResult = cp.PrevEXResult
	c.prevFlag = cp.PrevFlag
	c.lastWasLoad = cp.LastWasLoad
	c.lastLoadRD = cp.LastLoadRD
	c.InWindow = cp.InWindow
	c.Cycles = cp.Cycles
	c.KernelCycles = cp.KernelCycles
	c.KernelALUCycles = cp.KernelALUCycles
	c.Retired = cp.Retired
	c.OpCounts = cp.OpCounts
	c.FIBits, c.FIEvents = 0, 0
	c.Mem.Loads, c.Mem.Stores = cp.Loads, cp.Stores
	c.status = StatusRunning
	c.trapErr = nil
	return nil
}
