// Request canonicalization and content-hash job identity. A JobSpec is
// the wire format of one batch-simulation request; Canonicalize
// validates it, expands shorthand (frequency ranges), and fills every
// default explicitly, so two requests that mean the same experiment
// serialize to the same canonical form. Fingerprint then hashes that
// form together with the serving system's configuration fingerprint —
// the same closure-spelling discipline as the artifact-store keys — and
// the manager dedups jobs on it.

package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fi"
	"repro/internal/mc"
)

// JobSpec is the wire format of a batch-simulation request: the axes of
// an experiment grid (each list optional, defaulting to one canonical
// value) plus the Monte-Carlo parameters of mc.Spec. Frequencies come
// either as an explicit list ("freqs") or as a range
// ("freq_lo"/"freq_hi"/"freq_step"), not both.
type JobSpec struct {
	// Benches lists benchmark kernels by name (required, non-empty).
	Benches []string `json:"benches"`
	// Models lists fault model kinds: "none", "A", "B", "B+", "C"
	// (default ["C"]).
	Models []string `json:"models,omitempty"`
	// Vdds lists supply voltages in volts (default [0.7]).
	Vdds []float64 `json:"vdds,omitempty"`
	// Sigmas lists supply-noise sigmas in volts (default [0]).
	Sigmas []float64 `json:"sigmas,omitempty"`
	// Freqs lists clock frequencies in MHz; alternatively FreqLo/FreqHi/
	// FreqStep describe an inclusive range. One of the two forms is
	// required.
	Freqs    []float64 `json:"freqs,omitempty"`
	FreqLo   float64   `json:"freq_lo,omitempty"`
	FreqHi   float64   `json:"freq_hi,omitempty"`
	FreqStep float64   `json:"freq_step,omitempty"`

	// Trials per data point (default 100); TrialsMin/TrialsMax enable
	// adaptive allocation exactly as in mc.Spec.
	Trials    int `json:"trials,omitempty"`
	TrialsMin int `json:"trials_min,omitempty"`
	TrialsMax int `json:"trials_max,omitempty"`
	// Seed is the master Monte-Carlo seed (default 1); InputSeed fixes
	// benchmark inputs (default 42).
	Seed      int64 `json:"seed,omitempty"`
	InputSeed int64 `json:"input_seed,omitempty"`
	// Mode selects the trial path: "auto" (batched first-fault
	// sampling, the default everywhere including the server),
	// "first-fault" (per-trial sampling), "scan", or "full".
	Mode string `json:"mode,omitempty"`
	// Semantics is the fault semantics: "flip-bit" (default) or
	// "stale-capture". Sampling is model C's endpoint sampling:
	// "independent" (default) or "joint".
	Semantics string `json:"semantics,omitempty"`
	Sampling  string `json:"sampling,omitempty"`
	// WatchdogFactor bounds faulty runs at this multiple of the golden
	// cycle count (default 4).
	WatchdogFactor float64 `json:"watchdog_factor,omitempty"`

	// Priority selects the scheduling lane: "interactive" or "batch"
	// (default "batch"). It shapes when the job runs, never what it
	// computes, so it is deliberately excluded from the dedup
	// fingerprint: the same experiment submitted at two priorities is
	// still one execution (and a queued batch job is promoted when an
	// interactive duplicate arrives).
	Priority string `json:"priority,omitempty"`
}

// validKinds are the fault model kinds the core factory instantiates.
var validKinds = map[string]bool{"none": true, "A": true, "B": true, "B+": true, "C": true}

// Request size bounds: one malformed or hostile submission must not be
// able to stall or OOM the daemon. MaxFreqs bounds a single frequency
// axis (explicit or range-expanded) and MaxCells the whole grid's cell
// count — far above any real experiment (the paper's largest figure is
// a few hundred cells) while keeping canonicalization O(small).
const (
	MaxFreqs = 1 << 16
	MaxCells = 1 << 20
	// MaxTrials bounds trials and trials_max per cell: the engine
	// preallocates a per-point results slice of that length.
	MaxTrials = 1 << 20
	// MaxWatchdogFactor keeps the faulty-run cycle bound well inside
	// uint64 when multiplied by any golden cycle count.
	MaxWatchdogFactor = 1 << 20
)

// Canonicalize validates the spec and returns its canonical form:
// shorthand expanded, every default written out, and enum spellings
// normalized. Two requests meaning the same experiment canonicalize to
// identical values, which is what makes fingerprint dedup sound; the
// returned error is a client error (a malformed request), never a
// server state.
func (s JobSpec) Canonicalize() (JobSpec, error) {
	c := s
	if len(c.Benches) == 0 {
		return c, fmt.Errorf("benches: at least one benchmark required")
	}
	// Normalization below rewrites elements; keep the caller's slice
	// intact.
	c.Benches = append([]string(nil), s.Benches...)
	for i, n := range c.Benches {
		b, err := bench.ByName(n)
		if err != nil {
			return c, fmt.Errorf("benches[%d]: %w", i, err)
		}
		c.Benches[i] = b.Name // canonical spelling
	}
	if len(c.Models) == 0 {
		c.Models = []string{"C"}
	}
	for i, k := range c.Models {
		if !validKinds[k] {
			return c, fmt.Errorf("models[%d]: unknown fault model %q (want none, A, B, B+ or C)", i, k)
		}
	}
	if len(c.Vdds) == 0 {
		c.Vdds = []float64{0.7}
	}
	if len(c.Sigmas) == 0 {
		c.Sigmas = []float64{0}
	}
	switch {
	case len(c.Freqs) > 0:
		if c.FreqLo != 0 || c.FreqHi != 0 || c.FreqStep != 0 {
			return c, fmt.Errorf("freqs and freq_lo/freq_hi/freq_step are mutually exclusive")
		}
	case c.FreqStep > 0 && c.FreqLo > 0 && c.FreqHi >= c.FreqLo:
		// Bound the expansion before performing it: the count check is
		// O(1), the expansion is not.
		if n := (c.FreqHi-c.FreqLo)/c.FreqStep + 1; !(n <= MaxFreqs) {
			return c, fmt.Errorf("freq range expands to %g points (max %d)", math.Floor(n), MaxFreqs)
		}
		// Expand the range into the explicit list, so a range request and
		// its expansion share a fingerprint.
		c.Freqs = mc.FreqRange(c.FreqLo, c.FreqHi, c.FreqStep)
		c.FreqLo, c.FreqHi, c.FreqStep = 0, 0, 0
	default:
		return c, fmt.Errorf("frequencies required: give freqs or freq_lo <= freq_hi with freq_step > 0")
	}
	if len(c.Freqs) > MaxFreqs {
		return c, fmt.Errorf("freqs: %d points (max %d)", len(c.Freqs), MaxFreqs)
	}
	for i, f := range c.Freqs {
		if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return c, fmt.Errorf("freqs[%d]: invalid frequency %v", i, f)
		}
	}
	if cells := len(c.Benches) * len(c.Models) * len(c.Vdds) * len(c.Sigmas) * len(c.Freqs); cells > MaxCells {
		return c, fmt.Errorf("grid has %d cells (max %d)", cells, MaxCells)
	}
	if c.Trials <= 0 {
		c.Trials = 100
	}
	if c.Trials > MaxTrials || c.TrialsMax > MaxTrials {
		return c, fmt.Errorf("trials: at most %d per cell", MaxTrials)
	}
	if c.TrialsMin > 0 && c.TrialsMax <= 0 {
		return c, fmt.Errorf("trials_min has no effect without trials_max (adaptive mode)")
	}
	if c.TrialsMax > 0 && c.TrialsMin <= 0 {
		c.TrialsMin = 25
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.InputSeed == 0 {
		c.InputSeed = 42
	}
	mode, err := mc.ParseMode(c.Mode)
	if err != nil {
		return c, fmt.Errorf("mode: %w", err)
	}
	c.Mode = mode.String()
	switch c.Semantics {
	case "", "flip-bit":
		c.Semantics = "flip-bit"
	case "stale-capture":
	default:
		return c, fmt.Errorf("semantics: unknown %q (want flip-bit or stale-capture)", c.Semantics)
	}
	switch c.Sampling {
	case "", "independent":
		c.Sampling = "independent"
	case "joint":
	default:
		return c, fmt.Errorf("sampling: unknown %q (want independent or joint)", c.Sampling)
	}
	if c.WatchdogFactor <= 0 {
		c.WatchdogFactor = 4
	}
	if c.WatchdogFactor > MaxWatchdogFactor || math.IsNaN(c.WatchdogFactor) {
		return c, fmt.Errorf("watchdog_factor: at most %d", MaxWatchdogFactor)
	}
	switch c.Priority {
	case "", LaneBatch:
		c.Priority = LaneBatch
	case LaneInteractive:
	default:
		return c, fmt.Errorf("priority: unknown %q (want %s or %s)", c.Priority, LaneInteractive, LaneBatch)
	}
	return c, nil
}

// Fingerprint hashes a canonical spec together with the serving
// system's configuration fingerprint (the full core.Config, the same
// closure the artifact-store cell keys spell out). Jobs dedup on it:
// equal fingerprints are by construction the same experiment on the
// same substrate, so they may share one execution and one result.
// Priority is zeroed before hashing — it affects scheduling, not
// results, so the same experiment at two priorities must dedup.
func (s JobSpec) Fingerprint(sysFingerprint string) string {
	s.Priority = ""
	blob, err := json.Marshal(s)
	if err != nil {
		// A JobSpec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("server: spec marshal: %v", err))
	}
	h := sha256.Sum256([]byte(sysFingerprint + "\x00" + string(blob)))
	return hex.EncodeToString(h[:])
}

// mode returns the parsed trial mode of a canonical spec.
func (s JobSpec) mode() mc.Mode {
	m, _ := mc.ParseMode(s.Mode)
	return m
}

// Grid lowers a canonical spec onto the mc grid engine. The benchmark
// names must already be canonical (Canonicalize validates them); the
// store (may be nil) enables cell checkpointing and warm resume, which
// is what makes a deduped resubmission of a completed grid answer from
// disk instead of re-running trials. It is exported for the cluster
// layer: the coordinator plans a job's cells from the same Grid the
// in-process backend would run, and every worker lowers the identical
// canonical spec onto its own System — same fingerprint, same cell
// keys, bit-identical Points.
func (s JobSpec) Grid(sys *core.System, store *artifact.Store, workers int, onProgress func(mc.Progress)) (mc.Grid, error) {
	benches := make([]*bench.Benchmark, len(s.Benches))
	for i, n := range s.Benches {
		b, err := bench.ByName(n)
		if err != nil {
			return mc.Grid{}, err
		}
		benches[i] = b
	}
	sem := fi.FlipBit
	if s.Semantics == "stale-capture" {
		sem = fi.StaleCapture
	}
	samp := fi.Independent
	if s.Sampling == "joint" {
		samp = fi.Joint
	}
	return mc.Grid{
		Spec: mc.Spec{
			System:         sys,
			Model:          core.ModelSpec{Sem: sem, Sampling: samp},
			Trials:         s.Trials,
			TrialsMin:      s.TrialsMin,
			TrialsMax:      s.TrialsMax,
			Seed:           s.Seed,
			Mode:           s.mode(),
			InputSeed:      s.InputSeed,
			WatchdogFactor: s.WatchdogFactor,
			Workers:        workers,
			Progress:       onProgress,
		},
		Axes: mc.Axes{
			Benches: benches,
			Kinds:   s.Models,
			Vdds:    s.Vdds,
			Sigmas:  s.Sigmas,
			Freqs:   s.Freqs,
		},
		Store:  store,
		Resume: store != nil,
	}, nil
}
