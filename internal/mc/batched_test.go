package mc

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fi"
)

// runFirstFault evaluates a point on the per-trial first-fault path —
// the bit-identity reference for the batched default.
func runFirstFault(spec Spec, fMHz float64) (Point, error) {
	spec.Mode = ModeFirstFault
	return Run(spec, fMHz)
}

// TestBatchedBitIdenticalToFirstFault is the batched path's core
// guarantee: for a fixed seed, planning a whole cell's trials in one
// order-statistics pass and executing the faulting remainder over
// shared walker prefixes must reproduce the per-trial first-fault path
// bit for bit — every Point field, across model kinds, both fault
// semantics, both sampling modes, and benchmarks with different query
// mixes. Frequencies sit in each model's transition region so the
// batch contains a healthy mix of clean and faulting trials.
func TestBatchedBitIdenticalToFirstFault(t *testing.T) {
	cases := []struct {
		name  string
		bench *bench.Benchmark
		model core.ModelSpec
		freqs []float64
	}{
		{"A", bench.Median(), core.ModelSpec{Kind: "A", ProbA: 3e-4}, []float64{700}},
		{"B", bench.Median(), core.ModelSpec{Kind: "B", Vdd: 0.7}, []float64{700, 796}},
		{"B+", bench.Median(), core.ModelSpec{Kind: "B+", Vdd: 0.7, Sigma: 0.010}, []float64{661, 700}},
		{"C-independent", bench.Median(), core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010}, []float64{700, 840, 860}},
		{"C-joint", bench.Median(), core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010, Sampling: fi.Joint}, []float64{860}},
		{"C-stale", bench.Median(), core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010, Sem: fi.StaleCapture}, []float64{860}},
		{"C-mat", bench.MatMult8(), core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010}, []float64{850}},
		{"none", bench.Median(), core.ModelSpec{Kind: "none"}, []float64{700}},
	}
	for _, tc := range cases {
		spec := Spec{
			System: system(),
			Bench:  tc.bench,
			Model:  tc.model,
			Trials: 200,
			Seed:   29,
		}
		for _, f := range tc.freqs {
			batched, err := Run(spec, f) // ModeAuto: batched by default
			if err != nil {
				t.Fatalf("%s at %v MHz: %v", tc.name, f, err)
			}
			ref, err := runFirstFault(spec, f)
			if err != nil {
				t.Fatalf("%s at %v MHz: %v", tc.name, f, err)
			}
			if batched != ref {
				t.Errorf("%s at %v MHz: batched point differs from per-trial first-fault:\nbatched %+v\nref     %+v",
					tc.name, f, batched, ref)
			}
		}
	}
}

// TestBatchedScheduleIndependent pins that chunk geometry and worker
// count leave a batched point untouched: chunks are sized from the
// window, never from the schedule, and per-trial RNG streams make the
// trials independent.
func TestBatchedScheduleIndependent(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
		Trials: 150,
		Seed:   41,
	}
	ref, err := Run(spec, 860)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 7} {
		s := spec
		s.Workers = w
		got, err := Run(s, 860)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Errorf("Workers=%d changed the batched point:\n%+v\n%+v", w, got, ref)
		}
	}
}

// TestBatchedAdaptive runs the batched path under adaptive trial
// allocation: every extension window is planned as its own batch, and
// the verdict must be bit-identical to the per-trial path's, which
// extends one trial at a time.
func TestBatchedAdaptive(t *testing.T) {
	spec := Spec{
		System:    system(),
		Bench:     bench.Median(),
		Model:     core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
		TrialsMin: 8,
		TrialsMax: 96,
		Seed:      7,
	}
	for _, f := range []float64{700, 840, 880} {
		batched, err := Run(spec, f)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := runFirstFault(spec, f)
		if err != nil {
			t.Fatal(err)
		}
		if batched != ref {
			t.Errorf("adaptive point at %v MHz differs:\nbatched %+v\nref     %+v", f, batched, ref)
		}
	}
}

// TestBatchedAgreesWithScanAbovePoFF closes the loop against the exact
// replay scan at a deeply faulting operating point (above the point of
// first failure, where almost every trial forks): batched aggregates
// must stay inside the scan's Wilson intervals exactly like the
// per-trial sampling path.
func TestBatchedAgreesWithScanAbovePoFF(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
		Trials: 600,
		Seed:   13,
	}
	const f = 880 // above the ~870 MHz PoFF of this cell
	batched, err := Run(spec, f)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := RunScan(spec, f)
	if err != nil {
		t.Fatal(err)
	}
	if batched.CorrectPct > 50 {
		t.Fatalf("point not above PoFF: correct=%v%%", batched.CorrectPct)
	}
	agree(t, "above-PoFF", batched, sc)
}
