package bench

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/dta"
)

// K-means parameters (Table 1: 8 points, 2-D).
const (
	KMeansPoints  = 8
	KMeansK       = 3
	KMeansIters   = 10
	KMeansRepeats = 9
)

// KMeans returns the k-means clustering benchmark: Lloyd iterations with
// integer squared-Euclidean distances and a shift-subtract division for
// the centroid update. The whole clustering is repeated from scratch to
// match Table 1's kernel length. Output is the final cluster membership
// of each point; the metric is the membership mismatch percentage.
func KMeans() *Benchmark {
	return &Benchmark{
		Name:       "kmeans",
		MetricName: "cluster membership",
		// Coordinates are 8-bit, so distances need 16-bit products.
		Profile:      dta.Profile{circuit.UnitMul: "u16", circuit.UnitCompare: "u16"},
		PaperKCycles: 351,
		OutSymbol:    "member",
		OutWords:     KMeansPoints,
		Metric:       MismatchPct,
		QualityName:  "distortion ratio",
		Quality:      kmeansQuality,
		Build:        buildKMeans,
	}
}

// kmeansInputs regenerates the benchmark's input point set for a seed —
// the same draws buildKMeans embeds into the kernel's data image, kept
// in sync with it so the quality extractor scores the clustering over
// exactly the points the simulated run clustered.
func kmeansInputs(seed int64) (px, py []uint32) {
	r := rng(seed)
	px = make([]uint32, KMeansPoints)
	py = make([]uint32, KMeansPoints)
	for i := range px {
		px[i] = uint32(r.Intn(256))
		py[i] = uint32(r.Intn(256))
	}
	return px, py
}

// goldenKMeans mirrors the kernel bit for bit (uint32 wrap-around
// arithmetic, strict unsigned less-than, skip update of empty clusters).
func goldenKMeans(px, py []uint32) []uint32 {
	cx := make([]uint32, KMeansK)
	cy := make([]uint32, KMeansK)
	copy(cx, px[:KMeansK])
	copy(cy, py[:KMeansK])
	member := make([]uint32, KMeansPoints)
	for iter := 0; iter < KMeansIters; iter++ {
		sumx := make([]uint32, KMeansK)
		sumy := make([]uint32, KMeansK)
		cnt := make([]uint32, KMeansK)
		for i := 0; i < KMeansPoints; i++ {
			best := uint32(0x7FFFFFFF)
			bestc := uint32(0)
			for c := 0; c < KMeansK; c++ {
				dx := px[i] - cx[c]
				dy := py[i] - cy[c]
				dist := dx*dx + dy*dy
				if dist < best {
					best = dist
					bestc = uint32(c)
				}
			}
			member[i] = bestc
			sumx[bestc] += px[i]
			sumy[bestc] += py[i]
			cnt[bestc]++
		}
		for c := 0; c < KMeansK; c++ {
			if cnt[c] != 0 {
				cx[c] = sumx[c] / cnt[c]
				cy[c] = sumy[c] / cnt[c]
			}
		}
	}
	return member
}

func buildKMeans(seed int64) (string, []uint32, error) {
	px, py := kmeansInputs(seed)
	want := goldenKMeans(px, py)

	src := fmt.Sprintf(`
; k-means: %d points, k=%d, %d Lloyd iterations, repeated %d times
	l.movhi r1,hi(px)
	l.ori   r1,r1,lo(px)
	l.movhi r2,hi(py)
	l.ori   r2,r2,lo(py)
	l.movhi r10,hi(cx)
	l.ori   r10,r10,lo(cx)
	l.movhi r11,hi(cy)
	l.ori   r11,r11,lo(cy)
	l.movhi r12,hi(sumx)
	l.ori   r12,r12,lo(sumx)
	l.movhi r13,hi(sumy)
	l.ori   r13,r13,lo(sumy)
	l.movhi r14,hi(cnt)
	l.ori   r14,r14,lo(cnt)
	l.movhi r15,hi(member)
	l.ori   r15,r15,lo(member)
	l.sys 1
	l.addi  r16,r0,0        ; repeat counter
repeat_loop:
	; centroids start at the first K points
	l.addi  r19,r0,0
cinit_loop:
	l.slli  r24,r19,2
	l.add   r25,r1,r24
	l.lwz   r26,0(r25)
	l.add   r25,r10,r24
	l.sw    0(r25),r26
	l.add   r25,r2,r24
	l.lwz   r26,0(r25)
	l.add   r25,r11,r24
	l.sw    0(r25),r26
	l.addi  r19,r19,1
	l.sfltsi r19,%d
	l.bf    cinit_loop
	l.addi  r17,r0,0        ; iteration counter
iter_loop:
	; zero sums and counts
	l.addi  r19,r0,0
zero_loop:
	l.slli  r24,r19,2
	l.add   r25,r12,r24
	l.sw    0(r25),r0
	l.add   r25,r13,r24
	l.sw    0(r25),r0
	l.add   r25,r14,r24
	l.sw    0(r25),r0
	l.addi  r19,r19,1
	l.sfltsi r19,%d
	l.bf    zero_loop
	; assignment step
	l.addi  r18,r0,0        ; point index
point_loop:
	l.slli  r24,r18,2
	l.add   r25,r1,r24
	l.lwz   r20,0(r25)      ; px[i]
	l.add   r25,r2,r24
	l.lwz   r21,0(r25)      ; py[i]
	l.movhi r22,0x7fff
	l.ori   r22,r22,0xffff  ; best = INT_MAX
	l.addi  r23,r0,0        ; best cluster
	l.addi  r19,r0,0
clust_loop:
	l.slli  r24,r19,2
	l.add   r25,r10,r24
	l.lwz   r26,0(r25)      ; cx[c]
	l.sub   r26,r20,r26     ; dx
	l.mul   r26,r26,r26
	l.add   r27,r26,r0      ; dx*dx
	l.slli  r24,r19,2
	l.add   r25,r11,r24
	l.lwz   r26,0(r25)      ; cy[c]
	l.sub   r26,r21,r26     ; dy
	l.mul   r26,r26,r26
	l.add   r27,r27,r26     ; dist
	l.sfltu r27,r22
	l.bnf   no_best
	l.add   r22,r27,r0
	l.add   r23,r19,r0
no_best:
	l.addi  r19,r19,1
	l.sfltsi r19,%d
	l.bf    clust_loop
	; record membership and accumulate
	l.slli  r24,r18,2
	l.add   r25,r15,r24
	l.sw    0(r25),r23
	l.slli  r24,r23,2
	l.add   r25,r12,r24
	l.lwz   r26,0(r25)
	l.add   r26,r26,r20
	l.sw    0(r25),r26
	l.add   r25,r13,r24
	l.lwz   r26,0(r25)
	l.add   r26,r26,r21
	l.sw    0(r25),r26
	l.add   r25,r14,r24
	l.lwz   r26,0(r25)
	l.addi  r26,r26,1
	l.sw    0(r25),r26
	l.addi  r18,r18,1
	l.sfltsi r18,%d
	l.bf    point_loop
	; update step
	l.addi  r19,r0,0
update_loop:
	l.slli  r24,r19,2
	l.add   r25,r14,r24
	l.lwz   r26,0(r25)      ; count
	l.sfeqi r26,0
	l.bf    upd_skip
	l.add   r25,r12,r24
	l.lwz   r3,0(r25)
	l.add   r4,r26,r0
	l.jal   udiv
	l.slli  r24,r19,2
	l.add   r25,r10,r24
	l.sw    0(r25),r5       ; cx[c] = sumx/count
	l.add   r25,r13,r24
	l.lwz   r3,0(r25)
	l.add   r4,r26,r0
	l.jal   udiv
	l.add   r25,r11,r24
	l.sw    0(r25),r5       ; cy[c] = sumy/count
upd_skip:
	l.addi  r19,r19,1
	l.sfltsi r19,%d
	l.bf    update_loop
	l.addi  r17,r17,1
	l.sfltsi r17,%d
	l.bf    iter_loop
	l.addi  r16,r16,1
	l.sfltsi r16,%d
	l.bf    repeat_loop
	l.sys 2
	l.sys 0

; unsigned restoring division: r5 = r3 / r4, r6 = remainder
; clobbers r7, r8; returns via r9
udiv:
	l.addi  r5,r0,0
	l.addi  r6,r0,0
	l.addi  r7,r0,31
udloop:
	l.slli  r6,r6,1
	l.srl   r8,r3,r7
	l.andi  r8,r8,1
	l.or    r6,r6,r8
	l.sfgeu r6,r4
	l.bnf   udskip
	l.sub   r6,r6,r4
	l.addi  r8,r0,1
	l.sll   r8,r8,r7
	l.or    r5,r5,r8
udskip:
	l.addi  r7,r7,-1
	l.sfltsi r7,0
	l.bnf   udloop
	l.jr    r9

.data
member:
	.space %d
cx:	.space %d
cy:	.space %d
sumx:	.space %d
sumy:	.space %d
cnt:	.space %d
px:
`, KMeansPoints, KMeansK, KMeansIters, KMeansRepeats,
		KMeansK, KMeansK, KMeansK, KMeansPoints, KMeansK, KMeansIters, KMeansRepeats,
		4*KMeansPoints, 4*KMeansK, 4*KMeansK, 4*KMeansK, 4*KMeansK, 4*KMeansK)
	src += wordList(px)
	src += "py:\n"
	src += wordList(py)
	return src, want, nil
}
