package fi

import (
	"math"
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/dta"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/timing"
)

var (
	fixOnce sync.Once
	fixALU  *circuit.ALU
	fixCh   *dta.Characterizer
)

func fixture() (*circuit.ALU, *dta.Characterizer) {
	fixOnce.Do(func() {
		fixALU = circuit.New(circuit.DefaultConfig())
		fixCh = dta.NewCharacterizer(fixALU, timing.DefaultVddDelay(),
			dta.Config{Cycles: 768, Seed: 5})
	})
	return fixALU, fixCh
}

func TestApplySemantics(t *testing.T) {
	// Flip semantics XORs the violation mask.
	out, fl, n := apply(FlipBit, stats.NewRand(1), 0b101, true, 0b111, 0b000, true, false)
	if out != 0b010 || fl != false || n != 3 {
		t.Errorf("flip: out=%b flag=%v n=%d", out, fl, n)
	}
	// Stale capture takes the previous latch value on violated bits.
	out, fl, n = apply(StaleCapture, nil, 0b101, true, 0b111, 0b000, true, false)
	if out != 0b010 || fl != false || n != 3 {
		t.Errorf("stale: out=%b flag=%v n=%d", out, fl, n)
	}
	// Stale capture with identical previous value changes nothing but
	// still counts the violations.
	out, fl, n = apply(StaleCapture, nil, 0b101, false, 0b111, 0b111, true, true)
	if out != 0b111 || fl != true || n != 2 {
		t.Errorf("stale-same: out=%b flag=%v n=%d", out, fl, n)
	}
	// No violations: untouched.
	out, fl, n = apply(FlipBit, nil, 0, false, 42, 7, true, false)
	if out != 42 || fl != true || n != 0 {
		t.Errorf("none: out=%d flag=%v n=%d", out, fl, n)
	}
}

func TestModelANeverSilent(t *testing.T) {
	m := &ModelA{Prob: 0.5}
	inj := m.NewTrial(stats.NewRand(1))
	faults := 0
	for i := 0; i < 1000; i++ {
		_, _, n := inj.Inject(isa.OpAdd, 0, 0, false, false)
		faults += n
	}
	// Expected about 16 flips per call.
	if faults < 14000 || faults > 18000 {
		t.Errorf("model A faults = %d, want about 16000", faults)
	}
	// Zero probability: silent.
	z := (&ModelA{Prob: 0}).NewTrial(stats.NewRand(1))
	if _, _, n := z.Inject(isa.OpAdd, 5, 0, false, false); n != 0 {
		t.Errorf("prob 0 injected")
	}
}

func TestModelAFlagOnlyOnCompares(t *testing.T) {
	m := &ModelA{Prob: 1}
	inj := m.NewTrial(stats.NewRand(1))
	_, fl, _ := inj.Inject(isa.OpAdd, 0, 0, false, false)
	if fl != false {
		t.Errorf("non-compare flipped the flag")
	}
	_, fl, _ = inj.Inject(isa.OpSfeq, 0, 0, false, false)
	if fl != true {
		t.Errorf("compare with prob 1 did not flip the flag")
	}
}

func TestModelBHardThreshold(t *testing.T) {
	alu, _ := fixture()
	vm := timing.DefaultVddDelay()
	sta := alu.STALimitMHz()

	// Below the STA limit: never injects.
	below := NewModelB(alu, vm, 0.7, sta-1, 0, FlipBit)
	injB := below.NewTrial(stats.NewRand(2))
	for i := 0; i < 2000; i++ {
		if _, _, n := injB.Inject(isa.OpAdd, 0, 0, false, false); n != 0 {
			t.Fatalf("model B injected below STA limit")
		}
	}
	// Just above: injects on every ALU instruction, independent of type
	// (the model's documented pessimism).
	above := NewModelB(alu, vm, 0.7, sta+1, 0, FlipBit)
	injA := above.NewTrial(stats.NewRand(2))
	for _, op := range []isa.Op{isa.OpAdd, isa.OpXor, isa.OpSll} {
		if _, _, n := injA.Inject(op, 0, 0, false, false); n == 0 {
			t.Fatalf("model B did not inject for %v above the STA limit", op)
		}
	}
}

func TestModelBPlusFirstFIAnchors(t *testing.T) {
	alu, _ := fixture()
	vm := timing.DefaultVddDelay()
	for _, c := range []struct {
		sigma   float64
		wantMHz float64
	}{
		{0.010, 661},
		{0.025, 588},
	} {
		m := NewModelB(alu, vm, 0.7, 707, c.sigma, FlipBit)
		got := m.FirstFIMHz()
		if math.Abs(got-c.wantMHz) > 0.01*c.wantMHz {
			t.Errorf("sigma %v: first FI at %v MHz, want about %v", c.sigma, got, c.wantMHz)
		}
	}
	// Model B (no noise): first FI at the STA limit itself.
	m := NewModelB(alu, vm, 0.7, 707, 0, FlipBit)
	if got := m.FirstFIMHz(); math.Abs(got-707) > 1 {
		t.Errorf("model B first FI %v, want 707", got)
	}
}

func TestModelBPlusRareOnsetInjection(t *testing.T) {
	// Just above the B+ first-FI point, injections require a noise
	// sample at the saturation atom: the rate must be low (paper: about
	// 10 FI per kCycle) rather than every cycle.
	alu, _ := fixture()
	vm := timing.DefaultVddDelay()
	m := NewModelB(alu, vm, 0.7, 663, 0.010, FlipBit)
	inj := m.NewTrial(stats.NewRand(3))
	events := 0
	const cycles = 50000
	for i := 0; i < cycles; i++ {
		if _, _, n := inj.Inject(isa.OpAdd, 0, 0, false, false); n > 0 {
			events++
		}
	}
	rate := float64(events) / cycles * 1000
	if rate == 0 {
		t.Fatalf("no injections just above the first-FI point")
	}
	if rate > 60 {
		t.Errorf("onset FI rate %v per kCycle too high for the saturation-atom mechanism", rate)
	}
}

func TestModelCSilentBelowOnset(t *testing.T) {
	_, ch := fixture()
	m, err := NewModelC(ch, ModelCConfig{Vdd: 0.7, FreqMHz: 700, Sigma: 0})
	if err != nil {
		t.Fatal(err)
	}
	inj := m.NewTrial(stats.NewRand(4))
	for i := 0; i < 5000; i++ {
		for _, op := range []isa.Op{isa.OpAdd, isa.OpMul, isa.OpSfgts} {
			if _, _, n := inj.Inject(op, 0, 0, false, false); n != 0 {
				t.Fatalf("model C injected for %v below every onset", op)
			}
		}
	}
}

func TestModelCInstructionAware(t *testing.T) {
	// At a frequency between the mul and add onsets, mul must see
	// faults while add stays clean: the instruction awareness that
	// models A/B/B+ lack.
	_, ch := fixture()
	mulCh, err := ch.ForOp(isa.OpMul, nil, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	addCh, err := ch.ForOp(isa.OpAdd, nil, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	f := (mulCh.OnsetMHz() + addCh.OnsetMHz()) / 2
	m, err := NewModelC(ch, ModelCConfig{Vdd: 0.7, FreqMHz: f, Sigma: 0})
	if err != nil {
		t.Fatal(err)
	}
	inj := m.NewTrial(stats.NewRand(5))
	mulFaults, addFaults := 0, 0
	for i := 0; i < 200000; i++ {
		if _, _, n := inj.Inject(isa.OpMul, 0, 0, false, false); n > 0 {
			mulFaults++
		}
		if _, _, n := inj.Inject(isa.OpAdd, 0, 0, false, false); n > 0 {
			addFaults++
		}
	}
	if mulFaults == 0 {
		t.Errorf("mul saw no faults between the onsets")
	}
	if addFaults != 0 {
		t.Errorf("add saw %d faults below its onset", addFaults)
	}
}

func TestModelCRateMatchesCDF(t *testing.T) {
	// With no noise, the per-cycle violation probability of a single
	// op must match 1 - prod(1 - p_e) from the CDFs.
	_, ch := fixture()
	mulCh, err := ch.ForOp(isa.OpMul, nil, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	f := mulCh.OnsetMHz() * 1.05
	period := circuit.PeriodPs(f)
	want := 1.0
	for e := 0; e < mulCh.NumEndpoints(); e++ {
		want *= 1 - mulCh.CDFs[e].ViolationProb(period)
	}
	want = 1 - want

	m, err := NewModelC(ch, ModelCConfig{Vdd: 0.7, FreqMHz: f, Sigma: 0})
	if err != nil {
		t.Fatal(err)
	}
	inj := m.NewTrial(stats.NewRand(6))
	events := 0
	const n = 300000
	for i := 0; i < n; i++ {
		if _, _, c := inj.Inject(isa.OpMul, 0, 0, false, false); c > 0 {
			events++
		}
	}
	got := float64(events) / n
	if math.Abs(got-want) > 0.15*want+0.001 {
		t.Errorf("per-cycle fault probability %v, want %v (15%%)", got, want)
	}
}

func TestModelCNoiseLowersOnset(t *testing.T) {
	// With noise, faults appear below the zero-noise onset.
	_, ch := fixture()
	mulCh, err := ch.ForOp(isa.OpMul, nil, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	f := mulCh.OnsetMHz() * 0.97 // below onset, within 2-sigma reach
	m, err := NewModelC(ch, ModelCConfig{Vdd: 0.7, FreqMHz: f, Sigma: 0.010})
	if err != nil {
		t.Fatal(err)
	}
	inj := m.NewTrial(stats.NewRand(7))
	events := 0
	for i := 0; i < 200000; i++ {
		if _, _, c := inj.Inject(isa.OpMul, 0, 0, false, false); c > 0 {
			events++
		}
	}
	if events == 0 {
		t.Errorf("noise did not move the onset down")
	}
}

func TestModelCJointSampling(t *testing.T) {
	_, ch := fixture()
	mulCh, err := ch.ForOp(isa.OpMul, nil, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	f := mulCh.OnsetMHz() * 1.05
	mj, err := NewModelC(ch, ModelCConfig{Vdd: 0.7, FreqMHz: f, Sampling: Joint})
	if err != nil {
		t.Fatal(err)
	}
	inj := mj.NewTrial(stats.NewRand(8))
	events := 0
	for i := 0; i < 100000; i++ {
		if _, _, c := inj.Inject(isa.OpMul, 0, 0, false, false); c > 0 {
			events++
		}
	}
	if events == 0 {
		t.Errorf("joint sampling produced no faults above onset")
	}
}

func TestModelCFlagOnlyOnCompares(t *testing.T) {
	_, ch := fixture()
	cmpCh, err := ch.ForOp(isa.OpSfgts, nil, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	// Run fast enough that everything violates.
	f := cmpCh.OnsetMHz() * 1.6
	m, err := NewModelC(ch, ModelCConfig{Vdd: 0.7, FreqMHz: f})
	if err != nil {
		t.Fatal(err)
	}
	inj := m.NewTrial(stats.NewRand(9))
	flagFlips := 0
	for i := 0; i < 3000; i++ {
		_, fl, _ := inj.Inject(isa.OpSfgts, 0, 0, false, false)
		if fl {
			flagFlips++
		}
	}
	if flagFlips == 0 {
		t.Errorf("compares never flipped the flag at high over-scaling")
	}
}

func TestNamesAndNull(t *testing.T) {
	alu, ch := fixture()
	vm := timing.DefaultVddDelay()
	if (&ModelA{}).Name() != "A" {
		t.Errorf("model A name")
	}
	if NewModelB(alu, vm, 0.7, 707, 0, FlipBit).Name() != "B" {
		t.Errorf("model B name")
	}
	if NewModelB(alu, vm, 0.7, 707, 0.01, FlipBit).Name() != "B+" {
		t.Errorf("model B+ name")
	}
	mc, err := NewModelC(ch, ModelCConfig{Vdd: 0.7, FreqMHz: 707})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Name() != "C" {
		t.Errorf("model C name")
	}
	var null NullModel
	inj := null.NewTrial(nil)
	if r, fl, n := inj.Inject(isa.OpAdd, 9, 1, true, false); r != 9 || !fl || n != 0 {
		t.Errorf("null model altered state")
	}
	if Independent.String() != "independent" || Joint.String() != "joint" {
		t.Errorf("sampling names")
	}
	if FlipBit.String() != "flip-bit" || StaleCapture.String() != "stale-capture" {
		t.Errorf("semantics names")
	}
}
