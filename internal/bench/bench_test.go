package bench

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// runGolden assembles and executes a benchmark fault-free, returning the
// core and the extracted outputs.
func runGolden(t *testing.T, b *Benchmark, seed int64) (*cpu.CPU, []uint32, []uint32) {
	t.Helper()
	src, want, err := b.Build(seed)
	if err != nil {
		t.Fatalf("%s: build: %v", b.Name, err)
	}
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("%s: assemble: %v", b.Name, err)
	}
	m := mem.New()
	c := cpu.New(m, nil, cpu.DefaultConfig())
	if err := c.Load(p); err != nil {
		t.Fatalf("%s: load: %v", b.Name, err)
	}
	c.SetWatchdog(50_000_000)
	if st := c.Run(); st != cpu.StatusExited {
		t.Fatalf("%s: status %v (%v) after %d cycles", b.Name, st, c.TrapErr(), c.Cycles)
	}
	got, err := b.Outputs(m, p)
	if err != nil {
		t.Fatalf("%s: outputs: %v", b.Name, err)
	}
	return c, got, want
}

func TestAllBenchmarksMatchGolden(t *testing.T) {
	for _, b := range append(append(All(), Micros()...), Extras()...) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			c, got, want := runGolden(t, b, 42)
			if len(got) != len(want) {
				t.Fatalf("output length %d vs %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("output[%d] = %#x, want %#x", i, got[i], want[i])
				}
			}
			if m := b.Metric(got, want); m != 0 {
				t.Errorf("fault-free metric = %v, want 0", m)
			}
			if c.KernelCycles == 0 {
				t.Errorf("kernel window never opened")
			}
		})
	}
}

func TestKernelCyclesNearPaper(t *testing.T) {
	// Table 1 reproduction: kernel cycle counts should be in the same
	// ballpark as the paper's (within 2x; exact counts depend on the
	// compiler and pipeline details we do not copy).
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			c, _, _ := runGolden(t, b, 42)
			kc := float64(c.KernelCycles) / 1000
			if kc < b.PaperKCycles/2 || kc > b.PaperKCycles*2 {
				t.Errorf("kernel kCycles = %.0f, paper reports %.0f (want within 2x)",
					kc, b.PaperKCycles)
			}
			t.Logf("%s: %.0f kCycles (paper %.0f)", b.Name, kc, b.PaperKCycles)
		})
	}
}

func TestBenchmarkCharacter(t *testing.T) {
	// The compute/control split of Table 1: matmul is multiplication
	// heavy, median and dijkstra are compare/branch heavy with no
	// multiplies in the kernel... (k-means sits in between).
	mix := func(name string) (mulFrac, cmpFrac float64) {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		c, _, _ := runGolden(t, b, 42)
		m := c.Mix()
		return float64(m.Mul) / float64(m.Total), float64(m.Compare) / float64(m.Total)
	}
	matMul, _ := mix("mat_mult_16bit")
	medMul, medCmp := mix("median")
	dijMul, dijCmp := mix("dijkstra")
	kmMul, _ := mix("kmeans")
	if matMul < 0.04 {
		t.Errorf("matmul mul fraction %.3f too low", matMul)
	}
	if medMul != 0 || dijMul != 0 {
		t.Errorf("control kernels contain multiplies: median %.3f dijkstra %.3f", medMul, dijMul)
	}
	if medCmp < 0.10 || dijCmp < 0.10 {
		t.Errorf("control kernels light on compares: median %.3f dijkstra %.3f", medCmp, dijCmp)
	}
	if kmMul <= 0 || kmMul >= matMul {
		t.Errorf("k-means mul fraction %.4f not between control and matmul %.4f", kmMul, matMul)
	}
}

func TestMicroPerTrialInputsDiffer(t *testing.T) {
	b := MicroAdd32()
	s1, w1, err := b.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	s2, w2, err := b.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Errorf("different seeds produced identical sources")
	}
	same := true
	for i := range w1 {
		if w1[i] != w2[i] {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds produced identical outputs")
	}
	if !b.PerTrialInputs {
		t.Errorf("micro kernels must regenerate inputs per trial")
	}
}

func TestMetrics(t *testing.T) {
	if got := RelativeErrorPct([]uint32{110}, []uint32{100}); got != 10 {
		t.Errorf("relative error = %v, want 10", got)
	}
	if got := RelativeErrorPct([]uint32{0}, []uint32{0}); got != 0 {
		t.Errorf("0/0 relative error = %v", got)
	}
	if got := RelativeErrorPct([]uint32{5}, []uint32{0}); got != 100 {
		t.Errorf("x/0 relative error = %v", got)
	}
	if got := RelativeErrorPct([]uint32{1000000}, []uint32{1}); got != 100 {
		t.Errorf("relative error must cap at 100, got %v", got)
	}
	if got := MSEMetric([]uint32{1, 2}, []uint32{1, 4}); got != 2 {
		t.Errorf("MSE = %v, want 2", got)
	}
	if got := MismatchPct([]uint32{1, 2, 3, 4}, []uint32{1, 0, 3, 0}); got != 50 {
		t.Errorf("mismatch = %v, want 50", got)
	}
}

// TestChecksumPhases pins the checksum kernel's two-phase shape: the
// trailing fold is the only source of adder/comparator queries, it is
// short, and it starts thousands of cycles past the last checkpoint
// boundary — the geometry the batched-execution benchmark relies on.
func TestChecksumPhases(t *testing.T) {
	b := Checksum()
	src, _, err := b.Build(42)
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	c := cpu.New(m, nil, cpu.DefaultConfig())
	if err := c.Load(p); err != nil {
		t.Fatal(err)
	}
	tr := c.StartTrace(0)
	c.SetWatchdog(50_000_000)
	if st := c.Run(); st != cpu.StatusExited {
		t.Fatalf("status %v after %d cycles", st, c.Cycles)
	}
	var firstAdd, lastQuery int
	for i, ev := range tr.Events {
		switch ev.Op {
		case isa.OpAdd, isa.OpAddi, isa.OpSub:
			if firstAdd == 0 {
				firstAdd = i
			}
		case isa.OpXor, isa.OpSlli, isa.OpSrli, isa.OpOr:
		default:
			if !isa.IsCompare(ev.Op) {
				t.Fatalf("unexpected query op %v at %d", ev.Op, i)
			}
			if firstAdd == 0 {
				t.Fatalf("compare query at %d before the fold phase", i)
			}
		}
		lastQuery = i
	}
	if firstAdd == 0 {
		t.Fatal("no adder queries recorded")
	}
	// All low-onset queries live in the trailing fold phase...
	if frac := float64(lastQuery-firstAdd) / float64(len(tr.Events)); frac > 0.15 {
		t.Errorf("fold phase spans %.0f%% of the queries, want a short tail", frac*100)
	}
	// ...which starts well past the last checkpoint before it.
	cp := tr.CheckpointBefore(firstAdd)
	if cp.EventIndex == 0 && len(tr.Checkpoints) > 1 {
		t.Errorf("fold phase not past the first checkpoint boundary (ckpt event %d, fold at %d)",
			cp.EventIndex, firstAdd)
	}
	if gap := firstAdd - cp.EventIndex; gap < 1000 {
		t.Errorf("fold starts only %d queries past its checkpoint; want a long shared prefix", gap)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("median"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("micro_mul_16bit"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Errorf("unknown name must error")
	}
}
