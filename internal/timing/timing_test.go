package timing

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestFactorAnchorsPaperNumbers(t *testing.T) {
	m := DefaultVddDelay()
	// The paper's Fig. 1: with noise clipped at 2 sigma, first FI moves
	// from 707 MHz to 661 MHz (sigma = 10 mV) and 588 MHz (25 mV).
	cases := []struct {
		droop     float64
		wantedMHz float64
	}{
		{0.020, 661},
		{0.050, 588},
	}
	for _, c := range cases {
		m1 := m.FactorRel(VRef, -c.droop)
		got := 707 / m1
		if math.Abs(got-c.wantedMHz) > 0.005*c.wantedMHz {
			t.Errorf("first FI for droop %v V: %v MHz, want about %v (0.5%%)",
				c.droop, got, c.wantedMHz)
		}
	}
}

func TestFactorProperties(t *testing.T) {
	m := DefaultVddDelay()
	if f := m.Factor(VRef); math.Abs(f-1) > 1e-12 {
		t.Errorf("Factor(VRef) = %v, want 1", f)
	}
	if m.Factor(0.6) <= 1 {
		t.Errorf("lower voltage must be slower")
	}
	if m.Factor(0.8) >= 1 {
		t.Errorf("higher voltage must be faster")
	}
	if !math.IsInf(m.Factor(m.Vt), 1) {
		t.Errorf("Factor at threshold must diverge")
	}
	// Monotone decreasing in V.
	prev := math.Inf(1)
	for v := 0.35; v <= 1.2; v += 0.01 {
		f := m.Factor(v)
		if f >= prev {
			t.Fatalf("Factor not strictly decreasing at %v", v)
		}
		prev = f
	}
}

func TestEquivalentVoltageInvertsFactor(t *testing.T) {
	m := DefaultVddDelay()
	for _, g := range []float64{1.0, 1.05, 1.114, 1.3} {
		v := m.EquivalentVoltage(g)
		if math.Abs(m.Factor(v)-g) > 1e-9 {
			t.Errorf("EquivalentVoltage(%v) = %v does not invert (factor %v)",
				g, v, m.Factor(v))
		}
	}
	// The paper's Fig. 7 landmark: an 11.4% frequency gain is worth
	// running at about 0.667 V.
	v := m.EquivalentVoltage(1.114)
	if math.Abs(v-0.667) > 0.003 {
		t.Errorf("equivalent voltage for 11.4%% gain = %v, want about 0.667", v)
	}
}

func TestFitAlphaPowerRecoversModel(t *testing.T) {
	truth := VddDelay{Vt: 0.30, Alpha: 1.35}
	var pts []Point
	for _, v := range []float64{0.6, 0.7, 0.8, 0.9, 1.0} {
		pts = append(pts, Point{V: v, Delay: 1414 * truth.Factor(v)})
	}
	got, err := FitAlphaPower(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Vt-truth.Vt) > 0.01 || math.Abs(got.Alpha-truth.Alpha) > 0.05 {
		t.Errorf("fit = %+v, want %+v", got, truth)
	}
	// And the fitted model predicts held-out voltages well.
	for _, v := range []float64{0.65, 0.75} {
		p, q := got.Factor(v), truth.Factor(v)
		if math.Abs(p-q)/q > 0.01 {
			t.Errorf("fit prediction at %v: %v vs %v", v, p, q)
		}
	}
}

func TestFitAlphaPowerErrors(t *testing.T) {
	if _, err := FitAlphaPower([]Point{{0.6, 1}, {0.7, 2}}); err == nil {
		t.Errorf("too few points must error")
	}
	if _, err := FitAlphaPower([]Point{{0.6, 1}, {0.7, -2}, {0.8, 1}}); err == nil {
		t.Errorf("negative delay must error")
	}
}

func TestNoise(t *testing.T) {
	n := NewNoise(0.010)
	if n.WorstDroop() != 0.020 {
		t.Errorf("worst droop = %v", n.WorstDroop())
	}
	rng := stats.NewRand(3)
	for i := 0; i < 10000; i++ {
		dv := n.Sample(rng)
		if math.Abs(dv) > 0.020+1e-15 {
			t.Fatalf("noise %v beyond clip", dv)
		}
	}
	z := NewNoise(0)
	if z.Sample(rng) != 0 {
		t.Errorf("zero-sigma noise must be zero")
	}
}

func TestCDFViolationProb(t *testing.T) {
	// Arrivals 100..1000 ps, setup 30.
	arr := []float64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	c := NewCDF(arr, 30)
	if got := c.ViolationProb(2000); got != 0 {
		t.Errorf("long period: prob %v, want 0", got)
	}
	if got := c.ViolationProb(50); got != 1 {
		t.Errorf("tiny period: prob %v, want 1", got)
	}
	// Period 530: violation iff arr > 500, i.e. 5 of 10 samples.
	if got := c.ViolationProb(530); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("prob at 530 = %v, want 0.5", got)
	}
	// Boundary: arr + setup == period is NOT a violation.
	if got := c.ViolationProb(1030); got != 0 {
		t.Errorf("boundary arrival counted as violation: %v", got)
	}
	if got := c.MaxPs(); got != 1000 {
		t.Errorf("MaxPs = %v", got)
	}
	onset := c.OnsetMHz()
	if math.Abs(onset-1e6/1030) > 1e-9 {
		t.Errorf("onset = %v", onset)
	}
	if got := c.ViolationProb(circuitPeriod(onset) * 0.999); got == 0 {
		t.Errorf("just above onset must violate")
	}
}

func circuitPeriod(fMHz float64) float64 { return 1e6 / fMHz }

func TestCDFScaledEquivalence(t *testing.T) {
	arr := []float64{100, 400, 900}
	c := NewCDF(arr, 30)
	// Scaling all delays by m is the same as shrinking the period by m.
	f := func(periodRaw, mRaw uint16) bool {
		period := 100 + float64(periodRaw%2000)
		m := 0.8 + float64(mRaw%100)/250 // 0.8 .. 1.2
		return c.ViolationProbScaled(period, m) == c.ViolationProb(period/m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: violation probability is monotone non-increasing in period
// and non-decreasing in the scale factor.
func TestCDFMonotoneProperty(t *testing.T) {
	arr := []float64{50, 150, 250, 350, 800, 1200}
	c := NewCDF(arr, 25)
	f := func(p1, p2 uint16) bool {
		a, b := float64(p1%3000), float64(p2%3000)
		if a > b {
			a, b = b, a
		}
		return c.ViolationProb(a) >= c.ViolationProb(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil, 30)
	if c.ViolationProb(100) != 0 || c.MaxPs() != 0 {
		t.Errorf("empty CDF must never violate")
	}
	if !math.IsInf(c.OnsetMHz(), 1) {
		t.Errorf("empty CDF onset must be +inf")
	}
}
