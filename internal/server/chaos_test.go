package server

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
)

// TestChaosBackendFailureMarksFailed drives a flaky backend: an
// injected fault mid-run marks the job failed with the injected cause,
// the failure does not satisfy dedup, and stats count it honestly.
func TestChaosBackendFailureMarksFailed(t *testing.T) {
	chaos := &ChaosBackend{Inner: &fakeBackend{}, FailEvery: 2}
	m := NewManager(Options{System: system(), Backend: chaos})
	defer m.Shutdown(context.Background())

	// Run 1 (doomed: FailEvery=2 dooms runs 2, 4, ... — run 1 survives).
	ok1, _, err := m.Submit(smallSpec(701))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, m, ok1.ID); st.State != StateDone {
		t.Fatalf("run 1 state = %s (%s), want done", st.State, st.Error)
	}
	// Run 2 is doomed.
	bad, _, err := m.Submit(smallSpec(702))
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, m, bad.ID)
	if st.State != StateFailed {
		t.Fatalf("doomed run state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, ErrInjected.Error()) {
		t.Errorf("failure cause %q does not carry the injected fault", st.Error)
	}
	if _, err := m.Result(bad.ID); err == nil {
		t.Error("failed job served a result")
	}
	// A failed fingerprint must not satisfy dedup: the resubmission is a
	// fresh job (run 3, which survives).
	retry, deduped, err := m.Submit(smallSpec(702))
	if err != nil {
		t.Fatal(err)
	}
	if deduped || retry.ID == bad.ID {
		t.Fatalf("resubmit after failure deduped onto the dead job %s", bad.ID)
	}
	if st := waitDone(t, m, retry.ID); st.State != StateDone {
		t.Fatalf("resubmitted run state = %s (%s), want done", st.State, st.Error)
	}
	if got := m.Stats(); got.Failed != 1 || got.Done != 2 {
		t.Errorf("stats = %+v, want Failed=1 Done=2", got)
	}
	if chaos.Runs() != 3 {
		t.Errorf("backend saw %d runs, want 3", chaos.Runs())
	}
}

// TestChaosMidGridFailureResumesFromStore is the S4 headline: a real
// grid run killed mid-grid leaves the artifact store uncorrupted with a
// genuine partial checkpoint, and a healthy daemon over the same store
// completes the same job from the cached cells.
func TestChaosMidGridFailureResumesFromStore(t *testing.T) {
	dir := t.TempDir()
	spec := smallSpec(77) // two grid points

	// Pass 1: the chaos backend aborts the grid after one completed
	// point, exactly like a worker dying mid-run.
	store1, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sys1 := core.New(testConfig())
	sys1.AttachStore(store1)
	chaos := &ChaosBackend{
		Inner:           GridBackend{System: sys1, Store: store1},
		FailEvery:       1,
		FailAfterPoints: 1,
	}
	m1 := NewManager(Options{System: sys1, Store: store1, Backend: chaos})
	j, _, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, m1, j.ID)
	if st.State != StateFailed {
		t.Fatalf("chaos run state = %s (%s), want failed", st.State, st.Error)
	}
	if !strings.Contains(st.Error, ErrInjected.Error()) {
		t.Errorf("chaos run cause %q does not carry the injected fault", st.Error)
	}
	m1.Shutdown(context.Background())

	// Pass 2: a fresh daemon with a healthy backend over the same store.
	// The job must complete, serving the checkpointed prefix from cache —
	// proof the mid-grid failure corrupted nothing.
	store2, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sys2 := core.New(testConfig())
	sys2.AttachStore(store2)
	m2 := NewManager(Options{System: sys2, Store: store2})
	defer m2.Shutdown(context.Background())
	j2, deduped, err := m2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if deduped {
		t.Fatal("fresh daemon reported in-memory dedup")
	}
	st2 := waitDone(t, m2, j2.ID)
	if st2.State != StateDone {
		t.Fatalf("warm resubmit state = %s (%s), want done", st2.State, st2.Error)
	}
	if st2.Cells != 2 {
		t.Fatalf("warm resubmit cells = %d, want 2", st2.Cells)
	}
	if st2.CachedCells < 1 {
		t.Errorf("warm resubmit served %d cached cells, want the checkpointed prefix (>=1)", st2.CachedCells)
	}
	if _, err := m2.Result(j2.ID); err != nil {
		t.Errorf("warm resubmit result: %v", err)
	}
}

// TestChaosSlowBackendCancel pins that a slow backend stays cancellable:
// the injected delay is context-aware, so a cancel lands immediately.
func TestChaosSlowBackendCancel(t *testing.T) {
	chaos := &ChaosBackend{Inner: &fakeBackend{}, Delay: time.Hour}
	m := NewManager(Options{System: system(), Backend: chaos})
	defer m.Shutdown(context.Background())

	j, _, err := m.Submit(smallSpec(703))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, j.ID)
	start := time.Now()
	if ok, err := m.Cancel(j.ID); err != nil || !ok {
		t.Fatalf("cancel: ok=%v err=%v", ok, err)
	}
	st := waitDone(t, m, j.ID)
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Errorf("cancel of a delayed run took %s", waited)
	}
}
