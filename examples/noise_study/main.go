// Noise study: how supply-voltage noise erodes the frequency headroom
// that dynamic timing slack provides (the mechanism behind the paper's
// Figs. 1 and 5). For each noise sigma, the example sweeps the k-means
// kernel and reports where correctness first degrades, contrasting the
// statistical model C against the pessimistic static model B+.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.DefaultConfig()
	cfg.DTA.Cycles = 2048
	sys := repro.NewSystem(cfg)
	kmeans, err := repro.BenchmarkByName("kmeans")
	if err != nil {
		log.Fatal(err)
	}
	sta := sys.STALimitMHz(0.7)
	fmt.Printf("STA limit: %.0f MHz at 0.7 V\n\n", sta)
	fmt.Printf("%10s %8s | %16s | %16s\n", "", "", "model C", "model B+")
	fmt.Printf("%10s %8s | %16s | %16s\n", "noise", "", "PoFF (gain)", "first failure")

	var freqs []float64
	for f := 560.0; f <= 950; f += 10 {
		freqs = append(freqs, f)
	}
	for _, sigma := range []float64{0, 0.010, 0.025} {
		row := fmt.Sprintf("%7.0f mV %8s |", sigma*1000, "")
		for _, kind := range []string{"C", "B+"} {
			k := kind
			if sigma == 0 && kind == "B+" {
				k = "B"
			}
			spec := repro.Spec{
				System: sys,
				Bench:  kmeans,
				Model:  repro.ModelSpec{Kind: k, Vdd: 0.7, Sigma: sigma},
				Trials: 25,
				Seed:   7,
			}
			pts, err := repro.Sweep(spec, freqs)
			if err != nil {
				log.Fatal(err)
			}
			if poff, ok := repro.PoFF(pts); ok {
				row += fmt.Sprintf(" %6.0f MHz %+5.1f%% |", poff, (poff/sta-1)*100)
			} else {
				row += fmt.Sprintf(" %16s |", "none in range")
			}
		}
		fmt.Println(row)
	}
	fmt.Println("\nModel B+ collapses at a single noise-shifted threshold for every")
	fmt.Println("workload; model C's statistical, instruction-aware view keeps the")
	fmt.Println("usable transition region visible.")
}
