package gates

import (
	"math"
	"testing"
	"testing/quick"
)

// buildTestAdder returns a small ripple-carry adder netlist for n bits.
func buildTestAdder(n int, seed int64) (*Netlist, []int32) {
	b := NewBuilder(NewDelayModel(seed))
	as := make([]int32, n)
	bs := make([]int32, n)
	for i := range as {
		as[i] = b.Input()
	}
	for i := range bs {
		bs[i] = b.Input()
	}
	sum := make([]int32, n)
	c := b.Const(false)
	for i := 0; i < n; i++ {
		sum[i] = b.Xor3(as[i], bs[i], c)
		c = b.Maj3(as[i], bs[i], c)
	}
	for i, s := range sum {
		b.Output(nameOf(i), s)
	}
	return b.Build(), sum
}

func nameOf(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func packAdd(n int, a, bb uint64) []bool {
	in := make([]bool, 2*n)
	for i := 0; i < n; i++ {
		in[i] = a>>uint(i)&1 == 1
		in[n+i] = bb>>uint(i)&1 == 1
	}
	return in
}

func TestEvalKinds(t *testing.T) {
	cases := []struct {
		k       Kind
		a, b, c bool
		want    bool
	}{
		{KindNot, true, false, false, false},
		{KindAnd2, true, true, false, true},
		{KindAnd2, true, false, false, false},
		{KindOr2, false, false, false, false},
		{KindNand2, true, true, false, false},
		{KindNor2, false, false, false, true},
		{KindXor2, true, false, false, true},
		{KindXnor2, true, true, false, true},
		{KindXor3, true, true, true, true},
		{KindXor3, true, true, false, false},
		{KindMaj3, true, true, false, true},
		{KindMaj3, true, false, false, false},
		{KindMux2, false, true, false, true}, // sel=0 -> a0
		{KindMux2, true, true, false, false}, // sel=1 -> a1
		{KindConst0, true, true, true, false},
		{KindConst1, false, false, false, true},
	}
	for _, c := range cases {
		if got := Eval(c.k, c.a, c.b, c.c); got != c.want {
			t.Errorf("eval(%v,%v,%v,%v) = %v, want %v", c.k, c.a, c.b, c.c, got, c.want)
		}
	}
}

func TestAdderFunctional(t *testing.T) {
	const n = 8
	nl, _ := buildTestAdder(n, 1)
	sim := NewSim(nl, nl.DelaysAt(1))
	f := func(a, bb uint8) bool {
		sim.Settle(packAdd(n, uint64(a), uint64(bb)))
		var got uint8
		for i := 0; i < n; i++ {
			if sim.Value(nl.Outputs[nameOf(i)]) {
				got |= 1 << uint(i)
			}
		}
		return got == a+bb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTimedCycleMatchesFunctional(t *testing.T) {
	const n = 8
	nl, _ := buildTestAdder(n, 2)
	sim := NewSim(nl, nl.DelaysAt(1))
	ref := NewSim(nl, nl.DelaysAt(1))
	sim.Settle(packAdd(n, 0, 0))
	vals := []struct{ a, b uint64 }{
		{1, 1}, {255, 1}, {0x55, 0xAA}, {0, 0}, {0xFF, 0xFF}, {3, 7},
	}
	for _, v := range vals {
		sim.Cycle(packAdd(n, v.a, v.b))
		ref.Settle(packAdd(n, v.a, v.b))
		for i := 0; i < n; i++ {
			node := nl.Outputs[nameOf(i)]
			if sim.Value(node) != ref.Value(node) {
				t.Fatalf("a=%d b=%d bit %d: timed %v vs functional %v",
					v.a, v.b, i, sim.Value(node), ref.Value(node))
			}
		}
	}
}

func TestArrivalReflectsCarryChain(t *testing.T) {
	const n = 16
	nl, _ := buildTestAdder(n, 3)
	sim := NewSim(nl, nl.DelaysAt(1))
	msb := nl.Outputs[nameOf(n-1)]

	// 0 + 0 -> 0xFFFF + 1 carries through the whole chain.
	sim.Settle(packAdd(n, 0, 0))
	sim.Cycle(packAdd(n, 0xFFFF, 1))
	longArr := sim.Arrival(msb)

	// 0 + 0 -> 1 + 1: only a local change at the bottom; the MSB sum
	// may toggle via its local carry but far earlier.
	sim.Settle(packAdd(n, 0, 0))
	sim.Cycle(packAdd(n, 1, 0))
	shortArr := sim.Arrival(msb)

	if longArr <= 0 {
		t.Fatalf("long carry produced no MSB transition")
	}
	if shortArr >= longArr {
		t.Errorf("short-carry arrival %v not below long-carry arrival %v", shortArr, longArr)
	}

	// STA bounds every dynamic arrival.
	sta := nl.STA(nl.DelaysAt(1))
	if longArr > sta[msb]+1e-9 {
		t.Errorf("dynamic arrival %v exceeds STA %v", longArr, sta[msb])
	}
}

// Property: for random input sequences, every node's dynamic arrival is
// bounded by its static arrival, and the timed final values match a
// functional evaluation.
func TestArrivalBoundedBySTAProperty(t *testing.T) {
	const n = 8
	nl, _ := buildTestAdder(n, 4)
	sta := nl.STA(nl.DelaysAt(1))
	sim := NewSim(nl, nl.DelaysAt(1))
	ref := NewSim(nl, nl.DelaysAt(1))
	sim.Settle(packAdd(n, 0, 0))
	f := func(a, bb uint8) bool {
		sim.Cycle(packAdd(n, uint64(a), uint64(bb)))
		ref.Settle(packAdd(n, uint64(a), uint64(bb)))
		for g := 0; g < nl.NumNodes(); g++ {
			if sim.Arrival(int32(g)) > sta[g]+1e-9 {
				return false
			}
			if sim.Value(int32(g)) != ref.Value(int32(g)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNoToggleNoArrival(t *testing.T) {
	const n = 8
	nl, _ := buildTestAdder(n, 5)
	sim := NewSim(nl, nl.DelaysAt(1))
	sim.Settle(packAdd(n, 3, 4))
	sim.Cycle(packAdd(n, 3, 4)) // identical inputs: nothing toggles
	for g := 0; g < nl.NumNodes(); g++ {
		if sim.Arrival(int32(g)) != 0 {
			t.Fatalf("node %d has arrival %v with unchanged inputs", g, sim.Arrival(int32(g)))
		}
	}
	if sim.Transitions != 0 {
		t.Errorf("transitions = %d, want 0", sim.Transitions)
	}
}

func TestDelaysAtScaling(t *testing.T) {
	nl, _ := buildTestAdder(4, 6)
	d1 := nl.DelaysAt(1)
	d2 := nl.DelaysAt(1.5)
	for i := range d1 {
		if d1[i] == 0 {
			continue
		}
		ratio := d2[i] / d1[i]
		// eta within [0.95, 1.05] so ratio in [1.5^0.95, 1.5^1.05].
		lo, hi := math.Pow(1.5, 0.94), math.Pow(1.5, 1.06)
		if ratio < lo || ratio > hi {
			t.Errorf("gate %d scale ratio %v outside [%v,%v]", i, ratio, lo, hi)
		}
	}
}

func TestScaleCalibration(t *testing.T) {
	nl, _ := buildTestAdder(8, 7)
	w0, _ := nl.WorstOutputArrival(nl.DelaysAt(1))
	nl.Scale(2)
	w1, _ := nl.WorstOutputArrival(nl.DelaysAt(1))
	if math.Abs(w1-2*w0) > 1e-9 {
		t.Errorf("scaling by 2 changed worst from %v to %v", w0, w1)
	}
}

func TestDeterministicDelayModel(t *testing.T) {
	a, _ := buildTestAdder(8, 42)
	b, _ := buildTestAdder(8, 42)
	for i := range a.D0 {
		if a.D0[i] != b.D0[i] || a.Eta[i] != b.Eta[i] {
			t.Fatalf("delay model not deterministic at gate %d", i)
		}
	}
}

func TestInertialFilterRemovesNarrowPulse(t *testing.T) {
	// A slow AND gate fed by a signal and its delayed complement: the
	// static hazard pulse is narrower than the AND delay and must be
	// filtered.
	dm := NewDelayModel(1)
	dm.Variation = 0
	b := NewBuilder(dm)
	x := b.Input()
	inv := b.Not(x) // 11 ps
	and := b.And(x, inv)
	b.Output("y", and)
	nl := b.Build()
	sim := NewSim(nl, nl.DelaysAt(1))
	sim.Settle([]bool{false})
	sim.Cycle([]bool{true})
	// x rises at 0, inv falls at 11; the AND sees (1,1) during (0,11):
	// an 11 ps pulse against a 19 ps AND delay -> rejected.
	if sim.Value(and) != false {
		t.Errorf("AND settled wrong")
	}
	if got := sim.Arrival(and); got != 0 {
		t.Errorf("narrow pulse leaked to output (arrival %v)", got)
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewBuilder(NewDelayModel(1))
	x := b.Input()
	b.Output("x", x)
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("duplicate output did not panic")
			}
		}()
		b.Output("x", x)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("forward fanin reference did not panic")
			}
		}()
		b.And(x, 99)
	}()
}
