package bench

import "fmt"

// MatDim is the matrix dimension (Table 1: 16x16).
const MatDim = 16

// MatMult8 returns the 8-bit matrix multiplication benchmark. Operand
// magnitudes are 8-bit, so the multiplier is characterized with 8-bit
// operands — the reason the paper's Fig. 6(a) sees a markedly higher
// fully-correct rate below the STA limit than the 16-bit variant.
func MatMult8() *Benchmark {
	return &Benchmark{
		Name:         "mat_mult_8bit",
		MetricName:   "mean squared error (MSE)",
		Profile:      mulProfile("u8"),
		PaperKCycles: 60,
		OutSymbol:    "cmat",
		OutWords:     MatDim * MatDim,
		Metric:       MSEMetric,
		QualityName:  "output SNR",
		Quality:      func(int64) QualityFunc { return SNRQuality },
		Build:        func(seed int64) (string, []uint32, error) { return buildMatMult(seed, 8) },
	}
}

// MatMult16 returns the 16-bit matrix multiplication benchmark.
func MatMult16() *Benchmark {
	return &Benchmark{
		Name:         "mat_mult_16bit",
		MetricName:   "mean squared error (MSE)",
		Profile:      mulProfile("u16"),
		PaperKCycles: 60,
		OutSymbol:    "cmat",
		OutWords:     MatDim * MatDim,
		Metric:       MSEMetric,
		QualityName:  "output SNR",
		Quality:      func(int64) QualityFunc { return SNRQuality },
		Build:        func(seed int64) (string, []uint32, error) { return buildMatMult(seed, 16) },
	}
}

func buildMatMult(seed int64, bits int) (string, []uint32, error) {
	r := rng(seed)
	mask := uint32(1)<<uint(bits) - 1
	n := MatDim * MatDim
	a := make([]uint32, n)
	b := make([]uint32, n)
	for i := range a {
		a[i] = r.Uint32() & mask
		b[i] = r.Uint32() & mask
	}
	// Golden model with the same wrap-around semantics as the 32-bit
	// data path (l.mul keeps the low 32 product bits).
	want := make([]uint32, n)
	for i := 0; i < MatDim; i++ {
		for j := 0; j < MatDim; j++ {
			var acc uint32
			for k := 0; k < MatDim; k++ {
				acc += a[i*MatDim+k] * b[k*MatDim+j]
			}
			want[i*MatDim+j] = acc
		}
	}

	src := fmt.Sprintf(`
; C = A x B for %dx%d matrices of %d-bit values
	l.movhi r10,hi(amat)
	l.ori   r10,r10,lo(amat)
	l.movhi r11,hi(bmat)
	l.ori   r11,r11,lo(bmat)
	l.movhi r12,hi(cmat)
	l.ori   r12,r12,lo(cmat)
	l.sys 1
	l.addi  r2,r0,0         ; i
iloop:
	l.addi  r3,r0,0         ; j
jloop:
	l.addi  r5,r0,0         ; acc
	l.addi  r4,r0,0         ; k
	l.slli  r6,r2,6         ; i * 16 words * 4
	l.add   r6,r10,r6       ; &A[i][0]
	l.slli  r7,r3,2
	l.add   r7,r11,r7       ; &B[0][j]
kloop:
	l.lwz   r8,0(r6)
	l.lwz   r13,0(r7)
	l.mul   r14,r8,r13
	l.add   r5,r5,r14
	l.addi  r6,r6,4
	l.addi  r7,r7,64        ; next row of B
	l.addi  r4,r4,1
	l.sfltsi r4,%d
	l.bf    kloop
	l.slli  r8,r2,6
	l.add   r8,r12,r8
	l.slli  r13,r3,2
	l.add   r8,r8,r13
	l.sw    0(r8),r5        ; C[i][j] = acc
	l.addi  r3,r3,1
	l.sfltsi r3,%d
	l.bf    jloop
	l.addi  r2,r2,1
	l.sfltsi r2,%d
	l.bf    iloop
	l.sys 2
	l.sys 0
.data
cmat:
	.space %d
amat:
`, MatDim, MatDim, bits, MatDim, MatDim, MatDim, 4*n)
	src += wordList(a)
	src += "bmat:\n"
	src += wordList(b)
	return src, want, nil
}
