package mc

import (
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dta"
)

var (
	sysOnce sync.Once
	sys     *core.System
)

func system() *core.System {
	sysOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.DTA = dta.Config{Cycles: 768, Seed: 5}
		sys = core.New(cfg)
	})
	return sys
}

func TestGoldenPointIsPerfect(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "none"},
		Trials: 5,
		Seed:   1,
	}
	pt, err := Run(spec, 700)
	if err != nil {
		t.Fatal(err)
	}
	if pt.FinishedPct != 100 || pt.CorrectPct != 100 {
		t.Errorf("golden point: finished %v correct %v", pt.FinishedPct, pt.CorrectPct)
	}
	if pt.FIRate != 0 || pt.OutputErr != 0 {
		t.Errorf("golden point injected: rate %v err %v", pt.FIRate, pt.OutputErr)
	}
	if pt.KernelCycles < 100_000 {
		t.Errorf("median kernel cycles %v suspiciously low", pt.KernelCycles)
	}
}

func TestModelCBelowOnsetIsClean(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.MatMult8(),
		Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0},
		Trials: 5,
		Seed:   1,
	}
	pt, err := Run(spec, 700)
	if err != nil {
		t.Fatal(err)
	}
	if pt.CorrectPct != 100 || pt.FIRate != 0 {
		t.Errorf("below onset: correct %v rate %v", pt.CorrectPct, pt.FIRate)
	}
}

func TestModelBDestroysEverythingAboveSTA(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.MatMult8(),
		Model:  core.ModelSpec{Kind: "B", Vdd: 0.7},
		Trials: 5,
		Seed:   1,
	}
	sta := system().STALimitMHz(0.7)
	pt, err := Run(spec, sta+2)
	if err != nil {
		t.Fatal(err)
	}
	if pt.CorrectPct != 0 {
		t.Errorf("model B above STA left %v%% correct", pt.CorrectPct)
	}
	if pt.FIRate < 100 {
		t.Errorf("model B above STA FI rate %v too low", pt.FIRate)
	}
	below, err := Run(spec, sta-2)
	if err != nil {
		t.Fatal(err)
	}
	if below.CorrectPct != 100 {
		t.Errorf("model B below STA broke runs: %v%%", below.CorrectPct)
	}
}

func TestReproducibility(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
		Trials: 10,
		Seed:   99,
	}
	a, err := Run(spec, 860)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, 860)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed differed:\n%+v\n%+v", a, b)
	}
	spec.Seed = 100
	c, err := Run(spec, 860)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Errorf("different seeds produced identical points")
	}
}

func TestSweepAndPoFF(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
		Trials: 10,
		Seed:   1,
	}
	pts, err := Sweep(spec, []float64{700, 800, 900, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("sweep returned %d points", len(pts))
	}
	if pts[0].CorrectPct != 100 {
		t.Errorf("lowest point not clean")
	}
	if pts[3].CorrectPct == 100 {
		t.Errorf("highest point still fully correct")
	}
	poff, ok := PoFF(pts)
	if !ok {
		t.Fatalf("no PoFF found")
	}
	if poff < 750 || poff > 1000 {
		t.Errorf("PoFF %v outside expected range", poff)
	}
	if g := GainOverSTA(777.7, 707); g < 9.9 || g > 10.1 {
		t.Errorf("gain computation wrong: %v", g)
	}
}

func TestNonALULimitRejected(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "C", Vdd: 0.7},
		Trials: 2,
		Seed:   1,
	}
	if _, err := Run(spec, 1200); err == nil {
		t.Errorf("operating point beyond the non-ALU safe limit accepted")
	}
}

func TestPerTrialInputsMicro(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.MicroAdd32(),
		Model:  core.ModelSpec{Kind: "none"},
		Trials: 6,
		Seed:   1,
	}
	pt, err := Run(spec, 700)
	if err != nil {
		t.Fatal(err)
	}
	if pt.CorrectPct != 100 {
		t.Errorf("micro golden not correct: %v%%", pt.CorrectPct)
	}
}

func TestModelAInjects(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.MatMult8(),
		Model:  core.ModelSpec{Kind: "A", ProbA: 1e-4},
		Trials: 5,
		Seed:   1,
	}
	pt, err := Run(spec, 700)
	if err != nil {
		t.Fatal(err)
	}
	if pt.FIRate == 0 {
		t.Errorf("model A injected nothing")
	}
	// Model A has no frequency awareness: the rate is identical at any
	// frequency.
	pt2, err := Run(spec, 900)
	if err != nil {
		t.Fatal(err)
	}
	if pt.FIRate != pt2.FIRate {
		t.Errorf("model A rate depends on frequency: %v vs %v", pt.FIRate, pt2.FIRate)
	}
}
