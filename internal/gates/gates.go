// Package gates provides the gate-level netlist substrate of the
// simulator: combinational netlists built from a small standard-cell-like
// library, with per-gate nominal delays and per-gate voltage-sensitivity
// exponents (process heterogeneity), plus static longest-path analysis and
// an event-driven timed logic simulator used by the dynamic timing
// analysis (internal/dta).
//
// The timed simulator applies a new input vector at t=0 and propagates
// transitions through the netlist in topological order using a transport
// delay model with inertial pulse rejection (pulses narrower than a gate's
// delay are filtered). The quantity of interest per evaluation is each
// output's arrival time: the time of its final transition within the
// cycle, which is exactly what the paper's dynamic timing analysis
// extracts from the post place & route netlist.
//
// gates is a leaf of the dependency graph (stdlib only);
// internal/circuit generates its netlists from these cells and
// internal/dta simulates them.
package gates

import (
	"fmt"
	"math"
	"math/rand"
)

// Kind enumerates the cell library.
type Kind uint8

// Cell kinds. Xor3 and Maj3 exist so full adders cost two cells instead of
// five, which keeps multiplier netlists tractable; their delays are set to
// match the equivalent two-level decompositions.
const (
	KindInput Kind = iota
	KindConst0
	KindConst1
	KindNot
	KindBuf
	KindAnd2
	KindOr2
	KindNand2
	KindNor2
	KindXor2
	KindXnor2
	KindXor3
	KindMaj3
	KindMux2 // fanin: sel, a0, a1; out = sel ? a1 : a0
	numKinds
)

// fanins returns the number of inputs a kind consumes.
func (k Kind) fanins() int {
	switch k {
	case KindInput, KindConst0, KindConst1:
		return 0
	case KindNot, KindBuf:
		return 1
	case KindXor3, KindMaj3, KindMux2:
		return 3
	default:
		return 2
	}
}

// String names the kind.
func (k Kind) String() string {
	names := [...]string{"input", "const0", "const1", "not", "buf", "and2",
		"or2", "nand2", "nor2", "xor2", "xnor2", "xor3", "maj3", "mux2"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Eval computes the boolean function of a kind on up to three inputs.
func Eval(k Kind, a, b, c bool) bool {
	switch k {
	case KindConst0:
		return false
	case KindConst1:
		return true
	case KindNot:
		return !a
	case KindBuf, KindInput:
		return a
	case KindAnd2:
		return a && b
	case KindOr2:
		return a || b
	case KindNand2:
		return !(a && b)
	case KindNor2:
		return !(a || b)
	case KindXor2:
		return a != b
	case KindXnor2:
		return a == b
	case KindXor3:
		return (a != b) != c
	case KindMaj3:
		return a && b || a && c || b && c
	case KindMux2:
		if a {
			return c
		}
		return b
	}
	return false
}

// Netlist is an immutable combinational netlist. Node IDs are dense and
// creation order is a valid topological order (the builder only connects
// existing nodes).
type Netlist struct {
	Kind  []Kind
	Fanin [][3]int32
	D0    []float64 // nominal delay in ps at the reference voltage
	Eta   []float64 // per-gate voltage-sensitivity exponent scale

	Inputs  []int32          // Input nodes in declaration order
	Outputs map[string]int32 // named endpoints
}

// NumNodes returns the node count.
func (n *Netlist) NumNodes() int { return len(n.Kind) }

// Scale multiplies every nominal gate delay by f. It is used to calibrate
// a unit's worst path against the synthesis clock constraint.
func (n *Netlist) Scale(f float64) {
	for i := range n.D0 {
		n.D0[i] *= f
	}
}

// DelaysAt returns the per-gate delay vector for a global voltage-derived
// delay factor. Each gate responds as factor^eta with its own eta, which
// models that paths of different gate composition do not scale perfectly
// uniformly over voltage.
func (n *Netlist) DelaysAt(factor float64) []float64 {
	d := make([]float64, len(n.D0))
	if factor == 1 {
		copy(d, n.D0)
		return d
	}
	for i := range d {
		d[i] = n.D0[i] * math.Pow(factor, n.Eta[i])
	}
	return d
}

// STA computes, for every node, the static worst-case arrival time under
// the given delay vector: the classic longest-path recurrence with all
// primary inputs arriving at t=0. It ignores logic masking, exactly like
// the static analysis that model B of the paper builds on.
func (n *Netlist) STA(delays []float64) []float64 {
	arr := make([]float64, n.NumNodes())
	for g := range n.Kind {
		k := n.Kind[g]
		nf := k.fanins()
		if nf == 0 {
			arr[g] = 0
			continue
		}
		worst := 0.0
		for i := 0; i < nf; i++ {
			if a := arr[n.Fanin[g][i]]; a > worst {
				worst = a
			}
		}
		arr[g] = worst + delays[g]
	}
	return arr
}

// WorstOutputArrival returns the largest STA arrival over the named
// outputs and the name achieving it.
func (n *Netlist) WorstOutputArrival(delays []float64) (float64, string) {
	arr := n.STA(delays)
	worst, at := 0.0, ""
	for name, node := range n.Outputs {
		if arr[node] > worst || at == "" {
			worst, at = arr[node], name
		}
	}
	return worst, at
}

// DelayModel assigns nominal delays and voltage sensitivities to new
// gates. FOUR/NAND-class cells are fast; XOR-class cells slow, mirroring
// standard-cell libraries.
type DelayModel struct {
	rng *rand.Rand
	// Variation is the half-width of the uniform per-gate delay spread
	// (0.1 means +/-10%).
	Variation float64
	// EtaSpread is the half-width of the per-gate voltage-sensitivity
	// spread around 1.0.
	EtaSpread float64
}

// NewDelayModel returns a seeded delay model with the default spreads.
func NewDelayModel(seed int64) *DelayModel {
	return &DelayModel{rng: rand.New(rand.NewSource(seed)), Variation: 0.10, EtaSpread: 0.05}
}

// base nominal delays (ps) per kind at the reference voltage. The
// absolute scale is irrelevant because units are calibrated against the
// clock constraint; the ratios follow typical 28 nm cell libraries.
var baseDelay = [numKinds]float64{
	KindInput: 0, KindConst0: 0, KindConst1: 0,
	KindNot: 11, KindBuf: 14,
	KindAnd2: 19, KindOr2: 20, KindNand2: 14, KindNor2: 16,
	KindXor2: 28, KindXnor2: 28,
	KindXor3: 52, KindMaj3: 30,
	KindMux2: 24,
}

// delay draws a nominal delay and sensitivity for one instance of kind k.
func (m *DelayModel) delay(k Kind) (d0, eta float64) {
	b := baseDelay[k]
	if b == 0 {
		return 0, 1
	}
	d0 = b * (1 + m.Variation*(2*m.rng.Float64()-1))
	eta = 1 + m.EtaSpread*(2*m.rng.Float64()-1)
	return d0, eta
}

// Builder incrementally constructs a netlist.
type Builder struct {
	nl *Netlist
	dm *DelayModel
}

// NewBuilder returns a builder using the given delay model.
func NewBuilder(dm *DelayModel) *Builder {
	return &Builder{
		nl: &Netlist{Outputs: map[string]int32{}},
		dm: dm,
	}
}

func (b *Builder) add(k Kind, f0, f1, f2 int32) int32 {
	id := int32(len(b.nl.Kind))
	n := int32(id)
	for i, f := range [3]int32{f0, f1, f2} {
		if i < k.fanins() && (f < 0 || f >= n) {
			panic(fmt.Sprintf("gates: fanin %d of new %v node out of range", f, k))
		}
	}
	d0, eta := b.dm.delay(k)
	b.nl.Kind = append(b.nl.Kind, k)
	b.nl.Fanin = append(b.nl.Fanin, [3]int32{f0, f1, f2})
	b.nl.D0 = append(b.nl.D0, d0)
	b.nl.Eta = append(b.nl.Eta, eta)
	if k == KindInput {
		b.nl.Inputs = append(b.nl.Inputs, id)
	}
	return id
}

// Input declares a primary input.
func (b *Builder) Input() int32 { return b.add(KindInput, 0, 0, 0) }

// Const declares a constant node.
func (b *Builder) Const(v bool) int32 {
	if v {
		return b.add(KindConst1, 0, 0, 0)
	}
	return b.add(KindConst0, 0, 0, 0)
}

// Not adds an inverter.
func (b *Builder) Not(x int32) int32 { return b.add(KindNot, x, 0, 0) }

// Buf adds a buffer.
func (b *Builder) Buf(x int32) int32 { return b.add(KindBuf, x, 0, 0) }

// And adds a 2-input AND.
func (b *Builder) And(x, y int32) int32 { return b.add(KindAnd2, x, y, 0) }

// Or adds a 2-input OR.
func (b *Builder) Or(x, y int32) int32 { return b.add(KindOr2, x, y, 0) }

// Nand adds a 2-input NAND.
func (b *Builder) Nand(x, y int32) int32 { return b.add(KindNand2, x, y, 0) }

// Nor adds a 2-input NOR.
func (b *Builder) Nor(x, y int32) int32 { return b.add(KindNor2, x, y, 0) }

// Xor adds a 2-input XOR.
func (b *Builder) Xor(x, y int32) int32 { return b.add(KindXor2, x, y, 0) }

// Xnor adds a 2-input XNOR.
func (b *Builder) Xnor(x, y int32) int32 { return b.add(KindXnor2, x, y, 0) }

// Xor3 adds a 3-input XOR (full-adder sum).
func (b *Builder) Xor3(x, y, z int32) int32 { return b.add(KindXor3, x, y, z) }

// Maj3 adds a 3-input majority (full-adder carry).
func (b *Builder) Maj3(x, y, z int32) int32 { return b.add(KindMaj3, x, y, z) }

// Mux adds a 2:1 mux: sel ? a1 : a0.
func (b *Builder) Mux(sel, a0, a1 int32) int32 { return b.add(KindMux2, sel, a0, a1) }

// Output names a node as an endpoint.
func (b *Builder) Output(name string, node int32) {
	if _, dup := b.nl.Outputs[name]; dup {
		panic(fmt.Sprintf("gates: duplicate output %q", name))
	}
	b.nl.Outputs[name] = node
}

// Build finalizes and returns the netlist.
func (b *Builder) Build() *Netlist { return b.nl }

// Trans is one output transition of the timed simulation.
type Trans struct {
	T float64
	V bool
}

// Sim is a reusable timed simulator for one netlist. It is not safe for
// concurrent use; create one per goroutine.
type Sim struct {
	nl    *Netlist
	delay []float64
	val   []bool // stable values after the last Cycle/Settle
	old   []bool
	arr   []float64
	wf    [][]Trans
	// Transitions counts output transitions processed by the last
	// Cycle call, a measure of switching activity.
	Transitions int
}

// NewSim creates a simulator with the given delay vector (length must
// match the netlist).
func NewSim(nl *Netlist, delays []float64) *Sim {
	if len(delays) != nl.NumNodes() {
		panic("gates: delay vector length mismatch")
	}
	s := &Sim{
		nl:    nl,
		delay: delays,
		val:   make([]bool, nl.NumNodes()),
		old:   make([]bool, nl.NumNodes()),
		arr:   make([]float64, nl.NumNodes()),
		wf:    make([][]Trans, nl.NumNodes()),
	}
	// Establish a consistent initial state (constants settled).
	s.Settle(make([]bool, len(nl.Inputs)))
	return s
}

// Settle applies an input vector (in Netlist.Inputs order) and propagates
// it functionally with all arrivals reset to zero. Use it to establish
// the pre-cycle state.
func (s *Sim) Settle(inputs []bool) {
	if len(inputs) != len(s.nl.Inputs) {
		panic("gates: input vector length mismatch")
	}
	in := 0
	for g := range s.nl.Kind {
		k := s.nl.Kind[g]
		switch k {
		case KindInput:
			s.val[g] = inputs[in]
			in++
		default:
			f := s.nl.Fanin[g]
			var a, b, c bool
			switch k.fanins() {
			case 1:
				a = s.val[f[0]]
			case 2:
				a, b = s.val[f[0]], s.val[f[1]]
			case 3:
				a, b, c = s.val[f[0]], s.val[f[1]], s.val[f[2]]
			}
			s.val[g] = Eval(k, a, b, c)
		}
		s.arr[g] = 0
	}
}

// Cycle applies a new input vector at t=0 and performs the timed
// propagation. Afterwards Value and Arrival report the settled value and
// the final-transition time of every node.
func (s *Sim) Cycle(inputs []bool) {
	if len(inputs) != len(s.nl.Inputs) {
		panic("gates: input vector length mismatch")
	}
	copy(s.old, s.val)
	s.Transitions = 0
	in := 0
	for g := range s.nl.Kind {
		k := s.nl.Kind[g]
		wf := s.wf[g][:0]
		switch k {
		case KindInput:
			nv := inputs[in]
			in++
			if nv != s.old[g] {
				wf = append(wf, Trans{0, nv})
				s.val[g] = nv
				s.arr[g] = 0
			} else {
				s.val[g] = nv
				s.arr[g] = 0
			}
		case KindConst0, KindConst1:
			// No activity.
		default:
			wf = s.propagate(g, wf)
		}
		s.wf[g] = wf
		if n := len(wf); n > 0 {
			s.val[g] = wf[n-1].V
			s.arr[g] = wf[n-1].T
			s.Transitions += n
		} else {
			s.val[g] = s.old[g]
			if k == KindInput {
				s.val[g] = inputs[in-1]
			}
			s.arr[g] = 0
		}
	}
}

// propagate computes the output waveform of gate g from its fanin
// waveforms using transport delay with inertial pulse rejection.
func (s *Sim) propagate(g int, out []Trans) []Trans {
	k := s.nl.Kind[g]
	nf := k.fanins()
	f := s.nl.Fanin[g]
	d := s.delay[g]

	// Current input values start at the pre-cycle stable values.
	var cur [3]bool
	var idx [3]int
	for i := 0; i < nf; i++ {
		cur[i] = s.old[f[i]]
	}
	initial := Eval(k, cur[0], cur[1], cur[2])

	tailV := func() bool {
		if len(out) > 0 {
			return out[len(out)-1].V
		}
		return initial
	}

	for {
		// Find the earliest pending transition among fanins.
		t := math.Inf(1)
		for i := 0; i < nf; i++ {
			w := s.wf[f[i]]
			if idx[i] < len(w) && w[idx[i]].T < t {
				t = w[idx[i]].T
			}
		}
		if math.IsInf(t, 1) {
			break
		}
		// Apply every transition at exactly t.
		for i := 0; i < nf; i++ {
			w := s.wf[f[i]]
			for idx[i] < len(w) && w[idx[i]].T == t {
				cur[i] = w[idx[i]].V
				idx[i]++
			}
		}
		v := Eval(k, cur[0], cur[1], cur[2])
		if v == tailV() {
			continue
		}
		tt := t + d
		if n := len(out); n > 0 && tt-out[n-1].T < d {
			// Inertial rejection: the previous pulse is narrower
			// than the gate delay; it never appears at the output.
			out = out[:n-1]
		} else {
			out = append(out, Trans{tt, v})
		}
	}
	return out
}

// Value returns the settled value of a node after the last Cycle/Settle.
func (s *Sim) Value(node int32) bool { return s.val[node] }

// Arrival returns the final-transition time of a node in the last Cycle
// (0 when the node did not toggle).
func (s *Sim) Arrival(node int32) float64 { return s.arr[node] }
