// Cold-path benches for the pipelined concurrent resolver: cold grids
// pay DTA characterization, golden-trace recording, model construction
// and hazard-table builds before the first trial runs. The headline
// pair measures the singleflight win under contention — 8 concurrent
// submissions of one cold grid against a shared System (every build
// deduped to a single flight) against the same 8 submissions each
// paying its builds privately, the per-request cost the old caches
// imposed on concurrent identical requests. The ratio is work-dedup,
// not core-scaling, so it holds on any machine width. Acceptance bar:
// deduped >= 3x over duplicated (scripts/bench_cold.sh asserts it in
// CI from a fresh run). The second pair isolates the pipelining of one
// lone submission against the serial resolve-then-run reference.
package repro

import (
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mc"
)

// coldSystem builds a private reduced-characterization System so every
// iteration starts with empty model/golden/hazard caches.
func coldSystem() *core.System {
	cfg := core.DefaultConfig()
	cfg.DTA.Cycles = 512
	return core.New(cfg)
}

// coldGrid is the benchmark workload: a multi-benchmark, multi-model,
// multi-frequency grid whose 8 cells share 2 goldens, 4 models and 4
// hazard tables — enough distinct keys that resolution dominates and
// the resolver has real parallelism to exploit.
func coldGrid(sys *core.System, serial bool) mc.Grid {
	return mc.Grid{
		Spec: mc.Spec{
			System:  sys,
			Model:   core.ModelSpec{Kind: "B+", Vdd: 0.7, Sigma: 0.010},
			Trials:  2,
			Workers: 8,
			Seed:    3,
		},
		Axes: mc.Axes{
			Benches: []*bench.Benchmark{bench.Median(), bench.MatMult8()},
			Kinds:   []string{"B+", "C"},
			Freqs:   []float64{700, 720},
		},
		SerialResolve: serial,
	}
}

// BenchmarkColdSubmissionsDeduped: 8 concurrent cold submissions of the
// same grid against one shared System. The singleflight caches collapse
// the 8 identical build sets into one flight per distinct key, so total
// work per iteration is one cold run plus 7 cheap waits.
func BenchmarkColdSubmissionsDeduped(b *testing.B) {
	const clients = 8
	for i := 0; i < b.N; i++ {
		sys := coldSystem()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := coldGrid(sys, false).Run(); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
		b.ReportMetric(float64(sys.ModelsBuiltCount()), "models-built")
		b.ReportMetric(float64(sys.GoldenRecordedCount()), "goldens-recorded")
		b.ReportMetric(float64(sys.HazardBuiltCount()), "hazards-built")
	}
}

// BenchmarkColdSubmissionsDuplicated: the same 8 concurrent cold
// submissions, each against a private System on the pre-pipelining
// serial path — every submission pays its own characterization,
// goldens, models and hazards, the way concurrent identical requests
// behaved before the caches became singleflight.
func BenchmarkColdSubmissionsDuplicated(b *testing.B) {
	const clients = 8
	for i := 0; i < b.N; i++ {
		var built, recorded, hazards int64
		var mu sync.Mutex
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sys := coldSystem()
				if _, err := coldGrid(sys, true).Run(); err != nil {
					b.Error(err)
					return
				}
				mu.Lock()
				built += sys.ModelsBuiltCount()
				recorded += sys.GoldenRecordedCount()
				hazards += sys.HazardBuiltCount()
				mu.Unlock()
			}()
		}
		wg.Wait()
		b.ReportMetric(float64(built), "models-built")
		b.ReportMetric(float64(recorded), "goldens-recorded")
		b.ReportMetric(float64(hazards), "hazards-built")
	}
}

// BenchmarkColdGridPipelined: one lone cold submission on the default
// path — cells resolve concurrently and stream into the trial engine
// as they land.
func BenchmarkColdGridPipelined(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := coldGrid(coldSystem(), false).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdGridSerial: the same lone submission on the reference
// path — every cell resolved in enumeration order before the engine
// starts.
func BenchmarkColdGridSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := coldGrid(coldSystem(), true).Run(); err != nil {
			b.Fatal(err)
		}
	}
}
