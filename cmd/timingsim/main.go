// Command timingsim runs one benchmark under a fault-injection model at
// one operating point and reports the paper's application metrics.
//
//	timingsim -bench median -model C -freq 800 -vdd 0.7 -sigma 0.010 -trials 200
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fi"
	"repro/internal/mc"
	"repro/internal/progress"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("timingsim: ")
	name := flag.String("bench", "median", "benchmark name (median, mat_mult_8bit, mat_mult_16bit, kmeans, dijkstra, micro_*)")
	model := flag.String("model", "C", "fault model: none, A, B, B+, C")
	freq := flag.Float64("freq", 707, "clock frequency in MHz")
	vdd := flag.Float64("vdd", 0.7, "supply voltage in V")
	sigma := flag.Float64("sigma", 0, "supply noise sigma in V")
	probA := flag.Float64("probA", 1e-6, "model A per-endpoint flip probability")
	trials := flag.Int("trials", 100, "Monte-Carlo trials (fixed mode)")
	trialsMin := flag.Int("trials-min", 0, "adaptive mode: first batch size (with -trials-max)")
	trialsMax := flag.Int("trials-max", 0, "adaptive mode: trial budget (0 = fixed -trials)")
	seed := flag.Int64("seed", 1, "random seed")
	dtaCycles := flag.Int("dta", 8192, "DTA characterization cycles")
	cacheDir := flag.String("cache-dir", "", "artifact cache directory (characterizations, golden traces)")
	stale := flag.Bool("stale", false, "use stale-capture fault semantics")
	joint := flag.Bool("joint", false, "use joint (bootstrap) endpoint sampling for model C")
	quiet := flag.Bool("q", false, "suppress the stderr progress line")
	flag.Parse()

	if *trialsMin > 0 && *trialsMax <= 0 {
		log.Fatal("-trials-min has no effect without -trials-max (adaptive mode)")
	}
	b, err := bench.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.DTA.Cycles = *dtaCycles
	sys := core.New(cfg)
	if *cacheDir != "" {
		st, err := artifact.Open(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		sys.AttachStore(st)
	}

	sem := fi.FlipBit
	if *stale {
		sem = fi.StaleCapture
	}
	sampling := fi.Independent
	if *joint {
		sampling = fi.Joint
	}
	var rep *progress.Reporter
	if !*quiet {
		rep = progress.New(os.Stderr, "timingsim")
	}
	spec := mc.Spec{
		System: sys,
		Bench:  b,
		Model: core.ModelSpec{
			Kind: *model, Vdd: *vdd, Sigma: *sigma, ProbA: *probA,
			Sem: sem, Sampling: sampling,
		},
		Trials:    *trials,
		TrialsMin: *trialsMin,
		TrialsMax: *trialsMax,
		Seed:      *seed,
		Progress: func(p mc.Progress) {
			rep.Update(p.DoneTrials, p.TotalTrials)
		},
	}
	pt, err := mc.Run(spec, *freq)
	rep.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark      %s (%s)\n", b.Name, b.MetricName)
	fmt.Printf("model          %s @ %.1f MHz, Vdd %.3f V, sigma %.0f mV\n",
		*model, *freq, *vdd, *sigma*1000)
	fmt.Printf("STA limit      %.1f MHz at this Vdd\n", sys.STALimitMHz(*vdd))
	fmt.Printf("trials         %d\n", pt.Trials)
	fmt.Printf("finished       %.1f%%\n", pt.FinishedPct)
	fmt.Printf("correct        %.1f%%\n", pt.CorrectPct)
	fmt.Printf("FI rate        %.4f per kCycle\n", pt.FIRate)
	fmt.Printf("output error   %.4g (finished runs)\n", pt.OutputErr)
	fmt.Printf("kernel cycles  %.0f\n", pt.KernelCycles)
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "timingsim: cache %s: %s\n", *cacheDir, sys.CacheSummary())
	}
}
