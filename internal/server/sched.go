// Priority-lane admission and dispatch. The scheduler replaces the
// single FIFO job channel of the first service iteration with a small
// fixed set of bounded lanes ("interactive" ahead of "batch"), a smooth
// weighted-round-robin dequeue so a batch flood cannot starve
// interactive work (and sustained interactive load cannot fully starve
// batch), and load-shedding that rejects — or, for an interactive
// arrival against a full global queue, displaces — the lowest-priority
// work first. The scheduler owns only queued jobs and its own mutex;
// the Manager layers job lifecycle, quotas and Retry-After estimation
// on top (lock order: Manager.mu, then scheduler.mu — pop blocks
// without the manager lock).

package server

import (
	"sync"
)

// Lane names, highest priority first. The set is fixed: two lanes keep
// the admission story explainable (shed batch first, always) while the
// scheduler itself is written against a list and would take more.
const (
	LaneInteractive = "interactive"
	LaneBatch       = "batch"
)

// LaneConfig bounds and weights one scheduling lane.
type LaneConfig struct {
	// Cap bounds jobs queued in this lane (default: the manager's
	// QueueCap, i.e. no stricter than the global bound).
	Cap int
	// Weight is the lane's share of the weighted-round-robin dequeue
	// (defaults: interactive 4, batch 1 — four interactive dequeues per
	// batch dequeue while both lanes are backlogged).
	Weight int
}

// laneState is one lane's queue plus its smooth-WRR credit counter.
type laneState struct {
	name    string
	cap     int
	weight  int
	queue   []*Job
	credit  int
	shed    int64 // admissions rejected because this lane (or the global queue) was full
	dequeue int64 // jobs handed to runners from this lane
}

// scheduler is the bounded, prioritized successor of the job channel.
type scheduler struct {
	mu        sync.Mutex
	cond      *sync.Cond
	lanes     []*laneState // priority order: lanes[0] is served first under equal credit
	globalCap int
	closed    bool
}

func newScheduler(globalCap int, cfgs map[string]LaneConfig) *scheduler {
	s := &scheduler{globalCap: globalCap}
	s.cond = sync.NewCond(&s.mu)
	defaults := []struct {
		name   string
		weight int
	}{{LaneInteractive, 4}, {LaneBatch, 1}}
	for _, d := range defaults {
		l := &laneState{name: d.name, cap: globalCap, weight: d.weight}
		if c, ok := cfgs[d.name]; ok {
			if c.Cap > 0 {
				l.cap = c.Cap
			}
			if c.Weight > 0 {
				l.weight = c.Weight
			}
		}
		s.lanes = append(s.lanes, l)
	}
	return s
}

func (s *scheduler) lane(name string) *laneState {
	for _, l := range s.lanes {
		if l.name == name {
			return l
		}
	}
	return s.lanes[len(s.lanes)-1]
}

// depthLocked is the total queued count across lanes. Callers hold mu.
func (s *scheduler) depthLocked() int {
	n := 0
	for _, l := range s.lanes {
		n += len(l.queue)
	}
	return n
}

// depth is the total queued count across lanes.
func (s *scheduler) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.depthLocked()
}

// push admits j into the named lane. It returns errQueueFull when the
// lane or the global queue is at capacity — except that an interactive
// arrival against a full global queue displaces the most recently
// queued job of a lower-priority lane instead: the displaced job is
// returned for the manager to finalize as shed (honestly terminal, not
// silently dropped), and j takes its slot. Displacement never crosses
// upward: batch arrivals are simply rejected.
func (s *scheduler) push(j *Job, lane string) (displaced *Job, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrDraining
	}
	l := s.lane(lane)
	if len(l.queue) >= l.cap {
		l.shed++
		return nil, ErrQueueFull
	}
	if s.depthLocked() >= s.globalCap {
		displaced = s.displaceBelowLocked(l)
		if displaced == nil {
			l.shed++
			return nil, ErrQueueFull
		}
	}
	l.queue = append(l.queue, j)
	s.cond.Signal()
	return displaced, nil
}

// displaceBelowLocked pops the newest queued job from the
// lowest-priority non-empty lane strictly below l, or nil when every
// queued job is at or above l's priority.
func (s *scheduler) displaceBelowLocked(l *laneState) *Job {
	rank := 0
	for i, cand := range s.lanes {
		if cand == l {
			rank = i
			break
		}
	}
	for i := len(s.lanes) - 1; i > rank; i-- {
		victim := s.lanes[i]
		if n := len(victim.queue); n > 0 {
			j := victim.queue[n-1]
			victim.queue = victim.queue[:n-1]
			victim.shed++
			return j
		}
	}
	return nil
}

// pop blocks until a job is available (weighted-round-robin across
// non-empty lanes, smooth WRR: each round every backlogged lane gains
// its weight in credit and the richest lane — ties to the
// higher-priority lane — pays the round's total and dequeues) or the
// scheduler is closed and fully drained, in which case ok is false.
// After close, remaining queued jobs are still handed out: drain
// semantics are the manager's, not the scheduler's.
func (s *scheduler) pop() (j *Job, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		var best *laneState
		total := 0
		for _, l := range s.lanes {
			if len(l.queue) == 0 {
				continue
			}
			l.credit += l.weight
			total += l.weight
			if best == nil || l.credit > best.credit {
				best = l
			}
		}
		if best != nil {
			best.credit -= total
			j := best.queue[0]
			best.queue = best.queue[1:]
			best.dequeue++
			return j, true
		}
		// Nothing queued: reset credits so a later burst starts fair
		// instead of inheriting debt from an idle period.
		for _, l := range s.lanes {
			l.credit = 0
		}
		if s.closed {
			return nil, false
		}
		s.cond.Wait()
	}
}

// remove deletes a queued job (cancelled or promoted before dispatch),
// reporting whether it was found. This is what makes DELETE of a queued
// job release its queue slot immediately instead of leaving a tombstone
// for the runner to skip.
func (s *scheduler) remove(j *Job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, l := range s.lanes {
		for i, q := range l.queue {
			if q == j {
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
				return true
			}
		}
	}
	return false
}

// promote moves a queued job into a higher-priority lane (dedup of an
// interactive submission onto a queued batch job). The global job count
// is unchanged, so the target lane's cap is deliberately not enforced.
func (s *scheduler) promote(j *Job, lane string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, l := range s.lanes {
		if l.name == lane {
			continue
		}
		for i, q := range l.queue {
			if q == j {
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
				t := s.lane(lane)
				t.queue = append(t.queue, j)
				s.cond.Signal()
				return true
			}
		}
	}
	return false
}

// close wakes every popper; queued jobs continue to drain.
func (s *scheduler) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}

// LaneStatus is one lane's public snapshot for /v1/stats.
type LaneStatus struct {
	Name     string `json:"name"`
	Depth    int    `json:"depth"`
	Cap      int    `json:"cap"`
	Weight   int    `json:"weight"`
	Shed     int64  `json:"shed"`
	Dequeued int64  `json:"dequeued"`
}

// snapshot reports every lane, priority order.
func (s *scheduler) snapshot() []LaneStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]LaneStatus, 0, len(s.lanes))
	for _, l := range s.lanes {
		out = append(out, LaneStatus{
			Name: l.name, Depth: len(l.queue), Cap: l.cap,
			Weight: l.weight, Shed: l.shed, Dequeued: l.dequeue,
		})
	}
	return out
}
