package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dta"
	"repro/internal/mc"
	"repro/internal/server"
)

var (
	sysOnce sync.Once
	sys     *core.System
)

// system returns a shared small-DTA stack; the stub backend never runs
// a grid, but the manager needs a System for dedup fingerprints.
func system() *core.System {
	sysOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.DTA = dta.Config{Cycles: 768, Seed: 5}
		sys = core.New(cfg)
	})
	return sys
}

// stubBackend simulates fixed-duration jobs so saturation tests control
// service time exactly.
type stubBackend struct{ delay time.Duration }

func (b stubBackend) Run(ctx context.Context, spec server.JobSpec, onProgress func(mc.Progress)) ([]mc.CellResult, error) {
	if b.delay > 0 {
		select {
		case <-time.After(b.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	onProgress(mc.Progress{DoneTrials: spec.Trials, TotalTrials: spec.Trials, DonePoints: 1, TotalPoints: 1})
	return nil, nil
}

// spec builds the i-th tiny submission for a lane; seeds make each one
// unique unless the caller wants dedup.
func spec(priority string, base int64) func(i int) map[string]any {
	return func(i int) map[string]any {
		return map[string]any{
			"benches": []string{"median"}, "freqs": []float64{700},
			"trials": 2, "seed": base + int64(i), "priority": priority,
		}
	}
}

// TestSaturationSLO is the headline chaos/load invariant: a batch flood
// against a small queue with a flaky backend sheds honestly (429 with
// Retry-After, or displaced jobs reported terminal), never loses an
// accepted job, and keeps interactive time-to-start bounded.
func TestSaturationSLO(t *testing.T) {
	m := server.NewManager(server.Options{
		System:   system(),
		Parallel: 1,
		QueueCap: 4,
		Backend:  &server.ChaosBackend{Inner: stubBackend{delay: 10 * time.Millisecond}, FailEvery: 9},
	})
	defer m.Shutdown(context.Background())
	ts := httptest.NewServer(server.Handler(m))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	rep, err := Run(ctx, Config{
		Base: ts.URL,
		Lanes: []LaneLoad{
			{Priority: "batch", Rate: 200, Jobs: 40, Spec: spec("batch", 10_000), APIKey: "flooder"},
			{Priority: "interactive", Rate: 20, Jobs: 8, Spec: spec("interactive", 20_000), APIKey: "human"},
		},
		WaitTimeout: 60 * time.Second,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Invariant 1: no accepted job is ever lost.
	if rep.TotalLost != 0 {
		t.Fatalf("lost %d accepted jobs", rep.TotalLost)
	}
	batch, inter := rep.Lane("batch"), rep.Lane("interactive")
	if batch == nil || inter == nil {
		t.Fatalf("missing lane reports: %+v", rep.Lanes)
	}

	// Invariant 2: the flood actually overloaded the daemon, and every
	// shed response advertised when to come back.
	if batch.Submitted != 40 || batch.Shed == 0 {
		t.Fatalf("batch lane not saturated: %+v", batch)
	}
	if batch.RetryAfterSeen != batch.Shed {
		t.Errorf("only %d of %d shed responses carried Retry-After", batch.RetryAfterSeen, batch.Shed)
	}

	// Invariant 3: every accepted job reached an honestly reported
	// terminal state (done, failed by chaos, or displaced→canceled).
	for _, r := range []*LaneReport{batch, inter} {
		if terminal := r.Done + r.Failed + r.Canceled; terminal != r.Accepted {
			t.Errorf("%s lane: %d accepted but %d terminal (%+v)", r.Priority, r.Accepted, terminal, r)
		}
	}

	// Invariant 4: interactive work stays responsive under the flood.
	// Service time is ~10ms and interactive displaces queued batch work,
	// so even a generous bound catches priority inversion.
	if inter.Accepted == 0 {
		t.Fatal("no interactive job accepted under the flood")
	}
	if inter.Start.N > 0 && inter.Start.P99 > 5000 {
		t.Errorf("interactive p99 time-to-start = %.0fms under batch flood", inter.Start.P99)
	}
	if rep.DurationSec <= 0 {
		t.Errorf("report duration = %v", rep.DurationSec)
	}
}

// TestDedupedLaneReporting pins the dedup accounting: identical specs
// collapse onto one job and every tracked submission still resolves.
func TestDedupedLaneReporting(t *testing.T) {
	m := server.NewManager(server.Options{System: system(), Backend: stubBackend{}})
	defer m.Shutdown(context.Background())
	ts := httptest.NewServer(server.Handler(m))
	defer ts.Close()

	fixed := func(i int) map[string]any {
		return map[string]any{
			"benches": []string{"median"}, "freqs": []float64{700},
			"trials": 2, "seed": int64(1),
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := Run(ctx, Config{
		Base:  ts.URL,
		Lanes: []LaneLoad{{Priority: "batch", Rate: 500, Jobs: 5, Spec: fixed}},
		Seed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	lane := rep.Lane("batch")
	if lane.Accepted != 1 || lane.Deduped != 4 {
		t.Fatalf("accepted=%d deduped=%d, want 1/4", lane.Accepted, lane.Deduped)
	}
	if lane.Lost != 0 || lane.Done != 5 {
		t.Errorf("lost=%d done=%d, want 0/5 (every tracked submission resolves)", lane.Lost, lane.Done)
	}
}

// TestFaultProxyInjects pins the proxy's three behaviours: pass-through
// transparency, injected 503s, and dropped connections.
func TestFaultProxyInjects(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("origin"))
	}))
	defer origin.Close()

	cases := []struct {
		name   string
		faults Faults
		check  func(t *testing.T, resp *http.Response, err error, p *FaultProxy)
	}{
		{"pass", Faults{}, func(t *testing.T, resp *http.Response, err error, p *FaultProxy) {
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("pass-through: resp=%v err=%v", resp, err)
			}
			if _, _, passed := p.Counts(); passed != 1 {
				t.Errorf("passed count = %d", passed)
			}
		}},
		{"error", Faults{ErrProb: 1}, func(t *testing.T, resp *http.Response, err error, p *FaultProxy) {
			if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("injected error: resp=%v err=%v", resp, err)
			}
			if _, errored, _ := p.Counts(); errored != 1 {
				t.Errorf("errored count = %d", errored)
			}
		}},
		{"drop", Faults{DropProb: 1}, func(t *testing.T, resp *http.Response, err error, p *FaultProxy) {
			if err == nil {
				resp.Body.Close()
				t.Fatal("dropped request still answered")
			}
			if dropped, _, _ := p.Counts(); dropped != 1 {
				t.Errorf("dropped count = %d", dropped)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewFaultProxy(origin.URL, tc.faults, 1)
			if err != nil {
				t.Fatal(err)
			}
			front := httptest.NewServer(p)
			defer front.Close()
			resp, err := http.Get(front.URL + "/anything")
			if err == nil {
				defer resp.Body.Close()
			}
			tc.check(t, resp, err, p)
		})
	}
}
