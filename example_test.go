package repro_test

import (
	"fmt"

	repro "repro"
)

// exampleSystem builds a system with a tiny DTA characterization so the
// examples run in milliseconds; real studies use DefaultConfig as-is.
func exampleSystem() *repro.System {
	cfg := repro.DefaultConfig()
	cfg.DTA.Cycles = 256
	return repro.NewSystem(cfg)
}

// ExampleRun evaluates a single Monte-Carlo data point: the median
// kernel without fault injection, which must finish bit-exact.
func ExampleRun() {
	sys := exampleSystem()
	b, err := repro.BenchmarkByName("median")
	if err != nil {
		fmt.Println(err)
		return
	}
	pt, err := repro.Run(repro.Spec{
		System: sys,
		Bench:  b,
		Model:  repro.ModelSpec{Kind: "none"},
		Trials: 4,
		Seed:   1,
	}, 700)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("finished %.0f%%, correct %.0f%%, FI rate %.0f\n",
		pt.FinishedPct, pt.CorrectPct, pt.FIRate)
	// Output:
	// finished 100%, correct 100%, FI rate 0
}

// ExampleSweep runs the same configuration over a frequency list; the
// sweep engine schedules every (frequency, trial) pair onto one shared
// worker pool, and fixed seeds make the result reproducible.
func ExampleSweep() {
	sys := exampleSystem()
	b, err := repro.BenchmarkByName("median")
	if err != nil {
		fmt.Println(err)
		return
	}
	pts, err := repro.Sweep(repro.Spec{
		System: sys,
		Bench:  b,
		Model:  repro.ModelSpec{Kind: "none"},
		Trials: 2,
		Seed:   1,
	}, []float64{650, 700})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, p := range pts {
		fmt.Printf("%.0f MHz: correct %.0f%% (%d trials)\n", p.FreqMHz, p.CorrectPct, p.Trials)
	}
	// Output:
	// 650 MHz: correct 100% (2 trials)
	// 700 MHz: correct 100% (2 trials)
}

// ExamplePoFF locates the point of first failure — the lowest frequency
// whose data point is no longer 100% correct — in an already-evaluated
// sweep.
func ExamplePoFF() {
	pts := []repro.Point{
		{FreqMHz: 700, CorrectPct: 100},
		{FreqMHz: 750, CorrectPct: 100},
		{FreqMHz: 800, CorrectPct: 97},
		{FreqMHz: 850, CorrectPct: 12},
	}
	if poff, ok := repro.PoFF(pts); ok {
		fmt.Printf("PoFF at %.0f MHz\n", poff)
	}
	// Output:
	// PoFF at 800 MHz
}
