// Command sweep runs a benchmark under a fault model across a frequency
// range and prints the four application metrics per point, including the
// point of first failure and its gain over the STA limit.
//
//	sweep -bench kmeans -model C -vdd 0.7 -sigma 0.010 -lo 680 -hi 950 -step 10
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	name := flag.String("bench", "median", "benchmark name")
	model := flag.String("model", "C", "fault model: A, B, B+, C")
	vdd := flag.Float64("vdd", 0.7, "supply voltage in V")
	sigma := flag.Float64("sigma", 0, "supply noise sigma in V")
	lo := flag.Float64("lo", 650, "sweep start in MHz")
	hi := flag.Float64("hi", 1100, "sweep end in MHz")
	step := flag.Float64("step", 25, "sweep step in MHz")
	trials := flag.Int("trials", 100, "Monte-Carlo trials per point")
	seed := flag.Int64("seed", 1, "random seed")
	dtaCycles := flag.Int("dta", 8192, "DTA characterization cycles")
	flag.Parse()

	b, err := bench.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.DTA.Cycles = *dtaCycles
	sys := core.New(cfg)
	spec := mc.Spec{
		System: sys,
		Bench:  b,
		Model:  core.ModelSpec{Kind: *model, Vdd: *vdd, Sigma: *sigma},
		Trials: *trials,
		Seed:   *seed,
	}
	var freqs []float64
	for f := *lo; f <= *hi; f += *step {
		freqs = append(freqs, f)
	}
	fmt.Printf("%8s %9s %9s %12s %14s\n", "f[MHz]", "finished", "correct", "FI/kCycle", b.MetricName)
	var pts []mc.Point
	for _, f := range freqs {
		p, err := mc.Run(spec, f)
		if err != nil {
			log.Fatal(err)
		}
		pts = append(pts, p)
		fmt.Printf("%8.1f %8.1f%% %8.1f%% %12.4f %14.6g\n",
			p.FreqMHz, p.FinishedPct, p.CorrectPct, p.FIRate, p.OutputErr)
	}
	sta := sys.STALimitMHz(*vdd)
	if poff, ok := mc.PoFF(pts); ok {
		fmt.Printf("PoFF %.1f MHz, STA limit %.1f MHz, gain %.1f%%\n",
			poff, sta, mc.GainOverSTA(poff, sta))
	} else {
		fmt.Printf("no failure in range (STA limit %.1f MHz)\n", sta)
	}
}
