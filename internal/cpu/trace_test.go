package cpu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
)

// traceKernel exercises every recorded facet: ALU work inside and
// outside the FI window, stores of all three widths, a load-use hazard
// and a loop, with a verifiable accumulator output.
const traceKernel = `
	l.addi r1,r0,0       ; accumulator
	l.addi r2,r0,20      ; loop counter
	l.movhi r3,hi(buf)
	l.ori   r3,r3,lo(buf)
	l.sys 1
loop:
	l.add  r1,r1,r2
	l.sw   0(r3),r1
	l.sh   4(r3),r1
	l.sb   6(r3),r1
	l.lwz  r4,0(r3)
	l.addi r4,r4,1       ; load-use stall
	l.addi r2,r2,-1
	l.sfgtsi r2,0
	l.bf   loop
	l.sys 2
	l.sys 0
.data
buf: .space 16
`

func goldenTrace(t *testing.T, every uint64) (*CPU, *Trace, *asm.Program) {
	t.Helper()
	p, err := asm.Assemble(traceKernel)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := New(mem.New(), nil, DefaultConfig())
	if err := c.Load(p); err != nil {
		t.Fatalf("load: %v", err)
	}
	tr := c.StartTrace(every)
	c.SetWatchdog(1_000_000)
	c.Run()
	if got := c.StopTrace(); got != tr {
		t.Fatalf("StopTrace returned a different trace")
	}
	if c.Status() != StatusExited {
		t.Fatalf("golden run ended %v (%v)", c.Status(), c.TrapErr())
	}
	return c, tr, p
}

func TestTraceRecordsALUActivity(t *testing.T) {
	c, tr, _ := goldenTrace(t, 64)
	if uint64(len(tr.Events)) != c.KernelALUCycles {
		t.Errorf("recorded %d events, want one per kernel ALU cycle (%d)",
			len(tr.Events), c.KernelALUCycles)
	}
	if tr.Cycles != c.Cycles || tr.KernelCycles != c.KernelCycles ||
		tr.Retired != c.Retired || tr.Status != StatusExited {
		t.Errorf("trace totals %+v do not match the core", tr)
	}
	// 20 loop iterations x 3 stores.
	if len(tr.Stores) != 60 {
		t.Errorf("store log has %d entries, want 60", len(tr.Stores))
	}
	// The three store widths appear in order.
	if tr.Stores[0].Size != 4 || tr.Stores[1].Size != 2 || tr.Stores[2].Size != 1 {
		t.Errorf("store sizes %d,%d,%d want 4,2,1",
			tr.Stores[0].Size, tr.Stores[1].Size, tr.Stores[2].Size)
	}
	// First in-window ALU event is the first l.add: 0 + 20, previous
	// latch holds the last pre-window ALU result (the l.ori address
	// formation).
	ev := tr.Events[0]
	if ev.Op != isa.OpAdd || ev.Result != 20 || ev.A != 0 || ev.B != 20 || ev.RD != 1 {
		t.Errorf("first event %+v, want l.add r1,r1,r2 = 20", ev)
	}
	// Events record the argument tuple Inject receives: the Prev chain
	// must match the previous event's Result once inside the window
	// (between consecutive in-window ALU cycles no other ALU op runs in
	// this kernel).
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Prev != tr.Events[i-1].Result {
			t.Fatalf("event %d: Prev %#x does not chain from previous Result %#x",
				i, tr.Events[i].Prev, tr.Events[i-1].Result)
		}
	}
}

func TestTraceCheckpointCoverage(t *testing.T) {
	c, tr, _ := goldenTrace(t, 64)
	if len(tr.Checkpoints) < 3 {
		t.Fatalf("only %d checkpoints over %d cycles at interval 64", len(tr.Checkpoints), c.Cycles)
	}
	if cp := tr.Checkpoints[0]; cp.Cycles != 0 || cp.EventIndex != 0 || cp.StoreIndex != 0 {
		t.Errorf("first checkpoint %+v, want the reset state", cp)
	}
	for i := 1; i < len(tr.Checkpoints); i++ {
		prev, cur := tr.Checkpoints[i-1], tr.Checkpoints[i]
		if cur.Cycles <= prev.Cycles || cur.EventIndex < prev.EventIndex || cur.StoreIndex < prev.StoreIndex {
			t.Fatalf("checkpoint %d not monotone: %+v after %+v", i, cur, prev)
		}
		// Checkpoints land on the first instruction boundary at or after
		// each interval multiple, so consecutive ones may sit up to one
		// instruction's charge (1 + branch penalty) closer than the
		// interval.
		if cur.Cycles < prev.Cycles+64-4 {
			t.Errorf("checkpoints %d cycles apart, want about the 64-cycle interval", cur.Cycles-prev.Cycles)
		}
	}
	// CheckpointBefore picks the latest checkpoint not past the event.
	for _, k := range []int{0, 1, len(tr.Events) / 2, len(tr.Events) - 1} {
		cp := tr.CheckpointBefore(k)
		if cp == nil || cp.EventIndex > k {
			t.Fatalf("CheckpointBefore(%d) = %+v", k, cp)
		}
	}
}

// TestRestoreResumesExactly is the checkpoint fidelity guarantee: a core
// restored at any checkpoint and run to completion must be
// indistinguishable from the uninterrupted run — registers, memory
// outputs, and every cycle/retirement/access counter.
func TestRestoreResumesExactly(t *testing.T) {
	ref, tr, p := goldenTrace(t, 64)
	for i := range tr.Checkpoints {
		cp := &tr.Checkpoints[i]
		m := mem.New()
		c := New(m, nil, DefaultConfig())
		if err := c.Restore(p, tr, cp); err != nil {
			t.Fatalf("restore at checkpoint %d: %v", i, err)
		}
		c.SetWatchdog(1_000_000)
		if c.Run() != StatusExited {
			t.Fatalf("resumed run from checkpoint %d ended %v (%v)", i, c.Status(), c.TrapErr())
		}
		if c.Regs != ref.Regs || c.PC != ref.PC || c.Flag != ref.Flag {
			t.Errorf("checkpoint %d: architectural state diverged", i)
		}
		if c.Cycles != ref.Cycles || c.KernelCycles != ref.KernelCycles ||
			c.KernelALUCycles != ref.KernelALUCycles || c.Retired != ref.Retired {
			t.Errorf("checkpoint %d: counters diverged: cycles %d/%d retired %d/%d",
				i, c.Cycles, ref.Cycles, c.Retired, ref.Retired)
		}
		if c.OpCounts != ref.OpCounts {
			t.Errorf("checkpoint %d: op counts diverged", i)
		}
		if c.Mem.Loads != ref.Mem.Loads || c.Mem.Stores != ref.Mem.Stores {
			t.Errorf("checkpoint %d: access counters diverged", i)
		}
		gotBuf, err := c.Mem.ReadWords(p.Symbols["buf"], 2)
		if err != nil {
			t.Fatal(err)
		}
		wantBuf, err := ref.Mem.ReadWords(p.Symbols["buf"], 2)
		if err != nil {
			t.Fatal(err)
		}
		for j := range gotBuf {
			if gotBuf[j] != wantBuf[j] {
				t.Errorf("checkpoint %d: memory word %d = %#x, want %#x", i, j, gotBuf[j], wantBuf[j])
			}
		}
	}
}

// TestRestoreMidWindowInjection restores inside the FI window and checks
// that an injector sees the same latch state a full run would: the first
// query after the restore point receives the Prev value the trace
// recorded for that event.
func TestRestoreMidWindowInjection(t *testing.T) {
	_, tr, p := goldenTrace(t, 64)
	// Pick a checkpoint strictly inside the event stream.
	var cp *Checkpoint
	for i := range tr.Checkpoints {
		if c := &tr.Checkpoints[i]; c.EventIndex > 0 && c.EventIndex < len(tr.Events) {
			cp = c
			break
		}
	}
	if cp == nil {
		t.Skip("no mid-stream checkpoint at this interval")
	}
	var seen []TraceEvent
	probe := injFunc(func(op isa.Op, r, prev uint32, f, pf bool) (uint32, bool, int) {
		seen = append(seen, TraceEvent{Op: op, Result: r, Prev: prev, Flag: f, PrevFlag: pf})
		return r, f, 0
	})
	c := New(mem.New(), probe, DefaultConfig())
	if err := c.Restore(p, tr, cp); err != nil {
		t.Fatal(err)
	}
	c.SetWatchdog(1_000_000)
	c.Run()
	rest := tr.Events[cp.EventIndex:]
	if len(seen) != len(rest) {
		t.Fatalf("resumed run issued %d queries, trace has %d after the checkpoint", len(seen), len(rest))
	}
	for i := range seen {
		want := TraceEvent{Op: rest[i].Op, Result: rest[i].Result, Prev: rest[i].Prev,
			Flag: rest[i].Flag, PrevFlag: rest[i].PrevFlag}
		if seen[i] != want {
			t.Fatalf("query %d after restore: got %+v, want %+v", i, seen[i], want)
		}
	}
}
