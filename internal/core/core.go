// Package core assembles the paper's simulation stack (Fig. 3): the
// generated, calibrated ALU netlists, the DTA characterizer, the
// Vdd-delay and noise models, the power model, and a factory for the
// fault-injection models A/B/B+/C bound to an operating point
// (frequency, supply voltage, noise sigma).
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/circuit"
	"repro/internal/cpu"
	"repro/internal/dta"
	"repro/internal/fi"
	"repro/internal/power"
	"repro/internal/timing"
)

// Config carries every tunable of the reproduction, defaulting to the
// paper's case study.
type Config struct {
	Circuit circuit.Config
	DTA     dta.Config
	Vdd     timing.VddDelay
	Power   power.Model
	CPU     cpu.Config
	// NonALUSafeMHz is the frequency below which all non-ALU paths are
	// guaranteed safe at the reference voltage (the constraint strategy
	// of [14]; 1.15 GHz at 0.7 V in the paper).
	NonALUSafeMHz float64
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		Circuit:       circuit.DefaultConfig(),
		DTA:           dta.DefaultConfig(),
		Vdd:           timing.DefaultVddDelay(),
		Power:         power.Default(),
		CPU:           cpu.DefaultConfig(),
		NonALUSafeMHz: 1150,
	}
}

// System is one instantiated simulation stack. Its configuration is
// immutable after construction and it is safe for concurrent use:
// characterizations cache inside Char and instantiated fault models
// cache inside the system itself (see Model).
type System struct {
	Cfg  Config
	ALU  *circuit.ALU
	Char *dta.Characterizer

	modelMu sync.Mutex
	models  map[modelKey]fi.Model
}

// New builds and calibrates a system.
func New(cfg Config) *System {
	alu := circuit.New(cfg.Circuit)
	return &System{
		Cfg:    cfg,
		ALU:    alu,
		Char:   dta.NewCharacterizer(alu, cfg.Vdd, cfg.DTA),
		models: map[modelKey]fi.Model{},
	}
}

// STALimitMHz returns the static timing limit at supply v (707 MHz at
// 0.7 V by calibration, scaled by the Vdd-delay factor elsewhere).
func (s *System) STALimitMHz(v float64) float64 {
	return s.ALU.STALimitMHz() / s.Cfg.Vdd.Factor(v)
}

// NonALUSafeMHz returns the non-ALU safe frequency at supply v. Above
// it, instructions outside the ALU data path are no longer protected and
// the simulation refuses the operating point rather than report
// meaningless results.
func (s *System) NonALUSafeMHz(v float64) float64 {
	return s.Cfg.NonALUSafeMHz / s.Cfg.Vdd.Factor(v)
}

// ModelSpec selects and parameterizes a fault-injection model.
type ModelSpec struct {
	Kind    string // "none", "A", "B", "B+", "C"
	Vdd     float64
	FreqMHz float64
	Sigma   float64 // supply-noise sigma in volts
	// ProbA is model A's fixed per-endpoint flip probability.
	ProbA float64
	// Profile selects operand-width-matched characterizations (model C).
	Profile dta.Profile
	// Sem is the fault semantics at violated endpoints.
	Sem fi.Semantics
	// Sampling selects model C's endpoint sampling strategy.
	Sampling fi.Sampling
}

// modelKey is the cache key for instantiated models. Profile (a map) is
// folded into a canonical string so the key is comparable.
type modelKey struct {
	Kind     string
	Vdd      float64
	FreqMHz  float64
	Sigma    float64
	ProbA    float64
	Profile  string
	Sem      fi.Semantics
	Sampling fi.Sampling
}

// profileString canonically encodes a Profile (sorted by unit) so that
// equal profiles hash to the same model cache entry.
func profileString(p dta.Profile) string {
	if len(p) == 0 {
		return ""
	}
	units := make([]int, 0, len(p))
	for u := range p {
		units = append(units, int(u))
	}
	sort.Ints(units)
	var b strings.Builder
	for _, u := range units {
		fmt.Fprintf(&b, "%d=%s;", u, p[circuit.UnitKind(u)])
	}
	return b.String()
}

func (spec ModelSpec) key() modelKey {
	return modelKey{
		Kind:     spec.Kind,
		Vdd:      spec.Vdd,
		FreqMHz:  spec.FreqMHz,
		Sigma:    spec.Sigma,
		ProbA:    spec.ProbA,
		Profile:  profileString(spec.Profile),
		Sem:      spec.Sem,
		Sampling: spec.Sampling,
	}
}

// Model instantiates the spec against this system, reusing a cached
// instance when the same spec was built before. Models are immutable and
// shareable, and building one (especially model C, which pulls DTA
// characterizations for every ALU op) is far more expensive than a
// lookup, so sweeps and the experiment runners hit this cache once per
// (config, model, profile) instead of once per data point. Errors are
// not cached. Callers must not mutate spec.Profile after the call.
func (s *System) Model(spec ModelSpec) (fi.Model, error) {
	k := spec.key()
	s.modelMu.Lock()
	m, ok := s.models[k]
	s.modelMu.Unlock()
	if ok {
		return m, nil
	}
	m, err := s.NewModel(spec)
	if err != nil {
		return nil, err
	}
	s.modelMu.Lock()
	// Another goroutine may have raced us here; keep the first instance
	// so repeated lookups stay pointer-identical.
	if prev, ok := s.models[k]; ok {
		m = prev
	} else {
		s.models[k] = m
	}
	s.modelMu.Unlock()
	return m, nil
}

// NewModel instantiates the spec against this system without consulting
// the model cache. It is the original uncached construction path, kept
// for benchmarks and determinism tests that compare against per-point
// rebuilding. Operating points beyond the non-ALU safe limit are
// rejected for the timing-based models.
func (s *System) NewModel(spec ModelSpec) (fi.Model, error) {
	switch spec.Kind {
	case "", "none":
		return fi.NullModel{}, nil
	case "A":
		return &fi.ModelA{Prob: spec.ProbA, Sem: spec.Sem}, nil
	}
	if spec.Vdd <= s.Cfg.Vdd.Vt {
		return nil, fmt.Errorf("core: supply %v V at or below threshold", spec.Vdd)
	}
	if spec.FreqMHz > s.NonALUSafeMHz(spec.Vdd) {
		return nil, fmt.Errorf("core: %v MHz exceeds the non-ALU safe limit %.0f MHz at %v V",
			spec.FreqMHz, s.NonALUSafeMHz(spec.Vdd), spec.Vdd)
	}
	switch spec.Kind {
	case "B":
		return fi.NewModelB(s.ALU, s.Cfg.Vdd, spec.Vdd, spec.FreqMHz, 0, spec.Sem), nil
	case "B+":
		return fi.NewModelB(s.ALU, s.Cfg.Vdd, spec.Vdd, spec.FreqMHz, spec.Sigma, spec.Sem), nil
	case "C":
		return fi.NewModelC(s.Char, fi.ModelCConfig{
			Vdd:      spec.Vdd,
			FreqMHz:  spec.FreqMHz,
			Sigma:    spec.Sigma,
			Profile:  spec.Profile,
			Sem:      spec.Sem,
			Sampling: spec.Sampling,
		})
	}
	return nil, fmt.Errorf("core: unknown model kind %q", spec.Kind)
}
