package fi

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// scriptInjector flips a fixed mask at one scheduled call index and
// counts every call it receives.
type scriptInjector struct {
	flipAt int
	mask   uint32
	calls  int
}

func (s *scriptInjector) Inject(op isa.Op, r, prev uint32, f, pf bool) (uint32, bool, int) {
	i := s.calls
	s.calls++
	if i == s.flipAt {
		return r ^ s.mask, f, 2
	}
	return r, f, 0
}

func queries(n int) []TraceQuery {
	qs := make([]TraceQuery, n)
	for i := range qs {
		qs[i] = TraceQuery{Op: isa.OpAdd, Result: uint32(i), Prev: uint32(i) - 1}
	}
	return qs
}

func TestScanTraceFindsFirstFlip(t *testing.T) {
	inj := &scriptInjector{flipAt: 5, mask: 0b11}
	fork, ok := ScanTrace(inj, queries(10))
	if !ok {
		t.Fatalf("scan missed the scheduled flip")
	}
	if fork.Query != 5 || fork.Out != 5^0b11 || fork.Flipped != 2 {
		t.Errorf("fork %+v, want query 5, out %#x, 2 bits", fork, 5^0b11)
	}
	// The scan stops at the flip: queries after it are not consumed.
	if inj.calls != 6 {
		t.Errorf("scan consumed %d queries, want 6 (stop at the flip)", inj.calls)
	}
}

func TestScanTraceCleanStream(t *testing.T) {
	inj := &scriptInjector{flipAt: 99}
	if _, ok := ScanTrace(inj, queries(10)); ok {
		t.Fatalf("scan reported a flip on a clean stream")
	}
	if inj.calls != 10 {
		t.Errorf("scan consumed %d queries, want all 10", inj.calls)
	}
}

// TestForkInjectorBridgesPrefix checks the three regimes of the fork
// injector: golden passthrough before the fork (no inner calls, so no
// RNG consumption), the recorded capture at the fork, and delegation
// after it.
func TestForkInjectorBridgesPrefix(t *testing.T) {
	inner := &scriptInjector{flipAt: 99, mask: 0}
	fork := Fork{Query: 7, Out: 0xDEAD, OutFlag: true, Flipped: 3}
	// Resume from a checkpoint at query index 4.
	inj := NewForkInjector(inner, 4, fork)
	for i := 4; i < 7; i++ {
		out, f, n := inj.Inject(isa.OpAdd, uint32(i), 0, false, false)
		if out != uint32(i) || f || n != 0 {
			t.Fatalf("prefix query %d altered: out %#x flag %v n %d", i, out, f, n)
		}
	}
	if inner.calls != 0 {
		t.Fatalf("prefix queries leaked to the inner injector (%d calls)", inner.calls)
	}
	out, f, n := inj.Inject(isa.OpAdd, 7, 0, false, false)
	if out != 0xDEAD || !f || n != 3 {
		t.Fatalf("fork query: out %#x flag %v n %d, want recorded capture", out, f, n)
	}
	if inner.calls != 0 {
		t.Fatalf("fork query leaked to the inner injector")
	}
	out, _, _ = inj.Inject(isa.OpAdd, 8, 0, false, false)
	if inner.calls != 1 || out != 8 {
		t.Fatalf("post-fork query not delegated (calls %d, out %#x)", inner.calls, out)
	}
}

// TestScanPlusForkPreservesRNGStream is the stream-equivalence property
// behind bit-identical replay, on a real model: running ScanTrace and
// then finishing the stream through a fork injector must leave a model
// injector's RNG exactly where one uninterrupted pass leaves it.
func TestScanPlusForkPreservesRNGStream(t *testing.T) {
	model := &ModelA{Prob: 0.02}
	qs := queries(400)

	// Reference: one uninterrupted pass.
	refRNG := rand.New(rand.NewSource(9))
	ref := model.NewTrial(refRNG)
	var refOuts []uint32
	for _, q := range qs {
		out, _, _ := ref.Inject(q.Op, q.Result, q.Prev, q.Flag, q.PrevFlag)
		refOuts = append(refOuts, out)
	}

	// Replay: scan to the first flip, then bridge with a fork injector
	// from an arbitrary earlier resume index, as a forked trial does.
	rng := rand.New(rand.NewSource(9))
	inj := model.NewTrial(rng)
	fork, ok := ScanTrace(inj, qs)
	if !ok {
		t.Fatalf("model A at p=0.02 never injected in 400 queries")
	}
	resume := fork.Query - fork.Query/2
	bridged := NewForkInjector(inj, resume, fork)
	for i := resume; i < len(qs); i++ {
		q := qs[i]
		out, _, _ := bridged.Inject(q.Op, q.Result, q.Prev, q.Flag, q.PrevFlag)
		if out != refOuts[i] {
			t.Fatalf("query %d: bridged out %#x, uninterrupted out %#x (fork at %d, resume %d)",
				i, out, refOuts[i], fork.Query, resume)
		}
	}
	// Both streams must now be in the same state.
	if a, b := refRNG.Uint64(), rng.Uint64(); a != b {
		t.Errorf("RNG streams diverged after the pass: %#x vs %#x", a, b)
	}
}
