package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/dta"
	"repro/internal/fi"
)

// freshSystem builds a private System so the build counters start at
// zero (the package-level system() is shared across tests and its
// counters accumulate).
func freshSystem() *System {
	cfg := DefaultConfig()
	cfg.DTA = dta.Config{Cycles: 512, Seed: 5}
	return New(cfg)
}

// TestModelSingleflight pins the dedup contract of the model cache: N
// concurrent requests for one spec share exactly one build (the old
// cache would run N builds and discard N-1), and the counter surfaces
// in CacheSummary.
func TestModelSingleflight(t *testing.T) {
	s := freshSystem()
	spec := ModelSpec{Kind: "C", Vdd: 0.7, FreqMHz: 800, Sigma: 0.01}
	const n = 16
	models := make([]fi.Model, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := s.Model(spec)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			models[i] = m
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if models[i] != models[0] {
			t.Fatalf("goroutine %d observed a different instance", i)
		}
	}
	if got := s.ModelsBuiltCount(); got != 1 {
		t.Errorf("%d concurrent requests built %d models, want 1", n, got)
	}
	if sum := s.CacheSummary(); !strings.Contains(sum, "models: 1 built") {
		t.Errorf("CacheSummary missing the model counter: %q", sum)
	}
}

// TestModelSingleflightError pins the error side of the contract:
// construction is deterministic for a fixed config, so a failed spec
// caches its error and every concurrent and later caller shares it
// without counting a build.
func TestModelSingleflightError(t *testing.T) {
	s := freshSystem()
	bad := ModelSpec{Kind: "C", Vdd: 0.2, FreqMHz: 800} // sub-threshold supply
	const n = 8
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Model(bad)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] == nil {
			t.Fatalf("goroutine %d: sub-threshold spec accepted", i)
		}
		if errs[i] != errs[0] {
			t.Errorf("goroutine %d observed a different error instance", i)
		}
	}
	if _, err := s.Model(bad); err == nil {
		t.Error("retry after cached failure accepted")
	}
	if got := s.ModelsBuiltCount(); got != 0 {
		t.Errorf("failed spec counted %d builds", got)
	}
}

// TestGoldenSingleflight: N concurrent Golden calls for one key record
// exactly one execution.
func TestGoldenSingleflight(t *testing.T) {
	s := freshSystem()
	const n = 16
	goldens := make([]*Golden, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := s.Golden(bench.Median(), 42)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			goldens[i] = g
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if goldens[i] != goldens[0] {
			t.Fatalf("goroutine %d observed a different golden instance", i)
		}
	}
	if got := s.GoldenRecordedCount(); got != 1 {
		t.Errorf("%d concurrent requests recorded %d goldens, want 1", n, got)
	}
}

// TestHazardSingleflight: N concurrent Hazard calls for one key build
// exactly one table — and, through the stacked caches, one model and
// one golden recording.
func TestHazardSingleflight(t *testing.T) {
	s := freshSystem()
	spec := ModelSpec{Kind: "B+", Vdd: 0.7, FreqMHz: 720, Sigma: 0.01}
	const n = 16
	tables := make([]*fi.Hazard, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := s.Hazard(bench.Median(), 42, spec)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			tables[i] = h
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if tables[i] != tables[0] {
			t.Fatalf("goroutine %d observed a different hazard table", i)
		}
	}
	if got := s.HazardBuiltCount(); got != 1 {
		t.Errorf("%d concurrent requests built %d hazard tables, want 1", n, got)
	}
	if got := s.ModelsBuiltCount(); got != 1 {
		t.Errorf("hazard resolution built %d models, want 1", got)
	}
	if got := s.GoldenRecordedCount(); got != 1 {
		t.Errorf("hazard resolution recorded %d goldens, want 1", got)
	}
}

// blockingBench returns a copy of median whose Build parks on gate
// after signalling entered, so a test can hold one cache key's build
// open while probing that other keys still make progress.
func blockingBench(name string, entered chan<- struct{}, gate <-chan struct{}) *bench.Benchmark {
	b := *bench.Median()
	orig := b.Build
	b.Name = name
	b.Build = func(seed int64) (string, []uint32, error) {
		entered <- struct{}{}
		<-gate
		return orig(seed)
	}
	return &b
}

// TestSingleflightNoCoarseLock pins that distinct keys build in
// parallel: while one benchmark's golden recording is deliberately
// parked inside its singleflight slot, a different benchmark must
// resolve end to end (golden, model, hazard). A coarse cache-wide lock
// would deadlock this test instead of merely failing it, so the probe
// runs under a timeout.
func TestSingleflightNoCoarseLock(t *testing.T) {
	s := freshSystem()
	entered := make(chan struct{})
	gate := make(chan struct{})
	blocked := blockingBench("median-blocking", entered, gate)

	done := make(chan error, 1)
	go func() {
		_, err := s.Golden(blocked, 42)
		done <- err
	}()
	<-entered // the blocked build is now inside its once

	probe := make(chan error, 1)
	go func() {
		// Full resolution of a different benchmark: golden + model +
		// hazard, each a distinct key from the parked one.
		_, err := s.Hazard(bench.KMeans(), 42, ModelSpec{Kind: "B+", Vdd: 0.7, FreqMHz: 720, Sigma: 0.01})
		probe <- err
	}()
	select {
	case err := <-probe:
		if err != nil {
			t.Fatalf("probe resolution failed: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("distinct-key resolution stalled behind a parked build: caches serialize on a coarse lock")
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("parked golden recording failed after release: %v", err)
	}
	if got := s.GoldenRecordedCount(); got != 2 {
		t.Errorf("recorded %d goldens, want 2", got)
	}
}
