// Package mitigate models error-mitigation scenarios on top of the
// Monte-Carlo grid results: given a cell's measured quality
// distribution and fault pressure, it predicts the effective
// application quality and the energy cost of running the same operating
// point under a mitigation scheme — a razor-style detect-and-replay
// pipeline (shadow latches catch timing violations and re-execute the
// window, paying replay energy per detected fault) or an
// ECC/constant-weight-coded datapath (encode/decode logic burns a
// constant energy fraction every cycle but detects and corrects most
// faults in place). The unmitigated scheme is carried alongside as the
// baseline, so the three outcomes of one cell form an energy-vs-quality
// trade-off the report layer folds into Pareto fronts.
//
// Fault pressure per trial comes from the fi hazard tables when the
// cell admits them (fixed benchmark inputs, hazard-capable model kind):
// the expected number of injected faults over the golden query stream
// is the exact per-op sum of marginal injection probabilities
// (DetectionMass), the same marginals first-fault sampling inverts.
// Cells outside the hazard fast path fall back to the measured FI rate
// (FIRate per kCycle x mean kernel cycles).
//
// In the dependency graph, mitigate sits on mc/core/bench/fi/power and
// below report, which renders its Results as Pareto curves.
package mitigate

import (
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fi"
	"repro/internal/mc"
	"repro/internal/power"
)

// Scheme identifies one mitigation model.
type Scheme string

const (
	// SchemeNone is the unmitigated baseline: the cell's measured
	// quality at its measured energy.
	SchemeNone Scheme = "none"
	// SchemeRazor is detect-and-replay: shadow latches detect a
	// coverage fraction of injected faults, and every detected fault
	// re-executes a replay window — energy overhead proportional to the
	// fault count, zero for fault-free cells.
	SchemeRazor Scheme = "razor"
	// SchemeCoded is the ECC/constant-weight-coded datapath: a constant
	// encode/decode energy fraction every cycle, detection and in-place
	// correction of most faults, no replay.
	SchemeCoded Scheme = "coded"
)

// Schemes returns every scheme in evaluation order (baseline first).
func Schemes() []Scheme { return []Scheme{SchemeNone, SchemeRazor, SchemeCoded} }

// Options configure the mitigation models; zero values select the
// defaults documented per field.
type Options struct {
	// Power is the energy model (default power.Default()).
	Power power.Model

	// RazorCoverage is the fraction of injected faults the shadow
	// latches detect (default 0.98 — razor misses only violations
	// landing inside the metastability window).
	RazorCoverage float64
	// ReplayCycles is the pipeline flush + re-execution window charged
	// per detected fault (default 12 cycles).
	ReplayCycles float64

	// CodedDetect is the fraction of injected faults the code detects
	// and corrects in place (default 0.97 — multi-bit aliasing escapes).
	CodedDetect float64
	// CodedEnergyFrac is the constant encode/decode energy overhead as
	// a fraction of base energy (default 0.12).
	CodedEnergyFrac float64
}

func (o Options) withDefaults() Options {
	if o.Power == (power.Model{}) {
		o.Power = power.Default()
	}
	if o.RazorCoverage <= 0 {
		o.RazorCoverage = 0.98
	}
	if o.ReplayCycles <= 0 {
		o.ReplayCycles = 12
	}
	if o.CodedDetect <= 0 {
		o.CodedDetect = 0.97
	}
	if o.CodedEnergyFrac <= 0 {
		o.CodedEnergyFrac = 0.12
	}
	return o
}

// Result is one evaluated (cell, scheme) mitigation outcome.
type Result struct {
	Bench  string         `json:"bench"`
	Model  core.ModelSpec `json:"model"`
	Scheme Scheme         `json:"scheme"`

	// FaultsPerTrial is the expected number of injected faults one
	// trial suffers; HazardExact marks it as the per-op hazard-table
	// sum rather than the FIRate fallback.
	FaultsPerTrial float64 `json:"faults_per_trial"`
	HazardExact    bool    `json:"hazard_exact"`
	// Detected is the expected number of those faults the scheme
	// detects (and corrects) per trial.
	Detected float64 `json:"detected_per_trial"`

	// RawQuality is the cell's unmitigated QualityMean; EffQuality the
	// quality after detect-and-correct repairs the detected fraction of
	// the loss.
	RawQuality float64 `json:"raw_quality"`
	EffQuality float64 `json:"eff_quality"`

	// Energies are per trial, in picojoules.
	BaseEnergyPJ  float64 `json:"base_energy_pj"`
	OverheadPJ    float64 `json:"overhead_pj"`
	TotalEnergyPJ float64 `json:"total_energy_pj"`
}

// EnergyPerCyclePJ converts the power model's total core power at
// (vdd, fMHz) into energy per clock cycle: uW at MHz is exactly pJ per
// cycle.
func EnergyPerCyclePJ(pm power.Model, vdd, fMHz float64) float64 {
	return pm.TotalUW(vdd, fMHz) / fMHz
}

// DetectionMass decomposes the expected injected-fault count of one
// trial over the golden query stream per op: mass[op] is the number of
// occurrences of op in qs times the op's marginal injection probability
// from the hazard table, and total their sum — the exact expectation of
// the number of injecting queries, since each query injects
// independently with its marginal probability. This is the error mass a
// per-op detection code has to cover; the brute-force equivalent (sum
// h.PerOp[q.Op] over every query) agrees to float summation order,
// pinned by the package tests.
func DetectionMass(h *fi.Hazard, qs []fi.TraceQuery) (perOp []float64, total float64) {
	counts := make([]float64, len(h.PerOp))
	for i := range qs {
		counts[qs[i].Op]++
	}
	perOp = make([]float64, len(h.PerOp))
	for op, n := range counts {
		perOp[op] = n * h.PerOp[op]
		total += perOp[op]
	}
	return perOp, total
}

// Evaluate scores every cell under every scheme. sys may be nil, in
// which case (and for cells outside the hazard fast path) the fault
// pressure falls back to the cell's measured FI rate. inputSeed names
// the benchmark inputs the grid ran on (a grid's Spec.InputSeed; 0
// resolves to the engine default, like a zero Spec). Results are in
// cell order, Schemes() order within a cell.
func Evaluate(sys *core.System, inputSeed int64, cells []mc.CellResult, opt Options) []Result {
	opt = opt.withDefaults()
	if inputSeed == 0 {
		inputSeed = mc.DefaultInputSeed
	}
	out := make([]Result, 0, len(cells)*len(Schemes()))
	for _, c := range cells {
		faults, exact := expectedFaults(sys, inputSeed, c)
		for _, sch := range Schemes() {
			out = append(out, apply(c, sch, faults, exact, opt))
		}
	}
	return out
}

// expectedFaults estimates the injected faults per trial of one cell:
// hazard-table exact where the fast path applies, FIRate-based
// otherwise.
func expectedFaults(sys *core.System, inputSeed int64, c mc.CellResult) (float64, bool) {
	pt := c.Point
	fallback := pt.FIRate / 1000 * pt.KernelCycles
	if sys == nil || c.Model.Kind == "" || c.Model.Kind == "none" {
		return fallback, false
	}
	b, err := bench.ByName(c.Bench)
	if err != nil || b.PerTrialInputs {
		return fallback, false
	}
	spec := c.Model
	spec.FreqMHz = pt.FreqMHz
	h, err := sys.Hazard(b, inputSeed, spec)
	if err != nil {
		return fallback, false
	}
	g, err := sys.Golden(b, inputSeed)
	if err != nil {
		return fallback, false
	}
	_, total := DetectionMass(h, g.Queries)
	return total, true
}

// apply evaluates one scheme on one cell. The razor overhead is exactly
// Detected x (ReplayCycles x energy-per-cycle) — the package tests pin
// the product bit for bit — so fault-free cells carry exactly zero
// razor overhead.
func apply(c mc.CellResult, sch Scheme, faults float64, exact bool, opt Options) Result {
	pt := c.Point
	epc := EnergyPerCyclePJ(opt.Power, c.Model.Vdd, pt.FreqMHz)
	base := pt.KernelCycles * epc
	r := Result{
		Bench: c.Bench, Model: c.Model, Scheme: sch,
		FaultsPerTrial: faults, HazardExact: exact,
		RawQuality: pt.QualityMean, EffQuality: pt.QualityMean,
		BaseEnergyPJ: base,
	}
	switch sch {
	case SchemeRazor:
		r.Detected = opt.RazorCoverage * faults
		r.OverheadPJ = r.Detected * (opt.ReplayCycles * epc)
		r.EffQuality = effQuality(pt.QualityMean, opt.RazorCoverage)
	case SchemeCoded:
		r.Detected = opt.CodedDetect * faults
		r.OverheadPJ = opt.CodedEnergyFrac * base
		r.EffQuality = effQuality(pt.QualityMean, opt.CodedDetect)
	}
	r.TotalEnergyPJ = base + r.OverheadPJ
	return r
}

// effQuality models detect-and-correct: a detected fault's quality
// loss is repaired, so only the escaped fraction of the measured loss
// remains — q_eff = 1 - (1-q)(1-detect), which is exactly q at detect
// 0 and exactly 1 at full detection of a finite loss.
func effQuality(q, detect float64) float64 {
	eff := 1 - (1-q)*(1-detect)
	if eff > 1 {
		return 1
	}
	if eff < 0 {
		return 0
	}
	return eff
}
