// Package power models the active and leakage power of the simulated
// core, calibrated on the paper's vcd-based post-layout reference points
// (10.9 uW/MHz at 0.6 V and 15.0 uW/MHz at 0.7 V, with leakage consuming
// 2% and 3% of core power respectively), and translates
// frequency-over-scaling headroom into equivalent voltage and power
// savings for the error-vs-power trade-off of Fig. 7.
//
// power is a leaf model in the dependency graph, bound into the stack
// by core and consumed by the Fig. 7 runner in experiments.
package power

import (
	"fmt"

	"repro/internal/timing"
)

// RefPoint is one power characterization sample.
type RefPoint struct {
	V        float64 // supply voltage (V)
	UWPerMHz float64 // active core power per MHz
	LeakFrac float64 // leakage fraction of total core power at this V
}

// Model scales active power quadratically in supply voltage through two
// reference points (the paper's footnote 2), with a linearly
// interpolated leakage fraction.
type Model struct {
	Lo, Hi RefPoint
	// a, b satisfy uW/MHz = a*V^2 + b through both reference points.
	a, b float64
}

// Default returns the paper's 28 nm power model.
func Default() Model {
	return New(
		RefPoint{V: 0.6, UWPerMHz: 10.9, LeakFrac: 0.02},
		RefPoint{V: 0.7, UWPerMHz: 15.0, LeakFrac: 0.03},
	)
}

// New builds a model through two reference points (Lo.V < Hi.V).
func New(lo, hi RefPoint) Model {
	a := (hi.UWPerMHz - lo.UWPerMHz) / (hi.V*hi.V - lo.V*lo.V)
	b := hi.UWPerMHz - a*hi.V*hi.V
	return Model{Lo: lo, Hi: hi, a: a, b: b}
}

// ActiveUWPerMHz returns the active power density at supply v.
func (m Model) ActiveUWPerMHz(v float64) float64 { return m.a*v*v + m.b }

// LeakFrac returns the leakage fraction of total core power at supply v
// (linear interpolation between the reference points, clamped).
func (m Model) LeakFrac(v float64) float64 {
	t := (v - m.Lo.V) / (m.Hi.V - m.Lo.V)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return m.Lo.LeakFrac + t*(m.Hi.LeakFrac-m.Lo.LeakFrac)
}

// TotalUW returns total core power (active + leakage) at supply v and
// clock fMHz.
func (m Model) TotalUW(v, fMHz float64) float64 {
	active := m.ActiveUWPerMHz(v) * fMHz
	frac := m.LeakFrac(v)
	// leakage = frac * total  =>  total = active / (1 - frac).
	return active / (1 - frac)
}

// Normalized returns core power at (v, fMHz) relative to the nominal
// operating point (vRef at the same frequency), the y-axis normalization
// of the paper's Fig. 7.
func (m Model) Normalized(v, vRef, fMHz float64) float64 {
	return m.TotalUW(v, fMHz) / m.TotalUW(vRef, fMHz)
}

// Savings describes one voltage-over-scaling operating point derived from
// frequency headroom.
type Savings struct {
	HeadroomFactor  float64 // f_capability / f_nominal at vRef
	EquivalentV     float64 // reduced supply with equal capability at f_nominal
	NormalizedPower float64 // total power relative to vRef
}

// FromHeadroom translates a frequency headroom factor (how much faster
// than nominal the application could run at vRef before its quality
// target is violated) into an equivalent supply reduction at the nominal
// clock and the resulting normalized power, following Sec. 4.4.
func FromHeadroom(m Model, vm timing.VddDelay, vRef, fMHz, headroom float64) (Savings, error) {
	if headroom < 1 {
		return Savings{}, fmt.Errorf("power: headroom factor %v below 1", headroom)
	}
	veq := vm.EquivalentVoltage(headroom)
	return Savings{
		HeadroomFactor:  headroom,
		EquivalentV:     veq,
		NormalizedPower: m.Normalized(veq, vRef, fMHz),
	}, nil
}
