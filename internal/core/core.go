// Package core assembles the paper's simulation stack (Fig. 3): the
// generated, calibrated ALU netlists, the DTA characterizer, the
// Vdd-delay and noise models, the power model, and a factory for the
// fault-injection models A/B/B+/C bound to an operating point
// (frequency, supply voltage, noise sigma).
//
// core is the stack's assembly point in the dependency graph:
// everything below it (circuit, gates, dta, timing, power, fi, cpu,
// mem) is bound together here, and everything above it (mc,
// experiments, server, the cmd tools) reaches the stack through a
// System — including the model, golden-trace and hazard-table caches
// that make repeated experiments cheap, and their persistence through
// internal/artifact.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/artifact"
	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/cpu"
	"repro/internal/dta"
	"repro/internal/fi"
	"repro/internal/mem"
	"repro/internal/power"
	"repro/internal/timing"
)

// Config carries every tunable of the reproduction, defaulting to the
// paper's case study.
type Config struct {
	Circuit circuit.Config
	DTA     dta.Config
	Vdd     timing.VddDelay
	Power   power.Model
	CPU     cpu.Config
	// NonALUSafeMHz is the frequency below which all non-ALU paths are
	// guaranteed safe at the reference voltage (the constraint strategy
	// of [14]; 1.15 GHz at 0.7 V in the paper).
	NonALUSafeMHz float64
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		Circuit:       circuit.DefaultConfig(),
		DTA:           dta.DefaultConfig(),
		Vdd:           timing.DefaultVddDelay(),
		Power:         power.Default(),
		CPU:           cpu.DefaultConfig(),
		NonALUSafeMHz: 1150,
	}
}

// System is one instantiated simulation stack. Its configuration is
// immutable after construction and it is safe for concurrent use:
// characterizations cache inside Char and instantiated fault models
// cache inside the system itself (see Model).
type System struct {
	Cfg  Config
	ALU  *circuit.ALU
	Char *dta.Characterizer

	modelMu sync.Mutex
	models  map[modelKey]*modelEntry

	goldenMu sync.Mutex
	goldens  map[goldenKey]*goldenEntry

	hazards hazardCache

	artifacts *artifact.Store

	modelsBuilt    atomic.Int64 // fault models actually instantiated
	goldenRecorded atomic.Int64 // golden traces actually executed+recorded
	goldenLoaded   atomic.Int64 // golden traces served from the artifact store
}

// modelEntry is one singleflight slot of the model cache: the first
// caller of a key runs the build inside once, every concurrent caller of
// the same key blocks on it and shares the one instance (or the one
// error — construction is deterministic for a fixed system config, so a
// failed spec fails identically on every retry).
type modelEntry struct {
	once sync.Once
	m    fi.Model
	err  error
}

// goldenEntry is the golden cache's singleflight slot, same contract as
// modelEntry.
type goldenEntry struct {
	once sync.Once
	g    *Golden
	err  error
}

// New builds and calibrates a system.
func New(cfg Config) *System {
	alu := circuit.New(cfg.Circuit)
	return &System{
		Cfg:     cfg,
		ALU:     alu,
		Char:    dta.NewCharacterizer(alu, cfg.Vdd, cfg.DTA),
		models:  map[modelKey]*modelEntry{},
		goldens: map[goldenKey]*goldenEntry{},
	}
}

// AttachStore wires a persistent artifact store into the system: DTA
// characterizations and golden traces are loaded from it before being
// computed and saved to it afterwards. Call right after New, before any
// simulation. The store is purely an accelerator — every artifact key
// spells out the full configuration fingerprint, so a mismatched cache
// directory degrades to cold-start, never to wrong results.
func (s *System) AttachStore(st *artifact.Store) {
	s.artifacts = st
	s.Char.SetStore(st)
}

// ArtifactStore returns the attached store (nil when running purely
// in-memory).
func (s *System) ArtifactStore() *artifact.Store { return s.artifacts }

// Fingerprint canonically encodes the full system configuration. It is
// the prefix of every artifact cache key derived from this system
// (fmt sorts map-valued fields by key, so the string is deterministic).
func (s *System) Fingerprint() string { return fmt.Sprintf("%+v", s.Cfg) }

// GoldenRecordedCount reports how many golden traces this system
// actually executed and recorded (cache misses all the way through).
func (s *System) GoldenRecordedCount() int64 { return s.goldenRecorded.Load() }

// GoldenLoadedCount reports how many golden traces were served from the
// attached artifact store.
func (s *System) GoldenLoadedCount() int64 { return s.goldenLoaded.Load() }

// ModelsBuiltCount reports how many fault-model instances the Model
// cache actually constructed — with the singleflight cache, concurrent
// requests for one spec count a single build. Explicit NewModel calls
// bypass the cache and are not counted.
func (s *System) ModelsBuiltCount() int64 { return s.modelsBuilt.Load() }

// CacheSummary renders one line of artifact-cache traffic, for the CLI
// tools' stderr diagnostics (and the CI warm-start assertion).
func (s *System) CacheSummary() string {
	return fmt.Sprintf("characterizations: %d computed, %d loaded; goldens: %d recorded, %d loaded; hazards: %d built, %d loaded; models: %d built",
		s.Char.ComputedCount(), s.Char.LoadedCount(),
		s.goldenRecorded.Load(), s.goldenLoaded.Load(),
		s.hazards.built.Load(), s.hazards.loaded.Load(),
		s.modelsBuilt.Load())
}

// STALimitMHz returns the static timing limit at supply v (707 MHz at
// 0.7 V by calibration, scaled by the Vdd-delay factor elsewhere).
func (s *System) STALimitMHz(v float64) float64 {
	return s.ALU.STALimitMHz() / s.Cfg.Vdd.Factor(v)
}

// NonALUSafeMHz returns the non-ALU safe frequency at supply v. Above
// it, instructions outside the ALU data path are no longer protected and
// the simulation refuses the operating point rather than report
// meaningless results.
func (s *System) NonALUSafeMHz(v float64) float64 {
	return s.Cfg.NonALUSafeMHz / s.Cfg.Vdd.Factor(v)
}

// ModelSpec selects and parameterizes a fault-injection model.
type ModelSpec struct {
	Kind    string // "none", "A", "B", "B+", "C"
	Vdd     float64
	FreqMHz float64
	Sigma   float64 // supply-noise sigma in volts
	// ProbA is model A's fixed per-endpoint flip probability.
	ProbA float64
	// Profile selects operand-width-matched characterizations (model C).
	Profile dta.Profile
	// Sem is the fault semantics at violated endpoints.
	Sem fi.Semantics
	// Sampling selects model C's endpoint sampling strategy.
	Sampling fi.Sampling
}

// modelKey is the cache key for instantiated models. Profile (a map) is
// folded into a canonical string so the key is comparable.
type modelKey struct {
	Kind     string
	Vdd      float64
	FreqMHz  float64
	Sigma    float64
	ProbA    float64
	Profile  string
	Sem      fi.Semantics
	Sampling fi.Sampling
}

// profileString canonically encodes a Profile (sorted by unit) so that
// equal profiles hash to the same model cache entry.
func profileString(p dta.Profile) string {
	if len(p) == 0 {
		return ""
	}
	units := make([]int, 0, len(p))
	for u := range p {
		units = append(units, int(u))
	}
	sort.Ints(units)
	var b strings.Builder
	for _, u := range units {
		fmt.Fprintf(&b, "%d=%s;", u, p[circuit.UnitKind(u)])
	}
	return b.String()
}

func (spec ModelSpec) key() modelKey {
	return modelKey{
		Kind:     spec.Kind,
		Vdd:      spec.Vdd,
		FreqMHz:  spec.FreqMHz,
		Sigma:    spec.Sigma,
		ProbA:    spec.ProbA,
		Profile:  profileString(spec.Profile),
		Sem:      spec.Sem,
		Sampling: spec.Sampling,
	}
}

// Model instantiates the spec against this system, reusing a cached
// instance when the same spec was built before. Models are immutable and
// shareable, and building one (especially model C, which pulls DTA
// characterizations for every ALU op) is far more expensive than a
// lookup, so sweeps and the experiment runners hit this cache once per
// (config, model, profile) instead of once per data point.
//
// The cache is per-key singleflight: concurrent callers of one spec
// block on a single build and share its result (including a build
// error — construction is deterministic for a fixed system config, so
// a failed spec fails identically on every retry), while distinct
// specs build in parallel, never serialized on the map mutex. Callers
// must not mutate spec.Profile after the call.
func (s *System) Model(spec ModelSpec) (fi.Model, error) {
	k := spec.key()
	s.modelMu.Lock()
	e, ok := s.models[k]
	if !ok {
		e = &modelEntry{}
		s.models[k] = e
	}
	s.modelMu.Unlock()
	e.once.Do(func() {
		e.m, e.err = s.NewModel(spec)
		if e.err == nil {
			s.modelsBuilt.Add(1)
		}
	})
	return e.m, e.err
}

// NewModel instantiates the spec against this system without consulting
// the model cache. It is the original uncached construction path, kept
// for benchmarks and determinism tests that compare against per-point
// rebuilding. Operating points beyond the non-ALU safe limit are
// rejected for the timing-based models.
func (s *System) NewModel(spec ModelSpec) (fi.Model, error) {
	switch spec.Kind {
	case "", "none":
		return fi.NullModel{}, nil
	case "A":
		return &fi.ModelA{Prob: spec.ProbA, Sem: spec.Sem}, nil
	}
	if spec.Vdd <= s.Cfg.Vdd.Vt {
		return nil, fmt.Errorf("core: supply %v V at or below threshold", spec.Vdd)
	}
	if spec.FreqMHz > s.NonALUSafeMHz(spec.Vdd) {
		return nil, fmt.Errorf("core: %v MHz exceeds the non-ALU safe limit %.0f MHz at %v V",
			spec.FreqMHz, s.NonALUSafeMHz(spec.Vdd), spec.Vdd)
	}
	switch spec.Kind {
	case "B":
		return fi.NewModelB(s.ALU, s.Cfg.Vdd, spec.Vdd, spec.FreqMHz, 0, spec.Sem), nil
	case "B+":
		return fi.NewModelB(s.ALU, s.Cfg.Vdd, spec.Vdd, spec.FreqMHz, spec.Sigma, spec.Sem), nil
	case "C":
		return fi.NewModelC(s.Char, fi.ModelCConfig{
			Vdd:      spec.Vdd,
			FreqMHz:  spec.FreqMHz,
			Sigma:    spec.Sigma,
			Profile:  spec.Profile,
			Sem:      spec.Sem,
			Sampling: spec.Sampling,
		})
	}
	return nil, fmt.Errorf("core: unknown model kind %q", spec.Kind)
}

// Golden is one cached fault-free reference execution of a benchmark on
// this system: the assembled program, its verified output words, the
// recorded golden trace with architectural checkpoints, and the
// fi-facing query stream derived from the trace's ALU events. It is
// immutable and shared across every Monte-Carlo trial of the benchmark.
type Golden struct {
	Prog    *asm.Program
	Want    []uint32
	Trace   *cpu.Trace
	Queries []fi.TraceQuery
}

// goldenKey identifies a cached golden trace. The CPU timing config —
// the only other input to the recorded execution — is fixed per System.
type goldenKey struct {
	bench     string
	inputSeed int64
}

// goldenWatchdog bounds the recording run; mirrors the Monte-Carlo
// harness's golden-run budget.
const goldenWatchdog = 100_000_000

// Golden records (or returns the cached) golden trace of the benchmark
// built with inputSeed. Like Model, it is per-key singleflight:
// concurrent callers of one (benchmark, seed) share a single recorded
// execution (or a single store load) instead of each recording their
// own, and repeated lookups return the same instance, so a whole sweep
// — and every later sweep of the same benchmark — pays for one recorded
// execution. Distinct benchmarks record in parallel. Benchmarks with
// per-trial inputs have no single golden run and are rejected.
func (s *System) Golden(b *bench.Benchmark, inputSeed int64) (*Golden, error) {
	if b.PerTrialInputs {
		return nil, fmt.Errorf("core: %s regenerates inputs per trial; no shared golden trace", b.Name)
	}
	k := goldenKey{bench: b.Name, inputSeed: inputSeed}
	s.goldenMu.Lock()
	e, ok := s.goldens[k]
	if !ok {
		e = &goldenEntry{}
		s.goldens[k] = e
	}
	s.goldenMu.Unlock()
	e.once.Do(func() {
		g, err := s.loadGolden(b, inputSeed)
		if err != nil {
			e.err = err
			return
		}
		if g != nil {
			s.goldenLoaded.Add(1)
		} else {
			if g, err = s.recordGolden(b, inputSeed); err != nil {
				e.err = err
				return
			}
			s.goldenRecorded.Add(1)
			s.saveGolden(b, inputSeed, g)
		}
		e.g = g
	})
	return e.g, e.err
}

// BenchDigest hashes the benchmark's actual program content at an input
// seed — the generated source and the expected output words — so cache
// keys survive benchmark *code* changes, not just renames: editing a
// kernel in internal/bench invalidates every artifact recorded against
// the old program instead of silently replaying a stale trace.
func BenchDigest(b *bench.Benchmark, inputSeed int64) (string, error) {
	src, want, err := b.Build(inputSeed)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	io.WriteString(h, b.Name)
	h.Write([]byte{0})
	io.WriteString(h, src)
	h.Write([]byte{0})
	for _, w := range want {
		h.Write([]byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)})
	}
	return hex.EncodeToString(h.Sum(nil)[:16]), nil
}

// goldenStoreKey spells out every input the recorded trace depends on:
// the benchmark program content (via BenchDigest) and its input seed,
// the CPU timing configuration (which determines every cycle count and
// checkpoint boundary), the checkpoint interval, and the recording
// watchdog.
func (s *System) goldenStoreKey(b *bench.Benchmark, inputSeed int64) (string, error) {
	digest, err := BenchDigest(b, inputSeed)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("cpu=%+v|bench=%s|prog=%s|inputSeed=%d|ckpt=%d|watchdog=%d",
		s.Cfg.CPU, b.Name, digest, inputSeed, cpu.DefaultCheckpointInterval, goldenWatchdog), nil
}

// loadGolden fetches a persisted golden trace. The program and expected
// outputs are rebuilt from the benchmark definition (assembly is cheap
// and deterministic); only the expensive part — the recorded execution —
// comes from disk. Returns (nil, nil) on a miss or any untrusted blob,
// in which case the caller records fresh.
func (s *System) loadGolden(b *bench.Benchmark, inputSeed int64) (*Golden, error) {
	if s.artifacts == nil {
		return nil, nil
	}
	key, err := s.goldenStoreKey(b, inputSeed)
	if err != nil {
		return nil, err
	}
	payload, ok, _ := s.artifacts.Get(artifact.KindGoldenTrace, key)
	if !ok {
		return nil, nil
	}
	var tr cpu.Trace
	if cpu.IsEncodedTrace(payload) {
		dec, err := cpu.DecodeTrace(payload)
		if err != nil {
			return nil, nil
		}
		tr = *dec
	} else if err := artifact.DecodeGob(payload, &tr); err != nil {
		// Legacy gob blob from before the delta codec.
		return nil, nil
	}
	if tr.Status != cpu.StatusExited || len(tr.Checkpoints) == 0 {
		// A trace that did not exit cleanly (or predates checkpoint-at-0
		// recording) cannot serve replay; recompute.
		return nil, nil
	}
	src, want, err := b.Build(inputSeed)
	if err != nil {
		return nil, err
	}
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", b.Name, err)
	}
	g := &Golden{Prog: p, Want: want, Trace: &tr}
	g.Queries = queriesOf(&tr)
	return g, nil
}

// saveGolden persists a freshly recorded trace; write failures are
// ignored (the run already holds its in-memory instance).
func (s *System) saveGolden(b *bench.Benchmark, inputSeed int64, g *Golden) {
	if s.artifacts == nil {
		return
	}
	key, err := s.goldenStoreKey(b, inputSeed)
	if err != nil {
		return
	}
	payload, err := cpu.EncodeTrace(g.Trace)
	if err != nil {
		return
	}
	_ = s.artifacts.Put(artifact.KindGoldenTrace, key, payload)
}

// queriesOf derives the fi-facing query stream from a trace's ALU events.
func queriesOf(tr *cpu.Trace) []fi.TraceQuery {
	qs := make([]fi.TraceQuery, len(tr.Events))
	for i, ev := range tr.Events {
		qs[i] = fi.TraceQuery{
			Op: ev.Op, Result: ev.Result, Prev: ev.Prev,
			Flag: ev.Flag, PrevFlag: ev.PrevFlag,
		}
	}
	return qs
}

// GoldenRun executes the benchmark fault-free without caching or trace
// recording and returns the assembled program, its verified output
// words, and the cycle count — the uncached sibling of Golden, used for
// benchmarks whose inputs change per trial and for the full reference
// execution path.
func (s *System) GoldenRun(b *bench.Benchmark, inputSeed int64) (*asm.Program, []uint32, uint64, error) {
	g, cycles, err := s.execGolden(b, inputSeed, false)
	if err != nil {
		return nil, nil, 0, err
	}
	return g.Prog, g.Want, cycles, nil
}

// recordGolden executes the benchmark fault-free with trace recording
// and derives the fi-facing query stream.
func (s *System) recordGolden(b *bench.Benchmark, inputSeed int64) (*Golden, error) {
	g, _, err := s.execGolden(b, inputSeed, true)
	if err != nil {
		return nil, err
	}
	g.Queries = queriesOf(g.Trace)
	return g, nil
}

// execGolden is the one golden-run implementation: build, assemble,
// simulate fault-free, and validate the outputs against the benchmark's
// golden model. With record set it also captures the cpu.Trace.
func (s *System) execGolden(b *bench.Benchmark, inputSeed int64, record bool) (*Golden, uint64, error) {
	src, want, err := b.Build(inputSeed)
	if err != nil {
		return nil, 0, err
	}
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, 0, fmt.Errorf("core: %s: %w", b.Name, err)
	}
	m := mem.New()
	c := cpu.New(m, nil, s.Cfg.CPU)
	if err := c.Load(p); err != nil {
		return nil, 0, err
	}
	if record {
		c.StartTrace(cpu.DefaultCheckpointInterval)
	}
	c.SetWatchdog(goldenWatchdog)
	st := c.Run()
	tr := c.StopTrace()
	if st != cpu.StatusExited {
		return nil, 0, fmt.Errorf("core: %s: golden run ended %v (%v)", b.Name, st, c.TrapErr())
	}
	got, err := b.Outputs(m, p)
	if err != nil {
		return nil, 0, err
	}
	for i := range got {
		if got[i] != want[i] {
			return nil, 0, fmt.Errorf("core: %s: golden output mismatch at %d", b.Name, i)
		}
	}
	return &Golden{Prog: p, Want: want, Trace: tr}, c.Cycles, nil
}
