#!/usr/bin/env bash
# Tracks the batched-execution perf trajectory: runs the batched default
# and the per-trial first-fault path on the same faulting-heavy
# above-PoFF model-C point of the checksum kernel (~95% of trials fork
# thousands of cycles past the last checkpoint), captures CPU and
# allocation profiles of the batched run, and writes the results plus
# the headline speedup ratio as BENCH_batch.json at the repo root. The
# batched/first-fault ratio is the acceptance metric of the batched
# engine (>= 5x); CI asserts it from a fresh run and uploads the
# profiles as artifacts.
#
#   ./scripts/bench_batch.sh            # default -benchtime 3x
#   BENCHTIME=10x ./scripts/bench_batch.sh
#
# Profiles land in PROFILE_DIR (default bench_profiles/, git-ignored):
#   go tool pprof bench_profiles/batch_cpu.pprof
#   go tool pprof -sample_index=alloc_space bench_profiles/batch_mem.pprof
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-3x}"
profdir="${PROFILE_DIR:-bench_profiles}"
mkdir -p "$profdir"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
  -bench 'BenchmarkChecksumBatched$|BenchmarkChecksumFirstFault$' \
  -benchtime "$benchtime" -count 1 -benchmem \
  -cpuprofile "$profdir/batch_cpu.pprof" \
  -memprofile "$profdir/batch_mem.pprof" \
  . | tee "$raw"

awk -v benchtime="$benchtime" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    ns[name] = $3
    lines[n++] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, $2, $3, $5, $7)
  }
  END {
    print "{"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    print "  \"results\": ["
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n - 1 ? "," : "")
    print "  ],"
    batched = ns["BenchmarkChecksumBatched"]
    ff = ns["BenchmarkChecksumFirstFault"]
    printf "  \"batched_over_firstfault\": %.2f\n", (batched > 0 ? ff / batched : 0)
    print "}"
  }
' "$raw" > BENCH_batch.json

echo "wrote BENCH_batch.json; profiles in $profdir/"
