// First-fault sampling: the closed-form alternative to scanning a
// golden trace query by query.
//
// Every injector in this package is memoryless — each Inject decision
// depends only on the op (and the trial RNG), never on earlier queries —
// so over a fixed golden query stream a trial's first injected fault is
// distributed as the first success of a sequence of independent
// Bernoulli trials with per-query hazards h_i = MarginalProb(op_i). A
// Hazard precomputes the prefix log-survival of that sequence, after
// which one uniform draw and a binary search replace the whole per-cycle
// replay scan: sample the first-fault index T from P(T > i) = S_{i+1},
// then draw the corrupted capture at T from the model conditioned on
// injection (SampleAt). Fault-free trials — the overwhelming majority
// below the point of first failure — cost O(log n) instead of O(n) RNG
// draws and table lookups.
//
// The resulting trial law matches the replay scan distributionally, not
// bit-for-bit: the RNG stream is consumed differently, so fixed-seed
// results differ while every aggregate converges to the same value (the
// statistical-equivalence tests in internal/mc pin this).
package fi

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/isa"
)

// HazardModel is a Model that can additionally report, for one injector
// query, its injection probability with the supply noise integrated out
// (MarginalProb — "injection" meaning Inject would flip at least one
// countable endpoint), and draw a query's corrupted capture conditioned
// on injection (SampleAt, the fork-query draw of first-fault sampling).
// All models in this package implement it.
type HazardModel interface {
	Model
	// MarginalProb returns the probability that one query with op
	// injects, marginalized over the per-cycle noise distribution.
	MarginalProb(op isa.Op) float64
	// SampleAt draws (noise, endpoint subset) conditioned on injection
	// and applies the model's fault semantics to the query's values; the
	// returned flip count is always at least 1.
	SampleAt(rng *rand.Rand, op isa.Op, result, prevResult uint32, flag, prevFlag bool) (uint32, bool, int)
}

// Hazard is the first-fault sampling table of one (golden trace, model)
// pair. It is immutable after construction, safe for concurrent use,
// and gob-encodable for the artifact store (both fields are exported
// for that reason; treat them as read-only).
type Hazard struct {
	// PerOp[op] is the marginal per-query injection probability of op
	// over this model (zero for ops absent from the trace).
	PerOp []float64
	// LogSurv[k] is the log-probability that queries 0..k-1 all stay
	// fault-free: LogSurv[0] = 0, non-increasing, length len(queries)+1.
	// A deterministic injection (hazard 1) drives it to -Inf.
	LogSurv []float64
}

// BuildHazard marginalizes the model once per distinct op in the query
// stream and folds the per-query hazards into the prefix log-survival
// array. The marginalizations — the expensive part, a 2^16-step
// trapezoid integration per op for the DTA-backed models — run
// concurrently, one goroutine per distinct op; the fold stays
// sequential in query order, so the result is bit-identical to the
// fully serial construction (each PerOp value is the same float64
// regardless of which goroutine computed it, and the Kahan summation
// order never changes). Summation is Kahan-compensated so the array
// matches the brute-force product of per-query survival probabilities
// to ~1e-14 even over long traces.
func BuildHazard(m HazardModel, qs []TraceQuery) *Hazard {
	h := &Hazard{
		PerOp:   make([]float64, isa.NumOps),
		LogSurv: make([]float64, len(qs)+1),
	}
	seen := make([]bool, isa.NumOps)
	var wg sync.WaitGroup
	for i := range qs {
		op := qs[i].Op
		if !seen[op] {
			seen[op] = true
			wg.Add(1)
			go func() {
				defer wg.Done()
				h.PerOp[op] = m.MarginalProb(op) // disjoint index per goroutine
			}()
		}
	}
	wg.Wait()
	sum, comp := 0.0, 0.0
	for i := range qs {
		d := math.Log1p(-h.PerOp[qs[i].Op]) // -Inf at hazard 1
		y := d - comp
		t := sum + y
		if math.IsInf(t, -1) {
			sum, comp = t, 0
		} else {
			comp = (t - sum) - y
			sum = t
		}
		h.LogSurv[i+1] = sum
	}
	return h
}

// Queries reports the query-stream length the hazard was built over.
func (h *Hazard) Queries() int { return len(h.LogSurv) - 1 }

// Survival returns the probability that a whole trial stays fault-free.
func (h *Hazard) Survival() float64 {
	return math.Exp(h.LogSurv[len(h.LogSurv)-1])
}

// SampleIndex draws the first-fault query index by inverting the
// survival function with a single uniform draw and a binary search over
// the prefix array; ok is false when the trial survives the whole trace
// (probability Survival).
func (h *Hazard) SampleIndex(rng *rand.Rand) (int, bool) {
	n := len(h.LogSurv) - 1
	u := 1 - rng.Float64() // (0, 1], so P(u <= s) = s exactly
	lu := math.Log(u)
	if lu <= h.LogSurv[n] {
		return 0, false
	}
	// Smallest i with S_{i+1} < u <= S_i: first fault at query i with
	// probability S_i - S_{i+1} = S_i * h_i.
	return sort.Search(n, func(i int) bool { return h.LogSurv[i+1] < lu }), true
}

// FirstFault decides one trial against the golden query stream in
// O(log n): the first-fault query index comes from the hazard table,
// the corrupted capture at it from the model conditioned on injection.
// ok is false for a fault-free trial (the trial is the golden run). The
// returned Fork plugs into NewForkInjector exactly like a ScanTrace
// fork; qs must be the stream h was built over.
func FirstFault(m HazardModel, h *Hazard, rng *rand.Rand, qs []TraceQuery) (Fork, bool) {
	i, ok := h.SampleIndex(rng)
	if !ok {
		return Fork{}, false
	}
	q := &qs[i]
	out, outFlag, flipped := m.SampleAt(rng, q.Op, q.Result, q.Prev, q.Flag, q.PrevFlag)
	return Fork{Query: i, Out: out, OutFlag: outFlag, Flipped: flipped}, true
}

// BatchFork is one faulting trial of a FirstFaultBatch call: the index
// of its RNG in the batch plus its fork point.
type BatchFork struct {
	Trial int
	Fork  Fork
}

// FirstFaultBatch decides a whole batch of trials against one hazard
// table, one RNG stream per trial. It is bit-identical per trial to
// calling FirstFault(m, h, rngs[i], qs) for each i — each trial's RNG
// is consumed in exactly the same order (one uniform for the index,
// then the SampleAt draws when it faults) — but the N independent
// binary searches collapse into one order-statistics sweep: the uniform
// draws are sorted descending and located against the non-increasing
// log-survival array with a monotonically advancing lower bound, so the
// searches together cost O(N log N + N log(n/N)) instead of N full
// O(log n) probes and touch the array almost sequentially.
//
// Fault-free trials are simply absent from the result (their trial is
// the golden run). The returned forks are sorted by (Query, Trial) —
// the restore order the batched executor wants, with equal fork points
// adjacent so a group shares one checkpoint image.
func FirstFaultBatch(m HazardModel, h *Hazard, rngs []*rand.Rand, qs []TraceQuery) []BatchFork {
	n := len(h.LogSurv) - 1
	type draw struct {
		trial int
		lu    float64
	}
	draws := make([]draw, 0, len(rngs))
	for ti, rng := range rngs {
		u := 1 - rng.Float64() // same first consumption as SampleIndex
		lu := math.Log(u)
		if lu <= h.LogSurv[n] {
			continue // survives the whole trace
		}
		draws = append(draws, draw{trial: ti, lu: lu})
	}
	sort.Slice(draws, func(i, j int) bool {
		if draws[i].lu != draws[j].lu {
			return draws[i].lu > draws[j].lu
		}
		return draws[i].trial < draws[j].trial
	})

	out := make([]BatchFork, 0, len(draws))
	lo := 0
	for _, d := range draws {
		// Identical to SampleIndex's search: smallest i with
		// S_{i+1} < u. A larger lu can only land at a smaller-or-equal
		// index, so with draws descending the lower bound only advances.
		lu := d.lu
		i := lo + sort.Search(n-lo, func(j int) bool { return h.LogSurv[lo+j+1] < lu })
		lo = i
		q := &qs[i]
		o, of, flipped := m.SampleAt(rngs[d.trial], q.Op, q.Result, q.Prev, q.Flag, q.PrevFlag)
		out = append(out, BatchFork{
			Trial: d.trial,
			Fork:  Fork{Query: i, Out: o, OutFlag: of, Flipped: flipped},
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Fork.Query != out[b].Fork.Query {
			return out[a].Fork.Query < out[b].Fork.Query
		}
		return out[a].Trial < out[b].Trial
	})
	return out
}
