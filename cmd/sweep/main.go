// Command sweep runs a benchmark under a fault model across a frequency
// range and prints the four application metrics per point, including the
// point of first failure and its gain over the STA limit. The whole
// sweep runs through the shared worker pool of the mc engine, with a
// progress/ETA line on stderr.
//
//	sweep -bench kmeans -model C -vdd 0.7 -sigma 0.010 -lo 680 -hi 950 -step 10
//	sweep -bench median -model C -vdd 0.7 -trials-min 25 -trials-max 400
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/progress"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	name := flag.String("bench", "median", "benchmark name")
	model := flag.String("model", "C", "fault model: A, B, B+, C")
	vdd := flag.Float64("vdd", 0.7, "supply voltage in V")
	sigma := flag.Float64("sigma", 0, "supply noise sigma in V")
	lo := flag.Float64("lo", 650, "sweep start in MHz")
	hi := flag.Float64("hi", 1100, "sweep end in MHz")
	step := flag.Float64("step", 25, "sweep step in MHz")
	trials := flag.Int("trials", 100, "Monte-Carlo trials per point (fixed mode)")
	trialsMin := flag.Int("trials-min", 0, "adaptive mode: first batch size (with -trials-max)")
	trialsMax := flag.Int("trials-max", 0, "adaptive mode: trial budget per point (0 = fixed -trials)")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "worker goroutines (0 = NumCPU)")
	dtaCycles := flag.Int("dta", 8192, "DTA characterization cycles")
	quiet := flag.Bool("q", false, "suppress the stderr progress line")
	flag.Parse()

	if *trialsMin > 0 && *trialsMax <= 0 {
		log.Fatal("-trials-min has no effect without -trials-max (adaptive mode)")
	}
	b, err := bench.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.DTA.Cycles = *dtaCycles
	sys := core.New(cfg)

	var rep *progress.Reporter
	if !*quiet {
		rep = progress.New(os.Stderr, "sweep")
	}
	spec := mc.Spec{
		System:    sys,
		Bench:     b,
		Model:     core.ModelSpec{Kind: *model, Vdd: *vdd, Sigma: *sigma},
		Trials:    *trials,
		TrialsMin: *trialsMin,
		TrialsMax: *trialsMax,
		Seed:      *seed,
		Workers:   *workers,
		Progress: func(p mc.Progress) {
			rep.Update(p.DoneTrials, p.TotalTrials)
		},
	}
	var freqs []float64
	for f := *lo; f <= *hi; f += *step {
		freqs = append(freqs, f)
	}
	pts, err := mc.Sweep(spec, freqs)
	rep.Finish()
	if len(pts) > 0 {
		fmt.Printf("%8s %7s %9s %9s %12s %14s\n",
			"f[MHz]", "trials", "finished", "correct", "FI/kCycle", b.MetricName)
		for _, p := range pts {
			fmt.Printf("%8.1f %7d %8.1f%% %8.1f%% %12.4f %14.6g\n",
				p.FreqMHz, p.Trials, p.FinishedPct, p.CorrectPct, p.FIRate, p.OutputErr)
		}
	}
	if err != nil {
		// A sweep crossing an invalid operating point still reports the
		// points of the valid prefix before failing.
		log.Fatal(err)
	}
	sta := sys.STALimitMHz(*vdd)
	if poff, ok := mc.PoFF(pts); ok {
		fmt.Printf("PoFF %.1f MHz, STA limit %.1f MHz, gain %.1f%%\n",
			poff, sta, mc.GainOverSTA(poff, sta))
	} else {
		fmt.Printf("no failure in range (STA limit %.1f MHz)\n", sta)
	}
}
