// Package progress delivers progress from the long-running operations
// of the simulator — Monte-Carlo sweeps, paper reproduction runs, DTA
// characterization — to their observers. A Reporter renders a throttled
// single-line ETA display: it is cheap enough to call on every
// completed work item and writes carriage-return-updated lines, so it
// should be pointed at a terminal stream (stderr in the cmd tools),
// never at result output. A Broadcaster (broadcast.go) fans one
// progress stream out to any number of dynamic observers with
// coalescing, never-blocking delivery — the server's SSE job streams
// attach through it.
//
// progress is a leaf of the dependency graph (stdlib only), consumed by
// the cmd tools and internal/server.
package progress

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// ETA linearly extrapolates the remaining duration from the elapsed time
// and the completed fraction. It returns 0 when nothing is done yet or
// the total is unknown (<= 0), the honest answer before any rate exists.
func ETA(elapsed time.Duration, done, total int) time.Duration {
	if done <= 0 || total <= 0 || done >= total {
		return 0
	}
	perItem := float64(elapsed) / float64(done)
	return time.Duration(perItem * float64(total-done))
}

// Line formats one progress line: label, counts, percentage, elapsed and
// (when computable) the ETA. It is pure so tests can pin the format.
func Line(label string, done, total int, elapsed, eta time.Duration) string {
	pctStr := "?"
	if total > 0 {
		pctStr = fmt.Sprintf("%.0f%%", float64(done)/float64(total)*100)
	}
	s := fmt.Sprintf("%s %d/%d (%s) %s", label, done, total, pctStr, elapsed.Round(time.Second))
	if eta > 0 {
		s += fmt.Sprintf(" eta %s", eta.Round(time.Second))
	}
	return s
}

// Reporter throttles and renders progress updates. The zero value is
// inert; build one with New. A nil *Reporter is safe to call, so callers
// can thread an optional reporter without nil checks.
type Reporter struct {
	mu        sync.Mutex
	w         io.Writer
	label     string
	minPeriod time.Duration
	now       func() time.Time

	start     time.Time
	lastPrint time.Time
	lastDone  int
	lastLen   int
	dirty     bool
}

// New returns a Reporter writing to w. Updates are throttled to ten per
// second; a nil writer yields an inert reporter.
func New(w io.Writer, label string) *Reporter {
	return &Reporter{w: w, label: label, minPeriod: 100 * time.Millisecond, now: time.Now}
}

// SetLabel switches the line prefix (e.g. per-experiment names in
// paperrepro) and restarts the rate clock.
func (r *Reporter) SetLabel(label string) {
	if r == nil || r.w == nil {
		return
	}
	r.mu.Lock()
	r.label = label
	r.start = time.Time{}
	r.lastDone = 0
	r.mu.Unlock()
}

// Update records that done of total work items are complete and redraws
// the line if enough time has passed since the last draw. A done value
// lower than the previous one restarts the rate clock (a new phase
// reusing the reporter).
func (r *Reporter) Update(done, total int) {
	if r == nil || r.w == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	if r.start.IsZero() || done < r.lastDone {
		r.start = now
		r.lastPrint = time.Time{}
	}
	r.lastDone = done
	if !r.lastPrint.IsZero() && now.Sub(r.lastPrint) < r.minPeriod && done < total {
		return
	}
	r.lastPrint = now
	elapsed := now.Sub(r.start)
	line := Line(r.label, done, total, elapsed, ETA(elapsed, done, total))
	pad := ""
	for n := len(line); n < r.lastLen; n++ {
		pad += " "
	}
	fmt.Fprintf(r.w, "\r%s%s", line, pad)
	r.lastLen = len(line)
	r.dirty = true
}

// Finish terminates the progress line with a newline so subsequent
// output starts clean. It is a no-op if nothing was drawn.
func (r *Reporter) Finish() {
	if r == nil || r.w == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dirty {
		fmt.Fprintln(r.w)
		r.dirty = false
		r.lastLen = 0
	}
}
