package mc

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fi"
)

// TestReplayMatchesFullGrid is the differential guarantee of the
// golden-trace replay scan (ModeScan — first-fault sampling, the
// default, is only statistically equivalent and has its own agreement
// tests): across every application benchmark, every fault model, three
// frequencies spanning the clean / transition / failing regions, and
// both fault semantics, the scanned points must be bit-identical to the
// full-execution reference (RunFull) for a fixed seed.
func TestReplayMatchesFullGrid(t *testing.T) {
	sta := system().STALimitMHz(0.7)
	freqs := []float64{700, 800, 870}
	models := []struct {
		name string
		spec core.ModelSpec
	}{
		{"A", core.ModelSpec{Kind: "A", ProbA: 2e-4}},
		{"B", core.ModelSpec{Kind: "B", Vdd: 0.7}},
		{"B+", core.ModelSpec{Kind: "B+", Vdd: 0.7, Sigma: 0.010}},
		{"C", core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010}},
	}
	sems := []fi.Semantics{fi.FlipBit, fi.StaleCapture}
	if sta < 700 || sta > 720 {
		t.Fatalf("STA limit %v outside the range the grid frequencies assume", sta)
	}
	for _, b := range bench.All() {
		for _, m := range models {
			for _, sem := range sems {
				ms := m.spec
				ms.Sem = sem
				spec := Spec{
					System: system(),
					Bench:  b,
					Model:  ms,
					Mode:   ModeScan,
					Trials: 4,
					Seed:   11,
				}
				name := b.Name + "/" + m.name + "/" + sem.String()
				replayed, err := Sweep(spec, freqs)
				if err != nil {
					t.Fatalf("%s: replay sweep: %v", name, err)
				}
				for i, f := range freqs {
					full, err := RunFull(spec, f)
					if err != nil {
						t.Fatalf("%s: full run at %v MHz: %v", name, f, err)
					}
					if replayed[i] != full {
						t.Errorf("%s at %v MHz differs:\nreplay %+v\nfull   %+v",
							name, f, replayed[i], full)
					}
				}
			}
		}
	}
}

// TestReplayMatchesFullMicro pins the per-trial-inputs escape hatch: for
// microkernels there is no shared golden run, the engine must fall back
// to full execution, and Run/RunFull are trivially identical.
func TestReplayMatchesFullMicro(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.MicroAdd32(),
		Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
		Trials: 4,
		Seed:   11,
	}
	for _, f := range []float64{700, 820} {
		a, err := Run(spec, f)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunFull(spec, f)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("micro point at %v MHz differs:\nrun  %+v\nfull %+v", f, a, b)
		}
	}
}

// TestReplayAdaptiveMatchesFull checks the replay scan under adaptive
// trial allocation: batch growth decisions see the same per-trial
// results, so the adaptive trajectory and the final point must match the
// full path exactly.
func TestReplayAdaptiveMatchesFull(t *testing.T) {
	spec := Spec{
		System:    system(),
		Bench:     bench.Median(),
		Model:     core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
		Mode:      ModeScan,
		TrialsMin: 6,
		TrialsMax: 48,
		Seed:      3,
	}
	freqs := []float64{700, 840, 900}
	fast, err := Sweep(spec, freqs)
	if err != nil {
		t.Fatal(err)
	}
	spec.DisableReplay = true
	full, err := Sweep(spec, freqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fast {
		if fast[i] != full[i] {
			t.Errorf("adaptive point %d differs:\nreplay %+v\nfull   %+v", i, fast[i], full[i])
		}
	}
}

// TestReplayLowWatchdogFallsBack pins the guard rail: a watchdog budget
// below the golden cycle count cannot use the replay shortcut (fault-free
// trials must still watchdog), and both paths agree on the outcome.
func TestReplayLowWatchdogFallsBack(t *testing.T) {
	spec := Spec{
		System:         system(),
		Bench:          bench.Median(),
		Model:          core.ModelSpec{Kind: "none"},
		Trials:         3,
		Seed:           1,
		WatchdogFactor: 0.5,
	}
	fast, err := Run(spec, 700)
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunFull(spec, 700)
	if err != nil {
		t.Fatal(err)
	}
	if fast != full {
		t.Errorf("low-watchdog point differs:\nreplay %+v\nfull   %+v", fast, full)
	}
	if fast.FinishedPct != 0 {
		t.Errorf("half-budget watchdog let %v%% of golden runs finish", fast.FinishedPct)
	}
}

// TestPoFFNonMonotone pins the paper's point-of-first-failure definition
// against non-monotone sweeps: the FIRST frequency below 100% correct
// wins even when later points recover (statistical flukes near the
// transition region can produce exactly that shape).
func TestPoFFNonMonotone(t *testing.T) {
	pts := []Point{
		{FreqMHz: 700, CorrectPct: 100},
		{FreqMHz: 750, CorrectPct: 99.9},
		{FreqMHz: 800, CorrectPct: 100},
		{FreqMHz: 850, CorrectPct: 0},
	}
	f, ok := PoFF(pts)
	if !ok || f != 750 {
		t.Errorf("PoFF(non-monotone) = %v, %v; want 750, true", f, ok)
	}
}
