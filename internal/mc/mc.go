// Package mc is the Monte-Carlo experiment harness: it runs a benchmark
// under a fault-injection model at one operating point for many trials
// (the paper uses at least 100 per data point, 200 for Fig. 5), sweeps
// frequency ranges, and aggregates the paper's four application-level
// metrics: probability to finish, probability to be correct, fault
// injection rate (FIs per kCycle of kernel execution), and output error
// of the runs that finished.
//
// Experiments run on a grid engine: a Grid enumerates cells over any
// combination of benchmark, model kind, supply voltage, noise sigma,
// operand profile and frequency, and every (cell, trial) pair of the
// whole grid is a work item drawn from one shared worker pool, so even
// sparse grids saturate all cores. Fault models are built once per cell
// spec via the core.System model cache, and all cells of one benchmark
// share one golden execution context. Because each trial derives its
// RNG from SubSeed(Seed, trial) and results are aggregated in
// trial-index order, neither the schedule nor the surrounding grid has
// any effect on a cell's numbers: a cell is bit-identical whether it is
// evaluated alone (Run), inside a frequency sweep (Sweep — the
// single-axis grid), or inside an arbitrary multi-axis grid, and Sweep
// is bit-identical to the point-serial reference path (SweepSerial) for
// a fixed seed. With an attached artifact store, completed cells
// checkpoint to disk and a resumed grid loads them instead of
// recomputing (see Grid).
//
// Trials with fixed inputs run, by default, on the first-fault sampling
// fast path (Spec.Mode = ModeAuto): the per-query injection probability
// of the cell's model is marginalized over the noise distribution once
// per (golden trace, model) into a prefix log-survival array
// (core.System.Hazard), and each trial draws its first-fault query
// index with a single uniform draw and a binary search. Fault-free
// trials — the overwhelming majority below the point of first failure —
// cost O(log n) instead of one injector query (noise sample, table
// lookup, uniform draws) per recorded ALU cycle, turning the dominant
// Monte-Carlo cost from O(cycles x RNG draws) into O(faults). Faulting
// trials draw the corrupted capture conditioned on injection
// (fi.HazardModel.SampleAt) and fork into full cycle-accurate
// simulation from the nearest recorded checkpoint, exactly like the
// replay scan. First-fault results are deterministic per (Seed, trial
// index) and statistically equivalent to the scan path — same law,
// different RNG stream — pinned by hazard-exactness unit tests and
// Wilson-interval agreement tests in this package.
//
// Under ModeAuto the sampling additionally runs batched: each trial
// window draws every trial's first-fault index in one
// order-statistics pass over the shared log-survival array
// (fi.FirstFaultBatch), completes the fault-free majority immediately
// with the shared golden outcome, and executes the faulting remainder
// grouped by fork point — a walker core restores each checkpoint
// image once, golden-steps to the successive fork queries
// (cpu.RunToQuery), and hands every trial a copy-on-write fork
// (cpu.Fork) over a cloned memory. Because each trial's RNG stream is
// consumed in exactly the per-trial order and a fork is
// indistinguishable from an independent restore-and-replay, batched
// results are bit-identical per seed to ModeFirstFault, which keeps
// the per-trial sampling path as the differential reference (pinned
// by the batched_test.go grid across model kinds, semantics and
// schedules).
//
// ModeScan forces the PR-2 golden-trace replay scan: the injector is
// driven over every recorded ALU query (fi.ScanTrace) and only trials
// that actually flip fork into full simulation. The scan is
// bit-identical to full execution for a fixed seed; it is kept as the
// exact reference for the sampling path. ModeFull (or RunFull, or
// Spec.DisableReplay) forces full ISS execution for every trial — the
// reference the scan is differentially tested against.
//
// Optionally, trial allocation is adaptive (TrialsMin/TrialsMax): a
// point starts with TrialsMin trials and grows in TrialsMin batches
// until the Wilson confidence interval on its correct proportion either
// clears or excludes 100% - CorrectEps, or TrialsMax is reached. Points
// that are obviously clean or obviously broken stop early; the trial
// budget concentrates on the decision boundary around the point of
// first failure. Batch boundaries are fixed in trial-index order, so
// adaptive results are also schedule-independent.
//
// In the dependency graph, mc sits on core/bench/cpu/fi/stats and is
// the execution engine for everything above it: the experiments
// runners, the cmd tools, and the fisimd service layer
// (internal/server), which submits grids with a cancellation context
// (Grid.RunContext) and observes them through Spec.Progress.
package mc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/artifact"
	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fi"
	"repro/internal/mem"
	"repro/internal/stats"
)

func newMem() *mem.Memory { return mem.New() }

// Mode selects the per-trial execution strategy.
type Mode uint8

const (
	// ModeAuto (the default) runs batched first-fault sampling wherever
	// the golden-trace fast paths apply (fixed benchmark inputs,
	// watchdog at or above the golden cycle count), falling back to
	// full execution elsewhere. Results are bit-identical per seed to
	// ModeFirstFault and statistically equivalent to — but not
	// bit-identical with — the scan and full paths.
	ModeAuto Mode = iota
	// ModeScan forces the golden-trace replay scan, the exact reference
	// for first-fault sampling: bit-identical to ModeFull for a fixed
	// seed.
	ModeScan
	// ModeFull forces full ISS execution for every trial.
	ModeFull
	// ModeFirstFault forces the per-trial first-fault path: each trial
	// independently draws its fork point and restores its checkpoint.
	// It is the bit-identical reference the batched ModeAuto scheduler
	// is differentially pinned against.
	ModeFirstFault
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeScan:
		return "scan"
	case ModeFull:
		return "full"
	case ModeFirstFault:
		return "first-fault"
	}
	return "auto"
}

// ParseMode maps the user-facing spelling of a trial path (CLI -mode
// flags, server job specs) to its Mode. The empty string selects
// ModeAuto, and the historical aliases ("first-fault", "replay") keep
// working.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "auto":
		return ModeAuto, nil
	case "first-fault", "firstfault":
		return ModeFirstFault, nil
	case "scan", "replay":
		return ModeScan, nil
	case "full":
		return ModeFull, nil
	}
	return ModeAuto, fmt.Errorf("mc: unknown trial mode %q (want auto, first-fault, scan or full)", s)
}

// Spec describes one experiment configuration (everything but the
// frequency, which the sweep varies).
type Spec struct {
	System *core.System
	Bench  *bench.Benchmark
	Model  core.ModelSpec // FreqMHz is overridden per point
	// Trials per data point (default 100). Ignored when TrialsMax
	// enables adaptive allocation.
	Trials int
	// TrialsMax > 0 enables adaptive trial allocation: each point runs
	// batches of TrialsMin trials (default 25) until the Wilson interval
	// on its correct proportion decides the point is clearly at or
	// clearly below 100% correct, or TrialsMax trials have run.
	TrialsMin int
	TrialsMax int
	// WilsonZ is the normal quantile of the adaptive decision interval
	// (default stats.WilsonZ95).
	WilsonZ float64
	// CorrectEps is the adaptive decision margin as a proportion
	// (default 0.05): a point stops once its correct-proportion interval
	// lies entirely above or entirely below 1 - CorrectEps.
	CorrectEps float64
	// Seed drives all trial randomness (noise, injection, per-trial
	// operands); every (seed, trial index) pair is reproducible.
	Seed int64
	// Mode selects the trial execution path: first-fault sampling where
	// available (ModeAuto, the default), the exact replay scan
	// (ModeScan), or full ISS execution (ModeFull). See the package
	// comment for when each applies.
	Mode Mode
	// DisableReplay is the historical switch for the full reference
	// path; it forces Mode = ModeFull. See RunFull.
	DisableReplay bool
	// InputSeed fixes the benchmark's input data.
	InputSeed int64
	// WatchdogFactor bounds a faulty run at this multiple of the
	// fault-free cycle count (default 4): the infinite-loop detection
	// of the paper's ISS.
	WatchdogFactor float64
	// Workers limits parallelism (default NumCPU).
	Workers int
	// Progress, when non-nil, receives a snapshot after every completed
	// trial. Calls are serialized and in snapshot order (the engine
	// holds its scheduling lock while calling), so the callback must be
	// cheap and must not block on the sweep; wrap a progress.Reporter
	// for throttled terminal output.
	Progress func(Progress)
}

func (s Spec) withDefaults() Spec {
	if s.DisableReplay {
		s.Mode = ModeFull
	}
	if s.Trials <= 0 {
		s.Trials = 100
	}
	if s.TrialsMax > 0 {
		if s.TrialsMin <= 0 {
			s.TrialsMin = 25
		}
		if s.TrialsMin > s.TrialsMax {
			s.TrialsMin = s.TrialsMax
		}
	}
	if s.WilsonZ <= 0 {
		s.WilsonZ = stats.WilsonZ95
	}
	if s.CorrectEps <= 0 {
		s.CorrectEps = 0.05
	}
	if s.WatchdogFactor <= 0 {
		s.WatchdogFactor = 4
	}
	if s.Workers <= 0 {
		s.Workers = runtime.NumCPU()
	}
	if s.InputSeed == 0 {
		s.InputSeed = DefaultInputSeed
	}
	return s
}

// DefaultInputSeed is the benchmark input seed a zero Spec.InputSeed
// resolves to; exported so downstream consumers of grid results (the
// mitigation evaluator) can name the same inputs a defaulted grid used.
const DefaultInputSeed int64 = 42

// adaptive reports whether the spec (after withDefaults) uses adaptive
// trial allocation.
func (s Spec) adaptive() bool { return s.TrialsMax > 0 }

// replayableFor reports whether the golden-trace fast paths (first-fault
// sampling and the replay scan) can serve the given benchmark under this
// spec: inputs must be fixed (one shared golden run) and full execution
// must not be forced.
func (s Spec) replayableFor(b *bench.Benchmark) bool {
	return s.Mode != ModeFull && !b.PerTrialInputs
}

// Progress is a snapshot of sweep-engine progress. Trial totals grow
// while adaptive points extend their budgets.
type Progress struct {
	DoneTrials  int
	TotalTrials int
	DonePoints  int
	TotalPoints int
}

// Point aggregates one (configuration, frequency) data point.
//
// The Quality* fields summarize the application-level quality
// distribution over all trials of the point: every finished trial is
// scored by the benchmark's quality extractor (bench.QualityFunc —
// kmeans distortion ratio, matmult output SNR, median exactness,
// dijkstra path-cost accuracy, bit-exactness otherwise; 1.0 = as good
// as golden), and non-finished trials score 0. QualityP50/QualityP99
// are tail guarantees — the quality met by at least 50% / 99% of
// trials — and QualityLo/QualityHi bound the mean with a Wilson-style
// 95% interval (stats.WilsonFrac), which is what the
// statistical-equivalence tests compare across trial paths.
type Point struct {
	FreqMHz      float64
	Trials       int     // trials actually run (varies under adaptive allocation)
	FinishedPct  float64 // runs that exited cleanly
	CorrectPct   float64 // runs with bit-exact output
	FIRate       float64 // endpoint violations per kernel kCycle (all runs)
	OutputErr    float64 // mean metric over finished runs (0 if none finished)
	OutputErrAll float64 // mean metric with non-finished runs counted as 100%
	KernelCycles float64 // mean kernel cycles of finished runs

	QualityMean float64 // mean quality over all trials (non-finished = 0)
	QualityP50  float64 // quality met by at least 50% of trials
	QualityP99  float64 // quality met by at least 99% of trials
	QualityLo   float64 // Wilson-style 95% lower bound on the mean quality
	QualityHi   float64 // Wilson-style 95% upper bound on the mean quality
}

// trialResult is one trial's raw outcome, indexed by trial number so
// aggregation order is independent of completion order.
type trialResult struct {
	finished, correct bool
	fiBits            uint64
	kernelCycles      uint64
	metric            float64
	quality           float64
	err               error
}

// benchCtx is the per-benchmark execution context shared by every grid
// cell of that benchmark: the assembled program and golden outputs (nil
// when the benchmark regenerates inputs per trial), the watchdog
// budget, and — on the replay fast path — the recorded golden trace
// with the fault-free trial outcome.
type benchCtx struct {
	bench    *bench.Benchmark
	prog     *asm.Program
	want     []uint32
	watchdog uint64
	golden   *core.Golden
	metric0  float64
	// qual scores a finished trial's application-level quality (bound to
	// the spec's input seed); quality0 is the fault-free score — exactly
	// 1.0 by the extractor contract (bit-exact outputs score 1.0), kept
	// as a field so the fault-free short-circuits and the full path stay
	// bit-identical by construction.
	qual     bench.QualityFunc
	quality0 float64
}

// qualityDisabled suppresses per-trial quality scoring, reverting
// trials to the pre-quality boolean verdict (quality := correct). It
// exists only for the overhead benchmarks in quality_bench_test.go,
// which pin the quality path's cost against the boolean baseline; it
// must never be set outside those benchmarks.
var qualityDisabled bool

// newBenchCtx runs (or fetches from the system caches) the one golden
// execution the benchmark's cells share: neither the program nor the
// watchdog depends on the operating point. PerTrialInputs benchmarks
// rebuild inputs per trial and use the golden run only to size the
// watchdog. Replayable benchmarks take the recorded (and cached) golden
// trace instead, so repeated grids over one benchmark share a single
// golden execution.
func newBenchCtx(s Spec, b *bench.Benchmark) (*benchCtx, error) {
	ctx := &benchCtx{bench: b, qual: b.QualityAt(s.InputSeed)}
	if s.replayableFor(b) {
		g, err := s.System.Golden(b, s.InputSeed)
		if err != nil {
			return nil, err
		}
		ctx.prog, ctx.want = g.Prog, g.Want
		ctx.watchdog = uint64(float64(g.Trace.Cycles) * s.WatchdogFactor)
		if ctx.watchdog >= g.Trace.Cycles {
			ctx.golden = g
			ctx.metric0 = b.Metric(g.Want, g.Want)
			ctx.quality0 = ctx.qual(g.Want, g.Want)
		}
		// Otherwise the budget is below the golden cycle count and would
		// watchdog even fault-free trials: trials run the full path, but
		// the recorded program, outputs and cycle count still serve.
	} else {
		prog, want, goldenCycles, err := s.System.GoldenRun(b, s.InputSeed)
		if err != nil {
			return nil, err
		}
		if !b.PerTrialInputs {
			ctx.prog, ctx.want = prog, want
		}
		ctx.watchdog = uint64(float64(goldenCycles) * s.WatchdogFactor)
	}
	return ctx, nil
}

// pointState tracks one grid cell's trials inside the engine. next,
// completed, target and done are guarded by the engine mutex.
type pointState struct {
	cell  Cell
	ctx   *benchCtx
	model fi.Model
	// hazModel/hazard drive the first-fault sampling path; nil when the
	// cell runs the scan or full path instead.
	hazModel fi.HazardModel
	hazard   *fi.Hazard
	// key is the cell's artifact-store key; completed cells are
	// checkpointed under it when the engine holds a store.
	key       string
	results   []trialResult
	next      int  // next trial index to hand out
	completed int  // trials finished
	target    int  // current decision horizon (batch end)
	done      bool // no further trials will be scheduled

	// Batched first-fault scheduling (ModeAuto with a hazard table).
	// Instead of single-trial items, the cell hands out one planning
	// item per adaptive window — which draws every trial's first-fault
	// query in one order-statistics pass, completes the fault-free
	// trials with the shared golden outcome, and splits the faulting
	// remainder into fork-sorted chunks — and then one item per chunk,
	// each walking a shared golden prefix and forking per trial.
	batched  bool
	planned  int           // trial indices below this have been planned
	planning bool          // a planning item is in flight
	pending  []*trialChunk // planned chunks not yet handed out
}

// plannedTrial is one faulting trial of a planned batch: its trial
// index, its RNG (already advanced past the first-fault draws, exactly
// as the per-trial path would have left it), and its fork point.
type plannedTrial struct {
	ti   int
	rng  *rand.Rand
	fork fi.Fork
}

// trialChunk is a contiguous run of fork-sorted faulting trials that
// one worker executes by walking a single shared golden prefix: the
// checkpoint image before the first fork is decoded once, the walker
// advances monotonically (fork points are sorted), and every trial
// forks off a copy-on-write clone of the walker state.
type trialChunk struct {
	trials []plannedTrial
}

// maxChunk caps chunk length so adaptive cells with many faulting
// trials still spread across workers and cancellation latency stays
// bounded; the schedule has no effect on results either way.
const maxChunk = 64

// workItem is one unit handed out by the engine scheduler: a single
// trial (the scan/full/per-trial-first-fault paths), a planning pass
// over a batched window, or a chunk of planned faulting trials. It
// carries the pointState pointer itself — e.pts grows while cells
// stream in, so workers must not index it outside the engine mutex.
type workItem struct {
	p                *pointState
	ti               int
	plan             bool
	planFrom, planTo int
	chunk            *trialChunk
}

// engine is the grid-level scheduler: one shared pool of workers pulls
// (cell, trial) items across all cells of a grid, and adaptive cells
// extend their own targets at batch boundaries.
//
// Points stream in: the engine starts empty, addPoint hands it each
// resolved cell as the resolver produces it (trials for early cells
// overlap resolution of later cells), and seal marks the stream
// complete — only then may the workers retire once every point is
// done.
type engine struct {
	s     Spec
	store *artifact.Store // nil when cells are not checkpointed

	maxTrials int // per-point result capacity (adaptive ceiling)
	initial   int // per-point initial target (first batch)

	mu          sync.Mutex
	cond        *sync.Cond
	pts         []*pointState // grows via addPoint until sealed
	sealed      bool          // no further addPoint calls will arrive
	err         error
	doneTrials  int
	totalTrials int
	donePoints  int
}

func newEngine(s Spec, store *artifact.Store) *engine {
	e := &engine{s: s, store: store, maxTrials: s.Trials, initial: s.Trials}
	e.cond = sync.NewCond(&e.mu)
	if s.adaptive() {
		e.maxTrials = s.TrialsMax
		e.initial = s.TrialsMin
	}
	return e
}

// addPoint streams one resolved cell into the scheduler; waiting
// workers pick its trials up immediately. Points must be added in the
// grid's enumeration order (results are aggregated positionally), but
// that order has no effect on any point's numbers — trial RNG depends
// only on (Seed, trial index).
func (e *engine) addPoint(p *pointState) {
	p.results = make([]trialResult, e.maxTrials)
	p.target = e.initial
	e.mu.Lock()
	e.pts = append(e.pts, p)
	e.totalTrials += e.initial
	e.cond.Broadcast()
	e.mu.Unlock()
}

// seal marks the point stream complete: once every streamed point is
// done the workers retire. Without it the pool would block forever
// waiting for more cells.
func (e *engine) seal() {
	e.mu.Lock()
	e.sealed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// take hands out the next work item, blocking while all points are
// between batches (or waiting on a planning pass, or while the
// resolver has not yet streamed in more cells). It returns false when
// the sweep is complete (all streamed points done and the stream
// sealed) or aborted.
func (e *engine) take() (workItem, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.err != nil {
			return workItem{}, false
		}
		allDone := true
		for _, p := range e.pts {
			if p.batched {
				if len(p.pending) > 0 {
					ch := p.pending[0]
					p.pending = p.pending[1:]
					return workItem{p: p, chunk: ch}, true
				}
				if !p.planning && p.planned < p.target {
					p.planning = true
					return workItem{p: p, plan: true, planFrom: p.planned, planTo: p.target}, true
				}
				if !p.done {
					allDone = false
				}
				continue
			}
			if p.next < p.target {
				ti := p.next
				p.next++
				return workItem{p: p, ti: ti}, true
			}
			if !p.done {
				allDone = false
			}
		}
		if allDone && e.sealed {
			return workItem{}, false
		}
		e.cond.Wait()
	}
}

// aborted reports whether the engine has hit an error (including
// cancellation); chunk runners poll it between trials so a cancelled
// grid stops at trial granularity, not chunk granularity.
func (e *engine) aborted() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err != nil
}

// decide evaluates a point whose current batch just completed and
// reports whether it is finished. It runs under the engine mutex and
// depends only on the trial-index prefix results[0:target], so the
// decision sequence is identical for any worker schedule.
func (e *engine) decide(p *pointState) bool {
	if p.target >= len(p.results) {
		return true
	}
	if !e.s.adaptive() {
		return true
	}
	correct := 0
	for i := 0; i < p.target; i++ {
		if p.results[i].correct {
			correct++
		}
	}
	lo, hi := stats.Wilson(correct, p.target, e.s.WilsonZ)
	boundary := 1 - e.s.CorrectEps
	if lo >= boundary || hi < boundary {
		return true
	}
	return false
}

// complete records one finished trial and, at batch boundaries, either
// closes the point or extends its target by another batch. A point that
// closes cleanly is checkpointed to the artifact store (when one is
// attached) so an interrupted grid can resume past it.
func (e *engine) complete(p *pointState, ti int, r trialResult) {
	e.mu.Lock()
	p.results[ti] = r
	p.completed++
	e.doneTrials++
	if r.err != nil && e.err == nil {
		e.err = r.err
	}
	closed := false
	if !p.done && p.completed == p.target {
		// An aborted grid never closes a point early: a point decide
		// would extend stays open (and unscheduled, since take() stops on
		// e.err), which is what lets run() distinguish a cancellation
		// that truncated the grid from one that landed after every cell
		// had already closed.
		if e.decide(p) {
			p.done = true
			closed = e.err == nil
			e.donePoints++
		} else if e.err == nil {
			grow := e.s.TrialsMin
			if p.target+grow > len(p.results) {
				grow = len(p.results) - p.target
			}
			p.target += grow
			e.totalTrials += grow
		}
	}
	e.cond.Broadcast()
	// Deliver the snapshot under the lock: callers are promised ordered,
	// non-concurrent callbacks (an out-of-order DoneTrials would make a
	// progress.Reporter misread the regression as a new phase and reset
	// its rate clock mid-sweep).
	if cb := e.s.Progress; cb != nil {
		cb(Progress{
			DoneTrials:  e.doneTrials,
			TotalTrials: e.totalTrials,
			DonePoints:  e.donePoints,
			TotalPoints: len(e.pts),
		})
	}
	e.mu.Unlock()
	if closed && e.store != nil && p.key != "" {
		// The results prefix is immutable once the point is done, so the
		// write can happen outside the lock. Checkpointing is best-effort:
		// a failed write costs a recomputation on resume, never
		// correctness.
		if pt, err := aggregate(p.cell.Model.FreqMHz, p.results[:p.target]); err == nil {
			if payload, err := artifact.EncodeGob(pt); err == nil {
				_ = e.store.Put(artifact.KindGridCell, p.key, payload)
			}
		}
	}
}

// runTrial executes one trial on a worker-private memory: first-fault
// sampling when the cell holds a hazard table, the replay scan when it
// holds only a golden trace, full execution otherwise.
func (e *engine) runTrial(m *mem.Memory, p *pointState, ti int) trialResult {
	if p.hazard != nil {
		return e.runTrialFirstFault(m, p, ti)
	}
	if p.ctx.golden != nil {
		return e.runTrialReplay(m, p, ti)
	}
	return e.runTrialFull(m, p, ti)
}

// runTrialFirstFault decides the trial in O(log n): one uniform draw
// inverted through the cell's prefix log-survival array yields the
// first-fault query index (or "fault-free", in which case the trial is
// the golden run), and the model draws the corrupted capture at that
// query conditioned on injection. Only then does the trial fork into
// full execution from the nearest recorded checkpoint, exactly like the
// replay scan. The trial RNG is still derived from (Seed, trial index),
// so results are deterministic and schedule-independent; they are
// statistically equivalent to — not bit-identical with — the scan path,
// whose RNG advances through every fault-free query.
func (e *engine) runTrialFirstFault(m *mem.Memory, p *pointState, ti int) trialResult {
	s := e.s
	ctx := p.ctx
	var r trialResult
	rng := stats.NewTrialRand(stats.SubSeed(s.Seed, ti))
	fork, ok := fi.FirstFault(p.hazModel, p.hazard, rng, ctx.golden.Queries)
	if !ok {
		// Fault-free: the trial is the golden run.
		r.finished, r.correct = true, true
		r.kernelCycles = ctx.golden.Trace.KernelCycles
		r.metric = ctx.metric0
		r.quality = ctx.quality0
		return r
	}
	cp := ctx.golden.Trace.CheckpointBefore(fork.Query)
	m.Reset()
	c := cpu.New(m, fi.NewForkInjector(p.hazModel.NewTrial(rng), cp.EventIndex, fork), s.System.Cfg.CPU)
	if err := c.Restore(ctx.golden.Prog, ctx.golden.Trace, cp); err != nil {
		r.err = err
		return r
	}
	c.SetWatchdog(ctx.watchdog)
	st := c.Run()
	return e.finishTrial(ctx, ctx.qual, c, m, ctx.golden.Prog, ctx.golden.Want, st)
}

// plan decides a whole window of a batched cell's trials in one pass:
// every trial's first-fault query index is drawn from the shared prefix
// log-survival array by one order-statistics sweep (fi.FirstFaultBatch,
// bit-identical per trial to fi.FirstFault over the same RNG streams),
// fault-free trials complete immediately with the shared golden
// outcome, and the faulting remainder — sorted by fork point so trials
// restoring the same checkpoint are adjacent — is split into contiguous
// chunks for the workers. Chunk geometry depends only on (window,
// Workers), never on the schedule, and trials are independent, so
// results are invariant under both.
func (e *engine) plan(p *pointState, from, to int) {
	ctx := p.ctx
	rngs := make([]*rand.Rand, to-from)
	for i := range rngs {
		rngs[i] = stats.NewTrialRand(stats.SubSeed(e.s.Seed, from+i))
	}
	forks := fi.FirstFaultBatch(p.hazModel, p.hazard, rngs, ctx.golden.Queries)

	faulted := make([]bool, to-from)
	for _, bf := range forks {
		faulted[bf.Trial] = true
	}
	var chunks []*trialChunk
	if len(forks) > 0 {
		cs := (len(forks) + e.s.Workers - 1) / e.s.Workers
		if cs > maxChunk {
			cs = maxChunk
		}
		for start := 0; start < len(forks); start += cs {
			end := start + cs
			if end > len(forks) {
				end = len(forks)
			}
			ch := &trialChunk{trials: make([]plannedTrial, 0, end-start)}
			for _, bf := range forks[start:end] {
				ch.trials = append(ch.trials, plannedTrial{
					ti: from + bf.Trial, rng: rngs[bf.Trial], fork: bf.Fork,
				})
			}
			chunks = append(chunks, ch)
		}
	}

	// Install the chunks before completing the clean trials: a clean
	// completion can close the window (all faulting chunks already done
	// is impossible here, but an adaptive extension is not), and waiting
	// workers must be able to claim the chunks either way.
	e.mu.Lock()
	p.pending = append(p.pending, chunks...)
	p.planning = false
	p.planned = to
	e.cond.Broadcast()
	e.mu.Unlock()

	clean := trialResult{
		finished: true, correct: true,
		kernelCycles: ctx.golden.Trace.KernelCycles,
		metric:       ctx.metric0,
		quality:      ctx.quality0,
	}
	for i := from; i < to; i++ {
		if !faulted[i-from] {
			e.complete(p, i, clean)
		}
	}
}

// runChunk executes one chunk of planned faulting trials over a shared
// golden prefix: the checkpoint before the chunk's first fork is
// restored (and its text image decoded) once into the worker's walker
// core, the walker golden-steps forward to each fork point in order
// (RunToQuery — fork points are sorted, so it only ever advances), and
// each trial runs a copy-on-write Fork of the walker over the worker's
// trial memory. Forking at query q is bit-identical to independently
// restoring the nearest checkpoint and replaying golden values up to q
// (pinned by cpu's TestForkMatchesRestore), so every trial's outcome
// matches the per-trial first-fault path exactly.
func (e *engine) runChunk(m, wm *mem.Memory, p *pointState, ch *trialChunk) {
	s := e.s
	ctx := p.ctx
	cp := ctx.golden.Trace.CheckpointBefore(ch.trials[0].fork.Query)
	wm.Reset()
	walker := cpu.New(wm, nil, s.System.Cfg.CPU)
	if err := walker.Restore(ctx.golden.Prog, ctx.golden.Trace, cp); err != nil {
		for _, t := range ch.trials {
			e.complete(p, t.ti, trialResult{err: err})
		}
		return
	}
	walker.SetWatchdog(ctx.watchdog)
	for i, t := range ch.trials {
		if i > 0 && e.aborted() {
			// Cancelled mid-chunk: the remaining trials stay incomplete,
			// which keeps the cell open and lets run() report the abort.
			return
		}
		if st := walker.RunToQuery(uint64(t.fork.Query)); st != cpu.StatusRunning {
			e.complete(p, t.ti, trialResult{err: fmt.Errorf(
				"mc: golden walker ended %v before query %d", st, t.fork.Query)})
			continue
		}
		m.CloneFrom(wm)
		fc := walker.Fork(m, fi.NewForkInjector(p.hazModel.NewTrial(t.rng), t.fork.Query, t.fork))
		fc.SetWatchdog(ctx.watchdog)
		st := fc.Run()
		e.complete(p, t.ti, e.finishTrial(ctx, ctx.qual, fc, m, ctx.golden.Prog, ctx.golden.Want, st))
	}
}

// runTrialReplay decides the trial against the golden trace: the model's
// injector is driven over the recorded ALU activity, and only when it
// actually flips a bit does the trial fork into full execution, resuming
// from the nearest recorded checkpoint. Results are bit-identical to
// runTrialFull for the same seed (the RNG stream, the injector argument
// sequence, and the resumed architectural state all match the full run
// exactly).
func (e *engine) runTrialReplay(m *mem.Memory, p *pointState, ti int) trialResult {
	s := e.s
	ctx := p.ctx
	var r trialResult
	rng := stats.NewTrialRand(stats.SubSeed(s.Seed, ti))
	inj := p.model.NewTrial(rng)
	fork, ok := fi.ScanTrace(inj, ctx.golden.Queries)
	if !ok {
		// Fault-free: the trial is the golden run.
		r.finished, r.correct = true, true
		r.kernelCycles = ctx.golden.Trace.KernelCycles
		r.metric = ctx.metric0
		r.quality = ctx.quality0
		return r
	}
	cp := ctx.golden.Trace.CheckpointBefore(fork.Query)
	m.Reset()
	c := cpu.New(m, fi.NewForkInjector(inj, cp.EventIndex, fork), s.System.Cfg.CPU)
	if err := c.Restore(ctx.golden.Prog, ctx.golden.Trace, cp); err != nil {
		r.err = err
		return r
	}
	c.SetWatchdog(ctx.watchdog)
	st := c.Run()
	return e.finishTrial(ctx, ctx.qual, c, m, ctx.golden.Prog, ctx.golden.Want, st)
}

// runTrialFull executes one fault-injected trial from the reset vector —
// the reference implementation the replay path must match bit for bit.
func (e *engine) runTrialFull(m *mem.Memory, p *pointState, ti int) trialResult {
	s := e.s
	ctx := p.ctx
	var r trialResult
	rng := stats.NewTrialRand(stats.SubSeed(s.Seed, ti))
	prog, want := ctx.prog, ctx.want
	qual := ctx.qual
	if ctx.bench.PerTrialInputs {
		src, w2, err := ctx.bench.Build(stats.SubSeed(s.InputSeed, ti))
		if err != nil {
			r.err = err
			return r
		}
		p2, err := asm.Assemble(src)
		if err != nil {
			r.err = err
			return r
		}
		prog, want = p2, w2
		qual = ctx.bench.QualityAt(stats.SubSeed(s.InputSeed, ti))
	}
	m.Reset()
	c := cpu.New(m, p.model.NewTrial(rng), s.System.Cfg.CPU)
	if err := c.Load(prog); err != nil {
		r.err = err
		return r
	}
	c.SetWatchdog(ctx.watchdog)
	st := c.Run()
	return e.finishTrial(ctx, qual, c, m, prog, want, st)
}

// finishTrial folds a completed simulation into a trialResult; shared by
// the full and forked-replay paths. qual is the trial's quality
// extractor — ctx.qual everywhere except PerTrialInputs trials, whose
// extractor is rebound to the trial's input seed. Quality scoring
// consumes no RNG, so it cannot perturb the bit-identity guarantees.
func (e *engine) finishTrial(ctx *benchCtx, qual bench.QualityFunc, c *cpu.CPU, m *mem.Memory, prog *asm.Program, want []uint32, st cpu.Status) trialResult {
	var r trialResult
	r.fiBits = c.FIBits
	r.kernelCycles = c.KernelCycles
	if st != cpu.StatusExited {
		return r
	}
	r.finished = true
	got, err := ctx.bench.Outputs(m, prog)
	if err != nil {
		// Output extraction can only fail on a broken benchmark
		// definition, not on FI.
		r.err = err
		return r
	}
	r.metric = ctx.bench.Metric(got, want)
	r.correct = true
	for i := range got {
		if got[i] != want[i] {
			r.correct = false
			break
		}
	}
	if qualityDisabled {
		if r.correct {
			r.quality = 1
		}
	} else {
		r.quality = qual(got, want)
	}
	return r
}

// run drives the worker pool to completion and aggregates every point.
// A cancelled ctx aborts the grid at trial granularity: no new (cell,
// trial) items are handed out, in-flight trials finish, and the run
// returns ctx's error — unless every cell had already closed when the
// cancellation landed, in which case the complete grid is returned.
func (e *engine) run(ctx context.Context) ([]Point, error) {
	var stopWatcher, watcherDone chan struct{}
	if done := ctx.Done(); done != nil {
		stopWatcher = make(chan struct{})
		watcherDone = make(chan struct{})
		go func() {
			defer close(watcherDone)
			select {
			case <-done:
				e.mu.Lock()
				if e.err == nil {
					e.err = ctx.Err()
				}
				e.cond.Broadcast()
				e.mu.Unlock()
			case <-stopWatcher:
			}
		}()
	}
	// The pool runs at full width from the start: cells stream in while
	// workers are already up, so the total amount of work is unknown
	// here. An idle worker parks in take() until a point arrives or the
	// stream seals.
	workers := e.s.Workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := newMem()
			var wm *mem.Memory // walker memory, lazily built for chunks
			for {
				// Poll the context synchronously between items: the watcher
				// alone covers parked workers, but a hot worker on a busy
				// machine could otherwise race through the remaining items
				// before the watcher goroutine is ever scheduled, turning a
				// mid-run cancellation into a spuriously "whole" grid.
				if err := ctx.Err(); err != nil {
					e.mu.Lock()
					if e.err == nil {
						e.err = err
					}
					e.cond.Broadcast()
					e.mu.Unlock()
					return
				}
				it, ok := e.take()
				if !ok {
					return
				}
				switch {
				case it.plan:
					e.plan(it.p, it.planFrom, it.planTo)
				case it.chunk != nil:
					if wm == nil {
						wm = newMem()
					}
					e.runChunk(m, wm, it.p, it.chunk)
				default:
					e.complete(it.p, it.ti, e.runTrial(m, it.p, it.ti))
				}
			}
		}()
	}
	wg.Wait()
	// Join the context watcher before reading e.err: wg.Wait only
	// synchronizes the workers, and the watcher writes e.err too.
	if stopWatcher != nil {
		close(stopWatcher)
		<-watcherDone
	}
	e.mu.Lock()
	err := e.err
	// Workers only retire once the stream is sealed (or on abort), so
	// this snapshot covers every point the committer handed over; grab
	// it under the lock since an aborted run can race a late addPoint.
	pts := e.pts
	e.mu.Unlock()
	if err != nil {
		// A cancellation that landed only after every cell had closed
		// aborted nothing; the grid is whole and its points are exactly
		// what an uncancelled run would have produced (decide runs before
		// the error check in complete, so no cell was closed early).
		whole := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
		for _, p := range pts {
			if !p.done {
				whole = false
				break
			}
		}
		if !whole {
			return nil, err
		}
	}
	out := make([]Point, 0, len(pts))
	for _, p := range pts {
		pt, err := aggregate(p.cell.Model.FreqMHz, p.results[:p.target])
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// aggregate folds raw trial results (in trial-index order) into the
// paper's per-point metrics and the quality distribution summary.
// Quality sums run in trial-index order, so aggregated values inherit
// the engine's bit-identity guarantee across schedules and grid shapes.
func aggregate(fMHz float64, results []trialResult) (Point, error) {
	pt := Point{FreqMHz: fMHz, Trials: len(results)}
	var fin, cor int
	var fiBits, kCycles, kCyclesFin uint64
	var errSum, errAllSum, qSum float64
	qs := make([]float64, 0, len(results))
	for _, r := range results {
		if r.err != nil {
			return Point{}, r.err
		}
		fiBits += r.fiBits
		kCycles += r.kernelCycles
		// Non-finished trials carry the zero-value quality 0: a run the
		// watchdog killed produced nothing of application value.
		qSum += r.quality
		qs = append(qs, r.quality)
		if r.finished {
			fin++
			errSum += r.metric
			errAllSum += capPct(r.metric)
			kCyclesFin += r.kernelCycles
			if r.correct {
				cor++
			}
		} else {
			errAllSum += 100
		}
	}
	pt.FinishedPct = pct(fin, len(results))
	pt.CorrectPct = pct(cor, len(results))
	if kCycles > 0 {
		pt.FIRate = float64(fiBits) / float64(kCycles) * 1000
	}
	if fin > 0 {
		pt.OutputErr = errSum / float64(fin)
		pt.KernelCycles = float64(kCyclesFin) / float64(fin)
	}
	pt.OutputErrAll = errAllSum / float64(len(results))
	if n := len(results); n > 0 {
		pt.QualityMean = qSum / float64(n)
		sort.Float64s(qs)
		pt.QualityP50 = qualityQuantile(qs, 0.50)
		pt.QualityP99 = qualityQuantile(qs, 0.99)
		pt.QualityLo, pt.QualityHi = stats.WilsonFrac(qSum, n, stats.WilsonZ95)
	}
	return pt, nil
}

// qualityQuantile returns the quality met by at least frac of the
// trials: with qualities sorted ascending, the largest q such that at
// least ceil(frac·n) trials score q or better — a tail guarantee, so
// QualityP99 reads "99% of trials are at least this good".
func qualityQuantile(sorted []float64, frac float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	i := n - int(math.Ceil(frac*float64(n)))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return sorted[i]
}

func pct(n, total int) float64 { return float64(n) / float64(total) * 100 }

func capPct(x float64) float64 {
	if x > 100 {
		return 100
	}
	return x
}

// Run evaluates one data point at the given frequency. It is the
// single-frequency case of the sweep engine, so fixed-seed results are
// identical whether a frequency is evaluated alone or inside a sweep.
func Run(spec Spec, fMHz float64) (Point, error) {
	pts, err := Sweep(spec, []float64{fMHz})
	if err != nil {
		return Point{}, err
	}
	return pts[0], nil
}

// RunScan evaluates one data point on the golden-trace replay scan —
// the exact fast path that drives the injector over every recorded ALU
// query. It is bit-identical to RunFull for a fixed seed (the
// differential test grid pins this across benchmarks, models,
// frequencies and fault semantics) and is the statistical reference for
// the default first-fault sampling path.
func RunScan(spec Spec, fMHz float64) (Point, error) {
	spec.Mode = ModeScan
	return Run(spec, fMHz)
}

// RunFull evaluates one data point forcing full ISS execution for every
// trial — the reference implementation both fast paths are measured
// against, kept the way SweepSerial is kept for the sweep engine.
func RunFull(spec Spec, fMHz float64) (Point, error) {
	spec.DisableReplay = true
	return Run(spec, fMHz)
}

// Sweep evaluates the configuration over a list of frequencies — the
// single-axis (frequency) grid. Like the serial reference path it
// returns the points of every frequency before the first invalid
// operating point together with that point's error.
func Sweep(spec Spec, freqs []float64) ([]Point, error) {
	pts := make([]Point, 0, len(freqs))
	if len(freqs) == 0 {
		return pts, nil
	}
	cells, err := Grid{Spec: spec, Axes: Axes{Freqs: freqs}}.Run()
	for _, c := range cells {
		pts = append(pts, c.Point)
	}
	return pts, err
}

// SweepSerial evaluates points strictly one at a time with a per-point
// worker barrier and a freshly built (uncached) model per point — the
// pre-engine implementation. It is kept as the reference for the
// determinism guarantee (Sweep must match it bit-for-bit for a fixed
// seed) and as the baseline for the sweep-engine benchmarks. Adaptive
// allocation is not supported; Trials is always used as-is.
func SweepSerial(spec Spec, freqs []float64) ([]Point, error) {
	pts := make([]Point, 0, len(freqs))
	for _, f := range freqs {
		p, err := runSerial(spec, f)
		if err != nil {
			return pts, err
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// runSerial is the original single-point implementation: per-point
// golden run, per-point model construction, per-point worker pool.
func runSerial(spec Spec, fMHz float64) (Point, error) {
	s := spec.withDefaults()
	ms := s.Model
	ms.FreqMHz = fMHz
	if ms.Profile == nil {
		ms.Profile = s.Bench.Profile
	}
	model, err := s.System.NewModel(ms)
	if err != nil {
		return Point{}, err
	}

	// PerTrialInputs benchmarks use the golden run only to size the
	// watchdog; the shared program and outputs stay nil for them.
	sharedProg, sharedWant, goldenCycles, err := s.System.GoldenRun(s.Bench, s.InputSeed)
	if err != nil {
		return Point{}, err
	}
	if s.Bench.PerTrialInputs {
		sharedProg, sharedWant = nil, nil
	}
	watchdog := uint64(float64(goldenCycles) * s.WatchdogFactor)

	results := make([]trialResult, s.Trials)
	sharedQual := s.Bench.QualityAt(s.InputSeed)
	var wg sync.WaitGroup
	trialCh := make(chan int)
	for w := 0; w < s.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := newMem()
			for t := range trialCh {
				rng := stats.NewTrialRand(stats.SubSeed(s.Seed, t))
				prog, want := sharedProg, sharedWant
				qual := sharedQual
				if s.Bench.PerTrialInputs {
					src, w2, err := s.Bench.Build(stats.SubSeed(s.InputSeed, t))
					if err != nil {
						results[t].err = err
						continue
					}
					p2, err := asm.Assemble(src)
					if err != nil {
						results[t].err = err
						continue
					}
					prog, want = p2, w2
					qual = s.Bench.QualityAt(stats.SubSeed(s.InputSeed, t))
				}
				m.Reset()
				c := cpu.New(m, model.NewTrial(rng), s.System.Cfg.CPU)
				if err := c.Load(prog); err != nil {
					results[t].err = err
					continue
				}
				c.SetWatchdog(watchdog)
				st := c.Run()
				r := &results[t]
				r.fiBits = c.FIBits
				r.kernelCycles = c.KernelCycles
				if st != cpu.StatusExited {
					continue
				}
				r.finished = true
				got, err := s.Bench.Outputs(m, prog)
				if err != nil {
					r.err = err
					continue
				}
				r.metric = s.Bench.Metric(got, want)
				r.correct = true
				for i := range got {
					if got[i] != want[i] {
						r.correct = false
						break
					}
				}
				if qualityDisabled {
					if r.correct {
						r.quality = 1
					}
				} else {
					r.quality = qual(got, want)
				}
			}
		}()
	}
	for t := 0; t < s.Trials; t++ {
		trialCh <- t
	}
	close(trialCh)
	wg.Wait()
	return aggregate(fMHz, results)
}

// PoFF locates the point of first failure in a sweep: the lowest
// frequency whose point is no longer 100% correct (the paper's
// definition). It returns the frequency and true, or 0 and false when
// every point is fully correct (or the sweep is empty).
func PoFF(points []Point) (float64, bool) {
	for _, p := range points {
		if p.CorrectPct < 100 {
			return p.FreqMHz, true
		}
	}
	return 0, false
}

// GainOverSTA expresses a PoFF as percent gain over the STA limit, the
// annotation of the paper's Fig. 5/6. A PoFF below the STA limit yields
// a negative gain.
func GainOverSTA(poffMHz, staMHz float64) float64 {
	return (poffMHz - staMHz) / staMHz * 100
}
