package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/dta"
)

var (
	sysOnce sync.Once
	sys     *core.System
)

// system returns a shared small-DTA stack, like the mc tests use.
func system() *core.System {
	sysOnce.Do(func() {
		sys = core.New(testConfig())
	})
	return sys
}

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.DTA = dta.Config{Cycles: 768, Seed: 5}
	return cfg
}

// smallSpec is a fast two-point grid used across the tests.
func smallSpec(seed int64) JobSpec {
	return JobSpec{
		Benches: []string{"median"},
		Models:  []string{"C"},
		Vdds:    []float64{0.7},
		Sigmas:  []float64{0.010},
		Freqs:   []float64{700, 720},
		Trials:  6,
		Seed:    seed,
	}
}

func waitDone(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	if !st.State.Terminal() {
		t.Fatalf("job %s not terminal after wait: %s", id, st.State)
	}
	return st
}

// TestCanonicalizeFingerprint pins the dedup identity: a spec with
// defaults spelled out, one relying on defaulting, and one using the
// frequency-range shorthand all share a fingerprint; changing any
// Monte-Carlo input changes it.
func TestCanonicalizeFingerprint(t *testing.T) {
	base, err := smallSpec(1).Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	fpr := func(s JobSpec) string {
		c, err := s.Canonicalize()
		if err != nil {
			t.Fatal(err)
		}
		return c.Fingerprint("sysfp")
	}
	want := base.Fingerprint("sysfp")

	// Defaults spelled out vs omitted.
	sparse := JobSpec{Benches: []string{"median"}, Sigmas: []float64{0.010}, Freqs: []float64{700, 720}, Trials: 6, Seed: 1}
	if fpr(sparse) != want {
		t.Error("defaulted spec fingerprint differs from explicit spec")
	}
	// Range shorthand vs explicit list.
	ranged := smallSpec(1)
	ranged.Freqs = nil
	ranged.FreqLo, ranged.FreqHi, ranged.FreqStep = 700, 720, 20
	if fpr(ranged) != want {
		t.Error("freq-range spec fingerprint differs from freq-list spec")
	}
	// Any input change must separate.
	for name, mut := range map[string]func(*JobSpec){
		"seed":   func(s *JobSpec) { s.Seed = 2 },
		"trials": func(s *JobSpec) { s.Trials = 7 },
		"mode":   func(s *JobSpec) { s.Mode = "scan" },
		"sigma":  func(s *JobSpec) { s.Sigmas = []float64{0.011} },
	} {
		s := smallSpec(1)
		mut(&s)
		if fpr(s) == want {
			t.Errorf("%s change did not change the fingerprint", name)
		}
	}
	// The system fingerprint is part of the identity.
	if base.Fingerprint("other-system") == want {
		t.Error("system fingerprint not folded into job fingerprint")
	}
}

func hugeFreqs() []float64 {
	out := make([]float64, MaxFreqs+1)
	for i := range out {
		out[i] = 700
	}
	return out
}

func manyVals(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 0.7
	}
	return out
}

func TestCanonicalizeRejects(t *testing.T) {
	bad := []JobSpec{
		{}, // no benches
		{Benches: []string{"nope"}, Freqs: []float64{700}},                                      // unknown bench
		{Benches: []string{"median"}},                                                           // no freqs
		{Benches: []string{"median"}, Freqs: []float64{-1}},                                     // bad freq
		{Benches: []string{"median"}, Freqs: []float64{700}, Models: []string{"D"}},             // bad model
		{Benches: []string{"median"}, Freqs: []float64{700}, Mode: "bogus"},                     // bad mode
		{Benches: []string{"median"}, Freqs: []float64{700}, TrialsMin: 5},                      // min without max
		{Benches: []string{"median"}, Freqs: []float64{700}, FreqLo: 1, FreqHi: 2, FreqStep: 1}, // both forms
		{Benches: []string{"median"}, FreqLo: 1, FreqHi: 1e12, FreqStep: 1e-6},                  // range past MaxFreqs
		{Benches: []string{"median"}, Freqs: hugeFreqs()},                                       // explicit list past MaxFreqs
		{Benches: []string{"median"}, Freqs: []float64{700},
			Vdds: manyVals(512), Sigmas: manyVals(512), Models: []string{"none", "A", "B", "B+", "C"}}, // grid past MaxCells
		{Benches: []string{"median"}, Freqs: []float64{700}, Trials: MaxTrials + 1},      // trials past MaxTrials
		{Benches: []string{"median"}, Freqs: []float64{700}, TrialsMax: MaxTrials + 1},   // adaptive budget past MaxTrials
		{Benches: []string{"median"}, Freqs: []float64{700}, WatchdogFactor: 1e300},      // watchdog overflow
		{Benches: []string{"median"}, Freqs: []float64{700}, WatchdogFactor: math.NaN()}, // watchdog NaN
	}
	for i, s := range bad {
		if _, err := s.Canonicalize(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

// TestConcurrentSubmitDedup is the headline contract: N concurrent
// clients submitting overlapping specs observe exactly one underlying
// run per unique fingerprint, and every client of a shared job reads
// byte-identical result bytes.
func TestConcurrentSubmitDedup(t *testing.T) {
	m := NewManager(Options{System: system()})
	defer m.Shutdown(context.Background())
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	// 12 clients, 2 unique specs (seeds 1 and 2), submitted in parallel.
	const clients = 12
	type sub struct {
		id      string
		deduped bool
	}
	subs := make([]sub, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := smallSpec(int64(1 + i%2))
			blob, _ := json.Marshal(spec)
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(blob))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var sr SubmitResponse
			if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
				t.Error(err)
				return
			}
			subs[i] = sub{id: sr.ID, deduped: sr.Deduped}
		}(i)
	}
	wg.Wait()

	ids := map[string]bool{}
	deduped := 0
	for _, s := range subs {
		ids[s.id] = true
		if s.deduped {
			deduped++
		}
	}
	if len(ids) != 2 {
		t.Fatalf("12 submissions over 2 unique specs produced %d job IDs (%v), want 2", len(ids), ids)
	}
	if deduped != clients-2 {
		t.Errorf("deduped=%d, want %d", deduped, clients-2)
	}
	for id := range ids {
		waitDone(t, m, id)
	}
	if st := m.Stats(); st.Executed != 2 || st.Submitted != clients || st.Deduped != int64(clients-2) {
		t.Errorf("stats = %+v, want Executed=2 Submitted=%d Deduped=%d", st, clients, clients-2)
	}

	// Every client fetches its job's result; bytes must match exactly
	// per job, for both formats.
	for _, format := range []string{"json", "csv"} {
		byID := map[string][]byte{}
		for _, s := range subs {
			resp, err := http.Get(ts.URL + "/v1/jobs/" + s.id + "/result?format=" + format)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("result %s: %s: %s", s.id, resp.Status, body)
			}
			if prev, ok := byID[s.id]; ok {
				if !bytes.Equal(prev, body) {
					t.Errorf("job %s: %s result bytes differ between clients", s.id, format)
				}
			} else {
				byID[s.id] = body
			}
		}
		// Different fingerprints must not share results: the two unique
		// jobs used different seeds.
		var bodies [][]byte
		for _, b := range byID {
			bodies = append(bodies, b)
		}
		if len(bodies) == 2 && bytes.Equal(bodies[0], bodies[1]) {
			t.Errorf("distinct jobs returned identical %s bytes", format)
		}
	}

	// A post-completion resubmission still dedups onto the retained job.
	blob, _ := json.Marshal(smallSpec(1))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var sr SubmitResponse
	json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if !sr.Deduped || !ids[sr.ID] {
		t.Errorf("warm resubmission: deduped=%v id=%s, want dedup onto a prior job", sr.Deduped, sr.ID)
	}
	if st := m.Stats(); st.Executed != 2 {
		t.Errorf("warm resubmission re-executed: Executed=%d", st.Executed)
	}
}

// TestWarmResubmitServesFromStore pins the cross-process dedup layer:
// a fresh daemon (new System, new Manager) over a warm artifact store
// answers a repeated grid job from checkpointed cells without
// recharacterizing, re-recording or re-running a single trial.
func TestWarmResubmitServesFromStore(t *testing.T) {
	dir := t.TempDir()

	run := func() (Status, *core.System, *Manager) {
		store, err := artifact.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		s := core.New(testConfig())
		s.AttachStore(store)
		m := NewManager(Options{System: s, Store: store})
		j, deduped, err := m.Submit(smallSpec(1))
		if err != nil {
			t.Fatal(err)
		}
		if deduped {
			t.Fatal("fresh manager reported dedup")
		}
		st := waitDone(t, m, j.ID)
		if st.State != StateDone {
			t.Fatalf("job state %s: %s", st.State, st.Error)
		}
		m.Shutdown(context.Background())
		return st, s, m
	}

	cold, _, _ := run()
	if cold.CachedCells != 0 {
		t.Fatalf("cold run served %d cached cells", cold.CachedCells)
	}
	warm, warmSys, _ := run()
	if warm.CachedCells != warm.Cells || warm.Cells == 0 {
		t.Fatalf("warm run: %d/%d cells cached, want all", warm.CachedCells, warm.Cells)
	}
	if n := warmSys.Char.ComputedCount(); n != 0 {
		t.Errorf("warm run computed %d characterizations", n)
	}
	if n := warmSys.GoldenRecordedCount(); n != 0 {
		t.Errorf("warm run recorded %d golden traces", n)
	}
}

// TestCancelRunning cancels a job mid-run and expects a canceled
// terminal state with partial progress.
func TestCancelRunning(t *testing.T) {
	m := NewManager(Options{System: system()})
	defer m.Shutdown(context.Background())

	spec := smallSpec(7)
	spec.Mode = "scan" // per-cycle scan: slow enough to catch mid-run
	spec.Trials = 4000
	spec.Freqs = []float64{700}
	j, _, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel as soon as the job reports running progress.
	ch, cancelSub, err := m.Subscribe(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancelSub()
	go func() {
		for p := range ch {
			if p.State == StateRunning {
				m.Cancel(j.ID)
				return
			}
		}
	}()
	st := waitDone(t, m, j.ID)
	if st.State != StateCanceled {
		t.Fatalf("state = %s (err %q), want canceled", st.State, st.Error)
	}
	if st.Progress != nil && st.Progress.DoneTrials >= 4000 {
		t.Errorf("cancelled job completed all %d trials", st.Progress.DoneTrials)
	}
	// A cancelled fingerprint does not satisfy dedup: resubmitting
	// schedules a fresh job.
	j2, deduped, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if deduped || j2.ID == j.ID {
		t.Errorf("resubmit after cancel deduped onto the dead job")
	}
	m.Cancel(j2.ID)
	waitDone(t, m, j2.ID)
}

// TestCancelQueued cancels a job that never left the queue.
func TestCancelQueued(t *testing.T) {
	m := NewManager(Options{System: system(), Parallel: 1})
	defer m.Shutdown(context.Background())

	blocker := smallSpec(11)
	blocker.Mode = "scan"
	blocker.Trials = 4000
	blocker.Freqs = []float64{700}
	jb, _, err := m.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	queued, _, err := m.Submit(smallSpec(12))
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := m.Cancel(queued.ID); err != nil || !ok {
		t.Fatalf("cancel queued: ok=%v err=%v", ok, err)
	}
	if st := waitDone(t, m, queued.ID); st.State != StateCanceled {
		t.Fatalf("queued job state = %s, want canceled", st.State)
	}
	m.Cancel(jb.ID)
	waitDone(t, m, jb.ID)
	// The runner must not resurrect the cancelled queued job.
	if st, _ := m.Status(queued.ID); st.State != StateCanceled {
		t.Errorf("queued job resurrected to %s", st.State)
	}
}

// TestShutdownDrains verifies the drain contract: submitted jobs finish,
// later submissions are refused.
func TestShutdownDrains(t *testing.T) {
	m := NewManager(Options{System: system()})
	j, _, err := m.Submit(smallSpec(21))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st, err := m.Status(j.ID); err != nil || st.State != StateDone {
		t.Fatalf("drained job: state=%v err=%v, want done", st.State, err)
	}
	if _, _, err := m.Submit(smallSpec(22)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: %v, want ErrDraining", err)
	}
}

// TestHTTPLifecycle exercises the full wire surface: submit, long-poll
// wait, status, SSE stream, result negotiation, cancel of a finished
// job, and 404s.
func TestHTTPLifecycle(t *testing.T) {
	m := NewManager(Options{System: system()})
	defer m.Shutdown(context.Background())
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	blob, _ := json.Marshal(smallSpec(31))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %s", resp.Status)
	}
	var sr SubmitResponse
	json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()

	// Long-poll until terminal.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + sr.ID + "?wait=60s")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.State != StateDone {
		t.Fatalf("long-poll state = %s (%s)", st.State, st.Error)
	}
	if st.Cells != 2 {
		t.Errorf("cells = %d, want 2", st.Cells)
	}

	// SSE on a terminal job delivers exactly the done event.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + sr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("events content-type = %q", ct)
	}
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: done") {
			sawDone = true
		}
	}
	resp.Body.Close()
	if !sawDone {
		t.Error("SSE stream ended without a done event")
	}

	// Accept-header negotiation yields CSV.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+sr.ID+"/result", nil)
	req.Header.Set("Accept", "text/csv")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Errorf("Accept text/csv got content-type %q", ct)
	}
	if !strings.Contains(string(body), "freq_mhz") {
		t.Errorf("CSV result missing header: %.100s", body)
	}

	// Cancelling a finished job is a no-op.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sr.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var cr struct {
		Canceled bool  `json:"canceled"`
		State    State `json:"state"`
	}
	json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if cr.Canceled || cr.State != StateDone {
		t.Errorf("cancel of done job: %+v", cr)
	}

	// Unknown jobs 404 everywhere.
	for _, path := range []string{"/v1/jobs/jx", "/v1/jobs/jx/result", "/v1/jobs/jx/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s status = %s, want 404", path, resp.Status)
		}
	}

	// Malformed and invalid specs are 400s.
	for _, payload := range []string{"{", `{"benches":[]}`, `{"unknown_field":1}`} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("payload %q status = %s, want 400", payload, resp.Status)
		}
	}

	// Stats report the traffic.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if stats.Jobs.Submitted < 1 || stats.Cache == "" {
		t.Errorf("stats = %+v", stats)
	}
}

// TestQueueFull pins the bounded-queue contract.
func TestQueueFull(t *testing.T) {
	m := NewManager(Options{System: system(), Parallel: 1, QueueCap: 1})
	defer m.Shutdown(context.Background())

	blocker := smallSpec(41)
	blocker.Mode = "scan"
	blocker.Trials = 4000
	blocker.Freqs = []float64{700}
	jb, _, err := m.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	// One fits in the queue; the next unique spec must be refused.
	var kept []*Job
	full := false
	for seed := int64(42); seed < 48; seed++ {
		j, _, err := m.Submit(smallSpec(seed))
		if errors.Is(err, ErrQueueFull) {
			full = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		kept = append(kept, j)
	}
	if !full {
		t.Error("bounded queue never filled")
	}
	m.Cancel(jb.ID)
	for _, j := range kept {
		m.Cancel(j.ID)
	}
	waitDone(t, m, jb.ID)
	for _, j := range kept {
		waitDone(t, m, j.ID)
	}
}
