// Command characterize runs the gate-level dynamic timing analysis for
// one instruction and dumps the per-endpoint timing-error CDF onsets and
// selected violation probabilities, the data behind the paper's Fig. 2.
//
//	characterize -op l.mul -vdd 0.7 -cycles 8192
//	characterize -op all -vdd 0.7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/artifact"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/progress"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("characterize: ")
	opName := flag.String("op", "l.add", "instruction mnemonic (e.g. l.add, l.mul, l.sfgts) or \"all\"")
	vdd := flag.Float64("vdd", 0.7, "supply voltage in V")
	cycles := flag.Int("cycles", 8192, "characterization kernel cycles")
	gen := flag.String("gen", "", "operand generator override (u32, u16, u8, imm16, ...)")
	cacheDir := flag.String("cache-dir", "", "artifact cache directory (persists characterizations)")
	quiet := flag.Bool("q", false, "suppress the stderr progress line")
	flag.Parse()

	cfgAll := core.DefaultConfig()
	cfgAll.DTA.Cycles = *cycles
	sysAll := core.New(cfgAll)
	if *cacheDir != "" {
		st, err := artifact.Open(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		sysAll.AttachStore(st)
	}

	if *opName == "all" {
		characterizeAll(sysAll, *vdd, *quiet)
		if *cacheDir != "" {
			fmt.Fprintf(os.Stderr, "characterize: cache %s: %s\n", *cacheDir, sysAll.CacheSummary())
		}
		return
	}

	var op isa.Op
	for _, o := range isa.AllOps() {
		if o.String() == *opName {
			op = o
		}
	}
	if op == isa.OpInvalid || !isa.IsALU(op) {
		log.Fatalf("%q is not an FI-eligible ALU instruction", *opName)
	}

	sys := sysAll

	var profile map[circuit.UnitKind]string
	if *gen != "" {
		profile = map[circuit.UnitKind]string{circuit.UnitOf(op): *gen}
	}
	ch, err := sys.Char.ForOp(op, profile, *vdd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instruction    %v (unit %v, operands %q)\n", op, ch.Key.Unit, ch.Key.Gen)
	fmt.Printf("vdd            %.3f V, %d cycles, setup %.1f ps\n", *vdd, ch.Cycles, ch.SetupPs)
	fmt.Printf("STA limit      %.1f MHz\n", sys.STALimitMHz(*vdd))
	fmt.Printf("onset          %.1f MHz (first timing violations)\n", ch.OnsetMHz())
	fmt.Printf("\n%8s %12s %12s %10s %10s %10s\n",
		"endpoint", "maxArr[ps]", "onset[MHz]", "P@900MHz", "P@1200MHz", "P@1600MHz")
	for e := 0; e < ch.NumEndpoints(); e++ {
		name := fmt.Sprintf("bit%d", e)
		if e == circuit.FlagEndpoint {
			name = "flag"
		}
		c := ch.CDFs[e]
		fmt.Printf("%8s %12.1f %12.1f %9.2f%% %9.2f%% %9.2f%%\n",
			name, c.MaxPs(), c.OnsetMHz(),
			c.ViolationProb(circuit.PeriodPs(900))*100,
			c.ViolationProb(circuit.PeriodPs(1200))*100,
			c.ViolationProb(circuit.PeriodPs(1600))*100)
	}
}

// characterizeAll characterizes every FI-eligible ALU instruction at the
// given supply and prints a one-line onset summary per op, with a
// progress/ETA line on stderr (characterization dominates the runtime of
// a cold cache).
func characterizeAll(sys *core.System, vdd float64, quiet bool) {
	var ops []isa.Op
	for _, o := range isa.AllOps() {
		if isa.IsALU(o) {
			ops = append(ops, o)
		}
	}
	var rep *progress.Reporter
	if !quiet {
		rep = progress.New(os.Stderr, "characterize")
	}
	fmt.Printf("all ALU instructions at %.3f V (STA limit %.1f MHz)\n", vdd, sys.STALimitMHz(vdd))
	fmt.Printf("%-10s %-8s %-8s %12s %10s %10s\n",
		"op", "unit", "gen", "onset[MHz]", "P@900MHz", "P@1200MHz")
	rep.Update(0, len(ops))
	for i, op := range ops {
		ch, err := sys.Char.ForOp(op, nil, vdd)
		if err != nil {
			rep.Finish()
			log.Fatal(err)
		}
		var p900, p1200 float64
		for e := 0; e < ch.NumEndpoints(); e++ {
			c := ch.CDFs[e]
			if p := c.ViolationProb(circuit.PeriodPs(900)); p > p900 {
				p900 = p
			}
			if p := c.ViolationProb(circuit.PeriodPs(1200)); p > p1200 {
				p1200 = p
			}
		}
		fmt.Printf("%-10s %-8s %-8s %12.1f %9.2f%% %9.2f%%\n",
			op, ch.Key.Unit, ch.Key.Gen, ch.OnsetMHz(), p900*100, p1200*100)
		rep.Update(i+1, len(ops))
	}
	rep.Finish()
}
