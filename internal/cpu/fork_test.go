package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// flipAt builds an injector that passes golden values through until its
// n-th query (0-based), flips bit 0 of that result, and passes through
// afterwards — the shape of fi's fork injector, redeclared here because
// cpu and fi deliberately do not import each other.
func flipAt(n int) Injector {
	i := 0
	return injFunc(func(_ isa.Op, r, _ uint32, f, _ bool) (uint32, bool, int) {
		defer func() { i++ }()
		if i == n {
			return r ^ 1, f, 1
		}
		return r, f, 0
	})
}

// TestForkMatchesRestore is the batched-path fidelity guarantee: a core
// forked from a shared walker paused at query k, with a fault injected
// at that query, must be indistinguishable from a core independently
// Restored at the nearest checkpoint and run with the same injection —
// architectural state, every counter, fault accounting, and memory.
func TestForkMatchesRestore(t *testing.T) {
	_, tr, p := goldenTrace(t, 64)
	if len(tr.Events) < 8 {
		t.Fatalf("kernel too small: %d events", len(tr.Events))
	}

	// One walker walks forward over all fork points, as the batched
	// trial path does; start it from the first checkpoint.
	wm := mem.New()
	walker := New(wm, nil, DefaultConfig())
	if err := walker.Restore(p, tr, &tr.Checkpoints[0]); err != nil {
		t.Fatal(err)
	}
	walker.SetWatchdog(1_000_000)

	tm := mem.New()
	for k := 0; k < len(tr.Events); k++ {
		// Reference: independent restore at the nearest checkpoint, run
		// with a fault at relative query k - EventIndex.
		cp := tr.CheckpointBefore(k)
		rm := mem.New()
		ref := New(rm, flipAt(k-cp.EventIndex), DefaultConfig())
		if err := ref.Restore(p, tr, cp); err != nil {
			t.Fatal(err)
		}
		ref.SetWatchdog(1_000_000)
		refSt := ref.Run()

		// Batched: advance the shared walker, clone, fork, run.
		if st := walker.RunToQuery(uint64(k)); st != StatusRunning {
			t.Fatalf("walker ended %v before query %d", st, k)
		}
		if walker.KernelALUCycles != uint64(k) || !walker.willQuery() {
			t.Fatalf("walker paused at %d queries (willQuery=%v), want %d",
				walker.KernelALUCycles, walker.willQuery(), k)
		}
		tm.CloneFrom(wm)
		fc := walker.Fork(tm, flipAt(0))
		fc.SetWatchdog(1_000_000)
		if st := fc.Run(); st != refSt {
			t.Fatalf("query %d: fork ended %v, restore ended %v", k, st, refSt)
		}

		if fc.Regs != ref.Regs || fc.PC != ref.PC || fc.Flag != ref.Flag {
			t.Errorf("query %d: architectural state diverged", k)
		}
		if fc.Cycles != ref.Cycles || fc.KernelCycles != ref.KernelCycles ||
			fc.KernelALUCycles != ref.KernelALUCycles || fc.Retired != ref.Retired {
			t.Errorf("query %d: counters diverged: cycles %d/%d", k, fc.Cycles, ref.Cycles)
		}
		if fc.FIBits != ref.FIBits || fc.FIEvents != ref.FIEvents {
			t.Errorf("query %d: fault accounting diverged: bits %d/%d events %d/%d",
				k, fc.FIBits, ref.FIBits, fc.FIEvents, ref.FIEvents)
		}
		if fc.OpCounts != ref.OpCounts {
			t.Errorf("query %d: op counts diverged", k)
		}
		if tm.Loads != rm.Loads || tm.Stores != rm.Stores {
			t.Errorf("query %d: access counters diverged: loads %d/%d stores %d/%d",
				k, tm.Loads, rm.Loads, tm.Stores, rm.Stores)
		}
		got, err := tm.ReadWords(p.Symbols["buf"], 4)
		if err != nil {
			t.Fatal(err)
		}
		want, err := rm.ReadWords(p.Symbols["buf"], 4)
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Errorf("query %d: memory word %d = %#x, want %#x", k, j, got[j], want[j])
			}
		}
	}
}

// TestRunToQueryIdempotentAtPause pins that a walker already paused at
// query n does not advance when asked for n again (equal fork points in
// one batch), and that the paused-at query is the one the trace
// recorded.
func TestRunToQueryIdempotentAtPause(t *testing.T) {
	_, tr, p := goldenTrace(t, 64)
	wm := mem.New()
	walker := New(wm, nil, DefaultConfig())
	if err := walker.Restore(p, tr, &tr.Checkpoints[0]); err != nil {
		t.Fatal(err)
	}
	walker.SetWatchdog(1_000_000)

	k := len(tr.Events) / 2
	if st := walker.RunToQuery(uint64(k)); st != StatusRunning {
		t.Fatalf("walker ended %v", st)
	}
	cycles, pc := walker.Cycles, walker.PC
	if st := walker.RunToQuery(uint64(k)); st != StatusRunning {
		t.Fatalf("second pause ended %v", st)
	}
	if walker.Cycles != cycles || walker.PC != pc {
		t.Fatalf("repeated RunToQuery advanced the walker: cycles %d->%d", cycles, walker.Cycles)
	}

	// The instruction at the pause is the recorded query: fork with a
	// recording injector and check the first query's argument tuple.
	var first *TraceEvent
	rec := injFunc(func(op isa.Op, r, prev uint32, f, pf bool) (uint32, bool, int) {
		if first == nil {
			first = &TraceEvent{Op: op, Result: r, Prev: prev, Flag: f, PrevFlag: pf}
		}
		return r, f, 0
	})
	tm := mem.New()
	tm.CloneFrom(wm)
	fc := walker.Fork(tm, rec)
	fc.SetWatchdog(1_000_000)
	fc.Run()
	ev := tr.Events[k]
	want := TraceEvent{Op: ev.Op, Result: ev.Result, Prev: ev.Prev, Flag: ev.Flag, PrevFlag: ev.PrevFlag}
	if first == nil || *first != want {
		t.Fatalf("first fork query %+v, want %+v", first, want)
	}
}
