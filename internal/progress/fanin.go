// Fan-in of progress from concurrent sources. The cluster coordinator
// drives many workers at once, each reporting progress for its own
// lease; a Fanin folds those per-source streams into one aggregate
// stream the rest of the stack (the server's Broadcaster, SSE clients)
// consumes exactly as if a single local engine produced it.

package progress

import "sync"

// Counts is one source's progress contribution: paired done/total
// counters at two granularities (work items and points). It is a plain
// value so the package stays a stdlib-only leaf; callers map their own
// progress types (e.g. mc.Progress) onto it.
type Counts struct {
	Done, Total             int
	DonePoints, TotalPoints int
}

// Add returns the field-wise sum.
func (a Counts) Add(b Counts) Counts {
	return Counts{
		Done:        a.Done + b.Done,
		Total:       a.Total + b.Total,
		DonePoints:  a.DonePoints + b.DonePoints,
		TotalPoints: a.TotalPoints + b.TotalPoints,
	}
}

// Fanin aggregates progress from concurrent, dynamically appearing and
// disappearing sources into a single stream: a settled base (work known
// finished, plus any up-front totals) and one live snapshot per open
// source. Every mutation emits the new aggregate — base plus the sum of
// live snapshots — through the callback, under the Fanin's lock, so
// callbacks are serialized and in mutation order (the same contract the
// mc engine gives its Progress observers). The callback must therefore
// be cheap and must never call back into the Fanin.
type Fanin struct {
	mu   sync.Mutex
	base Counts
	live map[string]Counts
	emit func(Counts)
}

// NewFanin returns a Fanin emitting aggregates through emit (nil for a
// purely-polled aggregator).
func NewFanin(emit func(Counts)) *Fanin {
	return &Fanin{live: make(map[string]Counts), emit: emit}
}

// Fold adds c permanently into the settled base (up-front totals,
// cached cells, partial results salvaged from a failed source).
func (f *Fanin) Fold(c Counts) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.base = f.base.Add(c)
	f.emitLocked()
}

// Update replaces the live snapshot of one source. Snapshots are
// absolute per-source states, not deltas.
func (f *Fanin) Update(src string, c Counts) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.live[src] = c
	f.emitLocked()
}

// Close retires a source, folding final into the base in the same
// mutation — the aggregate never transiently drops while a finished
// source's contribution moves from live to settled.
func (f *Fanin) Close(src string, final Counts) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.live, src)
	f.base = f.base.Add(final)
	f.emitLocked()
}

// Discard retires a source folding nothing — a failed lease whose
// unfinished work returns to the queue. The caller salvages any
// completed portion separately via Fold.
func (f *Fanin) Discard(src string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.live, src)
	f.emitLocked()
}

// Snapshot returns the current aggregate.
func (f *Fanin) Snapshot() Counts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.aggregateLocked()
}

func (f *Fanin) aggregateLocked() Counts {
	agg := f.base
	for _, c := range f.live {
		agg = agg.Add(c)
	}
	return agg
}

func (f *Fanin) emitLocked() {
	if f.emit != nil {
		f.emit(f.aggregateLocked())
	}
}
