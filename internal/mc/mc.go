// Package mc is the Monte-Carlo experiment harness: it runs a benchmark
// under a fault-injection model at one operating point for many trials
// (the paper uses at least 100 per data point, 200 for Fig. 5), sweeps
// frequency ranges, and aggregates the paper's four application-level
// metrics: probability to finish, probability to be correct, fault
// injection rate (FIs per kCycle of kernel execution), and output error
// of the runs that finished.
package mc

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/stats"
)

func newMem() *mem.Memory { return mem.New() }

// Spec describes one experiment configuration (everything but the
// frequency, which the sweep varies).
type Spec struct {
	System *core.System
	Bench  *bench.Benchmark
	Model  core.ModelSpec // FreqMHz is overridden per point
	// Trials per data point (default 100).
	Trials int
	// Seed drives all trial randomness (noise, injection, per-trial
	// operands); every (seed, trial index) pair is reproducible.
	Seed int64
	// InputSeed fixes the benchmark's input data.
	InputSeed int64
	// WatchdogFactor bounds a faulty run at this multiple of the
	// fault-free cycle count (default 4): the infinite-loop detection
	// of the paper's ISS.
	WatchdogFactor float64
	// Workers limits parallelism (default NumCPU).
	Workers int
}

func (s Spec) withDefaults() Spec {
	if s.Trials <= 0 {
		s.Trials = 100
	}
	if s.WatchdogFactor <= 0 {
		s.WatchdogFactor = 4
	}
	if s.Workers <= 0 {
		s.Workers = runtime.NumCPU()
	}
	if s.InputSeed == 0 {
		s.InputSeed = 42
	}
	return s
}

// Point aggregates one (configuration, frequency) data point.
type Point struct {
	FreqMHz      float64
	Trials       int
	FinishedPct  float64 // runs that exited cleanly
	CorrectPct   float64 // runs with bit-exact output
	FIRate       float64 // endpoint violations per kernel kCycle (all runs)
	OutputErr    float64 // mean metric over finished runs (0 if none finished)
	OutputErrAll float64 // mean metric with non-finished runs counted as 100%
	KernelCycles float64 // mean kernel cycles of finished runs
}

// goldenRun executes the benchmark fault-free and returns program,
// expected outputs and the cycle count.
func goldenRun(s Spec, seed int64) (*asm.Program, []uint32, uint64, error) {
	src, want, err := s.Bench.Build(seed)
	if err != nil {
		return nil, nil, 0, err
	}
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("mc: %s: %w", s.Bench.Name, err)
	}
	m := newMem()
	c := cpu.New(m, nil, s.System.Cfg.CPU)
	if err := c.Load(p); err != nil {
		return nil, nil, 0, err
	}
	c.SetWatchdog(100_000_000)
	if st := c.Run(); st != cpu.StatusExited {
		return nil, nil, 0, fmt.Errorf("mc: %s: golden run ended %v (%v)", s.Bench.Name, st, c.TrapErr())
	}
	got, err := s.Bench.Outputs(m, p)
	if err != nil {
		return nil, nil, 0, err
	}
	for i := range got {
		if got[i] != want[i] {
			return nil, nil, 0, fmt.Errorf("mc: %s: golden output mismatch at %d", s.Bench.Name, i)
		}
	}
	return p, want, c.Cycles, nil
}

// Run evaluates one data point at the given frequency.
func Run(spec Spec, fMHz float64) (Point, error) {
	s := spec.withDefaults()
	ms := s.Model
	ms.FreqMHz = fMHz
	if ms.Profile == nil {
		ms.Profile = s.Bench.Profile
	}
	model, err := s.System.Model(ms)
	if err != nil {
		return Point{}, err
	}

	var sharedProg *asm.Program
	var sharedWant []uint32
	var goldenCycles uint64
	if !s.Bench.PerTrialInputs {
		sharedProg, sharedWant, goldenCycles, err = goldenRun(s, s.InputSeed)
		if err != nil {
			return Point{}, err
		}
	} else {
		// Use one golden run just to size the watchdog.
		_, _, goldenCycles, err = goldenRun(s, s.InputSeed)
		if err != nil {
			return Point{}, err
		}
	}
	watchdog := uint64(float64(goldenCycles) * s.WatchdogFactor)

	type result struct {
		finished, correct bool
		fiBits            uint64
		kernelCycles      uint64
		metric            float64
		err               error
	}
	results := make([]result, s.Trials)

	var wg sync.WaitGroup
	trialCh := make(chan int)
	for w := 0; w < s.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := newMem()
			for t := range trialCh {
				rng := stats.NewRand(stats.SubSeed(s.Seed, t))
				prog, want := sharedProg, sharedWant
				if s.Bench.PerTrialInputs {
					src, w2, err := s.Bench.Build(stats.SubSeed(s.InputSeed, t))
					if err != nil {
						results[t].err = err
						continue
					}
					p2, err := asm.Assemble(src)
					if err != nil {
						results[t].err = err
						continue
					}
					prog, want = p2, w2
				}
				m.Reset()
				c := cpu.New(m, model.NewTrial(rng), s.System.Cfg.CPU)
				if err := c.Load(prog); err != nil {
					results[t].err = err
					continue
				}
				c.SetWatchdog(watchdog)
				st := c.Run()
				r := &results[t]
				r.fiBits = c.FIBits
				r.kernelCycles = c.KernelCycles
				if st != cpu.StatusExited {
					continue
				}
				r.finished = true
				got, err := s.Bench.Outputs(m, prog)
				if err != nil {
					// Output extraction can only fail on a broken
					// benchmark definition, not on FI.
					r.err = err
					continue
				}
				r.metric = s.Bench.Metric(got, want)
				r.correct = true
				for i := range got {
					if got[i] != want[i] {
						r.correct = false
						break
					}
				}
			}
		}()
	}
	for t := 0; t < s.Trials; t++ {
		trialCh <- t
	}
	close(trialCh)
	wg.Wait()

	pt := Point{FreqMHz: fMHz, Trials: s.Trials}
	var fin, cor int
	var fiBits, kCycles, kCyclesFin uint64
	var errSum, errAllSum float64
	for _, r := range results {
		if r.err != nil {
			return Point{}, r.err
		}
		fiBits += r.fiBits
		kCycles += r.kernelCycles
		if r.finished {
			fin++
			errSum += r.metric
			errAllSum += capPct(r.metric)
			kCyclesFin += r.kernelCycles
			if r.correct {
				cor++
			}
		} else {
			errAllSum += 100
		}
	}
	pt.FinishedPct = pct(fin, s.Trials)
	pt.CorrectPct = pct(cor, s.Trials)
	if kCycles > 0 {
		pt.FIRate = float64(fiBits) / float64(kCycles) * 1000
	}
	if fin > 0 {
		pt.OutputErr = errSum / float64(fin)
		pt.KernelCycles = float64(kCyclesFin) / float64(fin)
	}
	pt.OutputErrAll = errAllSum / float64(s.Trials)
	return pt, nil
}

func pct(n, total int) float64 { return float64(n) / float64(total) * 100 }

func capPct(x float64) float64 {
	if x > 100 {
		return 100
	}
	return x
}

// Sweep evaluates the configuration over a list of frequencies.
func Sweep(spec Spec, freqs []float64) ([]Point, error) {
	pts := make([]Point, 0, len(freqs))
	for _, f := range freqs {
		p, err := Run(spec, f)
		if err != nil {
			return pts, err
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// PoFF locates the point of first failure in a sweep: the lowest
// frequency whose point is no longer 100% correct (the paper's
// definition). It returns the frequency and true, or 0 and false when
// every point is fully correct.
func PoFF(points []Point) (float64, bool) {
	for _, p := range points {
		if p.CorrectPct < 100 {
			return p.FreqMHz, true
		}
	}
	return 0, false
}

// GainOverSTA expresses a PoFF as percent gain over the STA limit, the
// annotation of the paper's Fig. 5/6.
func GainOverSTA(poffMHz, staMHz float64) float64 {
	return (poffMHz - staMHz) / staMHz * 100
}
