package mc

import (
	"reflect"
	"testing"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/core"
)

// The grid-engine differential: a single-axis (frequency) grid must be
// bit-identical to Sweep and to the point-serial pre-engine reference
// for a fixed seed (pinned on the scan path, whose trials execute the
// same law as the serial reference bit for bit).
func TestGridSingleAxisMatchesSweepAndSerial(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "B+", Vdd: 0.7, Sigma: 0.010},
		Mode:   ModeScan,
		Trials: 24,
		Seed:   7,
	}
	freqs := []float64{650, 660, 670, 680}

	cells, err := Grid{Spec: spec, Axes: Axes{Freqs: freqs}}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(freqs) {
		t.Fatalf("grid cells = %d, want %d", len(cells), len(freqs))
	}
	gridPts := make([]Point, len(cells))
	for i, c := range cells {
		if c.Bench != "median" || c.Model.FreqMHz != freqs[i] {
			t.Errorf("cell %d mislabelled: %s @ %v MHz", i, c.Bench, c.Model.FreqMHz)
		}
		gridPts[i] = c.Point
	}

	sweepPts, err := Sweep(spec, freqs)
	if err != nil {
		t.Fatal(err)
	}
	serialPts, err := SweepSerial(spec, freqs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gridPts, sweepPts) {
		t.Errorf("grid != sweep:\n%+v\n%+v", gridPts, sweepPts)
	}
	if !reflect.DeepEqual(gridPts, serialPts) {
		t.Errorf("grid != serial reference:\n%+v\n%+v", gridPts, serialPts)
	}
}

// Every cell of a multi-axis grid must be bit-identical to evaluating
// the same coordinate alone with Run — the grid is pure scheduling, not
// a statistical change.
func TestGridMultiAxisCellsMatchIndividualRuns(t *testing.T) {
	base := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "B"},
		Trials: 12,
		Seed:   3,
	}
	g := Grid{
		Spec: base,
		Axes: Axes{
			Benches: []*bench.Benchmark{bench.Median(), bench.MatMult8()},
			Kinds:   []string{"B", "B+"},
			Sigmas:  []float64{0.010},
			Vdds:    []float64{0.7},
			Freqs:   []float64{700, 720},
		},
	}
	cells, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*2*1*1*2 {
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	// Enumeration order: bench-major, frequency innermost.
	if cells[0].Bench != "median" || cells[4].Bench != "mat_mult_8bit" {
		t.Errorf("bench-major order violated: %s / %s", cells[0].Bench, cells[4].Bench)
	}
	if cells[0].Model.Kind != "B" || cells[2].Model.Kind != "B+" {
		t.Errorf("kind order violated: %s / %s", cells[0].Model.Kind, cells[2].Model.Kind)
	}
	if cells[0].Model.FreqMHz != 700 || cells[1].Model.FreqMHz != 720 {
		t.Errorf("freq innermost violated: %v / %v", cells[0].Model.FreqMHz, cells[1].Model.FreqMHz)
	}
	for _, c := range cells {
		spec := base
		b, err := bench.ByName(c.Bench)
		if err != nil {
			t.Fatal(err)
		}
		spec.Bench = b
		spec.Model = c.Model
		pt, err := Run(spec, c.Model.FreqMHz)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pt, c.Point) {
			t.Errorf("%s %s @ %v MHz: grid cell differs from individual Run:\n%+v\n%+v",
				c.Bench, c.Model.Kind, c.Model.FreqMHz, c.Point, pt)
		}
	}
}

// A grid with no axes at all is a single cell at the base spec's
// operating point.
func TestGridNoAxesIsSingleCell(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "B", Vdd: 0.7, FreqMHz: 710},
		Trials: 8,
		Seed:   1,
	}
	cells, err := Grid{Spec: spec}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Model.FreqMHz != 710 {
		t.Fatalf("cells = %+v", cells)
	}
	pt, err := Run(spec, 710)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells[0].Point, pt) {
		t.Errorf("no-axes grid differs from Run")
	}
}

// An invalid operating point partway through the enumeration yields the
// valid prefix plus the error, matching the sweep contract.
func TestGridInvalidCellPrefix(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "B", Vdd: 0.7},
		Trials: 6,
		Seed:   1,
	}
	limit := system().NonALUSafeMHz(0.7)
	cells, err := Grid{Spec: spec, Axes: Axes{Freqs: []float64{700, limit + 100}}}.Run()
	if err == nil {
		t.Fatal("expected an error past the non-ALU safe limit")
	}
	if len(cells) != 1 || cells[0].Model.FreqMHz != 700 {
		t.Fatalf("valid prefix not returned: %+v", cells)
	}
}

// Completed cells checkpoint to the store; a resumed grid loads them
// bit-identically without scheduling any trials.
func TestGridResumeFromStore(t *testing.T) {
	st, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "B+", Vdd: 0.7, Sigma: 0.010},
		Trials: 16,
		Seed:   9,
	}
	axes := Axes{Freqs: []float64{655, 665, 675}}

	first, err := Grid{Spec: spec, Axes: axes, Store: st}.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range first {
		if c.Cached {
			t.Errorf("first run reported a cached cell at %v MHz", c.Model.FreqMHz)
		}
	}

	trials := 0
	spec2 := spec
	spec2.Progress = func(p Progress) { trials = p.DoneTrials }
	second, err := Grid{Spec: spec2, Axes: axes, Store: st, Resume: true}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if trials != 0 {
		t.Errorf("resumed grid ran %d trials, want 0", trials)
	}
	for i, c := range second {
		if !c.Cached {
			t.Errorf("cell %v MHz not served from the store", c.Model.FreqMHz)
		}
		if !reflect.DeepEqual(c.Point, first[i].Point) {
			t.Errorf("resumed cell %v MHz drifted:\n%+v\n%+v",
				c.Model.FreqMHz, c.Point, first[i].Point)
		}
	}

	// A different seed must not hit the same cells.
	spec3 := spec
	spec3.Seed = 10
	third, err := Grid{Spec: spec3, Axes: axes, Store: st, Resume: true}.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range third {
		if c.Cached {
			t.Error("cell with a different seed was served from the store")
		}
	}
}

// End-to-end warm start: a second process (modelled by a fresh System)
// over a populated cache directory must skip DTA characterization and
// golden-trace recording entirely and produce bit-identical points.
func TestWarmStartSkipsCharacterizationAndRecording(t *testing.T) {
	dir := t.TempDir()
	newSys := func() *core.System {
		cfg := core.DefaultConfig()
		cfg.DTA.Cycles = 256
		s := core.New(cfg)
		st, err := artifact.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		s.AttachStore(st)
		return s
	}
	freqs := []float64{700, 760}
	run := func(sys *core.System) []Point {
		pts, err := Sweep(Spec{
			System: sys,
			Bench:  bench.Median(),
			Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
			Trials: 8,
			Seed:   2,
		}, freqs)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}

	cold := newSys()
	coldPts := run(cold)
	if cold.Char.ComputedCount() == 0 {
		t.Fatal("cold run did not characterize — fixture broken")
	}
	if cold.GoldenRecordedCount() == 0 {
		t.Fatal("cold run did not record a golden trace — fixture broken")
	}
	if cold.HazardBuiltCount() == 0 {
		t.Fatal("cold run did not build a hazard table — fixture broken")
	}

	warm := newSys()
	warmPts := run(warm)
	if n := warm.Char.ComputedCount(); n != 0 {
		t.Errorf("warm run recharacterized %d keys, want 0", n)
	}
	if n := warm.GoldenRecordedCount(); n != 0 {
		t.Errorf("warm run re-recorded %d golden traces, want 0", n)
	}
	if n := warm.HazardBuiltCount(); n != 0 {
		t.Errorf("warm run rebuilt %d hazard tables, want 0", n)
	}
	if warm.Char.LoadedCount() == 0 || warm.GoldenLoadedCount() == 0 || warm.HazardLoadedCount() == 0 {
		t.Errorf("warm run did not load from the store (char %d, golden %d, hazard %d)",
			warm.Char.LoadedCount(), warm.GoldenLoadedCount(), warm.HazardLoadedCount())
	}
	if !reflect.DeepEqual(coldPts, warmPts) {
		t.Errorf("warm-start points drifted:\n%+v\n%+v", coldPts, warmPts)
	}
}

// Adaptive allocation must checkpoint/resume identically too (the cell
// key includes the full adaptive configuration).
func TestGridResumeAdaptive(t *testing.T) {
	st, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		System:    system(),
		Bench:     bench.Median(),
		Model:     core.ModelSpec{Kind: "B+", Vdd: 0.7, Sigma: 0.010},
		TrialsMin: 6,
		TrialsMax: 24,
		Seed:      4,
	}
	axes := Axes{Freqs: []float64{660, 670}}
	first, err := Grid{Spec: spec, Axes: axes, Store: st}.Run()
	if err != nil {
		t.Fatal(err)
	}
	second, err := Grid{Spec: spec, Axes: axes, Store: st, Resume: true}.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range second {
		if !second[i].Cached || !reflect.DeepEqual(second[i].Point, first[i].Point) {
			t.Errorf("adaptive cell %d did not resume bit-identically", i)
		}
	}
}
