package mc

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dta"
)

// resolveSpec is the base spec of the resolver differential tests: a
// multi-benchmark, multi-model grid small enough to run the serial
// reference repeatedly.
func resolveSpec(s *core.System) Spec {
	return Spec{
		System: s,
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "B+", Vdd: 0.7, Sigma: 0.010},
		Trials: 4,
		Seed:   3,
	}
}

// TestPipelinedResolverMatchesSerial pins the concurrent resolver
// bit-identical to the serial reference path: the same grid, resolved
// serially (SerialResolve) and pipelined at several worker counts,
// must produce the same []CellResult — Points, Cached flags, order.
func TestPipelinedResolverMatchesSerial(t *testing.T) {
	axes := Axes{
		Benches: []*bench.Benchmark{bench.Median(), bench.MatMult8()},
		Kinds:   []string{"B+", "C"},
		Freqs:   []float64{700, 720},
	}
	ref := Grid{Spec: resolveSpec(system()), Axes: axes, SerialResolve: true}
	want, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 8 {
		t.Fatalf("reference grid has %d cells, want 8", len(want))
	}
	for _, workers := range []int{1, 2, 8} {
		g := Grid{Spec: resolveSpec(system()), Axes: axes}
		g.Spec.Workers = workers
		got, err := g.Run()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: pipelined results diverge from the serial resolver\ngot  %+v\nwant %+v",
				workers, got, want)
		}
	}
}

// TestPipelinedResolverErrorPrefix pins the error-prefix semantics
// across resolution schedules: a grid whose middle cell is unbuildable
// (sub-threshold supply) must return exactly the valid prefix plus that
// cell's error, no matter how many resolver workers raced ahead.
func TestPipelinedResolverErrorPrefix(t *testing.T) {
	// Enumeration order is Vdd-major: (0.7, 700), (0.7, 720), then the
	// invalid (0.3, 700) ends the grid at index 2.
	axes := Axes{Vdds: []float64{0.7, 0.3}, Freqs: []float64{700, 720}}
	ref := Grid{Spec: resolveSpec(system()), Axes: axes, SerialResolve: true}
	want, wantErr := ref.Run()
	if wantErr == nil {
		t.Fatal("serial reference accepted the sub-threshold cell")
	}
	if len(want) != 2 {
		t.Fatalf("serial reference kept %d cells, want the 2-cell valid prefix", len(want))
	}
	for _, workers := range []int{1, 2, 8} {
		g := Grid{Spec: resolveSpec(system()), Axes: axes}
		g.Spec.Workers = workers
		got, err := g.Run()
		if err == nil || err.Error() != wantErr.Error() {
			t.Fatalf("workers=%d: err=%v, want %v", workers, err, wantErr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: valid prefix diverges from the serial resolver\ngot  %+v\nwant %+v",
				workers, got, want)
		}
	}
}

// TestConcurrentColdSubmissionsDedupe pins the singleflight win the
// pipelined cold path exists for: 8 concurrent submissions of one cold
// grid against a shared System must do exactly the work of a single
// submission — every build counter equal to a lone serial run's — and
// return identical results. The old caches would have built the same
// models, goldens and hazards up to 8 times each and kept one.
func TestConcurrentColdSubmissionsDedupe(t *testing.T) {
	freshSystem := func() *core.System {
		cfg := core.DefaultConfig()
		cfg.DTA = dta.Config{Cycles: 768, Seed: 5}
		return core.New(cfg)
	}
	axes := Axes{Kinds: []string{"B+", "C"}, Freqs: []float64{700, 720}}

	// Reference: one cold serial submission, counters recorded.
	refSys := freshSystem()
	want, err := (Grid{Spec: resolveSpec(refSys), Axes: axes, SerialResolve: true}).Run()
	if err != nil {
		t.Fatal(err)
	}

	shared := freshSystem()
	const clients = 8
	results := make([][]CellResult, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = (Grid{Spec: resolveSpec(shared), Axes: axes}).Run()
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Errorf("client %d diverged from the serial cold run", i)
		}
	}

	// Total work across all 8 concurrent cold submissions = one run.
	if got, ref := shared.GoldenRecordedCount(), refSys.GoldenRecordedCount(); got != ref {
		t.Errorf("concurrent submissions recorded %d goldens, single run %d", got, ref)
	}
	if got, ref := shared.ModelsBuiltCount(), refSys.ModelsBuiltCount(); got != ref {
		t.Errorf("concurrent submissions built %d models, single run %d", got, ref)
	}
	if got, ref := shared.HazardBuiltCount(), refSys.HazardBuiltCount(); got != ref {
		t.Errorf("concurrent submissions built %d hazard tables, single run %d", got, ref)
	}
	if got, ref := shared.Char.ComputedCount(), refSys.Char.ComputedCount(); got != ref {
		t.Errorf("concurrent submissions computed %d characterizations, single run %d", got, ref)
	}
	if got, ref := shared.CacheSummary(), refSys.CacheSummary(); got != ref {
		t.Errorf("cache traffic diverged:\nconcurrent %s\nsingle     %s", got, ref)
	}
}
