// Package repro is a reproduction of "Statistical Fault Injection for
// Impact-Evaluation of Timing Errors on Application Performance"
// (Constantin, Wang, Karakonstantis, Burg, Chattopadhyay; DAC 2016).
//
// It provides a gate-level-characterized statistical fault-injection
// framework for a 32-bit OpenRISC-flavoured core: generated and
// calibrated ALU netlists, static and dynamic timing analysis, the
// paper's injection models A/B/B+/C, a cycle-accurate ISS with
// fault-injection hooks, the four benchmark kernels of the case study,
// and a Monte-Carlo harness that regenerates every table and figure of
// the paper's evaluation.
//
// This root package is a thin facade over the internal packages; see
// examples/ for usage and DESIGN.md for the architecture.
package repro

import (
	"io"
	"net/http"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dta"
	"repro/internal/experiments"
	"repro/internal/fi"
	"repro/internal/mc"
	"repro/internal/mitigate"
	"repro/internal/report"
	"repro/internal/server"
)

// Re-exported core types; see the internal packages for full
// documentation.
type (
	// Config is the full system configuration (circuit, DTA, Vdd-delay,
	// power, CPU timing, non-ALU safe limit).
	Config = core.Config
	// System is one instantiated simulation stack.
	System = core.System
	// ModelSpec selects a fault-injection model and operating point.
	ModelSpec = core.ModelSpec
	// Benchmark is one workload with golden model and error metric.
	Benchmark = bench.Benchmark
	// Spec describes a Monte-Carlo experiment configuration, including
	// adaptive trial allocation (TrialsMin/TrialsMax) and an optional
	// Progress callback.
	Spec = mc.Spec
	// Point is one aggregated (configuration, frequency) data point.
	Point = mc.Point
	// Progress is a grid-engine progress snapshot delivered to
	// Spec.Progress after every completed trial.
	Progress = mc.Progress
	// Profile overrides DTA operand generators per ALU unit.
	Profile = dta.Profile
	// Grid evaluates a Spec over the cross product of Axes on the shared
	// worker pool, with optional cell checkpointing to an ArtifactStore.
	Grid = mc.Grid
	// Axes lists experiment grid dimensions (benchmarks, model kinds,
	// voltages, sigmas, operand profiles, frequencies); empty axes
	// collapse onto the base Spec.
	Axes = mc.Axes
	// CellResult is one evaluated grid cell with its coordinate.
	CellResult = mc.CellResult
	// ArtifactStore is a persistent on-disk cache of characterizations,
	// golden traces and completed grid cells.
	ArtifactStore = artifact.Store
	// Report is a machine-readable result document (JSON/CSV).
	Report = report.Document
	// ReportMeta describes the run that produced a Report.
	ReportMeta = report.Meta
	// ReportSeries is one labelled point series of a Report.
	ReportSeries = report.Series
	// MitigationScheme names one error-mitigation model (none, razor
	// detect-and-replay, coded datapath).
	MitigationScheme = mitigate.Scheme
	// MitigationOptions configures the mitigation models (power model,
	// razor coverage and replay window, coded detection and energy
	// overhead).
	MitigationOptions = mitigate.Options
	// MitigationResult is one evaluated (cell, scheme) outcome:
	// effective quality and per-trial energy under the scheme.
	MitigationResult = mitigate.Result
	// ParetoReport is the energy-vs-quality trade-off document rendered
	// from mitigation results.
	ParetoReport = report.ParetoDoc
	// ParetoSeries is one (benchmark, model, Vdd, sigma) group of a
	// ParetoReport with its flagged Pareto front.
	ParetoSeries = report.ParetoSeries
)

// Fault semantics and sampling modes for ModelSpec.
const (
	FlipBit      = fi.FlipBit
	StaleCapture = fi.StaleCapture
	Independent  = fi.Independent
	Joint        = fi.Joint
)

// Trial execution paths for Spec.Mode: first-fault sampling where
// available (the default), the exact golden-trace replay scan, or full
// per-trial ISS execution.
const (
	ModeAuto       = mc.ModeAuto
	ModeScan       = mc.ModeScan
	ModeFull       = mc.ModeFull
	ModeFirstFault = mc.ModeFirstFault
)

// DefaultConfig returns the paper's case-study parameters (28 nm core,
// 707 MHz STA limit at 0.7 V, 8 kCycle DTA characterization).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewSystem builds and calibrates a simulation stack.
func NewSystem(cfg Config) *System { return core.New(cfg) }

// Benchmarks returns the paper's application kernels (Table 1).
func Benchmarks() []*Benchmark { return bench.All() }

// BenchmarkByName resolves any application or micro kernel by name.
func BenchmarkByName(name string) (*Benchmark, error) { return bench.ByName(name) }

// Run evaluates one Monte-Carlo data point at the given frequency (MHz).
// Benchmarks with fixed inputs run, by default, on the first-fault
// sampling fast path: the model's per-query injection probability is
// marginalized over the noise distribution once per (golden trace,
// model), each trial draws its first-fault cycle with a single uniform
// draw and a binary search, and only faulting trials fork into full
// cycle-accurate simulation. Results are deterministic per Spec.Seed
// and statistically equivalent to full execution; Spec.Mode selects the
// exact paths (ModeScan, ModeFull) instead.
func Run(spec Spec, fMHz float64) (Point, error) { return mc.Run(spec, fMHz) }

// RunScan evaluates one data point on the golden-trace replay scan —
// the exact fast path, bit-identical to RunFull for a fixed seed and
// the statistical reference for first-fault sampling.
func RunScan(spec Spec, fMHz float64) (Point, error) { return mc.RunScan(spec, fMHz) }

// RunFull evaluates one data point forcing full ISS execution for every
// trial — the reference path of both fast paths (set Spec.Mode =
// ModeFull to force it inside sweeps).
func RunFull(spec Spec, fMHz float64) (Point, error) { return mc.RunFull(spec, fMHz) }

// Sweep evaluates a configuration over a frequency list — the
// single-axis case of the grid engine. All (frequency, trial) work
// items of the sweep share one worker pool, one cached model per
// operating point, and one cached golden trace, and results are
// bit-identical to evaluating each frequency on its own for a fixed
// Spec.Seed. For multi-axis experiments construct a Grid directly.
func Sweep(spec Spec, freqs []float64) ([]Point, error) { return mc.Sweep(spec, freqs) }

// OpenArtifactStore opens (creating if necessary) a persistent artifact
// cache directory; attach it with System.AttachStore and/or Grid.Store.
// A warm store lets repeated runs skip DTA characterization, golden
// trace recording, and (for resumed grids) completed cells entirely.
func OpenArtifactStore(dir string) (*ArtifactStore, error) { return artifact.Open(dir) }

// SeriesFromCells groups grid cells into labelled report series
// (consecutive cells differing only in frequency fold into one series).
func SeriesFromCells(cells []CellResult) []ReportSeries { return report.FromCells(cells) }

// WriteReport encodes a result document as "json" or "csv".
func WriteReport(w io.Writer, format string, d *Report) error { return report.Write(w, format, d) }

// PoFF locates the point of first failure in a sweep.
func PoFF(points []Point) (float64, bool) { return mc.PoFF(points) }

// EvaluateMitigation scores every grid cell under every mitigation
// scheme (baseline, razor detect-and-replay, coded datapath): expected
// fault pressure from the fi hazard tables where available, effective
// quality after detect-and-correct, and per-trial energy including the
// scheme's overhead. sys may be nil to skip the hazard-exact path.
func EvaluateMitigation(sys *System, inputSeed int64, cells []CellResult, opt MitigationOptions) []MitigationResult {
	return mitigate.Evaluate(sys, inputSeed, cells, opt)
}

// ParetoFromResults folds mitigation results into the energy-vs-quality
// Pareto document, flagging each group's non-dominated operating
// points.
func ParetoFromResults(meta ReportMeta, rs []MitigationResult) *ParetoReport {
	return report.Pareto(meta, rs)
}

// WriteParetoReport encodes a Pareto document as "json" or "csv".
func WriteParetoReport(w io.Writer, format string, d *ParetoReport) error {
	return report.WritePareto(w, format, d)
}

// The batch-simulation service layer (the fisimd daemon as a library):
// a JobManager runs grid jobs asynchronously with content-fingerprint
// dedup on one shared System, and ServerHandler exposes it over the
// HTTP/JSON API documented in docs/API.md.
type (
	// ServerOptions configures a JobManager (system, artifact store,
	// queue and lane bounds, tenant admission limits, job parallelism,
	// retention).
	ServerOptions = server.Options
	// JobManager owns the job table, dedup index and bounded queue.
	JobManager = server.Manager
	// JobSpec is the wire format of one batch-simulation request.
	JobSpec = server.JobSpec
	// JobStatus is a job's public status snapshot.
	JobStatus = server.Status
	// JobState is a job lifecycle state (queued/running/done/failed/
	// canceled).
	JobState = server.State
	// JobProgress is one streamed job progress snapshot.
	JobProgress = server.Progress
	// JobBackend executes canonical job specs for a JobManager; the
	// default runs grids on the in-process worker pool, and tests swap
	// in fakes (see ChaosBackend).
	JobBackend = server.Backend
	// ChaosBackend wraps a JobBackend with injected delays and mid-grid
	// faults for resilience testing.
	ChaosBackend = server.ChaosBackend
	// TenantConfig is one client's admission limits (rate, burst,
	// active-job quota).
	TenantConfig = server.TenantConfig
	// TenantsConfig is the per-client admission table with defaults.
	TenantsConfig = server.TenantsConfig
	// LaneConfig bounds and weights one priority lane.
	LaneConfig = server.LaneConfig
)

// NewJobManager starts a job manager and its runner goroutines; drain
// it with JobManager.Shutdown.
func NewJobManager(o ServerOptions) *JobManager { return server.NewManager(o) }

// ServerHandler exposes a JobManager over HTTP (see docs/API.md for the
// API: submit/status/result/cancel, SSE progress, stats).
func ServerHandler(m *JobManager) http.Handler { return server.Handler(m) }

// ExperimentOptions configures the table/figure runners.
type ExperimentOptions = experiments.Options

// ReproduceAll regenerates every table and figure at the given scale
// (1 = paper-fidelity trial counts), writing text tables to w.
func ReproduceAll(sys *System, w io.Writer, scale float64, seed int64) error {
	o := ExperimentOptions{System: sys, Out: w, Scale: scale, Seed: seed}
	if _, err := experiments.Table1(o); err != nil {
		return err
	}
	experiments.Table2(o)
	if _, err := experiments.Fig1(o); err != nil {
		return err
	}
	if _, err := experiments.Fig2(o); err != nil {
		return err
	}
	if _, err := experiments.Fig4(o); err != nil {
		return err
	}
	if _, err := experiments.Fig5(o); err != nil {
		return err
	}
	if _, err := experiments.Fig6(o); err != nil {
		return err
	}
	if _, err := experiments.Fig7(o); err != nil {
		return err
	}
	return nil
}
