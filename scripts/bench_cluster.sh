#!/usr/bin/env bash
# Tracks the distributed-execution speedup: runs the same cold
# multi-cell grid through a fisimd coordinator backed by 4 local worker
# processes and through one backed by a single worker, asserts the two
# result CSVs are byte-identical, and writes wall times, the speedup
# ratio, and the coordinator's cluster counters as BENCH_cluster.json
# at the repo root. CI asserts speedup >= 2.5x from a fresh run.
#
# Per-node capacity is emulated: every worker runs with -cell-delay, a
# fixed sleep per computed cell, so the benchmark measures the cluster
# machinery — lease distribution, pull/steal scheduling, tail draining,
# streamed merging — rather than raw CPU parallelism, and produces a
# stable ratio on any machine including single-core CI runners (where 4
# CPU-bound local processes could never beat 1). The delay-free compute
# still runs in full on the cold path (characterization, golden
# recording, every trial), so the coordinator's overhead is measured
# against real work, with the service time pinned per node.
#
# Each phase gets a fresh worker set with no cache directories and a
# fresh coordinator, so both phases are fully cold.
#
#   ./scripts/bench_cluster.sh             # defaults below
#   CELL_DELAY=1s TRIALS=8 ./scripts/bench_cluster.sh
set -euo pipefail
cd "$(dirname "$0")/.."

delay="${CELL_DELAY:-2s}"
trials="${TRIALS:-16}"
dta="${DTA:-1024}"
seed="${SEED:-77}"
lease_cells="${LEASE_CELLS:-2}"

work="$(mktemp -d)"
PIDS=()
cleanup() {
  for p in "${PIDS[@]:-}"; do kill -TERM "$p" 2>/dev/null || true; done
  for p in "${PIDS[@]:-}"; do wait "$p" 2>/dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/fisimd" ./cmd/fisimd
go build -o "$work/fisimctl" ./cmd/fisimctl

wait_healthz() { # url pid log
  for _ in $(seq 1 150); do
    curl -sf "$1/v1/healthz" >/dev/null && return 0
    kill -0 "$2" 2>/dev/null || { cat "$3"; echo "process died" >&2; exit 1; }
    sleep 0.2
  done
  echo "timeout waiting for $1" >&2; cat "$3"; exit 1
}

stop_all() {
  for p in "${PIDS[@]:-}"; do kill -TERM "$p" 2>/dev/null || true; done
  for p in "${PIDS[@]:-}"; do wait "$p" 2>/dev/null || true; done
  PIDS=()
}

# run_phase <workers> <tag>: cold worker set + coordinator, one timed
# cold submit. Leaves the CSV in $work/result-<tag>.csv, the cluster
# stats in $work/stats-<tag>.json, the wall seconds on stdout.
run_phase() {
  local n="$1" tag="$2" urls=() port pid
  for i in $(seq 1 "$n"); do
    port=$((19110 + i))
    "$work/fisimd" -addr "127.0.0.1:$port" -worker -dta "$dta" \
      -cell-delay "$delay" > "$work/worker$i-$tag.log" 2>&1 &
    pid=$!; PIDS+=("$pid")
    urls+=("http://127.0.0.1:$port")
  done
  for i in $(seq 1 "$n"); do
    wait_healthz "${urls[$((i - 1))]}" "${PIDS[$((${#PIDS[@]} - n + i - 1))]}" "$work/worker$i-$tag.log"
  done
  local wlist; wlist="$(IFS=,; echo "${urls[*]}")"
  "$work/fisimd" -addr 127.0.0.1:19100 -dta "$dta" -workers "$wlist" \
    -lease-cells "$lease_cells" > "$work/coord-$tag.log" 2>&1 &
  pid=$!; PIDS+=("$pid")
  wait_healthz "http://127.0.0.1:19100" "$pid" "$work/coord-$tag.log"

  local t0 t1
  t0=$(date +%s.%N)
  "$work/fisimctl" -addr http://127.0.0.1:19100 submit \
    -bench median -model C -sigma 0,0.010 -lo 690 -hi 745 -step 5 \
    -trials "$trials" -seed "$seed" -wait -format csv \
    -o "$work/result-$tag.csv" >/dev/null 2>&1
  t1=$(date +%s.%N)
  curl -sf "http://127.0.0.1:19100/v1/stats" | jq .cluster > "$work/stats-$tag.json"
  stop_all
  echo "$t0 $t1" | awk '{printf "%.2f", $2 - $1}'
}

# 24 cells (2 sigmas x 12 freqs): at 2 cells per lease the 4-worker
# phase spreads 12 leases across nodes while the 1-worker phase
# serializes the same work behind one node's emulated capacity.
echo "phase: 4 workers (cold)" >&2
wall4="$(run_phase 4 4w)"
echo "phase: 1 worker (cold)" >&2
wall1="$(run_phase 1 1w)"

if ! cmp -s "$work/result-4w.csv" "$work/result-1w.csv"; then
  echo "FAIL: 4-worker and 1-worker CSVs differ" >&2
  diff "$work/result-4w.csv" "$work/result-1w.csv" >&2 || true
  exit 1
fi
echo "result CSVs byte-identical across cluster shapes" >&2

jq -n \
  --argjson wall_1w "$wall1" --argjson wall_4w "$wall4" \
  --arg delay "$delay" --argjson trials "$trials" --argjson dta "$dta" \
  --argjson lease_cells "$lease_cells" \
  --slurpfile s4 "$work/stats-4w.json" --slurpfile s1 "$work/stats-1w.json" \
  '{
    grid: {benches: ["median"], models: ["C"], sigmas: [0, 0.010], freqs: "690..745 step 5", cells: 24, trials: $trials, dta_cycles: $dta},
    cell_delay: $delay,
    lease_cells: $lease_cells,
    note: "per-node capacity emulated via -cell-delay (fixed sleep per computed cell), so the ratio measures lease distribution and tail stealing, not CPU parallelism; both phases fully cold",
    wall_sec_1_worker: $wall_1w,
    wall_sec_4_workers: $wall_4w,
    speedup_4w_over_1w: (($wall_1w / $wall_4w) * 100 | round / 100),
    cluster_4w: $s4[0],
    cluster_1w: $s1[0]
  }' > BENCH_cluster.json

cat BENCH_cluster.json
speedup=$(jq -r .speedup_4w_over_1w BENCH_cluster.json)
awk -v s="$speedup" 'BEGIN { exit (s >= 2.5 ? 0 : 1) }' || {
  echo "FAIL: speedup ${speedup}x below the 2.5x acceptance bound" >&2
  exit 1
}
echo "wrote BENCH_cluster.json (speedup ${speedup}x)"
