package progress

import (
	"sync"
	"testing"
)

func TestBroadcasterCoalesces(t *testing.T) {
	b := NewBroadcaster[int]()
	ch, cancel := b.Subscribe()
	defer cancel()

	// Without a consumer, later values replace earlier ones.
	b.Publish(1)
	b.Publish(2)
	b.Publish(3)
	if got := <-ch; got != 3 {
		t.Fatalf("coalesced value = %d, want 3", got)
	}

	// A fresh subscriber is seeded with the latest value.
	ch2, cancel2 := b.Subscribe()
	defer cancel2()
	if got := <-ch2; got != 3 {
		t.Fatalf("seeded value = %d, want 3", got)
	}
}

func TestBroadcasterCloseEndsStreams(t *testing.T) {
	b := NewBroadcaster[string]()
	ch, _ := b.Subscribe()
	b.Publish("terminal")
	b.Close()
	b.Publish("after close") // must be dropped

	if got, ok := <-ch; !ok || got != "terminal" {
		t.Fatalf("pre-close value = %q, %v; want terminal, true", got, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("channel still open after Close")
	}
	if last, ok := b.Last(); !ok || last != "terminal" {
		t.Fatalf("Last() = %q, %v after Close", last, ok)
	}

	// Subscribing to a closed broadcaster still delivers the terminal
	// value, then closes — a late observer never misses the final state.
	ch2, cancel2 := b.Subscribe()
	cancel2()
	if got, ok := <-ch2; !ok || got != "terminal" {
		t.Fatalf("post-close subscription = %q, %v; want terminal, true", got, ok)
	}
	if _, ok := <-ch2; ok {
		t.Fatal("post-close subscription not closed after the terminal value")
	}

	// A never-seeded closed broadcaster yields a bare closed channel.
	b2 := NewBroadcaster[string]()
	b2.Close()
	ch3, cancel3 := b2.Subscribe()
	cancel3()
	if _, ok := <-ch3; ok {
		t.Fatal("unseeded post-close subscription delivered a value")
	}
}

// TestBroadcasterCloseWith pins the atomic terminal publish: every live
// subscriber sees the final value (replacing any stale pending one)
// before its channel closes, and late subscribers are seeded with it.
func TestBroadcasterCloseWith(t *testing.T) {
	b := NewBroadcaster[string]()
	ch, cancel := b.Subscribe()
	defer cancel()
	b.Publish("stale") // never consumed: the terminal value must replace it

	b.CloseWith("final")
	if got, ok := <-ch; !ok || got != "final" {
		t.Fatalf("subscriber saw %q, %v; want final, true", got, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("channel still open after CloseWith")
	}
	if last, ok := b.Last(); !ok || last != "final" {
		t.Fatalf("Last() = %q, %v after CloseWith", last, ok)
	}

	// Late subscribers get exactly the terminal value, then close.
	ch2, cancel2 := b.Subscribe()
	cancel2()
	if got, ok := <-ch2; !ok || got != "final" {
		t.Fatalf("late subscription = %q, %v; want final, true", got, ok)
	}
	if _, ok := <-ch2; ok {
		t.Fatal("late subscription not closed after the terminal value")
	}

	// Publishing after CloseWith is dropped, like after Close.
	b.Publish("after")
	if last, _ := b.Last(); last != "final" {
		t.Fatalf("Last() = %q after post-close publish, want final", last)
	}
}

// TestBroadcasterConcurrent drives publishers and subscribers in
// parallel; the race detector is the assertion.
func TestBroadcasterConcurrent(t *testing.T) {
	b := NewBroadcaster[int]()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Publish(base + i)
			}
		}(w * 1000)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, cancel := b.Subscribe()
			defer cancel()
			for i := 0; i < 50; i++ {
				select {
				case <-ch:
				default:
				}
			}
		}()
	}
	wg.Wait()
	b.Close()
}
