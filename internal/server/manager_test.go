package server

import (
	"context"
	"testing"
	"time"
)

// TestObserveLockedZeroSeed is the regression test for the EWMA seeding
// sentinel: a first observation with zero per-cell seconds (an instant
// fake-backend job, or a sub-resolution real one) is a legitimate data
// point, not "no history". The old code used ewmaCellSec == 0 as the
// unseeded marker, so the next slow job silently re-seeded the average
// to its full value instead of blending in at alpha.
func TestObserveLockedZeroSeed(t *testing.T) {
	m := NewManager(Options{System: system(), Backend: &fakeBackend{}, Parallel: 1})
	defer m.Shutdown(context.Background())

	m.mu.Lock()
	defer m.mu.Unlock()
	m.observeLocked(0, 10) // instant job: perCell = 0, a real observation
	if !m.ewmaSeeded {
		t.Fatal("first observation did not seed the EWMAs")
	}
	if m.ewmaCellSec != 0 || m.ewmaJobCells != 10 {
		t.Fatalf("seed observation: cellSec=%v jobCells=%v, want 0, 10", m.ewmaCellSec, m.ewmaJobCells)
	}

	m.observeLocked(100*time.Second, 1)
	// alpha = 0.3: blend, don't re-seed to (100, 1).
	if got, want := m.ewmaCellSec, 30.0; got != want {
		t.Errorf("ewmaCellSec after slow job = %v, want %v (alpha blend, not a re-seed)", got, want)
	}
	// Same float ops as observeLocked, so the comparison is exact.
	want := 10.0
	want += 0.3 * (1 - want)
	if got := m.ewmaJobCells; got != want {
		t.Errorf("ewmaJobCells after slow job = %v, want %v", got, want)
	}
}
