// Package timing models the operating-condition dependence of circuit
// delay: the supply-voltage/delay relationship (alpha-power law, fitted
// from discrete characterization points like the paper's 0.6-1.0 V
// library sweep), the cycle-by-cycle supply-voltage noise (clipped
// Gaussian), and the empirical timing-error CDFs extracted by dynamic
// timing analysis.
//
// timing is a near-leaf of the dependency graph (stdlib plus stats):
// gates and circuit scale their delays through it, dta records into
// its CDFs, and fi's models evaluate them per cycle.
package timing

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/stats"
)

// VRef is the reference supply voltage of the case study (volts); all
// delay factors are relative to this operating point, where the paper's
// core closes timing at 707 MHz.
const VRef = 0.7

// VddDelay is an alpha-power-law delay model: the gate delay at supply V
// is proportional to (V - Vt)^-Alpha. The defaults (Vt = 0.30 V, Alpha =
// 1.35) reproduce the paper's Fig. 1 anchors: with noise clipped at 2
// sigma, the first fault injection of model B+ moves from the 707 MHz STA
// limit down to 661 MHz for sigma = 10 mV and 588 MHz for sigma = 25 mV
// (both within 0.5%).
type VddDelay struct {
	Vt    float64
	Alpha float64
}

// DefaultVddDelay returns the calibrated 28 nm model.
func DefaultVddDelay() VddDelay { return VddDelay{Vt: 0.30, Alpha: 1.35} }

// Factor returns the delay multiplier at supply v relative to VRef.
// Lower voltage means slower gates, so Factor(v) > 1 for v < VRef.
func (m VddDelay) Factor(v float64) float64 {
	if v <= m.Vt {
		return math.Inf(1)
	}
	return math.Pow((VRef-m.Vt)/(v-m.Vt), m.Alpha)
}

// FactorRel returns the delay multiplier of v+dv relative to v, the
// modulation applied per cycle for supply noise dv.
func (m VddDelay) FactorRel(v, dv float64) float64 {
	return m.Factor(v+dv) / m.Factor(v)
}

// EquivalentVoltage returns the supply below VRef at which the circuit is
// slower by the given factor; it translates frequency-over-scaling
// headroom into a voltage reduction for the paper's Fig. 7 power
// trade-off (a headroom gain g at VRef is worth running at
// EquivalentVoltage(g) at the nominal clock).
func (m VddDelay) EquivalentVoltage(factor float64) float64 {
	if factor <= 0 {
		return math.NaN()
	}
	return m.Vt + (VRef-m.Vt)*math.Pow(factor, -1/m.Alpha)
}

// Point is one (voltage, delay) characterization sample.
type Point struct {
	V     float64
	Delay float64
}

// FitAlphaPower fits an alpha-power law to characterization points by a
// grid-plus-refinement search over Vt minimizing the log-space residual
// of the implied linear fit. It reproduces the paper's flow of
// interpolating a Vdd-delay curve from a 5-voltage library sweep.
func FitAlphaPower(points []Point) (VddDelay, error) {
	if len(points) < 3 {
		return VddDelay{}, fmt.Errorf("timing: need at least 3 points, got %d", len(points))
	}
	minV := math.Inf(1)
	for _, p := range points {
		if p.V < minV {
			minV = p.V
		}
		if p.Delay <= 0 {
			return VddDelay{}, fmt.Errorf("timing: non-positive delay %v", p.Delay)
		}
	}
	best := VddDelay{}
	bestErr := math.Inf(1)
	eval := func(vt float64) (float64, float64) {
		// Linear regression of log(delay) on log(V - Vt); the slope is
		// -alpha.
		var sx, sy, sxx, sxy float64
		n := float64(len(points))
		for _, p := range points {
			x := math.Log(p.V - vt)
			y := math.Log(p.Delay)
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
		}
		slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
		icept := (sy - slope*sx) / n
		var resid float64
		for _, p := range points {
			pred := icept + slope*math.Log(p.V-vt)
			d := pred - math.Log(p.Delay)
			resid += d * d
		}
		return -slope, resid
	}
	lo, hi := 0.0, minV-1e-3
	for pass := 0; pass < 4; pass++ {
		step := (hi - lo) / 40
		plo, phi := lo, hi
		for vt := plo; vt <= phi; vt += step {
			alpha, resid := eval(vt)
			if resid < bestErr && alpha > 0 {
				bestErr = resid
				best = VddDelay{Vt: vt, Alpha: alpha}
			}
		}
		lo = math.Max(0, best.Vt-step)
		hi = math.Min(minV-1e-3, best.Vt+step)
	}
	if math.IsInf(bestErr, 1) {
		return VddDelay{}, fmt.Errorf("timing: fit failed")
	}
	return best, nil
}

// Noise is the supply-voltage noise model: zero-mean Gaussian with
// standard deviation Sigma (volts), saturated at Clip sigma as in the
// paper (2 sigma) to exclude physically unrealistic spikes. A fresh
// independent sample is drawn every clock cycle.
type Noise struct {
	Sigma float64
	Clip  float64
}

// NewNoise returns the paper's noise model for a sigma given in volts.
func NewNoise(sigma float64) Noise { return Noise{Sigma: sigma, Clip: 2} }

// Sample draws one noise value (volts).
func (n Noise) Sample(rng *rand.Rand) float64 {
	return stats.ClippedNormal(rng, 0, n.Sigma, n.Clip)
}

// WorstDroop returns the largest negative excursion (volts, positive
// magnitude), i.e. Clip*Sigma; the first-FI frequency of model B+ is set
// by this saturation atom.
func (n Noise) WorstDroop() float64 { return n.Clip * n.Sigma }

// CDF is the empirical distribution of dynamic arrival times at one
// endpoint for one instruction, extracted by DTA. Violation probability
// at frequency f is the fraction of characterization cycles whose arrival
// plus setup exceeds the clock period, as defined in Sec. 3.4 of the
// paper (P = v_f / n_I).
type CDF struct {
	sorted  []float64 // arrival times in ps, ascending (0 = no toggle)
	setupPs float64
}

// NewCDF builds a CDF from raw arrival samples (ps). The slice is copied.
func NewCDF(arrivals []float64, setupPs float64) *CDF {
	s := make([]float64, len(arrivals))
	copy(s, arrivals)
	sort.Float64s(s)
	return &CDF{sorted: s, setupPs: setupPs}
}

// N returns the number of characterization cycles backing the CDF.
func (c *CDF) N() int { return len(c.sorted) }

// MaxPs returns the largest observed arrival (ps).
func (c *CDF) MaxPs() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// ViolationProb returns P(arrival + setup > period) for a period in ps.
func (c *CDF) ViolationProb(periodPs float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Count samples with arrival > period - setup.
	x := periodPs - c.setupPs
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(len(c.sorted)-i) / float64(len(c.sorted))
}

// ViolationProbScaled evaluates the CDF with all circuit delays (arrival
// and setup) stretched by the given factor, the per-cycle "CDF
// scaling-factor" of the paper's model C that folds in supply noise.
func (c *CDF) ViolationProbScaled(periodPs, factor float64) float64 {
	return c.ViolationProb(periodPs / factor)
}

// OnsetMHz returns the highest frequency at which the violation
// probability is still zero (the extreme point of the characterized
// distribution). Above it, this endpoint begins to see faults.
func (c *CDF) OnsetMHz() float64 {
	m := c.MaxPs()
	if m <= 0 {
		return math.Inf(1)
	}
	return 1e6 / (m + c.setupPs)
}
