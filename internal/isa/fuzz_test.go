package isa

import (
	"math/rand"
	"testing"
)

// FuzzDecodeEncode checks the decoder/encoder pair over arbitrary
// instruction words: every word that decodes to a valid instruction must
// re-encode without error, the re-encoded word must decode to the same
// instruction, and re-encoding is a fixpoint (the canonical encoding of
// a decoded instruction is stable even when the original word carried
// junk in don't-care bits).
func FuzzDecodeEncode(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	for _, op := range AllOps() {
		w, err := Encode(sampleInstr(op, rng))
		if err != nil {
			f.Fatalf("%v: seeding corpus: %v", op, err)
		}
		f.Add(w)
		// Same encodings with junk in typical don't-care positions.
		f.Add(w | 1<<10)
	}
	f.Add(uint32(0))
	f.Add(uint32(0xFFFFFFFF))
	f.Fuzz(func(t *testing.T, w uint32) {
		in := Decode(w)
		if in.Op == OpInvalid {
			return
		}
		w2, err := Encode(in)
		if err != nil {
			t.Fatalf("decoded %08x to %v but cannot re-encode: %v", w, in, err)
		}
		in2 := Decode(w2)
		if in2 != in {
			t.Fatalf("%08x decodes to %v, canonical word %08x decodes to %v", w, in, w2, in2)
		}
		w3, err := Encode(in2)
		if err != nil || w3 != w2 {
			t.Fatalf("canonical encoding not a fixpoint: %08x -> %08x (%v)", w2, w3, err)
		}
	})
}

// FuzzDecodeTotal checks that Decode is total: any word either decodes
// to a valid, re-encodable instruction or to OpInvalid — it never
// produces an op outside the enum or a shift amount the encoder rejects.
func FuzzDecodeTotal(f *testing.F) {
	for pc := uint32(0); pc < 64; pc++ {
		f.Add(pc<<26 | 0x00821042) // each primary opcode with busy fields
	}
	f.Fuzz(func(t *testing.T, w uint32) {
		in := Decode(w)
		if int(in.Op) >= NumOps {
			t.Fatalf("%08x decoded to op %d outside the enum", w, in.Op)
		}
		if in.Op == OpInvalid {
			return
		}
		if _, err := Encode(in); err != nil {
			t.Fatalf("%08x decoded to unencodable %v: %v", w, in, err)
		}
	})
}
