#!/usr/bin/env bash
# Tracks the trial-path perf trajectory: runs the three trial-path
# benchmarks on the same sub-PoFF model-C point — first-fault sampling
# (the default), the golden-trace replay scan, and full ISS execution —
# and writes the results plus the headline speedup ratios as
# BENCH_scan.json at the repo root. The first-fault/scan ratio is the
# acceptance metric of the hazard-table engine (>= 10x).
#
#   ./scripts/bench_scan.sh            # default -benchtime 3x
#   BENCHTIME=10x ./scripts/bench_scan.sh
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-3x}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
  -bench 'BenchmarkPointFirstFault$|BenchmarkPointReplay$|BenchmarkPointFull$' \
  -benchtime "$benchtime" -count 1 . | tee "$raw"

awk -v benchtime="$benchtime" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    ns[name] = $3
    lines[n++] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", name, $2, $3)
  }
  END {
    print "{"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    print "  \"results\": ["
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n - 1 ? "," : "")
    print "  ],"
    ff = ns["BenchmarkPointFirstFault"]
    scan = ns["BenchmarkPointReplay"]
    full = ns["BenchmarkPointFull"]
    printf "  \"scan_over_firstfault\": %.2f,\n", (ff > 0 ? scan / ff : 0)
    printf "  \"full_over_firstfault\": %.2f\n", (ff > 0 ? full / ff : 0)
    print "}"
  }
' "$raw" > BENCH_scan.json

echo "wrote BENCH_scan.json"
