package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dta"
	"repro/internal/mc"
)

var (
	once sync.Once
	sys  *core.System
)

// The experiment tests run every figure's code path at a drastically
// reduced scale; full-fidelity numbers come from cmd/paperrepro.
func options(buf *bytes.Buffer) Options {
	once.Do(func() {
		cfg := core.DefaultConfig()
		cfg.DTA = dta.Config{Cycles: 1024, Seed: 5}
		sys = core.New(cfg)
	})
	return Options{System: sys, Out: buf, Scale: 0.06, Seed: 1}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	pts, err := Table1(options(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("table1 rows = %d", len(pts))
	}
	out := buf.String()
	for _, name := range []string{"median", "mat_mult_8bit", "kmeans", "dijkstra"} {
		if !strings.Contains(out, name) {
			t.Errorf("table1 missing %s", name)
		}
	}
}

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	Table2(options(&buf))
	for _, s := range []string{"fixed probability", "STA", "DTA", "instr-aware"} {
		if !strings.Contains(buf.String(), s) {
			t.Errorf("table2 missing %q", s)
		}
	}
}

func TestFig1HardThresholds(t *testing.T) {
	var buf bytes.Buffer
	series, err := Fig1(options(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("fig1 series = %d", len(series))
	}
	// The B+ cliffs sit near the paper's 661 and 588 MHz anchors.
	out := buf.String()
	if !strings.Contains(out, "first FI at 707") {
		t.Errorf("model B first FI not at the STA limit:\n%s", out)
	}
	found := false
	for _, anchor := range []string{"659", "660", "661", "662", "663"} {
		if strings.Contains(out, "first FI at "+anchor) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("sigma=10mV cliff not near 661 MHz:\n%s", out)
	}
	// Above each cliff the static models collapse: the last point of
	// each series has (nearly) no correct runs.
	for _, s := range series {
		last := s.Points[len(s.Points)-1]
		if last.CorrectPct > 25 {
			t.Errorf("%s: correct %v%% at %v MHz, expected a hard cliff",
				s.Label, last.CorrectPct, last.FreqMHz)
		}
	}
}

func TestFig2Shapes(t *testing.T) {
	var buf bytes.Buffer
	curves, err := Fig2(options(&buf))
	if err != nil {
		t.Fatal(err)
	}
	mono := func(name string) {
		prev := -1.0
		for _, p := range curves[name] {
			if p < prev-1e-12 {
				t.Errorf("%s not monotone", name)
				return
			}
			prev = p
		}
	}
	for name := range curves {
		if name != "freqMHz" {
			mono(name)
		}
	}
	// Higher voltage shifts the CDF right: at every frequency the 0.8 V
	// probability is at most the 0.7 V one.
	for i := range curves["freqMHz"] {
		if curves["mul.bit24@0.8V"][i] > curves["mul.bit24@0.7V"][i]+1e-12 {
			t.Errorf("0.8V CDF above 0.7V CDF at %v MHz", curves["freqMHz"][i])
		}
	}
}

func TestFig4Ordering(t *testing.T) {
	var buf bytes.Buffer
	series, err := Fig4(options(&buf))
	if err != nil {
		t.Fatal(err)
	}
	// Onset of majority failure, not of the first tail fault: a single
	// sampled fault at the reduced trial count would make the ordering a
	// coin flip, while the 50% crossing tracks the hazard curve's steep
	// region and is stable across seeds.
	first := func(s Series) float64 {
		for _, p := range s.Points {
			if p.CorrectPct < 50 {
				return p.FreqMHz
			}
		}
		return 1e9
	}
	mul, add32, add16 := first(series[0]), first(series[1]), first(series[2])
	if !(mul <= add32 && add32 <= add16) {
		t.Errorf("first-failure ordering wrong: mul %v, add32 %v, add16 %v (paper: 685 < 746 < 877)",
			mul, add32, add16)
	}
}

func TestFig7Frontier(t *testing.T) {
	var buf bytes.Buffer
	o := options(&buf)
	o.Scale = 0.04
	curves, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	s0 := curves["sigma=0mV"]
	if len(s0) < 3 {
		t.Fatalf("fig7 sigma=0 has %d points", len(s0))
	}
	// The first point is nominal voltage: full power, no error.
	if s0[0].Vdd != 0.700 || s0[0].NormalizedPower < 0.999 {
		t.Errorf("fig7 does not start at the nominal point: %+v", s0[0])
	}
	if s0[0].AvgRelErrPct != 0 {
		t.Errorf("error at nominal voltage: %v", s0[0].AvgRelErrPct)
	}
	// Power decreases along the voltage-scaling direction.
	for i := 1; i < len(s0); i++ {
		if s0[i].NormalizedPower >= s0[i-1].NormalizedPower {
			t.Errorf("power not decreasing at %v V", s0[i].Vdd)
		}
	}
}

func TestPoFFHelper(t *testing.T) {
	pts := []mc.Point{
		{FreqMHz: 700, CorrectPct: 100},
		{FreqMHz: 720, CorrectPct: 100},
		{FreqMHz: 740, CorrectPct: 95},
	}
	f, ok := mc.PoFF(pts)
	if !ok || f != 740 {
		t.Errorf("PoFF = %v, %v", f, ok)
	}
}
