package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/cpu"
	"repro/internal/dta"
	"repro/internal/timing"
)

var (
	once sync.Once
	sys  *System
)

func system() *System {
	once.Do(func() {
		cfg := DefaultConfig()
		cfg.DTA = dta.Config{Cycles: 512, Seed: 5}
		sys = New(cfg)
	})
	return sys
}

func TestSTALimitAnchored(t *testing.T) {
	s := system()
	if got := s.STALimitMHz(0.7); math.Abs(got-707) > 0.1 {
		t.Errorf("STA limit @0.7V = %v, want 707", got)
	}
	// Higher voltage raises the limit; the 0.8 V limit lands near the
	// paper's Fig. 5(d-f) range (about 950 MHz).
	hi := s.STALimitMHz(0.8)
	if hi < 900 || hi > 1000 {
		t.Errorf("STA limit @0.8V = %v, want about 955", hi)
	}
	if s.STALimitMHz(0.6) >= 707 {
		t.Errorf("lower voltage did not lower the limit")
	}
}

func TestNonALUSafeLimit(t *testing.T) {
	s := system()
	if got := s.NonALUSafeMHz(0.7); math.Abs(got-1150) > 0.1 {
		t.Errorf("non-ALU limit @0.7V = %v, want 1150", got)
	}
	if _, err := s.Model(ModelSpec{Kind: "C", Vdd: 0.7, FreqMHz: 1200}); err == nil {
		t.Errorf("model constructed beyond the non-ALU safe limit")
	}
	if _, err := s.Model(ModelSpec{Kind: "B", Vdd: 0.7, FreqMHz: 1100}); err != nil {
		t.Errorf("model rejected within the safe limit: %v", err)
	}
}

func TestModelFactory(t *testing.T) {
	s := system()
	cases := map[string]string{
		"none": "none", "A": "A", "B": "B", "B+": "B+", "C": "C",
	}
	for kind, want := range cases {
		m, err := s.Model(ModelSpec{Kind: kind, Vdd: 0.7, FreqMHz: 800, Sigma: 0.01})
		if err != nil {
			t.Fatalf("model %q: %v", kind, err)
		}
		if m.Name() != want {
			t.Errorf("model %q named %q", kind, m.Name())
		}
	}
	if _, err := s.Model(ModelSpec{Kind: "Z", Vdd: 0.7, FreqMHz: 800}); err == nil {
		t.Errorf("unknown kind accepted")
	}
	if _, err := s.Model(ModelSpec{Kind: "C", Vdd: 0.2, FreqMHz: 800}); err == nil {
		t.Errorf("sub-threshold supply accepted")
	}
}

// TestModelCache checks that Model reuses instances per spec while
// NewModel always rebuilds, and that distinct specs get distinct
// entries.
func TestModelCache(t *testing.T) {
	s := system()
	spec := ModelSpec{Kind: "C", Vdd: 0.7, FreqMHz: 800, Sigma: 0.01}
	a, err := s.Model(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Model(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same spec produced distinct model instances")
	}
	c, err := s.Model(ModelSpec{Kind: "C", Vdd: 0.7, FreqMHz: 810, Sigma: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Errorf("different frequencies shared one cache entry")
	}
	fresh, err := s.NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == a {
		t.Errorf("NewModel returned the cached instance")
	}
	// Equal profiles must hit the same entry regardless of map identity.
	p1 := dta.Profile{0: "u16"}
	p2 := dta.Profile{0: "u16"}
	m1, err := s.Model(ModelSpec{Kind: "C", Vdd: 0.7, FreqMHz: 800, Profile: p1})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Model(ModelSpec{Kind: "C", Vdd: 0.7, FreqMHz: 800, Profile: p2})
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Errorf("equal profiles missed the cache")
	}
	if m1 == a {
		t.Errorf("profiled spec shared the unprofiled entry")
	}
}

// TestModelCacheConcurrent hammers one spec from many goroutines; the
// race detector guards the locking and every caller must observe the
// same instance.
func TestModelCacheConcurrent(t *testing.T) {
	s := system()
	spec := ModelSpec{Kind: "B+", Vdd: 0.7, FreqMHz: 790, Sigma: 0.01}
	const n = 16
	models := make([]interface{}, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := s.Model(spec)
			if err == nil {
				models[i] = m
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if models[i] != models[0] {
			t.Fatalf("goroutine %d observed a different instance", i)
		}
	}
}

// TestGoldenCache checks the golden-trace cache: repeated lookups share
// one recorded execution, distinct (benchmark, seed) keys get distinct
// entries, the recorded trace is internally consistent, and per-trial-
// input benchmarks are rejected.
func TestGoldenCache(t *testing.T) {
	s := system()
	med := bench.Median()
	a, err := s.Golden(med, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Golden(med, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same key produced distinct golden traces")
	}
	c, err := s.Golden(med, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Errorf("different input seeds shared one cache entry")
	}
	d, err := s.Golden(bench.Dijkstra(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if a == d {
		t.Errorf("different benchmarks shared one cache entry")
	}
	if a.Trace.Status != cpu.StatusExited {
		t.Errorf("golden trace recorded status %v", a.Trace.Status)
	}
	if len(a.Queries) != len(a.Trace.Events) || uint64(len(a.Queries)) != a.Trace.KernelALUCycles {
		t.Errorf("query stream has %d entries, trace %d events over %d kernel ALU cycles",
			len(a.Queries), len(a.Trace.Events), a.Trace.KernelALUCycles)
	}
	if len(a.Trace.Checkpoints) == 0 || a.Trace.Checkpoints[0].Cycles != 0 {
		t.Errorf("golden trace missing the reset checkpoint")
	}
	if _, err := s.Golden(bench.MicroAdd32(), 42); err == nil {
		t.Errorf("per-trial-input benchmark accepted by the golden cache")
	}
}

// TestGoldenCacheConcurrent hammers one key from many goroutines; the
// race detector guards the locking and every caller must observe the
// same instance.
func TestGoldenCacheConcurrent(t *testing.T) {
	s := system()
	const n = 16
	goldens := make([]*Golden, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := s.Golden(bench.KMeans(), 42)
			if err == nil {
				goldens[i] = g
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if goldens[i] == nil || goldens[i] != goldens[0] {
			t.Fatalf("goroutine %d observed a different golden instance", i)
		}
	}
}

func TestDefaultsAreThePaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Circuit.STAFreqMHz != 707 {
		t.Errorf("STA constraint %v", cfg.Circuit.STAFreqMHz)
	}
	if cfg.NonALUSafeMHz != 1150 {
		t.Errorf("non-ALU limit %v", cfg.NonALUSafeMHz)
	}
	if cfg.DTA.Cycles != 8192 {
		t.Errorf("DTA kernel %v cycles, paper uses 8k", cfg.DTA.Cycles)
	}
	if cfg.Vdd != timing.DefaultVddDelay() {
		t.Errorf("vdd model not the calibrated default")
	}
}
