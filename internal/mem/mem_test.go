package mem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWordRoundTrip(t *testing.T) {
	m := New()
	if err := m.StoreWord(0x40000, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := m.LoadWord(0x40000)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEF {
		t.Errorf("got %x", v)
	}
	// Big-endian layout.
	b, err := m.LoadByte(0x40000)
	if err != nil {
		t.Fatal(err)
	}
	if b != 0xDE {
		t.Errorf("first byte %x, want DE (big-endian)", b)
	}
}

func TestHalfAndByte(t *testing.T) {
	m := New()
	if err := m.StoreHalf(0x40002, 0x1234); err != nil {
		t.Fatal(err)
	}
	h, err := m.LoadHalf(0x40002)
	if err != nil {
		t.Fatal(err)
	}
	if h != 0x1234 {
		t.Errorf("half = %x", h)
	}
	if err := m.StoreByte(0x40005, 0xAB); err != nil {
		t.Fatal(err)
	}
	b, _ := m.LoadByte(0x40005)
	if b != 0xAB {
		t.Errorf("byte = %x", b)
	}
}

func TestAlignmentTraps(t *testing.T) {
	m := New()
	if _, err := m.LoadWord(2); err == nil {
		t.Errorf("misaligned word load must fail")
	}
	if err := m.StoreWord(3, 1); err == nil {
		t.Errorf("misaligned word store must fail")
	}
	if _, err := m.LoadHalf(1); err == nil {
		t.Errorf("misaligned half load must fail")
	}
	var ae *AccessError
	_, err := m.LoadWord(6)
	if !errors.As(err, &ae) {
		t.Fatalf("error type %T", err)
	}
	if ae.Write || ae.Size != 4 {
		t.Errorf("access error fields %+v", ae)
	}
}

func TestOutOfRange(t *testing.T) {
	m := New()
	end := m.Size()
	if _, err := m.LoadWord(end); err == nil {
		t.Errorf("load at end must fail")
	}
	if _, err := m.LoadWord(end - 4); err != nil {
		t.Errorf("last word should be accessible: %v", err)
	}
	if err := m.StoreWord(0xFFFFFFFC, 1); err == nil {
		t.Errorf("store far out of range must fail")
	}
	// Overflow robustness.
	if _, err := m.LoadWord(0xFFFFFFFE); err == nil {
		t.Errorf("wrapping access must fail")
	}
}

func TestCounters(t *testing.T) {
	m := New()
	_ = m.StoreWord(0x40000, 1)
	_, _ = m.LoadWord(0x40000)
	_, _ = m.LoadByte(0x40000)
	if m.Stores != 1 || m.Loads != 2 {
		t.Errorf("counters loads=%d stores=%d", m.Loads, m.Stores)
	}
	// Fetch and image loads don't count.
	_, _ = m.FetchWord(0x100)
	_ = m.LoadImage(0x100, []byte{1, 2, 3, 4})
	if m.Stores != 1 || m.Loads != 2 {
		t.Errorf("fetch/image affected counters")
	}
	m.Reset()
	if m.Loads != 0 || m.Stores != 0 {
		t.Errorf("reset did not clear counters")
	}
}

func TestBulkWords(t *testing.T) {
	m := New()
	in := []uint32{1, 2, 0xFFFFFFFF, 42}
	if err := m.WriteWords(0x41000, in); err != nil {
		t.Fatal(err)
	}
	out, err := m.ReadWords(0x41000, len(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("word %d = %x, want %x", i, out[i], in[i])
		}
	}
	if err := m.WriteWords(m.Size()-4, []uint32{1, 2}); err == nil {
		t.Errorf("overflowing bulk write must fail")
	}
}

// Property: a word store followed by a load returns the stored value for
// any in-range aligned address.
func TestStoreLoadProperty(t *testing.T) {
	m := New()
	f := func(addrRaw, v uint32) bool {
		addr := (addrRaw % (m.Size() - 4)) &^ 3
		if err := m.StoreWord(addr, v); err != nil {
			return false
		}
		got, err := m.LoadWord(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestResetDirtyTracking drives random writes through every mutation
// path against a naive full-clear shadow memory and checks that the
// span-narrowed Reset restores the all-zero state exactly.
func TestResetDirtyTracking(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := New()
	for round := 0; round < 50; round++ {
		nWrites := rng.Intn(20)
		for i := 0; i < nWrites; i++ {
			addr := uint32(rng.Intn(int(m.Size())))
			switch rng.Intn(5) {
			case 0:
				m.StoreWord(addr&^3, rng.Uint32())
			case 1:
				m.StoreHalf(addr&^1, uint16(rng.Uint32()))
			case 2:
				m.StoreByte(addr, uint8(rng.Uint32()))
			case 3:
				img := make([]byte, rng.Intn(64))
				for j := range img {
					img[j] = byte(rng.Uint32())
				}
				if uint64(addr)+uint64(len(img)) <= uint64(m.Size()) {
					m.LoadImage(addr, img)
				}
			case 4:
				ws := make([]uint32, rng.Intn(16))
				for j := range ws {
					ws[j] = rng.Uint32()
				}
				base := addr &^ 3
				if uint64(base)+uint64(4*len(ws)) <= uint64(m.Size()) {
					m.WriteWords(base, ws)
				}
			}
		}
		m.Reset()
		for addr := uint32(0); addr < m.Size(); addr += 4 {
			if v, _ := m.LoadWord(addr); v != 0 {
				t.Fatalf("round %d: byte at 0x%x nonzero after Reset: %#x", round, addr, v)
			}
		}
		m.Loads = 0 // the scan above counted loads
	}
}

// TestCloneFrom checks CloneFrom yields a byte-identical memory
// (counters included) regardless of what the destination held before,
// including destination dirt outside the source's dirty spans.
func TestCloneFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src, dst := New(), New()

	// Dirty dst widely, including addresses src never touches.
	dst.StoreWord(0, 0xdeadbeef)
	dst.StoreWord(IMemSize-4, 0x12345678)
	dst.StoreWord(DMemBase, 0xa5a5a5a5)
	dst.StoreWord(DMemBase+DMemSize-4, 0x5a5a5a5a)

	// Populate src through a mix of paths.
	src.LoadImage(128, []byte{1, 2, 3, 4, 5})
	src.WriteWords(DMemBase+64, []uint32{9, 8, 7})
	for i := 0; i < 100; i++ {
		src.StoreWord(DMemBase+uint32(rng.Intn(1024))*4, rng.Uint32())
	}
	src.LoadWord(DMemBase + 64)

	dst.CloneFrom(src)
	for addr := uint32(0); addr < src.Size(); addr += 4 {
		a, _ := src.FetchWord(addr)
		b, _ := dst.FetchWord(addr)
		if a != b {
			t.Fatalf("word at 0x%x differs after CloneFrom: src %#x dst %#x", addr, a, b)
		}
	}
	if dst.Loads != src.Loads || dst.Stores != src.Stores {
		t.Fatalf("counters differ: dst (%d,%d) src (%d,%d)", dst.Loads, dst.Stores, src.Loads, src.Stores)
	}

	// The clone must stay consistent across a further Reset.
	dst.Reset()
	for addr := uint32(0); addr < dst.Size(); addr += 4 {
		if v, _ := dst.FetchWord(addr); v != 0 {
			t.Fatalf("byte at 0x%x nonzero after post-clone Reset: %#x", addr, v)
		}
	}
}
