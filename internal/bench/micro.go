package bench

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/dta"
)

// MicroN is the operand-pair count of the Fig. 4 instruction kernels.
const MicroN = 256

// MicroAdd16 returns the Fig. 4 kernel for l.add with operands covering a
// 16-bit value range (16-bit results).
func MicroAdd16() *Benchmark {
	return micro("micro_add_16bit", "l.add", dta.Profile{circuit.UnitAdd: "u16"}, 16)
}

// MicroAdd32 returns the Fig. 4 kernel for l.add with 32-bit operands.
// (Operands are drawn below 2^31 so the sum does not wrap; the MSE axis
// stays interpretable exactly as in the paper.)
func MicroAdd32() *Benchmark {
	return micro("micro_add_32bit", "l.add", dta.Profile{circuit.UnitAdd: "u32"}, 31)
}

// MicroMul16 returns the Fig. 4 kernel for l.mul with operands covering a
// 16-bit value range (32-bit results).
func MicroMul16() *Benchmark {
	return micro("micro_mul_16bit", "l.mul", dta.Profile{circuit.UnitMul: "u16"}, 16)
}

func micro(name, op string, profile dta.Profile, bits int) *Benchmark {
	return &Benchmark{
		Name:           name,
		MetricName:     "mean squared error (MSE)",
		Profile:        profile,
		PerTrialInputs: true,
		OutSymbol:      "carr",
		OutWords:       MicroN,
		Metric:         MSEMetric,
		QualityName:    "bit-exactness",
		Build: func(seed int64) (string, []uint32, error) {
			return buildMicro(op, bits, seed)
		},
	}
}

func buildMicro(op string, bits int, seed int64) (string, []uint32, error) {
	r := rng(seed)
	var mask uint32 = 0xFFFFFFFF
	if bits < 32 {
		mask = 1<<uint(bits) - 1
	}
	a := make([]uint32, MicroN)
	b := make([]uint32, MicroN)
	want := make([]uint32, MicroN)
	for i := range a {
		a[i] = r.Uint32() & mask
		if bits == 16 {
			// 16-bit operands are drawn across the full 16-bit range.
			a[i] = r.Uint32() & 0xFFFF
			b[i] = r.Uint32() & 0xFFFF
		} else {
			b[i] = r.Uint32() & mask
		}
		switch op {
		case "l.add":
			want[i] = a[i] + b[i]
		case "l.mul":
			want[i] = uint32(int32(a[i]) * int32(b[i]))
		default:
			return "", nil, fmt.Errorf("bench: unsupported micro op %q", op)
		}
	}

	src := fmt.Sprintf(`
; instruction microkernel: %s over %d uniform random operand pairs
	l.movhi r1,hi(aarr)
	l.ori   r1,r1,lo(aarr)
	l.movhi r2,hi(barr)
	l.ori   r2,r2,lo(barr)
	l.movhi r3,hi(carr)
	l.ori   r3,r3,lo(carr)
	l.sys 1
	l.addi  r4,r0,0
loop:
	l.slli  r5,r4,2
	l.add   r6,r1,r5
	l.lwz   r7,0(r6)
	l.add   r6,r2,r5
	l.lwz   r8,0(r6)
	%s  r10,r7,r8
	l.add   r6,r3,r5
	l.sw    0(r6),r10
	l.addi  r4,r4,1
	l.sfltsi r4,%d
	l.bf    loop
	l.sys 2
	l.sys 0
.data
carr:
	.space %d
aarr:
`, op, MicroN, op, MicroN, 4*MicroN)
	src += wordList(a)
	src += "barr:\n"
	src += wordList(b)
	return src, want, nil
}
