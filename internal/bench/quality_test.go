package bench

import (
	"math"
	"testing"
)

// every registered benchmark, for contract checks over the whole set.
func allBenchmarks() []*Benchmark {
	return append(append(All(), Micros()...), Extras()...)
}

// TestQualityExactlyOneOnGolden is the extractor contract the mc
// engine's fault-free short-circuit depends on: for every benchmark,
// scoring the golden outputs against themselves yields exactly 1.0 —
// not approximately — so the replay shortcut (quality0) is bit-identical
// to the full-path computation on a bit-exact run.
func TestQualityExactlyOneOnGolden(t *testing.T) {
	for _, b := range allBenchmarks() {
		for _, seed := range []int64{1, 42, 1234} {
			_, want, err := b.Build(seed)
			if err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			if q := b.QualityAt(seed)(want, want); q != 1.0 {
				t.Errorf("%s seed %d: quality(want, want) = %v, want exactly 1.0", b.Name, seed, q)
			}
		}
	}
}

func TestQualityNamesRegistered(t *testing.T) {
	for _, b := range allBenchmarks() {
		if b.QualityName == "" {
			t.Errorf("%s: no QualityName", b.Name)
		}
	}
	// The application kernels carry graceful-degradation metrics;
	// checksum and the micros are bit-exact by design.
	if KMeans().Quality == nil || MatMult8().Quality == nil ||
		MatMult16().Quality == nil || Median().Quality == nil || Dijkstra().Quality == nil {
		t.Error("an application kernel lacks a quality extractor")
	}
	if Checksum().Quality != nil || MicroAdd32().Quality != nil {
		t.Error("bit-exact kernels should use the default extractor")
	}
}

func TestBitExactQuality(t *testing.T) {
	if q := BitExactQuality([]uint32{1, 2}, []uint32{1, 2}); q != 1 {
		t.Errorf("exact = %v", q)
	}
	if q := BitExactQuality([]uint32{1, 3}, []uint32{1, 2}); q != 0 {
		t.Errorf("one word off = %v", q)
	}
	if q := BitExactQuality([]uint32{1}, []uint32{1, 2}); q != 0 {
		t.Errorf("length mismatch = %v", q)
	}
}

func TestSNRQuality(t *testing.T) {
	want := []uint32{100, 200, 300}
	if q := SNRQuality(want, want); q != 1 {
		t.Errorf("exact = %v, want exactly 1", q)
	}
	// One small deviation: S/(S+N) with S = 140000, N = 1.
	got := []uint32{100, 201, 300}
	q := SNRQuality(got, want)
	if q <= 0.999 || q >= 1 {
		t.Errorf("small error quality = %v, want just below 1", q)
	}
	// Corrupting an additional word strictly lowers the score.
	worse := []uint32{50, 201, 300}
	if q2 := SNRQuality(worse, want); q2 >= q {
		t.Errorf("extra error raised quality: %v -> %v", q, q2)
	}
	// Zero signal with nonzero noise is useless output.
	if q := SNRQuality([]uint32{5}, []uint32{0}); q != 0 {
		t.Errorf("zero-signal mismatch = %v", q)
	}
	if q := SNRQuality([]uint32{0}, []uint32{0}); q != 1 {
		t.Errorf("zero-signal exact = %v", q)
	}
}

func TestSNRdB(t *testing.T) {
	want := []uint32{100, 200}
	if db := SNRdB(want, want); !math.IsInf(db, 1) {
		t.Errorf("exact SNRdB = %v, want +Inf", db)
	}
	if db := SNRdB([]uint32{100}, want); !math.IsInf(db, -1) {
		t.Errorf("length mismatch SNRdB = %v, want -Inf", db)
	}
	// S = 100^2 + 200^2 = 50000, N = 100: 10*log10(500) ~ 26.99 dB.
	got := []uint32{110, 200}
	if db := SNRdB(got, want); db < 26 || db > 28 {
		t.Errorf("SNRdB = %v, want about 27", db)
	}
}

func TestRelErrQuality(t *testing.T) {
	if q := RelErrQuality([]uint32{80}, []uint32{80}); q != 1 {
		t.Errorf("exact = %v", q)
	}
	if q := RelErrQuality([]uint32{60}, []uint32{80}); math.Abs(q-0.75) > 1e-12 {
		t.Errorf("25%% off = %v, want 0.75", q)
	}
	if q := RelErrQuality([]uint32{0xFFFF0000}, []uint32{80}); q != 0 {
		t.Errorf("garbage = %v, want 0 (capped)", q)
	}
}

func TestPathCostQuality(t *testing.T) {
	want := []uint32{0, 10, 20, 30}
	if q := PathCostQuality(want, want); q != 1 {
		t.Errorf("exact = %v", q)
	}
	// One pair 10% off among four: mean error 0.025.
	got := []uint32{0, 11, 20, 30}
	if q := PathCostQuality(got, want); math.Abs(q-0.975) > 1e-12 {
		t.Errorf("one 10%%-off pair = %v, want 0.975", q)
	}
	// A corrupted zero-golden (diagonal) pair charges full error.
	got = []uint32{5, 10, 20, 30}
	if q := PathCostQuality(got, want); math.Abs(q-0.75) > 1e-12 {
		t.Errorf("corrupted diagonal = %v, want 0.75", q)
	}
}

func TestKMeansQuality(t *testing.T) {
	seed := int64(42)
	_, want, err := KMeans().Build(seed)
	if err != nil {
		t.Fatal(err)
	}
	qual := KMeans().QualityAt(seed)
	if q := qual(want, want); q != 1 {
		t.Errorf("golden membership = %v, want exactly 1", q)
	}
	// All points in one cluster: valid but (for this input set) worse.
	mono := make([]uint32, KMeansPoints)
	if q := qual(mono, want); q >= 1 || q <= 0 {
		t.Errorf("degenerate clustering = %v, want inside (0, 1)", q)
	}
	// Garbage memberships are charged the worst-case distance.
	garbage := []uint32{0xdeadbeef, 7, 9, 3, 0xffffffff, 6, 8, 5}
	qg := qual(garbage, want)
	if qg < 0 || qg > 0.5 {
		t.Errorf("garbage membership = %v, want near 0", qg)
	}
	// Foreign lengths degrade to strict bit-exactness.
	if q := qual(want[:3], want[:3]); q != 1 {
		t.Errorf("short bit-exact membership = %v, want 1 (bit-exact fallback)", q)
	}
	if q := qual([]uint32{9, 9, 9}, want[:3]); q != 0 {
		t.Errorf("short mismatched membership = %v, want 0", q)
	}
}

func TestQualityAtDefaultsToBitExact(t *testing.T) {
	b := Checksum()
	q := b.QualityAt(1)
	if got := q([]uint32{1, 2}, []uint32{1, 2}); got != 1 {
		t.Errorf("default extractor exact = %v", got)
	}
	if got := q([]uint32{1, 9}, []uint32{1, 2}); got != 0 {
		t.Errorf("default extractor mismatch = %v", got)
	}
}

// wordsFrom packs fuzz bytes into output words.
func wordsFrom(data []byte) []uint32 {
	n := len(data) / 4
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		out[i] = uint32(data[4*i]) | uint32(data[4*i+1])<<8 |
			uint32(data[4*i+2])<<16 | uint32(data[4*i+3])<<24
	}
	return out
}

// FuzzQuality fuzzes every benchmark's extractor over arbitrary
// (got, want) word vectors: scores always land in [0, 1] (never
// NaN/Inf), bit-exact outputs score exactly 1.0, and the matmult SNR
// score is monotone under corrupting an additional correct word.
func FuzzQuality(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{1, 2, 3, 4, 5, 0, 7, 8}, uint8(0))
	f.Add([]byte{0, 0, 0, 0}, []byte{255, 255, 255, 255}, uint8(3))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}, []byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}, uint8(1))
	benches := allBenchmarks()
	f.Fuzz(func(t *testing.T, wantBytes, gotBytes []byte, flip uint8) {
		want := wordsFrom(wantBytes)
		got := wordsFrom(gotBytes)
		if len(want) == 0 {
			return
		}
		if len(got) > len(want) {
			got = got[:len(want)]
		}
		for len(got) < len(want) {
			got = append(got, 0)
		}
		for _, b := range benches {
			qual := b.QualityAt(42)
			q := qual(got, want)
			if q < 0 || q > 1 || math.IsNaN(q) || math.IsInf(q, 0) {
				t.Fatalf("%s: quality(got, want) = %v outside [0,1]", b.Name, q)
			}
			if exact := qual(want, want); exact != 1.0 {
				t.Fatalf("%s: quality(want, want) = %v, want exactly 1.0", b.Name, exact)
			}
		}
		// SNR monotonicity: corrupt one currently-correct word and the
		// score must not rise.
		base := SNRQuality(got, want)
		for i := range got {
			if got[i] == want[i] {
				worse := append([]uint32(nil), got...)
				worse[i] ^= 1 << (flip % 32)
				if q2 := SNRQuality(worse, want); q2 > base {
					t.Fatalf("SNR rose under an extra bit flip: %v -> %v (word %d)", base, q2, i)
				}
				break
			}
		}
	})
}
