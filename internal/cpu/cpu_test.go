package cpu

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
)

func run(t *testing.T, src string, inj Injector) *CPU {
	t.Helper()
	c := load(t, src, inj)
	c.SetWatchdog(1_000_000)
	c.Run()
	return c
}

func load(t *testing.T, src string, inj Injector) *CPU {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := New(mem.New(), inj, DefaultConfig())
	if err := c.Load(p); err != nil {
		t.Fatalf("load: %v", err)
	}
	return c
}

func TestArithmetic(t *testing.T) {
	c := run(t, `
		l.addi r1,r0,7
		l.addi r2,r0,5
		l.add  r3,r1,r2
		l.sub  r4,r1,r2
		l.mul  r5,r1,r2
		l.addi r6,r0,-3
		l.mul  r7,r1,r6
		l.sys 0
	`, nil)
	if c.Status() != StatusExited {
		t.Fatalf("status %v (%v)", c.Status(), c.TrapErr())
	}
	if c.Regs[3] != 12 || c.Regs[4] != 2 || c.Regs[5] != 35 {
		t.Errorf("r3=%d r4=%d r5=%d", c.Regs[3], c.Regs[4], c.Regs[5])
	}
	if int32(c.Regs[7]) != -21 {
		t.Errorf("signed mul r7=%d", int32(c.Regs[7]))
	}
}

func TestLogicAndShift(t *testing.T) {
	c := run(t, `
		l.movhi r1,0xF0F0
		l.ori   r1,r1,0x1234
		l.andi  r2,r1,0xFF00
		l.xori  r3,r2,0x00FF
		l.slli  r4,r3,4
		l.srli  r5,r1,16
		l.addi  r6,r0,-16
		l.srai  r7,r6,2
		l.addi  r8,r0,3
		l.sll   r10,r8,r8
		l.sys 0
	`, nil)
	if c.Regs[2] != 0x1200 {
		t.Errorf("andi r2=%x", c.Regs[2])
	}
	if c.Regs[3] != 0x12FF {
		t.Errorf("xori r3=%x", c.Regs[3])
	}
	if c.Regs[4] != 0x12FF0 {
		t.Errorf("slli r4=%x", c.Regs[4])
	}
	if c.Regs[5] != 0xF0F0 {
		t.Errorf("srli r5=%x", c.Regs[5])
	}
	if int32(c.Regs[7]) != -4 {
		t.Errorf("srai r7=%d", int32(c.Regs[7]))
	}
	if c.Regs[10] != 24 {
		t.Errorf("sll r10=%d", c.Regs[10])
	}
}

func TestR0Hardwired(t *testing.T) {
	c := run(t, `
		l.addi r0,r0,99
		l.add  r1,r0,r0
		l.sys 0
	`, nil)
	if c.Regs[0] != 0 || c.Regs[1] != 0 {
		t.Errorf("r0 not hardwired: r0=%d r1=%d", c.Regs[0], c.Regs[1])
	}
}

func TestComparesAndBranches(t *testing.T) {
	c := run(t, `
		l.addi r1,r0,10
		l.addi r2,r0,0
	loop:
		l.add  r2,r2,r1
		l.addi r1,r1,-1
		l.sfgtsi r1,0
		l.bf   loop
		l.sys 0
	`, nil)
	if c.Regs[2] != 55 {
		t.Errorf("sum = %d, want 55", c.Regs[2])
	}
}

func TestSignedVsUnsignedCompare(t *testing.T) {
	c := run(t, `
		l.addi r1,r0,-1      ; 0xFFFFFFFF
		l.addi r2,r0,1
		l.sfgts r1,r2        ; signed: -1 > 1 is false
		l.bf   signedwrong
		l.sfgtu r1,r2        ; unsigned: max > 1 is true
		l.bf   ok
		l.j    unsignedwrong
	signedwrong:
		l.addi r3,r0,1
		l.sys 0
	unsignedwrong:
		l.addi r3,r0,2
		l.sys 0
	ok:
		l.addi r3,r0,42
		l.sys 0
	`, nil)
	if c.Regs[3] != 42 {
		t.Errorf("compare semantics wrong, r3=%d", c.Regs[3])
	}
}

func TestMemoryOps(t *testing.T) {
	c := run(t, `
		l.movhi r1,hi(buf)
		l.ori   r1,r1,lo(buf)
		l.addi  r2,r0,0x1234
		l.sw    0(r1),r2
		l.lwz   r3,0(r1)
		l.sh    4(r1),r2
		l.lhz   r4,4(r1)
		l.sb    8(r1),r2
		l.lbz   r5,8(r1)
		l.sys 0
	.data
	buf: .space 16
	`, nil)
	if c.Regs[3] != 0x1234 || c.Regs[4] != 0x1234 || c.Regs[5] != 0x34 {
		t.Errorf("r3=%x r4=%x r5=%x", c.Regs[3], c.Regs[4], c.Regs[5])
	}
}

func TestJalAndJr(t *testing.T) {
	c := run(t, `
		l.jal  fn
		l.addi r2,r0,1    ; return lands here
		l.sys 0
	fn:
		l.addi r1,r0,7
		l.jr   r9
	`, nil)
	if c.Regs[1] != 7 || c.Regs[2] != 1 {
		t.Errorf("call sequence wrong: r1=%d r2=%d", c.Regs[1], c.Regs[2])
	}
}

func TestBusErrorTrap(t *testing.T) {
	c := run(t, `
		l.movhi r1,0xFFFF
		l.lwz   r2,0(r1)
		l.sys 0
	`, nil)
	if c.Status() != StatusTrapped {
		t.Fatalf("status %v, want trapped", c.Status())
	}
	if c.TrapErr() == nil || !strings.Contains(c.TrapErr().Error(), "out of range") {
		t.Errorf("trap err %v", c.TrapErr())
	}
}

func TestIllegalInstructionTrap(t *testing.T) {
	// Jump into the data section, which holds a word that decodes to
	// nothing valid.
	c := run(t, `
		l.movhi r1,hi(bad)
		l.ori   r1,r1,lo(bad)
		l.jr    r1
	.data
	bad: .word 0xFFFFFFFF
	`, nil)
	if c.Status() != StatusTrapped {
		t.Fatalf("status %v, want trapped", c.Status())
	}
}

func TestWatchdog(t *testing.T) {
	c := load(t, `
	spin:
		l.addi r1,r1,1
		l.j spin
	`, nil)
	c.SetWatchdog(5000)
	c.Run()
	if c.Status() != StatusWatchdog {
		t.Fatalf("status %v, want watchdog", c.Status())
	}
	if c.Cycles < 5000 {
		t.Errorf("cycles %d below watchdog", c.Cycles)
	}
}

// TestWatchdogExactBoundary pins the cycle-budget boundary semantics:
// the budget is checked at instruction entry against the cycles already
// charged, so a program whose final instruction enters at cycle W-1
// completes under budget W, while budget W-1 kills it on that entry
// with the cycle counter frozen at the budget value.
func TestWatchdogExactBoundary(t *testing.T) {
	// Straight-line: 3 addi + sys = 4 cycles; entries at 0,1,2,3.
	src := `
		l.addi r1,r0,1
		l.addi r2,r0,2
		l.add  r3,r1,r2
		l.sys 0
	`
	c := load(t, src, nil)
	c.SetWatchdog(4)
	if c.Run() != StatusExited {
		t.Errorf("budget == total cycles: status %v, want exited", c.Status())
	}
	if c.Cycles != 4 {
		t.Errorf("budget == total cycles: ran %d cycles, want 4", c.Cycles)
	}
	c = load(t, src, nil)
	c.SetWatchdog(3)
	if c.Run() != StatusWatchdog {
		t.Errorf("budget == total-1: status %v, want watchdog", c.Status())
	}
	if c.Cycles != 3 {
		t.Errorf("watchdog froze the counter at %d, want exactly 3", c.Cycles)
	}
	// A 1+4-cycle spin loop has entries at 0,1 (mod 5); a budget on a
	// multiple of 5 is hit exactly, never overshot.
	c = load(t, `
	spin:
		l.addi r1,r1,1
		l.j spin
	`, nil)
	c.SetWatchdog(5000)
	if c.Run() != StatusWatchdog {
		t.Fatalf("status %v, want watchdog", c.Status())
	}
	if c.Cycles != 5000 {
		t.Errorf("spin loop caught at %d cycles, want exactly the 5000 budget", c.Cycles)
	}
}

// TestSelfJumpDetectedWithoutBudget pins that the trivial infinite-loop
// detection does not depend on the cycle budget: an unconditional
// jump-to-self aborts immediately even with the watchdog disabled.
func TestSelfJumpDetectedWithoutBudget(t *testing.T) {
	c := load(t, `
	self:
		l.j self
	`, nil)
	c.SetWatchdog(0)
	if c.Run() != StatusWatchdog {
		t.Fatalf("status %v, want watchdog (self-jump, no budget)", c.Status())
	}
	if c.Cycles > 10 {
		t.Errorf("self-jump with no budget ran %d cycles before detection", c.Cycles)
	}
}

func TestSelfJumpDetection(t *testing.T) {
	c := load(t, `
	self:
		l.j self
	`, nil)
	c.SetWatchdog(1 << 30)
	c.Run()
	if c.Status() != StatusWatchdog {
		t.Fatalf("status %v, want watchdog (self-jump)", c.Status())
	}
	if c.Cycles > 100 {
		t.Errorf("self-jump not detected early (%d cycles)", c.Cycles)
	}
}

func TestCycleAccounting(t *testing.T) {
	// Straight-line: 4 instructions, no hazards -> 4 cycles.
	c := run(t, `
		l.addi r1,r0,1
		l.addi r2,r0,2
		l.add  r3,r1,r2
		l.sys 0
	`, nil)
	if c.Cycles != 4 {
		t.Errorf("straight-line cycles = %d, want 4", c.Cycles)
	}

	// A taken jump costs 1 + branch penalty.
	c = run(t, `
		l.j over
		l.nop
	over:
		l.sys 0
	`, nil)
	want := uint64(1+DefaultConfig().BranchPenalty) + 1
	if c.Cycles != want {
		t.Errorf("taken-jump cycles = %d, want %d", c.Cycles, want)
	}

	// Load-use hazard adds one stall.
	c = run(t, `
		l.movhi r1,hi(v)
		l.ori   r1,r1,lo(v)
		l.lwz   r2,0(r1)
		l.addi  r3,r2,1
		l.sys 0
	.data
	v: .word 5
	`, nil)
	if c.Cycles != 6 {
		t.Errorf("load-use cycles = %d, want 6", c.Cycles)
	}

	// Independent instruction after load: no stall.
	c = run(t, `
		l.movhi r1,hi(v)
		l.ori   r1,r1,lo(v)
		l.lwz   r2,0(r1)
		l.addi  r3,r1,1
		l.sys 0
	.data
	v: .word 5
	`, nil)
	if c.Cycles != 5 {
		t.Errorf("independent-after-load cycles = %d, want 5", c.Cycles)
	}
}

func TestKernelWindow(t *testing.T) {
	c := run(t, `
		l.addi r1,r0,1
		l.sys 1          ; open FI window
		l.addi r2,r0,2
		l.add  r3,r1,r2
		l.sys 2          ; close FI window
		l.addi r4,r0,4
		l.sys 0
	`, nil)
	// Window covers: the sys 1 itself does not count (window opens
	// after it), then addi, add, and sys 2's cycle.
	if c.KernelCycles != 3 {
		t.Errorf("kernel cycles = %d, want 3", c.KernelCycles)
	}
	if c.KernelALUCycles != 2 {
		t.Errorf("kernel ALU cycles = %d, want 2", c.KernelALUCycles)
	}
}

// maskInjector flips a fixed mask on every eligible cycle.
type maskInjector struct {
	mask  uint32
	flag  bool
	calls int
	ops   []isa.Op
}

func (m *maskInjector) Inject(op isa.Op, r, _ uint32, f, _ bool) (uint32, bool, int) {
	m.calls++
	m.ops = append(m.ops, op)
	n := 0
	for b := m.mask; b != 0; b &= b - 1 {
		n++
	}
	out := r ^ m.mask
	of := f
	if m.flag {
		of = !f
		n++
	}
	return out, of, n
}

func TestInjectionOnlyInWindowAndOnALU(t *testing.T) {
	inj := &maskInjector{mask: 1}
	c := run(t, `
		l.addi r1,r0,5    ; outside window: no FI
		l.sys 1
		l.addi r2,r0,5    ; FI flips bit 0 -> 4
		l.lwz  r3,0(r0)   ; load: never FI  (address 0 is valid imem)
		l.movhi r4,1      ; movhi: not ALU class
		l.sys 2
		l.addi r5,r0,5    ; outside again
		l.sys 0
	`, inj)
	if c.Status() != StatusExited {
		t.Fatalf("status %v (%v)", c.Status(), c.TrapErr())
	}
	if c.Regs[1] != 5 || c.Regs[5] != 5 {
		t.Errorf("FI leaked outside window: r1=%d r5=%d", c.Regs[1], c.Regs[5])
	}
	if c.Regs[2] != 4 {
		t.Errorf("FI not applied in window: r2=%d, want 4", c.Regs[2])
	}
	if inj.calls != 1 {
		t.Errorf("injector called %d times (%v), want 1", inj.calls, inj.ops)
	}
	if c.FIBits != 1 || c.FIEvents != 1 {
		t.Errorf("FI counters bits=%d events=%d", c.FIBits, c.FIEvents)
	}
}

func TestFlagInjectionChangesBranch(t *testing.T) {
	inj := &maskInjector{flag: true}
	c := run(t, `
		l.sys 1
		l.addi r1,r0,1     ; result also gets no mask (mask=0) but counts? mask 0 flips nothing
		l.sfeqi r1,1       ; true, but flag endpoint flipped -> false
		l.sys 2
		l.bf  equal
		l.addi r2,r0,111
		l.sys 0
	equal:
		l.addi r2,r0,222
		l.sys 0
	`, inj)
	if c.Regs[2] != 111 {
		t.Errorf("flag fault did not redirect branch: r2=%d", c.Regs[2])
	}
}

func TestMixAndRetired(t *testing.T) {
	c := run(t, `
		l.addi r1,r0,3
		l.mul  r2,r1,r1
		l.sfeqi r2,9
		l.bf ok
	ok:
		l.lwz r3,0(r0)
		l.sys 0
	`, nil)
	m := c.Mix()
	if m.Mul != 1 || m.Compare != 1 || m.Memory != 1 || m.Control != 1 {
		t.Errorf("mix %+v", m)
	}
	if c.Retired != 6 {
		t.Errorf("retired %d, want 6", c.Retired)
	}
}

func TestStaleCaptureSemanticsPlumbing(t *testing.T) {
	// Verify prevResult plumbing: an injector that returns the previous
	// latch value should observe the prior ALU result.
	var seenPrev []uint32
	inj := injFunc(func(op isa.Op, r, prev uint32, f, pf bool) (uint32, bool, int) {
		seenPrev = append(seenPrev, prev)
		return r, f, 0
	})
	run(t, `
		l.sys 1
		l.addi r1,r0,11
		l.addi r2,r0,22
		l.sys 2
		l.sys 0
	`, inj)
	if len(seenPrev) != 2 {
		t.Fatalf("injector called %d times", len(seenPrev))
	}
	if seenPrev[1] != 11 {
		t.Errorf("prev latch = %d, want 11", seenPrev[1])
	}
}

type injFunc func(isa.Op, uint32, uint32, bool, bool) (uint32, bool, int)

func (f injFunc) Inject(op isa.Op, r, p uint32, fl, pf bool) (uint32, bool, int) {
	return f(op, r, p, fl, pf)
}
