package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/dta"
	"repro/internal/timing"
)

var (
	once sync.Once
	sys  *System
)

func system() *System {
	once.Do(func() {
		cfg := DefaultConfig()
		cfg.DTA = dta.Config{Cycles: 512, Seed: 5}
		sys = New(cfg)
	})
	return sys
}

func TestSTALimitAnchored(t *testing.T) {
	s := system()
	if got := s.STALimitMHz(0.7); math.Abs(got-707) > 0.1 {
		t.Errorf("STA limit @0.7V = %v, want 707", got)
	}
	// Higher voltage raises the limit; the 0.8 V limit lands near the
	// paper's Fig. 5(d-f) range (about 950 MHz).
	hi := s.STALimitMHz(0.8)
	if hi < 900 || hi > 1000 {
		t.Errorf("STA limit @0.8V = %v, want about 955", hi)
	}
	if s.STALimitMHz(0.6) >= 707 {
		t.Errorf("lower voltage did not lower the limit")
	}
}

func TestNonALUSafeLimit(t *testing.T) {
	s := system()
	if got := s.NonALUSafeMHz(0.7); math.Abs(got-1150) > 0.1 {
		t.Errorf("non-ALU limit @0.7V = %v, want 1150", got)
	}
	if _, err := s.Model(ModelSpec{Kind: "C", Vdd: 0.7, FreqMHz: 1200}); err == nil {
		t.Errorf("model constructed beyond the non-ALU safe limit")
	}
	if _, err := s.Model(ModelSpec{Kind: "B", Vdd: 0.7, FreqMHz: 1100}); err != nil {
		t.Errorf("model rejected within the safe limit: %v", err)
	}
}

func TestModelFactory(t *testing.T) {
	s := system()
	cases := map[string]string{
		"none": "none", "A": "A", "B": "B", "B+": "B+", "C": "C",
	}
	for kind, want := range cases {
		m, err := s.Model(ModelSpec{Kind: kind, Vdd: 0.7, FreqMHz: 800, Sigma: 0.01})
		if err != nil {
			t.Fatalf("model %q: %v", kind, err)
		}
		if m.Name() != want {
			t.Errorf("model %q named %q", kind, m.Name())
		}
	}
	if _, err := s.Model(ModelSpec{Kind: "Z", Vdd: 0.7, FreqMHz: 800}); err == nil {
		t.Errorf("unknown kind accepted")
	}
	if _, err := s.Model(ModelSpec{Kind: "C", Vdd: 0.2, FreqMHz: 800}); err == nil {
		t.Errorf("sub-threshold supply accepted")
	}
}

func TestDefaultsAreThePaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Circuit.STAFreqMHz != 707 {
		t.Errorf("STA constraint %v", cfg.Circuit.STAFreqMHz)
	}
	if cfg.NonALUSafeMHz != 1150 {
		t.Errorf("non-ALU limit %v", cfg.NonALUSafeMHz)
	}
	if cfg.DTA.Cycles != 8192 {
		t.Errorf("DTA kernel %v cycles, paper uses 8k", cfg.DTA.Cycles)
	}
	if cfg.Vdd != timing.DefaultVddDelay() {
		t.Errorf("vdd model not the calibrated default")
	}
}
