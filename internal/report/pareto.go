// Energy-vs-quality Pareto curves: the report-layer rendering of the
// mitigation scenarios (internal/mitigate). Every (benchmark, model,
// Vdd, sigma) group collects its candidate operating points — one per
// (frequency, mitigation scheme) — and the non-dominated subset (no
// other candidate is at once cheaper and at least as good) is flagged
// as the group's Pareto front, the frontier a designer picking an
// overscaled operating point actually chooses from.

package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/mitigate"
)

// ParetoPoint is one candidate operating point of a group: a
// (frequency, scheme) pair with its predicted energy and effective
// quality, flagged when it lies on the group's Pareto front.
type ParetoPoint struct {
	Scheme         string  `json:"scheme"`
	FreqMHz        float64 `json:"freq_mhz"`
	FaultsPerTrial float64 `json:"faults_per_trial"`
	HazardExact    bool    `json:"hazard_exact"`
	Detected       float64 `json:"detected_per_trial"`
	RawQuality     float64 `json:"raw_quality"`
	EffQuality     float64 `json:"eff_quality"`
	BaseEnergyPJ   float64 `json:"base_energy_pj"`
	OverheadPJ     float64 `json:"overhead_pj"`
	TotalEnergyPJ  float64 `json:"total_energy_pj"`
	OnFront        bool    `json:"on_front"`
}

// ParetoSeries is one (benchmark, model, Vdd, sigma) group with its
// candidates in (frequency, scheme) evaluation order.
type ParetoSeries struct {
	Label  string        `json:"label"`
	Bench  string        `json:"bench,omitempty"`
	Kind   string        `json:"model,omitempty"`
	Vdd    float64       `json:"vdd"`
	Sigma  float64       `json:"sigma"`
	Points []ParetoPoint `json:"points"`
}

// ParetoDoc is the machine-readable energy-vs-quality trade-off of a
// run.
type ParetoDoc struct {
	Meta   Meta           `json:"meta"`
	Series []ParetoSeries `json:"series"`
}

// Pareto folds mitigation results into the Pareto document: results
// are grouped by (benchmark, model kind, Vdd, sigma) — consecutive
// grouping, matching the grid's frequency-innermost enumeration and
// mitigate.Evaluate's cell order — and each group's non-dominated
// candidates are flagged.
func Pareto(meta Meta, rs []mitigate.Result) *ParetoDoc {
	d := &ParetoDoc{Meta: meta}
	sameGroup := func(a, b mitigate.Result) bool {
		return a.Bench == b.Bench && a.Model.Kind == b.Model.Kind &&
			a.Model.Vdd == b.Model.Vdd && a.Model.Sigma == b.Model.Sigma
	}
	for i, r := range rs {
		if i == 0 || !sameGroup(rs[i-1], r) {
			d.Series = append(d.Series, ParetoSeries{
				Label: fmt.Sprintf("%s model=%s vdd=%gV sigma=%gmV",
					r.Bench, modelKind(r.Model), r.Model.Vdd, r.Model.Sigma*1000),
				Bench: r.Bench,
				Kind:  r.Model.Kind,
				Vdd:   r.Model.Vdd,
				Sigma: r.Model.Sigma,
			})
		}
		s := &d.Series[len(d.Series)-1]
		s.Points = append(s.Points, ParetoPoint{
			Scheme:         string(r.Scheme),
			FreqMHz:        r.Model.FreqMHz,
			FaultsPerTrial: r.FaultsPerTrial,
			HazardExact:    r.HazardExact,
			Detected:       r.Detected,
			RawQuality:     r.RawQuality,
			EffQuality:     r.EffQuality,
			BaseEnergyPJ:   r.BaseEnergyPJ,
			OverheadPJ:     r.OverheadPJ,
			TotalEnergyPJ:  r.TotalEnergyPJ,
		})
	}
	for i := range d.Series {
		markFront(d.Series[i].Points)
	}
	return d
}

// markFront flags the non-dominated candidates: a point is on the
// front unless some other point has no more energy and no less
// quality, with at least one strict. Duplicate (energy, quality) pairs
// are all kept — they are the same trade-off, not dominated.
func markFront(pts []ParetoPoint) {
	for i := range pts {
		dominated := false
		for j := range pts {
			if i == j {
				continue
			}
			if pts[j].TotalEnergyPJ <= pts[i].TotalEnergyPJ &&
				pts[j].EffQuality >= pts[i].EffQuality &&
				(pts[j].TotalEnergyPJ < pts[i].TotalEnergyPJ ||
					pts[j].EffQuality > pts[i].EffQuality) {
				dominated = true
				break
			}
		}
		pts[i].OnFront = !dominated
	}
}

// WriteParetoJSON encodes the Pareto document as indented JSON.
func WriteParetoJSON(w io.Writer, d *ParetoDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteParetoCSV encodes the Pareto document as tidy CSV, one row per
// candidate operating point.
func WriteParetoCSV(w io.Writer, d *ParetoDoc) error {
	if _, err := fmt.Fprintf(w, "# tool=%s seed=%d cells=%d axes=%q\n",
		d.Meta.Tool, d.Meta.Seed, d.Meta.Cells, d.Meta.Axes); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := []string{"series", "bench", "model", "vdd_v", "sigma_v",
		"scheme", "freq_mhz", "faults_per_trial", "hazard_exact",
		"detected_per_trial", "raw_quality", "eff_quality",
		"base_energy_pj", "overhead_pj", "total_energy_pj", "on_front"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range d.Series {
		for _, p := range s.Points {
			rec := []string{
				s.Label, s.Bench, s.Kind, fmtF(s.Vdd), fmtF(s.Sigma),
				p.Scheme, fmtF(p.FreqMHz), fmtF(p.FaultsPerTrial),
				strconv.FormatBool(p.HazardExact), fmtF(p.Detected),
				fmtF(p.RawQuality), fmtF(p.EffQuality),
				fmtF(p.BaseEnergyPJ), fmtF(p.OverheadPJ),
				fmtF(p.TotalEnergyPJ), strconv.FormatBool(p.OnFront),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePareto dispatches on format ("json" or "csv").
func WritePareto(w io.Writer, format string, d *ParetoDoc) error {
	switch format {
	case "json":
		return WriteParetoJSON(w, d)
	case "csv":
		return WriteParetoCSV(w, d)
	}
	return fmt.Errorf("report: unknown format %q (want json or csv)", format)
}

// WriteParetoFile writes the Pareto document to path (or to
// stdoutFallback when path is empty), propagating close errors.
func WriteParetoFile(path string, stdoutFallback io.Writer, format string, d *ParetoDoc) error {
	if path == "" {
		return WritePareto(stdoutFallback, format, d)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WritePareto(f, format, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
