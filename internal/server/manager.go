// Package server is the batch-simulation service layer: a job manager
// that runs experiment-grid requests asynchronously on the shared mc
// worker pool, and an HTTP/JSON API (see http.go and docs/API.md) that
// exposes it. It sits above internal/mc, internal/report and
// internal/artifact — the same position cmd/sweep occupies, but
// long-running: one core.System (so model, golden-trace and hazard
// caches amortize across every job the daemon ever serves) and one
// optional artifact store shared by all jobs.
//
// Jobs are deduplicated by content: a request is canonicalized
// (spec.go) and hashed together with the system fingerprint, and two
// clients submitting the same experiment share one execution and one
// result — the submit path returns the existing job. Completed jobs are
// retained in memory (bounded, LRU by completion) and their grids are
// checkpointed per cell to the artifact store, so even a job evicted
// from memory re-answers from warm cells in milliseconds when
// resubmitted. Cancellation propagates through context into the grid
// engine at trial granularity, and Shutdown drains: no new submissions,
// queued and running jobs finish (or are force-cancelled when the drain
// context expires).
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/progress"
	"repro/internal/report"
)

// Submission and lifecycle errors surfaced to clients.
var (
	// ErrQueueFull reports a bounded queue at capacity; clients should
	// retry later (HTTP 503).
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining reports a manager that is shutting down and no longer
	// accepts jobs (HTTP 503).
	ErrDraining = errors.New("server: draining, not accepting jobs")
	// ErrNotFound reports an unknown job ID (HTTP 404).
	ErrNotFound = errors.New("server: no such job")
	// ErrNotFinished reports a result request for a job that has not
	// completed yet (HTTP 409).
	ErrNotFinished = errors.New("server: job not finished")
)

// State is a job's lifecycle state. The machine is
// queued → running → {done, failed, canceled}; cancel requests move
// queued jobs terminal directly and running jobs through the grid
// engine's context.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Progress is one job progress snapshot as streamed to clients: the
// engine's trial/point counters plus the job state, so a single stream
// carries both liveness and completion.
type Progress struct {
	State       State `json:"state"`
	DoneTrials  int   `json:"done_trials"`
	TotalTrials int   `json:"total_trials"`
	DonePoints  int   `json:"done_points"`
	TotalPoints int   `json:"total_points"`
}

// Options configures a Manager. System is required; everything else
// defaults.
type Options struct {
	// System is the shared simulation stack; its model/golden/hazard
	// caches amortize across all jobs.
	System *core.System
	// Store, when non-nil, persists characterizations, traces, hazard
	// tables and grid cells; deduped resubmissions of completed grids
	// answer from it. It should be the same store attached to System.
	Store *artifact.Store
	// QueueCap bounds the number of jobs queued but not yet running
	// (default 64); submissions beyond it fail with ErrQueueFull.
	QueueCap int
	// Parallel is the number of jobs executed concurrently (default 1:
	// each job already saturates the cores through the mc worker pool).
	Parallel int
	// Workers caps the mc worker pool per job (default NumCPU).
	Workers int
	// KeepJobs bounds retained terminal jobs (default 256); the oldest
	// completed jobs are evicted first. Queued and running jobs are never
	// evicted.
	KeepJobs int
}

func (o Options) withDefaults() Options {
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.Parallel <= 0 {
		o.Parallel = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.KeepJobs <= 0 {
		o.KeepJobs = 256
	}
	return o
}

// Stats counts manager traffic since start; it backs the /v1/stats
// endpoint and the dedup integration tests.
type Stats struct {
	Submitted int64 `json:"submitted"` // accepted submissions, deduped included
	Deduped   int64 `json:"deduped"`   // submissions answered by an existing job
	Executed  int64 `json:"executed"`  // grid runs actually started
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
}

// Job is one submitted experiment. Mutable fields are guarded by the
// manager's mutex; the result document is immutable once the job is
// terminal.
type Job struct {
	ID          string
	Fingerprint string
	Spec        JobSpec // canonical

	state    State
	err      string
	created  time.Time
	started  time.Time
	finished time.Time

	cells       []mc.CellResult
	cachedCells int
	doc         *report.Document

	ctx    context.Context // cancelled by Cancel / Shutdown force-drain
	cancel context.CancelFunc
	done   chan struct{} // closed when terminal
	prog   *progress.Broadcaster[Progress]
}

// Status is the JSON status snapshot of a job.
type Status struct {
	ID          string     `json:"id"`
	Fingerprint string     `json:"fingerprint"`
	State       State      `json:"state"`
	Error       string     `json:"error,omitempty"`
	Spec        JobSpec    `json:"spec"`
	Created     time.Time  `json:"created"`
	Started     *time.Time `json:"started,omitempty"`
	Finished    *time.Time `json:"finished,omitempty"`
	Cells       int        `json:"cells,omitempty"`
	CachedCells int        `json:"cached_cells,omitempty"`
	Progress    *Progress  `json:"progress,omitempty"`
}

// Manager owns the job table, the dedup index and the bounded queue,
// and executes jobs on Options.Parallel runner goroutines.
type Manager struct {
	opt Options

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []*Job          // insertion order, for terminal-job eviction
	byFP     map[string]*Job // live dedup index: queued/running/done jobs
	queue    chan *Job
	seq      int
	draining bool
	stats    Stats

	runners sync.WaitGroup
}

// NewManager starts a manager and its runner goroutines.
func NewManager(opt Options) *Manager {
	opt = opt.withDefaults()
	m := &Manager{
		opt:   opt,
		jobs:  make(map[string]*Job),
		byFP:  make(map[string]*Job),
		queue: make(chan *Job, opt.QueueCap),
	}
	for i := 0; i < opt.Parallel; i++ {
		m.runners.Add(1)
		go func() {
			defer m.runners.Done()
			for j := range m.queue {
				m.runJob(j)
			}
		}()
	}
	return m
}

// Stats returns a snapshot of the traffic counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// System returns the manager's simulation stack (for cache summaries).
func (m *Manager) System() *core.System { return m.opt.System }

// Submit canonicalizes and enqueues a job. If a live job (queued,
// running or successfully completed) already carries the same
// fingerprint, that job is returned with deduped = true and nothing new
// runs: concurrent identical submissions share one execution, and a
// resubmission of a completed job answers instantly. Failed and
// cancelled jobs do not satisfy dedup — resubmitting one schedules a
// fresh run.
func (m *Manager) Submit(spec JobSpec) (*Job, bool, error) {
	c, err := spec.Canonicalize()
	if err != nil {
		return nil, false, err
	}
	fp := c.Fingerprint(m.opt.System.Fingerprint())

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, false, ErrDraining
	}
	if j, ok := m.byFP[fp]; ok {
		m.stats.Submitted++
		m.stats.Deduped++
		return j, true, nil
	}
	m.seq++
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID:          fmt.Sprintf("j%06d", m.seq),
		Fingerprint: fp,
		Spec:        c,
		state:       StateQueued,
		created:     time.Now(),
		ctx:         ctx,
		cancel:      cancel,
		done:        make(chan struct{}),
		prog:        progress.NewBroadcaster[Progress](),
	}
	j.prog.Publish(Progress{State: StateQueued})
	select {
	case m.queue <- j:
	default:
		cancel()
		return nil, false, ErrQueueFull
	}
	m.stats.Submitted++
	m.jobs[j.ID] = j
	m.order = append(m.order, j)
	m.byFP[fp] = j
	m.evictLocked()
	return j, false, nil
}

// runJob executes one queued job to a terminal state.
func (m *Manager) runJob(j *Job) {
	m.mu.Lock()
	if j.state != StateQueued { // cancelled while queued
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	m.stats.Executed++
	m.mu.Unlock()
	j.prog.Publish(Progress{State: StateRunning})

	grid, err := j.Spec.grid(m.opt.System, m.opt.Store, m.opt.Workers, func(p mc.Progress) {
		j.prog.Publish(Progress{
			State:       StateRunning,
			DoneTrials:  p.DoneTrials,
			TotalTrials: p.TotalTrials,
			DonePoints:  p.DonePoints,
			TotalPoints: p.TotalPoints,
		})
	})
	var cells []mc.CellResult
	if err == nil {
		cells, err = grid.RunContext(j.ctx)
	}

	m.mu.Lock()
	j.finished = time.Now()
	switch {
	case errors.Is(err, context.Canceled):
		// Keyed off the run's own error, not ctx.Err(): a cancel that
		// lands after the grid completed still counts as done.
		j.state = StateCanceled
		j.err = context.Canceled.Error()
		m.stats.Canceled++
		delete(m.byFP, j.Fingerprint)
	case err != nil:
		j.state = StateFailed
		j.err = err.Error()
		m.stats.Failed++
		delete(m.byFP, j.Fingerprint)
	default:
		j.state = StateDone
		j.cells = cells
		for _, c := range cells {
			if c.Cached {
				j.cachedCells++
			}
		}
		j.doc = &report.Document{
			Meta: report.Meta{
				Tool:  "fisimd",
				Seed:  j.Spec.Seed,
				Cells: len(cells),
				Axes:  j.Spec.axesSummary(),
			},
			Series: report.FromCells(cells),
		}
		m.stats.Done++
	}
	final := m.progressLocked(j)
	m.mu.Unlock()

	j.prog.Publish(final)
	j.prog.Close()
	j.cancel() // release the context's resources
	close(j.done)
}

// progressLocked composes a job's current Progress snapshot under the
// manager lock.
func (m *Manager) progressLocked(j *Job) Progress {
	p, ok := j.prog.Last()
	if !ok {
		p = Progress{}
	}
	p.State = j.state
	return p
}

// evictLocked drops the oldest terminal jobs beyond KeepJobs.
func (m *Manager) evictLocked() {
	terminal := 0
	for _, j := range m.order {
		if j.state.Terminal() {
			terminal++
		}
	}
	if terminal <= m.opt.KeepJobs {
		return
	}
	kept := m.order[:0]
	for _, j := range m.order {
		if terminal > m.opt.KeepJobs && j.state.Terminal() {
			terminal--
			delete(m.jobs, j.ID)
			if m.byFP[j.Fingerprint] == j {
				delete(m.byFP, j.Fingerprint)
			}
			continue
		}
		kept = append(kept, j)
	}
	m.order = kept
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Status snapshots a job's public state.
func (m *Manager) Status(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return m.statusLocked(j), nil
}

func (m *Manager) statusLocked(j *Job) Status {
	st := Status{
		ID:          j.ID,
		Fingerprint: j.Fingerprint,
		State:       j.state,
		Error:       j.err,
		Spec:        j.Spec,
		Created:     j.created,
		Cells:       len(j.cells),
		CachedCells: j.cachedCells,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	p := m.progressLocked(j)
	st.Progress = &p
	return st
}

// List snapshots every retained job, oldest first.
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.order))
	for _, j := range m.order {
		out = append(out, m.statusLocked(j))
	}
	return out
}

// Result returns a finished job's result document. The document is
// built once at completion, so every client — including all deduped
// submitters — renders the same bytes.
func (m *Manager) Result(id string) (*report.Document, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	switch j.state {
	case StateDone:
		return j.doc, nil
	case StateFailed:
		return nil, fmt.Errorf("server: job failed: %s", j.err)
	case StateCanceled:
		return nil, fmt.Errorf("server: job canceled")
	}
	return nil, ErrNotFinished
}

// Cancel requests cancellation. Queued jobs go terminal immediately;
// running jobs stop at the next trial boundary through the grid
// engine's context. Cancelling a terminal job is a no-op returning
// false.
func (m *Manager) Cancel(id string) (bool, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return false, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		// The runner will observe the state change and skip it.
		j.state = StateCanceled
		j.err = context.Canceled.Error()
		j.finished = time.Now()
		m.stats.Canceled++
		delete(m.byFP, j.Fingerprint)
		final := m.progressLocked(j)
		m.mu.Unlock()
		j.cancel()
		j.prog.Publish(final)
		j.prog.Close()
		close(j.done)
		return true, nil
	case StateRunning:
		m.mu.Unlock()
		j.cancel()
		return true, nil
	}
	m.mu.Unlock()
	return false, nil
}

// Wait blocks until the job is terminal or ctx expires, returning the
// final (or current, on ctx expiry) status.
func (m *Manager) Wait(ctx context.Context, id string) (Status, error) {
	j, err := m.Get(id)
	if err != nil {
		return Status{}, err
	}
	select {
	case <-j.done:
	case <-ctx.Done():
	}
	return m.Status(id)
}

// Subscribe attaches a progress observer to a job. The returned channel
// carries coalesced Progress snapshots and closes when the job is
// terminal (after delivering the terminal snapshot); for an
// already-terminal job it delivers exactly that snapshot. Always call
// cancel.
func (m *Manager) Subscribe(id string) (<-chan Progress, func(), error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, nil, ErrNotFound
	}
	if j.state.Terminal() {
		final := m.progressLocked(j)
		m.mu.Unlock()
		ch := make(chan Progress, 1)
		ch <- final
		close(ch)
		return ch, func() {}, nil
	}
	m.mu.Unlock()
	ch, cancel := j.prog.Subscribe()
	return ch, cancel, nil
}

// Shutdown drains the manager: no further submissions are accepted,
// queued and running jobs run to completion, and the call returns when
// every runner has stopped. If ctx expires first, all remaining jobs
// are cancelled and Shutdown waits for the runners to observe it.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	close(m.queue)
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.runners.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		for _, j := range m.order {
			if !j.state.Terminal() {
				j.cancel()
			}
		}
		m.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// axesSummary renders the canonical axes for report metadata.
func (s JobSpec) axesSummary() string {
	return fmt.Sprintf("bench=%v model=%v vdd=%v sigma=%v freqs=%d mode=%s",
		s.Benches, s.Models, s.Vdds, s.Sigmas, len(s.Freqs), s.Mode)
}
