// Golden-trace replay: the trace-driven injector query path.
//
// All four models decide injection from exactly the tuple cpu passes to
// Inject on an FI-eligible ALU cycle — (op, result, previous EX latch,
// flag, previous flag latch) — and from their trial RNG. A fault-free
// execution recorded as a stream of those tuples (internal/cpu's Trace)
// can therefore stand in for full simulation: ScanTrace drives a trial's
// injector over the recorded stream, consuming the RNG exactly as a full
// run would, until the first query that actually flips an endpoint bit.
// Below that query the trial is bit-for-bit the golden run; from it, the
// caller resumes full simulation (cpu.Restore) with a NewForkInjector
// that bridges the already-consumed prefix.
package fi

import "repro/internal/isa"

// TraceQuery is one recorded injector query of a fault-free execution:
// exactly the arguments the core hands to Inject on an FI-eligible ALU
// cycle.
type TraceQuery struct {
	Op             isa.Op
	Result, Prev   uint32
	Flag, PrevFlag bool
}

// Fork describes the first injection ScanTrace found: the query index at
// which the injector flipped at least one endpoint bit, and the
// corrupted capture it returned there.
type Fork struct {
	Query   int
	Out     uint32
	OutFlag bool
	Flipped int
}

// ScanTrace drives the injector over the recorded golden query stream in
// order and returns the first query at which it injects. The injector's
// RNG advances exactly as a full execution would through that query; ok
// is false when the whole stream stays fault-free (the trial is the
// golden run).
func ScanTrace(inj Injector, qs []TraceQuery) (fork Fork, ok bool) {
	for i := range qs {
		q := &qs[i]
		out, outFlag, flipped := inj.Inject(q.Op, q.Result, q.Prev, q.Flag, q.PrevFlag)
		if flipped > 0 {
			return Fork{Query: i, Out: out, OutFlag: outFlag, Flipped: flipped}, true
		}
	}
	return Fork{}, false
}

// NewForkInjector wraps a trial injector for execution resumed from a
// checkpoint taken at query index next (queries are counted across the
// whole run, in the order the core issues them). Queries before the fork
// pass through unchanged — they are the golden prefix and their
// randomness was already consumed by ScanTrace — the fork query returns
// the recorded corrupted capture, and every later query delegates to
// inner, whose RNG stream is positioned exactly where a full execution
// would have it.
func NewForkInjector(inner Injector, next int, fork Fork) Injector {
	return &forkInjector{inner: inner, next: next, fork: fork}
}

type forkInjector struct {
	inner Injector
	next  int
	fork  Fork
}

func (f *forkInjector) Inject(op isa.Op, result, prev uint32, flag, prevFlag bool) (uint32, bool, int) {
	i := f.next
	f.next++
	switch {
	case i < f.fork.Query:
		return result, flag, 0
	case i == f.fork.Query:
		return f.fork.Out, f.fork.OutFlag, f.fork.Flipped
	}
	return f.inner.Inject(op, result, prev, flag, prevFlag)
}
