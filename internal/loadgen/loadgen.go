// Package loadgen is the traffic harness for the fisimd service layer:
// an open-loop, mixed-priority load generator plus an HTTP fault proxy
// (proxy.go). It sits beside internal/client (which it uses for the
// wire protocol) and above nothing in the simulation stack — it drives
// any daemon, real or httptest-backed, purely over HTTP.
//
// Open-loop means arrivals are paced by the configured rate, not by the
// server's responses, so saturation actually saturates: when the daemon
// sheds load the generator keeps arriving on schedule and the shed rate
// is measured rather than hidden by backpressure on the generator
// itself. Per-lane latency percentiles (time-to-start, time-to-done,
// from the server's own timestamps), shed/throughput counters and the
// lost-accepted-jobs invariant come out as a Report — the numbers
// BENCH_serve.json pins and the chaos tests assert SLOs against.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
)

// LaneLoad is one lane's arrival process.
type LaneLoad struct {
	// Priority tags submissions ("interactive" or "batch").
	Priority string
	// Rate is the open-loop arrival rate in submissions per second.
	Rate float64
	// Jobs is how many submissions this lane issues in total.
	Jobs int
	// Spec builds the i-th submission body. It must vary something
	// result-relevant (typically the seed) when distinct executions are
	// wanted — identical specs dedup server-side, which the report
	// counts separately.
	Spec func(i int) map[string]any
	// APIKey, when set, identifies this lane's tenant.
	APIKey string
}

// Config drives one Run.
type Config struct {
	// Base is the daemon (or fault proxy) base URL.
	Base string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
	// Lanes are the concurrent arrival processes.
	Lanes []LaneLoad
	// WaitTimeout bounds how long Run waits for accepted jobs to reach a
	// terminal state after the last arrival (default 120s). Jobs still
	// live past it are counted Lost — the invariant the chaos tests
	// assert to be zero.
	WaitTimeout time.Duration
	// SubmitRetries is the per-submission attempt budget (default 1:
	// raw submissions, so shed responses are observed rather than
	// retried away; the retrying-client tests live in internal/client).
	SubmitRetries int
	// Seed fixes client jitter for reproducible runs.
	Seed int64
}

// Percentiles summarizes a latency sample in milliseconds.
type Percentiles struct {
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
	N   int     `json:"n"`
}

func percentiles(ms []float64) Percentiles {
	if len(ms) == 0 {
		return Percentiles{}
	}
	sort.Float64s(ms)
	at := func(p float64) float64 {
		i := int(math.Ceil(p/100*float64(len(ms)))) - 1
		if i < 0 {
			i = 0
		}
		return ms[i]
	}
	return Percentiles{P50: at(50), P90: at(90), P99: at(99), Max: ms[len(ms)-1], N: len(ms)}
}

// LaneReport is one lane's measured outcome.
type LaneReport struct {
	Priority  string `json:"priority"`
	Submitted int    `json:"submitted"`
	Accepted  int    `json:"accepted"` // new jobs scheduled (2xx, not deduped)
	Deduped   int    `json:"deduped"`
	// Shed counts 429 refusals; RetryAfterSeen how many of them carried
	// a positive Retry-After header (honest shedding advertises when to
	// come back).
	Shed           int `json:"shed"`
	RetryAfterSeen int `json:"retry_after_seen"`
	Errors         int `json:"errors"` // non-429 submission failures
	Done           int `json:"done"`
	Failed         int `json:"failed"`
	Canceled       int `json:"canceled"`
	// Lost counts accepted jobs that never reached a terminal state
	// within WaitTimeout — the must-be-zero invariant.
	Lost int `json:"lost"`
	// Start is time-to-start (created→started) and Terminal
	// time-to-terminal (created→finished), from server timestamps.
	Start            Percentiles `json:"time_to_start"`
	Terminal         Percentiles `json:"time_to_terminal"`
	ThroughputPerSec float64     `json:"throughput_jobs_per_sec"` // terminal jobs / wall time
}

// Report is one Run's outcome; it is what scripts/bench_serve.sh
// serializes into BENCH_serve.json.
type Report struct {
	DurationSec float64      `json:"duration_sec"`
	Lanes       []LaneReport `json:"lanes"`
	TotalLost   int          `json:"total_lost"`
}

// Lane returns the report of the named lane (nil if absent).
func (r *Report) Lane(priority string) *LaneReport {
	for i := range r.Lanes {
		if r.Lanes[i].Priority == priority {
			return &r.Lanes[i]
		}
	}
	return nil
}

// accepted is one job the daemon admitted, tracked to a terminal state.
type accepted struct {
	id      string
	lane    int
	deduped bool
}

// Run drives the configured lanes open-loop against cfg.Base, then
// tracks every accepted job to a terminal state and aggregates the
// per-lane report. The context bounds the whole run; cancelling it
// mid-flight yields a partial (but internally consistent) report with
// the untracked remainder counted Lost.
func Run(ctx context.Context, cfg Config) (Report, error) {
	if len(cfg.Lanes) == 0 {
		return Report{}, fmt.Errorf("loadgen: no lanes configured")
	}
	if cfg.WaitTimeout <= 0 {
		cfg.WaitTimeout = 120 * time.Second
	}
	if cfg.SubmitRetries <= 0 {
		cfg.SubmitRetries = 1
	}

	start := time.Now()
	reports := make([]LaneReport, len(cfg.Lanes))
	startSamples := make([][]float64, len(cfg.Lanes))
	terminalSamples := make([][]float64, len(cfg.Lanes))
	var mu sync.Mutex
	var acceptedJobs []accepted

	// Arrival phase: one pacer per lane, one goroutine per arrival so a
	// slow (or stalled) submission never delays the next arrival — that
	// is what makes the loop open.
	var arrivals sync.WaitGroup
	var inflight sync.WaitGroup
	for li := range cfg.Lanes {
		lane := cfg.Lanes[li]
		reports[li].Priority = lane.Priority
		cl := client.New(client.Config{
			Base: cfg.Base, HTTP: cfg.HTTP, APIKey: lane.APIKey,
			MaxAttempts: cfg.SubmitRetries, Seed: cfg.Seed + int64(li) + 1,
			BaseDelay: 50 * time.Millisecond,
		})
		arrivals.Add(1)
		go func(li int, lane LaneLoad, cl *client.Client) {
			defer arrivals.Done()
			interval := time.Duration(0)
			if lane.Rate > 0 {
				interval = time.Duration(float64(time.Second) / lane.Rate)
			}
			for i := 0; i < lane.Jobs; i++ {
				if ctx.Err() != nil {
					return
				}
				inflight.Add(1)
				go func(i int) {
					defer inflight.Done()
					submitOne(ctx, cl, lane, li, i, reports, &mu, &acceptedJobs)
				}(i)
				if interval > 0 && i < lane.Jobs-1 {
					select {
					case <-time.After(interval):
					case <-ctx.Done():
						return
					}
				}
			}
		}(li, lane, cl)
	}
	arrivals.Wait()
	inflight.Wait()

	// Tracking phase: every accepted job must go terminal. Waits use a
	// retrying client — transient failures while polling must not turn
	// into false "lost" verdicts.
	waiter := client.New(client.Config{
		Base: cfg.Base, HTTP: cfg.HTTP, MaxAttempts: 5,
		Seed: cfg.Seed + 7919, BaseDelay: 100 * time.Millisecond,
	})
	wctx, wcancel := context.WithTimeout(ctx, cfg.WaitTimeout)
	defer wcancel()
	var trackers sync.WaitGroup
	for _, a := range acceptedJobs {
		trackers.Add(1)
		go func(a accepted) {
			defer trackers.Done()
			st, err := waiter.Wait(wctx, a.id)
			mu.Lock()
			defer mu.Unlock()
			r := &reports[a.lane]
			if err != nil || !st.Terminal() {
				r.Lost++
				return
			}
			switch st.State {
			case "done":
				r.Done++
			case "failed":
				r.Failed++
			case "canceled":
				r.Canceled++
			}
			if st.Started != nil {
				startSamples[a.lane] = append(startSamples[a.lane],
					float64(st.Started.Sub(st.Created))/float64(time.Millisecond))
			}
			if st.Finished != nil {
				terminalSamples[a.lane] = append(terminalSamples[a.lane],
					float64(st.Finished.Sub(st.Created))/float64(time.Millisecond))
			}
		}(a)
	}
	trackers.Wait()

	wall := time.Since(start)
	rep := Report{DurationSec: wall.Seconds()}
	for li := range reports {
		r := reports[li]
		r.Start = percentiles(startSamples[li])
		r.Terminal = percentiles(terminalSamples[li])
		terminal := r.Done + r.Failed + r.Canceled
		if wall > 0 {
			r.ThroughputPerSec = float64(terminal) / wall.Seconds()
		}
		rep.TotalLost += r.Lost
		rep.Lanes = append(rep.Lanes, r)
	}
	return rep, nil
}

// submitOne issues one submission and files its outcome.
func submitOne(ctx context.Context, cl *client.Client, lane LaneLoad, li, i int,
	reports []LaneReport, mu *sync.Mutex, acceptedJobs *[]accepted) {
	sr, err := cl.Submit(ctx, lane.Spec(i))
	mu.Lock()
	defer mu.Unlock()
	reports[li].Submitted++
	if err != nil {
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode == 429 {
			reports[li].Shed++
			if apiErr.RetryAfterHint() > 0 {
				reports[li].RetryAfterSeen++
			}
			return
		}
		reports[li].Errors++
		return
	}
	if sr.Deduped {
		reports[li].Deduped++
	} else {
		reports[li].Accepted++
	}
	*acceptedJobs = append(*acceptedJobs, accepted{id: sr.ID, lane: li, deduped: sr.Deduped})
}
