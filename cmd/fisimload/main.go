// Command fisimload drives an open-loop, mixed-priority load test
// against a running fisimd daemon and writes the measured report as
// JSON — scripts/bench_serve.sh uses it to produce BENCH_serve.json,
// the committed service-layer benchmark CI asserts SLOs against.
//
//	fisimload -addr http://localhost:8023 \
//	    -interactive-rate 4 -interactive-jobs 20 \
//	    -batch-rate 20 -batch-jobs 60 -o BENCH_serve.json
//
// Both lanes submit tiny single-cell grids whose seeds differ per
// submission (so nothing dedups away unless -dedup is set), interactive
// ones under the "interactive" priority and an optional API key per
// lane. The report carries per-lane shed counts, time-to-start and
// time-to-terminal percentiles from the server's own timestamps, and
// the lost-accepted-jobs invariant (must be zero on a healthy daemon).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"os"
	"time"

	"repro/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fisimload: ")
	addr := flag.String("addr", envOr("FISIMD_ADDR", "http://localhost:8023"), "fisimd base URL (or $FISIMD_ADDR)")
	iRate := flag.Float64("interactive-rate", 4, "interactive lane arrival rate, jobs/s")
	iJobs := flag.Int("interactive-jobs", 20, "interactive lane total submissions")
	iKey := flag.String("interactive-key", "interactive-tenant", "interactive lane X-API-Key")
	bRate := flag.Float64("batch-rate", 20, "batch lane arrival rate, jobs/s")
	bJobs := flag.Int("batch-jobs", 60, "batch lane total submissions")
	bKey := flag.String("batch-key", "batch-tenant", "batch lane X-API-Key")
	trials := flag.Int("trials", 4, "Monte-Carlo trials per submitted cell")
	seed := flag.Int64("seed", 1, "base RNG seed (varied per submission unless -dedup)")
	dedup := flag.Bool("dedup", false, "submit identical specs so the daemon dedups instead of executing")
	waitTimeout := flag.Duration("wait-timeout", 2*time.Minute, "bound on waiting for accepted jobs to go terminal")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall run deadline")
	out := flag.String("o", "", "write the JSON report here (default stdout)")
	flag.Parse()

	spec := func(priority string, laneSeed int64) func(i int) map[string]any {
		return func(i int) map[string]any {
			s := laneSeed
			if !*dedup {
				s += int64(i)
			}
			return map[string]any{
				"benches": []string{"median"}, "models": []string{"A"},
				"freqs": []float64{900}, "vdds": []float64{0.7},
				"trials": *trials, "seed": s, "priority": priority,
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	rep, err := loadgen.Run(ctx, loadgen.Config{
		Base: *addr,
		Lanes: []loadgen.LaneLoad{
			{Priority: "interactive", Rate: *iRate, Jobs: *iJobs, APIKey: *iKey, Spec: spec("interactive", *seed)},
			{Priority: "batch", Rate: *bRate, Jobs: *bJobs, APIKey: *bKey, Spec: spec("batch", *seed+1_000_000)},
		},
		WaitTimeout: *waitTimeout,
		Seed:        *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if rep.TotalLost > 0 {
		log.Fatalf("%d accepted jobs never reached a terminal state", rep.TotalLost)
	}
}

func envOr(k, def string) string {
	if v := os.Getenv(k); v != "" {
		return v
	}
	return def
}
