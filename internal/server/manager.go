// Package server is the batch-simulation service layer: a job manager
// that runs experiment-grid requests asynchronously on a pluggable
// execution Backend (the in-process mc worker pool today, see
// backend.go), and an HTTP/JSON API (see http.go and docs/API.md) that
// exposes it. It sits above internal/mc, internal/report and
// internal/artifact — the same position cmd/sweep occupies, but
// long-running: one core.System (so model, golden-trace and hazard
// caches amortize across every job the daemon ever serves) and one
// optional artifact store shared by all jobs.
//
// Jobs are deduplicated by content: a request is canonicalized
// (spec.go) and hashed together with the system fingerprint, and two
// clients submitting the same experiment share one execution and one
// result — the submit path returns the existing job. Completed jobs are
// retained in memory (bounded, LRU by completion) and their grids are
// checkpointed per cell to the artifact store, so even a job evicted
// from memory re-answers from warm cells in milliseconds when
// resubmitted. Cancellation propagates through context into the grid
// engine at trial granularity, and Shutdown drains: no new submissions,
// queued and running jobs finish (or are force-cancelled when the drain
// context expires), and blocked long-polls and progress streams return
// promptly instead of holding the drain open.
//
// Admission control makes the service multi-tenant and
// overload-tolerant (sched.go, tenant.go): per-client token-bucket rate
// limits and active-job quotas, two bounded priority lanes
// ("interactive"/"batch") with weighted-round-robin dispatch, and
// load-shedding that rejects — or displaces — lowest-priority work
// first, advertising a Retry-After derived from current queue depth and
// the observed per-cell throughput.
package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/progress"
	"repro/internal/report"
)

// Submission and lifecycle errors surfaced to clients.
var (
	// ErrQueueFull reports a full lane or global queue; the request was
	// shed (HTTP 429 with Retry-After).
	ErrQueueFull = errors.New("server: job queue full")
	// ErrRateLimited reports an exhausted per-client token bucket
	// (HTTP 429 with Retry-After).
	ErrRateLimited = errors.New("server: rate limit exceeded")
	// ErrQuotaExceeded reports a client at its active-job quota
	// (HTTP 429 with Retry-After).
	ErrQuotaExceeded = errors.New("server: active-job quota exceeded")
	// ErrDraining reports a manager that is shutting down and no longer
	// accepts jobs (HTTP 503).
	ErrDraining = errors.New("server: draining, not accepting jobs")
	// ErrNotFound reports an unknown job ID (HTTP 404).
	ErrNotFound = errors.New("server: no such job")
	// ErrNotFinished reports a result request for a job that has not
	// completed yet (HTTP 409).
	ErrNotFinished = errors.New("server: job not finished")
)

// OverloadError wraps an admission refusal with the advice the HTTP
// layer turns into a Retry-After header. Unwrap preserves the refusal
// identity, so errors.Is(err, ErrQueueFull) and friends keep working.
type OverloadError struct {
	Err        error
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.Err, e.RetryAfter.Round(time.Millisecond))
}

func (e *OverloadError) Unwrap() error { return e.Err }

// overload wraps err with retry advice, flooring at one second so
// clients never busy-loop on a zero hint.
func overload(err error, retry time.Duration) error {
	if retry < time.Second {
		retry = time.Second
	}
	return &OverloadError{Err: err, RetryAfter: retry}
}

// State is a job's lifecycle state. The machine is
// queued → running → {done, failed, canceled}; cancel requests move
// queued jobs terminal directly and running jobs through the grid
// engine's context, and load-shedding moves displaced queued jobs to
// canceled with a "shed:" cause.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// shedCause marks jobs that were admitted and later displaced by
// higher-priority work; it is the honest record load-shedding leaves.
const shedCause = "shed: displaced by higher-priority admission, resubmit later"

// Progress is one job progress snapshot as streamed to clients: the
// engine's trial/point counters plus the job state, so a single stream
// carries both liveness and completion.
type Progress struct {
	State       State `json:"state"`
	DoneTrials  int   `json:"done_trials"`
	TotalTrials int   `json:"total_trials"`
	DonePoints  int   `json:"done_points"`
	TotalPoints int   `json:"total_points"`
}

// Options configures a Manager. System is required; everything else
// defaults.
type Options struct {
	// System is the shared simulation stack; its model/golden/hazard
	// caches amortize across all jobs, and its fingerprint anchors job
	// dedup identity.
	System *core.System
	// Store, when non-nil, persists characterizations, traces, hazard
	// tables and grid cells; deduped resubmissions of completed grids
	// answer from it. It should be the same store attached to System.
	Store *artifact.Store
	// Backend executes jobs (default: GridBackend over System, Store and
	// Workers). Tests inject slow/flaky backends here; the ROADMAP's
	// remote-node coordinator slots in here too.
	Backend Backend
	// QueueCap bounds the number of jobs queued but not yet running
	// across all lanes (default 64); submissions beyond it are shed with
	// ErrQueueFull.
	QueueCap int
	// Lanes overrides per-lane caps and weights (keys LaneInteractive,
	// LaneBatch; defaults: cap = QueueCap, weights 4 and 1).
	Lanes map[string]LaneConfig
	// Tenants is the per-client admission table; the zero value is
	// unlimited for everyone.
	Tenants TenantsConfig
	// Parallel is the number of jobs executed concurrently (default 1:
	// each job already saturates the cores through the mc worker pool).
	Parallel int
	// Workers caps the mc worker pool per job (default NumCPU).
	Workers int
	// KeepJobs bounds retained terminal jobs (default 256); the oldest
	// completed jobs are evicted first. Queued and running jobs are never
	// evicted.
	KeepJobs int
	// Now is the clock (default time.Now); tests drive the token buckets
	// with a fake one.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.Parallel <= 0 {
		o.Parallel = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.KeepJobs <= 0 {
		o.KeepJobs = 256
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Backend == nil {
		o.Backend = GridBackend{System: o.System, Store: o.Store, Workers: o.Workers}
	}
	return o
}

// Stats counts manager traffic since start; it backs the /v1/stats
// endpoint and the dedup/admission integration tests.
type Stats struct {
	Submitted int64 `json:"submitted"` // accepted submissions, deduped included
	Deduped   int64 `json:"deduped"`   // submissions answered by an existing job
	Executed  int64 `json:"executed"`  // grid runs actually started
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	// Admission refusals. Shed counts submissions rejected because a
	// lane or the queue was full; Displaced counts *accepted* queued
	// jobs evicted to make room for higher-priority arrivals (they go
	// terminal with a "shed:" cause — never silently lost).
	Shed        int64 `json:"shed"`
	Displaced   int64 `json:"displaced"`
	RateLimited int64 `json:"rate_limited"`
	QuotaDenied int64 `json:"quota_denied"`
}

// Job is one submitted experiment. Mutable fields are guarded by the
// manager's mutex; the result document is immutable once the job is
// terminal.
type Job struct {
	ID          string
	Fingerprint string
	Spec        JobSpec // canonical

	client   string // submitting tenant (first submitter wins for quota accounting)
	lane     string // effective lane; promotion can raise it above Spec.Priority
	released bool   // tenant active-slot already given back

	state    State
	err      string
	created  time.Time
	started  time.Time
	finished time.Time

	cells       []mc.CellResult
	cachedCells int
	doc         *report.Document

	ctx    context.Context // cancelled by Cancel / Shutdown force-drain
	cancel context.CancelFunc
	done   chan struct{} // closed when terminal
	prog   *progress.Broadcaster[Progress]
}

// Status is the JSON status snapshot of a job.
type Status struct {
	ID          string     `json:"id"`
	Fingerprint string     `json:"fingerprint"`
	State       State      `json:"state"`
	Error       string     `json:"error,omitempty"`
	Client      string     `json:"client,omitempty"`
	Lane        string     `json:"lane,omitempty"`
	Spec        JobSpec    `json:"spec"`
	Created     time.Time  `json:"created"`
	Started     *time.Time `json:"started,omitempty"`
	Finished    *time.Time `json:"finished,omitempty"`
	Cells       int        `json:"cells,omitempty"`
	CachedCells int        `json:"cached_cells,omitempty"`
	Progress    *Progress  `json:"progress,omitempty"`
}

// Manager owns the job table, the dedup index, the priority-lane
// scheduler and the tenant registry, and executes jobs on
// Options.Parallel runner goroutines.
type Manager struct {
	opt Options

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []*Job          // insertion order, for terminal-job eviction
	byFP     map[string]*Job // live dedup index: queued/running/done jobs
	tenants  map[string]*tenant
	seq      int
	draining bool
	stats    Stats

	// Observed service time, for Retry-After advice: exponentially
	// weighted seconds-per-cell and cells-per-job over completed runs.
	// ewmaSeeded distinguishes "no history yet" from genuinely observed
	// values — a legitimate observation can be arbitrarily fast, and a
	// zero-valued sentinel would silently restart the average on it.
	ewmaSeeded   bool
	ewmaCellSec  float64
	ewmaJobCells float64

	sched   *scheduler
	closing chan struct{} // closed when Shutdown begins; unblocks waiters
	runners sync.WaitGroup
}

// NewManager starts a manager and its runner goroutines.
func NewManager(opt Options) *Manager {
	opt = opt.withDefaults()
	m := &Manager{
		opt:     opt,
		jobs:    make(map[string]*Job),
		byFP:    make(map[string]*Job),
		tenants: make(map[string]*tenant),
		sched:   newScheduler(opt.QueueCap, opt.Lanes),
		closing: make(chan struct{}),
	}
	for i := 0; i < opt.Parallel; i++ {
		m.runners.Add(1)
		go func() {
			defer m.runners.Done()
			for {
				j, ok := m.sched.pop()
				if !ok {
					return
				}
				m.runJob(j)
			}
		}()
	}
	return m
}

// Stats returns a snapshot of the traffic counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Lanes snapshots the scheduler lanes for /v1/stats.
func (m *Manager) Lanes() []LaneStatus { return m.sched.snapshot() }

// System returns the manager's simulation stack (for cache summaries).
func (m *Manager) System() *core.System { return m.opt.System }

// Backend returns the manager's execution backend; /v1/stats inspects
// it for the optional cluster counters.
func (m *Manager) Backend() Backend { return m.opt.Backend }

// Closing is closed when Shutdown begins; long-polls and progress
// streams select on it so a drain never waits for client timeouts.
func (m *Manager) Closing() <-chan struct{} { return m.closing }

// RetryAfter estimates how long until queued-ahead work clears: queue
// depth times the observed per-cell service time and cells-per-job,
// spread over the runner count. It is the Retry-After advice attached
// to every shed response (floored at 1s, capped at 5m).
func (m *Manager) RetryAfter() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retryAfterLocked()
}

func (m *Manager) retryAfterLocked() time.Duration {
	perJob := m.ewmaCellSec * m.ewmaJobCells
	if perJob <= 0 {
		perJob = 1 // no history yet: assume a small job
	}
	jobsAhead := float64(m.sched.depth())/float64(m.opt.Parallel) + 1
	d := time.Duration(jobsAhead * perJob * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	if d > 5*time.Minute {
		d = 5 * time.Minute
	}
	return d
}

// observeLocked folds a completed run into the service-time EWMAs.
func (m *Manager) observeLocked(dur time.Duration, cells int) {
	if cells <= 0 {
		cells = 1
	}
	const alpha = 0.3
	perCell := dur.Seconds() / float64(cells)
	if !m.ewmaSeeded {
		m.ewmaSeeded = true
		m.ewmaCellSec, m.ewmaJobCells = perCell, float64(cells)
		return
	}
	m.ewmaCellSec += alpha * (perCell - m.ewmaCellSec)
	m.ewmaJobCells += alpha * (float64(cells) - m.ewmaJobCells)
}

// releaseLocked gives a job's tenant slot back exactly once.
func (m *Manager) releaseLocked(j *Job) {
	if j.released {
		return
	}
	j.released = true
	if t, ok := m.tenants[j.client]; ok && t.active > 0 {
		t.active--
	}
}

// Submit canonicalizes and enqueues an anonymous job — the in-process
// convenience form of SubmitAs.
func (m *Manager) Submit(spec JobSpec) (*Job, bool, error) {
	return m.SubmitAs("", spec)
}

// SubmitAs canonicalizes and enqueues a job on behalf of a client.
// Admission order: the client's token bucket first (every submission
// costs a token, deduped ones included), then dedup — if a live job
// (queued, running or successfully completed) already carries the same
// fingerprint, that job is returned with deduped = true and nothing new
// runs (an interactive duplicate of a queued batch job promotes it) —
// then the client's active-job quota, then lane admission, which may
// shed the request (ErrQueueFull) or displace queued lower-priority
// work. Failed and cancelled jobs do not satisfy dedup — resubmitting
// one schedules a fresh run. Refusals carry Retry-After advice via
// OverloadError.
func (m *Manager) SubmitAs(client string, spec JobSpec) (*Job, bool, error) {
	c, err := spec.Canonicalize()
	if err != nil {
		return nil, false, err
	}
	fp := c.Fingerprint(m.opt.System.Fingerprint())
	if client == "" {
		client = anonClient
	}
	now := m.opt.Now()

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, false, ErrDraining
	}
	cfg := m.opt.Tenants.configFor(client)
	t := m.tenantLocked(client)
	if ok, retry := t.take(now, cfg); !ok {
		m.stats.RateLimited++
		m.mu.Unlock()
		return nil, false, overload(ErrRateLimited, retry)
	}
	if j, ok := m.byFP[fp]; ok {
		m.stats.Submitted++
		m.stats.Deduped++
		promote := j.state == StateQueued && laneOutranks(c.Priority, j.lane)
		if promote {
			j.lane = c.Priority
		}
		m.mu.Unlock()
		if promote {
			m.sched.promote(j, c.Priority)
		}
		return j, true, nil
	}
	if cfg.MaxActive > 0 && t.active >= cfg.MaxActive {
		m.stats.QuotaDenied++
		retry := m.retryAfterLocked()
		m.mu.Unlock()
		return nil, false, overload(ErrQuotaExceeded, retry)
	}
	m.seq++
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID:          fmt.Sprintf("j%06d", m.seq),
		Fingerprint: fp,
		Spec:        c,
		client:      client,
		lane:        c.Priority,
		state:       StateQueued,
		created:     now,
		ctx:         ctx,
		cancel:      cancel,
		done:        make(chan struct{}),
		prog:        progress.NewBroadcaster[Progress](),
	}
	j.prog.Publish(Progress{State: StateQueued})
	displaced, err := m.sched.push(j, j.lane)
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			m.stats.Shed++
		}
		retry := m.retryAfterLocked()
		m.mu.Unlock()
		cancel()
		return nil, false, overload(err, retry)
	}
	t.active++
	m.stats.Submitted++
	m.jobs[j.ID] = j
	m.order = append(m.order, j)
	m.byFP[fp] = j
	m.evictLocked()
	var final Progress
	if displaced != nil {
		m.stats.Displaced++
		final = m.terminateQueuedLocked(displaced, shedCause)
	}
	m.mu.Unlock()
	if displaced != nil {
		finishQueued(displaced, final)
	}
	return j, false, nil
}

// laneOutranks reports whether lane a is strictly higher priority than
// lane b (only interactive outranks batch in the fixed two-lane set).
func laneOutranks(a, b string) bool {
	return a == LaneInteractive && b != LaneInteractive
}

// terminateQueuedLocked moves a still-queued job (already out of the
// scheduler) to canceled with the given cause, releasing its dedup
// entry and tenant slot. The caller must finish the transition outside
// the lock with finishQueued.
func (m *Manager) terminateQueuedLocked(j *Job, cause string) Progress {
	j.state = StateCanceled
	j.err = cause
	j.finished = m.opt.Now()
	delete(m.byFP, j.Fingerprint)
	m.releaseLocked(j)
	return m.progressLocked(j)
}

// finishQueued completes a queued job's terminal transition outside the
// manager lock: release the context, deliver the final snapshot, close
// the stream and wake waiters.
func finishQueued(j *Job, final Progress) {
	j.cancel()
	j.prog.CloseWith(final)
	close(j.done)
}

// runJob executes one dequeued job to a terminal state on the backend.
func (m *Manager) runJob(j *Job) {
	m.mu.Lock()
	if j.state != StateQueued { // cancelled while queued
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = m.opt.Now()
	m.stats.Executed++
	m.mu.Unlock()
	j.prog.Publish(Progress{State: StateRunning})

	cells, err := m.opt.Backend.Run(j.ctx, j.Spec, func(p mc.Progress) {
		j.prog.Publish(Progress{
			State:       StateRunning,
			DoneTrials:  p.DoneTrials,
			TotalTrials: p.TotalTrials,
			DonePoints:  p.DonePoints,
			TotalPoints: p.TotalPoints,
		})
	})

	m.mu.Lock()
	j.finished = m.opt.Now()
	m.releaseLocked(j)
	switch {
	case errors.Is(err, context.Canceled):
		// Keyed off the run's own error, not ctx.Err(): a cancel that
		// lands after the grid completed still counts as done.
		j.state = StateCanceled
		j.err = context.Canceled.Error()
		m.stats.Canceled++
		delete(m.byFP, j.Fingerprint)
	case err != nil:
		j.state = StateFailed
		j.err = err.Error()
		m.stats.Failed++
		delete(m.byFP, j.Fingerprint)
	default:
		j.state = StateDone
		j.cells = cells
		for _, c := range cells {
			if c.Cached {
				j.cachedCells++
			}
		}
		j.doc = &report.Document{
			Meta: report.Meta{
				Tool:  "fisimd",
				Seed:  j.Spec.Seed,
				Cells: len(cells),
				Axes:  j.Spec.axesSummary(),
			},
			Series: report.FromCells(cells),
		}
		m.stats.Done++
		m.observeLocked(j.finished.Sub(j.started), len(cells))
	}
	final := m.progressLocked(j)
	m.mu.Unlock()

	j.prog.CloseWith(final)
	j.cancel() // release the context's resources
	close(j.done)
}

// progressLocked composes a job's current Progress snapshot under the
// manager lock.
func (m *Manager) progressLocked(j *Job) Progress {
	p, ok := j.prog.Last()
	if !ok {
		p = Progress{}
	}
	p.State = j.state
	return p
}

// evictLocked drops the oldest terminal jobs beyond KeepJobs.
func (m *Manager) evictLocked() {
	terminal := 0
	for _, j := range m.order {
		if j.state.Terminal() {
			terminal++
		}
	}
	if terminal <= m.opt.KeepJobs {
		return
	}
	kept := m.order[:0]
	for _, j := range m.order {
		if terminal > m.opt.KeepJobs && j.state.Terminal() {
			terminal--
			delete(m.jobs, j.ID)
			if m.byFP[j.Fingerprint] == j {
				delete(m.byFP, j.Fingerprint)
			}
			continue
		}
		kept = append(kept, j)
	}
	m.order = kept
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Status snapshots a job's public state.
func (m *Manager) Status(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return m.statusLocked(j), nil
}

func (m *Manager) statusLocked(j *Job) Status {
	st := Status{
		ID:          j.ID,
		Fingerprint: j.Fingerprint,
		State:       j.state,
		Error:       j.err,
		Client:      j.client,
		Lane:        j.lane,
		Spec:        j.Spec,
		Created:     j.created,
		Cells:       len(j.cells),
		CachedCells: j.cachedCells,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	p := m.progressLocked(j)
	st.Progress = &p
	return st
}

// List snapshots every retained job, oldest first.
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.order))
	for _, j := range m.order {
		out = append(out, m.statusLocked(j))
	}
	return out
}

// Result returns a finished job's result document. The document is
// built once at completion, so every client — including all deduped
// submitters — renders the same bytes.
func (m *Manager) Result(id string) (*report.Document, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	switch j.state {
	case StateDone:
		return j.doc, nil
	case StateFailed:
		return nil, fmt.Errorf("server: job failed: %s", j.err)
	case StateCanceled:
		return nil, fmt.Errorf("server: job canceled")
	}
	return nil, ErrNotFinished
}

// Cancel requests cancellation. Queued jobs go terminal immediately —
// their scheduler slot, dedup entry and tenant quota slot are all
// released right away, not at eviction — and running jobs stop at the
// next trial boundary through the backend's context. Cancelling a
// terminal job is a no-op returning false.
func (m *Manager) Cancel(id string) (bool, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return false, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		// Pull it out of the lane first so the slot frees immediately;
		// if a runner raced us and already popped it, the state change
		// below makes runJob skip it.
		m.sched.remove(j)
		final := m.terminateQueuedLocked(j, context.Canceled.Error())
		m.stats.Canceled++
		m.mu.Unlock()
		finishQueued(j, final)
		return true, nil
	case StateRunning:
		m.mu.Unlock()
		j.cancel()
		return true, nil
	}
	m.mu.Unlock()
	return false, nil
}

// Wait blocks until the job is terminal, ctx expires, or the manager
// begins shutting down, returning the final (or current) status. The
// shutdown case is what keeps long-polls from pinning a drain to the
// client's timeout.
func (m *Manager) Wait(ctx context.Context, id string) (Status, error) {
	j, err := m.Get(id)
	if err != nil {
		return Status{}, err
	}
	select {
	case <-j.done:
	case <-ctx.Done():
	case <-m.closing:
	}
	return m.Status(id)
}

// Subscribe attaches a progress observer to a job. The returned channel
// carries coalesced Progress snapshots and closes when the job is
// terminal (after delivering the terminal snapshot); for an
// already-terminal job it delivers exactly that snapshot. Always call
// cancel.
func (m *Manager) Subscribe(id string) (<-chan Progress, func(), error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, nil, ErrNotFound
	}
	if j.state.Terminal() {
		final := m.progressLocked(j)
		m.mu.Unlock()
		ch := make(chan Progress, 1)
		ch <- final
		close(ch)
		return ch, func() {}, nil
	}
	m.mu.Unlock()
	ch, cancel := j.prog.Subscribe()
	return ch, cancel, nil
}

// Shutdown drains the manager: no further submissions are accepted,
// queued and running jobs run to completion, and the call returns when
// every runner has stopped. Blocked Wait calls and progress streams are
// released immediately (Closing), so a drain never waits on a client's
// long-poll timeout. If ctx expires first, all remaining jobs are
// cancelled and Shutdown waits for the runners to observe it.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	close(m.closing)
	m.sched.close()
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.runners.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		for _, j := range m.order {
			if !j.state.Terminal() {
				j.cancel()
			}
		}
		m.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// axesSummary renders the canonical axes for report metadata.
func (s JobSpec) axesSummary() string {
	return fmt.Sprintf("bench=%v model=%v vdd=%v sigma=%v freqs=%d mode=%s",
		s.Benches, s.Models, s.Vdds, s.Sigmas, len(s.Freqs), s.Mode)
}

// ceilSeconds renders a duration as whole seconds for Retry-After
// headers, rounding up so the advice is never optimistic.
func ceilSeconds(d time.Duration) int {
	return int(math.Ceil(d.Seconds()))
}
