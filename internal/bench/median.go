package bench

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/dta"
)

// MedianN is the input size of the median kernel (Table 1: 129 values).
const MedianN = 129

// Median returns the paper's median benchmark: a full bubble sort of 129
// 16-bit values (no early exit, matching the fixed cycle count of
// Table 1), reporting the middle element. It is control-heavy: the inner
// loop is dominated by compares and branches.
func Median() *Benchmark {
	return &Benchmark{
		Name:       "median",
		MetricName: "relative difference",
		// Compares operate on the 16-bit data values.
		Profile:      dta.Profile{circuit.UnitCompare: "u16"},
		PaperKCycles: 216,
		OutSymbol:    "out",
		OutWords:     1,
		Metric:       RelativeErrorPct,
		QualityName:  "median exactness",
		Quality:      func(int64) QualityFunc { return RelErrQuality },
		Build:        buildMedian,
	}
}

func buildMedian(seed int64) (string, []uint32, error) {
	r := rng(seed)
	vals := make([]uint32, MedianN)
	for i := range vals {
		vals[i] = uint32(r.Intn(32767) + 1)
	}
	sorted := make([]int, MedianN)
	for i, v := range vals {
		sorted[i] = int(v)
	}
	sort.Ints(sorted)
	want := []uint32{uint32(sorted[MedianN/2])}

	src := fmt.Sprintf(`
; median of %d values via full bubble sort (no early exit)
	l.movhi r1,hi(arr)
	l.ori   r1,r1,lo(arr)
	l.sys 1                 ; open FI window: kernel begins
	l.addi  r2,r0,0         ; i = 0 (outer pass)
outer:
	l.sfgtsi r2,%d          ; i > N-2 ?
	l.bf    done
	l.add   r4,r1,r0        ; p = &arr[0]
	l.addi  r3,r0,0         ; j = 0
inner:
	l.lwz   r5,0(r4)
	l.lwz   r6,4(r4)
	l.sfgts r5,r6
	l.bnf   noswap
	l.sw    0(r4),r6
	l.sw    4(r4),r5
noswap:
	l.addi  r4,r4,4
	l.addi  r3,r3,1
	l.sfltsi r3,%d          ; j < N-1 ?
	l.bf    inner
	l.addi  r2,r2,1
	l.j     outer
done:
	l.sys 2                 ; close FI window
	l.lwz   r7,%d(r1)       ; median = arr[N/2]
	l.movhi r8,hi(out)
	l.ori   r8,r8,lo(out)
	l.sw    0(r8),r7
	l.sys 0
.data
out:
	.word 0
arr:
`, MedianN, MedianN-2, MedianN-1, 4*(MedianN/2))
	src += wordList(vals)
	return src, want, nil
}
