package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/mitigate"
)

// The Pareto renderings are pinned byte-for-byte against committed
// fixtures: any change to the mitigation arithmetic, the grouping, the
// front marking or the encoders that shifts a single digit shows up
// here. Regenerate after an intended change with:
//
//	go test ./internal/report/ -run Pareto -update
var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture %s (run with -update to create it): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from the committed fixture.\n--- got ---\n%s\n--- want ---\n%s\nRun with -update if the change is intended.",
			path, got, want)
	}
}

// paretoDoc builds a deterministic document through the real mitigation
// arithmetic (no simulator: the FIRate fallback path is pure float
// math) over a small hand-written frequency sweep per kernel.
func paretoDoc() *ParetoDoc {
	mk := func(bench string, f, fiRate, qmean float64) mc.CellResult {
		return mc.CellResult{
			Bench: bench,
			Model: core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010, FreqMHz: f},
			Point: mc.Point{
				FreqMHz: f, Trials: 100, KernelCycles: 4000,
				FIRate: fiRate, CorrectPct: 100 * qmean, FinishedPct: 100,
				QualityMean: qmean,
			},
		}
	}
	cells := []mc.CellResult{
		mk("median", 700, 0, 1),
		mk("median", 840, 0.02, 0.97),
		mk("median", 880, 0.35, 0.62),
		mk("kmeans", 700, 0, 1),
		mk("kmeans", 880, 0.35, 0.88),
	}
	rs := mitigate.Evaluate(nil, 42, cells, mitigate.Options{})
	return Pareto(Meta{Tool: "test", Seed: 42, Cells: len(cells)}, rs)
}

func TestParetoJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePareto(&buf, "json", paretoDoc()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "pareto.json.golden", buf.Bytes())
}

func TestParetoCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePareto(&buf, "csv", paretoDoc()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "pareto.csv.golden", buf.Bytes())
}

func TestParetoFrontMarking(t *testing.T) {
	d := paretoDoc()
	if len(d.Series) != 2 {
		t.Fatalf("series = %d, want 2 (median, kmeans)", len(d.Series))
	}
	for _, s := range d.Series {
		front := 0
		for _, p := range s.Points {
			if !p.OnFront {
				continue
			}
			front++
			// A front point must not be dominated by any other point.
			for _, q := range s.Points {
				if q.TotalEnergyPJ <= p.TotalEnergyPJ && q.EffQuality >= p.EffQuality &&
					(q.TotalEnergyPJ < p.TotalEnergyPJ || q.EffQuality > p.EffQuality) {
					t.Errorf("%s: dominated point on front: %+v dominated by %+v", s.Label, p, q)
				}
			}
		}
		if front == 0 {
			t.Errorf("%s: empty Pareto front", s.Label)
		}
	}
}

func TestParetoUnknownFormat(t *testing.T) {
	if err := WritePareto(&bytes.Buffer{}, "xml", &ParetoDoc{}); err == nil {
		t.Fatal("unknown format accepted")
	}
}
