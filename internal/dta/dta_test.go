package dta

import (
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/isa"
	"repro/internal/timing"
)

// Shared small-characterization fixture: building the ALU and running DTA
// is the expensive part, so tests share one characterizer with a short
// kernel.
var (
	fixOnce sync.Once
	fixALU  *circuit.ALU
	fixCh   *Characterizer
)

func fixture() *Characterizer {
	fixOnce.Do(func() {
		fixALU = circuit.New(circuit.DefaultConfig())
		fixCh = NewCharacterizer(fixALU, timing.DefaultVddDelay(),
			Config{Cycles: 768, Seed: 5})
	})
	return fixCh
}

func TestGenRegistry(t *testing.T) {
	for _, n := range GenNames() {
		if _, err := Gen(n); err != nil {
			t.Errorf("registered gen %q not resolvable", n)
		}
	}
	if _, err := Gen("nope"); err == nil {
		t.Errorf("unknown gen must error")
	}
}

func TestDefaultGenAssignments(t *testing.T) {
	cases := map[isa.Op]string{
		isa.OpAdd: "u32", isa.OpAddi: "imm16", isa.OpSub: "u32",
		isa.OpMul: "u32", isa.OpMuli: "imm16",
		isa.OpAndi: "zimm16", isa.OpOri: "zimm16",
		isa.OpSlli: "amt5", isa.OpSrl: "amt5",
		isa.OpSfgts: "u32", isa.OpSfgtsi: "imm16",
	}
	for op, want := range cases {
		if got := DefaultGen(op); got != want {
			t.Errorf("DefaultGen(%v) = %q, want %q", op, got, want)
		}
	}
}

func TestProfileOverride(t *testing.T) {
	p := Profile{circuit.UnitMul: "u8"}
	if got := GenFor(isa.OpMul, p); got != "u8" {
		t.Errorf("profile override not applied: %q", got)
	}
	if got := GenFor(isa.OpAdd, p); got != "u32" {
		t.Errorf("unrelated op affected by profile: %q", got)
	}
	if got := GenFor(isa.OpMul, nil); got != "u32" {
		t.Errorf("nil profile broke default: %q", got)
	}
}

func TestCharacterizationBasics(t *testing.T) {
	ch := fixture()
	c, err := ch.ForOp(isa.OpAdd, nil, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEndpoints() != circuit.Width {
		t.Errorf("add endpoints = %d, want %d", c.NumEndpoints(), circuit.Width)
	}
	if c.Cycles != 768 {
		t.Errorf("cycles = %d", c.Cycles)
	}
	if c.MaxPs <= 0 || c.MaxPs > fixALU.Units[circuit.UnitAdd].WorstPs+1e-9 {
		t.Errorf("MaxPs %v outside (0, staWorst %v]", c.MaxPs, fixALU.Units[circuit.UnitAdd].WorstPs)
	}
	// Every arrival bounded by STA.
	for e, arrs := range c.Arrivals {
		for _, a := range arrs {
			if a < 0 || a > fixALU.Units[circuit.UnitAdd].WorstPs+1e-9 {
				t.Fatalf("endpoint %d arrival %v out of range", e, a)
			}
		}
	}
	// Onset must be above the STA limit (over-scaling headroom exists).
	if c.OnsetMHz() <= fixALU.STALimitMHz() {
		t.Errorf("add onset %v MHz not above STA limit %v", c.OnsetMHz(), fixALU.STALimitMHz())
	}
}

func TestCompareHasFlagEndpoint(t *testing.T) {
	ch := fixture()
	c, err := ch.ForOp(isa.OpSfgts, nil, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEndpoints() != circuit.NumEndpoints {
		t.Errorf("compare endpoints = %d, want %d", c.NumEndpoints(), circuit.NumEndpoints)
	}
	flagArr := c.Arrivals[circuit.FlagEndpoint]
	any := false
	for _, a := range flagArr {
		if a > 0 {
			any = true
			break
		}
	}
	if !any {
		t.Errorf("flag endpoint never toggled during characterization")
	}
}

func TestMulFailsBeforeAdd(t *testing.T) {
	// The central structural claim (paper Figs. 2 and 4): the
	// multiplier's onset frequency is below the adder's, and 16-bit
	// operands push the adder's onset higher still.
	ch := fixture()
	mul, err := ch.ForOp(isa.OpMul, nil, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	add, err := ch.ForOp(isa.OpAdd, nil, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	add16, err := ch.At(Key{Unit: circuit.UnitAdd, Gen: "u16"}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if !(mul.OnsetMHz() < add.OnsetMHz()) {
		t.Errorf("mul onset %v not below add onset %v", mul.OnsetMHz(), add.OnsetMHz())
	}
	// With a short characterization kernel the onsets may coincide (the
	// same discrete low-bit worst path realized by both), but 16-bit
	// operands can never fail later than 32-bit ones ...
	if add.OnsetMHz() > add16.OnsetMHz() {
		t.Errorf("add32 onset %v above add16 onset %v", add.OnsetMHz(), add16.OnsetMHz())
	}
	// ... and the high sum endpoints (beyond the 17 bits a 16+16-bit
	// sum can reach) must never toggle under 16-bit operands.
	for e := 18; e < circuit.Width; e++ {
		if add16.CDFs[e].MaxPs() != 0 {
			t.Errorf("16-bit add toggled endpoint %d", e)
		}
	}
}

func TestHigherVoltageShiftsCDFRight(t *testing.T) {
	ch := fixture()
	lo, err := ch.ForOp(isa.OpMul, nil, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := ch.ForOp(isa.OpMul, nil, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !(hi.OnsetMHz() > lo.OnsetMHz()) {
		t.Errorf("0.8V onset %v not above 0.7V onset %v", hi.OnsetMHz(), lo.OnsetMHz())
	}
	// At a frequency between the onsets, 0.7 V violates and 0.8 V does
	// not, for the worst endpoint.
	fMid := (lo.OnsetMHz() + hi.OnsetMHz()) / 2
	period := circuit.PeriodPs(fMid)
	anyLo := false
	for e := range lo.CDFs {
		if lo.CDFs[e].ViolationProb(period) > 0 {
			anyLo = true
		}
		if hi.CDFs[e].ViolationProb(period) > 0 {
			t.Fatalf("0.8V endpoint %d violates below its onset", e)
		}
	}
	if !anyLo {
		t.Errorf("0.7V has no violations above its onset")
	}
}

func TestHighBitsFailEarlier(t *testing.T) {
	// Paper Fig. 2: bits of higher significance tend to fail earlier
	// (longer carry chains). Compare the max arrival of a high and a
	// low sum bit of the adder.
	ch := fixture()
	add, err := ch.ForOp(isa.OpAdd, nil, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	lo := add.CDFs[3].MaxPs()
	hi := add.CDFs[24].MaxPs()
	if !(hi > lo) {
		t.Errorf("bit24 max arrival %v not above bit3 %v", hi, lo)
	}
}

func TestCachingIsStable(t *testing.T) {
	ch := fixture()
	a, err := ch.ForOp(isa.OpAdd, nil, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ch.ForOp(isa.OpAddi, Profile{circuit.UnitAdd: "u32"}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same key characterized twice (cache miss)")
	}
	c, err := ch.ForOp(isa.OpAddi, nil, 0.7) // imm16 gen: different key
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Errorf("distinct keys shared a characterization")
	}
}

func TestPrewarm(t *testing.T) {
	ch := fixture()
	if err := ch.Prewarm(nil, 0.7); err != nil {
		t.Fatal(err)
	}
	// After prewarm every ALU op resolves instantly; just verify a few.
	for _, op := range []isa.Op{isa.OpAdd, isa.OpMul, isa.OpSfeq, isa.OpSrai, isa.OpXori} {
		c, err := ch.ForOp(op, nil, 0.7)
		if err != nil || c == nil {
			t.Fatalf("op %v not prewarmed: %v", op, err)
		}
	}
}

func TestMaxPerCycleConsistent(t *testing.T) {
	ch := fixture()
	c, err := ch.ForOp(isa.OpSub, nil, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for cyc := 0; cyc < c.Cycles; cyc++ {
		worst := 0.0
		for e := 0; e < c.NumEndpoints(); e++ {
			if a := c.Arrivals[e][cyc]; a > worst {
				worst = a
			}
		}
		if math.Abs(worst-c.MaxPerCycle[cyc]) > 1e-12 {
			t.Fatalf("cycle %d: MaxPerCycle %v != recomputed %v", cyc, c.MaxPerCycle[cyc], worst)
		}
	}
}

// GenNames feeds CLI help text and docs, so its order must be stable
// across runs (maps iterate in randomized order).
func TestGenNamesSorted(t *testing.T) {
	names := GenNames()
	if len(names) == 0 {
		t.Fatal("no registered generators")
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("GenNames not sorted: %v", names)
	}
	if !reflect.DeepEqual(names, GenNames()) {
		t.Errorf("GenNames not deterministic")
	}
}
