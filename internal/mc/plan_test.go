package mc

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/core"
)

// planGrid is the multi-axis grid the plan/subset tests share: two
// sigma values over three frequencies — six cells, two series.
func planGrid() Grid {
	return Grid{
		Spec: Spec{
			System: system(),
			Bench:  bench.Median(),
			Model:  core.ModelSpec{Kind: "C", Vdd: 0.7},
			Trials: 6,
			Seed:   9,
		},
		Axes: Axes{Sigmas: []float64{0, 0.010}, Freqs: []float64{690, 710, 730}},
	}
}

// Any partition of a grid into subsets, executed through RunCells and
// merged back by index, must reproduce the full-grid run bit for bit —
// the invariant the cluster coordinator's lease/merge cycle rests on.
func TestRunCellsSubsetsMatchFullGrid(t *testing.T) {
	g := planGrid()
	full, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 6 {
		t.Fatalf("grid cells = %d, want 6", len(full))
	}

	// An uneven, out-of-order partition: the merge must not depend on
	// lease geometry or on which "worker" ran a cell first.
	partitions := [][]int{{4, 1}, {0, 5, 2}, {3}}
	merged := make([]CellResult, len(full))
	for _, part := range partitions {
		sub, err := g.RunCells(context.Background(), part)
		if err != nil {
			t.Fatal(err)
		}
		if len(sub) != len(part) {
			t.Fatalf("subset returned %d cells, want %d", len(sub), len(part))
		}
		for i, idx := range part {
			merged[idx] = sub[i]
		}
	}
	if !reflect.DeepEqual(full, merged) {
		t.Errorf("merged subsets != full grid:\n%+v\n%+v", merged, full)
	}
}

func TestRunCellsRejectsOutOfRangeIndex(t *testing.T) {
	g := planGrid()
	if _, err := g.RunCells(context.Background(), []int{6}); err == nil {
		t.Fatal("index past the enumeration accepted")
	}
	if _, err := g.RunCells(context.Background(), []int{-1}); err == nil {
		t.Fatal("negative index accepted")
	}
}

// PlanCells must agree with the engine's own checkpoint identity: after
// a full run over a store, planning the same grid with Resume finds
// every cell checkpointed under the planned key, with the Point the run
// produced.
func TestPlanCellsKeysMatchCheckpoints(t *testing.T) {
	st, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := planGrid()
	g.Store = st

	plan, err := g.PlanCells()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 6 {
		t.Fatalf("planned %d cells, want 6", len(plan))
	}
	seen := make(map[string]bool)
	for i, pc := range plan {
		if pc.Index != i {
			t.Errorf("plan[%d].Index = %d", i, pc.Index)
		}
		if pc.Key == "" || seen[pc.Key] {
			t.Errorf("plan[%d]: key %q empty or duplicated", i, pc.Key)
		}
		seen[pc.Key] = true
		if pc.Point != nil {
			t.Errorf("plan[%d]: checkpoint reported before any run", i)
		}
	}

	full, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	g.Resume = true
	plan2, err := g.PlanCells()
	if err != nil {
		t.Fatal(err)
	}
	for i, pc := range plan2 {
		if pc.Key != plan[i].Key {
			t.Errorf("plan[%d]: key changed across runs", i)
		}
		if pc.Point == nil {
			t.Errorf("plan[%d]: no checkpoint under planned key after a full run", i)
			continue
		}
		if !reflect.DeepEqual(*pc.Point, full[i].Point) {
			t.Errorf("plan[%d]: checkpointed Point differs from the run's:\n%+v\n%+v",
				i, *pc.Point, full[i].Point)
		}
	}
}
