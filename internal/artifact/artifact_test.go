package artifact

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{0, 1, 2, 0xFF, 0x80, 7}
	if err := st.Put("kind", "key|a=1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get("kind", "key|a=1")
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload drifted: %x != %x", got, payload)
	}
	s := st.Stats()
	if s.Hits != 1 || s.Puts != 1 || s.Misses != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestMissAndKeyIsolation(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get("kind", "absent"); ok || err != nil {
		t.Fatalf("expected clean miss, got ok=%v err=%v", ok, err)
	}
	if err := st.Put("kind", "k1", []byte("one")); err != nil {
		t.Fatal(err)
	}
	// Same key under a different kind is a distinct artifact.
	if _, ok, _ := st.Get("other", "k1"); ok {
		t.Error("kind does not partition the key space")
	}
}

func TestVersionBumpRejected(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-write a blob framed at a future format version at the exact
	// path Get will consult.
	blob, err := encode("kind", "key", []byte("payload"), Version+1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.path("kind", "key"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, ok, err := st.Get("kind", "key")
	if ok {
		t.Fatal("version-bumped blob was accepted")
	}
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestTornBlobIsRejectedNotMisread(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.path("kind", "key"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ok, err := st.Get("kind", "key")
	if ok || err == nil {
		t.Fatalf("torn blob: ok=%v err=%v, want rejection with error", ok, err)
	}
}

func TestGobPayloadRoundTrip(t *testing.T) {
	type payload struct {
		F []float64
		S string
	}
	in := payload{F: []float64{1.5, -0.0, 3.1415926535}, S: "x"}
	b, err := EncodeGob(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := DecodeGob(b, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.F) != 3 || out.F[2] != in.F[2] || out.S != "x" {
		t.Fatalf("round-trip drifted: %+v", out)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}
