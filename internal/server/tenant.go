// Per-client identity, token-bucket rate limits and in-flight quotas —
// the admission-control half that is about who is submitting rather
// than what is queued. A client is whatever string the transport hands
// the manager (the HTTP layer uses the X-API-Key header when present
// and the remote address host otherwise; in-process callers pass any
// label, empty meaning "anonymous"). Every client gets the default
// TenantConfig unless the tenants table carries an override; zero
// limits mean unlimited, so an unconfigured manager behaves exactly
// like the pre-admission-control service.

package server

import (
	"math"
	"net"
	"net/http"
	"time"
)

// TenantConfig is one client's admission limits. The zero value is
// unlimited on every axis.
type TenantConfig struct {
	// Rate is the sustained submission rate in requests per second; 0
	// disables rate limiting. Every submission costs one token, deduped
	// submissions included — dedup makes a duplicate cheap to serve, not
	// free to ask for.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the token-bucket depth (default: Rate rounded up, at
	// least 1): how many submissions may land back-to-back before the
	// sustained rate applies.
	Burst int `json:"burst,omitempty"`
	// MaxActive bounds the client's live jobs (queued + running); 0
	// disables the quota. Terminal transitions — done, failed, canceled,
	// shed, including DELETE of a still-queued job — release the slot
	// immediately.
	MaxActive int `json:"max_active,omitempty"`
}

// TenantsConfig is the admission table a daemon is started with: a
// default applied to every client plus per-client overrides keyed by
// client ID ("key:<api-key>" or "addr:<host>", matching ClientID).
type TenantsConfig struct {
	Default TenantConfig            `json:"default"`
	Clients map[string]TenantConfig `json:"clients,omitempty"`
}

// configFor resolves a client's effective limits.
func (tc TenantsConfig) configFor(client string) TenantConfig {
	if c, ok := tc.Clients[client]; ok {
		return c
	}
	return tc.Default
}

// anonClient labels submissions that arrive with no identity at all
// (in-process callers); they share one bucket.
const anonClient = "anonymous"

// ClientID derives the manager-facing client identity of an HTTP
// request: the X-API-Key header when present (so one tenant keeps its
// identity across hosts), otherwise the remote address host (so
// unauthenticated clients are at least separated per machine).
func ClientID(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil && host != "" {
		return "addr:" + host
	}
	if r.RemoteAddr != "" {
		return "addr:" + r.RemoteAddr
	}
	return anonClient
}

// tenant is one client's runtime admission state. All fields are
// guarded by the manager's mutex; the token bucket takes explicit
// timestamps so tests drive it with a fake clock.
type tenant struct {
	id     string
	tokens float64
	last   time.Time
	active int // queued + running jobs
}

// take attempts to consume one submission token at time now under cfg,
// refilling lazily since the last call. On refusal it reports how long
// until a token accrues — the Retry-After the HTTP layer advertises.
func (t *tenant) take(now time.Time, cfg TenantConfig) (ok bool, retry time.Duration) {
	if cfg.Rate <= 0 {
		return true, 0
	}
	burst := cfg.Burst
	if burst <= 0 {
		burst = int(math.Ceil(cfg.Rate))
		if burst < 1 {
			burst = 1
		}
	}
	if t.last.IsZero() {
		// First sighting: a full bucket.
		t.tokens = float64(burst)
	} else if dt := now.Sub(t.last).Seconds(); dt > 0 {
		t.tokens = math.Min(float64(burst), t.tokens+dt*cfg.Rate)
	}
	t.last = now
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	need := (1 - t.tokens) / cfg.Rate
	return false, time.Duration(need * float64(time.Second))
}

// tenantLocked returns (creating if needed) the client's runtime state.
// Callers hold m.mu.
func (m *Manager) tenantLocked(client string) *tenant {
	t, ok := m.tenants[client]
	if !ok {
		t = &tenant{id: client}
		m.tenants[client] = t
	}
	return t
}
