// The HTTP/JSON surface of the batch-simulation service. Routes (all
// under /v1, documented in docs/API.md):
//
//	POST   /v1/jobs             submit a JobSpec; dedups by fingerprint
//	GET    /v1/jobs             list retained jobs
//	GET    /v1/jobs/{id}        status; ?wait=DUR long-polls for a terminal state
//	GET    /v1/jobs/{id}/result finished result, JSON or CSV (?format= / Accept)
//	GET    /v1/jobs/{id}/events SSE progress stream, terminal event closes it
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/stats            manager/lane counters + system/store cache traffic
//	GET    /v1/healthz          liveness
//
// Clients identify themselves with an X-API-Key header (falling back to
// the remote address, see ClientID); admission refusals — rate limit,
// quota, shed — answer 429 with a Retry-After header derived from queue
// depth and observed throughput.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/report"
)

// SubmitResponse answers POST /v1/jobs.
type SubmitResponse struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	State       State  `json:"state"`
	// Deduped marks a submission that was answered by an existing job
	// with the same fingerprint instead of scheduling a new run.
	Deduped bool `json:"deduped"`
}

// StatsResponse answers GET /v1/stats.
type StatsResponse struct {
	Jobs Stats `json:"jobs"`
	// Lanes is the scheduler snapshot: per-lane depth, bounds, weights
	// and shed counts, priority order.
	Lanes []LaneStatus `json:"lanes"`
	// RetryAfterSec is the current overload advice — what a shed request
	// would be told right now.
	RetryAfterSec int `json:"retry_after_sec"`
	// Cache is the system's cache-traffic summary (characterizations,
	// golden traces, hazard tables), the same line the CLI tools print.
	Cache string `json:"cache"`
	// Store holds artifact-store hit/miss/put counters when a store is
	// attached.
	Store *storeStats `json:"store,omitempty"`
	// Cluster holds distributed-execution counters when the manager runs
	// on a cluster coordinator backend (fisimd -workers=...).
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

type storeStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Puts   int64 `json:"puts"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler exposes a Manager over HTTP. Use it with any http.Server;
// cmd/fisimd wires it to a listener and a drain-on-signal loop.
func Handler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) { handleSubmit(m, w, r) })
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) { writeJSON(w, http.StatusOK, m.List()) })
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) { handleStatus(m, w, r) })
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) { handleResult(m, w, r) })
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) { handleEvents(m, w, r) })
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) { handleCancel(m, w, r) })
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) { handleStats(m, w) })
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var ov *OverloadError
	switch {
	case errors.As(err, &ov):
		// Admission refusal: shed, rate-limited or over quota. 429 plus
		// the manager's Retry-After advice in whole seconds (ceiling —
		// never optimistic).
		w.Header().Set("Retry-After", strconv.Itoa(ceilSeconds(ov.RetryAfter)))
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrNotFinished):
		code = http.StatusConflict
	}
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// maxSpecBody bounds a submit body; a JobSpec within the grid-size
// limits is far smaller.
const maxSpecBody = 1 << 20

func handleSubmit(m *Manager, w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decode spec: %v", err)})
		return
	}
	var ov *OverloadError
	j, deduped, err := m.SubmitAs(ClientID(r), spec)
	if err != nil {
		if errors.As(err, &ov) || errors.Is(err, ErrQueueFull) || errors.Is(err, ErrDraining) {
			writeError(w, err)
		} else {
			// Canonicalization errors are client errors.
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		}
		return
	}
	st, err := m.Status(j.ID)
	if err != nil {
		writeError(w, err)
		return
	}
	code := http.StatusAccepted
	if deduped {
		code = http.StatusOK
	}
	writeJSON(w, code, SubmitResponse{ID: j.ID, Fingerprint: j.Fingerprint, State: st.State, Deduped: deduped})
}

func handleStatus(m *Manager, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, err := time.ParseDuration(waitStr)
		if err != nil || d < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("wait: bad duration %q", waitStr)})
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		st, err := m.Wait(ctx, id)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
		return
	}
	st, err := m.Status(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// resultFormat negotiates the result encoding: an explicit ?format=
// wins, then the Accept header, then JSON.
func resultFormat(r *http.Request) (string, error) {
	if f := r.URL.Query().Get("format"); f != "" {
		if f != "json" && f != "csv" {
			return "", fmt.Errorf("format: want json or csv, got %q", f)
		}
		return f, nil
	}
	if accept := r.Header.Get("Accept"); strings.Contains(accept, "text/csv") {
		return "csv", nil
	}
	return "json", nil
}

func handleResult(m *Manager, w http.ResponseWriter, r *http.Request) {
	format, err := resultFormat(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	doc, err := m.Result(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if format == "csv" {
		w.Header().Set("Content-Type", "text/csv")
	} else {
		w.Header().Set("Content-Type", "application/json")
	}
	_ = report.Write(w, format, doc)
}

func handleStats(m *Manager, w http.ResponseWriter) {
	resp := StatsResponse{
		Jobs:          m.Stats(),
		Lanes:         m.Lanes(),
		RetryAfterSec: ceilSeconds(m.RetryAfter()),
		Cache:         m.System().CacheSummary(),
	}
	if st := m.System().ArtifactStore(); st != nil {
		s := st.Stats()
		resp.Store = &storeStats{Hits: s.Hits, Misses: s.Misses, Puts: s.Puts}
	}
	if cr, ok := m.Backend().(ClusterReporter); ok {
		cs := cr.ClusterStats()
		resp.Cluster = &cs
	}
	writeJSON(w, http.StatusOK, resp)
}

func handleCancel(m *Manager, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	cancelled, err := m.Cancel(id)
	if err != nil {
		writeError(w, err)
		return
	}
	st, err := m.Status(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"canceled": cancelled, "state": st.State})
}

// handleEvents streams job progress as Server-Sent Events: one
// "progress" event per coalesced snapshot and, when the job goes
// terminal, a final "done" event carrying the full status, after which
// the stream closes. A client attaching to a terminal job receives the
// "done" event immediately.
func handleEvents(m *Manager, w http.ResponseWriter, r *http.Request) {
	ch, cancel, err := m.Subscribe(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	emit := func(event string, v any) {
		blob, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, blob)
		flusher.Flush()
	}
	for {
		select {
		case p, ok := <-ch:
			if !ok {
				return
			}
			if p.State.Terminal() {
				if st, err := m.Status(r.PathValue("id")); err == nil {
					emit("done", st)
				} else {
					emit("done", p)
				}
				return
			}
			emit("progress", p)
		case <-r.Context().Done():
			return
		case <-m.Closing():
			// The daemon is draining: end the stream now instead of
			// holding http.Server.Shutdown hostage to this client. The
			// job may still finish; a reconnect (or the store) has it.
			return
		}
	}
}
