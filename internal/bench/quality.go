// Application-level quality extractors: every benchmark maps a finished
// run's output words to a normalized quality in [0, 1], so a trial is
// no longer just correct/incorrect — the paper's whole angle is the
// impact of timing faults on *application* performance, and "one bit
// off in one matrix element" and "garbage in every element" are very
// different application outcomes. The extractors are pure functions of
// (got, want) output words (plus, where the metric needs the input
// data, the benchmark's input seed): kmeans scores the clustering
// distortion ratio, matrix multiplication an SNR-derived score, median
// its relative-error exactness, Dijkstra the mean path-cost relative
// error, and everything else (checksum, microkernels, custom kernels)
// strict bit-exactness.

package bench

import "math"

// QualityFunc maps a finished run's output words to a normalized
// application-level quality in [0, 1]: 1.0 means the output is as good
// as the golden run (bit-exact outputs always score exactly 1.0), 0
// means application-useless. Implementations are total over arbitrary
// got words — faulty runs write garbage — and never return NaN or
// infinities.
type QualityFunc func(got, want []uint32) float64

// QualityAt returns the benchmark's quality extractor bound to one
// input seed (metrics that need the input data — the kmeans distortion
// — regenerate it from the seed; everything else ignores it).
// Benchmarks without an explicit Quality constructor score strict
// bit-exactness, the conservative default for custom kernels.
func (b *Benchmark) QualityAt(inputSeed int64) QualityFunc {
	if b.Quality == nil {
		return BitExactQuality
	}
	return b.Quality(inputSeed)
}

// clamp01 pins a quality score into [0, 1] and maps NaN (0/0 corner
// cases in ratio metrics) to 0 — no extractor may leak NaN/Inf.
func clamp01(q float64) float64 {
	if math.IsNaN(q) || q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// BitExactQuality scores 1.0 for bit-exact outputs and 0 otherwise —
// the quality notion of the checksum and instruction microkernels,
// whose outputs have no graceful degradation to measure, and the
// default for kernels without a registered extractor.
func BitExactQuality(got, want []uint32) float64 {
	if len(got) != len(want) {
		return 0
	}
	for i := range got {
		if got[i] != want[i] {
			return 0
		}
	}
	return 1
}

// SNRQuality scores the output signal-to-noise ratio, mapped from the
// linear power ratio S/N onto [0, 1] as S/(S+N) (monotone in SNR, 1.0
// at zero noise): S is the golden output's signal power, N the error
// power of the deviation, both over signed 32-bit interpretations —
// the matrix-multiplication quality metric. Adding error power (e.g.
// corrupting one more previously-correct word) strictly lowers the
// score; SNRdB exposes the same ratio in decibels for reports.
func SNRQuality(got, want []uint32) float64 {
	s, n, ok := signalNoisePower(got, want)
	if !ok {
		return 0
	}
	if n == 0 {
		return 1 // bit-exact (or zero-signal exact): no noise at all
	}
	if s == 0 {
		return 0
	}
	return clamp01(s / (s + n))
}

// SNRdB returns the output SNR in decibels (10·log10(S/N)). Bit-exact
// outputs have no noise: the result is +Inf, which callers rendering
// reports should treat as "exact". Mismatched lengths or zero signal
// with nonzero noise return -Inf.
func SNRdB(got, want []uint32) float64 {
	s, n, ok := signalNoisePower(got, want)
	if !ok || (s == 0 && n > 0) {
		return math.Inf(-1)
	}
	if n == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(s/n)
}

func signalNoisePower(got, want []uint32) (s, n float64, ok bool) {
	if len(got) != len(want) || len(got) == 0 {
		return 0, 0, false
	}
	for i := range got {
		w := float64(int32(want[i]))
		d := float64(int32(got[i])) - w
		s += w * w
		n += d * d
	}
	return s, n, true
}

// RelErrQuality scores one minus the capped relative error of the
// single-word output — the median benchmark's exactness metric: 1.0
// when the reported median is exact, falling linearly to 0 at 100%
// relative error.
func RelErrQuality(got, want []uint32) float64 {
	return clamp01(1 - RelativeErrorPct(got, want)/100)
}

// PathCostQuality scores the mean per-pair path-cost relative error of
// the Dijkstra distance matrix, each pair's error capped at 100%:
// quality 1.0 means every minimum distance is exact, and a single
// corrupted pair among the 100 costs at most 1% of quality — unlike
// the boolean verdict, which a single off-by-one distance already
// fails. A zero golden distance (the diagonal) scores exact-or-wrong.
func PathCostQuality(got, want []uint32) float64 {
	if len(got) != len(want) || len(got) == 0 {
		return 0
	}
	var errSum float64
	for i := range got {
		w := float64(want[i])
		g := float64(got[i])
		switch {
		case got[i] == want[i]:
			// exact: no error
		case w == 0:
			errSum += 1
		default:
			e := math.Abs(g-w) / w
			if e > 1 {
				e = 1
			}
			errSum += e
		}
	}
	return clamp01(1 - errSum/float64(len(got)))
}

// kmeansQuality builds the k-means distortion-ratio extractor for one
// input seed: the inputs are regenerated from the seed, and a
// membership vector is scored by its clustering distortion (sum of
// squared distances of every point to the centroid — the mean — of its
// assigned cluster). Quality is the golden-to-actual distortion ratio
// clamped into [0, 1]: 1.0 for the golden membership (or any equally
// good or better clustering — a faulty run that lucks into a lower
// distortion is not penalized), falling as misassignments move points
// away from their natural clusters. Garbage membership words (outside
// [0, K)) are charged the maximum squared point distance.
func kmeansQuality(inputSeed int64) QualityFunc {
	px, py := kmeansInputs(inputSeed)
	return func(got, want []uint32) float64 {
		if len(got) != KMeansPoints || len(want) != KMeansPoints {
			// Not a membership vector of this benchmark (custom harness
			// input): degrade to strict bit-exactness so the "bit-exact
			// scores exactly 1.0" contract stays total.
			return BitExactQuality(got, want)
		}
		dw := kmeansDistortion(px, py, want)
		dg := kmeansDistortion(px, py, got)
		if dg == 0 {
			return 1
		}
		return clamp01(dw / dg)
	}
}

// kmeansMaxSqDist is the largest possible squared distance between two
// points of the 8-bit coordinate space, charged for invalid membership
// words.
const kmeansMaxSqDist = 2 * 255 * 255

// kmeansDistortion computes the clustering distortion of a membership
// vector over the given points: centroids are the float means of each
// cluster's assigned points, distortion the sum of squared
// point-to-centroid distances. Invalid memberships contribute the
// worst-case squared distance and never drag a centroid.
func kmeansDistortion(px, py []uint32, member []uint32) float64 {
	var sx, sy [KMeansK]float64
	var cnt [KMeansK]int
	for i, m := range member {
		if m < KMeansK {
			sx[m] += float64(px[i])
			sy[m] += float64(py[i])
			cnt[m]++
		}
	}
	var d float64
	for i, m := range member {
		if m >= KMeansK {
			d += kmeansMaxSqDist
			continue
		}
		cx := sx[m] / float64(cnt[m])
		cy := sy[m] / float64(cnt[m])
		dx := float64(px[i]) - cx
		dy := float64(py[i]) - cy
		d += dx*dx + dy*dy
	}
	return d
}
