// Package fi implements the paper's four timing-error injection models
// behind a single interface (Table 2 of the paper):
//
//	model A  — fixed-probability random bit flips (no timing data)
//	model B  — deterministic per-endpoint STA period violation
//	model B+ — model B with supply-voltage noise modulating path delays
//	model C  — the proposed statistical model: per-instruction,
//	           per-endpoint violation probabilities from DTA CDFs,
//	           rescaled every cycle by the sampled supply noise
//
// A Model is immutable and shareable; NewTrial binds it to a
// trial-private RNG, producing an injector compatible with the
// cpu.Injector interface (matched structurally, so the packages stay
// decoupled).
package fi

import (
	"math"
	"math/bits"
	"math/rand"
	"sort"

	"repro/internal/circuit"
	"repro/internal/dta"
	"repro/internal/isa"
	"repro/internal/timing"
)

// Semantics selects what a violated endpoint flip-flop captures.
type Semantics uint8

// Fault semantics. The paper flips register bits (FlipBit); StaleCapture
// keeps the previously latched value at violated endpoints, the other
// physically plausible outcome of a setup violation, and is exercised by
// the ablation benches.
const (
	FlipBit Semantics = iota
	StaleCapture
)

// String names the semantics.
func (s Semantics) String() string {
	if s == StaleCapture {
		return "stale-capture"
	}
	return "flip-bit"
}

// Sampling selects how model C draws violated endpoint sets.
type Sampling uint8

// Sampling modes. Independent evaluates each endpoint against its own
// CDF, the paper-literal reading of Sec. 3.4. Joint bootstraps whole
// characterization cycles, preserving the correlation between endpoints
// that share path segments.
const (
	Independent Sampling = iota
	Joint
)

// String names the sampling mode.
func (s Sampling) String() string {
	if s == Joint {
		return "joint"
	}
	return "independent"
}

// Injector mirrors cpu.Injector; see that type for the contract.
type Injector interface {
	Inject(op isa.Op, result, prevResult uint32, flag, prevFlag bool) (uint32, bool, int)
}

// Model is an immutable injection model bound to one operating point.
type Model interface {
	// Name identifies the model in reports ("A", "B", "B+", "C").
	Name() string
	// NewTrial returns a fresh injector drawing randomness from rng.
	NewTrial(rng *rand.Rand) Injector
}

// apply realizes the configured fault semantics for a set of violated
// endpoints. The returned count is the number of endpoint violations
// (the paper's "FIs"), independent of whether the captured value
// happened to coincide with the correct one.
//
// Result endpoints follow the configured semantics (the paper flips
// register bits). The flag endpoint — our extension that makes compares
// architecturally vulnerable — is treated as a metastable capture under
// FlipBit semantics: the flop resolves to a uniformly random value.
// Deterministic inversion would make heavily over-scaled compares behave
// like correct compares with inverted conditions, letting counted loops
// terminate cleanly and programs "finish" again far beyond total failure,
// which is neither physical nor what the paper observes.
func apply(sem Semantics, rng *rand.Rand, viol uint32, flagViol bool, result, prev uint32, flag, prevFlag bool) (uint32, bool, int) {
	n := bits.OnesCount32(viol)
	if flagViol {
		n++
	}
	if n == 0 {
		return result, flag, 0
	}
	out, outFlag := result, flag
	switch sem {
	case FlipBit:
		out = result ^ viol
		if flagViol {
			outFlag = rng.Float64() < 0.5
		}
	case StaleCapture:
		out = result&^viol | prev&viol
		if flagViol {
			outFlag = prevFlag
		}
	}
	return out, outFlag, n
}

// noiseScale precomputes the per-cycle delay modulation factor
// m = Factor(V+dv)/Factor(V) over the clipped noise range, so the hot
// path replaces a math.Pow with a table interpolation.
type noiseScale struct {
	sigma float64
	clip  float64
	table []float64 // m over dv in [-clip*sigma, +clip*sigma]
}

func newNoiseScale(model timing.VddDelay, v float64, noise timing.Noise) *noiseScale {
	ns := &noiseScale{sigma: noise.Sigma, clip: noise.Clip}
	if noise.Sigma == 0 {
		return ns
	}
	const steps = 2048
	ns.table = make([]float64, steps+1)
	lo := -noise.Clip * noise.Sigma
	hi := +noise.Clip * noise.Sigma
	for i := 0; i <= steps; i++ {
		dv := lo + (hi-lo)*float64(i)/steps
		ns.table[i] = model.FactorRel(v, dv)
	}
	return ns
}

// sample draws a noise value and returns the delay factor m for this
// cycle (1 when no noise is configured).
func (ns *noiseScale) sample(rng *rand.Rand) float64 {
	if ns.sigma == 0 {
		return 1
	}
	dv := rng.NormFloat64() * ns.sigma
	lim := ns.clip * ns.sigma
	if dv > lim {
		dv = lim
	} else if dv < -lim {
		dv = -lim
	}
	pos := (dv + lim) / (2 * lim) * float64(len(ns.table)-1)
	i := int(pos)
	if i >= len(ns.table)-1 {
		return ns.table[len(ns.table)-1]
	}
	frac := pos - float64(i)
	return ns.table[i]*(1-frac) + ns.table[i+1]*frac
}

// ---------------------------------------------------------------------
// Model A

// ModelA injects purely random bit flips with a fixed per-endpoint,
// per-cycle probability, with no relation to timing, voltage or
// instruction type beyond targeting the EX-stage endpoints.
type ModelA struct {
	// Prob is the per-endpoint flip probability per eligible cycle.
	Prob float64
	Sem  Semantics
}

// Name implements Model.
func (m *ModelA) Name() string { return "A" }

// NewTrial implements Model.
func (m *ModelA) NewTrial(rng *rand.Rand) Injector {
	return &modelAInjector{cfg: m, rng: rng}
}

type modelAInjector struct {
	cfg *ModelA
	rng *rand.Rand
}

func (in *modelAInjector) Inject(op isa.Op, result, prev uint32, flag, prevFlag bool) (uint32, bool, int) {
	var viol uint32
	for e := 0; e < circuit.Width; e++ {
		if in.rng.Float64() < in.cfg.Prob {
			viol |= 1 << uint(e)
		}
	}
	flagViol := isa.IsCompare(op) && in.rng.Float64() < in.cfg.Prob
	return apply(in.cfg.Sem, in.rng, viol, flagViol, result, prev, flag, prevFlag)
}

// ---------------------------------------------------------------------
// Models B and B+

// ModelB injects deterministically whenever the clock period (modulated
// by supply noise for B+) violates the static worst-case path delay to an
// endpoint, for every ALU instruction regardless of type — the paper's
// pessimistic static model (Sec. 3.2/3.3). Sigma = 0 yields model B;
// sigma > 0 yields model B+.
type ModelB struct {
	sem      Semantics
	periodPs float64
	noise    *noiseScale
	sigma    float64

	// thresholds[i] is the delay factor m above which endpoint
	// order[i] violates; ascending. cumMask[i] is the violation mask
	// when thresholds[0..i] are all exceeded.
	thresholds []float64
	cumMask    []uint32
	cumFlag    []bool
}

// NewModelB builds a model B/B+ instance for one operating point.
func NewModelB(alu *circuit.ALU, model timing.VddDelay, vdd, fMHz, sigma float64, sem Semantics) *ModelB {
	period := circuit.PeriodPs(fMHz)
	factor := model.Factor(vdd)
	worst := alu.WorstEndpointPsAt(factor)
	setup := alu.Config.SetupPs * factor

	m := &ModelB{
		sem:      sem,
		periodPs: period,
		sigma:    sigma,
		noise:    newNoiseScale(model, vdd, timing.NewNoise(sigma)),
	}
	// Endpoint e violates iff (worst_e + setup) * mNoise > period,
	// i.e. mNoise > period / (worst_e + setup).
	type ep struct {
		thr  float64
		bit  int
		flag bool
	}
	eps := make([]ep, 0, circuit.NumEndpoints)
	for e := 0; e < circuit.Width; e++ {
		eps = append(eps, ep{thr: period / (worst[e] + setup), bit: e})
	}
	eps = append(eps, ep{thr: period / (worst[circuit.FlagEndpoint] + setup), flag: true})
	sort.Slice(eps, func(i, j int) bool { return eps[i].thr < eps[j].thr })
	var mask uint32
	fl := false
	for _, e := range eps {
		if e.flag {
			fl = true
		} else {
			mask |= 1 << uint(e.bit)
		}
		m.thresholds = append(m.thresholds, e.thr)
		m.cumMask = append(m.cumMask, mask)
		m.cumFlag = append(m.cumFlag, fl)
	}
	return m
}

// Name implements Model.
func (m *ModelB) Name() string {
	if m.sigma > 0 {
		return "B+"
	}
	return "B"
}

// FirstFIMHz returns the lowest frequency at which this operating point
// can inject at all: the STA limit for model B, shifted down by the
// worst-case noise droop for B+ (the paper's 661/588 MHz anchors).
func (m *ModelB) FirstFIMHz() float64 {
	// Smallest threshold corresponds to the worst endpoint.
	worstPeriod := m.periodPs / m.thresholds[0] // = worst + setup at V
	mMax := 1.0
	if m.noise.sigma > 0 {
		mMax = m.noise.table[0] // largest slowdown at -clip*sigma
	}
	return 1e6 / (worstPeriod * mMax)
}

// NewTrial implements Model.
func (m *ModelB) NewTrial(rng *rand.Rand) Injector {
	return &modelBInjector{cfg: m, rng: rng}
}

type modelBInjector struct {
	cfg *ModelB
	rng *rand.Rand
}

func (in *modelBInjector) Inject(op isa.Op, result, prev uint32, flag, prevFlag bool) (uint32, bool, int) {
	c := in.cfg
	mNoise := c.noise.sample(in.rng)
	// Find how many thresholds are exceeded.
	lo, hi := 0, len(c.thresholds)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.thresholds[mid] < mNoise {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return result, flag, 0
	}
	viol := c.cumMask[lo-1]
	flagViol := c.cumFlag[lo-1] && isa.IsCompare(op)
	return apply(c.sem, in.rng, viol, flagViol, result, prev, flag, prevFlag)
}

// ---------------------------------------------------------------------
// Model C

// ModelC is the paper's statistical fault-injection model: violation
// probabilities per endpoint, conditioned on the instruction, evaluated
// from DTA CDFs that are rescaled every cycle by the sampled supply
// noise (Fig. 3 of the paper).
type ModelC struct {
	sem      Semantics
	sampling Sampling
	periodPs float64
	noise    *noiseScale
	sigma    float64

	tables [isa.NumOps]*opTable
}

// opTable holds the per-instruction probability grids over the effective
// period axis (period / noise factor), at 1 ps resolution.
type opTable struct {
	ch     *dta.Characterization
	nEP    int
	maxPs  float64 // beyond this effective period nothing violates
	stepPs float64
	pNone  []float64
	pBit   [][]float64 // [endpoint][grid index]
	active []int       // endpoints with nonzero probability anywhere
}

// ModelCConfig carries model C construction parameters.
type ModelCConfig struct {
	Vdd      float64
	FreqMHz  float64
	Sigma    float64
	Profile  dta.Profile
	Sem      Semantics
	Sampling Sampling
}

// NewModelC builds the statistical model for one operating point; the
// required characterizations run (and cache) on first use.
func NewModelC(ch *dta.Characterizer, cfg ModelCConfig) (*ModelC, error) {
	m := &ModelC{
		sem:      cfg.Sem,
		sampling: cfg.Sampling,
		periodPs: circuit.PeriodPs(cfg.FreqMHz),
		sigma:    cfg.Sigma,
		noise:    newNoiseScale(ch.Model, cfg.Vdd, timing.NewNoise(cfg.Sigma)),
	}
	built := map[dta.Key]*opTable{}
	for _, op := range isa.AllOps() {
		if !isa.IsALU(op) {
			continue
		}
		key := dta.KeyFor(op, cfg.Profile)
		t, ok := built[key]
		if !ok {
			c, err := ch.At(key, cfg.Vdd)
			if err != nil {
				return nil, err
			}
			t = newOpTable(c)
			built[key] = t
		}
		m.tables[op] = t
	}
	return m, nil
}

func newOpTable(c *dta.Characterization) *opTable {
	t := &opTable{
		ch:     c,
		nEP:    c.NumEndpoints(),
		maxPs:  c.MaxPs + c.SetupPs,
		stepPs: 1,
	}
	n := int(math.Ceil(t.maxPs/t.stepPs)) + 2
	t.pNone = make([]float64, n)
	t.pBit = make([][]float64, t.nEP)
	anyProb := make([]bool, t.nEP)
	for e := 0; e < t.nEP; e++ {
		t.pBit[e] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		period := float64(i) * t.stepPs
		pN := 1.0
		for e := 0; e < t.nEP; e++ {
			p := c.CDFs[e].ViolationProb(period)
			t.pBit[e][i] = p
			pN *= 1 - p
			if p > 0 {
				anyProb[e] = true
			}
		}
		t.pNone[i] = pN
	}
	for e, a := range anyProb {
		if a {
			t.active = append(t.active, e)
		}
	}
	return t
}

// Name implements Model.
func (m *ModelC) Name() string { return "C" }

// NewTrial implements Model.
func (m *ModelC) NewTrial(rng *rand.Rand) Injector {
	return &modelCInjector{cfg: m, rng: rng}
}

// OnsetMHz returns, per ALU op, the zero-noise frequency at which the
// first violations appear (used by instruction characterization reports).
func (m *ModelC) OnsetMHz(op isa.Op) float64 {
	t := m.tables[op]
	if t == nil {
		return math.Inf(1)
	}
	return 1e6 / t.maxPs
}

type modelCInjector struct {
	cfg *ModelC
	rng *rand.Rand
}

func (in *modelCInjector) Inject(op isa.Op, result, prev uint32, flag, prevFlag bool) (uint32, bool, int) {
	c := in.cfg
	t := c.tables[op]
	if t == nil {
		return result, flag, 0
	}
	mNoise := c.noise.sample(in.rng)
	eff := c.periodPs / mNoise
	if eff >= t.maxPs {
		return result, flag, 0
	}
	var viol uint32
	var flagViol bool
	switch c.sampling {
	case Independent:
		idx := int(eff / t.stepPs)
		if idx < 0 {
			idx = 0
		}
		if in.rng.Float64() < t.pNone[idx] {
			return result, flag, 0
		}
		// At least one endpoint violates; sample the subset
		// conditioned on non-emptiness by rejection.
		for {
			for _, e := range t.active {
				if in.rng.Float64() < t.pBit[e][idx] {
					if e == circuit.FlagEndpoint {
						flagViol = true
					} else {
						viol |= 1 << uint(e)
					}
				}
			}
			if viol != 0 || flagViol {
				break
			}
		}
	case Joint:
		j := in.rng.Intn(t.ch.Cycles)
		if t.ch.MaxPerCycle[j]+t.ch.SetupPs <= eff {
			return result, flag, 0
		}
		for e := 0; e < t.nEP; e++ {
			if t.ch.Arrivals[e][j]+t.ch.SetupPs > eff {
				if e == circuit.FlagEndpoint {
					flagViol = true
				} else {
					viol |= 1 << uint(e)
				}
			}
		}
	}
	// Only compares latch the flag endpoint.
	if !isa.IsCompare(op) {
		flagViol = false
	}
	return apply(c.sem, in.rng, viol, flagViol, result, prev, flag, prevFlag)
}

// ---------------------------------------------------------------------

// NullModel never injects; it produces golden runs through the same
// machinery.
type NullModel struct{}

// Name implements Model.
func (NullModel) Name() string { return "none" }

// NewTrial implements Model.
func (NullModel) NewTrial(*rand.Rand) Injector { return nullInjector{} }

type nullInjector struct{}

func (nullInjector) Inject(_ isa.Op, r, _ uint32, f, _ bool) (uint32, bool, int) {
	return r, f, 0
}
