package mc

import (
	"context"
	"errors"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

// TestRunContextCancelAborts pins the cancellation contract: a grid run
// under an already-expiring context stops scheduling trials and returns
// the context's error instead of a result set.
func TestRunContextCancelAborts(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
		Trials: 400,
		Seed:   1,
	}
	ctx, cancel := context.WithCancel(context.Background())
	grid := Grid{Spec: spec, Axes: Axes{Freqs: []float64{700, 750, 800}}}

	// Cancel from the first progress callback: the engine must observe it
	// and abort long before 3x400 trials complete.
	fired := false
	grid.Spec.Progress = func(Progress) {
		if !fired {
			fired = true
			cancel()
		}
	}
	cells, err := grid.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled grid: got cells=%d err=%v, want context.Canceled", len(cells), err)
	}

	// An adaptive grid cancelled mid-run must report the cancellation,
	// never pass truncated (under-sampled) points off as a completed
	// result: points whose Wilson decision would extend stay open, so
	// the engine can tell a truncated grid from a finished one.
	aspec := spec
	aspec.Trials = 0
	aspec.TrialsMin, aspec.TrialsMax = 16, 400
	// One worker: after the cancel lands, the rest of the first batch is
	// provably unscheduled, so the grid is truncated no matter how the
	// Wilson decisions would have gone.
	aspec.Workers = 1
	actx, acancel := context.WithCancel(context.Background())
	afired := false
	aspec.Progress = func(Progress) {
		if !afired {
			afired = true
			acancel()
		}
	}
	if _, err := (Grid{Spec: aspec, Axes: Axes{Freqs: []float64{700, 750, 800}}}).RunContext(actx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled adaptive grid: err=%v, want context.Canceled", err)
	}

	// A pre-cancelled context aborts before any cell is resolved.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := (Grid{Spec: spec, Axes: Axes{Freqs: []float64{700}}}).RunContext(ctx2); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled grid: err=%v, want context.Canceled", err)
	}
}

func TestFreqRange(t *testing.T) {
	got := FreqRange(700, 900, 50)
	want := []float64{700, 750, 800, 850, 900}
	if len(got) != len(want) {
		t.Fatalf("FreqRange(700,900,50) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FreqRange(700,900,50) = %v", got)
		}
	}
	// Float accumulation drift must not drop the endpoint.
	if pts := FreqRange(650, 651, 0.1); len(pts) != 11 || pts[len(pts)-1] < 650.9999 {
		t.Errorf("FreqRange(650,651,0.1) = %d points, last %v", len(pts), pts[len(pts)-1])
	}
	// A step below float resolution at lo must terminate, not spin.
	if pts := FreqRange(1e20, 1e20, 1); len(pts) != 1 {
		t.Errorf("sub-ulp step: %d points", len(pts))
	}
	if FreqRange(700, 800, 0) != nil {
		t.Error("zero step accepted")
	}
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]Mode{
		"": ModeAuto, "auto": ModeAuto,
		"first-fault": ModeFirstFault, "firstfault": ModeFirstFault,
		"scan": ModeScan, "replay": ModeScan, "full": ModeFull,
	} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode(bogus) accepted")
	}
}
