// Benchmark harness: one testing.B benchmark per table and figure of the
// paper (run the cmd/paperrepro binary for full-fidelity regeneration;
// these benches exercise the identical code paths at reduced scale so
// they finish in seconds and can be profiled), plus ablation benches for
// the design choices called out in DESIGN.md.
package repro

import (
	"io"
	"sync"
	"testing"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fi"
	"repro/internal/mc"
)

var (
	sysOnce sync.Once
	sysInst *core.System
)

// benchSystem shares one reduced-characterization system across benches.
func benchSystem() *core.System {
	sysOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.DTA.Cycles = 2048
		sysInst = core.New(cfg)
	})
	return sysInst
}

func benchOptions() experiments.Options {
	return experiments.Options{
		System: benchSystem(),
		Out:    io.Discard,
		Scale:  0.08,
		Seed:   1,
	}
}

func BenchmarkTable1(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		experiments.Table2(o)
	}
}

func BenchmarkFig1(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	o := benchOptions()
	o.Scale = 0.04
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	o := benchOptions()
	o.Scale = 0.04
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	o := benchOptions()
	o.Scale = 0.04
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(o); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Ablation benches: quantify the cost/behaviour of the design choices.

// ablationSpec runs the median kernel in the transition region.
func ablationSpec(model core.ModelSpec) mc.Spec {
	return mc.Spec{
		System: benchSystem(),
		Bench:  bench.Median(),
		Model:  model,
		Trials: 8,
		Seed:   1,
	}
}

// BenchmarkAblationFaultSemantics compares flip-bit (the paper's choice)
// against stale-capture endpoint semantics.
func BenchmarkAblationFaultSemantics(b *testing.B) {
	for _, sem := range []fi.Semantics{fi.FlipBit, fi.StaleCapture} {
		sem := sem
		b.Run(sem.String(), func(b *testing.B) {
			spec := ablationSpec(core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010, Sem: sem})
			for i := 0; i < b.N; i++ {
				pt, err := mc.Run(spec, 840)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pt.CorrectPct, "correct%")
			}
		})
	}
}

// BenchmarkAblationSampling compares the paper-literal independent
// per-endpoint CDF sampling against joint (bootstrap) cycle sampling.
func BenchmarkAblationSampling(b *testing.B) {
	for _, s := range []fi.Sampling{fi.Independent, fi.Joint} {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			spec := ablationSpec(core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010, Sampling: s})
			for i := 0; i < b.N; i++ {
				pt, err := mc.Run(spec, 840)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pt.FIRate, "FI/kCycle")
			}
		})
	}
}

// BenchmarkAblationInstrAware contrasts the instruction-aware model C
// against the instruction-blind static models at the same operating
// point (the core comparison of the paper).
func BenchmarkAblationInstrAware(b *testing.B) {
	for _, kind := range []string{"C", "B+"} {
		kind := kind
		b.Run("model"+kind, func(b *testing.B) {
			spec := ablationSpec(core.ModelSpec{Kind: kind, Vdd: 0.7, Sigma: 0.010})
			for i := 0; i < b.N; i++ {
				pt, err := mc.Run(spec, 690)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pt.FinishedPct, "finished%")
			}
		})
	}
}

// ---------------------------------------------------------------------
// Sweep-engine benches: the multi-frequency sweep through the shared
// worker pool with cached models (BenchmarkSweepEngine) against the
// original point-at-a-time path that rebuilds the model per point
// (BenchmarkSweepSerial). Many frequencies with few trials each is the
// engine's best case: the serial path can use at most trials-per-point
// cores between barriers, the engine keeps every core busy across the
// whole sweep.

func sweepBenchInputs() (mc.Spec, []float64) {
	spec := mc.Spec{
		System: benchSystem(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
		Trials: 4,
		Seed:   1,
	}
	var freqs []float64
	for f := 690.0; f <= 910; f += 20 {
		freqs = append(freqs, f)
	}
	return spec, freqs
}

func BenchmarkSweepEngine(b *testing.B) {
	spec, freqs := sweepBenchInputs()
	for i := 0; i < b.N; i++ {
		if _, err := mc.Sweep(spec, freqs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepSerial(b *testing.B) {
	spec, freqs := sweepBenchInputs()
	for i := 0; i < b.N; i++ {
		if _, err := mc.SweepSerial(spec, freqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepAdaptive runs the same sweep under adaptive trial
// allocation: clean and hopeless points stop at the Wilson decision,
// boundary points run to the budget.
func BenchmarkSweepAdaptive(b *testing.B) {
	spec, freqs := sweepBenchInputs()
	spec.Trials = 0
	spec.TrialsMin = 4
	spec.TrialsMax = 32
	for i := 0; i < b.N; i++ {
		if _, err := mc.Sweep(spec, freqs); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Trial-path benches on a sub-PoFF model-C point, where most trials
// never inject a single fault: first-fault sampling
// (BenchmarkPointFirstFault, the default path — one uniform draw and a
// binary search per fault-free trial) against the golden-trace replay
// scan (BenchmarkPointReplay — one injector query per recorded ALU
// cycle) against full per-trial ISS execution (BenchmarkPointFull).
// Acceptance bars: scan >= 2x over full, first-fault >= 10x over scan.

func replayBenchSpec() mc.Spec {
	return mc.Spec{
		System: benchSystem(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
		Trials: 16,
		Seed:   1,
	}
}

func BenchmarkPointFirstFault(b *testing.B) {
	spec := replayBenchSpec()
	for i := 0; i < b.N; i++ {
		if _, err := mc.Run(spec, 700); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPointReplay(b *testing.B) {
	spec := replayBenchSpec()
	spec.Mode = mc.ModeScan
	for i := 0; i < b.N; i++ {
		if _, err := mc.Run(spec, 700); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPointFull(b *testing.B) {
	spec := replayBenchSpec()
	for i := 0; i < b.N; i++ {
		if _, err := mc.RunFull(spec, 700); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Batched-execution benches on a faulting-heavy above-PoFF model-C
// point of the two-phase checksum kernel, where ~95% of trials fork
// thousands of cycles past the last checkpoint: the batched default
// (order-statistics planning plus shared-prefix walkers) against the
// per-trial first-fault path (checkpoint restore and golden replay per
// trial). Workers is pinned so the committed BENCH_batch.json numbers
// are comparable across machines of different widths. Acceptance bar:
// batched >= 5x over per-trial first-fault (scripts/bench_batch.sh
// asserts it in CI from a fresh run).

func batchBenchSpec() mc.Spec {
	return mc.Spec{
		System:  benchSystem(),
		Bench:   bench.Checksum(),
		Model:   core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
		Trials:  200,
		Workers: 4,
		Seed:    1,
	}
}

func BenchmarkChecksumBatched(b *testing.B) {
	spec := batchBenchSpec()
	if _, err := mc.Run(spec, 840); err != nil { // warm golden + hazard caches
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.Run(spec, 840); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChecksumFirstFault(b *testing.B) {
	spec := batchBenchSpec()
	spec.Mode = mc.ModeFirstFault
	if _, err := mc.Run(spec, 840); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.Run(spec, 840); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridWarmVsCold measures the artifact store's warm-start win:
// Cold builds a fresh system and an empty cache directory per iteration
// (paying DTA characterization, golden-trace recording, and every
// trial), Warm replays the identical grid from a populated store with a
// fresh system (file reads only). The ratio is the per-process cost the
// persistent cache removes.
func BenchmarkGridWarmVsCold(b *testing.B) {
	gridOver := func(st *artifact.Store, resume bool) error {
		cfg := core.DefaultConfig()
		cfg.DTA.Cycles = 512
		sys := core.New(cfg)
		sys.AttachStore(st)
		_, err := mc.Grid{
			Spec: mc.Spec{
				System: sys,
				Bench:  bench.Median(),
				Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
				Trials: 8,
				Seed:   2,
			},
			Axes:   mc.Axes{Freqs: []float64{700, 740}},
			Store:  st,
			Resume: resume,
		}.Run()
		return err
	}
	b.Run("Cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := artifact.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			if err := gridOver(st, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Warm", func(b *testing.B) {
		st, err := artifact.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		if err := gridOver(st, false); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := gridOver(st, true); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkISS measures raw simulator throughput (cycles/sec) on the
// dijkstra kernel without fault injection.
func BenchmarkISS(b *testing.B) {
	spec := mc.Spec{
		System: benchSystem(),
		Bench:  bench.Dijkstra(),
		Model:  core.ModelSpec{Kind: "none"},
		Trials: 1,
		Seed:   1,
	}
	var cycles float64
	for i := 0; i < b.N; i++ {
		pt, err := mc.Run(spec, 707)
		if err != nil {
			b.Fatal(err)
		}
		cycles += pt.KernelCycles
	}
	b.ReportMetric(cycles/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkModelCInjection measures the per-cycle cost of the model C
// hot path on the matmul kernel in the failing region.
func BenchmarkModelCInjection(b *testing.B) {
	spec := mc.Spec{
		System: benchSystem(),
		Bench:  bench.MatMult16(),
		Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
		Trials: 4,
		Seed:   1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := mc.Run(spec, 800); err != nil {
			b.Fatal(err)
		}
	}
}
