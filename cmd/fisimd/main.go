// Command fisimd is the batch-simulation daemon: a long-running HTTP
// service that accepts experiment-grid jobs (the same grids cmd/sweep
// runs one-shot), executes them asynchronously on the shared mc worker
// pool, deduplicates identical requests by content fingerprint, and
// streams progress over SSE. One core.System serves every job, so
// model, golden-trace and hazard caches — and, with -cache-dir, the
// persistent artifact store — amortize across the daemon's lifetime:
// the first job of a benchmark pays characterization, every later job
// warm-starts, and a resubmitted completed grid answers from cached
// cells in milliseconds.
//
// Multi-tenant admission control (see docs/API.md "Admission control"):
// clients are identified by X-API-Key (or remote address), rate-limited
// and quota-bounded per the -tenants table (or the -rate/-burst/
// -max-active defaults), and scheduled through two bounded priority
// lanes — interactive ahead of batch under a weighted round-robin, with
// overload shed as 429 + Retry-After instead of a hard queue-full.
//
//	fisimd -addr :8023 -cache-dir /var/cache/fisim
//	fisimd -addr :8023 -parallel 2 -queue 128 -dta 4096
//	fisimd -addr :8023 -rate 5 -burst 10 -max-active 8 -tenants tenants.json
//
// See docs/API.md for the HTTP API and cmd/fisimctl for the client.
// SIGINT/SIGTERM drain gracefully: running and queued jobs finish
// (bounded by -drain-timeout), blocked long-polls and SSE streams are
// released immediately, then the listener closes.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("fisimd: ")
	addr := flag.String("addr", ":8023", "listen address")
	cacheDir := flag.String("cache-dir", "", "artifact cache directory (characterizations, traces, hazards, grid cells)")
	dtaCycles := flag.Int("dta", 8192, "DTA characterization cycles")
	workers := flag.Int("workers", 0, "mc worker goroutines per job (0 = NumCPU)")
	parallel := flag.Int("parallel", 1, "jobs executed concurrently")
	queueCap := flag.Int("queue", 64, "bounded job queue capacity (across lanes)")
	batchCap := flag.Int("batch-queue", 0, "batch lane queue bound (0 = -queue)")
	interactiveCap := flag.Int("interactive-queue", 0, "interactive lane queue bound (0 = -queue)")
	interactiveWeight := flag.Int("interactive-weight", 4, "interactive dequeues per batch dequeue under load")
	keepJobs := flag.Int("keep", 256, "terminal jobs retained in memory")
	rate := flag.Float64("rate", 0, "default per-client submission rate limit, req/s (0 = unlimited)")
	burst := flag.Int("burst", 0, "default per-client token-bucket burst (0 = rate, min 1)")
	maxActive := flag.Int("max-active", 0, "default per-client active-job quota (0 = unlimited)")
	tenantsFile := flag.String("tenants", "", "JSON tenants table overriding the defaults per client (see docs/API.md)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "graceful drain bound on shutdown")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.DTA.Cycles = *dtaCycles
	sys := core.New(cfg)

	var store *artifact.Store
	if *cacheDir != "" {
		var err error
		if store, err = artifact.Open(*cacheDir); err != nil {
			log.Fatal(err)
		}
		sys.AttachStore(store)
		log.Printf("artifact store: %s", store.Dir())
	}

	tenants := server.TenantsConfig{
		Default: server.TenantConfig{Rate: *rate, Burst: *burst, MaxActive: *maxActive},
	}
	if *tenantsFile != "" {
		blob, err := os.ReadFile(*tenantsFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.Unmarshal(blob, &tenants); err != nil {
			log.Fatalf("tenants %s: %v", *tenantsFile, err)
		}
		log.Printf("tenants: default %+v, %d overrides", tenants.Default, len(tenants.Clients))
	}

	m := server.NewManager(server.Options{
		System:   sys,
		Store:    store,
		QueueCap: *queueCap,
		Lanes: map[string]server.LaneConfig{
			server.LaneInteractive: {Cap: *interactiveCap, Weight: *interactiveWeight},
			server.LaneBatch:       {Cap: *batchCap, Weight: 1},
		},
		Tenants:  tenants,
		Parallel: *parallel,
		Workers:  *workers,
		KeepJobs: *keepJobs,
	})
	srv := &http.Server{Addr: *addr, Handler: server.Handler(m)}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		s := <-sig
		log.Printf("%v: draining (bound %s)", s, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			log.Printf("drain: %v (remaining jobs cancelled)", err)
		}
		log.Printf("cache: %s", sys.CacheSummary())
		_ = srv.Shutdown(context.Background())
	}()

	log.Printf("listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
