// Pause-at-query execution and copy-on-write forking.
//
// The batched Monte-Carlo trial path (internal/mc) walks one shared
// golden prefix per group of fault trials: a "walker" core restores the
// checkpoint image once, advances golden execution to each trial's fork
// query with RunToQuery, and hands each trial a Fork of itself over a
// cloned memory. KernelALUCycles counts exactly the injector queries
// issued so far (one per FI-eligible ALU cycle inside the window), so
// it doubles as the absolute query index the walker pauses on.

package cpu

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// willQuery reports whether the instruction the core is about to issue
// would query the injector: the FI window is open and the next fetch
// decodes to an FI-eligible ALU op. It never mutates state (fetches are
// not counted and prefer the predecoded text image).
func (c *CPU) willQuery() bool {
	if !c.InWindow {
		return false
	}
	in, err := c.fetch(c.PC)
	return err == nil && in.Op != isa.OpInvalid && isa.IsALU(in.Op)
}

// RunToQuery executes until the core is about to issue injector query n
// (0-based over the whole run, i.e. KernelALUCycles == n and the next
// instruction queries), then returns StatusRunning with that
// instruction NOT yet executed. A core already paused at query n
// returns immediately. Any terminal status (exit, trap, watchdog) is
// returned as-is; callers walking a golden trace treat that as an
// internal inconsistency, since every trace query lies strictly before
// the recorded end of the run.
func (c *CPU) RunToQuery(n uint64) Status {
	for c.status == StatusRunning {
		if c.KernelALUCycles >= n && c.willQuery() {
			return StatusRunning
		}
		c.step()
	}
	return c.status
}

// Fork returns a copy of the core bound to the given memory and
// injector, with fault accounting zeroed and trace recording detached.
// The memory must already hold a byte-identical image of c.Mem
// (mem.CloneFrom); the fork then behaves exactly like a core Restored
// from the nearest checkpoint and run golden up to this point — the
// contract the batched trial path relies on for bit-identical results.
func (c *CPU) Fork(m *mem.Memory, inj Injector) *CPU {
	f := *c
	f.Mem = m
	f.inj = inj
	f.trace = nil
	f.FIBits, f.FIEvents = 0, 0
	return &f
}
