// Command fisimctl is the thin client for the fisimd batch-simulation
// daemon: it submits experiment-grid jobs, polls or streams their
// progress, and fetches results, speaking the plain HTTP/JSON API of
// docs/API.md — anything it does can be reproduced with curl.
//
//	fisimctl -addr http://localhost:8023 submit -bench median -model C \
//	    -lo 690 -hi 730 -step 20 -trials 8 -wait -format csv
//	fisimctl submit -bench median -priority batch -trials 100 ...
//	fisimctl -api-key team-a status j000001
//	fisimctl result j000001 -format csv -o out.csv
//	fisimctl watch j000001
//	fisimctl cancel j000001
//	fisimctl stats
//
// Requests ride on internal/client's retry layer: transient failures
// (connection errors, 429 shed/rate-limit responses, 502/503/504) are
// retried with jittered exponential backoff, honoring the daemon's
// Retry-After advice. Retrying a submission is safe by construction —
// fisimd dedups by content fingerprint, so a replayed spec lands on the
// already-scheduled job instead of double-running the grid. -retries 1
// disables retrying.
//
// submit prints the job ID (and, with -wait, blocks until the job is
// terminal and prints the result). Result documents include each
// point's application-quality distribution (mean/P50/P99 plus a
// Wilson-style interval) in both the JSON and CSV encodings — see
// docs/API.md for the field names. Exit status is non-zero on failed
// or cancelled jobs.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/client"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fisimctl: ")
	addr := flag.String("addr", envOr("FISIMD_ADDR", "http://localhost:8023"), "fisimd base URL (or $FISIMD_ADDR)")
	apiKey := flag.String("api-key", envOr("FISIMD_API_KEY", ""), "tenant API key, sent as X-API-Key (or $FISIMD_API_KEY)")
	retries := flag.Int("retries", 6, "attempts per request incl. the first (1 = no retry)")
	timeout := flag.Duration("timeout", 0, "overall deadline for the command (0 = none)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fisimctl [-addr URL] [-api-key KEY] {submit|status|result|watch|cancel|list|stats} ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	c := &ctl{
		ctx: ctx,
		api: client.New(client.Config{
			Base:        strings.TrimRight(*addr, "/"),
			APIKey:      *apiKey,
			MaxAttempts: *retries,
			Logf: func(format string, a ...any) {
				fmt.Fprintf(os.Stderr, "fisimctl: "+format+"\n", a...)
			},
		}),
	}
	var err error
	switch args[0] {
	case "submit":
		err = c.submit(args[1:])
	case "status":
		err = c.status(args[1:])
	case "result":
		err = c.result(args[1:])
	case "watch":
		err = c.watch(args[1:])
	case "cancel":
		err = c.cancel(args[1:])
	case "list":
		err = c.api.GetJSON(ctx, "/v1/jobs", os.Stdout)
	case "stats":
		err = c.api.GetJSON(ctx, "/v1/stats", os.Stdout)
	default:
		log.Fatalf("unknown command %q", args[0])
	}
	if err != nil {
		log.Fatal(err)
	}
}

func envOr(k, def string) string {
	if v := os.Getenv(k); v != "" {
		return v
	}
	return def
}

type ctl struct {
	ctx context.Context
	api *client.Client
}

func (c *ctl) submit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	benches := fs.String("bench", "median", "benchmark name(s), comma-separated")
	models := fs.String("model", "C", "fault model(s): none, A, B, B+, C (comma-separated)")
	vdds := fs.String("vdd", "0.7", "supply voltage(s) in V (comma-separated)")
	sigmas := fs.String("sigma", "0", "supply noise sigma(s) in V (comma-separated)")
	freqs := fs.String("freq", "", "explicit frequency list in MHz (comma-separated; overrides -lo/-hi/-step)")
	lo := fs.Float64("lo", 650, "sweep start in MHz")
	hi := fs.Float64("hi", 1100, "sweep end in MHz")
	step := fs.Float64("step", 25, "sweep step in MHz")
	trials := fs.Int("trials", 100, "Monte-Carlo trials per point")
	trialsMin := fs.Int("trials-min", 0, "adaptive mode: first batch size (with -trials-max)")
	trialsMax := fs.Int("trials-max", 0, "adaptive mode: trial budget per point")
	seed := fs.Int64("seed", 1, "random seed")
	mode := fs.String("mode", "auto", "trial path: auto, scan or full")
	priority := fs.String("priority", "interactive", "scheduling lane: interactive or batch")
	wait := fs.Bool("wait", false, "block until the job is terminal, then print the result")
	format := fs.String("format", "json", "result format with -wait: json or csv")
	outFile := fs.String("o", "", "write -wait result to this file (default stdout)")
	fs.Parse(args)

	spec := map[string]any{
		"benches": splitList(*benches),
		"models":  splitList(*models),
		"vdds":    floats("vdd", *vdds),
		"sigmas":  floats("sigma", *sigmas),
		"trials":  *trials, "trials_min": *trialsMin, "trials_max": *trialsMax,
		"seed": *seed, "mode": *mode, "priority": *priority,
	}
	if *freqs != "" {
		spec["freqs"] = floats("freq", *freqs)
	} else {
		spec["freq_lo"], spec["freq_hi"], spec["freq_step"] = *lo, *hi, *step
	}
	sub, err := c.api.Submit(c.ctx, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "job %s state=%s deduped=%v\n", sub.ID, sub.State, sub.Deduped)
	if !*wait {
		fmt.Println(sub.ID)
		return nil
	}
	st, err := c.api.Wait(c.ctx, sub.ID)
	if err != nil {
		return err
	}
	switch st.State {
	case "failed":
		return fmt.Errorf("job %s failed: %s", sub.ID, st.Error)
	case "canceled":
		return fmt.Errorf("job %s canceled", sub.ID)
	}
	return c.fetchResult(sub.ID, *format, *outFile)
}

func (c *ctl) fetchResult(id, format, outFile string) (err error) {
	out := io.Writer(os.Stdout)
	if outFile != "" {
		var f *os.File
		if f, err = os.Create(outFile); err != nil {
			return err
		}
		// Propagate the close error through the named return: a failed
		// flush must not pass for a successful export.
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		out = f
	}
	return c.api.Result(c.ctx, id, format, out)
}

func (c *ctl) status(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: fisimctl status <job-id>")
	}
	return c.api.GetJSON(c.ctx, "/v1/jobs/"+args[0], os.Stdout)
}

func (c *ctl) result(args []string) error {
	fs := flag.NewFlagSet("result", flag.ExitOnError)
	format := fs.String("format", "json", "json or csv")
	outFile := fs.String("o", "", "output file (default stdout)")
	if len(args) < 1 {
		return fmt.Errorf("usage: fisimctl result <job-id> [-format json|csv] [-o file]")
	}
	fs.Parse(args[1:])
	return c.fetchResult(args[0], *format, *outFile)
}

// watch prints the SSE progress stream line by line until the terminal
// "done" event. A dropped stream (daemon drain, connection reset) is
// reconnected under the client's backoff policy instead of exiting on
// the first read error; events are full snapshots, so a reconnect loses
// nothing and at worst repeats the latest line.
func (c *ctl) watch(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: fisimctl watch <job-id>")
	}
	return c.api.Watch(c.ctx, args[0], func(event string, data []byte) {
		fmt.Printf("%s %s\n", event, data)
	})
}

func (c *ctl) cancel(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: fisimctl cancel <job-id>")
	}
	canceled, err := c.api.Cancel(c.ctx, args[0])
	if err != nil {
		return err
	}
	fmt.Printf("{\"canceled\": %v}\n", canceled)
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func floats(name, s string) []float64 {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			log.Fatalf("-%s: %v", name, err)
		}
		out = append(out, v)
	}
	return out
}
