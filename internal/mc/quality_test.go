package mc

import (
	"strings"
	"testing"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/stats"
)

// qualityOverlap reports whether the Wilson-style intervals of two
// quality means (fractional successes over n trials) intersect at 99%
// confidence — the statistical-equivalence tolerance between trial
// paths that share a law but not an RNG stream.
func qualityOverlap(m1 float64, n1 int, m2 float64, n2 int) bool {
	lo1, hi1 := stats.WilsonFrac(m1*float64(n1), n1, wilsonZ99)
	lo2, hi2 := stats.WilsonFrac(m2*float64(n2), n2, wilsonZ99)
	return lo1 <= hi2 && lo2 <= hi1
}

// checkQualityInvariants asserts the range contract every Point's
// quality summary obeys regardless of path: all fields in [0, 1],
// tail guarantees ordered (P99 <= P50, both <= max = 1), the mean
// inside its own Wilson interval, and the mean at least the correct
// fraction (bit-exact trials score exactly 1.0, degraded trials >= 0).
func checkQualityInvariants(t *testing.T, name string, p Point) {
	t.Helper()
	for _, f := range []struct {
		label string
		v     float64
	}{
		{"mean", p.QualityMean}, {"p50", p.QualityP50}, {"p99", p.QualityP99},
		{"lo", p.QualityLo}, {"hi", p.QualityHi},
	} {
		if f.v < 0 || f.v > 1 || f.v != f.v {
			t.Errorf("%s: quality %s = %v outside [0,1]", name, f.label, f.v)
		}
	}
	if p.QualityP99 > p.QualityP50 {
		t.Errorf("%s: P99 %v above P50 %v (tail guarantees must be ordered)",
			name, p.QualityP99, p.QualityP50)
	}
	if p.QualityMean < p.QualityLo || p.QualityMean > p.QualityHi {
		t.Errorf("%s: mean %v outside its Wilson interval [%v, %v]",
			name, p.QualityMean, p.QualityLo, p.QualityHi)
	}
	if p.QualityMean < p.CorrectPct/100-1e-12 {
		t.Errorf("%s: mean quality %v below correct fraction %v — a bit-exact trial must score exactly 1",
			name, p.QualityMean, p.CorrectPct/100)
	}
}

// A fault-free point is quality-perfect on every summary statistic,
// and its Wilson upper bound pins to exactly 1.
func TestQualityGoldenPointIsPerfect(t *testing.T) {
	for _, b := range []*bench.Benchmark{bench.Median(), bench.KMeans(), bench.MicroAdd32()} {
		spec := Spec{
			System: system(),
			Bench:  b,
			Model:  core.ModelSpec{Kind: "none"},
			Trials: 5,
			Seed:   1,
		}
		pt, err := Run(spec, 700)
		if err != nil {
			t.Fatal(err)
		}
		if pt.QualityMean != 1 || pt.QualityP50 != 1 || pt.QualityP99 != 1 || pt.QualityHi != 1 {
			t.Errorf("%s: golden point quality not perfect: %+v", b.Name, pt)
		}
		if pt.QualityLo >= 1 || pt.QualityLo < 0.5 {
			t.Errorf("%s: golden point QualityLo = %v, want a nontrivial bound below 1", b.Name, pt.QualityLo)
		}
		checkQualityInvariants(t, b.Name, pt)
	}
}

// TestQualityScanMatchesFull extends the scan/full bit-identity
// guarantee to the quality distribution: the replay scan must produce
// exactly the full-execution Point, quality fields included, because
// quality scoring consumes no RNG and the fault-free replay
// short-circuit scores qual(want, want) — the same float computation
// the full path performs on bit-exact outputs.
func TestQualityScanMatchesFull(t *testing.T) {
	for _, b := range []*bench.Benchmark{bench.Median(), bench.KMeans()} {
		spec := Spec{
			System: system(),
			Bench:  b,
			Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
			Trials: 10,
			Seed:   21,
		}
		for _, f := range []float64{700, 880} {
			sc, err := RunScan(spec, f)
			if err != nil {
				t.Fatal(err)
			}
			fu, err := RunFull(spec, f)
			if err != nil {
				t.Fatal(err)
			}
			if sc != fu {
				t.Errorf("%s at %v MHz: scan and full Points differ:\nscan %+v\nfull %+v",
					b.Name, f, sc, fu)
			}
			checkQualityInvariants(t, b.Name, sc)
		}
	}
}

// TestQualityFirstFaultAgreesWithScan is the statistical-equivalence
// layer for the quality distribution: first-fault sampling draws a
// different RNG stream than the scan, so quality means must agree
// within overlapping Wilson intervals rather than bit-for-bit — below
// inside the degradation region, for a graceful-degradation metric
// (kmeans distortion) and a strict one (median exactness). Fault-free
// agreement needs no sampling: both paths short-circuit to exactly 1.0
// (TestQualityGoldenPointIsPerfect, TestQualityScanMatchesFull), so
// only the degraded operating point is compared — the scan pays
// O(trace) per trial, and this is the suite's -race budget hot spot.
func TestQualityFirstFaultAgreesWithScan(t *testing.T) {
	for _, b := range []*bench.Benchmark{bench.Median(), bench.KMeans()} {
		spec := Spec{
			System: system(),
			Bench:  b,
			Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
			Trials: 400,
			Seed:   13,
		}
		for _, f := range []float64{860} {
			ff, err := Run(spec, f) // ModeAuto: batched first-fault sampling
			if err != nil {
				t.Fatal(err)
			}
			sc, err := RunScan(spec, f)
			if err != nil {
				t.Fatal(err)
			}
			checkQualityInvariants(t, b.Name+"/auto", ff)
			checkQualityInvariants(t, b.Name+"/scan", sc)
			if !qualityOverlap(ff.QualityMean, ff.Trials, sc.QualityMean, sc.Trials) {
				t.Errorf("%s at %v MHz: quality means disagree: auto %v vs scan %v",
					b.Name, f, ff.QualityMean, sc.QualityMean)
			}
		}
	}
}

// TestQualityScheduleIndependent pins the quality distribution into the
// engine's schedule-independence guarantee: worker count must not
// change a single bit of any Point, quality fields included, on both
// the batched sampling path and the exact scan path.
func TestQualityScheduleIndependent(t *testing.T) {
	for _, mode := range []Mode{ModeAuto, ModeScan} {
		spec := Spec{
			System: system(),
			Bench:  bench.Median(),
			Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
			Mode:   mode,
			Trials: 60,
			Seed:   5,
		}
		freqs := []float64{700, 860}
		spec.Workers = 1
		one, err := Sweep(spec, freqs)
		if err != nil {
			t.Fatal(err)
		}
		spec.Workers = 4
		four, err := Sweep(spec, freqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range one {
			if one[i] != four[i] {
				t.Errorf("%v point %d depends on worker count:\n1 worker  %+v\n4 workers %+v",
					mode, i, one[i], four[i])
			}
			if one[i].FreqMHz > 800 && one[i].QualityMean >= 1 {
				t.Errorf("%v point %d: expected degraded quality above the failure point, got %v",
					mode, i, one[i].QualityMean)
			}
		}
	}
}

// TestQualityCellKeyClassNoAlias guards the cache migration: grid cells
// checkpointed before per-trial quality scoring existed were stored
// under keys without the q=v1 class, and their gob Points would decode
// with silently zero quality. The new keys must carry the class, and a
// Point planted under the exact pre-quality key spelling must never be
// served to a resumed grid.
func TestQualityCellKeyClassNoAlias(t *testing.T) {
	st, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "B+", Vdd: 0.7, Sigma: 0.010},
		Trials: 8,
		Seed:   9,
	}
	axes := Axes{Freqs: []float64{655, 665}}
	grid := Grid{Spec: spec, Axes: axes, Store: st, Resume: true}

	plan, err := grid.PlanCells()
	if err != nil {
		t.Fatal(err)
	}
	// Plant a poisoned Point under every cell's pre-quality key — the
	// current key minus the trailing class marker, exactly what an
	// earlier version of this package would have written.
	poison := Point{FreqMHz: -1, Trials: 99999, QualityMean: -7}
	payload, err := artifact.EncodeGob(poison)
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range plan {
		if !strings.HasSuffix(pc.Key, "|q=v1") {
			t.Fatalf("cell key %q lacks the quality class suffix", pc.Key)
		}
		old := strings.TrimSuffix(pc.Key, "|q=v1")
		if err := st.Put(artifact.KindGridCell, old, payload); err != nil {
			t.Fatal(err)
		}
	}

	cells, err := grid.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Cached {
			t.Fatalf("cell %v MHz served from a pre-quality checkpoint", c.Model.FreqMHz)
		}
		if c.Point.Trials != 8 || c.Point.FreqMHz < 0 {
			t.Fatalf("cell %v MHz aliased the poisoned Point: %+v", c.Model.FreqMHz, c.Point)
		}
		checkQualityInvariants(t, "resumed", c.Point)
	}

	// The same grid resumed again must now hit its own (new-format)
	// checkpoints bit-identically.
	again, err := grid.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range again {
		if !c.Cached {
			t.Errorf("second resume did not hit the new-format checkpoint at %v MHz", c.Model.FreqMHz)
		}
		if c.Point != cells[i].Point {
			t.Errorf("checkpoint round-trip drifted at %v MHz:\n%+v\n%+v",
				c.Model.FreqMHz, c.Point, cells[i].Point)
		}
	}
}

// TestQualitySubsetMergeMatchesWhole extends the distributed-execution
// contract to quality: an arbitrary leased subset of cells (RunCells)
// must reproduce exactly the Points — quality distribution included —
// of the same cells inside a whole-grid run.
func TestQualitySubsetMergeMatchesWhole(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
		Trials: 30,
		Seed:   17,
	}
	grid := Grid{Spec: spec, Axes: Axes{Freqs: []float64{700, 840, 880}}}
	whole, err := grid.Run()
	if err != nil {
		t.Fatal(err)
	}
	subset, err := grid.RunCells(t.Context(), []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if subset[0].Point != whole[2].Point || subset[1].Point != whole[0].Point {
		t.Errorf("subset cells drifted from the whole grid:\nsubset %+v\nwhole  %+v",
			subset, whole)
	}
}
