package core

import (
	"reflect"
	"testing"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/dta"
)

func newStoreTestSystem(t *testing.T, st *artifact.Store) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.DTA = dta.Config{Cycles: 256, Seed: 5}
	s := New(cfg)
	s.AttachStore(st)
	return s
}

// A golden trace persisted by one system must come back bit-identical
// from a fresh system over the same store, without re-executing.
func TestGoldenTraceStoreRoundTrip(t *testing.T) {
	st, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := bench.Median()

	cold := newStoreTestSystem(t, st)
	g1, err := cold.Golden(b, 42)
	if err != nil {
		t.Fatal(err)
	}
	if cold.GoldenRecordedCount() != 1 || cold.GoldenLoadedCount() != 0 {
		t.Fatalf("cold counters: recorded %d, loaded %d",
			cold.GoldenRecordedCount(), cold.GoldenLoadedCount())
	}

	warm := newStoreTestSystem(t, st)
	g2, err := warm.Golden(b, 42)
	if err != nil {
		t.Fatal(err)
	}
	if warm.GoldenRecordedCount() != 0 || warm.GoldenLoadedCount() != 1 {
		t.Fatalf("warm counters: recorded %d, loaded %d — store was not consulted",
			warm.GoldenRecordedCount(), warm.GoldenLoadedCount())
	}

	// The whole recorded execution must round-trip bit for bit: events
	// (the injector argument stream), the store log, every checkpoint,
	// and the run totals.
	if !reflect.DeepEqual(g1.Trace.Events, g2.Trace.Events) {
		t.Error("trace events drifted through the store")
	}
	if !reflect.DeepEqual(g1.Trace.Stores, g2.Trace.Stores) {
		t.Error("store log drifted through the store")
	}
	if !reflect.DeepEqual(g1.Trace.Checkpoints, g2.Trace.Checkpoints) {
		t.Error("checkpoints drifted through the store")
	}
	if g1.Trace.Cycles != g2.Trace.Cycles || g1.Trace.KernelCycles != g2.Trace.KernelCycles ||
		g1.Trace.KernelALUCycles != g2.Trace.KernelALUCycles ||
		g1.Trace.Retired != g2.Trace.Retired || g1.Trace.Status != g2.Trace.Status ||
		g1.Trace.CheckpointEvery != g2.Trace.CheckpointEvery {
		t.Error("trace totals drifted through the store")
	}
	if !reflect.DeepEqual(g1.Queries, g2.Queries) {
		t.Error("derived query stream drifted")
	}
	if !reflect.DeepEqual(g1.Want, g2.Want) {
		t.Error("rebuilt golden outputs drifted")
	}
}

// Different input seeds and different CPU configs must not alias.
func TestGoldenStoreKeySeparation(t *testing.T) {
	st, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := bench.Median()
	s1 := newStoreTestSystem(t, st)
	if _, err := s1.Golden(b, 42); err != nil {
		t.Fatal(err)
	}

	s2 := newStoreTestSystem(t, st)
	if _, err := s2.Golden(b, 43); err != nil {
		t.Fatal(err)
	}
	if s2.GoldenLoadedCount() != 0 {
		t.Error("different input seed was served from the other seed's trace")
	}

	cfg := DefaultConfig()
	cfg.DTA = dta.Config{Cycles: 256, Seed: 5}
	cfg.CPU.BranchPenalty++
	s3 := New(cfg)
	s3.AttachStore(st)
	if _, err := s3.Golden(b, 42); err != nil {
		t.Fatal(err)
	}
	if s3.GoldenLoadedCount() != 0 {
		t.Error("different CPU timing config was served from the other config's trace")
	}

	// A benchmark whose *program content* changed (same name) must miss
	// too: the key digests the generated source, not just the name.
	edited := *b
	origBuild := b.Build
	edited.Build = func(seed int64) (string, []uint32, error) {
		src, want, err := origBuild(seed)
		return src + "\n", want, err
	}
	s4 := newStoreTestSystem(t, st)
	if _, err := s4.Golden(&edited, 42); err != nil {
		t.Fatal(err)
	}
	if s4.GoldenLoadedCount() != 0 {
		t.Error("edited benchmark source was served the stale trace of the original program")
	}
}

// A hazard table persisted by one system must come back bit-identical
// from a fresh system over the same store, without rebuilding (the
// first-fault analogue of the golden-trace round trip above).
func TestHazardStoreRoundTrip(t *testing.T) {
	st, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := bench.Median()
	spec := ModelSpec{Kind: "C", Vdd: 0.7, FreqMHz: 860, Sigma: 0.010}

	cold := newStoreTestSystem(t, st)
	h1, err := cold.Hazard(b, 42, spec)
	if err != nil {
		t.Fatal(err)
	}
	if cold.HazardBuiltCount() != 1 || cold.HazardLoadedCount() != 0 {
		t.Fatalf("cold counters: built %d, loaded %d",
			cold.HazardBuiltCount(), cold.HazardLoadedCount())
	}
	// A second lookup on the same system is a pure memory hit.
	h1b, err := cold.Hazard(b, 42, spec)
	if err != nil {
		t.Fatal(err)
	}
	if h1b != h1 {
		t.Fatal("repeated lookup did not return the cached instance")
	}
	if cold.HazardBuiltCount() != 1 {
		t.Fatalf("repeated lookup rebuilt the table (built %d)", cold.HazardBuiltCount())
	}

	warm := newStoreTestSystem(t, st)
	h2, err := warm.Hazard(b, 42, spec)
	if err != nil {
		t.Fatal(err)
	}
	if warm.HazardBuiltCount() != 0 || warm.HazardLoadedCount() != 1 {
		t.Fatalf("warm counters: built %d, loaded %d — store was not consulted",
			warm.HazardBuiltCount(), warm.HazardLoadedCount())
	}
	if !reflect.DeepEqual(h1, h2) {
		t.Error("hazard table did not round-trip bit-identically")
	}

	// A different operating point must not alias the cached table.
	spec2 := spec
	spec2.FreqMHz = 880
	h3, err := warm.Hazard(b, 42, spec2)
	if err != nil {
		t.Fatal(err)
	}
	if warm.HazardBuiltCount() != 1 {
		t.Errorf("different frequency served from the store (built %d)", warm.HazardBuiltCount())
	}
	if reflect.DeepEqual(h2.LogSurv, h3.LogSurv) {
		t.Error("880 MHz hazard identical to 860 MHz hazard")
	}

	// Nor must a different system configuration: the marginals integrate
	// DTA-derived probability tables, so a changed characterization
	// config has to miss the cache (the key carries the fingerprint).
	cfg := DefaultConfig()
	cfg.DTA = dta.Config{Cycles: 128, Seed: 5}
	other := New(cfg)
	other.AttachStore(st)
	if _, err := other.Hazard(b, 42, spec); err != nil {
		t.Fatal(err)
	}
	if other.HazardLoadedCount() != 0 || other.HazardBuiltCount() != 1 {
		t.Errorf("changed DTA config served a stale hazard table (built %d, loaded %d)",
			other.HazardBuiltCount(), other.HazardLoadedCount())
	}
}

// A pre-delta-codec cache holding gob-encoded traces must keep serving:
// the loader detects the missing magic prefix and falls back to gob.
func TestGoldenLegacyGobPayloadStillLoads(t *testing.T) {
	st, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := bench.Median()
	cold := newStoreTestSystem(t, st)
	g1, err := cold.Golden(b, 42)
	if err != nil {
		t.Fatal(err)
	}

	// Overwrite the stored payload with the legacy gob encoding.
	key, err := cold.goldenStoreKey(b, 42)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := artifact.EncodeGob(g1.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(artifact.KindGoldenTrace, key, blob); err != nil {
		t.Fatal(err)
	}

	warm := newStoreTestSystem(t, st)
	g2, err := warm.Golden(b, 42)
	if err != nil {
		t.Fatal(err)
	}
	if warm.GoldenRecordedCount() != 0 || warm.GoldenLoadedCount() != 1 {
		t.Fatalf("legacy payload not served: recorded %d, loaded %d",
			warm.GoldenRecordedCount(), warm.GoldenLoadedCount())
	}
	if !reflect.DeepEqual(g1.Trace, g2.Trace) {
		t.Error("legacy gob trace drifted on load")
	}
}
