// Package artifact is the persistent on-disk cache of everything in the
// stack that is expensive to compute and cheap to replay: DTA
// endpoint-CDF characterizations, golden traces with their checkpoints,
// and completed Monte-Carlo grid cells. The store is content-addressed
// by a caller-supplied key string that must spell out every input the
// artifact depends on (configuration fingerprints, seeds, operating
// point); the file name is the SHA-256 of (kind, key), and the full key
// is stored inside the blob so a hash collision degrades to a miss, not
// a wrong artifact.
//
// Every blob carries a format version. Get rejects blobs whose version
// differs from the package's — a decoder facing a future (or stale)
// layout reports ErrVersion instead of misreading bytes — so bumping
// Version invalidates every cache atomically. Writes go through a
// temp-file rename, so an interrupted run never leaves a torn blob
// behind.
//
// artifact is a leaf of the dependency graph (stdlib only), depended on
// by dta, core, mc and server; it is what turns every warm start in the
// stack — repeated CLI runs, resumed grids, deduplicated daemon jobs —
// into file reads.
package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Version is the on-disk format version. Bump it whenever the layout of
// any persisted payload changes; every existing blob then reads as a
// rejection (ErrVersion), never as a silently misdecoded artifact.
const Version = 1

// Artifact kinds in use across the stack. Kind strings partition the key
// space so a characterization key can never alias a trace key.
const (
	KindCharacterization = "dta-characterization"
	KindGoldenTrace      = "golden-trace"
	KindGridCell         = "grid-cell"
	KindHazard           = "hazard-table"
)

// ErrVersion reports a blob written under a different format version.
var ErrVersion = errors.New("artifact: format version mismatch")

// Stats counts store traffic since Open.
type Stats struct {
	Hits   int64 // Get found a valid blob
	Misses int64 // Get found nothing (or a rejected blob)
	Puts   int64 // blobs written
}

// Store is one cache directory. It is safe for concurrent use; writers
// of the same key race benignly (last rename wins, all contents equal by
// key construction).
type Store struct {
	dir string

	hits, misses, puts atomic.Int64
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("artifact: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's traffic counters.
func (s *Store) Stats() Stats {
	return Stats{Hits: s.hits.Load(), Misses: s.misses.Load(), Puts: s.puts.Load()}
}

// path maps (kind, key) to the blob's file name.
func (s *Store) path(kind, key string) string {
	h := sha256.Sum256([]byte(kind + "\x00" + key))
	return filepath.Join(s.dir, kind+"-"+hex.EncodeToString(h[:16])+".art")
}

// envelope is the gob-framed on-disk layout.
type envelope struct {
	Version int
	Kind    string
	Key     string
	Payload []byte
}

// encode frames a payload at an explicit version (tests use non-current
// versions to pin the rejection path).
func encode(kind, key string, payload []byte, version int) ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(envelope{
		Version: version, Kind: kind, Key: key, Payload: payload,
	})
	if err != nil {
		return nil, fmt.Errorf("artifact: encode %s: %w", kind, err)
	}
	return buf.Bytes(), nil
}

// Put stores a payload under (kind, key), atomically replacing any
// previous blob.
func (s *Store) Put(kind, key string, payload []byte) error {
	blob, err := encode(kind, key, payload, Version)
	if err != nil {
		return err
	}
	path := s.path(kind, key)
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: %w", err)
	}
	s.puts.Add(1)
	return nil
}

// Get returns the payload stored under (kind, key). A clean miss returns
// (nil, false, nil); a blob that exists but cannot be trusted — torn
// file, version mismatch, key collision — returns false together with
// the reason, and callers fall back to recomputing.
func (s *Store) Get(kind, key string) ([]byte, bool, error) {
	blob, err := os.ReadFile(s.path(kind, key))
	if errors.Is(err, os.ErrNotExist) {
		s.misses.Add(1)
		return nil, false, nil
	}
	if err != nil {
		s.misses.Add(1)
		return nil, false, fmt.Errorf("artifact: %w", err)
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&env); err != nil {
		s.misses.Add(1)
		return nil, false, fmt.Errorf("artifact: decode %s: %w", kind, err)
	}
	if env.Version != Version {
		s.misses.Add(1)
		return nil, false, fmt.Errorf("%w: blob v%d, want v%d", ErrVersion, env.Version, Version)
	}
	if env.Kind != kind || env.Key != key {
		// Hash collision or foreign file: treat as a miss.
		s.misses.Add(1)
		return nil, false, nil
	}
	s.hits.Add(1)
	return env.Payload, true, nil
}

// EncodeGob gob-encodes a typed payload for Put.
func EncodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("artifact: payload encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeGob decodes a payload produced by EncodeGob into v.
func DecodeGob(payload []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("artifact: payload decode: %w", err)
	}
	return nil
}
