// Package dta implements dynamic timing analysis: timed gate-level
// simulation of the ALU unit netlists over randomized characterization
// kernels, recording the per-cycle arrival times at every endpoint
// conditioned on the executing instruction, exactly as the paper extracts
// its statistics from the post place & route netlist (Sec. 3.4; the
// methodology of [14]).
//
// A characterization is keyed by (ALU unit, operand generator, supply
// voltage). Operand generators capture the operand profile of an
// instruction: l.addi sees sign-extended 16-bit immediates, shift amounts
// are 5 bits, and data-width-constrained workloads (the paper's 8/16-bit
// kernels in Figs. 4 and 6) are characterized with matching operand
// ranges — this is where the paper's data-width effects come from.
//
// In the dependency graph, dta sits on circuit/gates/timing below and
// serves the model-C construction in fi/core above; characterizations
// persist through internal/artifact when a store is attached.
package dta

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/artifact"
	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/timing"
)

// OperandGen produces one random operand pair for a characterization
// cycle.
type OperandGen func(rng *rand.Rand) (a, b uint32)

// Named operand generators. Names are part of characterization cache keys
// and of benchmark operand profiles.
var gens = map[string]OperandGen{
	"u32": func(r *rand.Rand) (uint32, uint32) { return r.Uint32(), r.Uint32() },
	"u16": func(r *rand.Rand) (uint32, uint32) { return r.Uint32() & 0xFFFF, r.Uint32() & 0xFFFF },
	"u8":  func(r *rand.Rand) (uint32, uint32) { return r.Uint32() & 0xFF, r.Uint32() & 0xFF },
	// a full-width, b a sign-extended 16-bit immediate (l.addi, l.muli,
	// l.xori and the compare-immediate forms).
	"imm16": func(r *rand.Rand) (uint32, uint32) {
		return r.Uint32(), uint32(int32(int16(uint16(r.Uint32()))))
	},
	// a full-width, b a zero-extended 16-bit immediate (l.andi, l.ori).
	"zimm16": func(r *rand.Rand) (uint32, uint32) { return r.Uint32(), r.Uint32() & 0xFFFF },
	// a full-width, b a 5-bit shift amount.
	"amt5": func(r *rand.Rand) (uint32, uint32) { return r.Uint32(), r.Uint32() & 31 },
	// 16-bit a and b with small signed values, the profile of
	// index/counter arithmetic in control kernels.
	"s16": func(r *rand.Rand) (uint32, uint32) {
		return uint32(int32(int16(uint16(r.Uint32())))), uint32(int32(int16(uint16(r.Uint32()))))
	},
}

// GenNames returns the registered generator names, sorted, so CLI help
// text and docs render identically across runs (map iteration order
// would reshuffle them).
func GenNames() []string {
	out := make([]string, 0, len(gens))
	for n := range gens {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Gen returns a registered generator.
func Gen(name string) (OperandGen, error) {
	g, ok := gens[name]
	if !ok {
		return nil, fmt.Errorf("dta: unknown operand generator %q", name)
	}
	return g, nil
}

// Profile overrides the operand generator per ALU unit; nil entries (or a
// nil map) fall back to the per-instruction defaults. Benchmarks with
// constrained data widths carry a Profile so that their fault statistics
// are characterized on matching operands.
type Profile map[circuit.UnitKind]string

// DefaultGen returns the default operand generator name for an ALU op,
// reflecting its architectural operand sources.
func DefaultGen(op isa.Op) string {
	switch op {
	case isa.OpAddi, isa.OpMuli, isa.OpXori,
		isa.OpSfeqi, isa.OpSfnei, isa.OpSfgtui, isa.OpSfltui,
		isa.OpSfgtsi, isa.OpSfltsi:
		return "imm16"
	case isa.OpAndi, isa.OpOri:
		return "zimm16"
	case isa.OpSll, isa.OpSrl, isa.OpSra, isa.OpSlli, isa.OpSrli, isa.OpSrai:
		return "amt5"
	default:
		return "u32"
	}
}

// GenFor resolves the operand generator name for op under a profile.
func GenFor(op isa.Op, p Profile) string {
	if p != nil {
		if g, ok := p[circuit.UnitOf(op)]; ok && g != "" {
			return g
		}
	}
	return DefaultGen(op)
}

// Key identifies one characterization.
type Key struct {
	Unit circuit.UnitKind
	Gen  string
}

// KeyFor returns the characterization key of an ALU op under a profile.
func KeyFor(op isa.Op, p Profile) Key {
	return Key{Unit: circuit.UnitOf(op), Gen: GenFor(op, p)}
}

// Characterization holds the DTA result for one key at one voltage: the
// raw arrival matrix and the per-endpoint CDFs. Endpoint indices 0..31
// are the result bits; circuit.FlagEndpoint is the flag (compare unit
// only).
type Characterization struct {
	Key     Key
	Voltage float64
	Cycles  int
	// Arrivals[e][c] is the arrival time (ps) of endpoint e in cycle c;
	// 0 means the endpoint did not toggle.
	Arrivals [][]float64
	// MaxPerCycle[c] is the largest arrival over all endpoints in cycle
	// c, used by the joint (bootstrap) sampler.
	MaxPerCycle []float64
	// CDFs[e] is the empirical violation CDF of endpoint e (includes
	// the voltage-scaled setup time).
	CDFs []*timing.CDF
	// SetupPs is the voltage-scaled flip-flop setup time.
	SetupPs float64
	// MaxPs is the largest arrival observed anywhere.
	MaxPs float64
}

// NumEndpoints returns the endpoint count (32, or 33 with flag).
func (c *Characterization) NumEndpoints() int { return len(c.Arrivals) }

// OnsetMHz returns the highest frequency with zero violation probability
// across all endpoints at this voltage (no noise).
func (c *Characterization) OnsetMHz() float64 {
	if c.MaxPs <= 0 {
		return math.Inf(1)
	}
	return 1e6 / (c.MaxPs + c.SetupPs)
}

// Config parameterizes a Characterizer.
type Config struct {
	// Cycles is the characterization kernel length per instruction; the
	// paper uses 8 kCycles.
	Cycles int
	// Seed drives operand randomization.
	Seed int64
}

// DefaultConfig returns the paper's characterization parameters.
func DefaultConfig() Config { return Config{Cycles: 8192, Seed: 1} }

// Characterizer runs and caches DTA characterizations for one ALU.
// Beyond the in-memory cache, an attached artifact.Store persists
// characterizations across processes: At consults the store before
// simulating, so a warm cache directory turns the most expensive phase
// of a cold run into a file read.
type Characterizer struct {
	ALU   *circuit.ALU
	Model timing.VddDelay
	Cfg   Config

	mu    sync.Mutex
	cache map[cacheKey]*entry
	store *artifact.Store

	computed atomic.Int64 // characterizations actually simulated
	loaded   atomic.Int64 // characterizations served from the store
}

type cacheKey struct {
	key Key
	mV  int // voltage in millivolts
}

type entry struct {
	once sync.Once
	ch   *Characterization
}

// NewCharacterizer returns a characterizer over the given ALU.
func NewCharacterizer(alu *circuit.ALU, model timing.VddDelay, cfg Config) *Characterizer {
	if cfg.Cycles <= 0 {
		cfg.Cycles = DefaultConfig().Cycles
	}
	return &Characterizer{
		ALU:   alu,
		Model: model,
		Cfg:   cfg,
		cache: map[cacheKey]*entry{},
	}
}

// SetStore attaches a persistent artifact store. Must be called before
// the first At (i.e. right after construction); characterizations are
// then loaded from the store when present and saved to it when computed.
func (c *Characterizer) SetStore(st *artifact.Store) { c.store = st }

// ComputedCount reports how many characterizations this characterizer
// actually simulated (as opposed to serving from memory or the store) —
// the warm-start assertion of the artifact cache.
func (c *Characterizer) ComputedCount() int64 { return c.computed.Load() }

// LoadedCount reports how many characterizations were served from the
// attached artifact store.
func (c *Characterizer) LoadedCount() int64 { return c.loaded.Load() }

// At returns the characterization for a key at the given supply voltage,
// computing it on first use. It is safe for concurrent use and distinct
// keys characterize in parallel.
func (c *Characterizer) At(key Key, voltage float64) (*Characterization, error) {
	if _, err := Gen(key.Gen); err != nil {
		return nil, err
	}
	ck := cacheKey{key: key, mV: int(math.Round(voltage * 1000))}
	c.mu.Lock()
	e, ok := c.cache[ck]
	if !ok {
		e = &entry{}
		c.cache[ck] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		if ch, ok := c.load(key, voltage); ok {
			e.ch = ch
			c.loaded.Add(1)
			return
		}
		e.ch = c.run(key, voltage)
		c.computed.Add(1)
		c.save(e.ch)
	})
	return e.ch, nil
}

// storeKey spells out every input a characterization depends on: the
// netlist generation config (gate delays, process-variation seed,
// calibration), the Vdd-delay model, the characterization config
// (cycles, operand seed), and the (unit, generator, voltage) coordinate
// itself. Map-valued fields print in sorted key order, so the string is
// canonical.
func (c *Characterizer) storeKey(key Key, voltage float64) string {
	return fmt.Sprintf("circuit=%+v|vdd=%+v|dta=%+v|unit=%d|gen=%s|mV=%d",
		c.ALU.Config, c.Model, c.Cfg, key.Unit, key.Gen,
		int(math.Round(voltage*1000)))
}

// charWire is the persisted form of a Characterization: the raw arrival
// matrix and scalars. CDFs are rebuilt from the arrivals on load (NewCDF
// is deterministic), so the decoded characterization is bit-identical to
// the computed one.
type charWire struct {
	Unit        int
	Gen         string
	Voltage     float64
	Cycles      int
	Arrivals    [][]float64
	MaxPerCycle []float64
	SetupPs     float64
	MaxPs       float64
}

// load fetches a characterization from the attached store. Any failure —
// miss, torn blob, version mismatch — falls back to computing; the
// store is an accelerator, never a correctness dependency.
func (c *Characterizer) load(key Key, voltage float64) (*Characterization, bool) {
	if c.store == nil {
		return nil, false
	}
	payload, ok, _ := c.store.Get(artifact.KindCharacterization, c.storeKey(key, voltage))
	if !ok {
		return nil, false
	}
	var w charWire
	if err := artifact.DecodeGob(payload, &w); err != nil {
		return nil, false
	}
	ch := &Characterization{
		Key:         Key{Unit: circuit.UnitKind(w.Unit), Gen: w.Gen},
		Voltage:     w.Voltage,
		Cycles:      w.Cycles,
		Arrivals:    w.Arrivals,
		MaxPerCycle: w.MaxPerCycle,
		SetupPs:     w.SetupPs,
		MaxPs:       w.MaxPs,
	}
	ch.CDFs = make([]*timing.CDF, len(w.Arrivals))
	for e := range ch.CDFs {
		ch.CDFs[e] = timing.NewCDF(w.Arrivals[e], w.SetupPs)
	}
	return ch, true
}

// save persists a freshly computed characterization; write failures are
// ignored (the run already has its in-memory result).
func (c *Characterizer) save(ch *Characterization) {
	if c.store == nil {
		return
	}
	payload, err := artifact.EncodeGob(charWire{
		Unit:        int(ch.Key.Unit),
		Gen:         ch.Key.Gen,
		Voltage:     ch.Voltage,
		Cycles:      ch.Cycles,
		Arrivals:    ch.Arrivals,
		MaxPerCycle: ch.MaxPerCycle,
		SetupPs:     ch.SetupPs,
		MaxPs:       ch.MaxPs,
	})
	if err != nil {
		return
	}
	_ = c.store.Put(artifact.KindCharacterization, c.storeKey(ch.Key, ch.Voltage), payload)
}

// ForOp resolves and characterizes the op's key under a profile.
func (c *Characterizer) ForOp(op isa.Op, p Profile, voltage float64) (*Characterization, error) {
	return c.At(KeyFor(op, p), voltage)
}

// run performs one characterization.
func (c *Characterizer) run(key Key, voltage float64) *Characterization {
	gen := gens[key.Gen]
	u := c.ALU.Units[key.Unit]
	factor := c.Model.Factor(voltage)
	delays := u.Netlist.DelaysAt(factor)
	sim := gates.NewSim(u.Netlist, delays)
	setup := c.ALU.Config.SetupPs * factor

	nEP := circuit.Width
	if u.HasFlag() {
		nEP = circuit.NumEndpoints
	}
	ch := &Characterization{
		Key:         key,
		Voltage:     voltage,
		Cycles:      c.Cfg.Cycles,
		Arrivals:    make([][]float64, nEP),
		MaxPerCycle: make([]float64, c.Cfg.Cycles),
		SetupPs:     setup,
	}
	for e := range ch.Arrivals {
		ch.Arrivals[e] = make([]float64, c.Cfg.Cycles)
	}

	// Seed depends on the key and voltage so characterizations are
	// independent but reproducible.
	seed := c.Cfg.Seed
	seed = stats.SubSeed(seed, int(key.Unit)*1000+ck32(key.Gen))
	seed = stats.SubSeed(seed, int(math.Round(voltage*1000)))
	rng := stats.NewRand(seed)

	in := circuit.PackInputs(nil, 0, 0)
	a0, b0 := gen(rng)
	sim.Settle(circuit.PackInputs(in, a0, b0))
	for cyc := 0; cyc < c.Cfg.Cycles; cyc++ {
		a, b := gen(rng)
		sim.Cycle(circuit.PackInputs(in, a, b))
		worst := 0.0
		for e := 0; e < circuit.Width; e++ {
			arr := sim.Arrival(u.Endpoint[e])
			ch.Arrivals[e][cyc] = arr
			if arr > worst {
				worst = arr
			}
		}
		if u.HasFlag() {
			arr := sim.Arrival(u.Flag)
			ch.Arrivals[circuit.FlagEndpoint][cyc] = arr
			if arr > worst {
				worst = arr
			}
		}
		ch.MaxPerCycle[cyc] = worst
		if worst > ch.MaxPs {
			ch.MaxPs = worst
		}
	}
	ch.CDFs = make([]*timing.CDF, nEP)
	for e := range ch.CDFs {
		ch.CDFs[e] = timing.NewCDF(ch.Arrivals[e], setup)
	}
	return ch
}

// ck32 hashes a generator name into a small int for seed derivation.
func ck32(s string) int {
	h := 0
	for _, r := range s {
		h = h*131 + int(r)
	}
	return h & 0xFFFF
}

// Prewarm characterizes every (op, profile) key an ALU workload can hit
// at the given voltage, in parallel. Calling it up front keeps the
// Monte-Carlo hot path free of characterization stalls.
func (c *Characterizer) Prewarm(profile Profile, voltage float64) error {
	keys := map[Key]bool{}
	for _, op := range isa.AllOps() {
		if !isa.IsALU(op) {
			continue
		}
		keys[KeyFor(op, profile)] = true
	}
	errc := make(chan error, len(keys))
	var wg sync.WaitGroup
	for k := range keys {
		wg.Add(1)
		go func(k Key) {
			defer wg.Done()
			if _, err := c.At(k, voltage); err != nil {
				errc <- err
			}
		}(k)
	}
	wg.Wait()
	close(errc)
	return <-errc
}
