// Command paperrepro regenerates the paper's tables and figures as text
// series. With -scale 1 it uses the paper's trial counts; smaller scales
// trade resolution for speed. Every Monte-Carlo figure runs as a
// declarative grid on the shared engine; with -cache-dir the grid
// cells, DTA characterizations and golden traces persist, so re-running
// a figure over a warm cache is almost free. With -format, the point
// series of the Monte-Carlo tables/figures are additionally written as
// JSON or CSV.
//
//	paperrepro -exp all -scale 0.25
//	paperrepro -exp fig5 -dta 8192 -cache-dir .fisim-cache
//	paperrepro -exp fig1,fig5 -format json -o series.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mc"
	"repro/internal/progress"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperrepro: ")
	exp := flag.String("exp", "all", "experiment: table1, table2, fig1, fig2, fig4, fig5, fig6, fig7, all")
	scale := flag.Float64("scale", 1.0, "trial-count / resolution scale (1 = paper fidelity)")
	seed := flag.Int64("seed", 1, "master random seed")
	dtaCycles := flag.Int("dta", 8192, "DTA characterization kernel cycles per instruction")
	cacheDir := flag.String("cache-dir", "", "artifact cache directory (characterizations, golden traces, grid cells)")
	format := flag.String("format", "", "machine-readable series output: json or csv")
	outFile := flag.String("o", "", "write -format output to this file (default stdout, after the text tables)")
	quiet := flag.Bool("q", false, "suppress the stderr progress line")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.DTA.Cycles = *dtaCycles
	sys := core.New(cfg)
	var store *artifact.Store
	if *cacheDir != "" {
		var err error
		if store, err = artifact.Open(*cacheDir); err != nil {
			log.Fatal(err)
		}
		sys.AttachStore(store)
	}
	var rep *progress.Reporter
	if !*quiet {
		rep = progress.New(os.Stderr, "paperrepro")
	}
	o := experiments.Options{System: sys, Out: os.Stdout, Scale: *scale, Seed: *seed,
		Store: store,
		Progress: func(p mc.Progress) {
			rep.Update(p.DoneTrials, p.TotalTrials)
			// Terminate the line at the end of each sweep so the
			// figure's stdout tables start on a clean line.
			if p.DoneTrials == p.TotalTrials && p.DonePoints == p.TotalPoints {
				rep.Finish()
			}
		}}

	// collected gathers every point series a runner produces, for the
	// optional machine-readable export.
	var collected []report.Series
	collect := func(figure string, series []experiments.Series) {
		for _, s := range series {
			collected = append(collected, report.Series{
				Label:  figure + ": " + s.Label,
				Points: s.Points,
			})
		}
	}

	run := func(name string) error {
		rep.SetLabel(name)
		defer rep.Finish()
		fmt.Printf("==== %s ====\n", name)
		switch name {
		case "table1":
			pts, err := experiments.Table1(o)
			if err == nil {
				collect("table1", []experiments.Series{{Label: "benchmarks", Points: pts}})
			}
			return err
		case "table2":
			experiments.Table2(o)
			return nil
		case "fig1":
			s, err := experiments.Fig1(o)
			collect("fig1", s)
			return err
		case "fig2":
			_, err := experiments.Fig2(o)
			return err
		case "fig4":
			s, err := experiments.Fig4(o)
			collect("fig4", s)
			return err
		case "fig5":
			s, err := experiments.Fig5(o)
			collect("fig5", s)
			return err
		case "fig6":
			s, err := experiments.Fig6(o)
			collect("fig6", s)
			return err
		case "fig7":
			_, err := experiments.Fig7(o)
			return err
		}
		return fmt.Errorf("unknown experiment %q", name)
	}

	names := []string{"table1", "table2", "fig1", "fig2", "fig4", "fig5", "fig6", "fig7"}
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	for _, n := range names {
		if err := run(strings.TrimSpace(n)); err != nil {
			log.Fatal(err)
		}
	}
	if store != nil {
		fmt.Fprintf(os.Stderr, "paperrepro: cache %s: %s\n", *cacheDir, sys.CacheSummary())
	}

	if *format != "" {
		cells := 0
		for _, s := range collected {
			cells += len(s.Points)
		}
		doc := &report.Document{
			Meta: report.Meta{
				Tool:  "paperrepro",
				Seed:  *seed,
				Cells: cells,
				Axes:  fmt.Sprintf("exp=%s scale=%g", *exp, *scale),
				Cache: *cacheDir,
			},
			Series: collected,
		}
		if err := report.WriteFile(*outFile, os.Stdout, *format, doc); err != nil {
			log.Fatal(err)
		}
	}
}
