package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mc"
)

// fakeBackend is an instant (or gate-blocked) Backend so admission
// tests exercise scheduling without paying for simulation.
type fakeBackend struct {
	gate chan struct{} // when non-nil, Run blocks on it (or the job context)
}

func (f *fakeBackend) Run(ctx context.Context, spec JobSpec, onProgress func(mc.Progress)) ([]mc.CellResult, error) {
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	onProgress(mc.Progress{DoneTrials: spec.Trials, TotalTrials: spec.Trials, DonePoints: 1, TotalPoints: 1})
	return nil, nil
}

// waitRunning spins until the job has been dequeued and started — the
// tests that fill the queue behind a gated blocker need the blocker out
// of the queue first.
func waitRunning(t *testing.T, m *Manager, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started running (state %s)", id, st.State)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSchedulerWeightedFairness pins the smooth-WRR dequeue order: with
// both lanes backlogged the interactive:batch ratio follows the weights
// exactly, spread evenly rather than in bursts.
func TestSchedulerWeightedFairness(t *testing.T) {
	cases := []struct {
		name    string
		iw, bw  int // lane weights (0 = default)
		nI, nB  int // jobs pushed per lane
		wantSeq string
	}{
		// Default 4:1 → the repeating period is I,I,B,I,I.
		{"default-4-1", 0, 0, 8, 2, "IIBIIIIBII"},
		// Equal weights alternate, ties to the higher-priority lane.
		{"equal-1-1", 1, 1, 5, 5, "IBIBIBIBIB"},
		// Batch heavier than interactive inverts the ratio.
		{"inverted-1-3", 1, 3, 2, 6, "BIBBBIBB"},
		// A lone backlog drains regardless of weights.
		{"batch-only", 0, 0, 0, 4, "BBBB"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := map[string]LaneConfig{}
			if tc.iw > 0 {
				cfg[LaneInteractive] = LaneConfig{Weight: tc.iw}
			}
			if tc.bw > 0 {
				cfg[LaneBatch] = LaneConfig{Weight: tc.bw}
			}
			s := newScheduler(64, cfg)
			lanes := map[*Job]byte{}
			for i := 0; i < tc.nI; i++ {
				j := &Job{}
				lanes[j] = 'I'
				if _, err := s.push(j, LaneInteractive); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < tc.nB; i++ {
				j := &Job{}
				lanes[j] = 'B'
				if _, err := s.push(j, LaneBatch); err != nil {
					t.Fatal(err)
				}
			}
			var got []byte
			for i := 0; i < tc.nI+tc.nB; i++ {
				j, ok := s.pop()
				if !ok {
					t.Fatalf("pop %d: scheduler closed", i)
				}
				got = append(got, lanes[j])
			}
			if string(got) != tc.wantSeq {
				t.Errorf("dequeue order %s, want %s", got, tc.wantSeq)
			}
		})
	}
}

// TestSchedulerDisplacement pins the shed-lowest-first contract: a full
// global queue rejects batch arrivals outright, while an interactive
// arrival displaces the newest queued batch job — and is itself
// rejected once no lower-priority work remains.
func TestSchedulerDisplacement(t *testing.T) {
	s := newScheduler(2, nil)
	b1, b2 := &Job{ID: "b1"}, &Job{ID: "b2"}
	for _, j := range []*Job{b1, b2} {
		if _, err := s.push(j, LaneBatch); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.push(&Job{ID: "b3"}, LaneBatch); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("batch push into full queue: %v, want ErrQueueFull", err)
	}
	i1 := &Job{ID: "i1"}
	displaced, err := s.push(i1, LaneInteractive)
	if err != nil || displaced != b2 {
		t.Fatalf("interactive push: displaced=%v err=%v, want b2 (newest batch)", displaced, err)
	}
	i2 := &Job{ID: "i2"}
	displaced, err = s.push(i2, LaneInteractive)
	if err != nil || displaced != b1 {
		t.Fatalf("second interactive push: displaced=%v err=%v, want b1", displaced, err)
	}
	if _, err := s.push(&Job{ID: "i3"}, LaneInteractive); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("interactive push with nothing below: %v, want ErrQueueFull", err)
	}
	if d := s.depth(); d != 2 {
		t.Errorf("depth after displacement = %d, want 2", d)
	}
	for _, want := range []*Job{i1, i2} {
		if j, ok := s.pop(); !ok || j != want {
			t.Fatalf("pop = %v, want %s", j, want.ID)
		}
	}
}

// TestQuotaRaceAdmitsExactly is the satellite race test: N concurrent
// submissions by one client racing a MaxActive quota admit exactly
// MaxActive jobs, and cancelling an admitted job hands its slot back.
func TestQuotaRaceAdmitsExactly(t *testing.T) {
	for _, maxActive := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("max-active-%d", maxActive), func(t *testing.T) {
			fb := &fakeBackend{gate: make(chan struct{})}
			m := NewManager(Options{
				System:  system(),
				Backend: fb,
				Tenants: TenantsConfig{Clients: map[string]TenantConfig{"key:q": {MaxActive: maxActive}}},
			})

			const n = 8
			jobs := make([]*Job, n)
			errs := make([]error, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					jobs[i], _, errs[i] = m.SubmitAs("key:q", smallSpec(int64(100+i)))
				}(i)
			}
			wg.Wait()

			var admitted []*Job
			denied := 0
			for i := range jobs {
				switch {
				case errs[i] == nil:
					admitted = append(admitted, jobs[i])
				case errors.Is(errs[i], ErrQuotaExceeded):
					denied++
					var ov *OverloadError
					if !errors.As(errs[i], &ov) || ov.RetryAfter < time.Second {
						t.Errorf("quota refusal without usable Retry-After: %v", errs[i])
					}
				default:
					t.Errorf("submit %d: unexpected error %v", i, errs[i])
				}
			}
			if len(admitted) != maxActive || denied != n-maxActive {
				t.Fatalf("admitted=%d denied=%d, want %d/%d", len(admitted), denied, maxActive, n-maxActive)
			}
			if st := m.Stats(); st.QuotaDenied != int64(denied) {
				t.Errorf("Stats.QuotaDenied = %d, want %d", st.QuotaDenied, denied)
			}

			// Cancelling one admitted job releases its slot immediately.
			if ok, err := m.Cancel(admitted[0].ID); err != nil || !ok {
				t.Fatalf("cancel admitted: ok=%v err=%v", ok, err)
			}
			waitDone(t, m, admitted[0].ID)
			if _, _, err := m.SubmitAs("key:q", smallSpec(999)); err != nil {
				t.Fatalf("submit after cancel still refused: %v", err)
			}

			close(fb.gate)
			m.Shutdown(context.Background())
		})
	}
}

// TestCancelQueuedReleasesAdmission is the S1 regression: DELETE of a
// still-queued job frees both its queue slot and its tenant quota slot
// right away, not at job eviction.
func TestCancelQueuedReleasesAdmission(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{})}
	m := NewManager(Options{
		System: system(), Backend: fb, Parallel: 1, QueueCap: 1,
		Tenants: TenantsConfig{Clients: map[string]TenantConfig{"key:a": {MaxActive: 1}}},
	})
	defer func() {
		close(fb.gate)
		m.Shutdown(context.Background())
	}()

	// Occupy the single runner with another client's job, then fill the
	// queue and the quota with client a's job.
	blocker, _, err := m.SubmitAs("key:b", smallSpec(201))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, blocker.ID)
	queued, _, err := m.SubmitAs("key:a", smallSpec(202))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.SubmitAs("key:a", smallSpec(203)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota submit: %v, want ErrQuotaExceeded", err)
	}
	if _, _, err := m.SubmitAs("key:b", smallSpec(204)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full-queue submit: %v, want ErrQueueFull", err)
	}

	if ok, err := m.Cancel(queued.ID); err != nil || !ok {
		t.Fatalf("cancel queued: ok=%v err=%v", ok, err)
	}
	if st := waitDone(t, m, queued.ID); st.State != StateCanceled {
		t.Fatalf("cancelled queued job state = %s", st.State)
	}
	// Both the quota slot and the queue slot must be free immediately.
	if _, _, err := m.SubmitAs("key:a", smallSpec(203)); err != nil {
		t.Fatalf("submit after queued cancel (quota slot): %v", err)
	}
}

// fakeClock is a mutex-guarded manual clock for Options.Now; the
// manager reads it from runner goroutines too, so a bare variable would
// race.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestRateLimitTokenBucket drives the per-client token bucket with a
// fake clock: burst admits back-to-back submissions, the next one is
// refused with Retry-After advice, time refills the bucket, and deduped
// submissions still cost a token.
func TestRateLimitTokenBucket(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	m := NewManager(Options{
		System: system(), Backend: &fakeBackend{}, Now: clock.now,
		Tenants: TenantsConfig{Default: TenantConfig{Rate: 1, Burst: 2}},
	})
	defer m.Shutdown(context.Background())

	first, _, err := m.SubmitAs("key:r", smallSpec(301))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.SubmitAs("key:r", smallSpec(302)); err != nil {
		t.Fatalf("second burst submit: %v", err)
	}
	_, _, err = m.SubmitAs("key:r", smallSpec(303))
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("post-burst submit: %v, want ErrRateLimited", err)
	}
	var ov *OverloadError
	if !errors.As(err, &ov) || ov.RetryAfter < time.Second || ov.RetryAfter > 2*time.Second {
		t.Errorf("rate refusal Retry-After = %v, want ~1s", err)
	}

	// One second accrues one token.
	clock.advance(1100 * time.Millisecond)
	if _, _, err := m.SubmitAs("key:r", smallSpec(303)); err != nil {
		t.Fatalf("submit after refill: %v", err)
	}

	// A duplicate of the first spec dedups — but still spends a token:
	// the next unique submission finds the bucket empty again.
	clock.advance(1100 * time.Millisecond)
	if j, deduped, err := m.SubmitAs("key:r", smallSpec(301)); err != nil || !deduped || j.ID != first.ID {
		t.Fatalf("deduped resubmit: job=%v deduped=%v err=%v", j, deduped, err)
	}
	if _, _, err := m.SubmitAs("key:r", smallSpec(304)); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("submit after token-costing dedup: %v, want ErrRateLimited", err)
	}
	if st := m.Stats(); st.RateLimited != 2 {
		t.Errorf("Stats.RateLimited = %d, want 2", st.RateLimited)
	}

	// Other clients have their own buckets.
	if _, _, err := m.SubmitAs("key:other", smallSpec(305)); err != nil {
		t.Fatalf("other client affected by r's bucket: %v", err)
	}
}

// TestPriorityDedupAndPromotion pins the dedup-versus-priority
// interplay: priority is excluded from the fingerprint, and an
// interactive duplicate of a queued batch job promotes it into the
// interactive lane.
func TestPriorityDedupAndPromotion(t *testing.T) {
	hi := smallSpec(1)
	hi.Priority = LaneInteractive
	lo := smallSpec(1) // defaults to batch
	chi, err := hi.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	clo, err := lo.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if chi.Priority != LaneInteractive || clo.Priority != LaneBatch {
		t.Fatalf("canonical priorities = %q/%q", chi.Priority, clo.Priority)
	}
	if chi.Fingerprint("sysfp") != clo.Fingerprint("sysfp") {
		t.Error("priority leaked into the dedup fingerprint")
	}
	bad := smallSpec(1)
	bad.Priority = "vip"
	if _, err := bad.Canonicalize(); err == nil {
		t.Error("unknown priority accepted")
	}

	fb := &fakeBackend{gate: make(chan struct{})}
	m := NewManager(Options{System: system(), Backend: fb, Parallel: 1})
	defer func() {
		close(fb.gate)
		m.Shutdown(context.Background())
	}()

	blocker, _, err := m.SubmitAs("key:x", smallSpec(401))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, blocker.ID) // the runner must hold it before 402 queues
	queued, _, err := m.SubmitAs("key:x", smallSpec(402))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := m.Status(queued.ID); st.Lane != LaneBatch {
		t.Fatalf("queued job lane = %q, want batch", st.Lane)
	}
	promo := smallSpec(402)
	promo.Priority = LaneInteractive
	j, deduped, err := m.SubmitAs("key:y", promo)
	if err != nil || !deduped || j.ID != queued.ID {
		t.Fatalf("interactive duplicate: job=%v deduped=%v err=%v, want dedup onto %s", j, deduped, err, queued.ID)
	}
	if st, _ := m.Status(queued.ID); st.Lane != LaneInteractive {
		t.Errorf("deduped job lane = %q, want promoted to interactive", st.Lane)
	}
	for _, l := range m.Lanes() {
		if l.Name == LaneInteractive && l.Depth != 1 {
			t.Errorf("interactive lane depth = %d after promotion, want 1", l.Depth)
		}
		if l.Name == LaneBatch && l.Depth != 0 {
			t.Errorf("batch lane depth = %d after promotion, want 0", l.Depth)
		}
	}
}

// TestAdmissionHTTP walks the overload surface over the wire: 429 plus
// a Retry-After header for rate-limit and queue-full refusals, honest
// shed reporting for a displaced batch job, and DELETE of a queued job
// freeing its slot for the next submission.
func TestAdmissionHTTP(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{})}
	m := NewManager(Options{
		System: system(), Backend: fb, Parallel: 1, QueueCap: 1,
		Tenants: TenantsConfig{Clients: map[string]TenantConfig{"key:rl": {Rate: 0.5, Burst: 1}}},
	})
	gateOpen := false
	defer func() {
		if !gateOpen {
			close(fb.gate)
		}
		m.Shutdown(context.Background())
	}()
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	post := func(apiKey string, spec JobSpec) (*http.Response, SubmitResponse, string) {
		t.Helper()
		blob, _ := json.Marshal(spec)
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(blob))
		req.Header.Set("Content-Type", "application/json")
		if apiKey != "" {
			req.Header.Set("X-API-Key", apiKey)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var sr SubmitResponse
		json.Unmarshal(body, &sr)
		return resp, sr, string(body)
	}

	// The rate-limited tenant gets one burst token; the second request
	// must answer 429 with Retry-After ≈ 1/rate.
	resp, firstRl, _ := post("rl", smallSpec(501))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first rl submit status = %s", resp.Status)
	}
	waitRunning(t, m, firstRl.ID) // it must occupy the runner, not the queue
	resp, _, body := post("rl", smallSpec(502))
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(body, "rate limit") {
		t.Fatalf("second rl submit = %s %q, want 429 rate limit", resp.Status, body)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("rate-limit Retry-After = %q, want whole seconds >= 1", resp.Header.Get("Retry-After"))
	}

	// Fill the queue (the rl job occupies the runner), then overflow it.
	resp, queuedBatch, _ := post("", smallSpec(503))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue-filling submit status = %s", resp.Status)
	}
	resp, _, body = post("", smallSpec(504))
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(body, "queue full") {
		t.Fatalf("overflow submit = %s %q, want 429 queue full", resp.Status, body)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("queue-full Retry-After = %q, want whole seconds >= 1", resp.Header.Get("Retry-After"))
	}

	// An interactive arrival displaces the queued batch job, which goes
	// terminal with an honest shed cause — never silently lost.
	hi := smallSpec(505)
	hi.Priority = LaneInteractive
	resp, queuedHi, _ := post("", hi)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("displacing interactive submit status = %s", resp.Status)
	}
	st, err := m.Status(queuedBatch.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled || !strings.HasPrefix(st.Error, "shed:") {
		t.Fatalf("displaced job state=%s err=%q, want canceled with shed cause", st.State, st.Error)
	}
	if stats := m.Stats(); stats.Displaced != 1 {
		t.Errorf("Stats.Displaced = %d, want 1", stats.Displaced)
	}

	// DELETE of the queued interactive job frees the slot immediately.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queuedHi.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued status = %s", dresp.Status)
	}
	resp, _, _ = post("", smallSpec(506))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after queued DELETE = %s, want 202 (slot freed)", resp.Status)
	}

	// Stats advertise the lanes and current Retry-After advice.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	json.NewDecoder(sresp.Body).Decode(&stats)
	sresp.Body.Close()
	if len(stats.Lanes) != 2 || stats.RetryAfterSec < 1 {
		t.Errorf("stats lanes/retry = %+v", stats)
	}

	close(fb.gate)
	gateOpen = true
}

// TestShutdownReleasesWaiters is the S2 regression: a Shutdown that is
// still draining (a job is mid-run) must release blocked long-polls and
// SSE streams immediately rather than holding them to client timeouts.
func TestShutdownReleasesWaiters(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{})}
	m := NewManager(Options{System: system(), Backend: fb})
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	j, _, err := m.Submit(smallSpec(601))
	if err != nil {
		t.Fatal(err)
	}

	released := make(chan string, 3)
	go func() { // in-process long wait
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		m.Wait(ctx, j.ID)
		released <- "wait"
	}()
	go func() { // HTTP long-poll
		resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "?wait=60s")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		released <- "long-poll"
	}()
	go func() { // SSE stream
		resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		released <- "sse"
	}()
	time.Sleep(100 * time.Millisecond) // let all three block on the running job

	shutdownDone := make(chan struct{})
	go func() {
		m.Shutdown(context.Background())
		close(shutdownDone)
	}()

	for i := 0; i < 3; i++ {
		select {
		case <-released:
		case <-time.After(10 * time.Second):
			t.Fatal("waiter still blocked 10s into the drain")
		}
	}
	select {
	case <-shutdownDone:
		t.Fatal("shutdown finished while the backend was still gated")
	default:
	}

	close(fb.gate) // let the drain complete
	select {
	case <-shutdownDone:
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not finish after the backend unblocked")
	}
	if st, _ := m.Status(j.ID); st.State != StateDone {
		t.Errorf("drained job state = %s, want done", st.State)
	}
}
