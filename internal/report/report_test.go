package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mc"
)

func sampleCells() []mc.CellResult {
	mk := func(bench, kind string, f, correct float64) mc.CellResult {
		return mc.CellResult{
			Bench: bench,
			Model: core.ModelSpec{Kind: kind, Vdd: 0.7, FreqMHz: f},
			Point: mc.Point{FreqMHz: f, Trials: 10, CorrectPct: correct, FinishedPct: 100},
		}
	}
	return []mc.CellResult{
		mk("median", "B", 700, 100),
		mk("median", "B", 720, 80),
		mk("median", "B+", 700, 100),
		mk("kmeans", "B+", 700, 90),
	}
}

func TestFromCellsGroupsByNonFrequencyCoordinate(t *testing.T) {
	series := FromCells(sampleCells())
	if len(series) != 3 {
		t.Fatalf("series = %d, want 3 (B sweep, median B+, kmeans B+)", len(series))
	}
	if len(series[0].Points) != 2 || series[0].Points[1].FreqMHz != 720 {
		t.Errorf("frequency grouping broken: %+v", series[0])
	}
	if series[2].Bench != "kmeans" {
		t.Errorf("bench boundary not a series boundary: %+v", series[2])
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	d := &Document{
		Meta:   Meta{Tool: "sweep", Seed: 1, Cells: 4, Axes: "freqs=2"},
		Series: FromCells(sampleCells()),
	}
	var buf bytes.Buffer
	if err := Write(&buf, "json", d); err != nil {
		t.Fatal(err)
	}
	var back Document
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Meta.Tool != "sweep" || len(back.Series) != 3 ||
		back.Series[0].Points[1].CorrectPct != 80 {
		t.Errorf("JSON round-trip drifted: %+v", back)
	}
}

func TestWriteCSVShape(t *testing.T) {
	d := &Document{
		Meta:   Meta{Tool: "sweep", Seed: 1, Cells: 4},
		Series: FromCells(sampleCells()),
	}
	var buf bytes.Buffer
	if err := Write(&buf, "csv", d); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// 1 meta comment + 1 header + 4 point rows.
	if len(lines) != 6 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "# tool=sweep") {
		t.Errorf("missing meta comment: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "series,bench,model,") {
		t.Errorf("header drifted: %q", lines[1])
	}
}

func TestWriteUnknownFormat(t *testing.T) {
	if err := Write(&bytes.Buffer{}, "xml", &Document{}); err == nil {
		t.Fatal("unknown format accepted")
	}
}
