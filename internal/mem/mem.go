// Package mem models the single-cycle SRAM macros attached to the
// simulated core: a big-endian, word-addressable flat memory with separate
// instruction and data regions, alignment checking, and simple access
// accounting. The paper's core uses single-cycle instruction and data
// SRAMs, so no wait states are modelled.
//
// mem is a leaf of the dependency graph; cpu executes against it,
// bench extracts kernel outputs from it, and the mc engine keeps one
// worker-private Memory per goroutine.
package mem

import "fmt"

// Region boundaries of the default memory map. The text segment of the
// assembler lands in the instruction region, .data in the data region.
const (
	IMemBase = 0x00000000
	IMemSize = 0x00040000 // 256 KiB instruction SRAM
	DMemBase = 0x00040000
	DMemSize = 0x00040000 // 256 KiB data SRAM
)

// AccessError reports an out-of-range or misaligned access. The simulator
// converts it into a bus-error trap, which ends a faulty run.
type AccessError struct {
	Addr  uint32
	Size  int
	Write bool
	Why   string
}

func (e *AccessError) Error() string {
	kind := "load"
	if e.Write {
		kind = "store"
	}
	return fmt.Sprintf("mem: %s of %d bytes at 0x%08x: %s", kind, e.Size, e.Addr, e.Why)
}

// Memory is the unified memory of the simulated system.
type Memory struct {
	bytes []byte

	// Access statistics, useful for benchmark characterization.
	Loads  uint64
	Stores uint64
}

// New returns a zeroed memory covering both SRAM regions.
func New() *Memory {
	return &Memory{bytes: make([]byte, IMemSize+DMemSize)}
}

// Reset zeroes the memory and the access counters.
func (m *Memory) Reset() {
	for i := range m.bytes {
		m.bytes[i] = 0
	}
	m.Loads, m.Stores = 0, 0
}

// Size returns the total number of bytes backed by the memory.
func (m *Memory) Size() uint32 { return uint32(len(m.bytes)) }

func (m *Memory) check(addr uint32, size int, write bool) error {
	if uint64(addr)+uint64(size) > uint64(len(m.bytes)) {
		return &AccessError{Addr: addr, Size: size, Write: write, Why: "out of range"}
	}
	if addr%uint32(size) != 0 {
		return &AccessError{Addr: addr, Size: size, Write: write, Why: "misaligned"}
	}
	return nil
}

// LoadWord reads a big-endian 32-bit word.
func (m *Memory) LoadWord(addr uint32) (uint32, error) {
	if err := m.check(addr, 4, false); err != nil {
		return 0, err
	}
	m.Loads++
	b := m.bytes[addr:]
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
}

// LoadHalf reads a big-endian 16-bit halfword (zero-extended by the CPU).
func (m *Memory) LoadHalf(addr uint32) (uint16, error) {
	if err := m.check(addr, 2, false); err != nil {
		return 0, err
	}
	m.Loads++
	b := m.bytes[addr:]
	return uint16(b[0])<<8 | uint16(b[1]), nil
}

// LoadByte reads one byte.
func (m *Memory) LoadByte(addr uint32) (uint8, error) {
	if err := m.check(addr, 1, false); err != nil {
		return 0, err
	}
	m.Loads++
	return m.bytes[addr], nil
}

// StoreWord writes a big-endian 32-bit word.
func (m *Memory) StoreWord(addr uint32, v uint32) error {
	if err := m.check(addr, 4, true); err != nil {
		return err
	}
	m.Stores++
	b := m.bytes[addr:]
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
	return nil
}

// StoreHalf writes a big-endian 16-bit halfword.
func (m *Memory) StoreHalf(addr uint32, v uint16) error {
	if err := m.check(addr, 2, true); err != nil {
		return err
	}
	m.Stores++
	b := m.bytes[addr:]
	b[0], b[1] = byte(v>>8), byte(v)
	return nil
}

// StoreByte writes one byte.
func (m *Memory) StoreByte(addr uint32, v uint8) error {
	if err := m.check(addr, 1, true); err != nil {
		return err
	}
	m.Stores++
	m.bytes[addr] = v
	return nil
}

// FetchWord reads an instruction word. Fetches are not counted as data
// loads.
func (m *Memory) FetchWord(addr uint32) (uint32, error) {
	if err := m.check(addr, 4, false); err != nil {
		return 0, err
	}
	b := m.bytes[addr:]
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
}

// LoadImage copies a byte image to base without touching the counters;
// used by the program loader.
func (m *Memory) LoadImage(base uint32, img []byte) error {
	if uint64(base)+uint64(len(img)) > uint64(len(m.bytes)) {
		return &AccessError{Addr: base, Size: len(img), Write: true, Why: "image out of range"}
	}
	copy(m.bytes[base:], img)
	return nil
}

// ReadWords bulk-reads n words starting at base; used by benchmark output
// extraction. It bypasses the access counters.
func (m *Memory) ReadWords(base uint32, n int) ([]uint32, error) {
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		if err := m.check(base+uint32(4*i), 4, false); err != nil {
			return nil, err
		}
		b := m.bytes[base+uint32(4*i):]
		out[i] = uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	}
	return out, nil
}

// WriteWords bulk-writes words starting at base, bypassing the counters;
// used by benchmark input generators.
func (m *Memory) WriteWords(base uint32, ws []uint32) error {
	for i, w := range ws {
		addr := base + uint32(4*i)
		if uint64(addr)+4 > uint64(len(m.bytes)) || addr%4 != 0 {
			return &AccessError{Addr: addr, Size: 4, Write: true, Why: "out of range or misaligned"}
		}
		b := m.bytes[addr:]
		b[0], b[1], b[2], b[3] = byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
	}
	return nil
}
