package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Golden-file regression tests: the rendered output of the experiment
// runners at a pinned (seed, scale, reduced-DTA) operating point is
// compared byte-for-byte against committed fixtures. Any change to the
// simulator, the fault models, the Monte-Carlo engine (including the
// trace-replay fast path) or the table renderers that shifts a single
// digit shows up here. Regenerate the fixtures after an intended change
// with:
//
//	go test ./internal/experiments/ -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture %s (run with -update to create it): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from the committed fixture.\n--- got ---\n%s\n--- want ---\n%s\nRun with -update if the change is intended.",
			path, got, want)
	}
}

func TestTable1Golden(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Table1(options(&buf)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1.golden", buf.Bytes())
}

func TestFig1Golden(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Fig1(options(&buf)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig1.golden", buf.Bytes())
}
