package mitigate

import (
	"math"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dta"
	"repro/internal/mc"
	"repro/internal/power"
)

var (
	sysOnce sync.Once
	sys     *core.System
)

func system() *core.System {
	sysOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.DTA = dta.Config{Cycles: 768, Seed: 5}
		sys = core.New(cfg)
	})
	return sys
}

func cellAt(t *testing.T, model core.ModelSpec, fMHz float64, trials int) mc.CellResult {
	t.Helper()
	spec := mc.Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  model,
		Trials: trials,
		Seed:   11,
	}
	pt, err := mc.Run(spec, fMHz)
	if err != nil {
		t.Fatal(err)
	}
	m := model
	m.FreqMHz = fMHz
	return mc.CellResult{Bench: "median", Model: m, Point: pt}
}

// TestRazorOverheadExactProduct pins the razor energy accounting bit
// for bit: the replay overhead of a cell is exactly (detected faults) x
// (replay window cycles x energy per cycle), nothing folded in.
func TestRazorOverheadExactProduct(t *testing.T) {
	c := cellAt(t, core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010}, 880, 60)
	if c.Point.FIRate == 0 {
		t.Fatal("test cell injected nothing; pick a higher frequency")
	}
	opt := Options{}.withDefaults()
	rs := Evaluate(system(), 0, []mc.CellResult{c}, opt)
	var razor *Result
	for i := range rs {
		if rs[i].Scheme == SchemeRazor {
			razor = &rs[i]
		}
	}
	if razor == nil {
		t.Fatal("no razor result")
	}
	epc := EnergyPerCyclePJ(opt.Power, 0.7, 880)
	wantDetected := opt.RazorCoverage * razor.FaultsPerTrial
	if razor.Detected != wantDetected {
		t.Errorf("detected = %v, want exactly %v", razor.Detected, wantDetected)
	}
	if want := wantDetected * (opt.ReplayCycles * epc); razor.OverheadPJ != want {
		t.Errorf("razor overhead = %v, want exactly detected x replay-window energy = %v",
			razor.OverheadPJ, want)
	}
	if razor.TotalEnergyPJ != razor.BaseEnergyPJ+razor.OverheadPJ {
		t.Errorf("total %v != base %v + overhead %v",
			razor.TotalEnergyPJ, razor.BaseEnergyPJ, razor.OverheadPJ)
	}
	if razor.EffQuality < razor.RawQuality {
		t.Errorf("razor lowered quality: %v -> %v", razor.RawQuality, razor.EffQuality)
	}
}

// TestDetectionMassMatchesBruteForce checks the per-op aggregation of
// the coded-datapath error mass against the brute-force per-query sum
// over the golden stream: same expectation, different summation
// grouping, agreeing to 1e-12 relative.
func TestDetectionMassMatchesBruteForce(t *testing.T) {
	b := bench.Median()
	spec := core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010, FreqMHz: 880}
	h, err := system().Hazard(b, 42, spec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := system().Golden(b, 42)
	if err != nil {
		t.Fatal(err)
	}
	perOp, total := DetectionMass(h, g.Queries)
	if total <= 0 {
		t.Fatal("no error mass at a faulting operating point")
	}
	var brute float64
	for i := range g.Queries {
		brute += h.PerOp[g.Queries[i].Op]
	}
	if rel := math.Abs(total-brute) / brute; rel > 1e-12 {
		t.Errorf("aggregated mass %v vs brute-force %v: relative error %v > 1e-12",
			total, brute, rel)
	}
	var sum float64
	for _, m := range perOp {
		sum += m
	}
	if math.Abs(sum-total)/total > 1e-12 {
		t.Errorf("per-op masses sum to %v, total says %v", sum, total)
	}
}

// TestZeroFaultCellsHaveZeroRazorOverhead: a clean operating point
// detects nothing and replays nothing — razor overhead exactly zero,
// quality exactly preserved at 1.
func TestZeroFaultCellsHaveZeroRazorOverhead(t *testing.T) {
	c := cellAt(t, core.ModelSpec{Kind: "none"}, 700, 10)
	rs := Evaluate(nil, 0, []mc.CellResult{c}, Options{})
	if len(rs) != len(Schemes()) {
		t.Fatalf("got %d results, want %d", len(rs), len(Schemes()))
	}
	for _, r := range rs {
		if r.FaultsPerTrial != 0 {
			t.Errorf("%s: clean cell reports %v faults/trial", r.Scheme, r.FaultsPerTrial)
		}
		if r.EffQuality != 1 {
			t.Errorf("%s: clean cell effective quality %v, want exactly 1", r.Scheme, r.EffQuality)
		}
		if r.Scheme != SchemeCoded && r.OverheadPJ != 0 {
			t.Errorf("%s: clean cell carries overhead %v pJ, want exactly 0", r.Scheme, r.OverheadPJ)
		}
	}
}

// TestCodedOverheadIsConstantFraction: the coded datapath pays its
// encode/decode energy every cycle, faults or not.
func TestCodedOverheadIsConstantFraction(t *testing.T) {
	c := cellAt(t, core.ModelSpec{Kind: "none"}, 700, 10)
	opt := Options{}.withDefaults()
	rs := Evaluate(nil, 0, []mc.CellResult{c}, opt)
	for _, r := range rs {
		if r.Scheme != SchemeCoded {
			continue
		}
		if want := opt.CodedEnergyFrac * r.BaseEnergyPJ; r.OverheadPJ != want {
			t.Errorf("coded overhead = %v, want exactly %v", r.OverheadPJ, want)
		}
	}
}

// TestHazardExactBeatsFallback: with a System, hazard-capable cells get
// the table-exact fault mass; without one, the FIRate fallback.
func TestHazardExactBeatsFallback(t *testing.T) {
	c := cellAt(t, core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010}, 880, 60)
	exact := Evaluate(system(), 42, []mc.CellResult{c}, Options{})
	if !exact[0].HazardExact {
		t.Error("hazard-capable cell did not use the table-exact mass")
	}
	fallback := Evaluate(nil, 42, []mc.CellResult{c}, Options{})
	if fallback[0].HazardExact {
		t.Error("nil system claimed hazard exactness")
	}
	if fallback[0].FaultsPerTrial != c.Point.FIRate/1000*c.Point.KernelCycles {
		t.Errorf("fallback mass %v, want FIRate-derived %v",
			fallback[0].FaultsPerTrial, c.Point.FIRate/1000*c.Point.KernelCycles)
	}
	// Deep in the failure region the observed FIRate undercounts (the
	// sampled trials stop at their first fault), so the table-exact
	// unconditional mass dominates the fallback — but both must agree
	// the point is faulting.
	if e, f := exact[0].FaultsPerTrial, fallback[0].FaultsPerTrial; e <= 0 || f <= 0 || e < f {
		t.Errorf("hazard-exact mass %v should be positive and at least the FIRate-observed %v", e, f)
	}
}

func TestEffQualityBounds(t *testing.T) {
	if q := effQuality(0.5, 0); q != 0.5 {
		t.Errorf("no detection changed quality: %v", q)
	}
	if q := effQuality(0.5, 1); q != 1 {
		t.Errorf("full detection of finite loss = %v, want 1", q)
	}
	if q := effQuality(1, 0.5); q != 1 {
		t.Errorf("perfect raw quality degraded to %v", q)
	}
	if q := effQuality(0, 0.9); math.Abs(q-0.9) > 1e-15 {
		t.Errorf("zero raw quality with 0.9 detection = %v, want 0.9", q)
	}
}

func TestEnergyPerCyclePJ(t *testing.T) {
	pm := power.Default()
	// 15.0 uW/MHz active at 0.7 V with 3% leakage: total/f is
	// independent of f and just above the active density.
	e := EnergyPerCyclePJ(pm, 0.7, 700)
	if e < 15.0 || e > 16.0 {
		t.Errorf("energy per cycle at 0.7 V = %v pJ, want ~15.5", e)
	}
	if e2 := EnergyPerCyclePJ(pm, 0.7, 900); math.Abs(e2-e) > 1e-12 {
		t.Errorf("energy per cycle depends on frequency: %v vs %v", e, e2)
	}
}
