// Custom kernel: bring your own workload. This example assembles a small
// dot-product kernel for the simulated core, wraps it in a Benchmark with
// a golden model and metric, and evaluates it under model C — the
// workflow for studying a new application's timing-error resilience.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/circuit"
)

const n = 64

func build(seed int64) (string, []uint32, error) {
	// Deterministic pseudo-random 16-bit inputs.
	a := make([]uint32, n)
	b := make([]uint32, n)
	s := uint32(seed)*2654435761 + 1
	next := func() uint32 { s = s*1664525 + 1013904223; return s >> 16 }
	var dot uint32
	src := ""
	for i := 0; i < n; i++ {
		a[i], b[i] = next(), next()
		dot += a[i] * b[i]
	}
	src += `
	l.movhi r1,hi(avec)
	l.ori   r1,r1,lo(avec)
	l.movhi r2,hi(bvec)
	l.ori   r2,r2,lo(bvec)
	l.sys 1
	l.addi  r4,r0,0         ; i
	l.addi  r5,r0,0         ; acc
loop:
	l.slli  r6,r4,2
	l.add   r7,r1,r6
	l.lwz   r8,0(r7)
	l.add   r7,r2,r6
	l.lwz   r10,0(r7)
	l.mul   r11,r8,r10
	l.add   r5,r5,r11
	l.addi  r4,r4,1
	l.sfltsi r4,64
	l.bf    loop
	l.sys 2
	l.movhi r3,hi(dot)
	l.ori   r3,r3,lo(dot)
	l.sw    0(r3),r5
	l.sys 0
.data
dot:
	.word 0
avec:
`
	for _, v := range a {
		src += fmt.Sprintf("\t.word %d\n", v)
	}
	src += "bvec:\n"
	for _, v := range b {
		src += fmt.Sprintf("\t.word %d\n", v)
	}
	return src, []uint32{dot}, nil
}

func main() {
	dotprod := &repro.Benchmark{
		Name:       "dotprod",
		MetricName: "relative difference",
		// 16-bit operands: characterize the multiplier accordingly.
		Profile:   repro.Profile{circuit.UnitMul: "u16"},
		Build:     build,
		OutSymbol: "dot",
		OutWords:  1,
		Metric: func(got, want []uint32) float64 {
			if got[0] == want[0] {
				return 0
			}
			d := float64(int64(got[0]) - int64(want[0]))
			if d < 0 {
				d = -d
			}
			e := d / float64(want[0]) * 100
			if e > 100 {
				e = 100
			}
			return e
		},
	}

	cfg := repro.DefaultConfig()
	cfg.DTA.Cycles = 2048
	sys := repro.NewSystem(cfg)
	fmt.Printf("%8s %10s %10s %12s\n", "f[MHz]", "finished", "correct", "rel-err")
	for _, f := range []float64{707, 740, 780, 820, 880} {
		pt, err := repro.Run(repro.Spec{
			System: sys, Bench: dotprod,
			Model:  repro.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
			Trials: 50, Seed: 11,
		}, f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.0f %9.1f%% %9.1f%% %11.2f%%\n",
			f, pt.FinishedPct, pt.CorrectPct, pt.OutputErr)
	}
}
