// Command characterize runs the gate-level dynamic timing analysis for
// one instruction and dumps the per-endpoint timing-error CDF onsets and
// selected violation probabilities, the data behind the paper's Fig. 2.
//
//	characterize -op l.mul -vdd 0.7 -cycles 8192
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/isa"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("characterize: ")
	opName := flag.String("op", "l.add", "instruction mnemonic (e.g. l.add, l.mul, l.sfgts)")
	vdd := flag.Float64("vdd", 0.7, "supply voltage in V")
	cycles := flag.Int("cycles", 8192, "characterization kernel cycles")
	gen := flag.String("gen", "", "operand generator override (u32, u16, u8, imm16, ...)")
	flag.Parse()

	var op isa.Op
	for _, o := range isa.AllOps() {
		if o.String() == *opName {
			op = o
		}
	}
	if op == isa.OpInvalid || !isa.IsALU(op) {
		log.Fatalf("%q is not an FI-eligible ALU instruction", *opName)
	}

	cfg := core.DefaultConfig()
	cfg.DTA.Cycles = *cycles
	sys := core.New(cfg)

	var profile map[circuit.UnitKind]string
	if *gen != "" {
		profile = map[circuit.UnitKind]string{circuit.UnitOf(op): *gen}
	}
	ch, err := sys.Char.ForOp(op, profile, *vdd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instruction    %v (unit %v, operands %q)\n", op, ch.Key.Unit, ch.Key.Gen)
	fmt.Printf("vdd            %.3f V, %d cycles, setup %.1f ps\n", *vdd, ch.Cycles, ch.SetupPs)
	fmt.Printf("STA limit      %.1f MHz\n", sys.STALimitMHz(*vdd))
	fmt.Printf("onset          %.1f MHz (first timing violations)\n", ch.OnsetMHz())
	fmt.Printf("\n%8s %12s %12s %10s %10s %10s\n",
		"endpoint", "maxArr[ps]", "onset[MHz]", "P@900MHz", "P@1200MHz", "P@1600MHz")
	for e := 0; e < ch.NumEndpoints(); e++ {
		name := fmt.Sprintf("bit%d", e)
		if e == circuit.FlagEndpoint {
			name = "flag"
		}
		c := ch.CDFs[e]
		fmt.Printf("%8s %12.1f %12.1f %9.2f%% %9.2f%% %9.2f%%\n",
			name, c.MaxPs(), c.OnsetMHz(),
			c.ViolationProb(circuit.PeriodPs(900))*100,
			c.ViolationProb(circuit.PeriodPs(1200))*100,
			c.ViolationProb(circuit.PeriodPs(1600))*100)
	}
}
