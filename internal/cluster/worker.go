// The worker side of distributed grid execution: a small HTTP surface
// that executes leased cells on this node's core.System and streams
// results back as they land. A worker is stateless between leases —
// everything it needs arrives in the LeaseRequest — so workers can be
// added, restarted, or killed freely; the coordinator's lease
// reassignment and the content-addressed cell keys absorb the churn.

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/mc"
)

// progressInterval throttles progress events on the lease stream: cell
// and terminal events always flush immediately, progress snapshots at
// most this often.
const progressInterval = 100 * time.Millisecond

// maxLeaseBody bounds a lease request; a canonical spec plus a cell
// index batch is far smaller.
const maxLeaseBody = 1 << 20

// Worker executes leased cells over one core.System. Zero value fields
// default sanely; construct literally and serve Handler().
type Worker struct {
	// System is this node's simulation substrate. Its fingerprint must
	// match the coordinator's (same core.Config), or every lease is
	// refused with 409.
	System *core.System
	// Store, when non-nil, checkpoints completed cells and serves
	// resumed ones — workers sharing a cache directory make a warm
	// cluster run answer from disk.
	Store *artifact.Store
	// Workers caps the mc trial pool per leased cell (0 = NumCPU).
	Workers int
	// CellDelay, when positive, sleeps after each computed (non-cached)
	// cell before reporting it — a fixed per-node service latency used
	// by the cluster benchmarks to emulate node capacity on machines
	// with fewer cores than workers. Zero in production.
	CellDelay time.Duration
	// Logf, when set, receives one line per lease.
	Logf func(format string, args ...any)
}

// Handler exposes the worker protocol: the lease verb plus a liveness
// probe compatible with the daemon's (scripts poll /v1/healthz while a
// node boots).
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/worker/lease", w.handleLease)
	mux.HandleFunc("GET /v1/healthz", func(rw http.ResponseWriter, r *http.Request) {
		workerJSON(rw, http.StatusOK, map[string]string{"status": "ok", "role": "worker"})
	})
	return mux
}

func workerJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	_ = json.NewEncoder(rw).Encode(v)
}

// handleLease validates the lease against this node's substrate, then
// executes the leased cells one at a time — each through the same grid
// engine a local run uses — streaming an NDJSON event per completion so
// the coordinator merges (and checkpoints) cells as they land rather
// than at lease end.
func (w *Worker) handleLease(rw http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, maxLeaseBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		workerJSON(rw, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("decode lease: %v", err)})
		return
	}
	if len(req.Cells) == 0 {
		workerJSON(rw, http.StatusBadRequest, map[string]string{"error": "lease has no cells"})
		return
	}
	spec, err := req.Spec.Canonicalize()
	if err != nil {
		workerJSON(rw, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("spec: %v", err)})
		return
	}
	if fp := spec.Fingerprint(w.System.Fingerprint()); fp != req.Fingerprint {
		// A mismatched fingerprint means this worker's closure (netlists,
		// DTA config, timing tables, spec canonicalization) differs from
		// the coordinator's: its Points would not be bit-identical, so
		// refusing loudly is the only safe answer.
		workerJSON(rw, http.StatusConflict, map[string]string{
			"error": fmt.Sprintf("cluster: fingerprint mismatch: worker computes %s, lease carries %s (worker substrate differs from coordinator)", fp, req.Fingerprint),
		})
		return
	}

	st := &leaseStream{}
	grid, err := spec.Grid(w.System, w.Store, w.Workers, st.progress)
	if err != nil {
		workerJSON(rw, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	// Keys come from a non-resuming plan (no store reads): the execution
	// path below consults the store itself.
	keyGrid := grid
	keyGrid.Resume = false
	plan, err := keyGrid.PlanCells()
	if err != nil {
		workerJSON(rw, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	for _, idx := range req.Cells {
		if idx < 0 || idx >= len(plan) {
			workerJSON(rw, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("cell index %d out of range (grid has %d cells)", idx, len(plan))})
			return
		}
	}
	flusher, ok := rw.(http.Flusher)
	if !ok {
		workerJSON(rw, http.StatusInternalServerError, map[string]string{"error": "streaming unsupported"})
		return
	}
	if w.Logf != nil {
		w.Logf("lease %s: %d cells", req.LeaseID, len(req.Cells))
	}
	rw.Header().Set("Content-Type", "application/x-ndjson")
	rw.WriteHeader(http.StatusOK)
	st.enc = json.NewEncoder(rw)
	st.flush = flusher
	flusher.Flush()

	ctx := r.Context()
	for _, idx := range req.Cells {
		res, err := grid.RunCells(ctx, []int{idx})
		if err != nil {
			if ctx.Err() != nil {
				// The coordinator hung up (steal completed elsewhere, job
				// canceled, lease deadline): nothing left to tell it.
				return
			}
			st.write(LeaseEvent{Event: "error", Index: idx, Error: err.Error()})
			return
		}
		cr := res[0]
		if w.CellDelay > 0 && !cr.Cached {
			select {
			case <-time.After(w.CellDelay):
			case <-ctx.Done():
				return
			}
		}
		pt := cr.Point
		st.cell(LeaseEvent{Event: "cell", Index: idx, Key: plan[idx].Key, Cached: cr.Cached, Point: &pt})
	}
	st.write(LeaseEvent{Event: "done"})
}

// leaseStream serializes event writes (the engine's progress callback
// races the execution loop) and accumulates the lease-cumulative
// progress baseline as cells settle.
type leaseStream struct {
	mu    sync.Mutex
	enc   *json.Encoder
	flush http.Flusher

	lastProgress                 time.Time
	settledTrials, settledPoints int
	curTrials, curPoints         int
}

// progress relays one engine snapshot (scoped to the cell currently
// executing) as a lease-cumulative event, throttled.
func (s *leaseStream) progress(p mc.Progress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.enc == nil {
		return // headers not committed yet (plan phase)
	}
	s.curTrials, s.curPoints = p.DoneTrials, p.DonePoints
	now := time.Now()
	if now.Sub(s.lastProgress) < progressInterval {
		return
	}
	s.lastProgress = now
	s.writeLocked(LeaseEvent{
		Event:      "progress",
		DoneTrials: s.settledTrials + p.DoneTrials, TotalTrials: s.settledTrials + p.TotalTrials,
		DonePoints: s.settledPoints + p.DonePoints, TotalPoints: s.settledPoints + p.TotalPoints,
	})
}

// cell settles a completed cell into the progress baseline and flushes
// its event immediately.
func (s *leaseStream) cell(ev LeaseEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.settledTrials += ev.Point.Trials
	s.settledPoints++
	s.curTrials, s.curPoints = 0, 0
	s.writeLocked(ev)
}

func (s *leaseStream) write(ev LeaseEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeLocked(ev)
}

func (s *leaseStream) writeLocked(ev LeaseEvent) {
	// Write errors are deliberately dropped: a vanished coordinator
	// shows up as the request context closing, which the execution loop
	// already honours.
	_ = s.enc.Encode(ev)
	s.flush.Flush()
}

// Serve is a convenience for cmd/fisimd's worker mode: serve the worker
// protocol on addr until ctx is canceled, then shut down gracefully.
func Serve(ctx context.Context, addr string, w *Worker) error {
	srv := &http.Server{Addr: addr, Handler: w.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}
