// Command fisimctl is the thin client for the fisimd batch-simulation
// daemon: it submits experiment-grid jobs, polls or streams their
// progress, and fetches results, speaking the plain HTTP/JSON API of
// docs/API.md — anything it does can be reproduced with curl.
//
//	fisimctl -addr http://localhost:8023 submit -bench median -model C \
//	    -lo 690 -hi 730 -step 20 -trials 8 -wait -format csv
//	fisimctl status j000001
//	fisimctl result j000001 -format csv -o out.csv
//	fisimctl watch j000001
//	fisimctl cancel j000001
//	fisimctl stats
//
// submit prints the job ID (and, with -wait, blocks until the job is
// terminal and prints the result). Exit status is non-zero on failed or
// cancelled jobs.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fisimctl: ")
	addr := flag.String("addr", envOr("FISIMD_ADDR", "http://localhost:8023"), "fisimd base URL (or $FISIMD_ADDR)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fisimctl [-addr URL] {submit|status|result|watch|cancel|list|stats} ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	c := &client{base: strings.TrimRight(*addr, "/")}
	var err error
	switch args[0] {
	case "submit":
		err = c.submit(args[1:])
	case "status":
		err = c.status(args[1:])
	case "result":
		err = c.result(args[1:])
	case "watch":
		err = c.watch(args[1:])
	case "cancel":
		err = c.cancel(args[1:])
	case "list":
		err = c.getJSON("/v1/jobs", os.Stdout)
	case "stats":
		err = c.getJSON("/v1/stats", os.Stdout)
	default:
		log.Fatalf("unknown command %q", args[0])
	}
	if err != nil {
		log.Fatal(err)
	}
}

func envOr(k, def string) string {
	if v := os.Getenv(k); v != "" {
		return v
	}
	return def
}

type client struct{ base string }

// apiError decodes the server's {"error": ...} body for non-2xx
// responses.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
}

func (c *client) getJSON(path string, w io.Writer) error {
	resp, err := http.Get(c.base + path)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	defer resp.Body.Close()
	_, err = io.Copy(w, resp.Body)
	return err
}

func (c *client) submit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	benches := fs.String("bench", "median", "benchmark name(s), comma-separated")
	models := fs.String("model", "C", "fault model(s): none, A, B, B+, C (comma-separated)")
	vdds := fs.String("vdd", "0.7", "supply voltage(s) in V (comma-separated)")
	sigmas := fs.String("sigma", "0", "supply noise sigma(s) in V (comma-separated)")
	freqs := fs.String("freq", "", "explicit frequency list in MHz (comma-separated; overrides -lo/-hi/-step)")
	lo := fs.Float64("lo", 650, "sweep start in MHz")
	hi := fs.Float64("hi", 1100, "sweep end in MHz")
	step := fs.Float64("step", 25, "sweep step in MHz")
	trials := fs.Int("trials", 100, "Monte-Carlo trials per point")
	trialsMin := fs.Int("trials-min", 0, "adaptive mode: first batch size (with -trials-max)")
	trialsMax := fs.Int("trials-max", 0, "adaptive mode: trial budget per point")
	seed := fs.Int64("seed", 1, "random seed")
	mode := fs.String("mode", "auto", "trial path: auto, scan or full")
	wait := fs.Bool("wait", false, "block until the job is terminal, then print the result")
	format := fs.String("format", "json", "result format with -wait: json or csv")
	outFile := fs.String("o", "", "write -wait result to this file (default stdout)")
	fs.Parse(args)

	spec := map[string]any{
		"benches": splitList(*benches),
		"models":  splitList(*models),
		"vdds":    floats("vdd", *vdds),
		"sigmas":  floats("sigma", *sigmas),
		"trials":  *trials, "trials_min": *trialsMin, "trials_max": *trialsMax,
		"seed": *seed, "mode": *mode,
	}
	if *freqs != "" {
		spec["freqs"] = floats("freq", *freqs)
	} else {
		spec["freq_lo"], spec["freq_hi"], spec["freq_step"] = *lo, *hi, *step
	}
	blob, _ := json.Marshal(spec)
	resp, err := http.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	var sub struct {
		ID      string `json:"id"`
		State   string `json:"state"`
		Deduped bool   `json:"deduped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		resp.Body.Close()
		return err
	}
	resp.Body.Close()
	fmt.Fprintf(os.Stderr, "job %s state=%s deduped=%v\n", sub.ID, sub.State, sub.Deduped)
	if !*wait {
		fmt.Println(sub.ID)
		return nil
	}
	if err := c.awaitTerminal(sub.ID); err != nil {
		return err
	}
	return c.fetchResult(sub.ID, *format, *outFile)
}

// awaitTerminal long-polls until the job reaches a terminal state,
// erroring out on failed/cancelled jobs.
func (c *client) awaitTerminal(id string) error {
	for {
		resp, err := http.Get(c.base + "/v1/jobs/" + id + "?wait=30s")
		if err != nil {
			return err
		}
		if resp.StatusCode/100 != 2 {
			return apiError(resp)
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch st.State {
		case "done":
			return nil
		case "failed":
			return fmt.Errorf("job %s failed: %s", id, st.Error)
		case "canceled":
			return fmt.Errorf("job %s canceled", id)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func (c *client) fetchResult(id, format, outFile string) (err error) {
	resp, err := http.Get(c.base + "/v1/jobs/" + id + "/result?format=" + format)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	defer resp.Body.Close()
	out := io.Writer(os.Stdout)
	if outFile != "" {
		var f *os.File
		if f, err = os.Create(outFile); err != nil {
			return err
		}
		// Propagate the close error through the named return: a failed
		// flush must not pass for a successful export.
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		out = f
	}
	_, err = io.Copy(out, resp.Body)
	return err
}

func (c *client) status(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: fisimctl status <job-id>")
	}
	return c.getJSON("/v1/jobs/"+args[0], os.Stdout)
}

func (c *client) result(args []string) error {
	fs := flag.NewFlagSet("result", flag.ExitOnError)
	format := fs.String("format", "json", "json or csv")
	outFile := fs.String("o", "", "output file (default stdout)")
	if len(args) < 1 {
		return fmt.Errorf("usage: fisimctl result <job-id> [-format json|csv] [-o file]")
	}
	fs.Parse(args[1:])
	return c.fetchResult(args[0], *format, *outFile)
}

// watch prints the SSE progress stream line by line until the terminal
// "done" event.
func (c *client) watch(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: fisimctl watch <job-id>")
	}
	resp, err := http.Get(c.base + "/v1/jobs/" + args[0] + "/events")
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			fmt.Printf("%s %s\n", event, strings.TrimPrefix(line, "data: "))
		}
	}
	return sc.Err()
}

func (c *client) cancel(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: fisimctl cancel <job-id>")
	}
	req, err := http.NewRequest(http.MethodDelete, c.base+"/v1/jobs/"+args[0], nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	defer resp.Body.Close()
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func floats(name, s string) []float64 {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			log.Fatalf("-%s: %v", name, err)
		}
		out = append(out, v)
	}
	return out
}
