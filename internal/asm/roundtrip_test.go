// Assemble -> disassemble -> assemble fixpoint tests. These live in an
// external test package so they can pull the real benchmark kernels in
// (bench imports asm) without an import cycle.
package asm_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/isa"
)

// disassemble renders a text segment back to assembly source, one
// instruction per line with numeric (label-free) operands, prefixed with
// an .org that pins the original base so pc-relative offsets stay valid.
func disassemble(seg asm.Segment) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, ".org 0x%x\n", seg.Base)
	if len(seg.Bytes)%4 != 0 {
		return "", fmt.Errorf("text segment of %d bytes not word-aligned", len(seg.Bytes))
	}
	for i := 0; i+4 <= len(seg.Bytes); i += 4 {
		w := uint32(seg.Bytes[i])<<24 | uint32(seg.Bytes[i+1])<<16 |
			uint32(seg.Bytes[i+2])<<8 | uint32(seg.Bytes[i+3])
		in := isa.Decode(w)
		if in.Op == isa.OpInvalid {
			return "", fmt.Errorf("word %08x at offset %d does not decode", w, i)
		}
		fmt.Fprintf(&b, "\t%v\n", in)
	}
	return b.String(), nil
}

// TestDisassembleRoundTripKernels checks the fixpoint on every real
// benchmark kernel: assembling the disassembly reproduces the text image
// bit for bit, and disassembling that is textually stable.
func TestDisassembleRoundTripKernels(t *testing.T) {
	for _, bm := range append(bench.All(), bench.Micros()...) {
		src, _, err := bm.Build(42)
		if err != nil {
			t.Fatalf("%s: build: %v", bm.Name, err)
		}
		p1, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("%s: assemble: %v", bm.Name, err)
		}
		dis, err := disassemble(p1.Text)
		if err != nil {
			t.Fatalf("%s: disassemble: %v", bm.Name, err)
		}
		p2, err := asm.Assemble(dis)
		if err != nil {
			t.Fatalf("%s: reassemble:\n%s\n%v", bm.Name, dis, err)
		}
		if p2.Text.Base != p1.Text.Base {
			t.Fatalf("%s: text base moved: %#x -> %#x", bm.Name, p1.Text.Base, p2.Text.Base)
		}
		if string(p2.Text.Bytes) != string(p1.Text.Bytes) {
			t.Fatalf("%s: reassembled text differs (%d vs %d bytes)",
				bm.Name, len(p2.Text.Bytes), len(p1.Text.Bytes))
		}
		dis2, err := disassemble(p2.Text)
		if err != nil {
			t.Fatalf("%s: second disassembly: %v", bm.Name, err)
		}
		if dis2 != dis {
			t.Fatalf("%s: disassembly not a fixpoint", bm.Name)
		}
	}
}

// FuzzAssemble feeds arbitrary sources through the assembler: it must
// never panic, must be deterministic, and on success with a fully
// decodable text image the disassembly round-trip must hold.
func FuzzAssemble(f *testing.F) {
	f.Add("\tl.addi r1,r0,42\n\tl.sys 0\n")
	f.Add("loop:\n\tl.addi r1,r1,-1\n\tl.sfgtsi r1,0\n\tl.bf loop\n\tl.sys 0\n")
	f.Add(".data\nbuf: .word 1, 2, -3\n.text\n\tl.movhi r2,hi(buf)\n\tl.ori r2,r2,lo(buf)\n")
	f.Add(".org 0x200\n\tl.sw -4(r3),r4\n\tl.nop\n")
	f.Add(".align 8\n.half 1,2\n.byte 3\n.space 5\n")
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := asm.Assemble(src)
		if err != nil {
			return
		}
		p2, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("second assembly failed: %v", err)
		}
		if string(p1.Text.Bytes) != string(p2.Text.Bytes) ||
			string(p1.Data.Bytes) != string(p2.Data.Bytes) || p1.Entry != p2.Entry {
			t.Fatalf("assembly not deterministic")
		}
		dis, err := disassemble(p1.Text)
		if err != nil {
			return // data in text or odd-sized image: no round-trip claim
		}
		p3, err := asm.Assemble(dis)
		if err != nil {
			t.Fatalf("reassembly of disassembled text failed:\n%s\n%v", dis, err)
		}
		if string(p3.Text.Bytes) != string(p1.Text.Bytes) {
			t.Fatalf("reassembled text differs from original")
		}
	})
}
