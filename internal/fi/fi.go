// Package fi implements the paper's four timing-error injection models
// behind a single interface (Table 2 of the paper):
//
//	model A  — fixed-probability random bit flips (no timing data)
//	model B  — deterministic per-endpoint STA period violation
//	model B+ — model B with supply-voltage noise modulating path delays
//	model C  — the proposed statistical model: per-instruction,
//	           per-endpoint violation probabilities from DTA CDFs,
//	           rescaled every cycle by the sampled supply noise
//
// A Model is immutable and shareable; NewTrial binds it to a
// trial-private RNG, producing an injector compatible with the
// cpu.Injector interface (matched structurally, so the packages stay
// decoupled).
//
// In the dependency graph, fi depends on circuit/dta/timing/stats;
// core instantiates and caches its models, cpu calls the injectors
// cycle by cycle, and mc drives the trace-scan (replay.go) and
// first-fault sampling (hazard.go) fast paths built from them.
package fi

import (
	"math"
	"math/bits"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/circuit"
	"repro/internal/dta"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/timing"
)

// Semantics selects what a violated endpoint flip-flop captures.
type Semantics uint8

// Fault semantics. The paper flips register bits (FlipBit); StaleCapture
// keeps the previously latched value at violated endpoints, the other
// physically plausible outcome of a setup violation, and is exercised by
// the ablation benches.
const (
	FlipBit Semantics = iota
	StaleCapture
)

// String names the semantics.
func (s Semantics) String() string {
	if s == StaleCapture {
		return "stale-capture"
	}
	return "flip-bit"
}

// Sampling selects how model C draws violated endpoint sets.
type Sampling uint8

// Sampling modes. Independent evaluates each endpoint against its own
// CDF, the paper-literal reading of Sec. 3.4. Joint bootstraps whole
// characterization cycles, preserving the correlation between endpoints
// that share path segments.
const (
	Independent Sampling = iota
	Joint
)

// String names the sampling mode.
func (s Sampling) String() string {
	if s == Joint {
		return "joint"
	}
	return "independent"
}

// Injector mirrors cpu.Injector; see that type for the contract.
type Injector interface {
	Inject(op isa.Op, result, prevResult uint32, flag, prevFlag bool) (uint32, bool, int)
}

// Model is an immutable injection model bound to one operating point.
type Model interface {
	// Name identifies the model in reports ("A", "B", "B+", "C").
	Name() string
	// NewTrial returns a fresh injector drawing randomness from rng.
	NewTrial(rng *rand.Rand) Injector
}

// apply realizes the configured fault semantics for a set of violated
// endpoints. The returned count is the number of endpoint violations
// (the paper's "FIs"), independent of whether the captured value
// happened to coincide with the correct one.
//
// Result endpoints follow the configured semantics (the paper flips
// register bits). The flag endpoint — our extension that makes compares
// architecturally vulnerable — is treated as a metastable capture under
// FlipBit semantics: the flop resolves to a uniformly random value.
// Deterministic inversion would make heavily over-scaled compares behave
// like correct compares with inverted conditions, letting counted loops
// terminate cleanly and programs "finish" again far beyond total failure,
// which is neither physical nor what the paper observes.
func apply(sem Semantics, rng *rand.Rand, viol uint32, flagViol bool, result, prev uint32, flag, prevFlag bool) (uint32, bool, int) {
	n := bits.OnesCount32(viol)
	if flagViol {
		n++
	}
	if n == 0 {
		return result, flag, 0
	}
	out, outFlag := result, flag
	switch sem {
	case FlipBit:
		out = result ^ viol
		if flagViol {
			outFlag = rng.Float64() < 0.5
		}
	case StaleCapture:
		out = result&^viol | prev&viol
		if flagViol {
			outFlag = prevFlag
		}
	}
	return out, outFlag, n
}

// noiseScale precomputes the per-cycle delay modulation factor
// m = Factor(V+dv)/Factor(V) over the clipped noise range, so the hot
// path replaces a math.Pow with a table interpolation.
type noiseScale struct {
	sigma float64
	clip  float64
	table []float64 // m over dv in [-clip*sigma, +clip*sigma]
}

func newNoiseScale(model timing.VddDelay, v float64, noise timing.Noise) *noiseScale {
	ns := &noiseScale{sigma: noise.Sigma, clip: noise.Clip}
	if noise.Sigma == 0 {
		return ns
	}
	const steps = 2048
	ns.table = make([]float64, steps+1)
	lo := -noise.Clip * noise.Sigma
	hi := +noise.Clip * noise.Sigma
	for i := 0; i <= steps; i++ {
		dv := lo + (hi-lo)*float64(i)/steps
		ns.table[i] = model.FactorRel(v, dv)
	}
	return ns
}

// sample draws a noise value and returns the delay factor m for this
// cycle (1 when no noise is configured).
func (ns *noiseScale) sample(rng *rand.Rand) float64 {
	if ns.sigma == 0 {
		return 1
	}
	return ns.at(rng.NormFloat64() * ns.sigma)
}

// at evaluates the delay factor at a noise value dv (volts) through the
// same clipping and table interpolation the per-cycle sampler uses, so
// the marginalization and conditional-sampling paths below see exactly
// the distribution of sample.
func (ns *noiseScale) at(dv float64) float64 {
	lim := ns.clip * ns.sigma
	if dv > lim {
		dv = lim
	} else if dv < -lim {
		dv = -lim
	}
	pos := (dv + lim) / (2 * lim) * float64(len(ns.table)-1)
	i := int(pos)
	if i >= len(ns.table)-1 {
		return ns.table[len(ns.table)-1]
	}
	frac := pos - float64(i)
	return ns.table[i]*(1-frac) + ns.table[i+1]*frac
}

// maxFactor returns the largest delay factor the noise can produce (the
// worst-case droop saturation atom; 1 without noise).
func (ns *noiseScale) maxFactor() float64 {
	if ns.sigma == 0 {
		return 1
	}
	return ns.table[0]
}

// exceedProb returns P(m > t) over the noise distribution, exactly: the
// table is non-increasing in dv, so {m > t} = {dv < dv_t} for the
// piecewise-linear crossing dv_t, and the clipped Gaussian measure of
// that event is a normal CDF (the saturation atom at -clip*sigma is
// included by construction). Without noise m is deterministically 1.
func (ns *noiseScale) exceedProb(t float64) float64 {
	if ns.sigma == 0 {
		if t < 1 {
			return 1
		}
		return 0
	}
	n := len(ns.table) - 1
	if t >= ns.table[0] {
		return 0
	}
	if t < ns.table[n] {
		return 1
	}
	// Largest index lo with table[lo] > t (exists: table[0] > t).
	lo, hi := 0, n
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if ns.table[mid] > t {
			lo = mid
		} else {
			hi = mid
		}
	}
	frac := 0.0
	if ns.table[lo] != ns.table[lo+1] {
		frac = (ns.table[lo] - t) / (ns.table[lo] - ns.table[lo+1])
	}
	lim := ns.clip * ns.sigma
	dv := -lim + (float64(lo)+frac)*(2*lim)/float64(n)
	return stats.NormalCDF(dv / ns.sigma)
}

// exceedFactor draws a delay factor conditioned on m > t by inverting
// the noise CDF over the exceed mass pExceed (= exceedProb(t), > 0):
// the quantile below the -clip*sigma tail is the saturation atom, the
// rest maps through the normal quantile function. This is the fork-query
// noise draw of first-fault sampling for the threshold models.
func (ns *noiseScale) exceedFactor(rng *rand.Rand, t, pExceed float64) float64 {
	if ns.sigma == 0 {
		return 1
	}
	w := rng.Float64() * pExceed
	lim := ns.clip * ns.sigma
	dv := -lim
	if w > stats.NormalCDF(-ns.clip) {
		dv = ns.sigma * stats.NormalQuantile(w)
	}
	m := ns.at(dv)
	if m <= t {
		// Quantile round-off at the crossing can land a hair outside the
		// conditioned region; nudge back inside.
		m = math.Nextafter(t, math.Inf(1))
	}
	return m
}

// marginalSteps is the trapezoid resolution of marginal. The integrand
// is bounded in [0, 1], so the discretization error is below ~1e-5
// absolute — far inside the Monte-Carlo noise floor the marginal feeds.
const marginalSteps = 1 << 16

// marginal integrates a conditional injection probability pInj(m) over
// the noise distribution of the delay factor m: the saturation atoms at
// +/- clip*sigma carry their exact Gaussian tail mass, the interior is a
// trapezoid against the normal density over the same table interpolation
// the per-cycle sampler uses. The result is the per-query injection
// probability with the supply noise integrated out.
func (ns *noiseScale) marginal(pInj func(m float64) float64) float64 {
	if ns.sigma == 0 {
		return pInj(1)
	}
	tail := stats.NormalCDF(-ns.clip)
	p := tail * (pInj(ns.table[0]) + pInj(ns.table[len(ns.table)-1]))
	lim := ns.clip * ns.sigma
	h := 2 * lim / marginalSteps
	g := func(dv float64) float64 {
		x := dv / ns.sigma
		return pInj(ns.at(dv)) * math.Exp(-0.5*x*x)
	}
	sum := 0.5 * (g(-lim) + g(lim))
	for i := 1; i < marginalSteps; i++ {
		sum += g(-lim + float64(i)*h)
	}
	p += sum * h / (ns.sigma * math.Sqrt(2*math.Pi))
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// conditionedFactor draws a delay factor from the noise distribution
// conditioned on injection, for conditional injection probabilities
// pInj that are monotone non-decreasing in m with upper bound
// pUB = pInj(maxFactor()). Rejection from the unconditioned noise draw:
// the saturation atom guarantees the marginal is at least
// NormalCDF(-clip)*pUB, so the expected number of rounds is bounded by
// 1/NormalCDF(-clip) (about 44 at the paper's 2-sigma clip) regardless
// of how rare injection is. A retry budget caps the tail; on exhaustion
// the draw falls back to the worst-case droop, where pInj peaks.
func (ns *noiseScale) conditionedFactor(rng *rand.Rand, pInj func(m float64) float64, pUB float64) float64 {
	if ns.sigma == 0 || pUB <= 0 {
		return ns.maxFactor()
	}
	const budget = 4096
	for i := 0; i < budget; i++ {
		m := ns.at(rng.NormFloat64() * ns.sigma)
		if rng.Float64()*pUB < pInj(m) {
			return m
		}
	}
	return ns.table[0]
}

// ---------------------------------------------------------------------
// Model A

// ModelA injects purely random bit flips with a fixed per-endpoint,
// per-cycle probability, with no relation to timing, voltage or
// instruction type beyond targeting the EX-stage endpoints.
type ModelA struct {
	// Prob is the per-endpoint flip probability per eligible cycle.
	Prob float64
	Sem  Semantics
}

// Name implements Model.
func (m *ModelA) Name() string { return "A" }

// NewTrial implements Model.
func (m *ModelA) NewTrial(rng *rand.Rand) Injector {
	return &modelAInjector{cfg: m, rng: rng}
}

type modelAInjector struct {
	cfg *ModelA
	rng *rand.Rand
}

func (in *modelAInjector) Inject(op isa.Op, result, prev uint32, flag, prevFlag bool) (uint32, bool, int) {
	var viol uint32
	for e := 0; e < circuit.Width; e++ {
		if in.rng.Float64() < in.cfg.Prob {
			viol |= 1 << uint(e)
		}
	}
	flagViol := isa.IsCompare(op) && in.rng.Float64() < in.cfg.Prob
	return apply(in.cfg.Sem, in.rng, viol, flagViol, result, prev, flag, prevFlag)
}

// endpointsFor counts the endpoints one query of op exposes: the result
// bits, plus the flag flop for compares.
func endpointsFor(op isa.Op) int {
	if isa.IsCompare(op) {
		return circuit.NumEndpoints
	}
	return circuit.Width
}

// MarginalProb implements HazardModel: with n independent endpoints at
// flip probability p, a query injects with probability 1 - (1-p)^n
// (model A has no noise to integrate out).
func (m *ModelA) MarginalProb(op isa.Op) float64 {
	return -math.Expm1(float64(endpointsFor(op)) * math.Log1p(-m.Prob))
}

// SampleAt implements HazardModel: the endpoint subset is drawn
// conditioned on being non-empty via the exact first-index
// decomposition (no rejection), then the configured semantics apply.
func (m *ModelA) SampleAt(rng *rand.Rand, op isa.Op, result, prev uint32, flag, prevFlag bool) (uint32, bool, int) {
	n := endpointsFor(op)
	viol, flagViol := sampleSubsetUniform(rng, m.Prob, n)
	return apply(m.Sem, rng, viol, flagViol, result, prev, flag, prevFlag)
}

// sampleSubsetUniform draws a subset of n equal-probability endpoints
// conditioned on at least one being set: the first violated index k
// follows its exact conditional law P(k | >=1) = (1-p)^k p / (1-(1-p)^n)
// — sampled sequentially as P(k violates | none before, >=1 remaining) =
// p / (1 - (1-p)^(n-k)), which telescopes to the same distribution —
// and the endpoints above k are unconditioned Bernoulli draws. Endpoint
// index circuit.FlagEndpoint is the compare flag.
func sampleSubsetUniform(rng *rand.Rand, p float64, n int) (viol uint32, flagViol bool) {
	set := func(e int) {
		if e == circuit.FlagEndpoint {
			flagViol = true
		} else {
			viol |= 1 << uint(e)
		}
	}
	first := n - 1
	for k := 0; k < n-1; k++ {
		pk := p / -math.Expm1(float64(n-k)*math.Log1p(-p))
		if rng.Float64() < pk {
			first = k
			break
		}
	}
	set(first)
	for e := first + 1; e < n; e++ {
		if rng.Float64() < p {
			set(e)
		}
	}
	return viol, flagViol
}

// ---------------------------------------------------------------------
// Models B and B+

// ModelB injects deterministically whenever the clock period (modulated
// by supply noise for B+) violates the static worst-case path delay to an
// endpoint, for every ALU instruction regardless of type — the paper's
// pessimistic static model (Sec. 3.2/3.3). Sigma = 0 yields model B;
// sigma > 0 yields model B+.
type ModelB struct {
	sem      Semantics
	periodPs float64
	noise    *noiseScale
	sigma    float64

	// thresholds[i] is the delay factor m above which endpoint
	// order[i] violates; ascending. cumMask[i] is the violation mask
	// when thresholds[0..i] are all exceeded.
	thresholds []float64
	cumMask    []uint32
	cumFlag    []bool
	// thrMask is the smallest threshold whose cumulative violation mask
	// contains a result bit — the injection onset for non-compare ops,
	// whose flag-endpoint violations do not count.
	thrMask float64
}

// NewModelB builds a model B/B+ instance for one operating point.
func NewModelB(alu *circuit.ALU, model timing.VddDelay, vdd, fMHz, sigma float64, sem Semantics) *ModelB {
	period := circuit.PeriodPs(fMHz)
	factor := model.Factor(vdd)
	worst := alu.WorstEndpointPsAt(factor)
	setup := alu.Config.SetupPs * factor

	m := &ModelB{
		sem:      sem,
		periodPs: period,
		sigma:    sigma,
		noise:    newNoiseScale(model, vdd, timing.NewNoise(sigma)),
	}
	// Endpoint e violates iff (worst_e + setup) * mNoise > period,
	// i.e. mNoise > period / (worst_e + setup).
	type ep struct {
		thr  float64
		bit  int
		flag bool
	}
	eps := make([]ep, 0, circuit.NumEndpoints)
	for e := 0; e < circuit.Width; e++ {
		eps = append(eps, ep{thr: period / (worst[e] + setup), bit: e})
	}
	eps = append(eps, ep{thr: period / (worst[circuit.FlagEndpoint] + setup), flag: true})
	sort.Slice(eps, func(i, j int) bool { return eps[i].thr < eps[j].thr })
	var mask uint32
	fl := false
	for _, e := range eps {
		if e.flag {
			fl = true
		} else {
			mask |= 1 << uint(e.bit)
		}
		m.thresholds = append(m.thresholds, e.thr)
		m.cumMask = append(m.cumMask, mask)
		m.cumFlag = append(m.cumFlag, fl)
	}
	for i, msk := range m.cumMask {
		if msk != 0 {
			m.thrMask = m.thresholds[i]
			break
		}
	}
	return m
}

// Name implements Model.
func (m *ModelB) Name() string {
	if m.sigma > 0 {
		return "B+"
	}
	return "B"
}

// FirstFIMHz returns the lowest frequency at which this operating point
// can inject at all: the STA limit for model B, shifted down by the
// worst-case noise droop for B+ (the paper's 661/588 MHz anchors).
func (m *ModelB) FirstFIMHz() float64 {
	// Smallest threshold corresponds to the worst endpoint.
	worstPeriod := m.periodPs / m.thresholds[0] // = worst + setup at V
	mMax := 1.0
	if m.noise.sigma > 0 {
		mMax = m.noise.table[0] // largest slowdown at -clip*sigma
	}
	return 1e6 / (worstPeriod * mMax)
}

// NewTrial implements Model.
func (m *ModelB) NewTrial(rng *rand.Rand) Injector {
	return &modelBInjector{cfg: m, rng: rng}
}

type modelBInjector struct {
	cfg *ModelB
	rng *rand.Rand
}

func (in *modelBInjector) Inject(op isa.Op, result, prev uint32, flag, prevFlag bool) (uint32, bool, int) {
	c := in.cfg
	mNoise := c.noise.sample(in.rng)
	viol, flagViol := c.violationsAt(mNoise, op)
	return apply(c.sem, in.rng, viol, flagViol, result, prev, flag, prevFlag)
}

// violationsAt resolves the violation set at a sampled delay factor:
// every endpoint whose threshold the factor exceeds, with the flag
// endpoint counting only on compares. Shared by Inject and SampleAt.
func (m *ModelB) violationsAt(mNoise float64, op isa.Op) (uint32, bool) {
	// Find how many thresholds are exceeded.
	lo, hi := 0, len(m.thresholds)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.thresholds[mid] < mNoise {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0, false
	}
	return m.cumMask[lo-1], m.cumFlag[lo-1] && isa.IsCompare(op)
}

// firstThreshold returns the smallest delay factor above which a query
// with op injects at least one countable endpoint: the very first
// threshold for compares (the flag flop counts), the first threshold
// with a result bit otherwise.
func (m *ModelB) firstThreshold(op isa.Op) float64 {
	if isa.IsCompare(op) {
		return m.thresholds[0]
	}
	return m.thrMask
}

// MarginalProb implements HazardModel: the probability that the sampled
// delay factor crosses the op's injection onset, computed exactly from
// the clipped-Gaussian noise model (deterministically 0 or 1 for model
// B without noise).
func (m *ModelB) MarginalProb(op isa.Op) float64 {
	return m.noise.exceedProb(m.firstThreshold(op))
}

// SampleAt implements HazardModel: the delay factor is drawn conditioned
// on crossing the op's injection onset by exact CDF inversion, then the
// violation set and semantics follow the per-cycle path.
func (m *ModelB) SampleAt(rng *rand.Rand, op isa.Op, result, prev uint32, flag, prevFlag bool) (uint32, bool, int) {
	t := m.firstThreshold(op)
	mNoise := m.noise.exceedFactor(rng, t, m.noise.exceedProb(t))
	viol, flagViol := m.violationsAt(mNoise, op)
	return apply(m.sem, rng, viol, flagViol, result, prev, flag, prevFlag)
}

// ---------------------------------------------------------------------
// Model C

// ModelC is the paper's statistical fault-injection model: violation
// probabilities per endpoint, conditioned on the instruction, evaluated
// from DTA CDFs that are rescaled every cycle by the sampled supply
// noise (Fig. 3 of the paper).
type ModelC struct {
	sem      Semantics
	sampling Sampling
	periodPs float64
	noise    *noiseScale
	sigma    float64

	tables [isa.NumOps]*opTable
}

// opTable holds the per-instruction probability grids over the effective
// period axis (period / noise factor), at 1 ps resolution.
type opTable struct {
	ch     *dta.Characterization
	nEP    int
	maxPs  float64 // beyond this effective period nothing violates
	stepPs float64
	pNone  []float64
	pBit   [][]float64 // [endpoint][grid index]
	active []int       // endpoints with nonzero probability anywhere

	// haz is the table's first-fault sampling state, built lazily on
	// first MarginalProb/SampleAt use (tables are private to one model,
	// so the model's operating point and sampling mode are fixed).
	haz struct {
		once sync.Once
		// prob is the marginal per-query injection probability.
		prob float64
		// sortedMax / order support joint conditional sampling:
		// MaxPerCycle ascending, and cycle indices by MaxPerCycle
		// descending (the first k entries are exactly the k violating
		// cycles at any effective period).
		sortedMax []float64
		order     []int
	}
}

// gridIndex maps an effective period to its probability-grid index,
// exactly as the per-cycle injector does.
func (t *opTable) gridIndex(eff float64) int {
	idx := int(eff / t.stepPs)
	if idx < 0 {
		idx = 0
	}
	return idx
}

// violCycles counts characterization cycles whose worst arrival plus
// setup exceeds the effective period (requires haz.sortedMax).
func (t *opTable) violCycles(eff float64) int {
	x := eff - t.ch.SetupPs
	i := sort.SearchFloat64s(t.haz.sortedMax, math.Nextafter(x, math.Inf(1)))
	return len(t.haz.sortedMax) - i
}

// violationsAtCycle folds characterization cycle j's arrivals into a
// violation set at the effective period — the joint-sampling capture
// law, shared by Inject and SampleAt.
func (t *opTable) violationsAtCycle(j int, eff float64) (viol uint32, flagViol bool) {
	for e := 0; e < t.nEP; e++ {
		if t.ch.Arrivals[e][j]+t.ch.SetupPs > eff {
			if e == circuit.FlagEndpoint {
				flagViol = true
			} else {
				viol |= 1 << uint(e)
			}
		}
	}
	return viol, flagViol
}

// sampleSubsetAt draws the violated endpoint subset at grid index idx
// conditioned on it being non-empty: the first violated active endpoint
// follows its exact conditional law (the heterogeneous-probability
// analogue of sampleSubsetUniform), the endpoints after it are
// unconditioned Bernoulli draws.
func (t *opTable) sampleSubsetAt(rng *rand.Rand, idx int) (viol uint32, flagViol bool) {
	set := func(e int) {
		if e == circuit.FlagEndpoint {
			flagViol = true
		} else {
			viol |= 1 << uint(e)
		}
	}
	r := rng.Float64() * (1 - t.pNone[idx])
	acc, pref := 0.0, 1.0
	first, lastNonzero := -1, -1
	for k, e := range t.active {
		p := t.pBit[e][idx]
		if p > 0 {
			lastNonzero = k
		}
		acc += pref * p
		if r < acc {
			first = k
			break
		}
		pref *= 1 - p
	}
	if first < 0 {
		// Round-off at the top of the conditional mass (or a degenerate
		// grid slot): fall back to the last endpoint that can violate
		// here at all.
		first = lastNonzero
		if first < 0 {
			first = len(t.active) - 1
		}
	}
	set(t.active[first])
	for _, e := range t.active[first+1:] {
		if rng.Float64() < t.pBit[e][idx] {
			set(e)
		}
	}
	return viol, flagViol
}

// ModelCConfig carries model C construction parameters.
type ModelCConfig struct {
	Vdd      float64
	FreqMHz  float64
	Sigma    float64
	Profile  dta.Profile
	Sem      Semantics
	Sampling Sampling
}

// NewModelC builds the statistical model for one operating point; the
// required characterizations run (and cache) on first use.
func NewModelC(ch *dta.Characterizer, cfg ModelCConfig) (*ModelC, error) {
	m := &ModelC{
		sem:      cfg.Sem,
		sampling: cfg.Sampling,
		periodPs: circuit.PeriodPs(cfg.FreqMHz),
		sigma:    cfg.Sigma,
		noise:    newNoiseScale(ch.Model, cfg.Vdd, timing.NewNoise(cfg.Sigma)),
	}
	built := map[dta.Key]*opTable{}
	for _, op := range isa.AllOps() {
		if !isa.IsALU(op) {
			continue
		}
		key := dta.KeyFor(op, cfg.Profile)
		t, ok := built[key]
		if !ok {
			c, err := ch.At(key, cfg.Vdd)
			if err != nil {
				return nil, err
			}
			t = newOpTable(c)
			built[key] = t
		}
		m.tables[op] = t
	}
	return m, nil
}

func newOpTable(c *dta.Characterization) *opTable {
	t := &opTable{
		ch:     c,
		nEP:    c.NumEndpoints(),
		maxPs:  c.MaxPs + c.SetupPs,
		stepPs: 1,
	}
	n := int(math.Ceil(t.maxPs/t.stepPs)) + 2
	t.pNone = make([]float64, n)
	t.pBit = make([][]float64, t.nEP)
	anyProb := make([]bool, t.nEP)
	for e := 0; e < t.nEP; e++ {
		t.pBit[e] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		period := float64(i) * t.stepPs
		pN := 1.0
		for e := 0; e < t.nEP; e++ {
			p := c.CDFs[e].ViolationProb(period)
			t.pBit[e][i] = p
			pN *= 1 - p
			if p > 0 {
				anyProb[e] = true
			}
		}
		t.pNone[i] = pN
	}
	for e, a := range anyProb {
		if a {
			t.active = append(t.active, e)
		}
	}
	return t
}

// Name implements Model.
func (m *ModelC) Name() string { return "C" }

// NewTrial implements Model.
func (m *ModelC) NewTrial(rng *rand.Rand) Injector {
	return &modelCInjector{cfg: m, rng: rng}
}

// OnsetMHz returns, per ALU op, the zero-noise frequency at which the
// first violations appear (used by instruction characterization reports).
func (m *ModelC) OnsetMHz(op isa.Op) float64 {
	t := m.tables[op]
	if t == nil {
		return math.Inf(1)
	}
	return 1e6 / t.maxPs
}

// injectProbAt returns the conditional probability that one query on
// this table injects, given the cycle's sampled delay factor — the
// quantity the per-cycle injector realizes with its Bernoulli draws,
// evaluated in closed form. Shared by the marginalization and the
// conditioned noise sampler.
func (m *ModelC) injectProbAt(t *opTable, mNoise float64) float64 {
	eff := m.periodPs / mNoise
	if eff >= t.maxPs {
		return 0
	}
	if m.sampling == Joint {
		return float64(t.violCycles(eff)) / float64(t.ch.Cycles)
	}
	return 1 - t.pNone[t.gridIndex(eff)]
}

// hazardOf lazily computes the table's first-fault sampling state: the
// marginal injection probability (noise integrated out numerically over
// the noiseScale table), and the sorted cycle index joint sampling
// conditions on. Tables are private to one model instance, so a single
// sync.Once per table suffices.
func (m *ModelC) hazardOf(t *opTable) float64 {
	t.haz.once.Do(func() {
		if m.sampling == Joint {
			n := t.ch.Cycles
			t.haz.sortedMax = make([]float64, n)
			copy(t.haz.sortedMax, t.ch.MaxPerCycle)
			sort.Float64s(t.haz.sortedMax)
			t.haz.order = make([]int, n)
			for i := range t.haz.order {
				t.haz.order[i] = i
			}
			sort.SliceStable(t.haz.order, func(a, b int) bool {
				return t.ch.MaxPerCycle[t.haz.order[a]] > t.ch.MaxPerCycle[t.haz.order[b]]
			})
		}
		t.haz.prob = m.noise.marginal(func(f float64) float64 { return m.injectProbAt(t, f) })
	})
	return t.haz.prob
}

// MarginalProb implements HazardModel: the injection probability of one
// query with op, marginalized over the supply-noise distribution.
func (m *ModelC) MarginalProb(op isa.Op) float64 {
	t := m.tables[op]
	if t == nil {
		return 0
	}
	return m.hazardOf(t)
}

// SampleAt implements HazardModel: the delay factor is drawn from the
// noise distribution conditioned on injection (bounded rejection against
// the worst-droop upper bound), then the violated endpoint subset is
// drawn conditioned on non-emptiness — exactly the law of Inject given
// that it flips at least one countable endpoint.
func (m *ModelC) SampleAt(rng *rand.Rand, op isa.Op, result, prev uint32, flag, prevFlag bool) (uint32, bool, int) {
	t := m.tables[op]
	if t == nil {
		return result, flag, 0 // unreachable: MarginalProb(op) = 0
	}
	m.hazardOf(t) // ensure the joint cycle index exists
	pInj := func(f float64) float64 { return m.injectProbAt(t, f) }
	mNoise := m.noise.conditionedFactor(rng, pInj, pInj(m.noise.maxFactor()))
	eff := m.periodPs / mNoise
	var viol uint32
	var flagViol bool
	if m.sampling == Joint {
		k := t.violCycles(eff)
		if k <= 0 {
			k = 1 // unreachable: conditioning guarantees >= 1 violating cycle
		}
		j := t.haz.order[rng.Intn(k)]
		viol, flagViol = t.violationsAtCycle(j, eff)
	} else {
		viol, flagViol = t.sampleSubsetAt(rng, t.gridIndex(eff))
	}
	if !isa.IsCompare(op) {
		flagViol = false
	}
	if viol == 0 && !flagViol {
		// Unreachable with the current unit mapping (only compare ops
		// use the flagged table, so the guard above can never discard
		// the sole violation), but if a non-compare op ever shares a
		// flagged table, keep SampleAt's >=1-flip contract by forcing
		// the strongest result-bit endpoint.
		best, idx := 0, t.gridIndex(eff)
		for e := 0; e < circuit.Width; e++ {
			if t.pBit[e][idx] > t.pBit[best][idx] {
				best = e
			}
		}
		viol = 1 << uint(best)
	}
	return apply(m.sem, rng, viol, flagViol, result, prev, flag, prevFlag)
}

type modelCInjector struct {
	cfg *ModelC
	rng *rand.Rand
}

func (in *modelCInjector) Inject(op isa.Op, result, prev uint32, flag, prevFlag bool) (uint32, bool, int) {
	c := in.cfg
	t := c.tables[op]
	if t == nil {
		return result, flag, 0
	}
	mNoise := c.noise.sample(in.rng)
	eff := c.periodPs / mNoise
	if eff >= t.maxPs {
		return result, flag, 0
	}
	var viol uint32
	var flagViol bool
	switch c.sampling {
	case Independent:
		idx := t.gridIndex(eff)
		if in.rng.Float64() < t.pNone[idx] {
			return result, flag, 0
		}
		// At least one endpoint violates; sample the subset conditioned
		// on non-emptiness by rejection. Each round succeeds with
		// probability 1 - pNone, but degenerate tables (near-zero pBit
		// entries alongside pNone < 1) could spin unboundedly, so after
		// a fixed retry budget the highest-probability active endpoint
		// is forced instead.
		const rejectBudget = 4096
		for round := 0; viol == 0 && !flagViol; round++ {
			if round == rejectBudget {
				best := t.active[0]
				for _, e := range t.active {
					if t.pBit[e][idx] > t.pBit[best][idx] {
						best = e
					}
				}
				if best == circuit.FlagEndpoint {
					flagViol = true
				} else {
					viol |= 1 << uint(best)
				}
				break
			}
			for _, e := range t.active {
				if in.rng.Float64() < t.pBit[e][idx] {
					if e == circuit.FlagEndpoint {
						flagViol = true
					} else {
						viol |= 1 << uint(e)
					}
				}
			}
		}
	case Joint:
		j := in.rng.Intn(t.ch.Cycles)
		if t.ch.MaxPerCycle[j]+t.ch.SetupPs <= eff {
			return result, flag, 0
		}
		viol, flagViol = t.violationsAtCycle(j, eff)
	}
	// Only compares latch the flag endpoint.
	if !isa.IsCompare(op) {
		flagViol = false
	}
	return apply(c.sem, in.rng, viol, flagViol, result, prev, flag, prevFlag)
}

// ---------------------------------------------------------------------

// NullModel never injects; it produces golden runs through the same
// machinery.
type NullModel struct{}

// Name implements Model.
func (NullModel) Name() string { return "none" }

// NewTrial implements Model.
func (NullModel) NewTrial(*rand.Rand) Injector { return nullInjector{} }

// MarginalProb implements HazardModel: the null model never injects, so
// first-fault sampling resolves every trial to the golden run.
func (NullModel) MarginalProb(isa.Op) float64 { return 0 }

// SampleAt implements HazardModel; unreachable under a zero hazard.
func (NullModel) SampleAt(_ *rand.Rand, _ isa.Op, r, _ uint32, f, _ bool) (uint32, bool, int) {
	return r, f, 0
}

type nullInjector struct{}

func (nullInjector) Inject(_ isa.Op, r, _ uint32, f, _ bool) (uint32, bool, int) {
	return r, f, 0
}
