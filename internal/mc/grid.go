// The multi-axis experiment grid: declarative enumeration of cells over
// (benchmark × model kind × Vdd × sigma × operand profile × frequency),
// scheduled as one flat (cell, trial) work pool, with optional
// cell-level checkpointing to an artifact store for warm restarts.

package mc

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dta"
	"repro/internal/fi"
)

// Axes lists the grid dimensions. An empty axis collapses to the single
// value already present in the grid's base Spec (Spec.Bench for
// Benches, the corresponding Spec.Model field for the others), so a
// Grid with only Freqs set is exactly a frequency sweep and a Grid with
// no axes at all is a single data point. A nil Profiles entry resolves
// to the cell benchmark's own operand profile, matching the sweep
// engine's historical defaulting.
type Axes struct {
	Benches  []*bench.Benchmark
	Kinds    []string // fault model kinds: "none", "A", "B", "B+", "C"
	Vdds     []float64
	Sigmas   []float64
	Profiles []dta.Profile
	Freqs    []float64
}

// withDefaults collapses empty axes onto the base spec's values.
func (a Axes) withDefaults(s Spec) Axes {
	if len(a.Benches) == 0 {
		a.Benches = []*bench.Benchmark{s.Bench}
	}
	if len(a.Kinds) == 0 {
		a.Kinds = []string{s.Model.Kind}
	}
	if len(a.Vdds) == 0 {
		a.Vdds = []float64{s.Model.Vdd}
	}
	if len(a.Sigmas) == 0 {
		a.Sigmas = []float64{s.Model.Sigma}
	}
	if len(a.Profiles) == 0 {
		a.Profiles = []dta.Profile{s.Model.Profile}
	}
	if len(a.Freqs) == 0 {
		a.Freqs = []float64{s.Model.FreqMHz}
	}
	return a
}

// FreqRange expands an inclusive [lo, hi] frequency range with the
// given step into the explicit list, absorbing float accumulation
// drift at the endpoint (repeated addition of a non-dyadic step can
// overshoot hi by ~1 ulp and silently drop the final frequency). It is
// the one expansion shared by cmd/sweep, the experiments runners and
// the server's job-spec canonicalization, so a range and its explicit
// expansion always mean the same grid. A non-positive step yields nil.
func FreqRange(lo, hi, step float64) []float64 {
	if step <= 0 {
		return nil
	}
	var out []float64
	for f := lo; f <= hi+1e-9; f += step {
		out = append(out, f)
		if f+step == f {
			// step is below float resolution at this magnitude: f can
			// never advance, so stop rather than loop forever.
			break
		}
	}
	return out
}

// Cell is one fully resolved grid coordinate: a benchmark and a
// complete model spec (operating point and profile included).
type Cell struct {
	Bench *bench.Benchmark
	Model core.ModelSpec
}

// CellResult is one evaluated grid cell. Cached marks cells that were
// loaded from the artifact store instead of recomputed (grid resume).
type CellResult struct {
	Bench  string
	Model  core.ModelSpec
	Cached bool
	Point  Point
}

// Grid evaluates a base Spec over the cross product of its Axes. Every
// (cell, trial) pair of the whole grid is drawn from one shared worker
// pool, cells of one benchmark share one golden execution context, and
// each cell's numbers are bit-identical to evaluating that cell alone
// with Run for the same Spec.Seed (trial RNG depends only on (Seed,
// trial index), aggregation is in trial-index order).
//
// With a Store attached, every completed cell is checkpointed under a
// key derived from the system fingerprint, the spec, and the cell
// coordinate; a later Grid with Resume set loads those cells instead of
// recomputing them, so an interrupted run continues where it stopped.
type Grid struct {
	Spec Spec
	Axes Axes
	// Store, when non-nil, receives completed cells; Resume additionally
	// consults it before scheduling a cell.
	Store  *artifact.Store
	Resume bool
	// SerialResolve forces the pre-pipelining reference path: cells are
	// resolved strictly one at a time in enumeration order on the
	// calling goroutine, and the trial engine only starts after the
	// last cell resolved. Kept (like SweepSerial and RunFull) as the
	// differential baseline the concurrent resolver is pinned against
	// and as the denominator of the cold-grid benchmarks; results are
	// bit-identical either way.
	SerialResolve bool
}

// Cells enumerates the grid's coordinates in their fixed evaluation
// order: benchmark-major, then kind, Vdd, sigma, profile, and frequency
// innermost (so a single-axis frequency grid enumerates exactly like a
// sweep).
func (g Grid) Cells() []Cell {
	s := g.Spec.withDefaults()
	a := g.Axes.withDefaults(s)
	cells := make([]Cell, 0, len(a.Benches)*len(a.Kinds)*len(a.Vdds)*len(a.Sigmas)*len(a.Profiles)*len(a.Freqs))
	for _, b := range a.Benches {
		for _, kind := range a.Kinds {
			for _, vdd := range a.Vdds {
				for _, sigma := range a.Sigmas {
					for _, prof := range a.Profiles {
						for _, f := range a.Freqs {
							ms := s.Model
							ms.Kind = kind
							ms.Vdd = vdd
							ms.Sigma = sigma
							ms.FreqMHz = f
							ms.Profile = prof
							if ms.Profile == nil {
								ms.Profile = b.Profile
							}
							cells = append(cells, Cell{Bench: b, Model: ms})
						}
					}
				}
			}
		}
	}
	return cells
}

// cellKey spells out everything a cell's Point depends on: the system
// fingerprint (netlists, DTA, Vdd-delay, CPU timing), the benchmark's
// program content (core.BenchDigest, so editing a kernel invalidates
// its cells) and input seed, the resolved model spec, every
// trial-allocation parameter, and the trial path class. Workers is
// deliberately absent (the engine guarantees bit-identical results
// across schedules), and the scan and full paths share the "exact"
// class because they are bit-identical by the differential tests —
// but first-fault sampling draws a different RNG stream, so its cells
// must not alias theirs. Map-valued fields (the operand profile) print
// in sorted key order, so the string is canonical.
func cellKey(fingerprint, benchDigest string, s Spec, c Cell) string {
	// The firstfault class matches exactly when first-fault sampling
	// will serve the cell (batched under ModeAuto, per-trial under
	// ModeFirstFault — bit-identical to each other by the differential
	// tests): a shared golden run (fixed inputs) and a watchdog budget
	// that admits it (newBenchCtx keeps the golden trace iff
	// WatchdogFactor >= 1). Every built-in model kind is a
	// fi.HazardModel, so the model needs no say here; a key is in any
	// case a pure function of inputs that determine the path, so it can
	// never alias results computed under a different law. The rng=x1
	// marker names the per-trial RNG family (xoshiro256++ streams keyed
	// by SubSeed): changing the family changes every sampled result, so
	// cells computed under the old stdlib streams must miss. The q=v1
	// marker names the quality-metric class: Points checkpointed before
	// per-trial quality scoring existed (no Quality* fields in the gob)
	// would decode with silently zero quality, so they must miss and be
	// recomputed; bump the class whenever an extractor's definition
	// changes.
	path := "exact"
	if (s.Mode == ModeAuto || s.Mode == ModeFirstFault) && !c.Bench.PerTrialInputs && s.WatchdogFactor >= 1 {
		path = "firstfault"
	}
	return fmt.Sprintf("sys=%s|bench=%s|prog=%s|inputSeed=%d|model=%+v|trials=%d|tmin=%d|tmax=%d|z=%g|eps=%g|seed=%d|wf=%g|path=%s|rng=x1|q=v1",
		fingerprint, c.Bench.Name, benchDigest, s.InputSeed, c.Model,
		s.Trials, s.TrialsMin, s.TrialsMax, s.WilsonZ, s.CorrectEps,
		s.Seed, s.WatchdogFactor, path)
}

// loadCell fetches a checkpointed cell Point; any untrusted blob is a
// miss.
func loadCell(st *artifact.Store, key string) (Point, bool) {
	payload, ok, _ := st.Get(artifact.KindGridCell, key)
	if !ok {
		return Point{}, false
	}
	var pt Point
	if err := artifact.DecodeGob(payload, &pt); err != nil {
		return Point{}, false
	}
	return pt, true
}

// Run evaluates the grid. Like Sweep, an invalid operating point
// partway through the enumeration still yields the results of every
// cell before it, together with that cell's error; a trial-level error
// aborts the whole grid.
func (g Grid) Run() ([]CellResult, error) {
	return g.RunContext(context.Background())
}

// PlannedCell is one grid coordinate together with its content-addressed
// identity: the position in the canonical enumeration (Cells() order),
// the cell itself, the artifact-store key its Point checkpoints under,
// and — when the grid has a store and Resume — the checkpointed Point if
// one exists. It is the planning unit of distributed execution: a
// coordinator plans a grid once, parcels indices into leases, and merges
// remotely computed Points back by index, deduplicating duplicate
// completions by Key.
type PlannedCell struct {
	Index int
	Cell  Cell
	Key   string
	// Point is the checkpointed result loaded from the store (Resume
	// hit); nil for cells that still need computing.
	Point *Point
}

// PlanCells resolves the grid's enumeration into planned cells: every
// coordinate with its content-addressed key (always computed, store or
// not — the key is what makes results mergeable across machines), plus
// any already-checkpointed Points when the grid resumes from a store.
// Planning touches no model, golden or hazard cache; it is cheap enough
// to run on a coordinator that never executes a trial.
func (g Grid) PlanCells() ([]PlannedCell, error) {
	s := g.Spec.withDefaults()
	cells := g.Cells()
	fingerprint := s.System.Fingerprint()
	digests := make(map[string]string)
	plan := make([]PlannedCell, len(cells))
	for i, c := range cells {
		digest, ok := digests[c.Bench.Name]
		if !ok {
			var err error
			digest, err = core.BenchDigest(c.Bench, s.InputSeed)
			if err != nil {
				return nil, err
			}
			digests[c.Bench.Name] = digest
		}
		pc := PlannedCell{Index: i, Cell: c, Key: cellKey(fingerprint, digest, s, c)}
		if g.Store != nil && g.Resume {
			if pt, ok := loadCell(g.Store, pc.Key); ok {
				p := pt
				pc.Point = &p
			}
		}
		plan[i] = pc
	}
	return plan, nil
}

// RunCells evaluates only the selected cells of the grid — indices into
// the canonical Cells() enumeration — returning their results in the
// given order. Each cell's Point is bit-identical to the same cell
// inside a full-grid run (trial RNG depends only on (Seed, trial
// index), never on the surrounding grid), which is what lets a cluster
// worker execute an arbitrary leased subset and a coordinator merge the
// pieces into exactly the result a single-node run would produce.
func (g Grid) RunCells(ctx context.Context, indices []int) ([]CellResult, error) {
	all := g.Cells()
	cells := make([]Cell, len(indices))
	for i, idx := range indices {
		if idx < 0 || idx >= len(all) {
			return nil, fmt.Errorf("mc: cell index %d out of range (grid has %d cells)", idx, len(all))
		}
		cells[i] = all[idx]
	}
	return g.runCells(ctx, cells)
}

// resolvedCell is the outcome of resolving one grid coordinate: a
// checkpointed Point loaded from the store (cached), a pointState
// ready for the trial engine, or the cell's resolution error.
type resolvedCell struct {
	cached bool
	pt     Point
	ps     *pointState
	err    error
}

// resolver turns grid coordinates into engine-ready pointStates. It is
// safe for concurrent use: the per-benchmark artifacts (program
// digest, golden execution context) are per-key singleflight — the
// first cell of a benchmark to arrive computes them, concurrent cells
// of the same benchmark block on that one computation — and the
// model/golden/hazard caches inside core.System are singleflight
// themselves, so N racing cells never duplicate a build.
type resolver struct {
	s           Spec
	store       *artifact.Store
	resume      bool
	fingerprint string

	mu      sync.Mutex
	digests map[string]*digestEntry
	ctxs    map[string]*benchCtxEntry
}

// digestEntry is the singleflight slot of one benchmark's program
// digest.
type digestEntry struct {
	once   sync.Once
	digest string
	err    error
}

// benchCtxEntry is the singleflight slot of one benchmark's shared
// execution context (assembled program, golden run, watchdog budget).
type benchCtxEntry struct {
	once sync.Once
	bctx *benchCtx
	err  error
}

func newResolver(s Spec, g Grid) *resolver {
	r := &resolver{
		s: s, store: g.Store, resume: g.Resume,
		digests: map[string]*digestEntry{},
		ctxs:    map[string]*benchCtxEntry{},
	}
	if g.Store != nil {
		r.fingerprint = s.System.Fingerprint()
	}
	return r
}

// digest returns the benchmark's program digest, computing it once per
// benchmark.
func (r *resolver) digest(b *bench.Benchmark) (string, error) {
	r.mu.Lock()
	e, ok := r.digests[b.Name]
	if !ok {
		e = &digestEntry{}
		r.digests[b.Name] = e
	}
	r.mu.Unlock()
	e.once.Do(func() { e.digest, e.err = core.BenchDigest(b, r.s.InputSeed) })
	return e.digest, e.err
}

// benchCtx returns the benchmark's shared execution context, running
// (or loading) its golden execution once per benchmark.
func (r *resolver) benchCtx(b *bench.Benchmark) (*benchCtx, error) {
	r.mu.Lock()
	e, ok := r.ctxs[b.Name]
	if !ok {
		e = &benchCtxEntry{}
		r.ctxs[b.Name] = e
	}
	r.mu.Unlock()
	e.once.Do(func() { e.bctx, e.err = newBenchCtx(r.s, b) })
	return e.bctx, e.err
}

// resolve materializes one cell: a resumed cell comes back as its
// checkpointed Point, every other cell gets its (cached) model, its
// benchmark context, and — on the sampling path — its hazard table.
// The result is a pure function of the cell (all shared state lives in
// singleflight caches), so concurrent resolution of any subset of the
// grid yields exactly what serial resolution would have.
func (r *resolver) resolve(c Cell) resolvedCell {
	var key string
	if r.store != nil {
		digest, err := r.digest(c.Bench)
		if err != nil {
			return resolvedCell{err: err}
		}
		key = cellKey(r.fingerprint, digest, r.s, c)
		if r.resume {
			if pt, ok := loadCell(r.store, key); ok {
				return resolvedCell{cached: true, pt: pt}
			}
		}
	}
	model, err := r.s.System.Model(c.Model)
	if err != nil {
		return resolvedCell{err: err}
	}
	bctx, err := r.benchCtx(c.Bench)
	if err != nil {
		return resolvedCell{err: err}
	}
	ps := &pointState{cell: c, ctx: bctx, model: model, key: key}
	if (r.s.Mode == ModeAuto || r.s.Mode == ModeFirstFault) && bctx.golden != nil {
		// First-fault sampling: fetch (or build and cache) the cell's
		// hazard table over the shared golden trace. Every built-in
		// model is a HazardModel; the type assertion keeps custom
		// injectors on the scan path instead of failing.
		if hm, ok := model.(fi.HazardModel); ok {
			hz, err := r.s.System.Hazard(c.Bench, r.s.InputSeed, c.Model)
			if err != nil {
				return resolvedCell{err: err}
			}
			ps.hazModel, ps.hazard = hm, hz
		}
	}
	// ModeAuto runs the hazard-backed cells batched; ModeFirstFault
	// keeps the per-trial path as the differential reference.
	ps.batched = r.s.Mode == ModeAuto && ps.hazard != nil
	return resolvedCell{ps: ps}
}

// RunContext evaluates the grid under a context.
//
// Cell resolution — model construction, golden recording, hazard-table
// building, the expensive cold-cache prelude — runs on a bounded pool
// of Spec.Workers resolver goroutines and is pipelined with execution:
// each resolved cell streams into the trial engine as it lands, in
// enumeration order, so trials for early cells overlap resolution of
// later ones. Committing in enumeration order preserves the serial
// semantics exactly: the first invalid cell still ends the grid with
// the valid prefix's results intact, and every cell's Point is
// bit-identical to the serial resolver's (Grid.SerialResolve), pinned
// by the differential tests.
//
// Cancellation is honoured at cell-resolution boundaries (no further
// cells are committed) and at trial granularity inside the engine: no
// new trials are scheduled, in-flight trials finish, and the run
// returns ctx's error. Cells that completed before the cancellation
// are already checkpointed when a store is attached, so a resubmitted
// grid resumes past them.
func (g Grid) RunContext(ctx context.Context) ([]CellResult, error) {
	return g.runCells(ctx, g.Cells())
}

// runCells is the engine entry shared by the full-grid path (RunContext)
// and the subset path (RunCells): resolve and execute exactly the given
// cells, in the given order.
func (g Grid) runCells(ctx context.Context, cells []Cell) ([]CellResult, error) {
	s := g.Spec.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := newResolver(s, g)
	eng := newEngine(s, g.Store)

	if g.SerialResolve {
		return g.runSerialResolve(ctx, s, cells, r, eng)
	}

	// Resolution pool: each worker pulls the next unresolved cell index
	// and parks the outcome in that cell's slot. Slots are buffered so
	// a worker never blocks on the committer (each slot receives
	// exactly one send), and rcancel turns the tail of the queue into
	// cheap error sends once the committer has stopped consuming.
	n := len(cells)
	slots := make([]chan resolvedCell, n)
	for i := range slots {
		slots[i] = make(chan resolvedCell, 1)
	}
	rctx, rcancel := context.WithCancel(ctx)
	defer rcancel()
	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	workers := s.Workers
	if workers > n {
		workers = n
	}
	var rwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for i := range idx {
				if err := rctx.Err(); err != nil {
					slots[i] <- resolvedCell{err: err}
					continue
				}
				slots[i] <- r.resolve(cells[i])
			}
		}()
	}

	// The committer walks the slots in enumeration order — cached cells
	// append their checkpointed Point, live cells stream into the
	// engine — and stops at the first resolution error or cancellation,
	// exactly like the serial loop. Sealing the engine (deferred) is
	// what lets the trial pool retire once the streamed cells are done.
	results := make([]CellResult, 0, n)
	var liveIdx []int
	var modelErr, cancelErr error
	commitDone := make(chan struct{})
	go func() {
		defer close(commitDone)
		defer eng.seal()
		defer rcancel()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				cancelErr = err
				return
			}
			rc := <-slots[i]
			if rc.err != nil {
				// A worker that observed rctx done reports rctx.Err(),
				// which after an error-triggered rcancel would be
				// context.Canceled even though the caller's ctx is live;
				// only the caller's own cancellation is a cancellation.
				if err := ctx.Err(); err != nil {
					cancelErr = err
				} else {
					modelErr = rc.err
				}
				return
			}
			if rc.cached {
				results = append(results, CellResult{
					Bench: cells[i].Bench.Name, Model: cells[i].Model, Cached: true, Point: rc.pt,
				})
				continue
			}
			eng.addPoint(rc.ps)
			results = append(results, CellResult{Bench: cells[i].Bench.Name, Model: cells[i].Model})
			liveIdx = append(liveIdx, len(results)-1)
		}
	}()

	pts, engErr := eng.run(ctx)
	<-commitDone
	rwg.Wait()
	if cancelErr != nil {
		return nil, cancelErr
	}
	if engErr != nil {
		return nil, engErr
	}
	for i, pt := range pts {
		results[liveIdx[i]].Point = pt
	}
	return results, modelErr
}

// runSerialResolve is the pre-pipelining reference: resolve every cell
// in enumeration order on this goroutine, then run the engine over the
// fully resolved set.
func (g Grid) runSerialResolve(ctx context.Context, s Spec, cells []Cell, r *resolver, eng *engine) ([]CellResult, error) {
	results := make([]CellResult, 0, len(cells))
	var liveIdx []int
	var modelErr error
	for _, c := range cells {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rc := r.resolve(c)
		if rc.err != nil {
			modelErr = rc.err
			break
		}
		if rc.cached {
			results = append(results, CellResult{
				Bench: c.Bench.Name, Model: c.Model, Cached: true, Point: rc.pt,
			})
			continue
		}
		eng.addPoint(rc.ps)
		results = append(results, CellResult{Bench: c.Bench.Name, Model: c.Model})
		liveIdx = append(liveIdx, len(results)-1)
	}
	eng.seal()
	pts, err := eng.run(ctx)
	if err != nil {
		return nil, err
	}
	for i, pt := range pts {
		results[liveIdx[i]].Point = pt
	}
	return results, modelErr
}
