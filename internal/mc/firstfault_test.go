package mc

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fi"
	"repro/internal/stats"
)

// wilsonZ99 widens the agreement intervals below to 99% so the fixed
// seeds stay comfortably inside them.
const wilsonZ99 = 2.5758293035489004

// overlap reports whether the Wilson intervals of two binomial counts
// intersect.
func overlap(k1, n1, k2, n2 int) bool {
	lo1, hi1 := stats.Wilson(k1, n1, wilsonZ99)
	lo2, hi2 := stats.Wilson(k2, n2, wilsonZ99)
	return lo1 <= hi2 && lo2 <= hi1
}

// count converts a Point percentage back into a trial count.
func count(pct float64, trials int) int {
	return int(pct/100*float64(trials) + 0.5)
}

// agree asserts the statistical-equivalence contract between a
// first-fault Point and its scan reference: the correct and finished
// proportions must have overlapping Wilson intervals, and the FI rates
// must be of the same magnitude whenever the reference injects at all.
func agree(t *testing.T, name string, ff, sc Point) {
	t.Helper()
	if !overlap(count(ff.CorrectPct, ff.Trials), ff.Trials, count(sc.CorrectPct, sc.Trials), sc.Trials) {
		t.Errorf("%s: correct%% disagrees: first-fault %v (n=%d) vs scan %v (n=%d)",
			name, ff.CorrectPct, ff.Trials, sc.CorrectPct, sc.Trials)
	}
	if !overlap(count(ff.FinishedPct, ff.Trials), ff.Trials, count(sc.FinishedPct, sc.Trials), sc.Trials) {
		t.Errorf("%s: finished%% disagrees: first-fault %v vs scan %v",
			name, ff.FinishedPct, sc.FinishedPct)
	}
	if sc.FIRate > 0 {
		if r := ff.FIRate / sc.FIRate; r < 0.4 || r > 2.5 {
			t.Errorf("%s: FI rate off by %vx: first-fault %v vs scan %v",
				name, r, ff.FIRate, sc.FIRate)
		}
	}
}

// TestFirstFaultAgreesWithScan is the statistical-equivalence guarantee
// of first-fault sampling: over large trial counts, Point aggregates
// must agree with the exact replay scan within Wilson confidence
// intervals — below the point of first failure, in the transition
// region, and across model kinds and model C's sampling modes. Fixed
// seeds keep the check deterministic.
func TestFirstFaultAgreesWithScan(t *testing.T) {
	cases := []struct {
		name  string
		model core.ModelSpec
		freqs []float64
	}{
		{"C-independent", core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010}, []float64{700, 860}},
		{"C-joint", core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010, Sampling: fi.Joint}, []float64{860}},
		{"B+", core.ModelSpec{Kind: "B+", Vdd: 0.7, Sigma: 0.010}, []float64{661}},
		{"A", core.ModelSpec{Kind: "A", ProbA: 5e-6}, []float64{700}},
	}
	for _, tc := range cases {
		spec := Spec{
			System: system(),
			Bench:  bench.Median(),
			Model:  tc.model,
			Trials: 600,
			Seed:   13,
		}
		for _, f := range tc.freqs {
			ff, err := Run(spec, f) // ModeAuto: first-fault sampling
			if err != nil {
				t.Fatalf("%s at %v MHz: %v", tc.name, f, err)
			}
			sc, err := RunScan(spec, f)
			if err != nil {
				t.Fatalf("%s at %v MHz: %v", tc.name, f, err)
			}
			agree(t, tc.name, ff, sc)
		}
	}
}

// TestFirstFaultNullModelIdenticalToScan pins the hazard-zero fast
// path: with no injection the first-fault trial resolves to the golden
// run, exactly like a fault-free scan — the Points are bit-identical,
// which keeps fault-free fixtures (Table 1) stable across the default
// change.
func TestFirstFaultNullModelIdenticalToScan(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "none"},
		Trials: 6,
		Seed:   5,
	}
	ff, err := Run(spec, 700)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := RunScan(spec, 700)
	if err != nil {
		t.Fatal(err)
	}
	if ff != sc {
		t.Errorf("null-model point differs:\nfirst-fault %+v\nscan        %+v", ff, sc)
	}
}

// TestFirstFaultDeterministic pins reproducibility and schedule
// independence of the sampling path: per-(Seed, trial) RNG derivation
// makes the point identical across repeated runs and worker counts, and
// different seeds draw different outcomes.
func TestFirstFaultDeterministic(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
		Trials: 64,
		Seed:   99,
	}
	a, err := Run(spec, 860)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, 860)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed differed:\n%+v\n%+v", a, b)
	}
	spec.Workers = 1
	c, err := Run(spec, 860)
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Errorf("worker count changed the point:\n%+v\n%+v", a, c)
	}
	spec.Workers = 0
	spec.Seed = 100
	d, err := Run(spec, 860)
	if err != nil {
		t.Fatal(err)
	}
	if a == d {
		t.Errorf("different seeds produced identical points")
	}
}

// TestFirstFaultAdaptive runs the sampling path under adaptive trial
// allocation: decisions still depend only on trial-index prefixes, so
// the result is schedule-independent, and the Wilson verdicts must
// agree with the scan path's.
func TestFirstFaultAdaptive(t *testing.T) {
	spec := Spec{
		System:    system(),
		Bench:     bench.Median(),
		Model:     core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
		TrialsMin: 8,
		TrialsMax: 64,
		Seed:      3,
	}
	one := spec
	one.Workers = 1
	a, err := Run(spec, 840)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(one, 840)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("adaptive first-fault point depends on schedule:\n%+v\n%+v", a, b)
	}
	// A clean point must still decide clean quickly.
	clean, err := Run(spec, 700)
	if err != nil {
		t.Fatal(err)
	}
	if clean.CorrectPct != 100 {
		t.Errorf("clean point not correct: %v%%", clean.CorrectPct)
	}
}
