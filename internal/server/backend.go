// The trial-execution backend boundary. The manager schedules and
// accounts for jobs; a Backend actually runs them. Today the only
// production backend is GridBackend — the in-process mc worker pool the
// daemon has always used — but the boundary is what the ROADMAP's
// remote-node coordinator will slot into, and it is where the chaos
// harness injects slow and flaky execution without touching the
// manager: ChaosBackend wraps any Backend with deterministic,
// test-controlled faults.

package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/mc"
)

// Backend executes one canonical job spec to completion. Run must
// honour ctx (the job's cancel context), report progress through
// onProgress (never blocking: the manager feeds a coalescing
// broadcaster), and return every completed cell or the first error.
// Returning ctx's error marks the job canceled; any other error marks
// it failed with that cause.
type Backend interface {
	Run(ctx context.Context, spec JobSpec, onProgress func(mc.Progress)) ([]mc.CellResult, error)
}

// GridBackend is the in-process backend: it lowers the spec onto the mc
// grid engine over one shared core.System, checkpointing cells to the
// artifact store when one is attached (which is what makes a warm
// resubmission after a mid-grid failure complete from cached cells).
type GridBackend struct {
	System *core.System
	// Store, when non-nil, receives completed cells and serves resumed
	// ones. It should be the store attached to System.
	Store *artifact.Store
	// Workers caps the mc worker pool per job (0 = NumCPU via mc).
	Workers int
}

// Run executes the spec's grid.
func (b GridBackend) Run(ctx context.Context, spec JobSpec, onProgress func(mc.Progress)) ([]mc.CellResult, error) {
	grid, err := spec.Grid(b.System, b.Store, b.Workers, onProgress)
	if err != nil {
		return nil, err
	}
	return grid.RunContext(ctx)
}

// ClusterStats counts distributed-execution traffic for backends that
// fan work out to remote workers. The type lives here — not in
// internal/cluster — because the stats surface (/v1/stats) must not
// depend on the cluster package (cluster imports server for JobSpec and
// Backend, never the reverse).
type ClusterStats struct {
	// WorkersKnown is the configured worker set; WorkersLive excludes
	// workers marked dead after a permanently failed lease.
	WorkersKnown int `json:"workers_known"`
	WorkersLive  int `json:"workers_live"`
	// Leases counts lease calls issued; LeaseFailures those that died
	// (timeout, worker loss, protocol error) and had their unfinished
	// cells reassigned.
	Leases        int64 `json:"leases"`
	LeaseFailures int64 `json:"lease_failures"`
	// Cell traffic: CellsLeased counts cells handed to workers
	// (re-leases included), CellsCompleted distinct cells finished,
	// CellsStolen cells an idle worker took over from another worker's
	// in-flight lease, CellsReassigned cells requeued after a lease
	// failure, and CellsDuplicate completions discarded because the
	// cell's key was already done (harmless by construction: equal keys
	// are bit-identical results).
	CellsLeased     int64 `json:"cells_leased"`
	CellsCompleted  int64 `json:"cells_completed"`
	CellsStolen     int64 `json:"cells_stolen"`
	CellsReassigned int64 `json:"cells_reassigned"`
	CellsDuplicate  int64 `json:"cells_duplicate"`
}

// ClusterReporter is implemented by backends that execute on a worker
// cluster; /v1/stats includes their counters when present.
type ClusterReporter interface {
	ClusterStats() ClusterStats
}

// ErrInjected is the failure ChaosBackend injects; chaos tests assert
// the job's recorded cause wraps it.
var ErrInjected = errors.New("chaos: injected backend fault")

// ChaosBackend wraps a Backend with injectable faults for the chaos
// harness: a fixed per-job startup delay (slow backend) and a
// deterministic every-Nth-job failure that aborts the inner run
// mid-grid. It is exported because the load/chaos tests in both this
// package and internal/loadgen drive it, and because it documents by
// construction what failure modes the manager is hardened against.
type ChaosBackend struct {
	Inner Backend
	// Delay is slept (context-aware) before every run.
	Delay time.Duration
	// FailEvery injects a failure into every Nth run (1 = every run,
	// 0 = never).
	FailEvery int
	// FailAfterPoints lets the doomed run complete this many grid points
	// before aborting, so the store holds a genuine partial checkpoint;
	// 0 fails before the run starts.
	FailAfterPoints int

	mu   sync.Mutex
	runs int
}

// Runs reports how many runs the backend has seen.
func (c *ChaosBackend) Runs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs
}

// Run delays, then either executes the inner backend transparently or —
// on a doomed run — aborts it after FailAfterPoints completed points
// and reports ErrInjected as the cause.
func (c *ChaosBackend) Run(ctx context.Context, spec JobSpec, onProgress func(mc.Progress)) ([]mc.CellResult, error) {
	c.mu.Lock()
	c.runs++
	doomed := c.FailEvery > 0 && c.runs%c.FailEvery == 0
	c.mu.Unlock()

	if c.Delay > 0 {
		select {
		case <-time.After(c.Delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if !doomed {
		return c.Inner.Run(ctx, spec, onProgress)
	}
	if c.FailAfterPoints <= 0 {
		return nil, fmt.Errorf("%w (before start)", ErrInjected)
	}
	// Let the inner run make real progress, then cut it down through its
	// own context — exactly the shape of a worker dying mid-grid — and
	// report the injected cause, not the cancellation.
	inner, abort := context.WithCancel(ctx)
	defer abort()
	var once sync.Once
	cells, err := c.Inner.Run(inner, spec, func(p mc.Progress) {
		if p.DonePoints >= c.FailAfterPoints {
			once.Do(abort)
		}
		onProgress(p)
	})
	if err == nil || (errors.Is(err, context.Canceled) && ctx.Err() == nil) {
		// Finished before the axe fell (grid smaller than the threshold),
		// or aborted by us rather than the caller: either way this run
		// was doomed, so surface the injected fault.
		return cells, fmt.Errorf("%w (after %d points)", ErrInjected, c.FailAfterPoints)
	}
	return cells, err
}
