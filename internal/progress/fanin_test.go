package progress

import (
	"sync"
	"testing"
)

func TestFaninAggregates(t *testing.T) {
	var got []Counts
	f := NewFanin(func(c Counts) { got = append(got, c) })

	f.Fold(Counts{Total: 100, TotalPoints: 10}) // up-front plan totals
	f.Update("a", Counts{Done: 5, DonePoints: 1})
	f.Update("b", Counts{Done: 3})
	f.Update("a", Counts{Done: 8, DonePoints: 2})

	want := Counts{Done: 11, Total: 100, DonePoints: 2, TotalPoints: 10}
	if s := f.Snapshot(); s != want {
		t.Fatalf("snapshot = %+v, want %+v", s, want)
	}
	if len(got) != 4 || got[3] != want {
		t.Fatalf("emitted %+v", got)
	}

	// Close folds the final contribution atomically: the aggregate never
	// dips below the pre-close value.
	f.Close("a", Counts{Done: 10, DonePoints: 3})
	want = Counts{Done: 13, Total: 100, DonePoints: 3, TotalPoints: 10}
	if s := f.Snapshot(); s != want {
		t.Fatalf("after close: %+v, want %+v", s, want)
	}

	// Discard drops a live source without folding; the caller salvages
	// partial work via Fold.
	f.Discard("b")
	f.Fold(Counts{Done: 1})
	want = Counts{Done: 11, Total: 100, DonePoints: 3, TotalPoints: 10}
	if s := f.Snapshot(); s != want {
		t.Fatalf("after discard: %+v, want %+v", s, want)
	}
}

// Emissions are serialized and each reflects a consistent aggregate; a
// racing mix of sources must never emit a snapshot that goes backwards
// in the settled base.
func TestFaninConcurrent(t *testing.T) {
	var mu sync.Mutex
	maxDone := 0
	f := NewFanin(func(c Counts) {
		mu.Lock()
		if c.Done > maxDone {
			maxDone = c.Done
		}
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := string(rune('a' + w))
			for i := 1; i <= 50; i++ {
				f.Update(src, Counts{Done: i})
			}
			f.Close(src, Counts{Done: 50})
		}(w)
	}
	wg.Wait()
	want := Counts{Done: 8 * 50}
	if s := f.Snapshot(); s != want {
		t.Fatalf("final aggregate %+v, want %+v", s, want)
	}
	if maxDone != 400 {
		t.Fatalf("max emitted Done = %d, want 400", maxDone)
	}
}
