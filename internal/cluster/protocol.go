// The coordinator↔worker wire protocol of distributed grid execution.
// One verb: POST /v1/worker/lease hands a worker a batch of cell
// indices into a job's canonical grid enumeration; the response is a
// newline-delimited JSON stream of events — throttled progress
// snapshots, one "cell" event per completed cell carrying its Point and
// content-addressed key, and a terminal "done" (or "error"). The
// protocol moves only numbers, never model state: worker and
// coordinator each lower the identical canonical JobSpec onto their own
// core.System, and the fingerprint handshake (HTTP 409 on mismatch)
// guarantees both systems spell out the same closure — which is what
// makes a remotely computed Point bit-identical to a local one, and a
// duplicate completion (steal races, lease replays) harmless by
// construction.
package cluster

import (
	"repro/internal/mc"
	"repro/internal/server"
)

// LeaseRequest is the body of POST /v1/worker/lease.
type LeaseRequest struct {
	// LeaseID names the lease in logs and progress attribution.
	LeaseID string `json:"lease_id"`
	// Fingerprint is the job fingerprint the coordinator computed
	// (canonical spec hashed with its system fingerprint). The worker
	// recomputes it against its own system and refuses the lease with
	// 409 if they disagree — a worker on a different substrate would
	// produce different Points, silently corrupting the merge.
	Fingerprint string `json:"fingerprint"`
	// Spec is the job's canonical spec; the worker lowers it onto its
	// own system exactly as the in-process backend would.
	Spec server.JobSpec `json:"spec"`
	// Cells are indices into the grid's canonical Cells() enumeration.
	Cells []int `json:"cells"`
}

// LeaseEvent is one line of the lease response stream.
type LeaseEvent struct {
	// Event is "progress", "cell", "done" or "error".
	Event string `json:"event"`

	// Progress fields (event "progress"): cumulative within the lease —
	// trials and points settled by completed cells plus the live counts
	// of the cell currently executing. The coordinator uses only the
	// done counts; lease-local totals are informative (the coordinator
	// knows the whole job's totals from its own plan).
	DoneTrials  int `json:"done_trials,omitempty"`
	TotalTrials int `json:"total_trials,omitempty"`
	DonePoints  int `json:"done_points,omitempty"`
	TotalPoints int `json:"total_points,omitempty"`

	// Cell fields (event "cell"): the completed cell's index in the
	// canonical enumeration, its content-addressed key (the coordinator
	// asserts it against its own plan — equal keys are bit-identical
	// results), whether the worker served it from its checkpoint store,
	// and the Point itself. Only the Point crosses the wire; the
	// coordinator reconstructs Bench and Model from its own enumeration,
	// and Go's float64 JSON encoding round-trips exactly.
	Index  int       `json:"index"`
	Key    string    `json:"key,omitempty"`
	Cached bool      `json:"cached,omitempty"`
	Point  *mc.Point `json:"point,omitempty"`

	// Error (event "error") is a deterministic execution failure — an
	// invalid operating point, a trial-level error — that would equally
	// fail a single-node run. Transport failures never appear here; they
	// surface as a cut stream.
	Error string `json:"error,omitempty"`
}
