package artifact

import (
	"bytes"
	"errors"
	"os"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{0, 1, 2, 0xFF, 0x80, 7}
	if err := st.Put("kind", "key|a=1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get("kind", "key|a=1")
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload drifted: %x != %x", got, payload)
	}
	s := st.Stats()
	if s.Hits != 1 || s.Puts != 1 || s.Misses != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestMissAndKeyIsolation(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get("kind", "absent"); ok || err != nil {
		t.Fatalf("expected clean miss, got ok=%v err=%v", ok, err)
	}
	if err := st.Put("kind", "k1", []byte("one")); err != nil {
		t.Fatal(err)
	}
	// Same key under a different kind is a distinct artifact.
	if _, ok, _ := st.Get("other", "k1"); ok {
		t.Error("kind does not partition the key space")
	}
}

func TestVersionBumpRejected(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-write a blob framed at a future format version at the exact
	// path Get will consult.
	blob, err := encode("kind", "key", []byte("payload"), Version+1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.path("kind", "key"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, ok, err := st.Get("kind", "key")
	if ok {
		t.Fatal("version-bumped blob was accepted")
	}
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestTornBlobIsRejectedNotMisread(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.path("kind", "key"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ok, err := st.Get("kind", "key")
	if ok || err == nil {
		t.Fatalf("torn blob: ok=%v err=%v, want rejection with error", ok, err)
	}
}

func TestGobPayloadRoundTrip(t *testing.T) {
	type payload struct {
		F []float64
		S string
	}
	in := payload{F: []float64{1.5, -0.0, 3.1415926535}, S: "x"}
	b, err := EncodeGob(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := DecodeGob(b, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.F) != 3 || out.F[2] != in.F[2] || out.S != "x" {
		t.Fatalf("round-trip drifted: %+v", out)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}

// TestConcurrentSameKeyPutStaysAtomic races many writers of one key
// (two daemons over one cache directory, or resolver workers racing a
// store miss) against a reader: every Get that hits must decode to one
// of the complete payloads — the rename-based writer must never expose
// a torn or interleaved blob.
func TestConcurrentSameKeyPutStaysAtomic(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Distinct payloads per writer, each self-describing and large
	// enough that a torn write would be observable.
	const writers = 8
	const rounds = 20
	payloads := make([][]byte, writers)
	for w := range payloads {
		p := make([]byte, 4096)
		for i := range p {
			p[i] = byte(w)
		}
		payloads[w] = p
	}
	valid := func(got []byte) bool {
		if len(got) != 4096 {
			return false
		}
		w := got[0]
		if int(w) >= writers {
			return false
		}
		return bytes.Equal(got, payloads[w])
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := st.Put("kind", "contended", payloads[w]); err != nil {
					t.Errorf("writer %d round %d: %v", w, r, err)
					return
				}
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < writers*rounds; i++ {
			got, ok, err := st.Get("kind", "contended")
			if err != nil {
				t.Errorf("reader: %v", err)
				return
			}
			if ok && !valid(got) {
				t.Errorf("reader observed a torn blob: len=%d first=%d", len(got), got[0])
				return
			}
		}
	}()
	wg.Wait()
	<-readerDone

	// After the dust settles the key must hold one intact payload.
	got, ok, err := st.Get("kind", "contended")
	if err != nil || !ok {
		t.Fatalf("final Get = %v, %v", ok, err)
	}
	if !valid(got) {
		t.Fatalf("final blob torn: len=%d", len(got))
	}
}
