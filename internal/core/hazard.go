// Hazard-table caching: the per-(golden trace, model) prefix
// log-survival arrays that drive first-fault sampling (see
// internal/fi's hazard machinery). Construction marginalizes the model
// over the noise distribution once per op and folds the hazards over
// the whole recorded query stream, so like characterizations and golden
// traces the result is cached in memory per System and persisted
// through the artifact store: a warm grid run skips hazard construction
// the same way it skips DTA and trace recording.

package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/fi"
	"repro/internal/isa"
)

// hazardKey identifies a cached hazard table: the golden trace
// coordinate plus the fully resolved model spec.
type hazardKey struct {
	golden goldenKey
	model  modelKey
}

// hazardCache is the System-level cache; split out so core.go stays the
// construction/golden path and this file the hazard path. Like the
// model and golden caches it is per-key singleflight: each entry's
// once runs the load-or-build exactly once while concurrent callers of
// the same key block on it, and distinct keys build in parallel.
type hazardCache struct {
	mu      sync.Mutex
	tables  map[hazardKey]*hazardEntry
	built   atomic.Int64 // hazard tables actually constructed
	loaded  atomic.Int64 // hazard tables served from the artifact store
	initOne sync.Once
}

// hazardEntry is one singleflight slot of the hazard cache, same
// contract as modelEntry.
type hazardEntry struct {
	once sync.Once
	h    *fi.Hazard
}

func (c *hazardCache) init() {
	c.initOne.Do(func() { c.tables = map[hazardKey]*hazardEntry{} })
}

// HazardBuiltCount reports how many hazard tables this system actually
// constructed (marginalization + prefix fold), as opposed to serving
// from memory or the store.
func (s *System) HazardBuiltCount() int64 { return s.hazards.built.Load() }

// HazardLoadedCount reports how many hazard tables were served from the
// attached artifact store.
func (s *System) HazardLoadedCount() int64 { return s.hazards.loaded.Load() }

// Hazard returns the first-fault sampling table of the benchmark's
// golden trace under the given model spec, building (and caching, and —
// with an attached store — persisting) it on first use. The model must
// resolve to a fi.HazardModel, which every built-in model kind does;
// benchmarks without a shared golden trace are rejected by Golden.
func (s *System) Hazard(b *bench.Benchmark, inputSeed int64, spec ModelSpec) (*fi.Hazard, error) {
	model, err := s.Model(spec)
	if err != nil {
		return nil, err
	}
	hm, ok := model.(fi.HazardModel)
	if !ok {
		return nil, fmt.Errorf("core: model %s cannot report marginal injection probabilities", model.Name())
	}
	g, err := s.Golden(b, inputSeed)
	if err != nil {
		return nil, err
	}
	k := hazardKey{golden: goldenKey{bench: b.Name, inputSeed: inputSeed}, model: spec.key()}
	s.hazards.init()
	s.hazards.mu.Lock()
	e, ok := s.hazards.tables[k]
	if !ok {
		e = &hazardEntry{}
		s.hazards.tables[k] = e
	}
	s.hazards.mu.Unlock()
	// Load-or-build runs once per key; concurrent callers of the same
	// key block here and share the one table. The interior cannot fail:
	// loadHazard degrades to nil on any store problem and BuildHazard is
	// total, so the entry carries no error slot.
	e.once.Do(func() {
		if h := s.loadHazard(b, inputSeed, spec, len(g.Queries)); h != nil {
			s.hazards.loaded.Add(1)
			e.h = h
			return
		}
		e.h = fi.BuildHazard(hm, g.Queries)
		s.hazards.built.Add(1)
		s.saveHazard(b, inputSeed, spec, e.h)
	})
	return e.h, nil
}

// hazardStoreKey spells out every input the table depends on: the full
// system fingerprint (the marginals integrate model C's DTA-derived
// probability tables and the Vdd-delay noise scale, so circuit/DTA
// config changes must miss), the golden-trace key (program content,
// input seed, CPU timing), and the resolved model spec (kind, operating
// point, canonical profile, semantics, sampling).
func (s *System) hazardStoreKey(b *bench.Benchmark, inputSeed int64, spec ModelSpec) (string, error) {
	gk, err := s.goldenStoreKey(b, inputSeed)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("sys=%s|%s|model=%+v", s.Fingerprint(), gk, spec.key()), nil
}

// loadHazard fetches a persisted hazard table; any miss, untrusted blob
// or length mismatch against the live query stream falls back to
// building (the store is an accelerator, never a correctness
// dependency).
func (s *System) loadHazard(b *bench.Benchmark, inputSeed int64, spec ModelSpec, queries int) *fi.Hazard {
	if s.artifacts == nil {
		return nil
	}
	key, err := s.hazardStoreKey(b, inputSeed, spec)
	if err != nil {
		return nil
	}
	payload, ok, _ := s.artifacts.Get(artifact.KindHazard, key)
	if !ok {
		return nil
	}
	var h fi.Hazard
	if err := artifact.DecodeGob(payload, &h); err != nil {
		return nil
	}
	if h.Queries() != queries || len(h.PerOp) != isa.NumOps {
		return nil
	}
	return &h
}

// saveHazard persists a freshly built table; write failures are ignored.
func (s *System) saveHazard(b *bench.Benchmark, inputSeed int64, spec ModelSpec, h *fi.Hazard) {
	if s.artifacts == nil {
		return
	}
	key, err := s.hazardStoreKey(b, inputSeed, spec)
	if err != nil {
		return
	}
	payload, err := artifact.EncodeGob(h)
	if err != nil {
		return
	}
	_ = s.artifacts.Put(artifact.KindHazard, key, payload)
}
