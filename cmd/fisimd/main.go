// Command fisimd is the batch-simulation daemon: a long-running HTTP
// service that accepts experiment-grid jobs (the same grids cmd/sweep
// runs one-shot), executes them asynchronously on the shared mc worker
// pool, deduplicates identical requests by content fingerprint, and
// streams progress over SSE. One core.System serves every job, so
// model, golden-trace and hazard caches — and, with -cache-dir, the
// persistent artifact store — amortize across the daemon's lifetime:
// the first job of a benchmark pays characterization, every later job
// warm-starts, and a resubmitted completed grid answers from cached
// cells in milliseconds.
//
//	fisimd -addr :8023 -cache-dir /var/cache/fisim
//	fisimd -addr :8023 -parallel 2 -queue 128 -dta 4096
//
// See docs/API.md for the HTTP API and cmd/fisimctl for the client.
// SIGINT/SIGTERM drain gracefully: running and queued jobs finish
// (bounded by -drain-timeout), then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("fisimd: ")
	addr := flag.String("addr", ":8023", "listen address")
	cacheDir := flag.String("cache-dir", "", "artifact cache directory (characterizations, traces, hazards, grid cells)")
	dtaCycles := flag.Int("dta", 8192, "DTA characterization cycles")
	workers := flag.Int("workers", 0, "mc worker goroutines per job (0 = NumCPU)")
	parallel := flag.Int("parallel", 1, "jobs executed concurrently")
	queueCap := flag.Int("queue", 64, "bounded job queue capacity")
	keepJobs := flag.Int("keep", 256, "terminal jobs retained in memory")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "graceful drain bound on shutdown")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.DTA.Cycles = *dtaCycles
	sys := core.New(cfg)

	var store *artifact.Store
	if *cacheDir != "" {
		var err error
		if store, err = artifact.Open(*cacheDir); err != nil {
			log.Fatal(err)
		}
		sys.AttachStore(store)
		log.Printf("artifact store: %s", store.Dir())
	}

	m := server.NewManager(server.Options{
		System:   sys,
		Store:    store,
		QueueCap: *queueCap,
		Parallel: *parallel,
		Workers:  *workers,
		KeepJobs: *keepJobs,
	})
	srv := &http.Server{Addr: *addr, Handler: server.Handler(m)}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		s := <-sig
		log.Printf("%v: draining (bound %s)", s, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			log.Printf("drain: %v (remaining jobs cancelled)", err)
		}
		log.Printf("cache: %s", sys.CacheSummary())
		_ = srv.Shutdown(context.Background())
	}()

	log.Printf("listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
