package dta

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/artifact"
	"repro/internal/circuit"
	"repro/internal/timing"
)

func newSmallCharacterizer() *Characterizer {
	return NewCharacterizer(circuit.New(circuit.DefaultConfig()),
		timing.DefaultVddDelay(), Config{Cycles: 512, Seed: 5})
}

// Characterization must not depend on how many goroutines drive the
// characterizer: the soundness of artifact cache keys (which do not
// mention worker counts) rests on the arrival matrices being a pure
// function of (config, key, voltage). One characterizer is driven
// serially, the other by 16 concurrent goroutines hammering the same
// and different keys; every endpoint CDF must be bit-identical.
func TestCharacterizationDeterministicUnderConcurrency(t *testing.T) {
	keys := []Key{
		{Unit: circuit.UnitAdd, Gen: "u32"},
		{Unit: circuit.UnitAdd, Gen: "u16"},
		{Unit: circuit.UnitMul, Gen: "u32"},
		{Unit: circuit.UnitAnd, Gen: "zimm16"},
	}
	serial := newSmallCharacterizer()
	for _, k := range keys {
		if _, err := serial.At(k, 0.7); err != nil {
			t.Fatal(err)
		}
	}

	parallel := newSmallCharacterizer()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		for _, k := range keys {
			wg.Add(1)
			go func(k Key) {
				defer wg.Done()
				if _, err := parallel.At(k, 0.7); err != nil {
					t.Error(err)
				}
			}(k)
		}
	}
	wg.Wait()

	for _, k := range keys {
		a, _ := serial.At(k, 0.7)
		b, _ := parallel.At(k, 0.7)
		if !reflect.DeepEqual(a.Arrivals, b.Arrivals) {
			t.Errorf("%v: arrival matrix differs between serial and concurrent characterization", k)
		}
		if a.MaxPs != b.MaxPs || a.SetupPs != b.SetupPs {
			t.Errorf("%v: scalars differ: %v/%v vs %v/%v", k, a.MaxPs, a.SetupPs, b.MaxPs, b.SetupPs)
		}
		for e := range a.CDFs {
			if a.CDFs[e].MaxPs() != b.CDFs[e].MaxPs() ||
				a.CDFs[e].ViolationProb(circuit.PeriodPs(1200)) != b.CDFs[e].ViolationProb(circuit.PeriodPs(1200)) {
				t.Errorf("%v endpoint %d: CDF differs", k, e)
			}
		}
	}
}

// A second characterizer over the same store must serve every
// characterization from disk, bit-identical to the computed original.
func TestCharacterizationStoreRoundTrip(t *testing.T) {
	st, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Unit: circuit.UnitMul, Gen: "u16"}

	cold := newSmallCharacterizer()
	cold.SetStore(st)
	chCold, err := cold.At(key, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if cold.ComputedCount() != 1 || cold.LoadedCount() != 0 {
		t.Fatalf("cold counters: computed %d, loaded %d", cold.ComputedCount(), cold.LoadedCount())
	}

	warm := newSmallCharacterizer()
	warm.SetStore(st)
	chWarm, err := warm.At(key, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if warm.ComputedCount() != 0 || warm.LoadedCount() != 1 {
		t.Fatalf("warm counters: computed %d, loaded %d — store was not consulted", warm.ComputedCount(), warm.LoadedCount())
	}
	if !reflect.DeepEqual(chCold.Arrivals, chWarm.Arrivals) ||
		!reflect.DeepEqual(chCold.MaxPerCycle, chWarm.MaxPerCycle) {
		t.Error("persisted arrival matrix not bit-identical")
	}
	if chCold.SetupPs != chWarm.SetupPs || chCold.MaxPs != chWarm.MaxPs ||
		chCold.Cycles != chWarm.Cycles || chCold.Key != chWarm.Key {
		t.Errorf("persisted scalars drifted: %+v vs %+v", chCold.Key, chWarm.Key)
	}
	for e := range chCold.CDFs {
		for _, f := range []float64{800, 1200, 1600, 2400} {
			p := circuit.PeriodPs(f)
			if chCold.CDFs[e].ViolationProb(p) != chWarm.CDFs[e].ViolationProb(p) {
				t.Fatalf("endpoint %d CDF differs at %v MHz", e, f)
			}
		}
	}
}

// A characterizer with a different configuration must never hit blobs
// written under another one.
func TestStoreKeySeparatesConfigs(t *testing.T) {
	st, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Unit: circuit.UnitAdd, Gen: "u32"}
	a := newSmallCharacterizer()
	a.SetStore(st)
	if _, err := a.At(key, 0.7); err != nil {
		t.Fatal(err)
	}
	b := NewCharacterizer(circuit.New(circuit.DefaultConfig()),
		timing.DefaultVddDelay(), Config{Cycles: 512, Seed: 6}) // different operand seed
	b.SetStore(st)
	if _, err := b.At(key, 0.7); err != nil {
		t.Fatal(err)
	}
	if b.LoadedCount() != 0 {
		t.Error("characterization with a different DTA seed was served from the other config's blob")
	}
}
