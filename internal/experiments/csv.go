package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteSeriesCSV renders labelled sweep series as tidy CSV (one row per
// (series, frequency) pair) for external plotting of the figures.
func WriteSeriesCSV(w io.Writer, series []Series) error {
	cw := csv.NewWriter(w)
	header := []string{"series", "freq_mhz", "finished_pct", "correct_pct",
		"fi_per_kcycle", "output_err", "trials"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Points {
			rec := []string{
				s.Label,
				fmtF(p.FreqMHz),
				fmtF(p.FinishedPct),
				fmtF(p.CorrectPct),
				fmtF(p.FIRate),
				fmtF(p.OutputErr),
				strconv.Itoa(p.Trials),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig7CSV renders the error-vs-power frontier as CSV.
func WriteFig7CSV(w io.Writer, curves map[string][]Fig7Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "vdd_v", "normalized_power",
		"avg_rel_err_pct", "finished_pct"}); err != nil {
		return err
	}
	for label, pts := range curves {
		for _, p := range pts {
			rec := []string{label, fmtF(p.Vdd), fmtF(p.NormalizedPower),
				fmtF(p.AvgRelErrPct), fmtF(p.FinishedPct)}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCDFCSV renders Fig. 2 CDF curves (from Fig2) as CSV with one row
// per frequency and one column per curve.
func WriteCDFCSV(w io.Writer, curves map[string][]float64) error {
	freqs, ok := curves["freqMHz"]
	if !ok {
		return fmt.Errorf("experiments: curves missing freqMHz axis")
	}
	var names []string
	for name := range curves {
		if name != "freqMHz" {
			names = append(names, name)
		}
	}
	sortStrings(names)
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"freq_mhz"}, names...)); err != nil {
		return err
	}
	for i := range freqs {
		rec := make([]string, 0, len(names)+1)
		rec = append(rec, fmtF(freqs[i]))
		for _, n := range names {
			rec = append(rec, fmtF(curves[n][i]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
