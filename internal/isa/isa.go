// Package isa defines the instruction-set architecture simulated by the
// fault-injection framework: a 32-bit, big-endian, OpenRISC-flavoured RISC
// ISA (an ORBIS32 subset in spirit) with 32 general-purpose registers, a
// single compare flag, and fixed 32-bit instruction words.
//
// The encoding follows the ORBIS32 layout where convenient but is our own
// dialect: there are no branch delay slots, and the R-type/shift sub-opcode
// assignment is simplified. The assembler (internal/asm) and the simulator
// (internal/cpu) only ever talk to each other through this package, and the
// Encode/Decode round-trip is exhaustively tested, so internal consistency
// is what matters.
//
// isa is a leaf of the dependency graph: asm, cpu and bench all build
// on its encodings, and nothing here imports anything but stdlib.
package isa

import "fmt"

// Op enumerates every instruction mnemonic understood by the simulator.
type Op uint8

// Instruction mnemonics. The l. prefix of OpenRISC assembly is dropped in
// the enum names; the assembler accepts both spellings.
const (
	OpInvalid Op = iota

	// Control flow.
	OpJ   // l.j label        : pc-relative jump
	OpJal // l.jal label      : jump and link (r9)
	OpJr  // l.jr rB          : jump register
	OpBf  // l.bf label       : branch if flag set
	OpBnf // l.bnf label      : branch if flag clear
	OpNop // l.nop imm        : no operation
	OpSys // l.sys imm        : system call (exit / kernel markers)

	// Arithmetic and logic (register forms).
	OpAdd // l.add rD,rA,rB
	OpSub // l.sub rD,rA,rB
	OpMul // l.mul rD,rA,rB   : low 32 bits of signed product
	OpAnd // l.and rD,rA,rB
	OpOr  // l.or  rD,rA,rB
	OpXor // l.xor rD,rA,rB
	OpSll // l.sll rD,rA,rB
	OpSrl // l.srl rD,rA,rB
	OpSra // l.sra rD,rA,rB

	// Arithmetic and logic (immediate forms).
	OpAddi  // l.addi rD,rA,simm16
	OpMuli  // l.muli rD,rA,simm16
	OpAndi  // l.andi rD,rA,uimm16
	OpOri   // l.ori  rD,rA,uimm16
	OpXori  // l.xori rD,rA,simm16
	OpSlli  // l.slli rD,rA,uimm6
	OpSrli  // l.srli rD,rA,uimm6
	OpSrai  // l.srai rD,rA,uimm6
	OpMovhi // l.movhi rD,uimm16 : rD = imm << 16

	// Compares: set the flag register.
	OpSfeq  // l.sfeq rA,rB
	OpSfne  // l.sfne rA,rB
	OpSfgtu // l.sfgtu rA,rB
	OpSfgeu // l.sfgeu rA,rB
	OpSfltu // l.sfltu rA,rB
	OpSfleu // l.sfleu rA,rB
	OpSfgts // l.sfgts rA,rB
	OpSfges // l.sfges rA,rB
	OpSflts // l.sflts rA,rB
	OpSfles // l.sfles rA,rB

	// Compare-immediate forms (signed 16-bit immediate).
	OpSfeqi  // l.sfeqi rA,simm16
	OpSfnei  // l.sfnei rA,simm16
	OpSfgtui // l.sfgtui rA,simm16
	OpSfltui // l.sfltui rA,simm16
	OpSfgtsi // l.sfgtsi rA,simm16
	OpSfltsi // l.sfltsi rA,simm16

	// Memory.
	OpLwz // l.lwz rD,simm16(rA)
	OpLhz // l.lhz rD,simm16(rA)  : zero-extended halfword
	OpLbz // l.lbz rD,simm16(rA)  : zero-extended byte
	OpSw  // l.sw  simm16(rA),rB
	OpSh  // l.sh  simm16(rA),rB
	OpSb  // l.sb  simm16(rA),rB

	opMax // sentinel
)

// NumOps is the number of valid opcodes plus the invalid sentinel; useful
// for building dense per-op tables.
const NumOps = int(opMax)

// Instr is a fully decoded instruction.
type Instr struct {
	Op  Op
	RD  uint8 // destination register (or store source slot's partner)
	RA  uint8 // first source register
	RB  uint8 // second source register / store data register
	Imm int32 // sign- or zero-extended immediate, or word branch offset
}

// Syscall immediate values understood by the simulator.
const (
	SysExit        = 0 // terminate the program successfully
	SysKernelBegin = 1 // open the fault-injection window
	SysKernelEnd   = 2 // close the fault-injection window
)

// LinkReg is the register written by l.jal.
const LinkReg = 9

// mnemonics maps ops to assembly names.
var mnemonics = [...]string{
	OpInvalid: "l.invalid",
	OpJ:       "l.j", OpJal: "l.jal", OpJr: "l.jr", OpBf: "l.bf", OpBnf: "l.bnf",
	OpNop: "l.nop", OpSys: "l.sys",
	OpAdd: "l.add", OpSub: "l.sub", OpMul: "l.mul", OpAnd: "l.and", OpOr: "l.or",
	OpXor: "l.xor", OpSll: "l.sll", OpSrl: "l.srl", OpSra: "l.sra",
	OpAddi: "l.addi", OpMuli: "l.muli", OpAndi: "l.andi", OpOri: "l.ori",
	OpXori: "l.xori", OpSlli: "l.slli", OpSrli: "l.srli", OpSrai: "l.srai",
	OpMovhi: "l.movhi",
	OpSfeq:  "l.sfeq", OpSfne: "l.sfne", OpSfgtu: "l.sfgtu", OpSfgeu: "l.sfgeu",
	OpSfltu: "l.sfltu", OpSfleu: "l.sfleu", OpSfgts: "l.sfgts", OpSfges: "l.sfges",
	OpSflts: "l.sflts", OpSfles: "l.sfles",
	OpSfeqi: "l.sfeqi", OpSfnei: "l.sfnei", OpSfgtui: "l.sfgtui",
	OpSfltui: "l.sfltui", OpSfgtsi: "l.sfgtsi", OpSfltsi: "l.sfltsi",
	OpLwz: "l.lwz", OpLhz: "l.lhz", OpLbz: "l.lbz",
	OpSw: "l.sw", OpSh: "l.sh", OpSb: "l.sb",
}

// String returns the assembly mnemonic of the op.
func (o Op) String() string {
	if int(o) < len(mnemonics) && mnemonics[o] != "" {
		return mnemonics[o]
	}
	return fmt.Sprintf("l.op%d", uint8(o))
}

// Class groups instructions by the execution resource they exercise; the
// dynamic timing analysis characterizes each class with its own operand
// distribution, and the fault-injection models condition on it.
type Class uint8

// Instruction classes.
const (
	ClassNone    Class = iota // bubbles, nop
	ClassAdder                // add/addi: carry-propagate adder
	ClassSubber               // sub: adder in subtract mode
	ClassMul                  // mul/muli: multiplier array
	ClassLogic                // and/or/xor (+imm): single-level logic unit
	ClassShift                // shifts: barrel shifter
	ClassCompare              // l.sf*: subtract + flag derivation
	ClassMovhi                // movhi: immediate path
	ClassMem                  // loads/stores
	ClassCtrl                 // jumps, branches, sys
)

// ClassOf returns the execution class of an op.
func ClassOf(op Op) Class {
	switch op {
	case OpAdd, OpAddi:
		return ClassAdder
	case OpSub:
		return ClassSubber
	case OpMul, OpMuli:
		return ClassMul
	case OpAnd, OpOr, OpXor, OpAndi, OpOri, OpXori:
		return ClassLogic
	case OpSll, OpSrl, OpSra, OpSlli, OpSrli, OpSrai:
		return ClassShift
	case OpSfeq, OpSfne, OpSfgtu, OpSfgeu, OpSfltu, OpSfleu,
		OpSfgts, OpSfges, OpSflts, OpSfles,
		OpSfeqi, OpSfnei, OpSfgtui, OpSfltui, OpSfgtsi, OpSfltsi:
		return ClassCompare
	case OpMovhi:
		return ClassMovhi
	case OpLwz, OpLhz, OpLbz, OpSw, OpSh, OpSb:
		return ClassMem
	case OpJ, OpJal, OpJr, OpBf, OpBnf, OpSys:
		return ClassCtrl
	case OpNop:
		return ClassNone
	}
	return ClassNone
}

// IsALU reports whether the op is executed by the ALU data path of the
// execution stage and is therefore eligible for timing-error injection.
// Following the paper's case study, non-ALU instructions (branches, loads,
// stores, ...) are always safe from timing errors below the non-ALU safe
// frequency threshold, because the constraint strategy of [14] keeps all
// other paths short.
func IsALU(op Op) bool {
	switch ClassOf(op) {
	case ClassAdder, ClassSubber, ClassMul, ClassLogic, ClassShift, ClassCompare:
		return true
	}
	return false
}

// IsCompare reports whether the op sets the flag register.
func IsCompare(op Op) bool { return ClassOf(op) == ClassCompare }

// IsLoad reports whether the op reads data memory.
func IsLoad(op Op) bool { return op == OpLwz || op == OpLhz || op == OpLbz }

// IsStore reports whether the op writes data memory.
func IsStore(op Op) bool { return op == OpSw || op == OpSh || op == OpSb }

// IsBranch reports whether the op may redirect control flow.
func IsBranch(op Op) bool {
	switch op {
	case OpJ, OpJal, OpJr, OpBf, OpBnf:
		return true
	}
	return false
}

// WritesRD reports whether the op writes a destination register.
func WritesRD(op Op) bool {
	switch ClassOf(op) {
	case ClassAdder, ClassSubber, ClassMul, ClassLogic, ClassShift, ClassMovhi:
		return true
	}
	return IsLoad(op)
}

// Primary opcode values (bits 31:26 of the instruction word).
const (
	pcJ     = 0x00
	pcJal   = 0x01
	pcBnf   = 0x03
	pcBf    = 0x04
	pcNop   = 0x05
	pcMovhi = 0x06
	pcSys   = 0x08
	pcJr    = 0x11
	pcLwz   = 0x21
	pcLbz   = 0x23
	pcLhz   = 0x25
	pcAddi  = 0x27
	pcAndi  = 0x29
	pcOri   = 0x2A
	pcXori  = 0x2B
	pcMuli  = 0x2C
	pcShImm = 0x2E
	pcSfImm = 0x2F
	pcSw    = 0x35
	pcSb    = 0x36
	pcSh    = 0x37
	pcRtype = 0x38
	pcSf    = 0x39
)

// R-type sub-opcodes (bits 3:0).
const (
	rtAdd = 0x0
	rtSub = 0x2
	rtAnd = 0x3
	rtOr  = 0x4
	rtXor = 0x5
	rtMul = 0x6
	rtSll = 0x8
	rtSrl = 0x9
	rtSra = 0xA
)

// Shift-immediate sub-opcodes (bits 7:6).
const (
	shiSll = 0
	shiSrl = 1
	shiSra = 2
)

// Compare codes (bits 25:21 of l.sf / l.sf*i words).
const (
	sfEq  = 0x0
	sfNe  = 0x1
	sfGtu = 0x2
	sfGeu = 0x3
	sfLtu = 0x4
	sfLeu = 0x5
	sfGts = 0xA
	sfGes = 0xB
	sfLts = 0xC
	sfLes = 0xD
)

var sfRegOps = map[uint32]Op{
	sfEq: OpSfeq, sfNe: OpSfne, sfGtu: OpSfgtu, sfGeu: OpSfgeu,
	sfLtu: OpSfltu, sfLeu: OpSfleu, sfGts: OpSfgts, sfGes: OpSfges,
	sfLts: OpSflts, sfLes: OpSfles,
}

var sfImmOps = map[uint32]Op{
	sfEq: OpSfeqi, sfNe: OpSfnei, sfGtu: OpSfgtui,
	sfLtu: OpSfltui, sfGts: OpSfgtsi, sfLts: OpSfltsi,
}

func sfCodeOf(op Op) uint32 {
	switch op {
	case OpSfeq, OpSfeqi:
		return sfEq
	case OpSfne, OpSfnei:
		return sfNe
	case OpSfgtu, OpSfgtui:
		return sfGtu
	case OpSfgeu:
		return sfGeu
	case OpSfltu, OpSfltui:
		return sfLtu
	case OpSfleu:
		return sfLeu
	case OpSfgts, OpSfgtsi:
		return sfGts
	case OpSfges:
		return sfGes
	case OpSflts, OpSfltsi:
		return sfLts
	case OpSfles:
		return sfLes
	}
	return 0x1F
}

func signExt16(v uint32) int32 { return int32(int16(uint16(v))) }

func signExt26(v uint32) int32 {
	v &= 0x03FFFFFF
	if v&0x02000000 != 0 {
		v |= 0xFC000000
	}
	return int32(v)
}

// Encode packs an instruction into a 32-bit word.
func Encode(in Instr) (uint32, error) {
	rd, ra, rb := uint32(in.RD)&31, uint32(in.RA)&31, uint32(in.RB)&31
	imm16 := uint32(in.Imm) & 0xFFFF
	switch in.Op {
	case OpJ:
		return pcJ<<26 | uint32(in.Imm)&0x03FFFFFF, nil
	case OpJal:
		return pcJal<<26 | uint32(in.Imm)&0x03FFFFFF, nil
	case OpBnf:
		return pcBnf<<26 | uint32(in.Imm)&0x03FFFFFF, nil
	case OpBf:
		return pcBf<<26 | uint32(in.Imm)&0x03FFFFFF, nil
	case OpNop:
		return pcNop<<26 | imm16, nil
	case OpMovhi:
		return pcMovhi<<26 | rd<<21 | imm16, nil
	case OpSys:
		return pcSys<<26 | imm16, nil
	case OpJr:
		return pcJr<<26 | rb<<11, nil
	case OpLwz:
		return pcLwz<<26 | rd<<21 | ra<<16 | imm16, nil
	case OpLbz:
		return pcLbz<<26 | rd<<21 | ra<<16 | imm16, nil
	case OpLhz:
		return pcLhz<<26 | rd<<21 | ra<<16 | imm16, nil
	case OpAddi:
		return pcAddi<<26 | rd<<21 | ra<<16 | imm16, nil
	case OpAndi:
		return pcAndi<<26 | rd<<21 | ra<<16 | imm16, nil
	case OpOri:
		return pcOri<<26 | rd<<21 | ra<<16 | imm16, nil
	case OpXori:
		return pcXori<<26 | rd<<21 | ra<<16 | imm16, nil
	case OpMuli:
		return pcMuli<<26 | rd<<21 | ra<<16 | imm16, nil
	case OpSlli, OpSrli, OpSrai:
		var sub uint32
		switch in.Op {
		case OpSlli:
			sub = shiSll
		case OpSrli:
			sub = shiSrl
		default:
			sub = shiSra
		}
		if in.Imm < 0 || in.Imm > 31 {
			return 0, fmt.Errorf("isa: shift amount %d out of range", in.Imm)
		}
		return pcShImm<<26 | rd<<21 | ra<<16 | sub<<6 | uint32(in.Imm)&0x3F, nil
	case OpSfeqi, OpSfnei, OpSfgtui, OpSfltui, OpSfgtsi, OpSfltsi:
		return pcSfImm<<26 | sfCodeOf(in.Op)<<21 | ra<<16 | imm16, nil
	case OpSw, OpSb, OpSh:
		var pc uint32
		switch in.Op {
		case OpSw:
			pc = pcSw
		case OpSb:
			pc = pcSb
		default:
			pc = pcSh
		}
		// Split immediate like ORBIS32: hi 5 bits in 25:21, lo 11 in 10:0.
		return pc<<26 | (imm16>>11)<<21 | ra<<16 | rb<<11 | imm16&0x7FF, nil
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpMul, OpSll, OpSrl, OpSra:
		var sub uint32
		switch in.Op {
		case OpAdd:
			sub = rtAdd
		case OpSub:
			sub = rtSub
		case OpAnd:
			sub = rtAnd
		case OpOr:
			sub = rtOr
		case OpXor:
			sub = rtXor
		case OpMul:
			sub = rtMul
		case OpSll:
			sub = rtSll
		case OpSrl:
			sub = rtSrl
		default:
			sub = rtSra
		}
		return pcRtype<<26 | rd<<21 | ra<<16 | rb<<11 | sub, nil
	case OpSfeq, OpSfne, OpSfgtu, OpSfgeu, OpSfltu, OpSfleu,
		OpSfgts, OpSfges, OpSflts, OpSfles:
		return pcSf<<26 | sfCodeOf(in.Op)<<21 | ra<<16 | rb<<11, nil
	}
	return 0, fmt.Errorf("isa: cannot encode op %v", in.Op)
}

// Decode unpacks a 32-bit instruction word. Unknown encodings return an
// Instr with Op == OpInvalid and a nil error so the simulator can raise an
// illegal-instruction trap (a faulted fetch is a runtime event, not a
// decode-time programming error).
func Decode(w uint32) Instr {
	pc := w >> 26
	rd := uint8(w >> 21 & 31)
	ra := uint8(w >> 16 & 31)
	rb := uint8(w >> 11 & 31)
	imm16 := w & 0xFFFF
	switch pc {
	case pcJ:
		return Instr{Op: OpJ, Imm: signExt26(w)}
	case pcJal:
		return Instr{Op: OpJal, Imm: signExt26(w)}
	case pcBnf:
		return Instr{Op: OpBnf, Imm: signExt26(w)}
	case pcBf:
		return Instr{Op: OpBf, Imm: signExt26(w)}
	case pcNop:
		return Instr{Op: OpNop, Imm: int32(imm16)}
	case pcMovhi:
		return Instr{Op: OpMovhi, RD: rd, Imm: int32(imm16)}
	case pcSys:
		return Instr{Op: OpSys, Imm: int32(imm16)}
	case pcJr:
		return Instr{Op: OpJr, RB: rb}
	case pcLwz:
		return Instr{Op: OpLwz, RD: rd, RA: ra, Imm: signExt16(imm16)}
	case pcLbz:
		return Instr{Op: OpLbz, RD: rd, RA: ra, Imm: signExt16(imm16)}
	case pcLhz:
		return Instr{Op: OpLhz, RD: rd, RA: ra, Imm: signExt16(imm16)}
	case pcAddi:
		return Instr{Op: OpAddi, RD: rd, RA: ra, Imm: signExt16(imm16)}
	case pcAndi:
		return Instr{Op: OpAndi, RD: rd, RA: ra, Imm: int32(imm16)}
	case pcOri:
		return Instr{Op: OpOri, RD: rd, RA: ra, Imm: int32(imm16)}
	case pcXori:
		return Instr{Op: OpXori, RD: rd, RA: ra, Imm: signExt16(imm16)}
	case pcMuli:
		return Instr{Op: OpMuli, RD: rd, RA: ra, Imm: signExt16(imm16)}
	case pcShImm:
		sub := w >> 6 & 3
		amt := int32(w & 0x3F)
		if amt > 31 {
			return Instr{Op: OpInvalid}
		}
		switch sub {
		case shiSll:
			return Instr{Op: OpSlli, RD: rd, RA: ra, Imm: amt}
		case shiSrl:
			return Instr{Op: OpSrli, RD: rd, RA: ra, Imm: amt}
		case shiSra:
			return Instr{Op: OpSrai, RD: rd, RA: ra, Imm: amt}
		}
	case pcSfImm:
		if op, ok := sfImmOps[uint32(rd)]; ok {
			return Instr{Op: op, RA: ra, Imm: signExt16(imm16)}
		}
	case pcSw, pcSb, pcSh:
		imm := uint32(rd)<<11 | w&0x7FF
		// Sign-extend the reassembled 16-bit immediate.
		simm := signExt16(imm)
		switch pc {
		case pcSw:
			return Instr{Op: OpSw, RA: ra, RB: rb, Imm: simm}
		case pcSb:
			return Instr{Op: OpSb, RA: ra, RB: rb, Imm: simm}
		default:
			return Instr{Op: OpSh, RA: ra, RB: rb, Imm: simm}
		}
	case pcRtype:
		var op Op
		switch w & 0xF {
		case rtAdd:
			op = OpAdd
		case rtSub:
			op = OpSub
		case rtAnd:
			op = OpAnd
		case rtOr:
			op = OpOr
		case rtXor:
			op = OpXor
		case rtMul:
			op = OpMul
		case rtSll:
			op = OpSll
		case rtSrl:
			op = OpSrl
		case rtSra:
			op = OpSra
		default:
			return Instr{Op: OpInvalid}
		}
		return Instr{Op: op, RD: rd, RA: ra, RB: rb}
	case pcSf:
		if op, ok := sfRegOps[uint32(rd)]; ok {
			return Instr{Op: op, RA: ra, RB: rb}
		}
	}
	return Instr{Op: OpInvalid}
}

// String renders the instruction in assembly syntax.
func (in Instr) String() string {
	switch {
	case in.Op == OpJ || in.Op == OpJal || in.Op == OpBf || in.Op == OpBnf:
		return fmt.Sprintf("%v %d", in.Op, in.Imm)
	case in.Op == OpJr:
		return fmt.Sprintf("%v r%d", in.Op, in.RB)
	case in.Op == OpNop || in.Op == OpSys:
		return fmt.Sprintf("%v %d", in.Op, in.Imm)
	case in.Op == OpMovhi:
		return fmt.Sprintf("%v r%d,0x%x", in.Op, in.RD, uint16(in.Imm))
	case IsLoad(in.Op):
		return fmt.Sprintf("%v r%d,%d(r%d)", in.Op, in.RD, in.Imm, in.RA)
	case IsStore(in.Op):
		return fmt.Sprintf("%v %d(r%d),r%d", in.Op, in.Imm, in.RA, in.RB)
	case in.Op == OpSlli || in.Op == OpSrli || in.Op == OpSrai ||
		in.Op == OpAddi || in.Op == OpMuli || in.Op == OpAndi ||
		in.Op == OpOri || in.Op == OpXori:
		return fmt.Sprintf("%v r%d,r%d,%d", in.Op, in.RD, in.RA, in.Imm)
	case IsCompare(in.Op):
		switch in.Op {
		case OpSfeqi, OpSfnei, OpSfgtui, OpSfltui, OpSfgtsi, OpSfltsi:
			return fmt.Sprintf("%v r%d,%d", in.Op, in.RA, in.Imm)
		}
		return fmt.Sprintf("%v r%d,r%d", in.Op, in.RA, in.RB)
	default:
		return fmt.Sprintf("%v r%d,r%d,r%d", in.Op, in.RD, in.RA, in.RB)
	}
}

// AllOps returns every valid op, useful for exhaustive tests and tables.
func AllOps() []Op {
	ops := make([]Op, 0, NumOps)
	for o := OpJ; o < opMax; o++ {
		ops = append(ops, o)
	}
	return ops
}
