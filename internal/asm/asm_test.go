package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func word(t *testing.T, seg Segment, i int) uint32 {
	t.Helper()
	b := seg.Bytes[4*i:]
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func TestBasicInstructions(t *testing.T) {
	p := mustAssemble(t, `
		l.addi r3,r0,42
		l.add  r4,r3,r3
		l.sw   0(r4),r3
		l.lwz  r5,4(r4)
		l.sfgts r5,r3
		l.nop
		l.sys  0
	`)
	wantOps := []isa.Op{isa.OpAddi, isa.OpAdd, isa.OpSw, isa.OpLwz,
		isa.OpSfgts, isa.OpNop, isa.OpSys}
	if len(p.Text.Bytes) != 4*len(wantOps) {
		t.Fatalf("text length %d, want %d", len(p.Text.Bytes), 4*len(wantOps))
	}
	for i, op := range wantOps {
		in := isa.Decode(word(t, p.Text, i))
		if in.Op != op {
			t.Errorf("instr %d decoded to %v, want %v", i, in.Op, op)
		}
	}
	in := isa.Decode(word(t, p.Text, 0))
	if in.RD != 3 || in.RA != 0 || in.Imm != 42 {
		t.Errorf("addi fields wrong: %+v", in)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
	start:
		l.addi r3,r0,10
	loop:
		l.addi r3,r3,-1
		l.sfeqi r3,0
		l.bnf  loop
		l.j    done
		l.nop
	done:
		l.sys 0
	`)
	// l.bnf loop is instruction 3 at entry+12; loop is at entry+4,
	// so offset is (4-12)/4 = -2 words.
	in := isa.Decode(word(t, p.Text, 3))
	if in.Op != isa.OpBnf || in.Imm != -2 {
		t.Errorf("bnf = %+v, want offset -2", in)
	}
	// l.j done: done at entry+24, j at entry+16 -> +2.
	in = isa.Decode(word(t, p.Text, 4))
	if in.Op != isa.OpJ || in.Imm != 2 {
		t.Errorf("j = %+v, want offset 2", in)
	}
	if p.Symbols["start"] != p.Entry {
		t.Errorf("start symbol = %x, want entry %x", p.Symbols["start"], p.Entry)
	}
}

func TestDataSectionAndHiLo(t *testing.T) {
	p := mustAssemble(t, `
		l.movhi r3,hi(table)
		l.ori   r3,r3,lo(table)
		l.sys 0
	.data
	.org 0x48000
	table:
		.word 1, 2, 0x30, -1
	`)
	addr := p.Symbols["table"]
	if addr != 0x48000 {
		t.Fatalf("table at %x, want 0x48000", addr)
	}
	movhi := isa.Decode(word(t, p.Text, 0))
	ori := isa.Decode(word(t, p.Text, 1))
	if uint32(movhi.Imm) != addr>>16 {
		t.Errorf("movhi imm %x, want %x", movhi.Imm, addr>>16)
	}
	if uint32(ori.Imm) != addr&0xFFFF {
		t.Errorf("ori imm %x, want %x", ori.Imm, addr&0xFFFF)
	}
	if p.Data.Base != 0x48000 {
		t.Errorf("data base %x", p.Data.Base)
	}
	if got := word(t, p.Data, 3); got != 0xFFFFFFFF {
		t.Errorf("data[3] = %x, want -1", got)
	}
}

func TestWordLabelFixup(t *testing.T) {
	p := mustAssemble(t, `
		l.sys 0
	.data
	buf:
		.word 7
	ptr:
		.word buf
	`)
	got := word(t, p.Data, 1)
	if got != p.Symbols["buf"] {
		t.Errorf(".word buf = %x, want %x", got, p.Symbols["buf"])
	}
}

func TestDirectives(t *testing.T) {
	p := mustAssemble(t, `
		l.sys 0
	.data
		.byte 1, 2
		.align 4
		.half 0x1234
		.space 2
		.word 9
	`)
	b := p.Data.Bytes
	if b[0] != 1 || b[1] != 2 || b[2] != 0 || b[3] != 0 {
		t.Errorf("byte/align wrong: % x", b[:4])
	}
	if b[4] != 0x12 || b[5] != 0x34 {
		t.Errorf("half wrong: % x", b[4:6])
	}
	if len(b) != 12 {
		t.Fatalf("data len %d, want 12", len(b))
	}
	if b[11] != 9 {
		t.Errorf("final word wrong: % x", b[8:12])
	}
}

func TestComments(t *testing.T) {
	p := mustAssemble(t, `
		; full line comment
		# another comment style
		l.addi r1,r0,1   ; trailing comment
		l.sys 0          # trailing hash comment
	`)
	if len(p.Text.Bytes) != 8 {
		t.Errorf("text length %d, want 8", len(p.Text.Bytes))
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src, substr string
	}{
		{"l.frob r1,r2,r3", "unknown mnemonic"},
		{"l.add r1,r2", "expects 3 operands"},
		{"l.addi r1,r0,0xZZ", "bad number"},
		{"l.addi r1,r0,0x12345", "out of range"},
		{"l.addi r1,r0,40000", "out of range"},
		{"l.bf missing", "undefined symbol"},
		{"x:\nx:\nl.sys 0", "duplicate label"},
		{".bogus 3", "unknown directive"},
		{"l.lwz r1,4[r2]", "bad memory operand"},
		{"l.add r1,r2,r99", "bad register"},
		{".align 3", "power of two"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("source %q assembled without error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("source %q: error %q does not mention %q", c.src, err, c.substr)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("l.nop\nl.nop\nl.frob r1\n")
	ae, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if ae.Line != 3 {
		t.Errorf("error line %d, want 3", ae.Line)
	}
}

func TestNegativeStoreOffset(t *testing.T) {
	p := mustAssemble(t, "l.sw -8(r4),r5\nl.sys 0")
	in := isa.Decode(word(t, p.Text, 0))
	if in.Op != isa.OpSw || in.Imm != -8 || in.RA != 4 || in.RB != 5 {
		t.Errorf("sw decoded %+v", in)
	}
}

func TestOrgBackwardsRejected(t *testing.T) {
	_, err := Assemble(".data\n.word 1\n.org 0x40000\n")
	if err == nil || !strings.Contains(err.Error(), "backwards") {
		t.Errorf("backwards .org not rejected: %v", err)
	}
}
