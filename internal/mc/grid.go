// The multi-axis experiment grid: declarative enumeration of cells over
// (benchmark × model kind × Vdd × sigma × operand profile × frequency),
// scheduled as one flat (cell, trial) work pool, with optional
// cell-level checkpointing to an artifact store for warm restarts.

package mc

import (
	"context"
	"fmt"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dta"
	"repro/internal/fi"
)

// Axes lists the grid dimensions. An empty axis collapses to the single
// value already present in the grid's base Spec (Spec.Bench for
// Benches, the corresponding Spec.Model field for the others), so a
// Grid with only Freqs set is exactly a frequency sweep and a Grid with
// no axes at all is a single data point. A nil Profiles entry resolves
// to the cell benchmark's own operand profile, matching the sweep
// engine's historical defaulting.
type Axes struct {
	Benches  []*bench.Benchmark
	Kinds    []string // fault model kinds: "none", "A", "B", "B+", "C"
	Vdds     []float64
	Sigmas   []float64
	Profiles []dta.Profile
	Freqs    []float64
}

// withDefaults collapses empty axes onto the base spec's values.
func (a Axes) withDefaults(s Spec) Axes {
	if len(a.Benches) == 0 {
		a.Benches = []*bench.Benchmark{s.Bench}
	}
	if len(a.Kinds) == 0 {
		a.Kinds = []string{s.Model.Kind}
	}
	if len(a.Vdds) == 0 {
		a.Vdds = []float64{s.Model.Vdd}
	}
	if len(a.Sigmas) == 0 {
		a.Sigmas = []float64{s.Model.Sigma}
	}
	if len(a.Profiles) == 0 {
		a.Profiles = []dta.Profile{s.Model.Profile}
	}
	if len(a.Freqs) == 0 {
		a.Freqs = []float64{s.Model.FreqMHz}
	}
	return a
}

// FreqRange expands an inclusive [lo, hi] frequency range with the
// given step into the explicit list, absorbing float accumulation
// drift at the endpoint (repeated addition of a non-dyadic step can
// overshoot hi by ~1 ulp and silently drop the final frequency). It is
// the one expansion shared by cmd/sweep, the experiments runners and
// the server's job-spec canonicalization, so a range and its explicit
// expansion always mean the same grid. A non-positive step yields nil.
func FreqRange(lo, hi, step float64) []float64 {
	if step <= 0 {
		return nil
	}
	var out []float64
	for f := lo; f <= hi+1e-9; f += step {
		out = append(out, f)
		if f+step == f {
			// step is below float resolution at this magnitude: f can
			// never advance, so stop rather than loop forever.
			break
		}
	}
	return out
}

// Cell is one fully resolved grid coordinate: a benchmark and a
// complete model spec (operating point and profile included).
type Cell struct {
	Bench *bench.Benchmark
	Model core.ModelSpec
}

// CellResult is one evaluated grid cell. Cached marks cells that were
// loaded from the artifact store instead of recomputed (grid resume).
type CellResult struct {
	Bench  string
	Model  core.ModelSpec
	Cached bool
	Point  Point
}

// Grid evaluates a base Spec over the cross product of its Axes. Every
// (cell, trial) pair of the whole grid is drawn from one shared worker
// pool, cells of one benchmark share one golden execution context, and
// each cell's numbers are bit-identical to evaluating that cell alone
// with Run for the same Spec.Seed (trial RNG depends only on (Seed,
// trial index), aggregation is in trial-index order).
//
// With a Store attached, every completed cell is checkpointed under a
// key derived from the system fingerprint, the spec, and the cell
// coordinate; a later Grid with Resume set loads those cells instead of
// recomputing them, so an interrupted run continues where it stopped.
type Grid struct {
	Spec Spec
	Axes Axes
	// Store, when non-nil, receives completed cells; Resume additionally
	// consults it before scheduling a cell.
	Store  *artifact.Store
	Resume bool
}

// Cells enumerates the grid's coordinates in their fixed evaluation
// order: benchmark-major, then kind, Vdd, sigma, profile, and frequency
// innermost (so a single-axis frequency grid enumerates exactly like a
// sweep).
func (g Grid) Cells() []Cell {
	s := g.Spec.withDefaults()
	a := g.Axes.withDefaults(s)
	cells := make([]Cell, 0, len(a.Benches)*len(a.Kinds)*len(a.Vdds)*len(a.Sigmas)*len(a.Profiles)*len(a.Freqs))
	for _, b := range a.Benches {
		for _, kind := range a.Kinds {
			for _, vdd := range a.Vdds {
				for _, sigma := range a.Sigmas {
					for _, prof := range a.Profiles {
						for _, f := range a.Freqs {
							ms := s.Model
							ms.Kind = kind
							ms.Vdd = vdd
							ms.Sigma = sigma
							ms.FreqMHz = f
							ms.Profile = prof
							if ms.Profile == nil {
								ms.Profile = b.Profile
							}
							cells = append(cells, Cell{Bench: b, Model: ms})
						}
					}
				}
			}
		}
	}
	return cells
}

// cellKey spells out everything a cell's Point depends on: the system
// fingerprint (netlists, DTA, Vdd-delay, CPU timing), the benchmark's
// program content (core.BenchDigest, so editing a kernel invalidates
// its cells) and input seed, the resolved model spec, every
// trial-allocation parameter, and the trial path class. Workers is
// deliberately absent (the engine guarantees bit-identical results
// across schedules), and the scan and full paths share the "exact"
// class because they are bit-identical by the differential tests —
// but first-fault sampling draws a different RNG stream, so its cells
// must not alias theirs. Map-valued fields (the operand profile) print
// in sorted key order, so the string is canonical.
func cellKey(fingerprint, benchDigest string, s Spec, c Cell) string {
	// The firstfault class matches exactly when first-fault sampling
	// will serve the cell (batched under ModeAuto, per-trial under
	// ModeFirstFault — bit-identical to each other by the differential
	// tests): a shared golden run (fixed inputs) and a watchdog budget
	// that admits it (newBenchCtx keeps the golden trace iff
	// WatchdogFactor >= 1). Every built-in model kind is a
	// fi.HazardModel, so the model needs no say here; a key is in any
	// case a pure function of inputs that determine the path, so it can
	// never alias results computed under a different law. The rng=x1
	// marker names the per-trial RNG family (xoshiro256++ streams keyed
	// by SubSeed): changing the family changes every sampled result, so
	// cells computed under the old stdlib streams must miss.
	path := "exact"
	if (s.Mode == ModeAuto || s.Mode == ModeFirstFault) && !c.Bench.PerTrialInputs && s.WatchdogFactor >= 1 {
		path = "firstfault"
	}
	return fmt.Sprintf("sys=%s|bench=%s|prog=%s|inputSeed=%d|model=%+v|trials=%d|tmin=%d|tmax=%d|z=%g|eps=%g|seed=%d|wf=%g|path=%s|rng=x1",
		fingerprint, c.Bench.Name, benchDigest, s.InputSeed, c.Model,
		s.Trials, s.TrialsMin, s.TrialsMax, s.WilsonZ, s.CorrectEps,
		s.Seed, s.WatchdogFactor, path)
}

// loadCell fetches a checkpointed cell Point; any untrusted blob is a
// miss.
func loadCell(st *artifact.Store, key string) (Point, bool) {
	payload, ok, _ := st.Get(artifact.KindGridCell, key)
	if !ok {
		return Point{}, false
	}
	var pt Point
	if err := artifact.DecodeGob(payload, &pt); err != nil {
		return Point{}, false
	}
	return pt, true
}

// Run evaluates the grid. Like Sweep, an invalid operating point
// partway through the enumeration still yields the results of every
// cell before it, together with that cell's error; a trial-level error
// aborts the whole grid.
func (g Grid) Run() ([]CellResult, error) {
	return g.RunContext(context.Background())
}

// RunContext evaluates the grid under a context. Cancellation is
// honoured at cell-resolution boundaries (before each model build /
// golden run, which can be expensive on a cold cache) and at trial
// granularity inside the engine: no new trials are scheduled, in-flight
// trials finish, and the run returns ctx's error. Cells that completed
// before the cancellation are already checkpointed when a store is
// attached, so a resubmitted grid resumes past them.
func (g Grid) RunContext(ctx context.Context) ([]CellResult, error) {
	s := g.Spec.withDefaults()
	cells := g.Cells()
	results := make([]CellResult, 0, len(cells))
	var fingerprint string
	if g.Store != nil {
		fingerprint = s.System.Fingerprint()
	}

	// Resolve every cell in enumeration order: resumed cells come from
	// the store, the rest get their (cached) model and benchmark context
	// and queue for the engine. The first invalid cell — unbuildable
	// model or failing golden run — ends the enumeration with the valid
	// prefix intact (the queued prefix still runs below).
	var live []*pointState
	var liveIdx []int
	ctxs := map[string]*benchCtx{}
	digests := map[string]string{}
	var modelErr error
	for _, c := range cells {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var key string
		if g.Store != nil {
			digest, ok := digests[c.Bench.Name]
			if !ok {
				var err error
				if digest, err = core.BenchDigest(c.Bench, s.InputSeed); err != nil {
					modelErr = err
					break
				}
				digests[c.Bench.Name] = digest
			}
			key = cellKey(fingerprint, digest, s, c)
			if g.Resume {
				if pt, ok := loadCell(g.Store, key); ok {
					results = append(results, CellResult{
						Bench: c.Bench.Name, Model: c.Model, Cached: true, Point: pt,
					})
					continue
				}
			}
		}
		model, err := s.System.Model(c.Model)
		if err != nil {
			modelErr = err
			break
		}
		ctx, ok := ctxs[c.Bench.Name]
		if !ok {
			ctx, err = newBenchCtx(s, c.Bench)
			if err != nil {
				modelErr = err
				break
			}
			ctxs[c.Bench.Name] = ctx
		}
		ps := &pointState{cell: c, ctx: ctx, model: model, key: key}
		if (s.Mode == ModeAuto || s.Mode == ModeFirstFault) && ctx.golden != nil {
			// First-fault sampling: fetch (or build and cache) the cell's
			// hazard table over the shared golden trace. Every built-in
			// model is a HazardModel; the type assertion keeps custom
			// injectors on the scan path instead of failing.
			if hm, ok := model.(fi.HazardModel); ok {
				hz, err := s.System.Hazard(c.Bench, s.InputSeed, c.Model)
				if err != nil {
					modelErr = err
					break
				}
				ps.hazModel, ps.hazard = hm, hz
			}
		}
		// ModeAuto runs the hazard-backed cells batched; ModeFirstFault
		// keeps the per-trial path as the differential reference.
		ps.batched = s.Mode == ModeAuto && ps.hazard != nil
		live = append(live, ps)
		results = append(results, CellResult{Bench: c.Bench.Name, Model: c.Model})
		liveIdx = append(liveIdx, len(results)-1)
	}

	if len(live) > 0 {
		pts, err := newEngine(s, live, g.Store).run(ctx)
		if err != nil {
			return nil, err
		}
		for i, pt := range pts {
			results[liveIdx[i]].Point = pt
		}
	}
	return results, modelErr
}
