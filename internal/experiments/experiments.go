// Package experiments regenerates every table and figure of the paper's
// evaluation: each runner reproduces the corresponding workload,
// parameter sweep and metrics, and renders the same rows/series the paper
// reports as text tables. Absolute numbers come from our synthetic
// substrate (generated netlists instead of the authors' 28 nm test
// chip), so EXPERIMENTS.md records paper-vs-measured for each; the
// orderings, transition regions and crossovers are the reproduction
// targets.
//
// Every Monte-Carlo table and figure is declared as an mc.Grid — the
// axes it spans (benchmarks, model kinds, voltages, sigmas,
// frequencies) rather than hand-written nested loops — and runs on the
// shared grid engine. With Options.Store attached, completed cells,
// characterizations and golden traces persist across processes, so
// regenerating a figure over a warm cache costs file reads.
//
// experiments is the topmost library layer of the dependency graph: it
// declares grids for internal/mc, renders its own text tables and CSV
// series, and is driven by cmd/paperrepro and the root facade's
// ReproduceAll.
package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/artifact"
	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dta"
	"repro/internal/isa"
	"repro/internal/mc"
	"repro/internal/mem"
	"repro/internal/timing"
)

// runSourceGolden assembles and executes a kernel fault-free, returning
// the core for statistics inspection.
func runSourceGolden(src string, cfg cpu.Config) (*cpu.CPU, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	c := cpu.New(mem.New(), nil, cfg)
	if err := c.Load(p); err != nil {
		return nil, err
	}
	c.SetWatchdog(100_000_000)
	if st := c.Run(); st != cpu.StatusExited {
		return nil, fmt.Errorf("experiments: golden run ended %v (%v)", st, c.TrapErr())
	}
	return c, nil
}

// Options configures the runners. Scale shrinks trial counts and sweep
// resolution for quick runs (tests and benches use Scale < 1; the full
// reproduction uses 1).
type Options struct {
	System *core.System
	Out    io.Writer
	Seed   int64
	Scale  float64
	// Progress, when non-nil, receives grid-engine progress snapshots
	// from every Monte-Carlo run a figure performs (see mc.Spec.Progress).
	Progress func(mc.Progress)
	// Store, when non-nil, checkpoints completed grid cells and resumes
	// from them, in addition to the characterization/golden-trace caches
	// the System itself consults.
	Store *artifact.Store
}

func (o Options) withDefaults() Options {
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) trials(full int) int {
	n := int(float64(full) * o.Scale)
	if n < 4 {
		n = 4
	}
	return n
}

func (o Options) freqs(lo, hi, step float64) []float64 {
	if o.Scale < 1 {
		step *= math.Sqrt(1 / o.Scale)
	}
	return mc.FreqRange(lo, hi, step)
}

func (o Options) spec(b *bench.Benchmark, model core.ModelSpec, fullTrials int) mc.Spec {
	return mc.Spec{
		System:   o.System,
		Bench:    b,
		Model:    model,
		Trials:   o.trials(fullTrials),
		Seed:     o.Seed,
		Progress: o.Progress,
	}
}

// runGrid evaluates one declarative grid through the shared engine,
// wiring the options' artifact store for cell checkpoint/resume.
func (o Options) runGrid(spec mc.Spec, axes mc.Axes) ([]mc.CellResult, error) {
	return mc.Grid{Spec: spec, Axes: axes, Store: o.Store, Resume: o.Store != nil}.Run()
}

// pointsOf strips cell metadata from a slice of grid cells.
func pointsOf(cells []mc.CellResult) []mc.Point {
	pts := make([]mc.Point, len(cells))
	for i, c := range cells {
		pts[i] = c.Point
	}
	return pts
}

// Series is one labelled sweep result.
type Series struct {
	Label  string
	Points []mc.Point
}

// printPoints renders a sweep as the paper's four per-frequency metrics.
func printPoints(w io.Writer, pts []mc.Point) {
	fmt.Fprintf(w, "  %8s %9s %9s %12s %12s\n",
		"f[MHz]", "finished", "correct", "FI/kCycle", "output-err")
	for _, p := range pts {
		fmt.Fprintf(w, "  %8.1f %8.1f%% %8.1f%% %12.4f %12.4g\n",
			p.FreqMHz, p.FinishedPct, p.CorrectPct, p.FIRate, p.OutputErr)
	}
}

// Table1 reproduces the benchmark-properties table: type, workload size,
// kernel cycles and output-error metric, measured on our implementations.
// Declaratively it is the (benchmark) axis of the grid at one fault-free
// operating point, one trial per cell.
func Table1(o Options) ([]mc.Point, error) {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Table 1: benchmark properties (measured)")
	fmt.Fprintf(o.Out, "  %-16s %-12s %-10s %-10s %12s %-28s\n",
		"benchmark", "compute", "control", "mul-frac", "kCycles", "output error metric")
	spec := o.spec(nil, core.ModelSpec{Kind: "none"}, 1)
	spec.Trials = 1
	cells, err := o.runGrid(spec, mc.Axes{
		Benches: bench.All(),
		Freqs:   []float64{700},
	})
	if err != nil {
		return nil, fmt.Errorf("table1: %w", err)
	}
	pts := pointsOf(cells)
	for i, b := range bench.All() {
		mix, err := kernelMix(o.System, b)
		if err != nil {
			return nil, err
		}
		compute, control := classify(mix)
		fmt.Fprintf(o.Out, "  %-16s %-12s %-10s %-10.3f %12.0f %-28s\n",
			b.Name, compute, control, mix.mulFrac, pts[i].KernelCycles/1000, b.MetricName)
	}
	return pts, nil
}

type mixInfo struct {
	mulFrac, cmpFrac, branchFrac, aluFrac float64
}

func kernelMix(sys *core.System, b *bench.Benchmark) (mixInfo, error) {
	// Re-run fault-free on a private CPU to read the instruction mix.
	src, _, err := b.Build(42)
	if err != nil {
		return mixInfo{}, err
	}
	c, err := runSourceGolden(src, sys.Cfg.CPU)
	if err != nil {
		return mixInfo{}, err
	}
	m := c.Mix()
	tot := float64(m.Total)
	return mixInfo{
		mulFrac:    float64(m.Mul) / tot,
		cmpFrac:    float64(m.Compare) / tot,
		branchFrac: float64(m.Control) / tot,
		aluFrac:    float64(m.ALU) / tot,
	}, nil
}

func classify(m mixInfo) (compute, control string) {
	switch {
	case m.mulFrac > 0.05:
		compute = "++"
	case m.mulFrac > 0.005:
		compute = "+"
	default:
		compute = "-"
	}
	switch {
	case m.cmpFrac+m.branchFrac > 0.45:
		control = "++"
	case m.cmpFrac+m.branchFrac > 0.30:
		control = "+"
	default:
		control = "-"
	}
	return compute, control
}

// Table2 renders the model feature matrix (static, from the paper's
// Table 2; our implementations follow the same taxonomy).
func Table2(o Options) {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Table 2: timing error models & features")
	fmt.Fprintf(o.Out, "  %-6s %-38s %-8s %-9s %-9s %-12s %-10s\n",
		"model", "fault injection technique", "timing", "multi-Vdd", "Vdd-noise", "gate-aware", "instr-aware")
	rows := [][7]string{
		{"A", "fixed probability", "none", "no", "no", "no", "no"},
		{"B", "fixed period violation", "STA", "yes", "no", "partially", "no"},
		{"B+", "modulated period violation", "STA", "yes", "yes", "partially", "no"},
		{"C", "probabilistic period violation (CDFs)", "DTA", "yes", "yes", "yes", "yes"},
	}
	for _, r := range rows {
		fmt.Fprintf(o.Out, "  %-6s %-38s %-8s %-9s %-9s %-12s %-10s\n",
			r[0], r[1], r[2], r[3], r[4], r[5], r[6])
	}
}

// Fig1 reproduces the static-model behaviour on the median benchmark:
// model B at 0.7 V and model B+ with sigma = 10 and 25 mV, swept in a
// narrow band above each first-FI frequency. The expected shape is a
// hard threshold: finished/correct collapse within a few MHz, with the
// noise moving the cliff from 707 down to about 661 / 588 MHz and the
// onset FI rate dropping to about 10/kCycle.
func Fig1(o Options) ([]Series, error) {
	o = o.withDefaults()
	med := bench.Median()
	var out []Series
	for _, cfg := range []struct {
		label string
		kind  string
		sigma float64
	}{
		{"(a) model B, sigma=0mV", "B", 0},
		{"(b) model B+, sigma=10mV", "B+", 0.010},
		{"(c) model B+, sigma=25mV", "B+", 0.025},
	} {
		model := core.ModelSpec{Kind: cfg.kind, Vdd: 0.7, Sigma: cfg.sigma}
		probe, err := o.System.Model(core.ModelSpec{Kind: cfg.kind, Vdd: 0.7, Sigma: cfg.sigma, FreqMHz: 700})
		if err != nil {
			return nil, err
		}
		first := 707.0
		if mb, ok := probe.(interface{ FirstFIMHz() float64 }); ok {
			first = mb.FirstFIMHz()
		}
		// Each static-model series is a single-axis grid over the narrow
		// band above its own first-FI frequency.
		cells, err := o.runGrid(o.spec(med, model, 100), mc.Axes{
			Freqs: o.freqs(math.Floor(first)-1, math.Floor(first)+4, 0.5),
		})
		if err != nil {
			return nil, err
		}
		pts := pointsOf(cells)
		fmt.Fprintf(o.Out, "Fig 1 %s: first FI at %.1f MHz (paper: 707 / 661 / 588)\n", cfg.label, first)
		printPoints(o.Out, pts)
		out = append(out, Series{Label: cfg.label, Points: pts})
	}
	return out, nil
}

// Fig2 reproduces the DTA timing-error CDFs for l.add and l.mul, result
// bits 3 and 24, at 0.7 V and 0.8 V: probability of timing violation vs
// clock frequency.
func Fig2(o Options) (map[string][]float64, error) {
	o = o.withDefaults()
	freqs := o.freqs(700, 2000, 50)
	out := map[string][]float64{"freqMHz": freqs}
	fmt.Fprintln(o.Out, "Fig 2: DTA timing-error probability CDFs")
	fmt.Fprintf(o.Out, "  %8s", "f[MHz]")
	type curve struct {
		name string
		op   isa.Op
		bit  int
		vdd  float64
	}
	curves := []curve{
		{"mul.bit3@0.7V", isa.OpMul, 3, 0.7},
		{"mul.bit24@0.7V", isa.OpMul, 24, 0.7},
		{"mul.bit24@0.8V", isa.OpMul, 24, 0.8},
		{"add.bit3@0.7V", isa.OpAdd, 3, 0.7},
		{"add.bit24@0.7V", isa.OpAdd, 24, 0.7},
		{"add.bit24@0.8V", isa.OpAdd, 24, 0.8},
	}
	for _, c := range curves {
		fmt.Fprintf(o.Out, " %14s", c.name)
	}
	fmt.Fprintln(o.Out)
	chs := make([]*dta.Characterization, len(curves))
	for i, c := range curves {
		ch, err := o.System.Char.ForOp(c.op, nil, c.vdd)
		if err != nil {
			return nil, err
		}
		chs[i] = ch
	}
	for i, c := range curves {
		series := make([]float64, len(freqs))
		for j, f := range freqs {
			series[j] = chs[i].CDFs[c.bit].ViolationProb(circuit.PeriodPs(f))
		}
		out[c.name] = series
	}
	for j := range freqs {
		fmt.Fprintf(o.Out, "  %8.0f", freqs[j])
		for _, c := range curves {
			fmt.Fprintf(o.Out, " %13.1f%%", out[c.name][j]*100)
		}
		fmt.Fprintln(o.Out)
	}
	return out, nil
}

// Fig4 reproduces the instruction characterization: MSE vs frequency for
// 16-bit addition, 32-bit addition and 16x16-bit multiplication under
// model C at 0.7 V with sigma = 10 mV. The paper's points of first
// failure are 877, 746 and 685 MHz with the ordering mul < add32 <
// add16.
func Fig4(o Options) ([]Series, error) {
	o = o.withDefaults()
	freqs := o.freqs(650, 1150, 25)
	benches := []*bench.Benchmark{bench.MicroMul16(), bench.MicroAdd32(), bench.MicroAdd16()}
	fmt.Fprintln(o.Out, "Fig 4: MSE vs frequency per instruction (model C, 0.7V, sigma=10mV)")
	// One two-axis grid: (microkernel × frequency) under model C.
	cells, err := o.runGrid(
		o.spec(nil, core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010}, 100),
		mc.Axes{Benches: benches, Freqs: freqs},
	)
	if err != nil {
		return nil, err
	}
	var out []Series
	for i, b := range benches {
		pts := pointsOf(cells[i*len(freqs) : (i+1)*len(freqs)])
		first := math.NaN()
		for _, p := range pts {
			if p.OutputErr > 0 {
				first = p.FreqMHz
				break
			}
		}
		fmt.Fprintf(o.Out, " %s: first MSE>0 at %.0f MHz\n", b.Name, first)
		printPoints(o.Out, pts)
		out = append(out, Series{Label: b.Name, Points: pts})
	}
	return out, nil
}

// Fig5 reproduces the median benchmark's program performance under model
// C for Vdd in {0.7, 0.8} V and sigma in {0, 10, 25} mV: finished,
// correct, FI rate and relative output error vs frequency, with the PoFF
// and its gain over the STA limit annotated.
func Fig5(o Options) ([]Series, error) {
	o = o.withDefaults()
	med := bench.Median()
	var out []Series
	for _, cfg := range []struct {
		vdd   float64
		sigma float64
	}{
		{0.7, 0}, {0.7, 0.010}, {0.7, 0.025},
		{0.8, 0}, {0.8, 0.010}, {0.8, 0.025},
	} {
		sta := o.System.STALimitMHz(cfg.vdd)
		// Each (Vdd, sigma) series spans its own frequency band around
		// that voltage's STA limit, so the declaration stays per-series.
		lo := math.Max(620, sta*0.92-40*1000*cfg.sigma)
		hi := math.Min(sta*1.45, o.System.NonALUSafeMHz(cfg.vdd)-1)
		model := core.ModelSpec{Kind: "C", Vdd: cfg.vdd, Sigma: cfg.sigma}
		cells, err := o.runGrid(o.spec(med, model, 200), mc.Axes{
			Freqs: o.freqs(lo, hi, 10),
		})
		if err != nil {
			return nil, err
		}
		pts := pointsOf(cells)
		label := fmt.Sprintf("Vdd=%.1fV sigma=%.0fmV", cfg.vdd, cfg.sigma*1000)
		fmt.Fprintf(o.Out, "Fig 5 %s: STA limit %.0f MHz", label, sta)
		if poff, ok := mc.PoFF(pts); ok {
			fmt.Fprintf(o.Out, ", PoFF %.0f MHz (gain %.1f%%)", poff, mc.GainOverSTA(poff, sta))
		} else {
			fmt.Fprintf(o.Out, ", no failure in range")
		}
		fmt.Fprintln(o.Out)
		printPoints(o.Out, pts)
		out = append(out, Series{Label: label, Points: pts})
	}
	return out, nil
}

// Fig6 reproduces the benchmark comparison at 0.7 V with sigma = 10 mV
// under model C, and contrasts it with model B+'s single hard threshold
// that hits all benchmarks identically.
func Fig6(o Options) ([]Series, error) {
	o = o.withDefaults()
	var out []Series
	bplus, err := o.System.Model(core.ModelSpec{Kind: "B+", Vdd: 0.7, Sigma: 0.010, FreqMHz: 700})
	if err != nil {
		return nil, err
	}
	if mb, ok := bplus.(interface{ FirstFIMHz() float64 }); ok {
		fmt.Fprintf(o.Out, "Fig 6: model B+ hard threshold at %.0f MHz for every benchmark (paper: 661)\n",
			mb.FirstFIMHz())
	}
	sta := o.System.STALimitMHz(0.7)
	benches := []*bench.Benchmark{
		bench.MatMult8(), bench.MatMult16(), bench.KMeans(), bench.Dijkstra(),
	}
	freqs := o.freqs(680, 1000, 10)
	// One two-axis grid: (application benchmark × frequency) under
	// model C at the shared operating conditions.
	cells, err := o.runGrid(
		o.spec(nil, core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010}, 100),
		mc.Axes{Benches: benches, Freqs: freqs},
	)
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		pts := pointsOf(cells[i*len(freqs) : (i+1)*len(freqs)])
		fmt.Fprintf(o.Out, "Fig 6 (%s):", b.Name)
		if poff, ok := mc.PoFF(pts); ok {
			fmt.Fprintf(o.Out, " PoFF %.0f MHz (gain %.1f%% over STA %.0f)", poff, mc.GainOverSTA(poff, sta), sta)
		}
		fmt.Fprintln(o.Out)
		printPoints(o.Out, pts)
		out = append(out, Series{Label: b.Name, Points: pts})
	}
	return out, nil
}

// Fig7Point is one operating point of the error-vs-power trade-off.
type Fig7Point struct {
	Vdd             float64
	NormalizedPower float64
	AvgRelErrPct    float64
	FinishedPct     float64
}

// Fig7 reproduces the error-vs-power trade-off for the median benchmark:
// the core runs at the nominal 707 MHz clock while the supply is scaled
// below 0.7 V; quality comes from model C and power from quadratic
// voltage scaling. Landmarks in the paper: PoFF at 0.667 V (0.93x
// power; our power model gives about 0.91x) and 22% error at 0.657 V
// (0.88x).
func Fig7(o Options) (map[string][]Fig7Point, error) {
	o = o.withDefaults()
	med := bench.Median()
	pm := o.System.Cfg.Power
	fNom := o.System.STALimitMHz(timing.VRef)
	out := map[string][]Fig7Point{}
	// Scale the supply downward from the nominal 0.7 V so the frontier
	// always starts at the error-free nominal point.
	vStep := 0.005
	if o.Scale < 1 {
		vStep *= math.Sqrt(1 / o.Scale)
	}
	var volts []float64
	for v := timing.VRef; v >= 0.630-1e-9; v -= vStep {
		volts = append(volts, v)
	}
	// One two-axis grid: (Vdd × sigma) under model C at the fixed
	// nominal clock. The series rendering below still truncates each
	// sigma's frontier once the error saturates, as the paper's figure
	// does.
	sigmas := []float64{0, 0.010, 0.025}
	cells, err := o.runGrid(
		o.spec(med, core.ModelSpec{Kind: "C"}, 100),
		mc.Axes{Vdds: volts, Sigmas: sigmas, Freqs: []float64{fNom}},
	)
	if err != nil {
		return nil, err
	}
	// Enumeration is Vdd-major, sigma inner: cell (vi, si) sits at
	// vi*len(sigmas)+si.
	for si, sigma := range sigmas {
		label := fmt.Sprintf("sigma=%.0fmV", sigma*1000)
		var series []Fig7Point
		fmt.Fprintf(o.Out, "Fig 7 (%s): fixed f = %.0f MHz\n", label, fNom)
		fmt.Fprintf(o.Out, "  %8s %10s %12s %10s\n", "Vdd[V]", "P/Pnom", "avg-rel-err", "finished")
		for vi, v := range volts {
			pt := cells[vi*len(sigmas)+si].Point
			fp := Fig7Point{
				Vdd:             v,
				NormalizedPower: pm.Normalized(v, timing.VRef, fNom),
				AvgRelErrPct:    pt.OutputErrAll,
				FinishedPct:     pt.FinishedPct,
			}
			fmt.Fprintf(o.Out, "  %8.3f %10.3f %11.1f%% %9.1f%%\n",
				fp.Vdd, fp.NormalizedPower, fp.AvgRelErrPct, fp.FinishedPct)
			series = append(series, fp)
			if fp.AvgRelErrPct >= 99.5 {
				break
			}
		}
		out[label] = series
	}
	return out, nil
}
