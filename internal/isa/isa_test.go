package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// sampleInstr builds a random but encodable instruction for the given op.
func sampleInstr(op Op, rng *rand.Rand) Instr {
	in := Instr{Op: op}
	reg := func() uint8 { return uint8(rng.Intn(32)) }
	simm16 := func() int32 { return int32(int16(rng.Uint32())) }
	switch {
	case op == OpJ || op == OpJal || op == OpBf || op == OpBnf:
		// 26-bit signed word offset.
		in.Imm = int32(rng.Intn(1<<25)) - 1<<24
	case op == OpJr:
		in.RB = reg()
	case op == OpNop || op == OpSys:
		in.Imm = int32(rng.Intn(1 << 16))
	case op == OpMovhi:
		in.RD, in.Imm = reg(), int32(rng.Intn(1<<16))
	case IsLoad(op):
		in.RD, in.RA, in.Imm = reg(), reg(), simm16()
	case IsStore(op):
		in.RA, in.RB, in.Imm = reg(), reg(), simm16()
	case op == OpSlli || op == OpSrli || op == OpSrai:
		in.RD, in.RA, in.Imm = reg(), reg(), int32(rng.Intn(32))
	case op == OpAndi || op == OpOri:
		in.RD, in.RA, in.Imm = reg(), reg(), int32(rng.Intn(1<<16))
	case op == OpAddi || op == OpMuli || op == OpXori:
		in.RD, in.RA, in.Imm = reg(), reg(), simm16()
	case op == OpSfeqi || op == OpSfnei || op == OpSfgtui ||
		op == OpSfltui || op == OpSfgtsi || op == OpSfltsi:
		in.RA, in.Imm = reg(), simm16()
	case IsCompare(op):
		in.RA, in.RB = reg(), reg()
	default: // R-type ALU
		in.RD, in.RA, in.RB = reg(), reg(), reg()
	}
	return in
}

func TestEncodeDecodeRoundTripAllOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, op := range AllOps() {
		if op == OpInvalid {
			continue
		}
		for i := 0; i < 200; i++ {
			in := sampleInstr(op, rng)
			w, err := Encode(in)
			if err != nil {
				t.Fatalf("%v: encode %+v: %v", op, in, err)
			}
			got := Decode(w)
			if got != in {
				t.Fatalf("%v round-trip: encoded %+v decoded %+v (word %08x)", op, in, got, w)
			}
		}
	}
}

func TestDecodeInvalid(t *testing.T) {
	// Primary opcode 0x3F is unassigned.
	if got := Decode(0xFFFFFFFF); got.Op != OpInvalid {
		t.Errorf("decode of garbage = %v, want invalid", got.Op)
	}
	// R-type with unknown sub-opcode.
	if got := Decode(0x38<<26 | 0xF); got.Op != OpInvalid {
		t.Errorf("bad rtype sub-op decoded to %v", got.Op)
	}
	// Compare with unknown code.
	if got := Decode(0x39<<26 | 0x1F<<21); got.Op != OpInvalid {
		t.Errorf("bad sf code decoded to %v", got.Op)
	}
}

func TestEncodeShiftRange(t *testing.T) {
	if _, err := Encode(Instr{Op: OpSlli, RD: 1, RA: 2, Imm: 32}); err == nil {
		t.Errorf("shift amount 32 must fail to encode")
	}
	if _, err := Encode(Instr{Op: OpSrai, RD: 1, RA: 2, Imm: -1}); err == nil {
		t.Errorf("negative shift must fail to encode")
	}
}

func TestClassPartitions(t *testing.T) {
	// Every op belongs to exactly one coherent class, and the ALU
	// predicate agrees with the class partition.
	for _, op := range AllOps() {
		if op == OpInvalid {
			continue
		}
		c := ClassOf(op)
		alu := c == ClassAdder || c == ClassSubber || c == ClassMul ||
			c == ClassLogic || c == ClassShift || c == ClassCompare
		if IsALU(op) != alu {
			t.Errorf("%v: IsALU=%v inconsistent with class %v", op, IsALU(op), c)
		}
		if IsLoad(op) && IsStore(op) {
			t.Errorf("%v cannot be both load and store", op)
		}
		if (IsLoad(op) || IsStore(op)) && c != ClassMem {
			t.Errorf("%v: memory op with class %v", op, c)
		}
	}
}

func TestWritesRD(t *testing.T) {
	cases := map[Op]bool{
		OpAdd: true, OpAddi: true, OpMul: true, OpMovhi: true, OpLwz: true,
		OpSw: false, OpSfeq: false, OpBf: false, OpJ: false, OpNop: false,
		OpSys: false, OpJr: false,
	}
	for op, want := range cases {
		if got := WritesRD(op); got != want {
			t.Errorf("WritesRD(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestSignExtension(t *testing.T) {
	in := Instr{Op: OpAddi, RD: 1, RA: 2, Imm: -1}
	w, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := Decode(w); got.Imm != -1 {
		t.Errorf("addi imm -1 decoded to %d", got.Imm)
	}
	in = Instr{Op: OpSw, RA: 3, RB: 4, Imm: -4}
	w, err = Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := Decode(w); got.Imm != -4 || got.RA != 3 || got.RB != 4 {
		t.Errorf("sw -4(r3),r4 decoded to %+v", got)
	}
	in = Instr{Op: OpJ, Imm: -1000}
	w, err = Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := Decode(w); got.Imm != -1000 {
		t.Errorf("j -1000 decoded to %d", got.Imm)
	}
}

// Property: Decode never panics and always yields either OpInvalid or an
// instruction that re-encodes to a word that decodes to the same thing
// (encode/decode is idempotent on the decoded form).
func TestDecodeTotalProperty(t *testing.T) {
	f := func(w uint32) bool {
		in := Decode(w)
		if in.Op == OpInvalid {
			return true
		}
		w2, err := Encode(in)
		if err != nil {
			return false
		}
		return Decode(w2) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	if OpAdd.String() != "l.add" {
		t.Errorf("OpAdd.String() = %q", OpAdd.String())
	}
	if OpSfgtsi.String() != "l.sfgtsi" {
		t.Errorf("OpSfgtsi.String() = %q", OpSfgtsi.String())
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpAdd, RD: 3, RA: 4, RB: 5}, "l.add r3,r4,r5"},
		{Instr{Op: OpLwz, RD: 3, RA: 4, Imm: 8}, "l.lwz r3,8(r4)"},
		{Instr{Op: OpSw, RA: 4, RB: 5, Imm: -4}, "l.sw -4(r4),r5"},
		{Instr{Op: OpSfgts, RA: 1, RB: 2}, "l.sfgts r1,r2"},
		{Instr{Op: OpSfgtsi, RA: 1, Imm: 10}, "l.sfgtsi r1,10"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
