// Chaos integration for the retrying client: requests travel through a
// loadgen.FaultProxy that drops connections and injects 503s in front
// of a real manager, and the client must still converge — with retried
// submissions landing on one job (server-side dedup makes the retry
// idempotent) and every reader seeing byte-identical result bytes.
// This lives in an external test package because loadgen imports
// client.
package client_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dta"
	"repro/internal/loadgen"
	"repro/internal/mc"
	"repro/internal/server"
)

type instantBackend struct{}

func (instantBackend) Run(ctx context.Context, spec server.JobSpec, onProgress func(mc.Progress)) ([]mc.CellResult, error) {
	onProgress(mc.Progress{DoneTrials: spec.Trials, TotalTrials: spec.Trials, DonePoints: 1, TotalPoints: 1})
	return nil, nil
}

func TestRetryThroughFaultProxy(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.DTA = dta.Config{Cycles: 768, Seed: 5}
	m := server.NewManager(server.Options{System: core.New(cfg), Backend: instantBackend{}})
	defer m.Shutdown(context.Background())
	origin := httptest.NewServer(server.Handler(m))
	defer origin.Close()

	proxy, err := loadgen.NewFaultProxy(origin.URL, loadgen.Faults{DropProb: 0.25, ErrProb: 0.2}, 99)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(proxy)
	defer front.Close()

	spec := map[string]any{
		"benches": []string{"median"}, "freqs": []float64{700},
		"trials": 2, "seed": int64(1234),
	}

	// Several clients race the same spec through the faulty hop; each
	// retries independently. All surviving submissions must name one job.
	const clients = 4
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := client.New(client.Config{
				Base: front.URL, MaxAttempts: 12,
				BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond,
				Seed: int64(i) + 1,
			})
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			sr, err := c.Submit(ctx, spec)
			if err != nil {
				t.Errorf("client %d never converged: %v", i, err)
				return
			}
			ids[i] = sr.ID
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("retried submissions landed on different jobs: %v", ids)
		}
	}
	if ids[0] == "" {
		t.Fatal("no submission survived the proxy")
	}

	// The server must have executed exactly one run despite every replay.
	waiter := client.New(client.Config{
		Base: front.URL, MaxAttempts: 12,
		BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Seed: 77,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := waiter.Wait(ctx, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("job state = %s (%s)", st.State, st.Error)
	}
	if got := m.Stats(); got.Executed != 1 {
		t.Errorf("replayed submissions executed %d runs, want 1", got.Executed)
	}

	// Byte-identical results through the faulty hop: the proxy never
	// touches bodies, so two independent fetches match exactly.
	var a, b bytes.Buffer
	if err := waiter.Result(ctx, ids[0], "json", &a); err != nil {
		t.Fatal(err)
	}
	if err := waiter.Result(ctx, ids[0], "json", &b); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("result bytes differ across retried fetches (%d vs %d bytes)", a.Len(), b.Len())
	}

	// The faults were real: the proxy actually dropped and errored.
	dropped, errored, passed := proxy.Counts()
	if dropped == 0 || errored == 0 || passed == 0 {
		t.Errorf("fault proxy counts dropped=%d errored=%d passed=%d — chaos did not engage", dropped, errored, passed)
	}
}
