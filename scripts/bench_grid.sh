#!/usr/bin/env bash
# Seeds the perf trajectory: runs the golden-trace replay benchmarks
# (BenchmarkPointReplay vs BenchmarkPointFull) and the artifact-store
# grid benchmark (BenchmarkGridWarmVsCold) and writes the results as
# BENCH_grid.json at the repo root, so the cold/warm and replay/full
# ratios are tracked across PRs.
#
#   ./scripts/bench_grid.sh            # default -benchtime 3x
#   BENCHTIME=10x ./scripts/bench_grid.sh
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-3x}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
  -bench 'BenchmarkPointReplay$|BenchmarkPointFull$|BenchmarkGridWarmVsCold' \
  -benchtime "$benchtime" -count 1 . | tee "$raw"

awk -v benchtime="$benchtime" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    lines[n++] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", name, $2, $3)
  }
  END {
    print "{"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    print "  \"results\": ["
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n - 1 ? "," : "")
    print "  ]"
    print "}"
  }
' "$raw" > BENCH_grid.json

echo "wrote BENCH_grid.json"
