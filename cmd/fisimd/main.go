// Command fisimd is the batch-simulation daemon: a long-running HTTP
// service that accepts experiment-grid jobs (the same grids cmd/sweep
// runs one-shot), executes them asynchronously on the shared mc worker
// pool, deduplicates identical requests by content fingerprint, and
// streams progress over SSE. One core.System serves every job, so
// model, golden-trace and hazard caches — and, with -cache-dir, the
// persistent artifact store — amortize across the daemon's lifetime:
// the first job of a benchmark pays characterization, every later job
// warm-starts, and a resubmitted completed grid answers from cached
// cells in milliseconds. Result points carry the per-trial
// application-quality distribution (QualityMean/P50/P99 + a Wilson
// interval) alongside the boolean verdict; grid-cell checkpoint keys
// carry a quality class, so cells cached by a pre-quality daemon are
// recomputed rather than served with zeroed quality fields.
//
// Multi-tenant admission control (see docs/API.md "Admission control"):
// clients are identified by X-API-Key (or remote address), rate-limited
// and quota-bounded per the -tenants table (or the -rate/-burst/
// -max-active defaults), and scheduled through two bounded priority
// lanes — interactive ahead of batch under a weighted round-robin, with
// overload shed as 429 + Retry-After instead of a hard queue-full.
//
// Distributed execution (see DESIGN.md "Distributed execution"): with
// -worker the daemon serves the cluster worker protocol instead of the
// public API, and with -workers=URL,... it becomes a coordinator — jobs
// are planned locally and their cells executed on the worker set
// through work-stealing leases, with results bit-identical to the
// in-process backend for every cluster shape.
//
//	fisimd -addr :8023 -cache-dir /var/cache/fisim
//	fisimd -addr :8023 -parallel 2 -queue 128 -dta 4096
//	fisimd -addr :8023 -rate 5 -burst 10 -max-active 8 -tenants tenants.json
//	fisimd -addr :9101 -worker -cache-dir /var/cache/fisim-w1
//	fisimd -addr :8023 -workers http://localhost:9101,http://localhost:9102
//
// See docs/API.md for the HTTP API and cmd/fisimctl for the client.
// SIGINT/SIGTERM drain gracefully: running and queued jobs finish
// (bounded by -drain-timeout), blocked long-polls and SSE streams are
// released immediately, then the listener closes.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("fisimd: ")
	addr := flag.String("addr", ":8023", "listen address")
	cacheDir := flag.String("cache-dir", "", "artifact cache directory (characterizations, traces, hazards, grid cells)")
	dtaCycles := flag.Int("dta", 8192, "DTA characterization cycles")
	trialWorkers := flag.Int("trial-workers", 0, "mc trial-pool goroutines per job (0 = NumCPU)")
	workerMode := flag.Bool("worker", false, "serve the cluster worker protocol instead of the public API")
	workerURLs := flag.String("workers", "", "comma-separated worker base URLs; jobs execute on this cluster instead of in-process")
	leaseCells := flag.Int("lease-cells", 4, "cluster mode: cells per lease")
	leaseTimeout := flag.Duration("lease-timeout", 5*time.Minute, "cluster mode: per-lease deadline before reassignment")
	cellDelay := flag.Duration("cell-delay", 0, "worker mode: emulated per-cell service latency (benchmarks only)")
	parallel := flag.Int("parallel", 1, "jobs executed concurrently")
	queueCap := flag.Int("queue", 64, "bounded job queue capacity (across lanes)")
	batchCap := flag.Int("batch-queue", 0, "batch lane queue bound (0 = -queue)")
	interactiveCap := flag.Int("interactive-queue", 0, "interactive lane queue bound (0 = -queue)")
	interactiveWeight := flag.Int("interactive-weight", 4, "interactive dequeues per batch dequeue under load")
	keepJobs := flag.Int("keep", 256, "terminal jobs retained in memory")
	rate := flag.Float64("rate", 0, "default per-client submission rate limit, req/s (0 = unlimited)")
	burst := flag.Int("burst", 0, "default per-client token-bucket burst (0 = rate, min 1)")
	maxActive := flag.Int("max-active", 0, "default per-client active-job quota (0 = unlimited)")
	tenantsFile := flag.String("tenants", "", "JSON tenants table overriding the defaults per client (see docs/API.md)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "graceful drain bound on shutdown")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.DTA.Cycles = *dtaCycles
	sys := core.New(cfg)

	var store *artifact.Store
	if *cacheDir != "" {
		var err error
		if store, err = artifact.Open(*cacheDir); err != nil {
			log.Fatal(err)
		}
		sys.AttachStore(store)
		log.Printf("artifact store: %s", store.Dir())
	}

	if *workerMode {
		if *workerURLs != "" {
			log.Fatal("-worker and -workers are mutually exclusive: a node is a worker or a coordinator, not both")
		}
		w := &cluster.Worker{System: sys, Store: store, Workers: *trialWorkers, CellDelay: *cellDelay, Logf: log.Printf}
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		log.Printf("worker listening on %s", *addr)
		if err := cluster.Serve(ctx, *addr, w); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		log.Printf("cache: %s", sys.CacheSummary())
		return
	}

	var backend server.Backend
	if *workerURLs != "" {
		urls := strings.Split(*workerURLs, ",")
		for i := range urls {
			urls[i] = strings.TrimSpace(urls[i])
		}
		coord, err := cluster.New(sys, store, urls, cluster.Config{
			LeaseCells:   *leaseCells,
			LeaseTimeout: *leaseTimeout,
			Logf:         log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		backend = coord
		log.Printf("cluster coordinator: %d workers, %d cells/lease", len(urls), *leaseCells)
	}

	tenants := server.TenantsConfig{
		Default: server.TenantConfig{Rate: *rate, Burst: *burst, MaxActive: *maxActive},
	}
	if *tenantsFile != "" {
		blob, err := os.ReadFile(*tenantsFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.Unmarshal(blob, &tenants); err != nil {
			log.Fatalf("tenants %s: %v", *tenantsFile, err)
		}
		log.Printf("tenants: default %+v, %d overrides", tenants.Default, len(tenants.Clients))
	}

	m := server.NewManager(server.Options{
		System:   sys,
		Store:    store,
		Backend:  backend,
		QueueCap: *queueCap,
		Lanes: map[string]server.LaneConfig{
			server.LaneInteractive: {Cap: *interactiveCap, Weight: *interactiveWeight},
			server.LaneBatch:       {Cap: *batchCap, Weight: 1},
		},
		Tenants:  tenants,
		Parallel: *parallel,
		Workers:  *trialWorkers,
		KeepJobs: *keepJobs,
	})
	srv := &http.Server{Addr: *addr, Handler: server.Handler(m)}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		s := <-sig
		log.Printf("%v: draining (bound %s)", s, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			log.Printf("drain: %v (remaining jobs cancelled)", err)
		}
		log.Printf("cache: %s", sys.CacheSummary())
		_ = srv.Shutdown(context.Background())
	}()

	log.Printf("listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
