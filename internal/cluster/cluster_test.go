// Differential and failure-mode tests of distributed execution. The
// load-bearing invariant everywhere: for the same spec and seed, every
// cluster shape — the in-process GridBackend, one worker, four workers,
// a worker killed mid-grid — must merge to byte-identical result
// documents, because each cell's Point depends only on (Seed, trial
// index) and the content-addressed keys make duplicates degenerate.

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dta"
	"repro/internal/mc"
	"repro/internal/report"
	"repro/internal/server"
)

var (
	sysOnce sync.Once
	sys     *core.System
)

// system returns a shared small-DTA stack; workers and coordinators in
// these tests share it (it is safe for concurrent use), which keeps the
// suite fast while still exercising the full lease/merge path.
func system() *core.System {
	sysOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.DTA = dta.Config{Cycles: 768, Seed: 5}
		sys = core.New(cfg)
	})
	return sys
}

// gridSpec is an 8-cell grid (2 sigmas x 4 freqs), small trials.
func gridSpec(seed int64) server.JobSpec {
	return server.JobSpec{
		Benches: []string{"median"},
		Models:  []string{"C"},
		Vdds:    []float64{0.7},
		Sigmas:  []float64{0, 0.010},
		Freqs:   []float64{690, 705, 720, 735},
		Trials:  6,
		Seed:    seed,
	}
}

// testClient is a fast retry template for coordinator→worker calls.
func testClient() client.Config {
	return client.Config{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 1}
}

// startWorkers serves n workers over the shared system and returns
// their base URLs; servers close with the test.
func startWorkers(t *testing.T, n int, cellDelay time.Duration) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		w := &Worker{System: system(), CellDelay: cellDelay}
		ts := httptest.NewServer(w.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// csvOf renders cell results exactly as GET /result?format=csv would.
func csvOf(t *testing.T, cells []mc.CellResult) []byte {
	t.Helper()
	doc := &report.Document{Series: report.FromCells(cells)}
	var buf bytes.Buffer
	if err := report.WriteCSV(&buf, doc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func runBackend(t *testing.T, b server.Backend, spec server.JobSpec) []mc.CellResult {
	t.Helper()
	canon, err := spec.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cells, err := b.Run(ctx, canon, nil)
	if err != nil {
		t.Fatalf("backend run: %v", err)
	}
	return cells
}

// TestClusterShapesBitIdentical is the differential anchor: the
// in-process backend, a 1-worker cluster, and a 4-worker cluster
// produce byte-identical CSV documents for the same spec and seed.
func TestClusterShapesBitIdentical(t *testing.T) {
	spec := gridSpec(11)
	want := csvOf(t, runBackend(t, server.GridBackend{System: system()}, spec))
	if len(bytes.TrimSpace(want)) == 0 {
		t.Fatal("reference CSV is empty")
	}

	for _, workers := range []int{1, 4} {
		urls := startWorkers(t, workers, 0)
		coord, err := New(system(), nil, urls, Config{LeaseCells: 2, Client: testClient()})
		if err != nil {
			t.Fatal(err)
		}
		got := csvOf(t, runBackend(t, coord, spec))
		if !bytes.Equal(got, want) {
			t.Errorf("%d-worker cluster CSV differs from in-process run:\n got: %s\nwant: %s", workers, got, want)
		}
		st := coord.ClusterStats()
		if st.CellsCompleted != 8 {
			t.Errorf("%d workers: CellsCompleted = %d, want 8", workers, st.CellsCompleted)
		}
		if st.WorkersLive != workers {
			t.Errorf("%d workers: WorkersLive = %d", workers, st.WorkersLive)
		}
	}
}

// TestCoordinatorResume pins coordinator-side checkpointing: a second
// run of the same spec on a coordinator with a store answers entirely
// from disk — no new leases — and still matches byte-for-byte.
func TestCoordinatorResume(t *testing.T) {
	store, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	urls := startWorkers(t, 2, 0)
	coord, err := New(system(), store, urls, Config{LeaseCells: 2, Client: testClient()})
	if err != nil {
		t.Fatal(err)
	}
	spec := gridSpec(12)
	cold := csvOf(t, runBackend(t, coord, spec))
	leases := coord.ClusterStats().Leases
	if leases == 0 {
		t.Fatal("cold run issued no leases")
	}

	warm := runBackend(t, coord, spec)
	for i, c := range warm {
		if !c.Cached {
			t.Errorf("warm cell %d not served from coordinator checkpoints", i)
		}
	}
	if got := coord.ClusterStats().Leases; got != leases {
		t.Errorf("warm run issued %d new leases, want 0", got-leases)
	}
	if got := csvOf(t, warm); !bytes.Equal(got, cold) {
		t.Errorf("warm CSV differs from cold:\n got: %s\nwant: %s", got, cold)
	}
}

// abortingWorker wraps a worker handler: the first lease stream is cut
// (connection abort) right after the first cell event reaches the wire,
// and every later lease is refused outright — the shape of a node dying
// mid-grid and staying down.
type abortingWorker struct {
	inner    http.Handler
	leases   atomic.Int32
	refusing atomic.Bool
}

func (a *abortingWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasSuffix(r.URL.Path, "/healthz") {
		a.inner.ServeHTTP(w, r)
		return
	}
	if a.refusing.Load() {
		http.Error(w, `{"error":"dying"}`, http.StatusServiceUnavailable)
		return
	}
	a.leases.Add(1)
	a.refusing.Store(true)
	a.inner.ServeHTTP(&abortAfterCell{ResponseWriter: w}, r)
}

// abortAfterCell panics the handler (aborting the connection) once a
// cell event has been flushed to the client.
type abortAfterCell struct {
	http.ResponseWriter
	sawCell bool
}

func (a *abortAfterCell) Write(p []byte) (int, error) {
	if a.sawCell {
		panic(http.ErrAbortHandler)
	}
	if bytes.Contains(p, []byte(`"event":"cell"`)) {
		a.sawCell = true // abort on the next write, after this event flushes
	}
	return a.ResponseWriter.Write(p)
}

func (a *abortAfterCell) Flush() {
	if f, ok := a.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestWorkerLossFailover kills a worker mid-grid: its cut lease is
// requeued, the dead node is retired after the dial retries run out,
// and the surviving worker finishes the job with results bit-identical
// to the single-node run.
func TestWorkerLossFailover(t *testing.T) {
	spec := gridSpec(13)
	want := csvOf(t, runBackend(t, server.GridBackend{System: system()}, spec))

	good := startWorkers(t, 1, 0)
	dying := &abortingWorker{inner: (&Worker{System: system()}).Handler()}
	ts := httptest.NewServer(dying)
	t.Cleanup(ts.Close)

	coord, err := New(system(), nil, []string{ts.URL, good[0]}, Config{LeaseCells: 4, Client: testClient()})
	if err != nil {
		t.Fatal(err)
	}
	got := csvOf(t, runBackend(t, coord, spec))
	if !bytes.Equal(got, want) {
		t.Errorf("post-failover CSV differs from single-node run:\n got: %s\nwant: %s", got, want)
	}
	st := coord.ClusterStats()
	if dying.leases.Load() == 0 {
		t.Fatal("dying worker never saw a lease; failover untested")
	}
	if st.LeaseFailures == 0 {
		t.Errorf("LeaseFailures = 0, want >= 1 after a cut stream")
	}
	if st.CellsReassigned == 0 {
		t.Errorf("CellsReassigned = 0, want >= 1 after a cut lease")
	}
	if st.WorkersLive != 1 {
		t.Errorf("WorkersLive = %d, want 1 after the node died", st.WorkersLive)
	}
	if st.CellsCompleted != 8 {
		t.Errorf("CellsCompleted = %d, want 8", st.CellsCompleted)
	}
}

// TestWorkStealing pins the tail-drain: one slow worker holds a big
// lease while a fast one empties the queue, so the fast worker must
// steal from the slow lease's unreported tail — and the duplicate
// completions the victim still produces are discarded harmlessly.
func TestWorkStealing(t *testing.T) {
	slowW := &Worker{System: system(), CellDelay: 150 * time.Millisecond}
	slow := httptest.NewServer(slowW.Handler())
	t.Cleanup(slow.Close)
	fast := startWorkers(t, 1, 0)

	spec := gridSpec(14)
	want := csvOf(t, runBackend(t, server.GridBackend{System: system()}, spec))

	// Lease batches of 4: the slow worker takes 4 cells at ~150ms each,
	// the fast worker drains the other 4 quickly and then steals from
	// the slow tail.
	coord, err := New(system(), nil, []string{slow.URL, fast[0]}, Config{LeaseCells: 4, Client: testClient()})
	if err != nil {
		t.Fatal(err)
	}
	got := csvOf(t, runBackend(t, coord, spec))
	if !bytes.Equal(got, want) {
		t.Errorf("post-steal CSV differs from single-node run:\n got: %s\nwant: %s", got, want)
	}
	st := coord.ClusterStats()
	if st.CellsStolen == 0 {
		t.Errorf("CellsStolen = 0, want >= 1 (fast worker should raid the slow lease)")
	}
	if st.CellsCompleted != 8 {
		t.Errorf("CellsCompleted = %d, want 8", st.CellsCompleted)
	}
}

// TestFingerprintMismatch pins the substrate handshake: a worker
// configured differently from the coordinator refuses every lease with
// 409, is retired, and the job fails instead of merging wrong numbers.
func TestFingerprintMismatch(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.DTA = dta.Config{Cycles: 1024, Seed: 5} // different substrate
	alien := httptest.NewServer((&Worker{System: core.New(cfg)}).Handler())
	t.Cleanup(alien.Close)

	coord, err := New(system(), nil, []string{alien.URL}, Config{Client: testClient()})
	if err != nil {
		t.Fatal(err)
	}
	canon, err := gridSpec(15).Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	_, err = coord.Run(ctx, canon, nil)
	if err == nil {
		t.Fatal("run on a mismatched worker succeeded; fingerprint handshake is not enforced")
	}
	if st := coord.ClusterStats(); st.WorkersLive != 0 {
		t.Errorf("WorkersLive = %d, want 0 after 409 refusals", st.WorkersLive)
	}
}

// TestProgressFanin checks the coordinator reports aggregate progress
// monotonically up to the full grid: the last emission covers all
// points and totals stay at the plan estimate.
func TestProgressFanin(t *testing.T) {
	urls := startWorkers(t, 2, 0)
	coord, err := New(system(), nil, urls, Config{LeaseCells: 2, Client: testClient()})
	if err != nil {
		t.Fatal(err)
	}
	canon, err := gridSpec(16).Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var last mc.Progress
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if _, err := coord.Run(ctx, canon, func(p mc.Progress) {
		mu.Lock()
		last = p
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if last.DonePoints != 8 || last.TotalPoints != 8 {
		t.Errorf("final progress %d/%d points, want 8/8", last.DonePoints, last.TotalPoints)
	}
	if last.DoneTrials != 48 || last.TotalTrials != 48 {
		t.Errorf("final progress %d/%d trials, want 48/48", last.DoneTrials, last.TotalTrials)
	}
}

// TestStatsExposesCluster drives the whole stack — manager on a
// coordinator backend, workers over HTTP — and checks /v1/stats gains
// the cluster section (the ClusterReporter seam) with live counters.
func TestStatsExposesCluster(t *testing.T) {
	urls := startWorkers(t, 2, 0)
	coord, err := New(system(), nil, urls, Config{LeaseCells: 2, Client: testClient()})
	if err != nil {
		t.Fatal(err)
	}
	m := server.NewManager(server.Options{System: system(), Backend: coord})
	defer m.Shutdown(context.Background())
	api := httptest.NewServer(server.Handler(m))
	t.Cleanup(api.Close)

	c := client.New(client.Config{Base: api.URL, Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	sr, err := c.Submit(ctx, gridSpec(17))
	if err != nil {
		t.Fatal(err)
	}
	if st, err := c.Wait(ctx, sr.ID); err != nil || st.State != "done" {
		t.Fatalf("wait: state=%v err=%v", st.State, err)
	}

	var buf bytes.Buffer
	if err := c.GetJSON(ctx, "/v1/stats", &buf); err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Lanes   []server.LaneStatus  `json:"lanes"`
		Cluster *server.ClusterStats `json:"cluster"`
	}
	if err := json.Unmarshal(buf.Bytes(), &stats); err != nil {
		t.Fatalf("stats decode: %v\n%s", err, buf.Bytes())
	}
	if stats.Cluster == nil {
		t.Fatalf("stats lack the cluster section:\n%s", buf.Bytes())
	}
	if stats.Cluster.WorkersKnown != 2 || stats.Cluster.WorkersLive != 2 {
		t.Errorf("workers known/live = %d/%d, want 2/2", stats.Cluster.WorkersKnown, stats.Cluster.WorkersLive)
	}
	if stats.Cluster.CellsCompleted != 8 {
		t.Errorf("CellsCompleted = %d, want 8", stats.Cluster.CellsCompleted)
	}
	if len(stats.Lanes) == 0 {
		t.Error("stats lack the per-lane scheduler snapshot")
	}
}

// TestClusterQualityFlows pins the per-trial quality distribution into
// the distributed path: cells computed on remote workers travel as JSON
// Points, and their quality summary must (a) be statistically
// equivalent across cluster shapes — identical, in fact, since trial
// RNG is schedule-independent — and (b) actually show degradation at an
// operating point above the failure cliff, proving the fields survive
// the wire rather than decoding as zeros.
func TestClusterQualityFlows(t *testing.T) {
	spec := server.JobSpec{
		Benches: []string{"median"},
		Models:  []string{"C"},
		Vdds:    []float64{0.7},
		Sigmas:  []float64{0.010},
		Freqs:   []float64{700, 860},
		Trials:  40,
		Seed:    23,
	}
	local := runBackend(t, server.GridBackend{System: system()}, spec)

	shapes := make(map[int][]mc.CellResult)
	for _, workers := range []int{1, 4} {
		urls := startWorkers(t, workers, 0)
		coord, err := New(system(), nil, urls, Config{LeaseCells: 1, Client: testClient()})
		if err != nil {
			t.Fatal(err)
		}
		shapes[workers] = runBackend(t, coord, spec)
	}

	for workers, cells := range shapes {
		if len(cells) != len(local) {
			t.Fatalf("%d workers: %d cells, want %d", workers, len(cells), len(local))
		}
		for i, c := range cells {
			if c.Point != local[i].Point {
				t.Errorf("%d workers: cell %d Point differs from in-process run:\nremote %+v\nlocal  %+v",
					workers, i, c.Point, local[i].Point)
			}
		}
	}

	// The clean cell is quality-perfect; the cell above the failure
	// point carries a real, degraded distribution (not wire-zeroed).
	for _, c := range shapes[4] {
		q := c.Point
		switch c.Model.FreqMHz {
		case 700:
			if q.QualityMean != 1 || q.QualityP99 != 1 {
				t.Errorf("clean cell quality not perfect: %+v", q)
			}
		case 860:
			if q.QualityMean <= 0 || q.QualityMean >= 1 {
				t.Errorf("degraded cell QualityMean = %v, want inside (0, 1)", q.QualityMean)
			}
			if q.QualityLo == 0 && q.QualityHi == 0 {
				t.Errorf("degraded cell lost its Wilson interval over the wire: %+v", q)
			}
		}
	}
}
