// Approximate-computing trade-off: reproduce the reasoning of the
// paper's Fig. 7 for the median kernel. The core keeps its nominal
// 707 MHz clock while the supply is scaled below 0.7 V; model C predicts
// the output-quality degradation and the power model translates the
// voltage reduction into savings.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/timing"
)

func main() {
	cfg := repro.DefaultConfig()
	cfg.DTA.Cycles = 2048
	sys := repro.NewSystem(cfg)
	median, err := repro.BenchmarkByName("median")
	if err != nil {
		log.Fatal(err)
	}
	fNom := sys.STALimitMHz(timing.VRef)
	pm := sys.Cfg.Power

	fmt.Printf("median @ fixed %.0f MHz, voltage over-scaling, sigma = 10 mV\n\n", fNom)
	fmt.Printf("%8s %10s %12s %10s\n", "Vdd[V]", "P/Pnom", "avg-rel-err", "finished")
	for v := 0.700; v >= 0.645; v -= 0.005 {
		spec := repro.Spec{
			System: sys,
			Bench:  median,
			Model:  repro.ModelSpec{Kind: "C", Vdd: v, Sigma: 0.010},
			Trials: 30,
			Seed:   3,
		}
		pt, err := repro.Run(spec, fNom)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.3f %10.3f %11.1f%% %9.1f%%\n",
			v, pm.Normalized(v, timing.VRef, fNom), pt.OutputErrAll, pt.FinishedPct)
		if pt.OutputErrAll > 99 {
			break
		}
	}
	fmt.Println("\nReading the frontier: every point trades a power reduction against")
	fmt.Println("an output-quality loss; the knee marks the margin that can be")
	fmt.Println("reclaimed before quality collapses (the paper's Fig. 7).")
}
