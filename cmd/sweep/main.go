// Command sweep runs benchmarks under fault models across a frequency
// range — and, with comma-separated axis values, across a full
// (benchmark × model × Vdd × sigma × frequency) experiment grid — and
// prints the four application metrics per point, including each
// series' point of first failure and its gain over the STA limit. The
// whole grid runs through the shared worker pool of the mc engine, with
// a progress/ETA line on stderr.
//
// With -cache-dir, DTA characterizations, golden traces and completed
// grid cells persist across runs: a warm second run skips straight to
// the numbers, and -resume additionally reuses completed cells so an
// interrupted grid continues where it stopped.
//
// Every point carries the per-trial application-quality distribution
// (mean/P50/P99 + Wilson-style interval) alongside the boolean
// verdict, and -pareto additionally scores each grid cell under the
// error-mitigation models (baseline, razor detect-and-replay, coded
// datapath) and writes the energy-vs-quality Pareto document — the
// non-dominated operating points per (benchmark × model × Vdd ×
// sigma) — to the given file in the -format encoding.
//
//	sweep -bench kmeans -model C -vdd 0.7 -sigma 0.010 -lo 680 -hi 950 -step 10
//	sweep -bench median,kmeans -model B+,C -sigma 0,0.010,0.025 -cache-dir .fisim-cache -resume
//	sweep -bench median -model C -format json -o sweep.json
//	sweep -bench kmeans -model C -sigma 0.010 -format csv -pareto pareto.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/mitigate"
	"repro/internal/progress"
	"repro/internal/report"
)

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseFloats(flagName, s string) []float64 {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			log.Fatalf("-%s: %v", flagName, err)
		}
		out = append(out, v)
	}
	return out
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	names := flag.String("bench", "median", "benchmark name(s), comma-separated")
	models := flag.String("model", "C", "fault model(s): A, B, B+, C (comma-separated)")
	vdds := flag.String("vdd", "0.7", "supply voltage(s) in V (comma-separated)")
	sigmas := flag.String("sigma", "0", "supply noise sigma(s) in V (comma-separated)")
	lo := flag.Float64("lo", 650, "sweep start in MHz")
	hi := flag.Float64("hi", 1100, "sweep end in MHz")
	step := flag.Float64("step", 25, "sweep step in MHz")
	trials := flag.Int("trials", 100, "Monte-Carlo trials per point (fixed mode)")
	trialsMin := flag.Int("trials-min", 0, "adaptive mode: first batch size (with -trials-max)")
	trialsMax := flag.Int("trials-max", 0, "adaptive mode: trial budget per point (0 = fixed -trials)")
	seed := flag.Int64("seed", 1, "random seed")
	mode := flag.String("mode", "auto", "trial path: auto (batched first-fault sampling), first-fault (per-trial sampling), scan (exact golden-trace replay), full (per-trial ISS)")
	workers := flag.Int("workers", 0, "worker goroutines (0 = NumCPU)")
	dtaCycles := flag.Int("dta", 8192, "DTA characterization cycles")
	cacheDir := flag.String("cache-dir", "", "artifact cache directory (characterizations, golden traces, grid cells)")
	resume := flag.Bool("resume", false, "reuse completed grid cells from -cache-dir")
	format := flag.String("format", "", "machine-readable output: json or csv (default: text tables)")
	outFile := flag.String("o", "", "write -format output to this file (default stdout)")
	paretoFile := flag.String("pareto", "", "also write the energy-vs-quality Pareto report (mitigation scenarios per cell) to this file, in the -format encoding (default csv)")
	quiet := flag.Bool("q", false, "suppress the stderr progress line")
	flag.Parse()

	if *trialsMin > 0 && *trialsMax <= 0 {
		log.Fatal("-trials-min has no effect without -trials-max (adaptive mode)")
	}
	trialMode, err := mc.ParseMode(*mode)
	if err != nil {
		log.Fatalf("-mode: %v", err)
	}
	if *resume && *cacheDir == "" {
		log.Fatal("-resume requires -cache-dir")
	}
	var benches []*bench.Benchmark
	for _, n := range splitList(*names) {
		b, err := bench.ByName(n)
		if err != nil {
			log.Fatal(err)
		}
		benches = append(benches, b)
	}
	cfg := core.DefaultConfig()
	cfg.DTA.Cycles = *dtaCycles
	sys := core.New(cfg)

	var store *artifact.Store
	if *cacheDir != "" {
		var err error
		if store, err = artifact.Open(*cacheDir); err != nil {
			log.Fatal(err)
		}
		sys.AttachStore(store)
	}

	var rep *progress.Reporter
	if !*quiet {
		rep = progress.New(os.Stderr, "sweep")
	}
	freqs := mc.FreqRange(*lo, *hi, *step)
	grid := mc.Grid{
		Spec: mc.Spec{
			System:    sys,
			Trials:    *trials,
			TrialsMin: *trialsMin,
			TrialsMax: *trialsMax,
			Seed:      *seed,
			Mode:      trialMode,
			Workers:   *workers,
			Progress: func(p mc.Progress) {
				rep.Update(p.DoneTrials, p.TotalTrials)
			},
		},
		Axes: mc.Axes{
			Benches: benches,
			Kinds:   splitList(*models),
			Vdds:    parseFloats("vdd", *vdds),
			Sigmas:  parseFloats("sigma", *sigmas),
			Freqs:   freqs,
		},
		Store:  store,
		Resume: *resume,
	}
	cells, err := grid.Run()
	rep.Finish()
	if store != nil {
		fmt.Fprintf(os.Stderr, "sweep: cache %s: %s\n", *cacheDir, sys.CacheSummary())
	}
	series := report.FromCells(cells)

	if *format != "" {
		doc := &report.Document{
			Meta: report.Meta{
				Tool:  "sweep",
				Seed:  *seed,
				Cells: len(cells),
				Axes: fmt.Sprintf("bench=%s model=%s vdd=%s sigma=%s freq=%g..%g/%g",
					*names, *models, *vdds, *sigmas, *lo, *hi, *step),
				Cache: *cacheDir,
			},
			Series: series,
		}
		if werr := report.WriteFile(*outFile, os.Stdout, *format, doc); werr != nil {
			log.Fatal(werr)
		}
	} else {
		printSeries(sys, series, len(series) > 1, err != nil)
	}
	if *paretoFile != "" {
		rs := mitigate.Evaluate(sys, grid.Spec.InputSeed, cells, mitigate.Options{})
		pdoc := report.Pareto(report.Meta{
			Tool: "sweep", Seed: *seed, Cells: len(cells), Cache: *cacheDir,
		}, rs)
		pfmt := *format
		if pfmt == "" {
			pfmt = "csv"
		}
		if werr := report.WriteParetoFile(*paretoFile, os.Stdout, pfmt, pdoc); werr != nil {
			log.Fatal(werr)
		}
	}
	if err != nil {
		// A grid crossing an invalid operating point still reports the
		// cells of the valid prefix before failing.
		log.Fatal(err)
	}
}

// printSeries renders each series as the classic sweep table with its
// PoFF/STA summary; series headers appear once the grid has more than
// one series. When the grid ended in an error, the last series is a
// truncated prefix, so its PoFF/no-failure verdict is withheld.
func printSeries(sys *core.System, series []report.Series, headers, truncated bool) {
	for i, s := range series {
		if headers {
			fmt.Printf("== %s ==\n", s.Label)
		}
		metricName := "output-err"
		if b, err := bench.ByName(s.Bench); err == nil {
			metricName = b.MetricName
		}
		if len(s.Points) > 0 {
			fmt.Printf("%8s %7s %9s %9s %12s %14s\n",
				"f[MHz]", "trials", "finished", "correct", "FI/kCycle", metricName)
			for _, p := range s.Points {
				fmt.Printf("%8.1f %7d %8.1f%% %8.1f%% %12.4f %14.6g\n",
					p.FreqMHz, p.Trials, p.FinishedPct, p.CorrectPct, p.FIRate, p.OutputErr)
			}
		}
		if truncated && i == len(series)-1 {
			continue
		}
		sta := sys.STALimitMHz(s.Vdd)
		if poff, ok := mc.PoFF(s.Points); ok {
			fmt.Printf("PoFF %.1f MHz, STA limit %.1f MHz, gain %.1f%%\n",
				poff, sta, mc.GainOverSTA(poff, sta))
		} else {
			fmt.Printf("no failure in range (STA limit %.1f MHz)\n", sta)
		}
	}
}
