package fi

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/timing"
)

// hazardModels builds one instance of every model kind at an operating
// point inside model C's transition region, for the given semantics and
// (for C) sampling mode.
func hazardModels(t *testing.T, sem Semantics, sampling Sampling) map[string]HazardModel {
	t.Helper()
	alu, ch := fixture()
	mc, err := NewModelC(ch, ModelCConfig{
		Vdd: 0.7, FreqMHz: 860, Sigma: 0.010,
		Sem: sem, Sampling: sampling,
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]HazardModel{
		"A":    &ModelA{Prob: 3e-4, Sem: sem},
		"B":    NewModelB(alu, timing.DefaultVddDelay(), 0.7, 709, 0, sem),
		"B+":   NewModelB(alu, timing.DefaultVddDelay(), 0.7, 700, 0.010, sem),
		"C":    mc,
		"none": NullModel{},
	}
}

// hazardQueries synthesizes a query stream cycling through a mix of ALU
// ops (arithmetic, logic, shift, compare) so every characterization
// table and the flag endpoint participate.
func hazardQueries(n int) []TraceQuery {
	ops := []isa.Op{
		isa.OpAdd, isa.OpMul, isa.OpXor, isa.OpSll,
		isa.OpSfeq, isa.OpAddi, isa.OpSub, isa.OpSfgtu,
	}
	rng := stats.NewRand(17)
	qs := make([]TraceQuery, n)
	for i := range qs {
		qs[i] = TraceQuery{
			Op:     ops[i%len(ops)],
			Result: rng.Uint32(), Prev: rng.Uint32(),
			Flag: rng.Intn(2) == 0, PrevFlag: rng.Intn(2) == 0,
		}
	}
	return qs
}

// TestHazardPrefixMatchesBruteForceProduct is the hazard-math exactness
// property: for every model kind and both semantics, the prefix
// log-survival array must equal the brute-force product of per-query
// (1 - MarginalProb) to 1e-12.
func TestHazardPrefixMatchesBruteForceProduct(t *testing.T) {
	qs := hazardQueries(3000)
	for _, sem := range []Semantics{FlipBit, StaleCapture} {
		for _, sampling := range []Sampling{Independent, Joint} {
			for name, m := range hazardModels(t, sem, sampling) {
				h := BuildHazard(m, qs)
				if h.Queries() != len(qs) {
					t.Fatalf("%s: hazard over %d queries, want %d", name, h.Queries(), len(qs))
				}
				if h.LogSurv[0] != 0 {
					t.Errorf("%s: LogSurv[0] = %v, want 0", name, h.LogSurv[0])
				}
				prod := 1.0
				for i, q := range qs {
					p := m.MarginalProb(q.Op)
					if p != h.PerOp[q.Op] {
						t.Fatalf("%s/%v: PerOp[%v] = %v, MarginalProb = %v",
							name, sem, q.Op, h.PerOp[q.Op], p)
					}
					prod *= 1 - p
					got := math.Exp(h.LogSurv[i+1])
					if math.Abs(got-prod) > 1e-12 {
						t.Fatalf("%s/%v/%v: survival after %d queries %v, brute-force product %v",
							name, sem, sampling, i+1, got, prod)
					}
				}
			}
		}
	}
}

// TestMarginalProbMatchesInjectFrequency pins the marginalization
// against the ground truth: the empirical injection frequency of the
// per-cycle Inject path. Fixed seeds keep the check deterministic; the
// tolerance is five binomial sigmas plus the documented integration
// error.
func TestMarginalProbMatchesInjectFrequency(t *testing.T) {
	const trials = 300_000
	ops := []isa.Op{isa.OpAdd, isa.OpMul, isa.OpSfeq}
	for _, sampling := range []Sampling{Independent, Joint} {
		for name, m := range hazardModels(t, FlipBit, sampling) {
			rng := stats.NewRand(23)
			inj := m.NewTrial(rng)
			for _, op := range ops {
				p := m.MarginalProb(op)
				if p < 0 || p > 1 {
					t.Fatalf("%s: MarginalProb(%v) = %v", name, op, p)
				}
				hits := 0
				for i := 0; i < trials; i++ {
					if _, _, flips := inj.Inject(op, 0xdeadbeef, 0x01234567, true, false); flips > 0 {
						hits++
					}
				}
				got := float64(hits) / trials
				tol := 5*math.Sqrt(math.Max(p*(1-p), 1e-9)/trials) + 2e-5
				if math.Abs(got-p) > tol {
					t.Errorf("%s/%v op %v: empirical injection rate %v, marginal %v (tol %v)",
						name, sampling, op, got, p, tol)
				}
			}
		}
	}
}

// TestSampleAtAlwaysFlips pins SampleAt's contract: conditioned on
// injection, every draw flips at least one countable endpoint, and its
// mean flip count agrees with Inject's conditional mean (same law).
func TestSampleAtAlwaysFlips(t *testing.T) {
	const draws = 50_000
	ops := []isa.Op{isa.OpAdd, isa.OpMul, isa.OpSfeq}
	for _, sem := range []Semantics{FlipBit, StaleCapture} {
		for _, sampling := range []Sampling{Independent, Joint} {
			for name, m := range hazardModels(t, sem, sampling) {
				for _, op := range ops {
					if m.MarginalProb(op) == 0 {
						continue // SampleAt is unreachable for this op
					}
					rng := stats.NewRand(31)
					var sampleFlips float64
					for i := 0; i < draws; i++ {
						_, _, flips := m.SampleAt(rng, op, 0xdeadbeef, 0x01234567, true, false)
						if flips < 1 {
							t.Fatalf("%s/%v/%v op %v: SampleAt flipped %d endpoints",
								name, sem, sampling, op, flips)
						}
						sampleFlips += float64(flips)
					}
					sampleFlips /= draws
					// Conditional mean of the per-cycle reference path.
					rng = stats.NewRand(37)
					inj := m.NewTrial(rng)
					var injFlips float64
					injHits := 0
					for i := 0; i < 600_000 && injHits < draws; i++ {
						if _, _, flips := inj.Inject(op, 0xdeadbeef, 0x01234567, true, false); flips > 0 {
							injFlips += float64(flips)
							injHits++
						}
					}
					if injHits < 1000 {
						continue // too rare to compare means meaningfully
					}
					injFlips /= float64(injHits)
					if diff := math.Abs(sampleFlips - injFlips); diff > 0.12*math.Max(injFlips, 1) {
						t.Errorf("%s/%v/%v op %v: conditional mean flips %v (SampleAt) vs %v (Inject, n=%d)",
							name, sem, sampling, op, sampleFlips, injFlips, injHits)
					}
				}
			}
		}
	}
}

// TestSampleIndexDistribution pins the inversion sampler against the
// analytic first-fault law on a synthetic hazard model: the fault-free
// fraction must match Survival and the empirical first-fault index
// frequencies their exact probabilities.
func TestSampleIndexDistribution(t *testing.T) {
	qs := hazardQueries(64)
	m := &ModelA{Prob: 4e-4, Sem: FlipBit} // per-query hazard ~1.3%
	h := BuildHazard(m, qs)
	const trials = 400_000
	rng := stats.NewRand(41)
	counts := make([]int, len(qs))
	free := 0
	for i := 0; i < trials; i++ {
		idx, ok := h.SampleIndex(rng)
		if !ok {
			free++
			continue
		}
		counts[idx]++
	}
	s := h.Survival()
	if got := float64(free) / trials; math.Abs(got-s) > 5*math.Sqrt(s*(1-s)/trials) {
		t.Errorf("fault-free fraction %v, survival %v", got, s)
	}
	for i := range qs {
		exact := math.Exp(h.LogSurv[i]) - math.Exp(h.LogSurv[i+1])
		got := float64(counts[i]) / trials
		if math.Abs(got-exact) > 5*math.Sqrt(exact*(1-exact)/trials)+1e-6 {
			t.Errorf("P(first fault at %d) = %v, want %v", i, got, exact)
		}
	}
}

// TestHazardDeterministicInjection pins the hazard-1 edge: model B
// above its STA limit injects on every query, so the log-survival hits
// -Inf and every sampled trial faults at query 0.
func TestHazardDeterministicInjection(t *testing.T) {
	alu, _ := fixture()
	m := NewModelB(alu, timing.DefaultVddDelay(), 0.7, 740, 0, FlipBit)
	if p := m.MarginalProb(isa.OpAdd); p != 1 {
		t.Fatalf("model B far above STA: MarginalProb = %v, want 1", p)
	}
	qs := hazardQueries(16)
	h := BuildHazard(m, qs)
	if !math.IsInf(h.LogSurv[len(h.LogSurv)-1], -1) || h.Survival() != 0 {
		t.Errorf("survival = %v, want 0", h.Survival())
	}
	rng := stats.NewRand(43)
	for i := 0; i < 1000; i++ {
		idx, ok := h.SampleIndex(rng)
		if !ok || idx != 0 {
			t.Fatalf("deterministic injection sampled (%d, %v), want (0, true)", idx, ok)
		}
	}
	fork, ok := FirstFault(m, h, rng, qs)
	if !ok || fork.Query != 0 || fork.Flipped < 1 {
		t.Errorf("FirstFault = %+v, %v", fork, ok)
	}
}

// TestModelCRejectionLoopBounded is the regression for the bounded
// rejection loop: a degenerate table whose pNone promises injection
// while every pBit is vanishingly small must still terminate (via the
// retry-budget fallback) and flip the highest-probability endpoint.
func TestModelCRejectionLoopBounded(t *testing.T) {
	tbl := &opTable{
		nEP:    circuit.Width,
		maxPs:  4000,
		stepPs: 1,
		pNone:  make([]float64, 4002),
		pBit:   make([][]float64, circuit.Width),
		active: []int{3, 7},
	}
	for e := range tbl.pBit {
		tbl.pBit[e] = make([]float64, 4002)
	}
	for i := range tbl.pNone {
		// pNone = 0 claims certain injection; the per-endpoint draws
		// below can essentially never realize one.
		tbl.pNone[i] = 0
		tbl.pBit[3][i] = 1e-300
		tbl.pBit[7][i] = 2e-300
	}
	m := &ModelC{
		sem:      FlipBit,
		sampling: Independent,
		periodPs: circuit.PeriodPs(700),
		noise:    newNoiseScale(timing.DefaultVddDelay(), 0.7, timing.NewNoise(0)),
	}
	m.tables[isa.OpAdd] = tbl
	inj := m.NewTrial(stats.NewRand(47))
	out, _, flips := inj.Inject(isa.OpAdd, 0xffffffff, 0, false, false)
	if flips != 1 {
		t.Fatalf("degenerate table flipped %d endpoints, want the forced fallback (1)", flips)
	}
	if out != 0xffffffff^(1<<7) {
		t.Errorf("fallback did not force the highest-probability endpoint: out %08x", out)
	}
}

// TestFirstFaultBatchBitIdentical is the batched drawer's contract: for
// every model kind and both semantics, FirstFaultBatch must reproduce
// per-trial FirstFault exactly — same clean/faulting split, same forks,
// and the same RNG stream position afterwards (pinned by comparing the
// next draws of both streams).
func TestFirstFaultBatchBitIdentical(t *testing.T) {
	const master, trials = 911, 400
	qs := hazardQueries(3000)
	for _, sem := range []Semantics{FlipBit, StaleCapture} {
		for name, m := range hazardModels(t, sem, Independent) {
			h := BuildHazard(m, qs)

			// Reference: independent per-trial calls.
			type ref struct {
				fork Fork
				ok   bool
				next [3]uint64
			}
			refs := make([]ref, trials)
			for ti := range refs {
				rng := stats.NewTrialRand(stats.SubSeed(master, ti))
				f, ok := FirstFault(m, h, rng, qs)
				refs[ti] = ref{fork: f, ok: ok}
				for j := range refs[ti].next {
					refs[ti].next[j] = rng.Uint64()
				}
			}

			// Batched over fresh streams with the same keying.
			rngs := make([]*rand.Rand, trials)
			for ti := range rngs {
				rngs[ti] = stats.NewTrialRand(stats.SubSeed(master, ti))
			}
			batch := FirstFaultBatch(m, h, rngs, qs)

			got := make(map[int]Fork, len(batch))
			for i, bf := range batch {
				if i > 0 {
					prev := batch[i-1]
					if bf.Fork.Query < prev.Fork.Query ||
						(bf.Fork.Query == prev.Fork.Query && bf.Trial <= prev.Trial) {
						t.Fatalf("%s/%v: batch not sorted by (query, trial) at %d", name, sem, i)
					}
				}
				got[bf.Trial] = bf.Fork
			}
			for ti, r := range refs {
				bf, faulted := got[ti]
				if faulted != r.ok {
					t.Fatalf("%s/%v trial %d: batch faulted=%v, per-trial %v", name, sem, ti, faulted, r.ok)
				}
				if faulted && bf != r.fork {
					t.Fatalf("%s/%v trial %d: fork %+v, per-trial %+v", name, sem, ti, bf, r.fork)
				}
				for j := 0; j < len(r.next); j++ {
					if v := rngs[ti].Uint64(); v != r.next[j] {
						t.Fatalf("%s/%v trial %d: RNG stream diverged at post-draw %d", name, sem, ti, j)
					}
				}
			}
			if name == "A" && sem == FlipBit && len(batch) == 0 {
				t.Fatalf("batch produced no faulting trials — fixture too weak to test anything")
			}
		}
	}
}

// TestBuildHazardConcurrentBitIdentical pins the parallel marginal
// fan-out inside BuildHazard: concurrent constructions over one model
// must produce bit-identical tables (each PerOp value is the same
// float64 whichever goroutine computes it, and the sequential Kahan
// fold never reorders), and the construction itself must be race-free
// under the detector.
func TestBuildHazardConcurrentBitIdentical(t *testing.T) {
	qs := hazardQueries(3000)
	for name, m := range hazardModels(t, FlipBit, Independent) {
		const n = 4
		tables := make([]*Hazard, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tables[i] = BuildHazard(m, qs)
			}(i)
		}
		wg.Wait()
		for i := 1; i < n; i++ {
			for op, p := range tables[i].PerOp {
				if p != tables[0].PerOp[op] {
					t.Fatalf("%s: build %d PerOp[%d] = %v, build 0 = %v", name, i, op, p, tables[0].PerOp[op])
				}
			}
			for k, v := range tables[i].LogSurv {
				if v != tables[0].LogSurv[k] {
					t.Fatalf("%s: build %d LogSurv[%d] = %v, build 0 = %v", name, i, k, v, tables[0].LogSurv[k])
				}
			}
		}
	}
}
