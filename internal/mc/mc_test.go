package mc

import (
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dta"
)

var (
	sysOnce sync.Once
	sys     *core.System
)

func system() *core.System {
	sysOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.DTA = dta.Config{Cycles: 768, Seed: 5}
		sys = core.New(cfg)
	})
	return sys
}

func TestGoldenPointIsPerfect(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "none"},
		Trials: 5,
		Seed:   1,
	}
	pt, err := Run(spec, 700)
	if err != nil {
		t.Fatal(err)
	}
	if pt.FinishedPct != 100 || pt.CorrectPct != 100 {
		t.Errorf("golden point: finished %v correct %v", pt.FinishedPct, pt.CorrectPct)
	}
	if pt.FIRate != 0 || pt.OutputErr != 0 {
		t.Errorf("golden point injected: rate %v err %v", pt.FIRate, pt.OutputErr)
	}
	if pt.KernelCycles < 100_000 {
		t.Errorf("median kernel cycles %v suspiciously low", pt.KernelCycles)
	}
}

func TestModelCBelowOnsetIsClean(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.MatMult8(),
		Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0},
		Trials: 5,
		Seed:   1,
	}
	pt, err := Run(spec, 700)
	if err != nil {
		t.Fatal(err)
	}
	if pt.CorrectPct != 100 || pt.FIRate != 0 {
		t.Errorf("below onset: correct %v rate %v", pt.CorrectPct, pt.FIRate)
	}
}

func TestModelBDestroysEverythingAboveSTA(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.MatMult8(),
		Model:  core.ModelSpec{Kind: "B", Vdd: 0.7},
		Trials: 5,
		Seed:   1,
	}
	sta := system().STALimitMHz(0.7)
	pt, err := Run(spec, sta+2)
	if err != nil {
		t.Fatal(err)
	}
	if pt.CorrectPct != 0 {
		t.Errorf("model B above STA left %v%% correct", pt.CorrectPct)
	}
	if pt.FIRate < 100 {
		t.Errorf("model B above STA FI rate %v too low", pt.FIRate)
	}
	below, err := Run(spec, sta-2)
	if err != nil {
		t.Fatal(err)
	}
	if below.CorrectPct != 100 {
		t.Errorf("model B below STA broke runs: %v%%", below.CorrectPct)
	}
}

func TestReproducibility(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
		Trials: 10,
		Seed:   99,
	}
	a, err := Run(spec, 860)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, 860)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed differed:\n%+v\n%+v", a, b)
	}
	spec.Seed = 100
	c, err := Run(spec, 860)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Errorf("different seeds produced identical points")
	}
}

func TestSweepAndPoFF(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
		Trials: 10,
		Seed:   1,
	}
	pts, err := Sweep(spec, []float64{700, 800, 900, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("sweep returned %d points", len(pts))
	}
	if pts[0].CorrectPct != 100 {
		t.Errorf("lowest point not clean")
	}
	if pts[3].CorrectPct == 100 {
		t.Errorf("highest point still fully correct")
	}
	poff, ok := PoFF(pts)
	if !ok {
		t.Fatalf("no PoFF found")
	}
	if poff < 750 || poff > 1000 {
		t.Errorf("PoFF %v outside expected range", poff)
	}
	if g := GainOverSTA(777.7, 707); g < 9.9 || g > 10.1 {
		t.Errorf("gain computation wrong: %v", g)
	}
}

// TestSweepMatchesSerial is the determinism guarantee of the sweep
// engine: cross-point scheduling and model caching must not change a
// single bit of any Point relative to the point-serial, uncached path.
// The scan mode pins exactness (the serial reference executes every
// trial in full; first-fault sampling is only statistically
// equivalent).
func TestSweepMatchesSerial(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
		Mode:   ModeScan,
		Trials: 8,
		Seed:   7,
	}
	freqs := []float64{700, 800, 860, 920}
	par, err := Sweep(spec, freqs)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := SweepSerial(spec, freqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(ser) {
		t.Fatalf("parallel %d points, serial %d", len(par), len(ser))
	}
	for i := range par {
		if par[i] != ser[i] {
			t.Errorf("point %d differs:\nparallel %+v\nserial   %+v", i, par[i], ser[i])
		}
	}
	// Per-trial-input benchmarks exercise the other golden-run path.
	spec.Bench = bench.MicroAdd32()
	par, err = Sweep(spec, freqs[:2])
	if err != nil {
		t.Fatal(err)
	}
	ser, err = SweepSerial(spec, freqs[:2])
	if err != nil {
		t.Fatal(err)
	}
	for i := range par {
		if par[i] != ser[i] {
			t.Errorf("micro point %d differs:\nparallel %+v\nserial   %+v", i, par[i], ser[i])
		}
	}
}

// TestAdaptiveScheduleIndependent pins the adaptive mode's determinism:
// batch decisions depend only on trial-index prefixes, so worker count
// must not influence the result.
func TestAdaptiveScheduleIndependent(t *testing.T) {
	spec := Spec{
		System:    system(),
		Bench:     bench.Median(),
		Model:     core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
		TrialsMin: 6,
		TrialsMax: 48,
		Seed:      3,
	}
	freqs := []float64{700, 840, 900}
	spec.Workers = 1
	one, err := Sweep(spec, freqs)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workers = 8
	many, err := Sweep(spec, freqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range one {
		if one[i] != many[i] {
			t.Errorf("point %d depends on worker count:\n1 worker  %+v\n8 workers %+v", i, one[i], many[i])
		}
	}
}

// TestAdaptiveStopsEarly checks that obvious points spend fewer trials
// than TrialsMax while staying correct about their verdict.
func TestAdaptiveStopsEarly(t *testing.T) {
	// A deeply failing point (model B above STA is 0% correct) should
	// stop after the very first batch.
	spec := Spec{
		System:    system(),
		Bench:     bench.MatMult8(),
		Model:     core.ModelSpec{Kind: "B", Vdd: 0.7},
		TrialsMin: 8,
		TrialsMax: 200,
		Seed:      1,
	}
	sta := system().STALimitMHz(0.7)
	pt, err := Run(spec, sta+5)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Trials != 8 {
		t.Errorf("hopeless point ran %d trials, want 8", pt.Trials)
	}
	if pt.CorrectPct != 0 {
		t.Errorf("model B above STA left %v%% correct", pt.CorrectPct)
	}
	// A clean point stops once the Wilson lower bound clears 1-eps
	// (n/(n+z^2) >= 0.95 at about 73 trials for z=1.96), well short of
	// TrialsMax.
	clean := Spec{
		System:    system(),
		Bench:     bench.MatMult8(),
		Model:     core.ModelSpec{Kind: "C", Vdd: 0.7},
		TrialsMin: 16,
		TrialsMax: 400,
		Seed:      1,
	}
	pt, err = Run(clean, 700)
	if err != nil {
		t.Fatal(err)
	}
	if pt.CorrectPct != 100 {
		t.Errorf("clean point not correct: %v%%", pt.CorrectPct)
	}
	if pt.Trials >= 400 {
		t.Errorf("clean point exhausted TrialsMax (%d trials)", pt.Trials)
	}
	if pt.Trials < 73 {
		t.Errorf("clean point stopped at %d trials, before the Wilson bound can clear 0.95", pt.Trials)
	}
}

// TestProgressReporting checks the engine's progress stream: monotone
// done counts, a stable point total, and a final snapshot covering every
// scheduled trial.
func TestProgressReporting(t *testing.T) {
	var mu sync.Mutex
	var snaps []Progress
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "none"},
		Trials: 5,
		Seed:   1,
		Progress: func(p Progress) {
			mu.Lock()
			snaps = append(snaps, p)
			mu.Unlock()
		},
	}
	if _, err := Sweep(spec, []float64{700, 750}); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 10 {
		t.Fatalf("got %d progress snapshots, want one per trial (10)", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if last.DoneTrials != 10 || last.TotalTrials != 10 {
		t.Errorf("final snapshot %+v, want 10/10 trials", last)
	}
	if last.DonePoints != 2 || last.TotalPoints != 2 {
		t.Errorf("final snapshot %+v, want 2/2 points", last)
	}
}

func TestPoFFEdgeCases(t *testing.T) {
	if f, ok := PoFF(nil); ok || f != 0 {
		t.Errorf("PoFF(empty) = %v, %v; want 0, false", f, ok)
	}
	allCorrect := []Point{
		{FreqMHz: 700, CorrectPct: 100},
		{FreqMHz: 750, CorrectPct: 100},
	}
	if f, ok := PoFF(allCorrect); ok || f != 0 {
		t.Errorf("PoFF(all correct) = %v, %v; want 0, false", f, ok)
	}
	firstFails := []Point{
		{FreqMHz: 700, CorrectPct: 99},
		{FreqMHz: 750, CorrectPct: 0},
	}
	if f, ok := PoFF(firstFails); !ok || f != 700 {
		t.Errorf("PoFF(first fails) = %v, %v; want 700, true", f, ok)
	}
}

func TestGainOverSTAEdgeCases(t *testing.T) {
	if g := GainOverSTA(707, 707); g != 0 {
		t.Errorf("zero gain computed as %v", g)
	}
	if g := GainOverSTA(636.3, 707); g > -9.9 || g < -10.1 {
		t.Errorf("negative gain computed as %v, want about -10", g)
	}
}

func TestSweepEmptyFreqs(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "none"},
		Trials: 1,
		Seed:   1,
	}
	pts, err := Sweep(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 0 {
		t.Errorf("empty sweep returned %d points", len(pts))
	}
}

// TestSweepInvalidMidpoint preserves the serial path's contract: a sweep
// crossing the non-ALU safe limit returns the valid prefix and an error.
func TestSweepInvalidMidpoint(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "C", Vdd: 0.7},
		Trials: 2,
		Seed:   1,
	}
	pts, err := Sweep(spec, []float64{700, 720, 1200, 740})
	if err == nil {
		t.Fatalf("sweep beyond the non-ALU safe limit accepted")
	}
	if len(pts) != 2 {
		t.Errorf("got %d prefix points, want 2", len(pts))
	}
}

func TestNonALULimitRejected(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.Median(),
		Model:  core.ModelSpec{Kind: "C", Vdd: 0.7},
		Trials: 2,
		Seed:   1,
	}
	if _, err := Run(spec, 1200); err == nil {
		t.Errorf("operating point beyond the non-ALU safe limit accepted")
	}
}

func TestPerTrialInputsMicro(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.MicroAdd32(),
		Model:  core.ModelSpec{Kind: "none"},
		Trials: 6,
		Seed:   1,
	}
	pt, err := Run(spec, 700)
	if err != nil {
		t.Fatal(err)
	}
	if pt.CorrectPct != 100 {
		t.Errorf("micro golden not correct: %v%%", pt.CorrectPct)
	}
}

func TestModelAInjects(t *testing.T) {
	spec := Spec{
		System: system(),
		Bench:  bench.MatMult8(),
		Model:  core.ModelSpec{Kind: "A", ProbA: 1e-4},
		Trials: 5,
		Seed:   1,
	}
	pt, err := Run(spec, 700)
	if err != nil {
		t.Fatal(err)
	}
	if pt.FIRate == 0 {
		t.Errorf("model A injected nothing")
	}
	// Model A has no frequency awareness: the rate is identical at any
	// frequency.
	pt2, err := Run(spec, 900)
	if err != nil {
		t.Fatal(err)
	}
	if pt.FIRate != pt2.FIRate {
		t.Errorf("model A rate depends on frequency: %v vs %v", pt.FIRate, pt2.FIRate)
	}
}
