// Package report renders experiment results machine-readably: one
// Document of labelled series (each a list of mc.Points with its model
// coordinate) plus the grid metadata that produced them, encoded as
// JSON or tidy CSV.
//
// In the dependency graph, report sits directly above mc (it folds
// CellResults into series) and below every result-producing surface:
// cmd/sweep, cmd/paperrepro, the root facade, and the server's
// /result endpoint with its JSON/CSV content negotiation.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/mc"
)

// Meta describes the run that produced a document.
type Meta struct {
	Tool  string `json:"tool"`            // producing command
	Seed  int64  `json:"seed"`            // master random seed
	Cells int    `json:"cells"`           // grid cells evaluated
	Axes  string `json:"axes,omitempty"`  // human-readable axis summary
	Cache string `json:"cache,omitempty"` // artifact cache directory, if any
}

// Series is one labelled point list: all cells sharing a (benchmark,
// model, operating conditions) coordinate, ordered by frequency. The
// numeric coordinates never use omitempty: sigma = 0 is a legitimate
// grid value, not an absent field.
type Series struct {
	Label  string     `json:"label"`
	Bench  string     `json:"bench,omitempty"`
	Kind   string     `json:"model,omitempty"`
	Vdd    float64    `json:"vdd"`
	Sigma  float64    `json:"sigma"`
	Points []mc.Point `json:"points"`
}

// Document is the machine-readable result of a run.
type Document struct {
	Meta   Meta     `json:"meta"`
	Series []Series `json:"series"`
}

// FromCells groups grid cells into series: consecutive cells that share
// everything but the frequency fold into one series (grid enumeration
// is frequency-innermost, so the grouping is a single pass). Labels
// spell out the non-frequency coordinate.
func FromCells(cells []mc.CellResult) []Series {
	var out []Series
	sameSeries := func(a, b mc.CellResult) bool {
		am, bm := a.Model, b.Model
		am.FreqMHz, bm.FreqMHz = 0, 0
		return a.Bench == b.Bench && fmt.Sprintf("%+v", am) == fmt.Sprintf("%+v", bm)
	}
	for i, c := range cells {
		if i == 0 || !sameSeries(cells[i-1], c) {
			out = append(out, Series{
				Label: seriesLabel(c),
				Bench: c.Bench,
				Kind:  c.Model.Kind,
				Vdd:   c.Model.Vdd,
				Sigma: c.Model.Sigma,
			})
		}
		s := &out[len(out)-1]
		s.Points = append(s.Points, c.Point)
	}
	return out
}

func seriesLabel(c mc.CellResult) string {
	return fmt.Sprintf("%s model=%s vdd=%gV sigma=%gmV",
		c.Bench, modelKind(c.Model), c.Model.Vdd, c.Model.Sigma*1000)
}

func modelKind(m core.ModelSpec) string {
	if m.Kind == "" {
		return "none"
	}
	return m.Kind
}

// WriteJSON encodes the document as indented JSON.
func WriteJSON(w io.Writer, d *Document) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteCSV encodes the document as tidy CSV: one row per (series,
// point), metadata in a leading comment line.
func WriteCSV(w io.Writer, d *Document) error {
	if _, err := fmt.Fprintf(w, "# tool=%s seed=%d cells=%d axes=%q\n",
		d.Meta.Tool, d.Meta.Seed, d.Meta.Cells, d.Meta.Axes); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := []string{"series", "bench", "model", "vdd_v", "sigma_v",
		"freq_mhz", "trials", "finished_pct", "correct_pct",
		"fi_per_kcycle", "output_err", "output_err_all", "kernel_cycles",
		"quality_mean", "quality_p50", "quality_p99",
		"quality_lo", "quality_hi"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range d.Series {
		for _, p := range s.Points {
			rec := []string{
				s.Label, s.Bench, s.Kind, fmtF(s.Vdd), fmtF(s.Sigma),
				fmtF(p.FreqMHz), strconv.Itoa(p.Trials),
				fmtF(p.FinishedPct), fmtF(p.CorrectPct),
				fmtF(p.FIRate), fmtF(p.OutputErr), fmtF(p.OutputErrAll),
				fmtF(p.KernelCycles),
				fmtF(p.QualityMean), fmtF(p.QualityP50), fmtF(p.QualityP99),
				fmtF(p.QualityLo), fmtF(p.QualityHi),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Write dispatches on format ("json" or "csv").
func Write(w io.Writer, format string, d *Document) error {
	switch format {
	case "json":
		return WriteJSON(w, d)
	case "csv":
		return WriteCSV(w, d)
	}
	return fmt.Errorf("report: unknown format %q (want json or csv)", format)
}

// WriteFile writes the document to path (or to stdoutFallback when path
// is empty), propagating close errors so a failed flush never passes
// for a successful export.
func WriteFile(path string, stdoutFallback io.Writer, format string, d *Document) error {
	if path == "" {
		return Write(stdoutFallback, format, d)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, format, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
