// Command paperrepro regenerates the paper's tables and figures as text
// series. With -scale 1 it uses the paper's trial counts; smaller scales
// trade resolution for speed.
//
//	paperrepro -exp all -scale 0.25
//	paperrepro -exp fig5 -dta 8192
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mc"
	"repro/internal/progress"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperrepro: ")
	exp := flag.String("exp", "all", "experiment: table1, table2, fig1, fig2, fig4, fig5, fig6, fig7, all")
	scale := flag.Float64("scale", 1.0, "trial-count / resolution scale (1 = paper fidelity)")
	seed := flag.Int64("seed", 1, "master random seed")
	dtaCycles := flag.Int("dta", 8192, "DTA characterization kernel cycles per instruction")
	quiet := flag.Bool("q", false, "suppress the stderr progress line")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.DTA.Cycles = *dtaCycles
	sys := core.New(cfg)
	var rep *progress.Reporter
	if !*quiet {
		rep = progress.New(os.Stderr, "paperrepro")
	}
	o := experiments.Options{System: sys, Out: os.Stdout, Scale: *scale, Seed: *seed,
		Progress: func(p mc.Progress) {
			rep.Update(p.DoneTrials, p.TotalTrials)
			// Terminate the line at the end of each sweep so the
			// figure's stdout tables start on a clean line.
			if p.DoneTrials == p.TotalTrials && p.DonePoints == p.TotalPoints {
				rep.Finish()
			}
		}}

	run := func(name string) error {
		rep.SetLabel(name)
		defer rep.Finish()
		fmt.Printf("==== %s ====\n", name)
		switch name {
		case "table1":
			_, err := experiments.Table1(o)
			return err
		case "table2":
			experiments.Table2(o)
			return nil
		case "fig1":
			_, err := experiments.Fig1(o)
			return err
		case "fig2":
			_, err := experiments.Fig2(o)
			return err
		case "fig4":
			_, err := experiments.Fig4(o)
			return err
		case "fig5":
			_, err := experiments.Fig5(o)
			return err
		case "fig6":
			_, err := experiments.Fig6(o)
			return err
		case "fig7":
			_, err := experiments.Fig7(o)
			return err
		}
		return fmt.Errorf("unknown experiment %q", name)
	}

	names := []string{"table1", "table2", "fig1", "fig2", "fig4", "fig5", "fig6", "fig7"}
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	for _, n := range names {
		if err := run(strings.TrimSpace(n)); err != nil {
			log.Fatal(err)
		}
	}
}
