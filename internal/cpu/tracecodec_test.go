package cpu

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

func TestTraceCodecRoundTrip(t *testing.T) {
	_, tr, _ := goldenTrace(t, 64)
	blob, err := EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !IsEncodedTrace(blob) {
		t.Fatalf("encoded trace lacks the magic prefix")
	}
	got, err := DecodeTrace(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round trip not bit-exact:\ngot  %+v\nwant %+v", got, tr)
	}
}

func TestTraceCodecShrinks(t *testing.T) {
	_, tr, _ := goldenTrace(t, 64)
	var g bytes.Buffer
	if err := gob.NewEncoder(&g).Encode(tr); err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob)*2 > g.Len() {
		t.Fatalf("delta blob %d bytes, gob %d bytes — want at least 2x smaller", len(blob), g.Len())
	}
	t.Logf("delta %d bytes vs gob %d bytes (%.1fx)", len(blob), g.Len(), float64(g.Len())/float64(len(blob)))
}

func TestTraceCodecRejectsGarbage(t *testing.T) {
	if _, err := DecodeTrace([]byte("not a trace")); err == nil {
		t.Fatalf("decoded a non-trace payload")
	}
	_, tr, _ := goldenTrace(t, 64)
	blob, err := EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations must error, never panic or return a partial trace.
	for _, n := range []int{len(traceMagic), len(traceMagic) + 3, len(blob) / 2, len(blob) - 1} {
		if _, err := DecodeTrace(blob[:n]); err == nil {
			t.Fatalf("decoded a trace truncated to %d bytes", n)
		}
	}
	// A gob payload must be recognized as not-delta-encoded.
	var g bytes.Buffer
	if err := gob.NewEncoder(&g).Encode(tr); err != nil {
		t.Fatal(err)
	}
	if IsEncodedTrace(g.Bytes()) {
		t.Fatalf("gob payload misdetected as delta-encoded")
	}
}

func TestTraceCodecEmptyTrace(t *testing.T) {
	tr := &Trace{CheckpointEvery: 4096, Status: StatusExited}
	blob, err := EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTrace(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("empty-trace round trip: got %+v want %+v", got, tr)
	}
}
