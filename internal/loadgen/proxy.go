// HTTP-level fault injection. FaultProxy sits between a client and a
// fisimd daemon (real or httptest) and corrupts the transport the way
// production networks do — dropped connections, injected 5xx, added
// latency — with a seeded RNG so a chaos run is reproducible. The
// client-retry tests drive fisimctl's retry layer through it and assert
// convergence; it never touches bodies, so whatever survives is
// byte-identical to the origin's answer.

package loadgen

import (
	"math/rand"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"time"
)

// Faults configures a FaultProxy's misbehaviour; probabilities are per
// request and independent.
type Faults struct {
	// DropProb aborts the exchange with no response at all (connection
	// reset from the client's point of view).
	DropProb float64
	// ErrProb answers 503 without consulting the origin.
	ErrProb float64
	// Delay is added before forwarding (applied to every request).
	Delay time.Duration
}

// FaultProxy is a reverse proxy with injectable transport faults.
type FaultProxy struct {
	faults Faults
	proxy  *httputil.ReverseProxy

	mu      sync.Mutex
	rng     *rand.Rand
	dropped int
	errored int
	passed  int
}

// NewFaultProxy proxies to target (a base URL such as an
// httptest.Server.URL) injecting the given faults, deterministic under
// seed.
func NewFaultProxy(target string, faults Faults, seed int64) (*FaultProxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, err
	}
	return &FaultProxy{
		faults: faults,
		proxy:  httputil.NewSingleHostReverseProxy(u),
		rng:    rand.New(rand.NewSource(seed)),
	}, nil
}

// Counts reports how many requests were dropped, answered with an
// injected error, and passed through.
func (p *FaultProxy) Counts() (dropped, errored, passed int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped, p.errored, p.passed
}

// ServeHTTP applies the fault dice, then forwards.
func (p *FaultProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	drop := p.rng.Float64() < p.faults.DropProb
	errInject := !drop && p.rng.Float64() < p.faults.ErrProb
	switch {
	case drop:
		p.dropped++
	case errInject:
		p.errored++
	default:
		p.passed++
	}
	p.mu.Unlock()

	if p.faults.Delay > 0 {
		select {
		case <-time.After(p.faults.Delay):
		case <-r.Context().Done():
			return
		}
	}
	switch {
	case drop:
		// Abort without writing a response: the client sees the
		// connection die mid-exchange, exactly like a crashed proxy hop.
		panic(http.ErrAbortHandler)
	case errInject:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"loadgen: injected 503"}`))
	default:
		p.proxy.ServeHTTP(w, r)
	}
}
