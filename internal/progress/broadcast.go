// Observer fan-out: a Broadcaster multiplexes one stream of progress
// values out to any number of late-joining subscribers, so a single
// engine callback can feed a terminal reporter and several HTTP
// progress streams at once instead of one hard-wired stderr writer.

package progress

import "sync"

// Broadcaster fans values published by one producer out to any number
// of subscribers with coalescing semantics: every subscriber channel
// holds at most the most recent value, and a slow subscriber observes a
// skipped-ahead sequence rather than ever blocking the producer. That
// makes Publish safe to call from hot paths that hold scheduling locks
// (the mc engine delivers progress snapshots under its own mutex).
//
// A new subscriber immediately receives the most recently published
// value, if any, so a progress display attached mid-run starts from the
// current state instead of waiting for the next tick. Close closes
// every subscriber channel; the last published value remains readable
// through Last.
type Broadcaster[T any] struct {
	mu     sync.Mutex
	subs   map[chan T]struct{}
	last   T
	seeded bool
	closed bool
}

// NewBroadcaster returns an empty broadcaster.
func NewBroadcaster[T any]() *Broadcaster[T] {
	return &Broadcaster[T]{subs: make(map[chan T]struct{})}
}

// Publish delivers v to every subscriber, replacing any value a
// subscriber has not yet consumed. It never blocks. Publishing on a
// closed broadcaster is a no-op.
func (b *Broadcaster[T]) Publish(v T) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.last, b.seeded = v, true
	for ch := range b.subs {
		select {
		case ch <- v:
		default:
			// Channel full: drop the stale value, then deliver the new
			// one. Both operations are non-blocking; the subscriber owns
			// the only other receive end, so the second send can only
			// fail if the subscriber raced a value in between — in which
			// case it already has something newer than the stale one.
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- v:
			default:
			}
		}
	}
}

// Subscribe registers a new observer. The returned channel has capacity
// one and carries the latest value at each receive; it is closed when
// the broadcaster closes. Subscribing to an already-closed broadcaster
// still delivers the final published value (if any) before the close,
// so an observer that races the producer's terminal Publish+Close never
// misses the terminal snapshot. The cancel function unregisters the
// observer (idempotent, safe after Close).
func (b *Broadcaster[T]) Subscribe() (<-chan T, func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ch := make(chan T, 1)
	if b.closed {
		if b.seeded {
			ch <- b.last
		}
		close(ch)
		return ch, func() {}
	}
	if b.seeded {
		ch <- b.last
	}
	b.subs[ch] = struct{}{}
	cancel := func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
		}
	}
	return ch, cancel
}

// Close closes every subscriber channel and marks the broadcaster
// terminal. It is idempotent. Publish after Close is a no-op, so the
// value published immediately before Close is the one subscribers drain
// last.
func (b *Broadcaster[T]) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closeLocked()
}

// CloseWith publishes v and closes in one critical section, so no
// subscriber can observe the close without having been offered the
// final value first — the terminal-snapshot idiom (publish, then close)
// without the two-step.
func (b *Broadcaster[T]) CloseWith(v T) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.last, b.seeded = v, true
	for ch := range b.subs {
		select {
		case ch <- v:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- v:
			default:
			}
		}
	}
	b.closeLocked()
}

// closeLocked closes every subscriber channel. Callers hold mu.
func (b *Broadcaster[T]) closeLocked() {
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.subs {
		close(ch)
		delete(b.subs, ch)
	}
}

// Last returns the most recently published value and whether one was
// ever published. It remains valid after Close, so late status queries
// can read the terminal snapshot.
func (b *Broadcaster[T]) Last() (T, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.last, b.seeded
}
