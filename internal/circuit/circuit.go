// Package circuit generates the gate-level netlists of the execution-stage
// ALU of the modelled OpenRISC core: a carry-select adder (also used in
// subtract and compare modes), a carry-save-tree multiplier with a
// carry-select final adder, a logarithmic barrel shifter, and a one-level
// logic unit, each feeding the 32 result endpoints through the two
// result-mux levels, plus the comparison-flag endpoint.
//
// # Synthesis-like calibration
//
// The paper's core is implemented with the constraint strategy of [14]: at
// sign-off, only ALU endpoints limit the clock (707 MHz at 0.7 V), which
// in practice means the synthesis tool has downsized cells until *every*
// ALU unit just meets the constraint (a data-path "timing wall"). New
// reproduces this by scaling each unit's gate delays so that its static
// worst path plus flip-flop setup equals a per-unit fraction (tightness)
// of the target clock period; data-path units sit at 1.0, the shifter and
// logic unit retain a little slack.
//
// The interesting consequences then emerge from circuit structure rather
// than hand-tuning: multiplier paths are dense (the CSA tree toggles every
// cycle), so its dynamic arrivals crowd the static limit and l.mul fails
// first under frequency over-scaling; adder worst paths need rare long
// carry chains, so l.add gains more headroom; 16-bit operands confine
// carry chains to the low half and gain the most — the orderings of the
// paper's Figs. 2 and 4.
//
// In the dependency graph, circuit builds on internal/gates (the
// netlist substrate) and internal/timing (voltage-delay scaling), and
// feeds the dta characterizer and core's STA calibration above it.
package circuit

import (
	"fmt"

	"repro/internal/gates"
	"repro/internal/isa"
)

// Width is the data-path width of the modelled core.
const Width = 32

// NumEndpoints counts the fault-injection endpoints: the 32 ALU result
// flip-flops plus the comparison-flag flop produced by the same data path
// (endpoint index 32).
const NumEndpoints = Width + 1

// FlagEndpoint is the endpoint index of the comparison flag.
const FlagEndpoint = Width

// UnitKind identifies one characterizable ALU unit configuration.
type UnitKind uint8

// ALU units. Shift and logic units are instantiated once per operation
// because their mode-select inputs are constant per instruction, which
// folds into distinct timing cones.
const (
	UnitAdd UnitKind = iota
	UnitSub
	UnitCompare
	UnitMul
	UnitSll
	UnitSrl
	UnitSra
	UnitAnd
	UnitOr
	UnitXor
	NumUnits
)

// String names the unit.
func (u UnitKind) String() string {
	names := [...]string{"add", "sub", "compare", "mul", "sll", "srl", "sra",
		"and", "or", "xor"}
	if int(u) < len(names) {
		return names[u]
	}
	return fmt.Sprintf("unit(%d)", uint8(u))
}

// UnitOf maps an FI-eligible instruction to the ALU unit that executes it.
// It panics for non-ALU ops; callers gate on isa.IsALU.
func UnitOf(op isa.Op) UnitKind {
	switch isa.ClassOf(op) {
	case isa.ClassAdder:
		return UnitAdd
	case isa.ClassSubber:
		return UnitSub
	case isa.ClassCompare:
		return UnitCompare
	case isa.ClassMul:
		return UnitMul
	case isa.ClassShift:
		switch op {
		case isa.OpSll, isa.OpSlli:
			return UnitSll
		case isa.OpSrl, isa.OpSrli:
			return UnitSrl
		default:
			return UnitSra
		}
	case isa.ClassLogic:
		switch op {
		case isa.OpAnd, isa.OpAndi:
			return UnitAnd
		case isa.OpOr, isa.OpOri:
			return UnitOr
		default:
			return UnitXor
		}
	}
	panic(fmt.Sprintf("circuit: %v is not an ALU op", op))
}

// Unit is one generated netlist with its endpoint bindings. Primary
// inputs are declared in the order a0..a31, b0..b31; PackInputs produces
// matching input vectors.
type Unit struct {
	Kind     UnitKind
	Netlist  *gates.Netlist
	Endpoint [Width]int32 // result endpoints r0..r31
	Flag     int32        // flag endpoint node, or -1
	// WorstPs is the calibrated static worst arrival over the unit's
	// endpoints at the reference voltage (excluding setup).
	WorstPs float64
}

// HasFlag reports whether the unit drives the flag endpoint.
func (u *Unit) HasFlag() bool { return u.Flag >= 0 }

// PackInputs fills dst (length 2*Width) with the bit vectors of both
// operands in netlist input order and returns it.
func PackInputs(dst []bool, a, b uint32) []bool {
	if cap(dst) < 2*Width {
		dst = make([]bool, 2*Width)
	}
	dst = dst[:2*Width]
	for i := 0; i < Width; i++ {
		dst[i] = a>>uint(i)&1 == 1
		dst[Width+i] = b>>uint(i)&1 == 1
	}
	return dst
}

// Config parameterizes ALU generation.
type Config struct {
	// Seed drives the per-gate process variation.
	Seed int64
	// STAFreqMHz is the sign-off clock of the data path at the
	// reference voltage; the paper's core closes timing at 707 MHz at
	// 0.7 V.
	STAFreqMHz float64
	// SetupPs is the endpoint flip-flop setup time included in every
	// violation check.
	SetupPs float64
	// AdderGroup is the carry-select group size.
	AdderGroup int
	// Tightness maps units to the fraction of the available period
	// (target minus setup) their worst path is calibrated to. Unset
	// units use the defaults (data path 1.0, shifter 0.75, logic 0.60).
	Tightness map[UnitKind]float64
}

// DefaultConfig returns the paper's case-study parameters.
func DefaultConfig() Config {
	return Config{Seed: 28, STAFreqMHz: 707, SetupPs: 30, AdderGroup: 8}
}

func (c Config) tightness(u UnitKind) float64 {
	if t, ok := c.Tightness[u]; ok {
		return t
	}
	switch u {
	case UnitSll, UnitSrl, UnitSra:
		return 0.75
	case UnitAnd, UnitOr, UnitXor:
		return 0.60
	default:
		return 1.0
	}
}

// ALU aggregates the calibrated unit netlists.
type ALU struct {
	Units  [NumUnits]*Unit
	Config Config
	// TargetPeriodPs is the sign-off clock period at the reference
	// voltage.
	TargetPeriodPs float64
	// worstEndpoint[i] is the largest static arrival to endpoint i over
	// all units, the per-endpoint figure that model B injects against.
	worstEndpoint [NumEndpoints]float64
}

// New generates and calibrates the ALU.
func New(cfg Config) *ALU {
	if cfg.STAFreqMHz <= 0 || cfg.AdderGroup <= 0 {
		def := DefaultConfig()
		if cfg.STAFreqMHz <= 0 {
			cfg.STAFreqMHz = def.STAFreqMHz
		}
		if cfg.AdderGroup <= 0 {
			cfg.AdderGroup = def.AdderGroup
		}
		if cfg.SetupPs <= 0 {
			cfg.SetupPs = def.SetupPs
		}
	}
	a := &ALU{Config: cfg, TargetPeriodPs: PeriodPs(cfg.STAFreqMHz)}
	avail := a.TargetPeriodPs - cfg.SetupPs
	if avail <= 0 {
		panic("circuit: setup time exceeds clock period")
	}
	dm := gates.NewDelayModel(cfg.Seed)
	for k := UnitKind(0); k < NumUnits; k++ {
		u := buildUnit(k, dm, cfg.AdderGroup)
		worst, _ := u.Netlist.WorstOutputArrival(u.Netlist.DelaysAt(1))
		target := avail * cfg.tightness(k)
		u.Netlist.Scale(target / worst)
		w, _ := u.Netlist.WorstOutputArrival(u.Netlist.DelaysAt(1))
		u.WorstPs = w
		a.Units[k] = u
	}
	// Per-endpoint static worst over all units (what STA of the full
	// ALU, including the result mux, would report).
	for k := UnitKind(0); k < NumUnits; k++ {
		u := a.Units[k]
		arr := u.Netlist.STA(u.Netlist.DelaysAt(1))
		for i := 0; i < Width; i++ {
			if v := arr[u.Endpoint[i]]; v > a.worstEndpoint[i] {
				a.worstEndpoint[i] = v
			}
		}
		if u.HasFlag() {
			if v := arr[u.Flag]; v > a.worstEndpoint[FlagEndpoint] {
				a.worstEndpoint[FlagEndpoint] = v
			}
		}
	}
	return a
}

// Unit returns the netlist executing the given ALU instruction.
func (a *ALU) Unit(op isa.Op) *Unit { return a.Units[UnitOf(op)] }

// WorstEndpointPsAt returns the per-endpoint static worst arrival at a
// global voltage-derived delay factor, recomputing STA with the per-gate
// sensitivities (the paper's model B obtains these from STA runs at each
// operating condition available in the design kit).
func (a *ALU) WorstEndpointPsAt(factor float64) [NumEndpoints]float64 {
	var worst [NumEndpoints]float64
	for k := UnitKind(0); k < NumUnits; k++ {
		u := a.Units[k]
		arr := u.Netlist.STA(u.Netlist.DelaysAt(factor))
		for i := 0; i < Width; i++ {
			if v := arr[u.Endpoint[i]]; v > worst[i] {
				worst[i] = v
			}
		}
		if u.HasFlag() {
			if v := arr[u.Flag]; v > worst[FlagEndpoint] {
				worst[FlagEndpoint] = v
			}
		}
	}
	return worst
}

// WorstEndpointPs returns the per-endpoint static worst arrival (ps,
// reference voltage, excluding setup). Index FlagEndpoint is the flag.
func (a *ALU) WorstEndpointPs() [NumEndpoints]float64 { return a.worstEndpoint }

// STALimitMHz returns the static-timing frequency limit at the reference
// voltage, which equals the configured sign-off clock by construction.
func (a *ALU) STALimitMHz() float64 {
	worst := 0.0
	for _, w := range a.worstEndpoint {
		if w > worst {
			worst = w
		}
	}
	return FreqMHz(worst + a.Config.SetupPs)
}

// PeriodPs converts a frequency in MHz to a period in picoseconds.
func PeriodPs(fMHz float64) float64 { return 1e6 / fMHz }

// FreqMHz converts a period in picoseconds to a frequency in MHz.
func FreqMHz(periodPs float64) float64 { return 1e6 / periodPs }

// buildUnit constructs one raw (uncalibrated) unit netlist.
func buildUnit(k UnitKind, dm *gates.DelayModel, group int) *Unit {
	b := gates.NewBuilder(dm)
	var ain, bin [Width]int32
	for i := range ain {
		ain[i] = b.Input()
	}
	for i := range bin {
		bin[i] = b.Input()
	}
	u := &Unit{Kind: k, Flag: -1}

	var res [Width]int32
	switch k {
	case UnitAdd:
		sum, _, _ := buildAdder(b, ain[:], bin[:], b.Const(false), group, false)
		copy(res[:], sum)
	case UnitSub:
		sum, _, _ := buildAdder(b, ain[:], bin[:], b.Const(true), group, true)
		copy(res[:], sum)
	case UnitCompare:
		sum, c31, c32 := buildAdder(b, ain[:], bin[:], b.Const(true), group, true)
		copy(res[:], sum)
		u.Flag = buildFlag(b, sum, c31, c32)
	case UnitMul:
		copy(res[:], buildMul(b, ain[:], bin[:], group))
	case UnitSll, UnitSrl, UnitSra:
		copy(res[:], buildShift(b, k, ain[:], bin[:]))
	case UnitAnd, UnitOr, UnitXor:
		for i := 0; i < Width; i++ {
			switch k {
			case UnitAnd:
				res[i] = b.And(ain[i], bin[i])
			case UnitOr:
				res[i] = b.Or(ain[i], bin[i])
			default:
				res[i] = b.Xor(ain[i], bin[i])
			}
		}
	}

	// Route every result bit through the two levels of the 4:1 result
	// mux in front of the endpoint flops. The mux selects are static
	// per instruction, so only the selected unit's transitions pass.
	sel := b.Const(true)
	zero := b.Const(false)
	for i := 0; i < Width; i++ {
		m1 := b.Mux(sel, zero, res[i])
		m2 := b.Mux(sel, zero, m1)
		u.Endpoint[i] = m2
		b.Output(fmt.Sprintf("r%d", i), m2)
	}
	if u.Flag >= 0 {
		// The flag flop sits behind its own condition-select mux.
		f := b.Mux(sel, zero, u.Flag)
		u.Flag = f
		b.Output("flag", f)
	}
	u.Netlist = b.Build()
	return u
}

// buildAdder constructs a carry-select adder with ripple groups: each
// group computes both conditional sums (carry-in 0 and 1) and the actual
// group carry selects between them. Unlike a carry-skip structure, every
// topological path here is a true path (the in-group ripple chains are
// excitable by the right operand pattern), so the static worst path that
// the unit is calibrated against can actually be approached by dynamic
// timing analysis — the property the whole over-scaling analysis rests on.
//
// When invertB is set the b operand is complemented (subtract mode; pass
// cin = 1). It returns the sum bits plus the selected carry into and out
// of the MSB, which the flag logic consumes.
func buildAdder(b *gates.Builder, a, bIn []int32, cin int32, group int, invertB bool) (sum []int32, c31, c32 int32) {
	n := len(a)
	sum = make([]int32, n)
	p := make([]int32, n)
	g := make([]int32, n)
	for i := 0; i < n; i++ {
		bi := bIn[i]
		if invertB {
			bi = b.Not(bi)
		}
		p[i] = b.Xor(a[i], bi)
		g[i] = b.And(a[i], bi)
	}
	// ripple produces the conditional sums and carries of one group for
	// a constant carry-in.
	ripple := func(lo, hi int, c int32) (s []int32, carries []int32) {
		for i := lo; i < hi; i++ {
			s = append(s, b.Xor(p[i], c))
			c = b.Or(g[i], b.And(p[i], c))
			carries = append(carries, c)
		}
		return s, carries
	}
	carryIn := cin
	for lo := 0; lo < n; lo += group {
		hi := lo + group
		if hi > n {
			hi = n
		}
		s0, c0 := ripple(lo, hi, b.Const(false))
		s1, c1 := ripple(lo, hi, b.Const(true))
		for i := lo; i < hi; i++ {
			sum[i] = b.Mux(carryIn, s0[i-lo], s1[i-lo])
			if i == n-2 {
				c31 = b.Mux(carryIn, c0[i-lo], c1[i-lo])
			}
			if i == n-1 {
				c32 = b.Mux(carryIn, c0[i-lo], c1[i-lo])
			}
		}
		carryIn = b.Mux(carryIn, c0[len(c0)-1], c1[len(c1)-1])
	}
	if c31 == 0 || c32 == 0 {
		panic("circuit: adder width too small for flag carries")
	}
	return sum, c31, c32
}

// buildFlag derives the comparison flag from the subtract result. The
// condition mux is wired to the signed-less-than branch (sign XOR
// overflow), which both toggles with realistic frequency (unlike the
// zero-detect OR tree, whose output saturates at "not zero" for random
// operands and therefore almost never transitions late) and depends on
// the latest carries of the subtract. All l.sf* instructions share this
// flag timing cone; the architectural condition is still evaluated
// exactly by the ISS.
func buildFlag(b *gates.Builder, sum []int32, c31, c32 int32) int32 {
	zero := b.Not(orTree(b, sum))
	v := b.Xor(c31, c32)             // signed overflow
	lts := b.Xor(sum[len(sum)-1], v) // a < b signed
	ltu := b.Not(c32)                // a < b unsigned (borrow)
	selLow := b.Const(true)          // select the lts branch ...
	selHigh := b.Const(false)        // ... through both mux levels
	m := b.Mux(selLow, zero, lts)
	f := b.Mux(selHigh, m, ltu)
	// The flag leaves the ALU and crosses the data path to the status
	// register; model the repeatered distribution wire as a buffer
	// chain. Because this segment is constant and always excited, it
	// pulls the flag endpoint's dynamic arrivals toward its static
	// limit, making compares the first instructions to fail in
	// control-heavy kernels (the paper's median PoFF behaviour).
	for i := 0; i < flagWireBufs; i++ {
		f = b.Buf(f)
	}
	return f
}

// flagWireBufs is the repeater count of the flag distribution wire.
const flagWireBufs = 22

func orTree(b *gates.Builder, xs []int32) int32 {
	switch len(xs) {
	case 0:
		return b.Const(false)
	case 1:
		return xs[0]
	}
	mid := len(xs) / 2
	return b.Or(orTree(b, xs[:mid]), orTree(b, xs[mid:]))
}

// buildMul constructs the low half of a 32x32 multiplier: an AND array of
// partial products, carry-save reduction with full/half adders, and a
// carry-skip final adder. Only columns 0..31 are generated since l.mul
// returns the low 32 bits.
func buildMul(b *gates.Builder, a, bIn []int32, group int) []int32 {
	n := len(a)
	cols := make([][]int32, n)
	for j := 0; j < n; j++ {
		for i := 0; i+j < n; i++ {
			cols[i+j] = append(cols[i+j], b.And(a[i], bIn[j]))
		}
	}
	// Carry-save reduction until every column holds at most two bits.
	for {
		done := true
		for _, c := range cols {
			if len(c) > 2 {
				done = false
				break
			}
		}
		if done {
			break
		}
		next := make([][]int32, n)
		for k := 0; k < n; k++ {
			c := cols[k]
			for len(c) >= 3 {
				x, y, z := c[0], c[1], c[2]
				c = c[3:]
				next[k] = append(next[k], b.Xor3(x, y, z))
				if k+1 < n {
					next[k+1] = append(next[k+1], b.Maj3(x, y, z))
				}
			}
			if len(c) == 2 {
				x, y := c[0], c[1]
				next[k] = append(next[k], b.Xor(x, y))
				if k+1 < n {
					next[k+1] = append(next[k+1], b.And(x, y))
				}
				c = nil
			}
			next[k] = append(next[k], c...)
		}
		cols = next
	}
	// Final carry-propagate add of the two remaining rows.
	xs := make([]int32, n)
	ys := make([]int32, n)
	zero := b.Const(false)
	for k := 0; k < n; k++ {
		xs[k], ys[k] = zero, zero
		if len(cols[k]) > 0 {
			xs[k] = cols[k][0]
		}
		if len(cols[k]) > 1 {
			ys[k] = cols[k][1]
		}
	}
	sum, _, _ := buildAdder(b, xs, ys, b.Const(false), group, false)
	return sum
}

// buildShift constructs a five-stage logarithmic barrel shifter. The
// shift amount is b[4:0]; higher b bits are ignored as the ISA masks the
// amount to five bits.
func buildShift(b *gates.Builder, k UnitKind, a, bIn []int32) []int32 {
	n := len(a)
	stages := 0
	for 1<<stages < n {
		stages++
	}
	cur := make([]int32, n)
	copy(cur, a)
	var fill int32
	if k == UnitSra {
		fill = a[n-1]
	} else {
		fill = b.Const(false)
	}
	for s := 0; s < stages; s++ {
		sh := 1 << s
		next := make([]int32, n)
		for i := 0; i < n; i++ {
			var shifted int32
			if k == UnitSll {
				if i-sh >= 0 {
					shifted = cur[i-sh]
				} else {
					shifted = fill
				}
			} else {
				if i+sh < n {
					shifted = cur[i+sh]
				} else {
					shifted = fill
				}
			}
			next[i] = b.Mux(bIn[s], cur[i], shifted)
		}
		cur = next
	}
	return cur
}

// EvalUnit functionally evaluates a unit on concrete operands using a
// settled (zero-time) simulation; used by correctness tests and the DTA
// self-checks. It returns the 32-bit result and the raw flag node value
// (meaningful only for UnitCompare).
func EvalUnit(u *Unit, sim *gates.Sim, a, b uint32) (uint32, bool) {
	in := PackInputs(nil, a, b)
	sim.Settle(in)
	var r uint32
	for i := 0; i < Width; i++ {
		if sim.Value(u.Endpoint[i]) {
			r |= 1 << uint(i)
		}
	}
	fl := false
	if u.HasFlag() {
		fl = sim.Value(u.Flag)
	}
	return r, fl
}

// ReferenceResult computes the architecturally expected unit output for
// functional verification.
func ReferenceResult(k UnitKind, a, b uint32) uint32 {
	switch k {
	case UnitAdd:
		return a + b
	case UnitSub, UnitCompare:
		return a - b
	case UnitMul:
		return uint32(int32(a) * int32(b))
	case UnitSll:
		return a << (b & 31)
	case UnitSrl:
		return a >> (b & 31)
	case UnitSra:
		return uint32(int32(a) >> (b & 31))
	case UnitAnd:
		return a & b
	case UnitOr:
		return a | b
	case UnitXor:
		return a ^ b
	}
	return 0
}
