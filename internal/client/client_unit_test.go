package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryableCodes(t *testing.T) {
	for code, want := range map[int]bool{
		http.StatusTooManyRequests:     true,
		http.StatusBadGateway:          true,
		http.StatusServiceUnavailable:  true,
		http.StatusGatewayTimeout:      true,
		http.StatusBadRequest:          false,
		http.StatusNotFound:            false,
		http.StatusConflict:            false,
		http.StatusInternalServerError: false,
	} {
		if got := retryable(code); got != want {
			t.Errorf("retryable(%d) = %v, want %v", code, got, want)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	for h, want := range map[string]time.Duration{
		"":     0,
		"3":    3 * time.Second,
		"0":    0,
		"-1":   0,
		"soon": 0, // HTTP-date form is not emitted by fisimd; treated as absent
	} {
		if got := parseRetryAfter(h); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", h, got, want)
		}
	}
}

// TestBackoff pins the delay discipline: exponential growth from
// BaseDelay, a MaxDelay cap, a server Retry-After hint overriding the
// computed delay when larger, and ±25% jitter either way.
func TestBackoff(t *testing.T) {
	c := New(Config{Base: "http://x", BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second, Seed: 1})
	within := func(name string, d, lo, hi time.Duration) {
		t.Helper()
		if d < lo || d > hi {
			t.Errorf("%s delay = %v, want in [%v, %v]", name, d, lo, hi)
		}
	}
	// Exponential: attempt 0 → 100ms, attempt 2 → 400ms (pre-jitter).
	within("attempt0", c.backoff(0, 0), 75*time.Millisecond, 125*time.Millisecond)
	within("attempt2", c.backoff(2, 0), 300*time.Millisecond, 500*time.Millisecond)
	// Cap: a huge attempt collapses to MaxDelay.
	within("capped", c.backoff(40, 0), 1500*time.Millisecond, 2500*time.Millisecond)
	// A server hint above the exponential term wins...
	within("hinted", c.backoff(0, time.Second), 750*time.Millisecond, 1250*time.Millisecond)
	// ...but a hint below it does not shrink the computed delay.
	within("small-hint", c.backoff(2, 50*time.Millisecond), 300*time.Millisecond, 500*time.Millisecond)
}

// TestDoRetriesTransient drives do() against a scripted server:
// transient statuses are retried until success, the API key rides on
// every attempt, and the Retry-After hint is surfaced.
func TestDoRetriesTransient(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get("X-API-Key"); got != "k" {
			t.Errorf("attempt without API key (got %q)", got)
		}
		switch hits.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
		case 2:
			http.Error(w, `{"error":"flaky"}`, http.StatusServiceUnavailable)
		default:
			w.Write([]byte(`{"id":"j000001","state":"queued"}`))
		}
	}))
	defer ts.Close()

	c := New(Config{Base: ts.URL, APIKey: "k", MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 1})
	sr, err := c.Submit(context.Background(), map[string]any{"benches": []string{"median"}})
	if err != nil {
		t.Fatal(err)
	}
	if sr.ID != "j000001" || hits.Load() != 3 {
		t.Errorf("id=%q hits=%d, want j000001 after 3 attempts", sr.ID, hits.Load())
	}
}

// TestDoPermanentFailsFast pins that client errors are not retried.
func TestDoPermanentFailsFast(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"bad spec"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := New(Config{Base: ts.URL, MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 1})
	_, err := c.Submit(context.Background(), map[string]any{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if apiErr.Message != "bad spec" {
		t.Errorf("message = %q", apiErr.Message)
	}
	if hits.Load() != 1 {
		t.Errorf("400 was attempted %d times, want 1", hits.Load())
	}
}

// TestDoGivesUp pins the attempt budget: persistent overload surfaces
// the last refusal (with its Retry-After hint) after MaxAttempts tries.
func TestDoGivesUp(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"still shedding"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := New(Config{Base: ts.URL, MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1})
	start := time.Now()
	_, err := c.Submit(context.Background(), map[string]any{})
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("err = %v, want giving-up wrapper", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.RetryAfterHint() != time.Second {
		t.Errorf("err chain lost the APIError/Retry-After: %v", err)
	}
	if hits.Load() != 3 {
		t.Errorf("attempts = %d, want 3", hits.Load())
	}
	// The two waits honored the 1s hint (with -25% jitter floor).
	if elapsed := time.Since(start); elapsed < 1500*time.Millisecond {
		t.Errorf("gave up after %v; Retry-After hints were not honored", elapsed)
	}
}
