// Package mem models the single-cycle SRAM macros attached to the
// simulated core: a big-endian, word-addressable flat memory with separate
// instruction and data regions, alignment checking, and simple access
// accounting. The paper's core uses single-cycle instruction and data
// SRAMs, so no wait states are modelled.
//
// mem is a leaf of the dependency graph; cpu executes against it,
// bench extracts kernel outputs from it, and the mc engine keeps one
// worker-private Memory per goroutine.
package mem

import "fmt"

// Region boundaries of the default memory map. The text segment of the
// assembler lands in the instruction region, .data in the data region.
const (
	IMemBase = 0x00000000
	IMemSize = 0x00040000 // 256 KiB instruction SRAM
	DMemBase = 0x00040000
	DMemSize = 0x00040000 // 256 KiB data SRAM
)

// AccessError reports an out-of-range or misaligned access. The simulator
// converts it into a bus-error trap, which ends a faulty run.
type AccessError struct {
	Addr  uint32
	Size  int
	Write bool
	Why   string
}

func (e *AccessError) Error() string {
	kind := "load"
	if e.Write {
		kind = "store"
	}
	return fmt.Sprintf("mem: %s of %d bytes at 0x%08x: %s", kind, e.Size, e.Addr, e.Why)
}

// span is a half-open dirty byte range [lo, hi). The zero value is the
// empty span.
type span struct{ lo, hi uint32 }

func (s *span) add(lo, hi uint32) {
	if s.lo >= s.hi {
		s.lo, s.hi = lo, hi
		return
	}
	if lo < s.lo {
		s.lo = lo
	}
	if hi > s.hi {
		s.hi = hi
	}
}

// Memory is the unified memory of the simulated system.
type Memory struct {
	bytes []byte

	// dirty holds per-region watermarks of possibly-nonzero bytes
	// (index 0: instruction SRAM, 1: data SRAM). Every byte outside the
	// dirty spans is zero, which lets Reset and CloneFrom touch only the
	// written ranges instead of the full 512 KiB — the difference
	// between a ~12 µs memclr and a sub-microsecond one per fault trial.
	dirty [2]span

	// Access statistics, useful for benchmark characterization.
	Loads  uint64
	Stores uint64
}

// New returns a zeroed memory covering both SRAM regions.
func New() *Memory {
	return &Memory{bytes: make([]byte, IMemSize+DMemSize)}
}

// mark records [lo, hi) as written, splitting at the region boundary.
// Aligned word/half/byte accesses never straddle it; only LoadImage can.
func (m *Memory) mark(lo, hi uint32) {
	if lo < DMemBase {
		end := hi
		if end > DMemBase {
			end = DMemBase
		}
		m.dirty[0].add(lo, end)
	}
	if hi > DMemBase {
		start := lo
		if start < DMemBase {
			start = DMemBase
		}
		m.dirty[1].add(start, hi)
	}
}

// Reset zeroes the memory and the access counters. Only the dirty spans
// are cleared; everything else is zero by invariant.
func (m *Memory) Reset() {
	for i, d := range m.dirty {
		if d.lo < d.hi {
			clear(m.bytes[d.lo:d.hi])
		}
		m.dirty[i] = span{}
	}
	m.Loads, m.Stores = 0, 0
}

// CloneFrom makes m byte-identical to src, including access counters.
// Cost is proportional to the union of both memories' dirty spans, not
// the full address space — the copy-on-write primitive behind batched
// fault trials, where one walker image is cloned per forked trial.
func (m *Memory) CloneFrom(src *Memory) {
	for i := range m.dirty {
		d, s := m.dirty[i], src.dirty[i]
		// Zero whatever m dirtied outside src's span, then copy src's.
		if d.lo < d.hi {
			clear(m.bytes[d.lo:d.hi])
		}
		if s.lo < s.hi {
			copy(m.bytes[s.lo:s.hi], src.bytes[s.lo:s.hi])
		}
		m.dirty[i] = s
	}
	m.Loads, m.Stores = src.Loads, src.Stores
}

// Size returns the total number of bytes backed by the memory.
func (m *Memory) Size() uint32 { return uint32(len(m.bytes)) }

func (m *Memory) check(addr uint32, size int, write bool) error {
	if uint64(addr)+uint64(size) > uint64(len(m.bytes)) {
		return &AccessError{Addr: addr, Size: size, Write: write, Why: "out of range"}
	}
	if addr%uint32(size) != 0 {
		return &AccessError{Addr: addr, Size: size, Write: write, Why: "misaligned"}
	}
	return nil
}

// LoadWord reads a big-endian 32-bit word.
func (m *Memory) LoadWord(addr uint32) (uint32, error) {
	if err := m.check(addr, 4, false); err != nil {
		return 0, err
	}
	m.Loads++
	b := m.bytes[addr:]
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
}

// LoadHalf reads a big-endian 16-bit halfword (zero-extended by the CPU).
func (m *Memory) LoadHalf(addr uint32) (uint16, error) {
	if err := m.check(addr, 2, false); err != nil {
		return 0, err
	}
	m.Loads++
	b := m.bytes[addr:]
	return uint16(b[0])<<8 | uint16(b[1]), nil
}

// LoadByte reads one byte.
func (m *Memory) LoadByte(addr uint32) (uint8, error) {
	if err := m.check(addr, 1, false); err != nil {
		return 0, err
	}
	m.Loads++
	return m.bytes[addr], nil
}

// StoreWord writes a big-endian 32-bit word.
func (m *Memory) StoreWord(addr uint32, v uint32) error {
	if err := m.check(addr, 4, true); err != nil {
		return err
	}
	m.Stores++
	m.mark(addr, addr+4)
	b := m.bytes[addr:]
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
	return nil
}

// StoreHalf writes a big-endian 16-bit halfword.
func (m *Memory) StoreHalf(addr uint32, v uint16) error {
	if err := m.check(addr, 2, true); err != nil {
		return err
	}
	m.Stores++
	m.mark(addr, addr+2)
	b := m.bytes[addr:]
	b[0], b[1] = byte(v>>8), byte(v)
	return nil
}

// StoreByte writes one byte.
func (m *Memory) StoreByte(addr uint32, v uint8) error {
	if err := m.check(addr, 1, true); err != nil {
		return err
	}
	m.Stores++
	m.mark(addr, addr+1)
	m.bytes[addr] = v
	return nil
}

// FetchWord reads an instruction word. Fetches are not counted as data
// loads.
func (m *Memory) FetchWord(addr uint32) (uint32, error) {
	if err := m.check(addr, 4, false); err != nil {
		return 0, err
	}
	b := m.bytes[addr:]
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
}

// LoadImage copies a byte image to base without touching the counters;
// used by the program loader.
func (m *Memory) LoadImage(base uint32, img []byte) error {
	if uint64(base)+uint64(len(img)) > uint64(len(m.bytes)) {
		return &AccessError{Addr: base, Size: len(img), Write: true, Why: "image out of range"}
	}
	if len(img) > 0 {
		m.mark(base, base+uint32(len(img)))
	}
	copy(m.bytes[base:], img)
	return nil
}

// ReadWords bulk-reads n words starting at base; used by benchmark output
// extraction. It bypasses the access counters.
func (m *Memory) ReadWords(base uint32, n int) ([]uint32, error) {
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		if err := m.check(base+uint32(4*i), 4, false); err != nil {
			return nil, err
		}
		b := m.bytes[base+uint32(4*i):]
		out[i] = uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	}
	return out, nil
}

// WriteWords bulk-writes words starting at base, bypassing the counters;
// used by benchmark input generators.
func (m *Memory) WriteWords(base uint32, ws []uint32) error {
	for i, w := range ws {
		addr := base + uint32(4*i)
		if uint64(addr)+4 > uint64(len(m.bytes)) || addr%4 != 0 {
			return &AccessError{Addr: addr, Size: 4, Write: true, Why: "out of range or misaligned"}
		}
		m.mark(addr, addr+4)
		b := m.bytes[addr:]
		b[0], b[1], b[2], b[3] = byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
	}
	return nil
}
