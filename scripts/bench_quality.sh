#!/usr/bin/env bash
# Tracks the cost of per-trial quality scoring: runs the paired
# quality/boolean trial benchmarks (median, kmeans, matmult8 — matched
# Specs, the boolean side approximating the pre-quality engine via the
# qualityDisabled hook) and writes the per-kernel overhead ratios as
# BENCH_quality.json at the repo root. The acceptance metric: the
# quality path costs at most 10% over the boolean verdict on every
# kernel. Also re-runs the cache no-alias test against a warm store —
# a pre-quality checkpoint must never be served to a quality-aware
# grid (0 false cache hits).
#
#   ./scripts/bench_quality.sh            # default -benchtime 20x
#   BENCHTIME=50x ./scripts/bench_quality.sh
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-20x}"
max_overhead="${MAX_OVERHEAD:-1.10}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Warm-store no-alias assertion: plants a poisoned Point under every
# pre-quality cell key and fails on a single false cache hit.
go test ./internal/mc/ -run 'TestQualityCellKeyClassNoAlias' -count 1

go test -run '^$' \
  -bench 'BenchmarkTrials(Median|KMeans|MatMult8)(Quality|Boolean)$' \
  -benchtime "$benchtime" -count 1 ./internal/mc/ | tee "$raw"

awk -v benchtime="$benchtime" -v max="$max_overhead" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    ns[name] = $3
    lines[n++] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", name, $2, $3)
  }
  END {
    print "{"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    print "  \"results\": ["
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n - 1 ? "," : "")
    print "  ],"
    fail = 0
    m = split("Median KMeans MatMult8", kernels, " ")
    for (i = 1; i <= m; i++) {
      k = kernels[i]
      q = ns["BenchmarkTrials" k "Quality"]
      b = ns["BenchmarkTrials" k "Boolean"]
      r = (b > 0 ? q / b : 0)
      ratio[k] = r
      if (r > max) fail = 1
    }
    printf "  \"max_overhead\": %s,\n", max
    printf "  \"overhead\": {"
    for (i = 1; i <= m; i++)
      printf "%s\"%s\": %.4f", (i > 1 ? ", " : ""), tolower(kernels[i]), ratio[kernels[i]]
    print "},"
    printf "  \"pass\": %s\n", (fail ? "false" : "true")
    print "}"
    exit fail
  }
' "$raw" > BENCH_quality.json || { cat BENCH_quality.json; echo "quality-path overhead exceeds ${max_overhead}x"; exit 1; }

cat BENCH_quality.json
echo "wrote BENCH_quality.json"
