// Quickstart: build the simulation stack, run the median benchmark under
// the paper's statistical fault-injection model (model C) at a handful of
// over-scaled frequencies, and print the application-level metrics.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The default configuration is the paper's case study: a 32-bit
	// OpenRISC-flavoured core in a synthetic 28 nm process, signed off
	// at 707 MHz at 0.7 V. A smaller DTA kernel keeps the quickstart
	// snappy; use the default 8192 for paper-fidelity statistics.
	cfg := repro.DefaultConfig()
	cfg.DTA.Cycles = 2048
	sys := repro.NewSystem(cfg)

	median, err := repro.BenchmarkByName("median")
	if err != nil {
		log.Fatal(err)
	}

	spec := repro.Spec{
		System: sys,
		Bench:  median,
		Model: repro.ModelSpec{
			Kind:  "C",   // the paper's statistical model
			Vdd:   0.7,   // volts
			Sigma: 0.010, // 10 mV supply noise
		},
		Trials: 40,
		Seed:   1,
	}

	fmt.Printf("STA limit at 0.7 V: %.0f MHz\n\n", sys.STALimitMHz(0.7))
	fmt.Printf("%8s %10s %10s %12s %12s\n",
		"f[MHz]", "finished", "correct", "FI/kCycle", "rel-err")
	freqs := []float64{700, 760, 790, 820, 850, 900}
	pts, err := repro.Sweep(spec, freqs)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		fmt.Printf("%8.0f %9.1f%% %9.1f%% %12.4f %11.2f%%\n",
			p.FreqMHz, p.FinishedPct, p.CorrectPct, p.FIRate, p.OutputErr)
	}
	if poff, ok := repro.PoFF(pts); ok {
		fmt.Printf("\npoint of first failure: %.0f MHz (%.1f%% above the STA limit)\n",
			poff, (poff/sys.STALimitMHz(0.7)-1)*100)
	}
}
