#!/usr/bin/env bash
# Tracks the cold-path perf trajectory of the pipelined concurrent
# resolver: runs 8 concurrent cold submissions of one multi-benchmark,
# multi-model grid deduped through the singleflight caches of a shared
# System against the same 8 submissions each paying its builds
# privately on the pre-pipelining serial path, plus the lone-submission
# pipelined/serial pair, captures CPU and allocation profiles of the
# cold runs, and writes the results plus the headline speedup ratio as
# BENCH_cold.json at the repo root. The deduped/duplicated ratio is the
# acceptance metric of the pipelined cold path (>= 3x); CI asserts it
# from a fresh run and uploads the profiles as artifacts. The per-op
# build counters are the singleflight evidence: deduped must report
# exactly one build per distinct key (8 models, 2 goldens, 8 hazards
# for this grid), duplicated 8x that.
#
#   ./scripts/bench_cold.sh            # default -benchtime 3x
#   BENCHTIME=10x ./scripts/bench_cold.sh
#
# Profiles land in PROFILE_DIR (default bench_profiles/, git-ignored):
#   go tool pprof bench_profiles/cold_cpu.pprof
#   go tool pprof -sample_index=alloc_space bench_profiles/cold_mem.pprof
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-3x}"
profdir="${PROFILE_DIR:-bench_profiles}"
mkdir -p "$profdir"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
  -bench 'BenchmarkColdSubmissionsDeduped$|BenchmarkColdSubmissionsDuplicated$|BenchmarkColdGridPipelined$|BenchmarkColdGridSerial$' \
  -benchtime "$benchtime" -count 1 -benchmem \
  -cpuprofile "$profdir/cold_cpu.pprof" \
  -memprofile "$profdir/cold_mem.pprof" \
  . | tee "$raw"

awk -v benchtime="$benchtime" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    ns[name] = $3
    extra = ""
    # Trailing "<value> <unit>" metric pairs: the singleflight build
    # counters reported by the contention benches.
    for (i = 5; i + 1 <= NF; i += 2) {
      unit = $(i + 1)
      if (unit == "models-built" || unit == "goldens-recorded" || unit == "hazards-built") {
        key = unit
        gsub(/-/, "_", key)
        extra = extra sprintf(", \"%s\": %.0f", key, $i)
      }
    }
    lines[n++] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s%s}", name, $2, $3, extra)
  }
  END {
    print "{"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    print "  \"results\": ["
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n - 1 ? "," : "")
    print "  ],"
    dd = ns["BenchmarkColdSubmissionsDeduped"]
    dup = ns["BenchmarkColdSubmissionsDuplicated"]
    pipe = ns["BenchmarkColdGridPipelined"]
    serial = ns["BenchmarkColdGridSerial"]
    printf "  \"duplicated_over_deduped\": %.2f,\n", (dd > 0 ? dup / dd : 0)
    printf "  \"serial_over_pipelined\": %.2f\n", (pipe > 0 ? serial / pipe : 0)
    print "}"
  }
' "$raw" > BENCH_cold.json

echo "wrote BENCH_cold.json; profiles in $profdir/"
