package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/mc"
)

func TestWriteSeriesCSV(t *testing.T) {
	series := []Series{
		{Label: "a", Points: []mc.Point{
			{FreqMHz: 700, FinishedPct: 100, CorrectPct: 100, Trials: 10},
			{FreqMHz: 800, FinishedPct: 50, CorrectPct: 25, FIRate: 1.5, OutputErr: 12.5, Trials: 10},
		}},
		{Label: "b", Points: []mc.Point{{FreqMHz: 900, Trials: 5}}},
	}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("rows = %d, want header + 3", len(recs))
	}
	if recs[0][0] != "series" || recs[2][0] != "a" || recs[3][0] != "b" {
		t.Errorf("unexpected layout: %v", recs)
	}
	if recs[2][4] != "1.5" {
		t.Errorf("FI rate cell = %q", recs[2][4])
	}
}

func TestWriteFig7CSV(t *testing.T) {
	curves := map[string][]Fig7Point{
		"sigma=0mV": {{Vdd: 0.7, NormalizedPower: 1, AvgRelErrPct: 0, FinishedPct: 100}},
	}
	var buf bytes.Buffer
	if err := WriteFig7CSV(&buf, curves); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sigma=0mV") || !strings.Contains(out, "normalized_power") {
		t.Errorf("fig7 csv missing content:\n%s", out)
	}
}

func TestWriteCDFCSV(t *testing.T) {
	curves := map[string][]float64{
		"freqMHz":       {700, 800},
		"mul.bit24@0.7": {0, 0.5},
		"add.bit3@0.7":  {0, 0},
	}
	var buf bytes.Buffer
	if err := WriteCDFCSV(&buf, curves); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("rows = %d", len(recs))
	}
	// Columns sorted: add before mul.
	if recs[0][1] != "add.bit3@0.7" || recs[0][2] != "mul.bit24@0.7" {
		t.Errorf("column order: %v", recs[0])
	}
	if recs[2][2] != "0.5" {
		t.Errorf("value cell = %q", recs[2][2])
	}
	// Missing axis errors.
	if err := WriteCDFCSV(&buf, map[string][]float64{"x": {1}}); err == nil {
		t.Errorf("missing freqMHz axis accepted")
	}
}
