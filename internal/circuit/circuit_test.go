package circuit

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/gates"
	"repro/internal/isa"
)

// The calibrated 32-bit ALU is moderately expensive to build, so tests
// share one instance.
var (
	aluOnce sync.Once
	alu     *ALU
)

func testALU() *ALU {
	aluOnce.Do(func() { alu = New(DefaultConfig()) })
	return alu
}

func TestUnitsFunctionallyCorrect(t *testing.T) {
	a := testALU()
	rng := rand.New(rand.NewSource(11))
	for k := UnitKind(0); k < NumUnits; k++ {
		u := a.Units[k]
		sim := gates.NewSim(u.Netlist, u.Netlist.DelaysAt(1))
		for i := 0; i < 300; i++ {
			x, y := rng.Uint32(), rng.Uint32()
			if k == UnitSll || k == UnitSrl || k == UnitSra {
				y = rng.Uint32() & 31
			}
			got, _ := EvalUnit(u, sim, x, y)
			want := ReferenceResult(k, x, y)
			if got != want {
				t.Fatalf("%v(%08x, %08x) = %08x, want %08x", k, x, y, got, want)
			}
		}
	}
}

func TestCompareFlagFunctional(t *testing.T) {
	a := testALU()
	u := a.Units[UnitCompare]
	if !u.HasFlag() {
		t.Fatal("compare unit has no flag endpoint")
	}
	sim := gates.NewSim(u.Netlist, u.Netlist.DelaysAt(1))
	// The flag tree is wired to the signed-less-than branch.
	cases := []struct {
		x, y uint32
		want bool
	}{
		{5, 5, false}, {5, 6, true}, {6, 5, false},
		{0xFFFFFFFF, 0, true}, // -1 < 0 signed
		{0, 0xFFFFFFFF, false},
		{0x80000000, 0x7FFFFFFF, true}, // INT_MIN < INT_MAX
	}
	for _, c := range cases {
		_, fl := EvalUnit(u, sim, c.x, c.y)
		if fl != c.want {
			t.Errorf("flag(%d,%d) = %v, want %v", c.x, c.y, fl, c.want)
		}
	}
}

func TestTimedMatchesFunctionalOnUnits(t *testing.T) {
	a := testALU()
	for _, k := range []UnitKind{UnitAdd, UnitSub, UnitMul, UnitSra, UnitXor} {
		u := a.Units[k]
		timed := gates.NewSim(u.Netlist, u.Netlist.DelaysAt(1))
		in := PackInputs(nil, 0, 0)
		timed.Settle(in)
		rng := rand.New(rand.NewSource(int64(k) + 7))
		for i := 0; i < 100; i++ {
			x, y := rng.Uint32(), rng.Uint32()
			timed.Cycle(PackInputs(in, x, y))
			var got uint32
			for bit := 0; bit < Width; bit++ {
				if timed.Value(u.Endpoint[bit]) {
					got |= 1 << uint(bit)
				}
			}
			if want := ReferenceResult(k, x, y); got != want {
				t.Fatalf("%v timed (%08x,%08x) = %08x, want %08x", k, x, y, got, want)
			}
		}
	}
}

func TestCalibrationHitsSTATarget(t *testing.T) {
	a := testALU()
	limit := a.STALimitMHz()
	if math.Abs(limit-a.Config.STAFreqMHz) > 0.01 {
		t.Errorf("STA limit = %v MHz, want %v", limit, a.Config.STAFreqMHz)
	}
	avail := a.TargetPeriodPs - a.Config.SetupPs
	for k := UnitKind(0); k < NumUnits; k++ {
		u := a.Units[k]
		want := avail * a.Config.tightness(k)
		if math.Abs(u.WorstPs-want) > 1e-6*want {
			t.Errorf("%v worst %v ps, want %v", k, u.WorstPs, want)
		}
	}
}

func TestDataPathUnitsFormTimingWall(t *testing.T) {
	a := testALU()
	// Add, sub, compare and mul all sit exactly at the constraint;
	// shifter and logic have slack.
	for _, k := range []UnitKind{UnitAdd, UnitSub, UnitCompare, UnitMul} {
		if math.Abs(a.Units[k].WorstPs-a.Units[UnitAdd].WorstPs) > 1e-6 {
			t.Errorf("%v not at the timing wall: %v vs %v", k,
				a.Units[k].WorstPs, a.Units[UnitAdd].WorstPs)
		}
	}
	if a.Units[UnitSll].WorstPs >= a.Units[UnitAdd].WorstPs {
		t.Errorf("shifter has no slack")
	}
	if a.Units[UnitAnd].WorstPs >= a.Units[UnitSll].WorstPs {
		t.Errorf("logic unit not faster than shifter")
	}
}

func TestWorstEndpointCoversAllUnits(t *testing.T) {
	a := testALU()
	we := a.WorstEndpointPs()
	for k := UnitKind(0); k < NumUnits; k++ {
		u := a.Units[k]
		arr := u.Netlist.STA(u.Netlist.DelaysAt(1))
		for i := 0; i < Width; i++ {
			if arr[u.Endpoint[i]] > we[i]+1e-9 {
				t.Fatalf("endpoint %d: unit %v arrival %v exceeds recorded worst %v",
					i, k, arr[u.Endpoint[i]], we[i])
			}
		}
	}
	if we[FlagEndpoint] <= 0 {
		t.Errorf("flag endpoint has no worst path")
	}
}

func TestUnitOfMapping(t *testing.T) {
	cases := map[isa.Op]UnitKind{
		isa.OpAdd: UnitAdd, isa.OpAddi: UnitAdd, isa.OpSub: UnitSub,
		isa.OpMul: UnitMul, isa.OpMuli: UnitMul,
		isa.OpSfeq: UnitCompare, isa.OpSfltsi: UnitCompare,
		isa.OpSll: UnitSll, isa.OpSrli: UnitSrl, isa.OpSrai: UnitSra,
		isa.OpAndi: UnitAnd, isa.OpOr: UnitOr, isa.OpXori: UnitXor,
	}
	for op, want := range cases {
		if got := UnitOf(op); got != want {
			t.Errorf("UnitOf(%v) = %v, want %v", op, got, want)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("UnitOf on non-ALU op did not panic")
			}
		}()
		UnitOf(isa.OpLwz)
	}()
}

func TestPackInputsRoundTrip(t *testing.T) {
	f := func(a, b uint32) bool {
		in := PackInputs(nil, a, b)
		var ga, gb uint32
		for i := 0; i < Width; i++ {
			if in[i] {
				ga |= 1 << uint(i)
			}
			if in[Width+i] {
				gb |= 1 << uint(i)
			}
		}
		return ga == a && gb == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPeriodFreqConversions(t *testing.T) {
	if p := PeriodPs(707); math.Abs(p-1414.427) > 0.01 {
		t.Errorf("period(707MHz) = %v ps", p)
	}
	for _, f := range []float64{100, 707, 1150, 2000} {
		if got := FreqMHz(PeriodPs(f)); math.Abs(got-f) > 1e-9 {
			t.Errorf("round trip %v -> %v", f, got)
		}
	}
}

func TestMulDynamicArrivalsCrowdTheLimit(t *testing.T) {
	// The structural property the reproduction relies on: with random
	// operands, the multiplier's dynamic arrivals reach much closer to
	// its static worst path than the adder's do, so l.mul fails first
	// under over-scaling (paper Figs. 2 and 4).
	a := testALU()
	maxRatio := func(k UnitKind, cycles int) float64 {
		u := a.Units[k]
		sim := gates.NewSim(u.Netlist, u.Netlist.DelaysAt(1))
		rng := rand.New(rand.NewSource(99))
		in := PackInputs(nil, rng.Uint32(), rng.Uint32())
		sim.Settle(in)
		worstDyn := 0.0
		for i := 0; i < cycles; i++ {
			sim.Cycle(PackInputs(in, rng.Uint32(), rng.Uint32()))
			for bit := 0; bit < Width; bit++ {
				if arr := sim.Arrival(u.Endpoint[bit]); arr > worstDyn {
					worstDyn = arr
				}
			}
		}
		return worstDyn / u.WorstPs
	}
	mul := maxRatio(UnitMul, 150)
	add := maxRatio(UnitAdd, 150)
	if mul <= add {
		t.Errorf("mul dynamic/static ratio %.3f not above add ratio %.3f", mul, add)
	}
	if mul < 0.7 {
		t.Errorf("mul ratio %.3f suspiciously low", mul)
	}
	if add > 0.99 {
		t.Errorf("add ratio %.3f leaves no over-scaling headroom", add)
	}
}

func TestDeterministicALU(t *testing.T) {
	a := New(DefaultConfig())
	b := New(DefaultConfig())
	if a.Units[UnitMul].WorstPs != b.Units[UnitMul].WorstPs {
		t.Errorf("ALU generation not deterministic")
	}
	wa, wb := a.WorstEndpointPs(), b.WorstEndpointPs()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("endpoint %d worst differs", i)
		}
	}
}
