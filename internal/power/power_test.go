package power

import (
	"math"
	"testing"

	"repro/internal/timing"
)

func TestReferencePoints(t *testing.T) {
	m := Default()
	if got := m.ActiveUWPerMHz(0.6); math.Abs(got-10.9) > 1e-9 {
		t.Errorf("active @0.6V = %v, want 10.9", got)
	}
	if got := m.ActiveUWPerMHz(0.7); math.Abs(got-15.0) > 1e-9 {
		t.Errorf("active @0.7V = %v, want 15.0", got)
	}
	if got := m.LeakFrac(0.6); got != 0.02 {
		t.Errorf("leak frac @0.6V = %v", got)
	}
	if got := m.LeakFrac(0.7); got != 0.03 {
		t.Errorf("leak frac @0.7V = %v", got)
	}
}

func TestTotalIncludesLeakage(t *testing.T) {
	m := Default()
	tot := m.TotalUW(0.7, 707)
	active := 15.0 * 707
	if tot <= active {
		t.Errorf("total %v not above active %v", tot, active)
	}
	// Leakage should be 3% of the total.
	if frac := (tot - active) / tot; math.Abs(frac-0.03) > 1e-9 {
		t.Errorf("leak fraction of total = %v, want 0.03", frac)
	}
}

func TestNormalizedMonotoneInV(t *testing.T) {
	m := Default()
	prev := 0.0
	for v := 0.60; v <= 0.70001; v += 0.005 {
		p := m.Normalized(v, 0.7, 707)
		if p <= prev {
			t.Fatalf("normalized power not increasing at %v", v)
		}
		prev = p
	}
	if got := m.Normalized(0.7, 0.7, 707); math.Abs(got-1) > 1e-12 {
		t.Errorf("normalized at nominal = %v", got)
	}
}

func TestFig7Landmarks(t *testing.T) {
	// Paper Fig. 7: the no-noise PoFF is reached at about 0.667 V
	// (paper: 0.93x power; our quadratic-through-references model gives
	// about 0.91x) and 22% error at 0.657 V with about 0.88x power.
	m := Default()
	vm := timing.DefaultVddDelay()
	s, err := FromHeadroom(m, vm, 0.7, 707, 1.114)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.EquivalentV-0.667) > 0.003 {
		t.Errorf("equivalent V = %v, want about 0.667", s.EquivalentV)
	}
	if s.NormalizedPower < 0.89 || s.NormalizedPower > 0.94 {
		t.Errorf("normalized power at PoFF = %v, want about 0.91 (paper 0.93)", s.NormalizedPower)
	}
	p657 := m.Normalized(0.657, 0.7, 707)
	if math.Abs(p657-0.88) > 0.015 {
		t.Errorf("power @0.657V = %v, want about 0.88", p657)
	}
}

func TestFromHeadroomRejectsBelowOne(t *testing.T) {
	if _, err := FromHeadroom(Default(), timing.DefaultVddDelay(), 0.7, 707, 0.9); err == nil {
		t.Errorf("headroom below 1 must error")
	}
}
