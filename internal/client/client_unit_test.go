package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryableCodes(t *testing.T) {
	for code, want := range map[int]bool{
		http.StatusTooManyRequests:     true,
		http.StatusBadGateway:          true,
		http.StatusServiceUnavailable:  true,
		http.StatusGatewayTimeout:      true,
		http.StatusBadRequest:          false,
		http.StatusNotFound:            false,
		http.StatusConflict:            false,
		http.StatusInternalServerError: false,
	} {
		if got := retryable(code); got != want {
			t.Errorf("retryable(%d) = %v, want %v", code, got, want)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for _, tc := range []struct {
		h    string
		want time.Duration
	}{
		{"", 0},
		{"3", 3 * time.Second},
		{"0", 0},
		{"-1", 0},
		{"soon", 0},
		// RFC 9110 HTTP-date, all three accepted formats.
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{now.Add(2 * time.Minute).Format(time.RFC850), 2 * time.Minute},
		{now.Add(30 * time.Second).Format(time.ANSIC), 30 * time.Second},
		// Dates in the past (or right now) carry no usable wait.
		{now.Format(http.TimeFormat), 0},
		{now.Add(-time.Hour).Format(http.TimeFormat), 0},
		// A date in a non-HTTP format is not a hint.
		{now.Add(time.Minute).Format(time.RFC3339), 0},
	} {
		if got := parseRetryAfter(tc.h, now); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.h, got, tc.want)
		}
	}
}

// TestBackoff pins the delay discipline: exponential growth from
// BaseDelay, a MaxDelay cap, ±25% jitter on the exponential term, and a
// server Retry-After hint acting as a floor with upward-only jitter.
func TestBackoff(t *testing.T) {
	c := New(Config{Base: "http://x", BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second, Seed: 1})
	within := func(name string, d, lo, hi time.Duration) {
		t.Helper()
		if d < lo || d > hi {
			t.Errorf("%s delay = %v, want in [%v, %v]", name, d, lo, hi)
		}
	}
	// Exponential: attempt 0 → 100ms, attempt 2 → 400ms (pre-jitter).
	within("attempt0", c.backoff(0, 0), 75*time.Millisecond, 125*time.Millisecond)
	within("attempt2", c.backoff(2, 0), 300*time.Millisecond, 500*time.Millisecond)
	// Cap: a huge attempt collapses to MaxDelay.
	within("capped", c.backoff(40, 0), 1500*time.Millisecond, 2500*time.Millisecond)
	// A server hint above the exponential term wins, jittered upward
	// only — never below the advertised wait.
	within("hinted", c.backoff(0, time.Second), time.Second, 1250*time.Millisecond)
	// ...but a hint below it does not shrink the computed delay.
	within("small-hint", c.backoff(2, 50*time.Millisecond), 300*time.Millisecond, 500*time.Millisecond)
	// A hint just under the exponential term still floors the downward
	// jitter: 390ms hint vs 400ms term means never less than 390ms.
	for i := 0; i < 64; i++ {
		within("floor", c.backoff(2, 390*time.Millisecond), 390*time.Millisecond, 500*time.Millisecond)
	}
}

// TestBackoffHintIsFloor hammers the hinted path: across many draws the
// delay must never dip below the advertised wait (the old ±25% jitter
// could return at 0.75x the hint and land back in the same overload).
func TestBackoffHintIsFloor(t *testing.T) {
	c := New(Config{Base: "http://x", BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second, Seed: 7})
	const hint = 2 * time.Second
	var spread bool
	for i := 0; i < 256; i++ {
		d := c.backoff(0, hint)
		if d < hint {
			t.Fatalf("draw %d: delay %v below the Retry-After floor %v", i, d, hint)
		}
		if d > hint+hint/4 {
			t.Fatalf("draw %d: delay %v above the +25%% jitter ceiling", i, d)
		}
		if d != hint {
			spread = true
		}
	}
	if !spread {
		t.Error("hinted delays never jittered; the herd stays synchronized")
	}
}

// TestUnseededClientsDiverge pins the herd fix at the seed level: two
// clients built without an explicit Seed must draw different jitter
// streams even when created back to back within one clock tick.
func TestUnseededClientsDiverge(t *testing.T) {
	a := New(Config{Base: "http://x"})
	b := New(Config{Base: "http://x"})
	for i := 0; i < 8; i++ {
		if a.backoff(0, 0) != b.backoff(0, 0) {
			return
		}
	}
	t.Error("two unseeded clients drew identical 8-draw jitter sequences")
}

// TestDoRetriesTransient drives do() against a scripted server:
// transient statuses are retried until success, the API key rides on
// every attempt, and the Retry-After hint is surfaced.
func TestDoRetriesTransient(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get("X-API-Key"); got != "k" {
			t.Errorf("attempt without API key (got %q)", got)
		}
		switch hits.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
		case 2:
			http.Error(w, `{"error":"flaky"}`, http.StatusServiceUnavailable)
		default:
			w.Write([]byte(`{"id":"j000001","state":"queued"}`))
		}
	}))
	defer ts.Close()

	c := New(Config{Base: ts.URL, APIKey: "k", MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 1})
	sr, err := c.Submit(context.Background(), map[string]any{"benches": []string{"median"}})
	if err != nil {
		t.Fatal(err)
	}
	if sr.ID != "j000001" || hits.Load() != 3 {
		t.Errorf("id=%q hits=%d, want j000001 after 3 attempts", sr.ID, hits.Load())
	}
}

// TestDoPermanentFailsFast pins that client errors are not retried.
func TestDoPermanentFailsFast(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"bad spec"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := New(Config{Base: ts.URL, MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 1})
	_, err := c.Submit(context.Background(), map[string]any{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if apiErr.Message != "bad spec" {
		t.Errorf("message = %q", apiErr.Message)
	}
	if hits.Load() != 1 {
		t.Errorf("400 was attempted %d times, want 1", hits.Load())
	}
}

// TestDoGivesUp pins the attempt budget: persistent overload surfaces
// the last refusal (with its Retry-After hint) after MaxAttempts tries.
func TestDoGivesUp(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"still shedding"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := New(Config{Base: ts.URL, MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1})
	start := time.Now()
	_, err := c.Submit(context.Background(), map[string]any{})
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("err = %v, want giving-up wrapper", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.RetryAfterHint() != time.Second {
		t.Errorf("err chain lost the APIError/Retry-After: %v", err)
	}
	if hits.Load() != 3 {
		t.Errorf("attempts = %d, want 3", hits.Load())
	}
	// The two waits honored the 1s hint (with -25% jitter floor).
	if elapsed := time.Since(start); elapsed < 1500*time.Millisecond {
		t.Errorf("gave up after %v; Retry-After hints were not honored", elapsed)
	}
}

// TestWatchReconnects drives Watch against a server that drops the
// stream twice before delivering the terminal event: first mid-stream
// after one progress snapshot (panic aborts the handler, simulating a
// daemon drain or connection reset), then with a transient 503. Watch
// must resume both times under the backoff policy and return nil on
// "done".
func TestWatchReconnects(t *testing.T) {
	var conns atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs/j000001/events" {
			http.NotFound(w, r)
			return
		}
		switch conns.Add(1) {
		case 1:
			w.Header().Set("Content-Type", "text/event-stream")
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("event: progress\ndata: {\"done\":1,\"total\":4}\n\n"))
			w.(http.Flusher).Flush()
			panic(http.ErrAbortHandler) // cut the connection mid-stream
		case 2:
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
		default:
			w.Header().Set("Content-Type", "text/event-stream")
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("event: progress\ndata: {\"done\":4,\"total\":4}\n\n"))
			w.Write([]byte("event: done\ndata: {\"id\":\"j000001\",\"state\":\"done\"}\n\n"))
		}
	}))
	defer ts.Close()

	c := New(Config{Base: ts.URL, MaxAttempts: 4, BaseDelay: time.Millisecond, Seed: 1})
	var events []string
	err := c.Watch(context.Background(), "j000001", func(event string, data []byte) {
		events = append(events, event)
	})
	if err != nil {
		t.Fatalf("Watch = %v, want nil after reconnects", err)
	}
	if conns.Load() != 3 {
		t.Errorf("connections = %d, want 3 (drop, 503, done)", conns.Load())
	}
	want := []string{"progress", "progress", "done"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

// TestWatchPermanentError pins that a missing job is not retried
// forever: a 404 surfaces immediately as an APIError.
func TestWatchPermanentError(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
	}))
	defer ts.Close()

	c := New(Config{Base: ts.URL, MaxAttempts: 4, BaseDelay: time.Millisecond, Seed: 1})
	err := c.Watch(context.Background(), "gone", func(string, []byte) {})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("err = %v, want APIError 404", err)
	}
	if hits.Load() != 1 {
		t.Errorf("404 was attempted %d times, want 1", hits.Load())
	}
}
