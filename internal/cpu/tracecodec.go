// Delta codec for golden traces.
//
// A recorded Trace is dominated by its ALU event stream, whose fields
// are highly redundant: Prev almost always chains from the previous
// event's Result, Result is usually near operand A, store addresses
// walk small strides, and checkpoints are snapshots of monotonically
// growing counters. EncodeTrace exploits all of that with a
// varint/zigzag delta encoding plus a DEFLATE pass, shrinking persisted
// golden traces by well over the 2x the artifact-store tests pin,
// while DecodeTrace round-trips bit-exactly. internal/core stores
// encoded traces under the same artifact key as the legacy gob blobs
// and falls back to gob when the magic prefix is absent, so existing
// caches stay valid.

package cpu

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/isa"
)

// traceMagic prefixes delta-encoded traces; legacy gob payloads start
// with a gob type descriptor and can never collide with it.
const traceMagic = "FTRD1"

// EncodeTrace serializes a trace into the delta format.
func EncodeTrace(t *Trace) ([]byte, error) {
	if isa.NumOps > 64 {
		return nil, fmt.Errorf("cpu: op space outgrew the 6-bit event encoding")
	}
	body := make([]byte, 0, 8*len(t.Events))
	put := func(v uint64) { body = binary.AppendUvarint(body, v) }
	puts := func(v int64) { body = binary.AppendVarint(body, v) }

	put(t.CheckpointEvery)
	put(t.Cycles)
	put(t.KernelCycles)
	put(t.KernelALUCycles)
	put(t.Retired)
	body = append(body, byte(t.Status))
	put(uint64(len(t.Events)))
	put(uint64(len(t.Stores)))
	put(uint64(len(t.Checkpoints)))

	prevResult, chainSeeded := uint32(0), false
	for _, ev := range t.Events {
		b0 := byte(ev.Op) & 0x3f
		chained := chainSeeded && ev.Prev == prevResult
		if chained {
			b0 |= 1 << 6
		}
		b1 := ev.RD & 0x1f
		if ev.Flag {
			b1 |= 1 << 5
		}
		if ev.PrevFlag {
			b1 |= 1 << 6
		}
		body = append(body, b0, b1)
		put(uint64(ev.A))
		put(uint64(ev.B))
		puts(int64(int32(ev.Result - ev.A)))
		if !chained {
			put(uint64(ev.Prev))
		}
		prevResult, chainSeeded = ev.Result, true
	}

	prevAddr := uint32(0)
	for _, s := range t.Stores {
		body = append(body, s.Size)
		puts(int64(int32(s.Addr - prevAddr)))
		put(uint64(s.Val))
		prevAddr = s.Addr
	}

	var prev Checkpoint
	for _, cp := range t.Checkpoints {
		put(cp.Cycles - prev.Cycles)
		put(cp.KernelCycles - prev.KernelCycles)
		put(cp.KernelALUCycles - prev.KernelALUCycles)
		put(cp.Retired - prev.Retired)
		put(uint64(cp.EventIndex - prev.EventIndex))
		put(uint64(cp.StoreIndex - prev.StoreIndex))
		put(cp.Loads - prev.Loads)
		put(cp.Stores - prev.Stores)
		for i := range cp.OpCounts {
			put(cp.OpCounts[i] - prev.OpCounts[i])
		}
		var mask uint32
		for i, r := range cp.Regs {
			if r != prev.Regs[i] {
				mask |= 1 << i
			}
		}
		put(uint64(mask))
		for i, r := range cp.Regs {
			if mask&(1<<i) != 0 {
				put(uint64(r))
			}
		}
		put(uint64(cp.PC))
		put(uint64(cp.PrevEXResult))
		var fl byte
		if cp.Flag {
			fl |= 1
		}
		if cp.PrevFlag {
			fl |= 2
		}
		if cp.LastWasLoad {
			fl |= 4
		}
		if cp.InWindow {
			fl |= 8
		}
		body = append(body, fl, cp.LastLoadRD)
		prev = cp
	}

	var out bytes.Buffer
	out.WriteString(traceMagic)
	zw, err := flate.NewWriter(&out, flate.DefaultCompression)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(body); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// IsEncodedTrace reports whether a payload carries the delta format's
// magic prefix.
func IsEncodedTrace(b []byte) bool {
	return len(b) >= len(traceMagic) && string(b[:len(traceMagic)]) == traceMagic
}

// DecodeTrace parses a delta-encoded trace. Payloads without the magic
// prefix (or any truncated/corrupt body) yield an error; callers treat
// that as a cache miss.
func DecodeTrace(b []byte) (*Trace, error) {
	if !IsEncodedTrace(b) {
		return nil, fmt.Errorf("cpu: not a delta-encoded trace")
	}
	body, err := io.ReadAll(flate.NewReader(bytes.NewReader(b[len(traceMagic):])))
	if err != nil {
		return nil, fmt.Errorf("cpu: inflating trace: %w", err)
	}
	r := bytes.NewReader(body)
	var firstErr error
	get := func() uint64 {
		v, err := binary.ReadUvarint(r)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	gets := func() int64 {
		v, err := binary.ReadVarint(r)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	getb := func() byte {
		v, err := r.ReadByte()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}

	t := &Trace{}
	t.CheckpointEvery = get()
	t.Cycles = get()
	t.KernelCycles = get()
	t.KernelALUCycles = get()
	t.Retired = get()
	t.Status = Status(getb())
	nEvents, nStores, nCkpts := get(), get(), get()
	if firstErr != nil {
		return nil, fmt.Errorf("cpu: truncated trace header: %w", firstErr)
	}
	const maxCount = 1 << 30 // sanity bound against corrupt headers
	if nEvents > maxCount || nStores > maxCount || nCkpts > maxCount {
		return nil, fmt.Errorf("cpu: implausible trace counts %d/%d/%d", nEvents, nStores, nCkpts)
	}

	if nEvents > 0 {
		t.Events = make([]TraceEvent, nEvents)
	}
	prevResult := uint32(0)
	for i := range t.Events {
		b0, b1 := getb(), getb()
		ev := &t.Events[i]
		ev.Op = isa.Op(b0 & 0x3f)
		ev.RD = b1 & 0x1f
		ev.Flag = b1&(1<<5) != 0
		ev.PrevFlag = b1&(1<<6) != 0
		ev.A = uint32(get())
		ev.B = uint32(get())
		ev.Result = ev.A + uint32(gets())
		if b0&(1<<6) != 0 {
			ev.Prev = prevResult
		} else {
			ev.Prev = uint32(get())
		}
		prevResult = ev.Result
	}

	if nStores > 0 {
		t.Stores = make([]StoreRec, nStores)
	}
	prevAddr := uint32(0)
	for i := range t.Stores {
		s := &t.Stores[i]
		s.Size = getb()
		s.Addr = prevAddr + uint32(gets())
		s.Val = uint32(get())
		prevAddr = s.Addr
	}

	if nCkpts > 0 {
		t.Checkpoints = make([]Checkpoint, nCkpts)
	}
	var prev Checkpoint
	for i := range t.Checkpoints {
		cp := &t.Checkpoints[i]
		cp.Cycles = prev.Cycles + get()
		cp.KernelCycles = prev.KernelCycles + get()
		cp.KernelALUCycles = prev.KernelALUCycles + get()
		cp.Retired = prev.Retired + get()
		cp.EventIndex = prev.EventIndex + int(get())
		cp.StoreIndex = prev.StoreIndex + int(get())
		cp.Loads = prev.Loads + get()
		cp.Stores = prev.Stores + get()
		for j := range cp.OpCounts {
			cp.OpCounts[j] = prev.OpCounts[j] + get()
		}
		mask := uint32(get())
		cp.Regs = prev.Regs
		for j := range cp.Regs {
			if mask&(1<<j) != 0 {
				cp.Regs[j] = uint32(get())
			}
		}
		cp.PC = uint32(get())
		cp.PrevEXResult = uint32(get())
		fl := getb()
		cp.Flag = fl&1 != 0
		cp.PrevFlag = fl&2 != 0
		cp.LastWasLoad = fl&4 != 0
		cp.InWindow = fl&8 != 0
		cp.LastLoadRD = getb()
		prev = *cp
	}
	if firstErr != nil {
		return nil, fmt.Errorf("cpu: truncated trace body: %w", firstErr)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("cpu: %d trailing bytes after trace body", r.Len())
	}
	return t, nil
}
