package bench

import (
	"fmt"
	"strings"

	"repro/internal/circuit"
	"repro/internal/dta"
)

// Checksum kernel geometry. Phase 1 whitens ChecksumWords words with a
// fully unrolled logic-only sequence (load, xor, rotate via shifts and
// or, store — no adds or compares, so no low-onset ALU queries), and
// phase 2 folds the first ChecksumSumWords of them into one additive
// checksum with a tight compare-terminated loop. Under a
// frequency-dependent model the two phases fail at very different
// frequencies: logic and shifter paths hold to ~930+ MHz while the
// adder and comparator give way around ~790, so an operating point
// between the two concentrates every first fault in the short terminal
// phase — thousands of cycles past the last checkpoint. That makes the
// kernel the stress case for batched fault-trial execution (the shared
// golden prefix is long and the per-trial remainder short), and the
// benchmark the regression gate in scripts/bench_batch.sh builds on.
const (
	ChecksumWords    = 1024
	ChecksumSumWords = 96
	checksumKey      = 0x9e3779b9 // golden-ratio whitening constant
)

// Checksum returns the two-phase whiten-then-fold kernel. It is not
// part of All() (Table 1 fixtures iterate the paper's application
// kernels) but is reachable by name like the microkernels.
func Checksum() *Benchmark {
	return &Benchmark{
		Name:       "checksum",
		MetricName: "output mismatch",
		// The folding loop compares the 32-bit loop counter; whitening
		// exercises logic/shift units, which the default profile covers.
		Profile:     dta.Profile{circuit.UnitCompare: "u32"},
		OutSymbol:   "out",
		OutWords:    1,
		Metric:      MismatchPct,
		QualityName: "bit-exactness",
		Build:       buildChecksum,
	}
}

func buildChecksum(seed int64) (string, []uint32, error) {
	r := rng(seed)
	vals := make([]uint32, ChecksumWords)
	for i := range vals {
		vals[i] = r.Uint32()
	}

	// Bit-exact golden model: whiten every word, fold the first
	// ChecksumSumWords of the whitened buffer.
	whiten := func(v uint32) uint32 {
		x := v ^ checksumKey
		return x<<3 | x>>29
	}
	var sum uint32
	for i := 0; i < ChecksumSumWords; i++ {
		sum += whiten(vals[i])
	}
	want := []uint32{sum}

	var b strings.Builder
	fmt.Fprintf(&b, "; two-phase checksum: whiten %d words (unrolled, logic/shift only), fold %d\n",
		ChecksumWords, ChecksumSumWords)
	b.WriteString("\tl.movhi r1,hi(buf)\n")
	b.WriteString("\tl.ori   r1,r1,lo(buf)\n")
	fmt.Fprintf(&b, "\tl.movhi r2,0x%x\n", checksumKey>>16)
	fmt.Fprintf(&b, "\tl.ori   r2,r2,0x%x\n", checksumKey&0xffff)
	b.WriteString("\tl.sys 1                 ; open FI window\n")
	// Phase 1: no loop counter, no compares — every iteration is spelled
	// out with an immediate offset so the only ALU queries are the
	// high-onset logic and shift ops.
	for i := 0; i < ChecksumWords; i++ {
		off := 4 * i
		fmt.Fprintf(&b, "\tl.lwz  r5,%d(r1)\n", off)
		b.WriteString("\tl.xor  r5,r5,r2\n")
		b.WriteString("\tl.slli r6,r5,3\n")
		b.WriteString("\tl.srli r7,r5,29\n")
		b.WriteString("\tl.or   r5,r6,r7\n")
		fmt.Fprintf(&b, "\tl.sw   %d(r1),r5\n", off)
	}
	// Phase 2: the short folding loop — adds and a compare per
	// iteration, the kernel's only low-onset queries.
	fmt.Fprintf(&b, `	l.addi r3,r0,0          ; i = 0
	l.add  r4,r0,r0         ; sum = 0
	l.add  r9,r1,r0         ; p = &buf[0]
fold:
	l.lwz  r5,0(r9)
	l.add  r4,r4,r5
	l.addi r9,r9,4
	l.addi r3,r3,1
	l.sfltsi r3,%d
	l.bf   fold
	l.sys 2                 ; close FI window
	l.movhi r8,hi(out)
	l.ori   r8,r8,lo(out)
	l.sw   0(r8),r4
	l.sys 0
.data
out:
	.word 0
buf:
`, ChecksumSumWords)
	b.WriteString(wordList(vals))
	return b.String(), want, nil
}
