// Package bench provides the software workloads of the paper's case
// study (Table 1): median (bubble-sort, control-heavy), 16x16 matrix
// multiplication in 8- and 16-bit variants (compute-heavy), k-means
// clustering of 8 2-D points (mixed), and 10-node Dijkstra (graph
// search, control-heavy), plus the instruction microkernels behind
// Fig. 4.
//
// Each benchmark consists of an assembly kernel for the simulated core, a
// bit-exact Go golden model, the paper's output-error metric, and an
// operand Profile that selects matching DTA characterizations for its
// data widths (Sec. 4.1/4.3 of the paper evaluate 8/16/32-bit variants
// whose fault statistics differ through exactly this conditioning).
//
// In the dependency graph, bench builds on asm/isa/mem and the dta
// operand profiles; the mc grid engine, the experiments runners and the
// server's job specs consume benchmarks by name through it.
package bench

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/asm"
	"repro/internal/circuit"
	"repro/internal/dta"
	"repro/internal/mem"
)

// Benchmark describes one workload.
type Benchmark struct {
	Name       string
	MetricName string // the paper's output-error metric for this kernel
	Profile    dta.Profile
	// PerTrialInputs regenerates inputs (and golden outputs) for every
	// Monte-Carlo trial; the paper's microkernels draw fresh uniform
	// operands per run, while the application kernels use one fixed
	// characteristic input set.
	PerTrialInputs bool
	// PaperKCycles is Table 1's kernel cycle count (reference only).
	PaperKCycles float64

	// Build returns the assembly source and expected output words for
	// an input seed.
	Build func(seed int64) (src string, want []uint32, err error)
	// OutSymbol/OutWords locate the output buffer in the data image.
	OutSymbol string
	OutWords  int
	// Metric maps (got, want) to the paper's output-error value
	// (percent for relative/mismatch metrics, raw for MSE).
	Metric func(got, want []uint32) float64

	// QualityName names the benchmark's application-level quality metric
	// (see quality.go); empty means "bit-exactness", the default.
	QualityName string
	// Quality builds the benchmark's quality extractor for one input
	// seed — extractors that need the input data (the kmeans
	// distortion) regenerate it from the seed, all others ignore it.
	// Nil selects BitExactQuality; consume through QualityAt.
	Quality func(inputSeed int64) QualityFunc
}

// Outputs extracts the benchmark's output words after a run.
func (b *Benchmark) Outputs(m *mem.Memory, p *asm.Program) ([]uint32, error) {
	addr, ok := p.Symbols[b.OutSymbol]
	if !ok {
		return nil, fmt.Errorf("bench: %s: output symbol %q missing", b.Name, b.OutSymbol)
	}
	return m.ReadWords(addr, b.OutWords)
}

// All returns the paper's four application kernels in Table 1 order.
func All() []*Benchmark {
	return []*Benchmark{
		Median(), MatMult8(), MatMult16(), KMeans(), Dijkstra(),
	}
}

// Micros returns the Fig. 4 instruction-characterization kernels.
func Micros() []*Benchmark {
	return []*Benchmark{MicroAdd16(), MicroAdd32(), MicroMul16()}
}

// Extras returns kernels outside the paper's tables: stress and
// harness workloads reachable by name only.
func Extras() []*Benchmark {
	return []*Benchmark{Checksum()}
}

// ByName finds a benchmark among All, Micros and Extras.
func ByName(name string) (*Benchmark, error) {
	all := append(append(All(), Micros()...), Extras()...)
	for _, b := range all {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q", name)
}

// ---------------------------------------------------------------------
// Metrics

// RelativeErrorPct is the median benchmark's metric: the relative
// difference of the (single-word) output in percent, capped at 100.
func RelativeErrorPct(got, want []uint32) float64 {
	if len(got) == 0 || len(want) == 0 {
		return 100
	}
	w := float64(int32(want[0]))
	g := float64(int32(got[0]))
	if w == 0 {
		if g == 0 {
			return 0
		}
		return 100
	}
	e := math.Abs(g-w) / math.Abs(w) * 100
	if e > 100 {
		e = 100
	}
	return e
}

// MSEMetric is the matrix-multiplication / microkernel metric: mean
// squared error over the output words, interpreted as signed values.
func MSEMetric(got, want []uint32) float64 {
	if len(got) != len(want) || len(got) == 0 {
		return math.Inf(1)
	}
	var s float64
	for i := range got {
		d := float64(int32(got[i])) - float64(int32(want[i]))
		s += d * d
	}
	return s / float64(len(got))
}

// MismatchPct counts the percentage of output words that differ, the
// metric of the k-means (cluster membership) and Dijkstra (min distance
// per node pair) kernels.
func MismatchPct(got, want []uint32) float64 {
	if len(got) != len(want) || len(got) == 0 {
		return 100
	}
	n := 0
	for i := range got {
		if got[i] != want[i] {
			n++
		}
	}
	return float64(n) / float64(len(got)) * 100
}

// ---------------------------------------------------------------------
// helpers

// wordList renders values as .word directives, 8 per line.
func wordList(vals []uint32) string {
	out := ""
	for i, v := range vals {
		if i%8 == 0 {
			if i > 0 {
				out += "\n"
			}
			out += "\t.word "
		} else {
			out += ", "
		}
		out += fmt.Sprintf("0x%x", v)
	}
	return out + "\n"
}

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// mulProfile returns a profile constraining the multiplier (and optionally
// adder/compare) operand widths.
func mulProfile(gen string) dta.Profile {
	return dta.Profile{circuit.UnitMul: gen}
}
