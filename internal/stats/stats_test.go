package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.5}, {4, 1}, {5, 1},
	}
	for _, c := range cases {
		if got := e.P(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if got := e.Exceed(3); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Exceed(3) = %v, want 0.25", got)
	}
	if e.Min() != 1 || e.Max() != 4 {
		t.Errorf("min/max = %v/%v, want 1/4", e.Min(), e.Max())
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.P(1) != 0 || e.Exceed(1) != 1 {
		t.Errorf("empty ECDF P/Exceed wrong")
	}
	if !math.IsNaN(e.Quantile(0.5)) {
		t.Errorf("empty ECDF quantile should be NaN")
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40, 50})
	if q := e.Quantile(0.5); q != 30 {
		t.Errorf("median = %v, want 30", q)
	}
	if q := e.Quantile(0.2); q != 10 {
		t.Errorf("q(0.2) = %v, want 10", q)
	}
	if q := e.Quantile(1); q != 50 {
		t.Errorf("q(1) = %v, want 50", q)
	}
}

// Property: P is monotone non-decreasing and bounded in [0,1].
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		samples := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				samples = append(samples, v)
			}
		}
		e := NewECDF(samples)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		pl, ph := e.P(lo), e.P(hi)
		return pl <= ph && pl >= 0 && ph <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOnline(t *testing.T) {
	var o Online
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Fatalf("n = %d", o.N())
	}
	if math.Abs(o.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", o.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if math.Abs(o.Var()-32.0/7.0) > 1e-12 {
		t.Errorf("var = %v, want %v", o.Var(), 32.0/7.0)
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Errorf("min/max = %v/%v", o.Min(), o.Max())
	}
}

func TestSubSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := SubSeed(42, i)
		if seen[s] {
			t.Fatalf("duplicate sub-seed at %d", i)
		}
		seen[s] = true
	}
	if SubSeed(42, 7) != SubSeed(42, 7) {
		t.Errorf("SubSeed not deterministic")
	}
	if SubSeed(42, 7) == SubSeed(43, 7) {
		t.Errorf("SubSeed ignores master seed")
	}
}

func TestClippedNormal(t *testing.T) {
	rng := NewRand(1)
	sigma, clip := 10.0, 2.0
	var atLimit int
	for i := 0; i < 200000; i++ {
		x := ClippedNormal(rng, 0, sigma, clip)
		if math.Abs(x) > clip*sigma+1e-12 {
			t.Fatalf("sample %v exceeds clip %v", x, clip*sigma)
		}
		if math.Abs(math.Abs(x)-clip*sigma) < 1e-12 {
			atLimit++
		}
	}
	// P(|Z| > 2) is about 4.55%, so the saturation atoms should hold
	// roughly that much mass.
	frac := float64(atLimit) / 200000
	if frac < 0.035 || frac > 0.06 {
		t.Errorf("clip atom mass = %v, want about 0.0455", frac)
	}
}

func TestClippedNormalZeroSigma(t *testing.T) {
	rng := NewRand(1)
	for i := 0; i < 10; i++ {
		if x := ClippedNormal(rng, 0.7, 0, 2); x != 0.7 {
			t.Fatalf("sigma=0 must return mean, got %v", x)
		}
	}
}

func TestMSE(t *testing.T) {
	got, err := MSE([]float64{1, 2, 3}, []float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4.0/3.0) > 1e-12 {
		t.Errorf("MSE = %v, want 4/3", got)
	}
	if _, err := MSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Errorf("length mismatch must error")
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Errorf("linspace[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
	if Linspace(1, 2, 0) != nil {
		t.Errorf("n=0 should be nil")
	}
	if xs := Linspace(3, 9, 1); len(xs) != 1 || xs[0] != 3 {
		t.Errorf("n=1 should be [lo]")
	}
}

func TestWilson(t *testing.T) {
	// Reference values for the 95% interval of 8/10 (e.g. Brown, Cai &
	// DasGupta 2001): about [0.490, 0.943].
	lo, hi := Wilson(8, 10, WilsonZ95)
	if math.Abs(lo-0.4901) > 0.005 || math.Abs(hi-0.9433) > 0.005 {
		t.Errorf("Wilson(8,10) = [%v, %v], want about [0.490, 0.943]", lo, hi)
	}
	// Degenerate inputs stay informative and inside [0, 1].
	lo, hi = Wilson(0, 20, WilsonZ95)
	if lo != 0 {
		t.Errorf("Wilson(0,20) lower = %v, want 0", lo)
	}
	if hi <= 0 || hi >= 0.3 {
		t.Errorf("Wilson(0,20) upper = %v, want small but positive", hi)
	}
	lo, hi = Wilson(20, 20, WilsonZ95)
	if hi != 1 {
		t.Errorf("Wilson(20,20) upper = %v, want 1", hi)
	}
	// Closed form for k=n: lo = n/(n+z^2).
	z2 := WilsonZ95 * WilsonZ95
	if want := 20 / (20 + z2); math.Abs(lo-want) > 1e-12 {
		t.Errorf("Wilson(20,20) lower = %v, want %v", lo, want)
	}
	// No trials: the uninformative interval.
	if lo, hi = Wilson(0, 0, WilsonZ95); lo != 0 || hi != 1 {
		t.Errorf("Wilson(0,0) = [%v, %v], want [0, 1]", lo, hi)
	}
	if WilsonLower(8, 10, WilsonZ95) >= WilsonUpper(8, 10, WilsonZ95) {
		t.Errorf("lower bound not below upper bound")
	}
}

func TestWilsonProperties(t *testing.T) {
	f := func(k8, n8 uint8) bool {
		n := int(n8%100) + 1
		k := int(k8) % (n + 1)
		lo, hi := Wilson(k, n, WilsonZ95)
		p := float64(k) / float64(n)
		return lo >= 0 && hi <= 1 && lo <= p && p <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWilsonNarrowsWithN(t *testing.T) {
	prevLo, prevHi := Wilson(5, 10, WilsonZ95)
	for _, n := range []int{20, 40, 80, 160} {
		lo, hi := Wilson(n/2, n, WilsonZ95)
		if hi-lo >= prevHi-prevLo {
			t.Errorf("interval did not narrow at n=%d: [%v,%v] vs [%v,%v]", n, lo, hi, prevLo, prevHi)
		}
		prevLo, prevHi = lo, hi
	}
}

func TestNormalCDFAnchors(t *testing.T) {
	anchors := []struct{ x, p float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{-2, 0.022750131948179195},
		{2, 0.9772498680518208},
	}
	for _, a := range anchors {
		if got := NormalCDF(a.x); math.Abs(got-a.p) > 1e-15 {
			t.Errorf("NormalCDF(%v) = %v, want %v", a.x, got, a.p)
		}
	}
	if !(NormalCDF(-37) > 0) || NormalCDF(-37) > 1e-290 {
		t.Errorf("deep lower tail lost precision: %v", NormalCDF(-37))
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for p := 1e-12; p < 1; p += 0.001 {
		x := NormalQuantile(p)
		if got := NormalCDF(x); math.Abs(got-p) > 1e-13 {
			t.Fatalf("NormalCDF(NormalQuantile(%v)) = %v (off by %v)", p, got, got-p)
		}
	}
	// Deep tails stay finite and invert.
	for _, p := range []float64{1e-300, 1e-30, 1e-15, 1 - 1e-15} {
		x := NormalQuantile(p)
		if math.IsInf(x, 0) || math.IsNaN(x) {
			t.Errorf("NormalQuantile(%v) = %v", p, x)
		}
		if got := NormalCDF(x); math.Abs(got-p) > 1e-13*math.Max(1, p/math.SmallestNonzeroFloat64) && math.Abs(got-p)/p > 1e-9 {
			t.Errorf("tail round trip at %v: %v", p, got)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Errorf("edge quantiles not infinite")
	}
	if NormalQuantile(0.5) != 0 {
		t.Errorf("median quantile = %v, want 0", NormalQuantile(0.5))
	}
	if math.Abs(NormalQuantile(0.975)-WilsonZ95) > 1e-12 {
		t.Errorf("NormalQuantile(0.975) = %v, want %v", NormalQuantile(0.975), WilsonZ95)
	}
}

func TestNewTrialRandDeterministic(t *testing.T) {
	a, b := NewTrialRand(12345), NewTrialRand(12345)
	for i := 0; i < 64; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: %d != %d for same seed", i, x, y)
		}
	}
}

func TestNewTrialRandDistinctStreams(t *testing.T) {
	// Adjacent SubSeed-derived trial streams must not collide; use the
	// same keying as the Monte-Carlo engine.
	const master, trials, draws = 42, 32, 16
	seen := map[uint64][2]int{}
	for ti := 0; ti < trials; ti++ {
		rng := NewTrialRand(SubSeed(master, ti))
		for d := 0; d < draws; d++ {
			v := rng.Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("trial %d draw %d collides with trial %d draw %d", ti, d, prev[0], prev[1])
			}
			seen[v] = [2]int{ti, d}
		}
	}
}

func TestNewTrialRandUniform(t *testing.T) {
	// Coarse uniformity: 16 equal bins over Float64, chi-square far from
	// pathological for a healthy generator.
	rng := NewTrialRand(7)
	const n, bins = 1 << 16, 16
	var counts [bins]int
	for i := 0; i < n; i++ {
		counts[int(rng.Float64()*bins)]++
	}
	exp := float64(n) / bins
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	// 15 dof; 99.99th percentile ~ 44. Anything near that signals breakage.
	if chi2 > 60 {
		t.Fatalf("chi-square %v too large: %v", chi2, counts)
	}
}
