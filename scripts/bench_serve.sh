#!/usr/bin/env bash
# Tracks the service-layer traffic trajectory: boots a real fisimd with
# a small queue and a rate-limited batch tenant, drives an open-loop
# mixed-priority load through cmd/fisimload, and writes the per-lane
# report (shed counts, time-to-start / time-to-terminal percentiles,
# throughput, the lost-accepted-jobs invariant) as BENCH_serve.json at
# the repo root. The batch tenant's rate limit guarantees observable
# shedding on any machine; a warm-up job pays DTA characterization
# before the measured window so latencies reflect steady state.
#
#   ./scripts/bench_serve.sh                 # defaults below
#   BATCH_JOBS=120 BATCH_RATE=100 ./scripts/bench_serve.sh
set -euo pipefail
cd "$(dirname "$0")/.."

addr="${FISIMD_BENCH_ADDR:-127.0.0.1:18024}"
batch_rate="${BATCH_RATE:-50}"
batch_jobs="${BATCH_JOBS:-60}"
inter_rate="${INTER_RATE:-5}"
inter_jobs="${INTER_JOBS:-10}"
trials="${TRIALS:-16}"

work="$(mktemp -d)"
dlog="$work/fisimd.log"
cleanup() {
  if [[ -n "${DPID:-}" ]] && kill -0 "$DPID" 2>/dev/null; then
    kill -TERM "$DPID" 2>/dev/null || true
    wait "$DPID" 2>/dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/fisimd" ./cmd/fisimd
go build -o "$work/fisimload" ./cmd/fisimload

# The batch tenant is throttled well below its arrival rate, so the
# daemon must shed; the interactive tenant is unconstrained, so its
# latency percentiles measure the priority lanes, not a rate limiter.
cat > "$work/tenants.json" <<EOF
{"clients": {"key:batch-tenant": {"rate": 8, "burst": 8, "max_active": 8}}}
EOF

"$work/fisimd" -addr "$addr" -dta 1024 -queue 8 -parallel 1 \
  -tenants "$work/tenants.json" > "$dlog" 2>&1 & DPID=$!
for i in $(seq 1 100); do
  curl -sf "http://$addr/v1/healthz" >/dev/null && break
  kill -0 "$DPID" 2>/dev/null || { cat "$dlog"; echo "fisimd died"; exit 1; }
  sleep 0.2
done

# Warm-up: one interactive job pays characterization / golden recording.
"$work/fisimload" -addr "http://$addr" \
  -interactive-rate 1 -interactive-jobs 1 -batch-jobs 0 \
  -trials "$trials" -seed 1 > /dev/null

# Measured window (fresh seeds so nothing dedups against the warm-up).
"$work/fisimload" -addr "http://$addr" \
  -interactive-rate "$inter_rate" -interactive-jobs "$inter_jobs" \
  -batch-rate "$batch_rate" -batch-jobs "$batch_jobs" \
  -trials "$trials" -seed 500 -o BENCH_serve.json

kill -TERM "$DPID"; wait "$DPID" || true; DPID=""
grep -E 'draining|cache:' "$dlog" || true
echo "wrote BENCH_serve.json"
