// Package cpu implements the cycle-accurate instruction-set simulator of
// the 32-bit, 6-stage OpenRISC-flavoured core used as the paper's case
// study, together with the fault-injection port on the execution-stage ALU
// endpoints.
//
// # Timing model
//
// The pipeline (IF1 IF2 ID EX MEM WB) is in-order and single-issue with
// full forwarding, so architectural execution at EX time is semantically
// identical to latch-level simulation; the simulator therefore executes
// instructions functionally in program order and charges cycles according
// to the pipeline timing rules:
//
//   - one cycle per issued instruction (close to 1 IPC, like the paper's
//     core, which performs single-cycle 32-bit multiplications),
//   - a configurable flush penalty for taken branches and jumps (the three
//     fetch/decode stages behind EX are squashed),
//   - a one-cycle stall for a load immediately followed by a consumer
//     (load data is available at the end of MEM).
//
// Every cycle in which an FI-eligible ALU instruction occupies EX while
// the fault-injection window is open is exposed to the Injector, which may
// corrupt the 32 ALU result endpoints and, for compares, the flag
// endpoint. This is exactly the surface the paper injects into: the 32
// ALU-endpoint flip-flops of the execution stage (we group the
// comparison-flag flop, which is produced by the same data path, with
// them; without it, faulted compares would have no architectural effect
// and the paper's "wrong branching behavior" could not occur).
//
// # Abnormal termination
//
// A run ends in one of three ways: a clean exit (l.sys 0), a trap
// (illegal instruction, bus error, fetch outside the text image), or the
// watchdog. Following the paper, the simulator includes basic infinite
// loop detection: an unconditional jump-to-self aborts immediately, and a
// configurable cycle budget catches everything else.
//
// In the dependency graph, cpu sits on isa/asm/mem and accepts fault
// injectors structurally (the fi models implement its Injector
// interface without either package importing the other); the mc engine
// drives one CPU per trial, and the trace recording/restore machinery
// here is what the replay and first-fault fast paths fork from.
package cpu

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Injector decides timing-error injection for the EX stage. Inject is
// called once for every cycle in which an FI-eligible ALU instruction
// occupies EX while the FI window is open. It receives the fault-free
// result, the previously latched EX result, the fault-free flag outcome
// (meaningful for compares) and the previously latched flag. It returns
// the possibly corrupted result and flag, plus the number of endpoint bits
// that actually flipped (counting the flag endpoint as one bit).
type Injector interface {
	Inject(op isa.Op, result, prevResult uint32, flag, prevFlag bool) (out uint32, outFlag bool, flipped int)
}

// NullInjector never injects faults; it yields the golden execution.
type NullInjector struct{}

// Inject implements Injector by passing values through unchanged.
func (NullInjector) Inject(_ isa.Op, r, _ uint32, f, _ bool) (uint32, bool, int) {
	return r, f, 0
}

// Config carries the pipeline timing parameters.
type Config struct {
	BranchPenalty int    // bubbles after a taken branch/jump (default 3)
	LoadUseStall  int    // bubbles between a load and an immediate consumer (default 1)
	Watchdog      uint64 // cycle budget; 0 means no watchdog
}

// DefaultConfig returns the timing parameters of the modelled 6-stage core.
func DefaultConfig() Config {
	return Config{BranchPenalty: 3, LoadUseStall: 1}
}

// Status describes how a run ended.
type Status uint8

// Run outcomes.
const (
	StatusRunning  Status = iota
	StatusExited          // clean l.sys 0
	StatusTrapped         // illegal instruction, bus error, bad fetch
	StatusWatchdog        // cycle budget exhausted or trivial infinite loop
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusExited:
		return "exited"
	case StatusTrapped:
		return "trapped"
	case StatusWatchdog:
		return "watchdog"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// CPU is one simulated core instance.
type CPU struct {
	Regs [32]uint32
	PC   uint32
	Flag bool
	Mem  *mem.Memory

	cfg Config
	inj Injector

	// Predecoded text image for fast fetch.
	textBase uint32
	text     []isa.Instr

	// EX endpoint latches (previous cycle values) for stale-capture
	// fault semantics.
	prevEXResult uint32
	prevFlag     bool

	// Load-use hazard tracking.
	lastWasLoad bool
	lastLoadRD  uint8

	// Fault-injection window (opened by l.sys 1, closed by l.sys 2).
	InWindow bool

	// Golden-trace recording (see trace.go); nil when not recording.
	trace    *Trace
	nextCkpt uint64

	// Statistics.
	Cycles          uint64
	KernelCycles    uint64
	KernelALUCycles uint64
	Retired         uint64
	FIBits          uint64 // total endpoint bits flipped
	FIEvents        uint64 // cycles with at least one flipped bit
	OpCounts        [isa.NumOps]uint64

	status  Status
	trapErr error
}

// New creates a core bound to a memory and an injector. A nil injector
// runs golden (fault-free).
func New(m *mem.Memory, inj Injector, cfg Config) *CPU {
	if inj == nil {
		inj = NullInjector{}
	}
	if cfg.BranchPenalty == 0 && cfg.LoadUseStall == 0 && cfg.Watchdog == 0 {
		// Zero-value config means defaults.
		cfg = DefaultConfig()
	}
	return &CPU{Mem: m, inj: inj, cfg: cfg}
}

// Load installs an assembled program: text and data images are copied
// into memory, the text is predecoded, and the PC is set to the entry
// point. Architectural state is reset.
func (c *CPU) Load(p *asm.Program) error {
	if err := c.Mem.LoadImage(p.Text.Base, p.Text.Bytes); err != nil {
		return fmt.Errorf("cpu: loading text: %w", err)
	}
	if err := c.Mem.LoadImage(p.Data.Base, p.Data.Bytes); err != nil {
		return fmt.Errorf("cpu: loading data: %w", err)
	}
	c.textBase = p.Text.Base
	n := len(p.Text.Bytes) / 4
	c.text = make([]isa.Instr, n)
	for i := 0; i < n; i++ {
		b := p.Text.Bytes[4*i:]
		w := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
		c.text[i] = isa.Decode(w)
	}
	c.PC = p.Entry
	c.Regs = [32]uint32{}
	c.Flag = false
	c.InWindow = false
	c.status = StatusRunning
	c.trapErr = nil
	return nil
}

// SetWatchdog overrides the cycle budget.
func (c *CPU) SetWatchdog(cycles uint64) { c.cfg.Watchdog = cycles }

// Status returns how the last run ended.
func (c *CPU) Status() Status { return c.status }

// TrapErr returns the cause of a StatusTrapped run, or nil.
func (c *CPU) TrapErr() error { return c.trapErr }

func (c *CPU) fetch(pc uint32) (isa.Instr, error) {
	if pc >= c.textBase && pc < c.textBase+uint32(4*len(c.text)) && pc%4 == 0 {
		return c.text[(pc-c.textBase)/4], nil
	}
	w, err := c.Mem.FetchWord(pc)
	if err != nil {
		return isa.Instr{}, err
	}
	return isa.Decode(w), nil
}

func (c *CPU) trap(err error) {
	c.status = StatusTrapped
	c.trapErr = err
}

// charge adds n cycles, attributing them to the kernel window when open.
func (c *CPU) charge(n int) {
	c.Cycles += uint64(n)
	if c.InWindow {
		c.KernelCycles += uint64(n)
	}
}

func (c *CPU) readsRA(in isa.Instr) bool {
	switch in.Op {
	case isa.OpJ, isa.OpJal, isa.OpJr, isa.OpBf, isa.OpBnf,
		isa.OpNop, isa.OpSys, isa.OpMovhi:
		return false
	}
	return true
}

func (c *CPU) readsRB(in isa.Instr) bool {
	switch in.Op {
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpSll, isa.OpSrl, isa.OpSra, isa.OpJr,
		isa.OpSw, isa.OpSh, isa.OpSb,
		isa.OpSfeq, isa.OpSfne, isa.OpSfgtu, isa.OpSfgeu, isa.OpSfltu,
		isa.OpSfleu, isa.OpSfgts, isa.OpSfges, isa.OpSflts, isa.OpSfles:
		return true
	}
	return false
}

// Run executes until exit, trap, or watchdog, and returns the status.
func (c *CPU) Run() Status {
	for c.status == StatusRunning {
		c.step()
	}
	return c.status
}

// Step executes a single instruction (for tests and debuggers).
func (c *CPU) Step() Status {
	if c.status == StatusRunning {
		c.step()
	}
	return c.status
}

func (c *CPU) step() {
	if c.trace != nil && c.Cycles >= c.nextCkpt {
		c.checkpoint()
	}
	if c.cfg.Watchdog > 0 && c.Cycles >= c.cfg.Watchdog {
		c.status = StatusWatchdog
		return
	}
	in, err := c.fetch(c.PC)
	if err != nil {
		c.trap(fmt.Errorf("cpu: fetch at 0x%08x: %w", c.PC, err))
		return
	}
	if in.Op == isa.OpInvalid {
		c.trap(fmt.Errorf("cpu: illegal instruction at 0x%08x", c.PC))
		return
	}

	// Issue cost plus a load-use stall when this instruction consumes
	// the value produced by the immediately preceding load.
	cost := 1
	if c.lastWasLoad && c.lastLoadRD != 0 {
		if c.readsRA(in) && in.RA == c.lastLoadRD ||
			c.readsRB(in) && in.RB == c.lastLoadRD {
			cost += c.cfg.LoadUseStall
		}
	}
	c.lastWasLoad = false

	window := c.InWindow
	aluCycle := window && isa.IsALU(in.Op)
	if aluCycle {
		c.KernelALUCycles++
	}

	ra := c.Regs[in.RA]
	rb := c.Regs[in.RB]
	nextPC := c.PC + 4
	taken := false

	writeRD := func(v uint32) {
		if in.RD != 0 {
			c.Regs[in.RD] = v
		}
	}

	// applyFI runs the injector on an ALU result and updates the EX
	// endpoint latches.
	applyFI := func(result uint32, flag bool) (uint32, bool) {
		outR, outF := result, flag
		if aluCycle && c.trace != nil {
			c.trace.Events = append(c.trace.Events, TraceEvent{
				Op: in.Op, A: ra, B: rb, RD: in.RD,
				Result: result, Prev: c.prevEXResult,
				Flag: flag, PrevFlag: c.prevFlag,
			})
		}
		if aluCycle {
			var flipped int
			outR, outF, flipped = c.inj.Inject(in.Op, result, c.prevEXResult, flag, c.prevFlag)
			if flipped > 0 {
				c.FIBits += uint64(flipped)
				c.FIEvents++
			}
		}
		c.prevEXResult = outR
		c.prevFlag = outF
		return outR, outF
	}

	switch in.Op {
	case isa.OpNop:
		// Nothing.

	case isa.OpSys:
		switch in.Imm {
		case isa.SysExit:
			c.charge(cost)
			c.Retired++
			c.OpCounts[in.Op]++
			c.status = StatusExited
			return
		case isa.SysKernelBegin:
			c.InWindow = true
		case isa.SysKernelEnd:
			c.InWindow = false
		}

	case isa.OpJ:
		if in.Imm == 0 {
			// Unconditional jump-to-self: trivially infinite.
			c.status = StatusWatchdog
			return
		}
		nextPC = uint32(int64(c.PC) + int64(in.Imm)*4)
		taken = true
	case isa.OpJal:
		c.Regs[isa.LinkReg] = c.PC + 4
		nextPC = uint32(int64(c.PC) + int64(in.Imm)*4)
		taken = true
	case isa.OpJr:
		nextPC = rb
		taken = true
	case isa.OpBf, isa.OpBnf:
		if c.Flag == (in.Op == isa.OpBf) {
			nextPC = uint32(int64(c.PC) + int64(in.Imm)*4)
			taken = true
		}

	case isa.OpMovhi:
		writeRD(uint32(in.Imm) << 16)

	case isa.OpAdd:
		r, _ := applyFI(ra+rb, c.Flag)
		writeRD(r)
	case isa.OpAddi:
		r, _ := applyFI(ra+uint32(in.Imm), c.Flag)
		writeRD(r)
	case isa.OpSub:
		r, _ := applyFI(ra-rb, c.Flag)
		writeRD(r)
	case isa.OpMul:
		r, _ := applyFI(uint32(int32(ra)*int32(rb)), c.Flag)
		writeRD(r)
	case isa.OpMuli:
		r, _ := applyFI(uint32(int32(ra)*in.Imm), c.Flag)
		writeRD(r)
	case isa.OpAnd:
		r, _ := applyFI(ra&rb, c.Flag)
		writeRD(r)
	case isa.OpOr:
		r, _ := applyFI(ra|rb, c.Flag)
		writeRD(r)
	case isa.OpXor:
		r, _ := applyFI(ra^rb, c.Flag)
		writeRD(r)
	case isa.OpAndi:
		r, _ := applyFI(ra&uint32(uint16(in.Imm)), c.Flag)
		writeRD(r)
	case isa.OpOri:
		r, _ := applyFI(ra|uint32(uint16(in.Imm)), c.Flag)
		writeRD(r)
	case isa.OpXori:
		r, _ := applyFI(ra^uint32(in.Imm), c.Flag)
		writeRD(r)
	case isa.OpSll:
		r, _ := applyFI(ra<<(rb&31), c.Flag)
		writeRD(r)
	case isa.OpSrl:
		r, _ := applyFI(ra>>(rb&31), c.Flag)
		writeRD(r)
	case isa.OpSra:
		r, _ := applyFI(uint32(int32(ra)>>(rb&31)), c.Flag)
		writeRD(r)
	case isa.OpSlli:
		r, _ := applyFI(ra<<uint32(in.Imm&31), c.Flag)
		writeRD(r)
	case isa.OpSrli:
		r, _ := applyFI(ra>>uint32(in.Imm&31), c.Flag)
		writeRD(r)
	case isa.OpSrai:
		r, _ := applyFI(uint32(int32(ra)>>uint32(in.Imm&31)), c.Flag)
		writeRD(r)

	case isa.OpSfeq, isa.OpSfne, isa.OpSfgtu, isa.OpSfgeu, isa.OpSfltu,
		isa.OpSfleu, isa.OpSfgts, isa.OpSfges, isa.OpSflts, isa.OpSfles:
		f := compare(in.Op, ra, rb)
		// The subtract result travels through the same endpoints; the
		// flag endpoint is what architecture observes.
		_, f = applyFI(ra-rb, f)
		c.Flag = f
	case isa.OpSfeqi, isa.OpSfnei, isa.OpSfgtui, isa.OpSfltui,
		isa.OpSfgtsi, isa.OpSfltsi:
		b := uint32(in.Imm)
		f := compare(in.Op, ra, b)
		_, f = applyFI(ra-b, f)
		c.Flag = f

	case isa.OpLwz:
		v, err := c.Mem.LoadWord(ra + uint32(in.Imm))
		if err != nil {
			c.trap(err)
			return
		}
		writeRD(v)
		c.lastWasLoad, c.lastLoadRD = true, in.RD
	case isa.OpLhz:
		v, err := c.Mem.LoadHalf(ra + uint32(in.Imm))
		if err != nil {
			c.trap(err)
			return
		}
		writeRD(uint32(v))
		c.lastWasLoad, c.lastLoadRD = true, in.RD
	case isa.OpLbz:
		v, err := c.Mem.LoadByte(ra + uint32(in.Imm))
		if err != nil {
			c.trap(err)
			return
		}
		writeRD(uint32(v))
		c.lastWasLoad, c.lastLoadRD = true, in.RD
	case isa.OpSw:
		if err := c.Mem.StoreWord(ra+uint32(in.Imm), rb); err != nil {
			c.trap(err)
			return
		}
		c.recordStore(ra+uint32(in.Imm), 4, rb)
	case isa.OpSh:
		if err := c.Mem.StoreHalf(ra+uint32(in.Imm), uint16(rb)); err != nil {
			c.trap(err)
			return
		}
		c.recordStore(ra+uint32(in.Imm), 2, rb)
	case isa.OpSb:
		if err := c.Mem.StoreByte(ra+uint32(in.Imm), uint8(rb)); err != nil {
			c.trap(err)
			return
		}
		c.recordStore(ra+uint32(in.Imm), 1, rb)

	default:
		c.trap(fmt.Errorf("cpu: unimplemented op %v at 0x%08x", in.Op, c.PC))
		return
	}

	if taken {
		cost += c.cfg.BranchPenalty
	}
	c.charge(cost)
	c.Retired++
	c.OpCounts[in.Op]++
	c.PC = nextPC
}

// compare evaluates an l.sf* condition on two operand words.
func compare(op isa.Op, a, b uint32) bool {
	sa, sb := int32(a), int32(b)
	switch op {
	case isa.OpSfeq, isa.OpSfeqi:
		return a == b
	case isa.OpSfne, isa.OpSfnei:
		return a != b
	case isa.OpSfgtu, isa.OpSfgtui:
		return a > b
	case isa.OpSfgeu:
		return a >= b
	case isa.OpSfltu, isa.OpSfltui:
		return a < b
	case isa.OpSfleu:
		return a <= b
	case isa.OpSfgts, isa.OpSfgtsi:
		return sa > sb
	case isa.OpSfges:
		return sa >= sb
	case isa.OpSflts, isa.OpSfltsi:
		return sa < sb
	case isa.OpSfles:
		return sa <= sb
	}
	return false
}

// ALUMix summarizes the retired instruction mix of the last run; used for
// Table 1's compute/control characterization.
type ALUMix struct {
	Total    uint64
	ALU      uint64
	Mul      uint64
	Compare  uint64
	Memory   uint64
	Control  uint64
	OtherALU uint64
}

// Mix computes the retired instruction mix.
func (c *CPU) Mix() ALUMix {
	var m ALUMix
	for op, n := range c.OpCounts {
		if n == 0 {
			continue
		}
		o := isa.Op(op)
		m.Total += n
		switch {
		case isa.ClassOf(o) == isa.ClassMul:
			m.Mul += n
			m.ALU += n
		case isa.IsCompare(o):
			m.Compare += n
			m.ALU += n
		case isa.IsALU(o):
			m.OtherALU += n
			m.ALU += n
		case isa.IsLoad(o) || isa.IsStore(o):
			m.Memory += n
		case isa.IsBranch(o):
			m.Control += n
		}
	}
	return m
}
