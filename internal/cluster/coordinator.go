// The coordinator side of distributed grid execution: a server.Backend
// that plans a job's cells once, parcels them into small leases, and
// lets per-worker pull loops drain the queue — with work stealing, so a
// fast node that empties the queue takes over the unreported tail of a
// slow node's in-flight lease instead of idling. Leases ride on
// internal/client's retry/backoff; a lease that dies (worker killed,
// deadline, cut stream) has its unfinished cells requeued, and
// duplicate completions — steal races, replayed leases — are discarded
// by cell index with the content-addressed key asserted, which is safe
// precisely because equal keys are bit-identical Points. The merged
// result is therefore byte-identical to the in-process GridBackend's
// for every cluster shape, including mid-grid worker loss.

package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/progress"
	"repro/internal/server"
)

// Config tunes a Coordinator. Zero values default sanely.
type Config struct {
	// LeaseCells is the cell batch size per lease (default 4). Small
	// batches keep tails short — stealing and reassignment then move
	// little work — at the cost of more round trips.
	LeaseCells int
	// LeaseTimeout bounds one lease wall-clock (default 5m): a worker
	// that hangs without dying still gets its cells reassigned.
	LeaseTimeout time.Duration
	// Client templates the per-worker API clients (Base is overridden
	// per worker). The zero value inherits client.New's defaults.
	Client client.Config
	// Logf, when set, receives one line per lease-level event.
	Logf func(format string, args ...any)
}

// Coordinator fans grid jobs out to a fixed set of workers. It
// implements server.Backend (the manager drives it exactly like the
// in-process GridBackend) and server.ClusterReporter (/v1/stats).
type Coordinator struct {
	system *core.System
	store  *artifact.Store
	cfg    Config

	mu      sync.Mutex
	workers []workerRef
	stats   server.ClusterStats
	seq     int64
}

type workerRef struct {
	base string
	api  *client.Client
	dead bool
}

// New builds a coordinator over worker base URLs. The system is the
// coordinator's own substrate — used for planning and fingerprinting,
// never for trials — and must be configured identically to every
// worker's (the lease handshake enforces it). The store, when non-nil,
// checkpoints remotely computed cells coordinator-side, so a restarted
// coordinator resumes a re-submitted grid from disk.
func New(sys *core.System, store *artifact.Store, workerURLs []string, cfg Config) (*Coordinator, error) {
	if len(workerURLs) == 0 {
		return nil, errors.New("cluster: at least one worker URL required")
	}
	if cfg.LeaseCells <= 0 {
		cfg.LeaseCells = 4
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 5 * time.Minute
	}
	c := &Coordinator{system: sys, store: store, cfg: cfg}
	for _, u := range workerURLs {
		cc := cfg.Client
		cc.Base = u
		c.workers = append(c.workers, workerRef{base: u, api: client.New(cc)})
	}
	c.stats.WorkersKnown = len(c.workers)
	c.stats.WorkersLive = len(c.workers)
	return c, nil
}

// ClusterStats snapshots the cumulative counters.
func (c *Coordinator) ClusterStats() server.ClusterStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// markDead retires a worker for the coordinator's lifetime: its pull
// loops exit and no further leases go its way.
func (c *Coordinator) markDead(wi int, cause error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.workers[wi].dead {
		c.workers[wi].dead = true
		c.stats.WorkersLive--
		c.logf("worker %s marked dead: %v", c.workers[wi].base, cause)
	}
}

func (c *Coordinator) isDead(wi int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workers[wi].dead
}

// Error classification: the pull loop reacts differently to a worker it
// cannot reach (mark dead), a worker on the wrong substrate (mark
// dead), a cut stream (requeue and retry), and a deterministic
// execution failure (fail the job, as a single-node run would).
type dialError struct{ err error }     // could not establish the lease stream
type execError struct{ err error }     // worker reported a deterministic execution error
type streamError struct{ err error }   // stream cut mid-lease
type protocolError struct{ err error } // worker answered outside the protocol (key mismatch)

func (e dialError) Error() string     { return e.err.Error() }
func (e dialError) Unwrap() error     { return e.err }
func (e execError) Error() string     { return e.err.Error() }
func (e execError) Unwrap() error     { return e.err }
func (e streamError) Error() string   { return e.err.Error() }
func (e streamError) Unwrap() error   { return e.err }
func (e protocolError) Error() string { return e.err.Error() }
func (e protocolError) Unwrap() error { return e.err }

// job is one Run's mutable state, shared by the per-worker pull loops.
type job struct {
	spec        server.JobSpec
	fingerprint string
	plan        []mc.PlannedCell

	cancel context.CancelFunc
	fan    *progress.Fanin

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []int // unassigned cell indices, FIFO
	inflight  map[string]*lease
	done      []bool
	results   []mc.CellResult
	remaining int   // cells neither completed nor cached
	err       error // first fatal error; set once, cancels the job ctx
}

// lease is one in-flight batch on one worker.
type lease struct {
	id     string
	worker int
	cells  []int
	// completed marks cells this lease has reported (accepted or
	// duplicate); stolen marks cells another worker took over (the
	// victim may still report them — harmless duplicates).
	completed map[int]bool
	stolen    map[int]bool
	// accepted progress folded into the fan-in when the lease closes.
	acceptedTrials, acceptedPoints int
}

// pending returns the lease's unreported, unstolen cells in lease
// order; the steal path takes from this list's tail.
func (l *lease) pending() []int {
	var out []int
	for _, idx := range l.cells {
		if !l.completed[idx] && !l.stolen[idx] {
			out = append(out, idx)
		}
	}
	return out
}

// fail records the job's first fatal error and cancels every lease.
func (j *job) fail(err error) {
	j.mu.Lock()
	if j.err == nil {
		j.err = err
	}
	j.cond.Broadcast()
	j.mu.Unlock()
	j.cancel()
}

// Run plans the job, serves what the coordinator's own checkpoints
// already answer, and drains the rest through the worker pull loops.
func (c *Coordinator) Run(ctx context.Context, spec server.JobSpec, onProgress func(mc.Progress)) ([]mc.CellResult, error) {
	grid, err := spec.Grid(c.system, c.store, 0, nil)
	if err != nil {
		return nil, err
	}
	plan, err := grid.PlanCells()
	if err != nil {
		return nil, err
	}
	n := len(plan)

	fan := progress.NewFanin(func(cnt progress.Counts) {
		if onProgress != nil {
			onProgress(mc.Progress{
				DoneTrials: cnt.Done, TotalTrials: cnt.Total,
				DonePoints: cnt.DonePoints, TotalPoints: cnt.TotalPoints,
			})
		}
	})
	// The totals estimate matches the in-process engine's convention:
	// under adaptive allocation every cell opens at TrialsMin.
	estTrials := spec.Trials
	if spec.TrialsMax > 0 {
		estTrials = spec.TrialsMin
	}

	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	j := &job{
		spec:        spec,
		fingerprint: spec.Fingerprint(c.system.Fingerprint()),
		plan:        plan,
		cancel:      cancel,
		fan:         fan,
		inflight:    map[string]*lease{},
		done:        make([]bool, n),
		results:     make([]mc.CellResult, n),
	}
	j.cond = sync.NewCond(&j.mu)

	base := progress.Counts{Total: estTrials * n, TotalPoints: n}
	for _, pc := range plan {
		if pc.Point != nil {
			j.results[pc.Index] = mc.CellResult{
				Bench: pc.Cell.Bench.Name, Model: pc.Cell.Model, Cached: true, Point: *pc.Point,
			}
			j.done[pc.Index] = true
			base.Done += pc.Point.Trials
			base.DonePoints++
			continue
		}
		j.queue = append(j.queue, pc.Index)
	}
	j.remaining = len(j.queue)
	fan.Fold(base)
	if j.remaining == 0 {
		return j.results, nil
	}

	// The waker turns job-context cancellation into a cond broadcast so
	// idle pull loops blocked in next() observe it.
	wakerDone := make(chan struct{})
	go func() {
		defer close(wakerDone)
		<-jctx.Done()
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	}()

	var wg sync.WaitGroup
	for wi := range c.workers {
		if c.isDead(wi) {
			continue
		}
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			c.pullLoop(jctx, j, wi)
		}(wi)
	}
	wg.Wait()
	cancel()
	<-wakerDone

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return nil, j.err
	}
	if ctx.Err() != nil && j.remaining > 0 {
		return nil, ctx.Err()
	}
	if j.remaining > 0 {
		return nil, fmt.Errorf("cluster: %d of %d cells unfinished: no live workers left (%d configured)",
			j.remaining, n, len(c.workers))
	}
	return j.results, nil
}

// pullLoop is one worker's work loop: lease, execute, repeat, until the
// job drains, fails, or this worker proves unusable.
func (c *Coordinator) pullLoop(ctx context.Context, j *job, wi int) {
	for {
		l := c.next(ctx, j, wi)
		if l == nil {
			return
		}
		err := c.runLease(ctx, j, wi, l)
		c.finishLease(j, l, err)
		if err == nil || ctx.Err() != nil {
			if ctx.Err() != nil {
				return
			}
			continue
		}
		var de dialError
		var ee execError
		var pe protocolError
		switch {
		case errors.As(err, &ee):
			// Deterministic execution failure: a single-node run would
			// fail the job too.
			j.fail(ee.err)
			return
		case errors.As(err, &de):
			// Could not even open a stream after the client's full retry
			// budget: the worker is gone (or refusing the substrate —
			// 409 surfaces here as a permanent APIError).
			c.markDead(wi, de.err)
			return
		case errors.As(err, &pe):
			// The worker answers but speaks nonsense (key mismatch past
			// the fingerprint handshake): trust it with nothing further.
			c.markDead(wi, pe.err)
			return
		default:
			// Cut stream / lease deadline: cells are requeued; the worker
			// may well still be healthy (or restarting), so try again —
			// if it is truly gone the next dial marks it dead.
			c.logf("lease %s on %s failed, cells requeued: %v", l.id, c.workers[wi].base, err)
		}
	}
}

// next blocks until there is work for this worker — a queue batch, or a
// steal from the slowest in-flight lease — or returns nil when the job
// is over (drained, failed, canceled). Called without j.mu held.
func (c *Coordinator) next(ctx context.Context, j *job, wi int) *lease {
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if ctx.Err() != nil || j.err != nil || j.remaining == 0 {
			return nil
		}
		if len(j.queue) > 0 {
			take := c.cfg.LeaseCells
			if take > len(j.queue) {
				take = len(j.queue)
			}
			cells := append([]int(nil), j.queue[:take]...)
			j.queue = j.queue[take:]
			return c.openLeaseLocked(j, wi, cells, 0)
		}
		// Steal: pick the in-flight lease with the largest unreported
		// tail (at least 2 — stealing a lease's last cell just races it)
		// and take the trailing half. The victim keeps computing the
		// stolen cells — it cannot know — so the steal buys tail latency,
		// and the duplicate completions dedupe by index.
		var victim *lease
		var victimPending []int
		for _, l := range j.inflight {
			p := l.pending()
			if len(p) >= 2 && len(p) > len(victimPending) {
				victim, victimPending = l, p
			}
		}
		if victim != nil {
			take := len(victimPending) / 2
			if take > c.cfg.LeaseCells {
				take = c.cfg.LeaseCells
			}
			cells := append([]int(nil), victimPending[len(victimPending)-take:]...)
			for _, idx := range cells {
				victim.stolen[idx] = true
			}
			c.logf("worker %s steals %d cells from lease %s", c.workers[wi].base, take, victim.id)
			return c.openLeaseLocked(j, wi, cells, take)
		}
		j.cond.Wait()
	}
}

// openLeaseLocked registers a new lease and bumps the counters; stolen
// is the number of cells taken from another lease (for CellsStolen).
func (c *Coordinator) openLeaseLocked(j *job, wi int, cells []int, stolen int) *lease {
	c.mu.Lock()
	c.seq++
	id := fmt.Sprintf("L%06d", c.seq)
	c.stats.Leases++
	c.stats.CellsLeased += int64(len(cells))
	c.stats.CellsStolen += int64(stolen)
	c.mu.Unlock()
	l := &lease{id: id, worker: wi, cells: cells, completed: map[int]bool{}, stolen: map[int]bool{}}
	j.inflight[id] = l
	return l
}

// runLease drives one lease to completion: open the stream through the
// retrying client, then merge events as they arrive.
func (c *Coordinator) runLease(ctx context.Context, j *job, wi int, l *lease) error {
	body, err := json.Marshal(LeaseRequest{
		LeaseID: l.id, Fingerprint: j.fingerprint, Spec: j.spec, Cells: l.cells,
	})
	if err != nil {
		return protocolError{err}
	}
	lctx, cancel := context.WithTimeout(ctx, c.cfg.LeaseTimeout)
	defer cancel()
	resp, err := c.workers[wi].api.Do(lctx, http.MethodPost, "/v1/worker/lease", body)
	if err != nil {
		return dialError{err}
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	for {
		var ev LeaseEvent
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				err = fmt.Errorf("cluster: lease %s stream ended before done", l.id)
			}
			return streamError{err}
		}
		switch ev.Event {
		case "progress":
			j.fan.Update(l.id, progress.Counts{Done: ev.DoneTrials, DonePoints: ev.DonePoints})
		case "cell":
			if err := c.acceptCell(j, l, ev); err != nil {
				return err
			}
		case "done":
			return nil
		case "error":
			return execError{fmt.Errorf("worker %s, lease %s: %s", c.workers[wi].base, l.id, ev.Error)}
		default:
			return protocolError{fmt.Errorf("cluster: lease %s: unknown event %q", l.id, ev.Event)}
		}
	}
}

// acceptCell merges one completed cell: first completion wins and is
// checkpointed; later ones (steal races, replays) are discarded as
// duplicates after asserting they carry the same content-addressed key.
func (c *Coordinator) acceptCell(j *job, l *lease, ev LeaseEvent) error {
	if ev.Index < 0 || ev.Index >= len(j.plan) || ev.Point == nil {
		return protocolError{fmt.Errorf("cluster: lease %s: malformed cell event (index %d)", l.id, ev.Index)}
	}
	pc := j.plan[ev.Index]
	if ev.Key != pc.Key {
		// Past the fingerprint handshake this cannot happen unless the
		// worker is broken; merging would risk silently wrong results.
		return protocolError{fmt.Errorf("cluster: lease %s cell %d: key mismatch (worker %q, plan %q)", l.id, ev.Index, ev.Key, pc.Key)}
	}
	j.mu.Lock()
	l.completed[ev.Index] = true
	if j.done[ev.Index] {
		j.mu.Unlock()
		c.mu.Lock()
		c.stats.CellsDuplicate++
		c.mu.Unlock()
		return nil
	}
	j.done[ev.Index] = true
	j.remaining--
	j.results[ev.Index] = mc.CellResult{
		Bench: pc.Cell.Bench.Name, Model: pc.Cell.Model, Cached: ev.Cached, Point: *ev.Point,
	}
	l.acceptedTrials += ev.Point.Trials
	l.acceptedPoints++
	j.cond.Broadcast()
	j.mu.Unlock()

	c.mu.Lock()
	c.stats.CellsCompleted++
	c.mu.Unlock()

	if c.store != nil {
		// Checkpoint coordinator-side so a restarted coordinator resumes
		// this grid from its own disk, independent of worker caches.
		if blob, err := artifact.EncodeGob(*ev.Point); err == nil {
			_ = c.store.Put(artifact.KindGridCell, pc.Key, blob)
		}
	}
	return nil
}

// finishLease retires a lease: settle its accepted progress, requeue
// whatever it leaves uncovered, and wake the other pull loops.
func (c *Coordinator) finishLease(j *job, l *lease, lerr error) {
	j.mu.Lock()
	delete(j.inflight, l.id)
	j.fan.Close(l.id, progress.Counts{Done: l.acceptedTrials, DonePoints: l.acceptedPoints})
	var requeued int64
	for _, idx := range l.cells {
		// A cell is uncovered if nobody reported it and no thief owns
		// it; a successful lease leaves none (stolen cells excepted —
		// the thief's lease covers those).
		if !l.completed[idx] && !l.stolen[idx] && !j.done[idx] {
			j.queue = append(j.queue, idx)
			requeued++
		}
	}
	j.cond.Broadcast()
	j.mu.Unlock()

	c.mu.Lock()
	if lerr != nil {
		c.stats.LeaseFailures++
	}
	c.stats.CellsReassigned += requeued
	c.mu.Unlock()
}
