package mc

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

// Benchmarks pinning the cost of per-trial quality scoring against the
// boolean-verdict baseline (the pre-quality engine, approximated by the
// qualityDisabled hook, which skips extractor calls and scores
// correct=1/0). scripts/bench_quality.sh runs both and asserts the
// quality path costs <= 10% extra; the kmeans case is the worst
// realistic extractor (it recomputes the clustering distortion of both
// membership vectors per faulting trial).

func benchSpec(b *bench.Benchmark) Spec {
	return Spec{
		System: system(),
		Bench:  b,
		Model:  core.ModelSpec{Kind: "C", Vdd: 0.7, Sigma: 0.010},
		Trials: 40,
		Seed:   7,
	}
}

func runQualityBench(b *testing.B, bm *bench.Benchmark, disabled bool) {
	b.Helper()
	spec := benchSpec(bm)
	// Warm the model/golden caches so the loop measures trial execution.
	if _, err := Run(spec, 860); err != nil {
		b.Fatal(err)
	}
	qualityDisabled = disabled
	defer func() { qualityDisabled = false }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(spec, 860); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrialsMedianQuality(b *testing.B)   { runQualityBench(b, bench.Median(), false) }
func BenchmarkTrialsMedianBoolean(b *testing.B)   { runQualityBench(b, bench.Median(), true) }
func BenchmarkTrialsKMeansQuality(b *testing.B)   { runQualityBench(b, bench.KMeans(), false) }
func BenchmarkTrialsKMeansBoolean(b *testing.B)   { runQualityBench(b, bench.KMeans(), true) }
func BenchmarkTrialsMatMult8Quality(b *testing.B) { runQualityBench(b, bench.MatMult8(), false) }
func BenchmarkTrialsMatMult8Boolean(b *testing.B) { runQualityBench(b, bench.MatMult8(), true) }
