// Package asm implements a two-pass assembler for the simulator's
// OpenRISC-flavoured assembly dialect (see internal/isa).
//
// Syntax:
//
//	; comment            # comment
//	label:
//	    l.addi  r3,r0,42
//	    l.lwz   r4,0(r3)
//	    l.sw    4(r3),r4
//	    l.bf    loop
//	    l.movhi r5,hi(table)
//	    l.ori   r5,r5,lo(table)
//	.text                 ; switch to the text section (default)
//	.data                 ; switch to the data section
//	.org  0x40000         ; set the location counter of this section
//	.word 1, 2, -3        ; 32-bit big-endian words
//	.half 1, 2            ; 16-bit values
//	.byte 1, 2            ; bytes
//	.space 64             ; zero-filled gap
//	.align 4              ; pad to a multiple of 4
//
// Immediates are decimal or 0x-hex, optionally negative. hi(sym) and
// lo(sym) extract the upper and lower halves of a symbol address for
// l.movhi / l.ori address formation. Branch and jump targets are labels
// (resolved to pc-relative word offsets) or explicit numeric offsets.
//
// In the dependency graph, asm sits directly above internal/isa (the
// instruction encodings) and below the execution layers: bench
// assembles its kernels with it, and cpu loads the resulting Programs.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Default section base addresses. The text base doubles as the reset
// vector of the simulated core.
const (
	DefaultTextBase = 0x0000100
	DefaultDataBase = 0x0040000
)

// Program is the output of the assembler: two loadable segments plus the
// symbol table.
type Program struct {
	Entry   uint32
	Text    Segment
	Data    Segment
	Symbols map[string]uint32
}

// Segment is a contiguous byte image to be loaded at Base.
type Segment struct {
	Base  uint32
	Bytes []byte
}

// End returns the first address past the segment.
func (s Segment) End() uint32 { return s.Base + uint32(len(s.Bytes)) }

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type section struct {
	base    uint32
	baseSet bool
	pc      uint32 // location counter relative to base start? absolute.
	bytes   []byte
}

type fixup struct {
	line    int
	section *section
	offset  uint32 // byte offset of the word within the section
	kind    fixKind
	symbol  string
	addend  int32
}

type fixKind uint8

const (
	fixBranch fixKind = iota // 26-bit pc-relative word offset
	fixHi                    // upper 16 bits of the symbol address
	fixLo                    // lower 16 bits of the symbol address
	fixWord                  // full 32-bit symbol address (.word label)
)

type assembler struct {
	text, data *section
	cur        *section
	symbols    map[string]uint32
	fixups     []fixup
	line       int
}

func (a *assembler) errf(format string, args ...interface{}) error {
	return &Error{Line: a.line, Msg: fmt.Sprintf(format, args...)}
}

// Assemble translates source text into a Program.
func Assemble(src string) (*Program, error) {
	a := &assembler{
		text:    &section{base: DefaultTextBase},
		data:    &section{base: DefaultDataBase},
		symbols: map[string]uint32{},
	}
	a.cur = a.text
	a.text.pc = a.text.base
	a.data.pc = a.data.base

	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		if err := a.doLine(raw); err != nil {
			return nil, err
		}
	}
	if err := a.resolve(); err != nil {
		return nil, err
	}
	p := &Program{
		Entry:   a.text.base,
		Text:    Segment{Base: a.text.base, Bytes: a.text.bytes},
		Data:    Segment{Base: a.data.base, Bytes: a.data.bytes},
		Symbols: a.symbols,
	}
	return p, nil
}

func stripComment(s string) string {
	for i, r := range s {
		if r == ';' || r == '#' {
			return s[:i]
		}
	}
	return s
}

func (a *assembler) doLine(raw string) error {
	s := strings.TrimSpace(stripComment(raw))
	for {
		if s == "" {
			return nil
		}
		// Labels; multiple labels per line are permitted.
		if i := strings.Index(s, ":"); i >= 0 && isIdent(strings.TrimSpace(s[:i])) {
			name := strings.TrimSpace(s[:i])
			if _, dup := a.symbols[name]; dup {
				return a.errf("duplicate label %q", name)
			}
			a.symbols[name] = a.cur.pc
			s = strings.TrimSpace(s[i+1:])
			continue
		}
		break
	}
	if strings.HasPrefix(s, ".") {
		return a.directive(s)
	}
	return a.instruction(s)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == '.' && i > 0 ||
			r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			r >= '0' && r <= '9' && i > 0
		if !ok {
			return false
		}
	}
	return true
}

func (a *assembler) emit32(v uint32) {
	a.cur.bytes = append(a.cur.bytes,
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	a.cur.pc += 4
}

func (a *assembler) emit16(v uint16) {
	a.cur.bytes = append(a.cur.bytes, byte(v>>8), byte(v))
	a.cur.pc += 2
}

func (a *assembler) emit8(v uint8) {
	a.cur.bytes = append(a.cur.bytes, v)
	a.cur.pc++
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func (a *assembler) directive(s string) error {
	name, rest, _ := strings.Cut(s, " ")
	rest = strings.TrimSpace(rest)
	switch name {
	case ".text":
		a.cur = a.text
	case ".data":
		a.cur = a.data
	case ".global", ".globl", ".type", ".size":
		// Accepted and ignored for source compatibility.
	case ".org":
		v, err := a.parseInt(rest)
		if err != nil {
			return err
		}
		addr := uint32(v)
		if len(a.cur.bytes) == 0 && !a.cur.baseSet {
			a.cur.base = addr
			a.cur.baseSet = true
			a.cur.pc = addr
			return nil
		}
		if addr < a.cur.pc {
			return a.errf(".org 0x%x moves backwards (pc 0x%x)", addr, a.cur.pc)
		}
		for a.cur.pc < addr {
			a.emit8(0)
		}
	case ".word":
		for _, f := range splitArgs(rest) {
			if isIdent(f) {
				a.fixups = append(a.fixups, fixup{
					line: a.line, section: a.cur,
					offset: uint32(len(a.cur.bytes)), kind: fixWord, symbol: f,
				})
				a.emit32(0)
				continue
			}
			v, err := a.parseInt(f)
			if err != nil {
				return err
			}
			a.emit32(uint32(v))
		}
	case ".half":
		for _, f := range splitArgs(rest) {
			v, err := a.parseInt(f)
			if err != nil {
				return err
			}
			if v < -0x8000 || v > 0xFFFF {
				return a.errf(".half value %d out of range", v)
			}
			a.emit16(uint16(v))
		}
	case ".byte":
		for _, f := range splitArgs(rest) {
			v, err := a.parseInt(f)
			if err != nil {
				return err
			}
			if v < -0x80 || v > 0xFF {
				return a.errf(".byte value %d out of range", v)
			}
			a.emit8(uint8(v))
		}
	case ".space":
		v, err := a.parseInt(rest)
		if err != nil {
			return err
		}
		if v < 0 {
			return a.errf(".space negative size")
		}
		for i := int64(0); i < v; i++ {
			a.emit8(0)
		}
	case ".align":
		v, err := a.parseInt(rest)
		if err != nil {
			return err
		}
		if v <= 0 || v&(v-1) != 0 {
			return a.errf(".align requires a positive power of two")
		}
		for a.cur.pc%uint32(v) != 0 {
			a.emit8(0)
		}
	default:
		return a.errf("unknown directive %s", name)
	}
	return nil
}

func (a *assembler) parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, a.errf("expected number")
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 32)
	} else {
		v, err = strconv.ParseUint(s, 10, 32)
	}
	if err != nil {
		return 0, a.errf("bad number %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

func parseReg(s string) (uint8, bool) {
	if len(s) < 2 || s[0] != 'r' {
		return 0, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return 0, false
	}
	return uint8(n), true
}

// parseMem parses "imm(rA)" operands.
func (a *assembler) parseMem(s string) (imm int32, ra uint8, err error) {
	open := strings.Index(s, "(")
	close := strings.LastIndex(s, ")")
	if open < 0 || close < open {
		return 0, 0, a.errf("bad memory operand %q", s)
	}
	immStr := strings.TrimSpace(s[:open])
	if immStr == "" {
		immStr = "0"
	}
	v, err := a.parseInt(immStr)
	if err != nil {
		return 0, 0, err
	}
	if v < -0x8000 || v > 0x7FFF {
		return 0, 0, a.errf("memory offset %d out of range", v)
	}
	r, ok := parseReg(strings.TrimSpace(s[open+1 : close]))
	if !ok {
		return 0, 0, a.errf("bad base register in %q", s)
	}
	return int32(v), r, nil
}

// immOrFixup handles plain immediates plus hi(sym)/lo(sym).
func (a *assembler) immOrFixup(s string, signed bool) (int32, error) {
	if strings.HasPrefix(s, "hi(") && strings.HasSuffix(s, ")") {
		sym := strings.TrimSpace(s[3 : len(s)-1])
		a.fixups = append(a.fixups, fixup{
			line: a.line, section: a.cur,
			offset: uint32(len(a.cur.bytes)), kind: fixHi, symbol: sym,
		})
		return 0, nil
	}
	if strings.HasPrefix(s, "lo(") && strings.HasSuffix(s, ")") {
		sym := strings.TrimSpace(s[3 : len(s)-1])
		a.fixups = append(a.fixups, fixup{
			line: a.line, section: a.cur,
			offset: uint32(len(a.cur.bytes)), kind: fixLo, symbol: sym,
		})
		return 0, nil
	}
	v, err := a.parseInt(s)
	if err != nil {
		return 0, err
	}
	if signed {
		if v < -0x8000 || v > 0x7FFF {
			return 0, a.errf("signed immediate %d out of range", v)
		}
	} else if v < 0 || v > 0xFFFF {
		return 0, a.errf("unsigned immediate %d out of range", v)
	}
	return int32(v), nil
}

var regOps = map[string]isa.Op{
	"l.add": isa.OpAdd, "l.sub": isa.OpSub, "l.mul": isa.OpMul,
	"l.and": isa.OpAnd, "l.or": isa.OpOr, "l.xor": isa.OpXor,
	"l.sll": isa.OpSll, "l.srl": isa.OpSrl, "l.sra": isa.OpSra,
}

var immOps = map[string]isa.Op{
	"l.addi": isa.OpAddi, "l.muli": isa.OpMuli, "l.andi": isa.OpAndi,
	"l.ori": isa.OpOri, "l.xori": isa.OpXori,
	"l.slli": isa.OpSlli, "l.srli": isa.OpSrli, "l.srai": isa.OpSrai,
}

var sfRegOps = map[string]isa.Op{
	"l.sfeq": isa.OpSfeq, "l.sfne": isa.OpSfne,
	"l.sfgtu": isa.OpSfgtu, "l.sfgeu": isa.OpSfgeu,
	"l.sfltu": isa.OpSfltu, "l.sfleu": isa.OpSfleu,
	"l.sfgts": isa.OpSfgts, "l.sfges": isa.OpSfges,
	"l.sflts": isa.OpSflts, "l.sfles": isa.OpSfles,
}

var sfImmOps = map[string]isa.Op{
	"l.sfeqi": isa.OpSfeqi, "l.sfnei": isa.OpSfnei,
	"l.sfgtui": isa.OpSfgtui, "l.sfltui": isa.OpSfltui,
	"l.sfgtsi": isa.OpSfgtsi, "l.sfltsi": isa.OpSfltsi,
}

var loadOps = map[string]isa.Op{
	"l.lwz": isa.OpLwz, "l.lhz": isa.OpLhz, "l.lbz": isa.OpLbz,
}

var storeOps = map[string]isa.Op{
	"l.sw": isa.OpSw, "l.sh": isa.OpSh, "l.sb": isa.OpSb,
}

var branchOps = map[string]isa.Op{
	"l.j": isa.OpJ, "l.jal": isa.OpJal, "l.bf": isa.OpBf, "l.bnf": isa.OpBnf,
}

func (a *assembler) instruction(s string) error {
	mnem, rest, _ := strings.Cut(s, " ")
	mnem = strings.ToLower(strings.TrimSpace(mnem))
	args := splitArgs(rest)
	need := func(n int) error {
		if len(args) != n {
			return a.errf("%s expects %d operands, got %d", mnem, n, len(args))
		}
		return nil
	}
	emit := func(in isa.Instr) error {
		w, err := isa.Encode(in)
		if err != nil {
			return a.errf("%v", err)
		}
		a.emit32(w)
		return nil
	}

	if op, ok := regOps[mnem]; ok {
		if err := need(3); err != nil {
			return err
		}
		rd, ok1 := parseReg(args[0])
		ra, ok2 := parseReg(args[1])
		rb, ok3 := parseReg(args[2])
		if !ok1 || !ok2 || !ok3 {
			return a.errf("%s: bad register operands", mnem)
		}
		return emit(isa.Instr{Op: op, RD: rd, RA: ra, RB: rb})
	}
	if op, ok := immOps[mnem]; ok {
		if err := need(3); err != nil {
			return err
		}
		rd, ok1 := parseReg(args[0])
		ra, ok2 := parseReg(args[1])
		if !ok1 || !ok2 {
			return a.errf("%s: bad register operands", mnem)
		}
		signed := op == isa.OpAddi || op == isa.OpMuli || op == isa.OpXori
		if op == isa.OpSlli || op == isa.OpSrli || op == isa.OpSrai {
			v, err := a.parseInt(args[2])
			if err != nil {
				return err
			}
			return emit(isa.Instr{Op: op, RD: rd, RA: ra, Imm: int32(v)})
		}
		imm, err := a.immOrFixup(args[2], signed)
		if err != nil {
			return err
		}
		return emit(isa.Instr{Op: op, RD: rd, RA: ra, Imm: imm})
	}
	if op, ok := sfRegOps[mnem]; ok {
		if err := need(2); err != nil {
			return err
		}
		ra, ok1 := parseReg(args[0])
		rb, ok2 := parseReg(args[1])
		if !ok1 || !ok2 {
			return a.errf("%s: bad register operands", mnem)
		}
		return emit(isa.Instr{Op: op, RA: ra, RB: rb})
	}
	if op, ok := sfImmOps[mnem]; ok {
		if err := need(2); err != nil {
			return err
		}
		ra, ok1 := parseReg(args[0])
		if !ok1 {
			return a.errf("%s: bad register operand", mnem)
		}
		imm, err := a.immOrFixup(args[1], true)
		if err != nil {
			return err
		}
		return emit(isa.Instr{Op: op, RA: ra, Imm: imm})
	}
	if op, ok := loadOps[mnem]; ok {
		if err := need(2); err != nil {
			return err
		}
		rd, ok1 := parseReg(args[0])
		if !ok1 {
			return a.errf("%s: bad destination register", mnem)
		}
		imm, ra, err := a.parseMem(args[1])
		if err != nil {
			return err
		}
		return emit(isa.Instr{Op: op, RD: rd, RA: ra, Imm: imm})
	}
	if op, ok := storeOps[mnem]; ok {
		if err := need(2); err != nil {
			return err
		}
		imm, ra, err := a.parseMem(args[0])
		if err != nil {
			return err
		}
		rb, ok1 := parseReg(args[1])
		if !ok1 {
			return a.errf("%s: bad source register", mnem)
		}
		return emit(isa.Instr{Op: op, RA: ra, RB: rb, Imm: imm})
	}
	if op, ok := branchOps[mnem]; ok {
		if err := need(1); err != nil {
			return err
		}
		t := args[0]
		if isIdent(t) {
			a.fixups = append(a.fixups, fixup{
				line: a.line, section: a.cur,
				offset: uint32(len(a.cur.bytes)), kind: fixBranch, symbol: t,
			})
			return emit(isa.Instr{Op: op, Imm: 0})
		}
		v, err := a.parseInt(t)
		if err != nil {
			return err
		}
		return emit(isa.Instr{Op: op, Imm: int32(v)})
	}
	switch mnem {
	case "l.jr":
		if err := need(1); err != nil {
			return err
		}
		rb, ok := parseReg(args[0])
		if !ok {
			return a.errf("l.jr: bad register")
		}
		return emit(isa.Instr{Op: isa.OpJr, RB: rb})
	case "l.movhi":
		if err := need(2); err != nil {
			return err
		}
		rd, ok := parseReg(args[0])
		if !ok {
			return a.errf("l.movhi: bad register")
		}
		imm, err := a.immOrFixup(args[1], false)
		if err != nil {
			return err
		}
		return emit(isa.Instr{Op: isa.OpMovhi, RD: rd, Imm: imm})
	case "l.nop":
		if len(args) > 1 {
			return a.errf("l.nop takes at most one operand")
		}
		var imm int32
		if len(args) == 1 {
			v, err := a.parseInt(args[0])
			if err != nil {
				return err
			}
			imm = int32(v)
		}
		return emit(isa.Instr{Op: isa.OpNop, Imm: imm})
	case "l.sys":
		if err := need(1); err != nil {
			return err
		}
		v, err := a.parseInt(args[0])
		if err != nil {
			return err
		}
		return emit(isa.Instr{Op: isa.OpSys, Imm: int32(v)})
	}
	return a.errf("unknown mnemonic %q", mnem)
}

func (a *assembler) resolve() error {
	for _, f := range a.fixups {
		addr, ok := a.symbols[f.symbol]
		if !ok {
			return &Error{Line: f.line, Msg: fmt.Sprintf("undefined symbol %q", f.symbol)}
		}
		b := f.section.bytes[f.offset : f.offset+4]
		w := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
		switch f.kind {
		case fixBranch:
			pc := f.section.base + f.offset
			diff := int64(addr) - int64(pc)
			if diff%4 != 0 {
				return &Error{Line: f.line, Msg: "branch target not word aligned"}
			}
			words := diff / 4
			if words < -(1<<25) || words >= 1<<25 {
				return &Error{Line: f.line, Msg: "branch target out of range"}
			}
			w = w&0xFC000000 | uint32(words)&0x03FFFFFF
		case fixHi:
			w = w&0xFFFF0000 | addr>>16
		case fixLo:
			w = w&0xFFFF0000 | addr&0xFFFF
		case fixWord:
			w = addr + uint32(f.addend)
		}
		b[0], b[1], b[2], b[3] = byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
	}
	return nil
}
