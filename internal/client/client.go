// Package client is the retrying HTTP client for the fisimd
// batch-simulation daemon. It sits below cmd/fisimctl and
// internal/loadgen and above nothing else in this repo — it speaks only
// the public HTTP/JSON API of docs/API.md (its wire structs are
// deliberately redeclared here rather than imported from
// internal/server, so the client stays as thin as curl and never links
// the simulation stack).
//
// The point of the package is the retry discipline, not the transport:
// transient failures (connection errors, 429, 502, 503) are retried
// with jittered exponential backoff, a server-provided Retry-After
// always overrides the computed delay, and retries are safe by
// construction — fisimd deduplicates submissions by content
// fingerprint, so resubmitting the same spec can never double-run an
// experiment; the retry just lands on the already-scheduled job.
package client

import (
	"bufio"
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SubmitResponse mirrors the daemon's POST /v1/jobs answer.
type SubmitResponse struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	State       string `json:"state"`
	Deduped     bool   `json:"deduped"`
}

// Status mirrors the status fields clients act on; unknown fields are
// ignored so the client tolerates server additions.
type Status struct {
	ID          string     `json:"id"`
	State       string     `json:"state"`
	Error       string     `json:"error"`
	Lane        string     `json:"lane"`
	Created     time.Time  `json:"created"`
	Started     *time.Time `json:"started"`
	Finished    *time.Time `json:"finished"`
	Cells       int        `json:"cells"`
	CachedCells int        `json:"cached_cells"`
}

// Terminal reports whether a status state is final.
func (s Status) Terminal() bool {
	return s.State == "done" || s.State == "failed" || s.State == "canceled"
}

// Config tunes a Client. The zero value of every field defaults sanely.
type Config struct {
	// Base is the daemon base URL, e.g. "http://localhost:8023".
	Base string
	// APIKey, when set, is sent as X-API-Key on every request — the
	// tenant identity quotas and rate limits are accounted against.
	APIKey string
	// HTTP is the underlying client (default http.DefaultClient).
	HTTP *http.Client
	// MaxAttempts bounds tries per call, first attempt included
	// (default 6). 1 disables retries.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 250ms); MaxDelay
	// caps it (default 15s). A server Retry-After above the computed
	// delay always wins.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed fixes the jitter stream for reproducible tests; 0 derives one
	// from the clock.
	Seed int64
	// Logf, when set, receives one line per retry (attempt, cause,
	// delay) — fisimctl points it at stderr.
	Logf func(format string, args ...any)
}

// Client is a retrying fisimd API client. Safe for concurrent use.
type Client struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a client over cfg.
func New(cfg Config) *Client {
	if cfg.HTTP == nil {
		cfg.HTTP = http.DefaultClient
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 6
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 250 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 15 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = entropySeed()
	}
	cfg.Base = strings.TrimRight(cfg.Base, "/")
	return &Client{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// seedCounter desynchronizes the clock-based fallback seed: clients
// built in the same nanosecond (a process fanning out workers, or many
// processes started by one orchestrator on a coarse clock) must not
// share a jitter stream, or their retries arrive as the synchronized
// herd the jitter exists to break up.
var seedCounter atomic.Uint64

// entropySeed draws a jitter seed from the OS entropy pool, falling
// back to the clock mixed with a per-process counter through a
// SplitMix64 step when the pool is unreadable.
func entropySeed() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		return int64(binary.LittleEndian.Uint64(b[:]))
	}
	z := uint64(time.Now().UnixNano()) + seedCounter.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// APIError is a non-2xx daemon answer that was not retried away:
// either a permanent status (4xx other than 429) or a transient one
// that outlived MaxAttempts.
type APIError struct {
	StatusCode int
	Status     string
	Message    string

	retryAfter time.Duration // server Retry-After hint, if any
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("%s: %s", e.Status, e.Message)
	}
	return e.Status
}

// retryable reports whether a status code is worth retrying: overload
// and gateway hiccups, not client errors.
func retryable(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoff computes the jittered exponential delay for attempt (0-based)
// honoring a server Retry-After hint as a floor: the exponential term
// jitters ±25% as usual, but the returned delay is never below the
// advertised wait — a client that comes back early lands in the same
// overload that sent it away, wasting an attempt. The floor itself
// jitters upward only (up to +25%) so a thundering herd told
// "Retry-After: 2" still does not return as one.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := c.cfg.BaseDelay << attempt
	if d > c.cfg.MaxDelay || d <= 0 {
		d = c.cfg.MaxDelay
	}
	c.mu.Lock()
	f := c.rng.Float64()
	c.mu.Unlock()
	jd := time.Duration(float64(d) * (0.75 + 0.5*f))
	if retryAfter > 0 {
		if floor := retryAfter + time.Duration(float64(retryAfter)*0.25*f); jd < floor {
			jd = floor
		}
	}
	return jd
}

// parseRetryAfter reads a Retry-After header in either RFC 9110 form:
// delta-seconds (the form fisimd emits) or an HTTP-date, evaluated
// against now. Anything else — including dates already in the past —
// yields 0, meaning "no hint".
func parseRetryAfter(h string, now time.Time) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(h); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// do issues one request per attempt, replaying the body each time, and
// retries transient failures until ctx, MaxAttempts, or success. On a
// non-retryable status it drains the error body into *APIError.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			d := c.backoff(attempt-1, parseLastRetryAfter(lastErr))
			if c.cfg.Logf != nil {
				c.cfg.Logf("retry %d/%d in %s: %v", attempt, c.cfg.MaxAttempts-1, d.Round(time.Millisecond), lastErr)
			}
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, fmt.Errorf("%w (last error: %v)", ctx.Err(), lastErr)
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.cfg.Base+path, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.cfg.APIKey != "" {
			req.Header.Set("X-API-Key", c.cfg.APIKey)
		}
		resp, err := c.cfg.HTTP.Do(req)
		if err != nil {
			// Connection-level failure: transient by assumption (the
			// submit path is idempotent under dedup, so a request that
			// died mid-flight is safe to replay).
			lastErr = err
			continue
		}
		if resp.StatusCode/100 == 2 {
			return resp, nil
		}
		apiErr := drainError(resp)
		if !retryable(resp.StatusCode) {
			return nil, apiErr
		}
		lastErr = apiErr
	}
	return nil, fmt.Errorf("client: giving up after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// drainError consumes a non-2xx body into an APIError, capturing the
// Retry-After hint.
func drainError(resp *http.Response) *APIError {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	e := &APIError{StatusCode: resp.StatusCode, Status: resp.Status}
	var wire struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &wire) == nil && wire.Error != "" {
		e.Message = wire.Error
	} else {
		e.Message = string(bytes.TrimSpace(body))
	}
	if ra := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ra > 0 {
		e.retryAfter = ra
	}
	return e
}

// retryAfter rides along inside APIError for backoff computation.
type retryAfterCarrier interface{ RetryAfterHint() time.Duration }

func (e *APIError) RetryAfterHint() time.Duration { return e.retryAfter }

// parseLastRetryAfter extracts the hint from the previous attempt's
// error, if it carried one.
func parseLastRetryAfter(err error) time.Duration {
	if c, ok := err.(retryAfterCarrier); ok {
		return c.RetryAfterHint()
	}
	return 0
}

// Do issues one API request through the retry layer and returns the
// successful response (body unread — the caller owns closing it). It is
// the building block the cluster coordinator drives worker leases with:
// every coordinator→worker call gets the same backoff, Retry-After and
// replay discipline as the public API calls, and callers that stream
// the response (NDJSON lease events, SSE) take over once the connection
// is established. The body must be replayable as given, which is why it
// is a byte slice, not a reader.
func (c *Client) Do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	return c.do(ctx, method, path, body)
}

// Watch follows a job's SSE progress stream, invoking onEvent for every
// event, until the terminal "done" event (nil), ctx expires, or the job
// disappears (a permanent API error, e.g. 404 after a daemon restart).
// A dropped stream — connection reset, daemon drain closing the stream
// mid-job — is reconnected under the client's backoff policy instead of
// surfacing the read error: every SSE event is a full snapshot and a
// terminal job re-delivers its "done" event on attach, so a reconnect
// loses nothing. MaxAttempts bounds *consecutive* failed reconnects;
// any delivered event resets the budget.
func (c *Client) Watch(ctx context.Context, id string, onEvent func(event string, data []byte)) error {
	failures := 0
	var lastErr error
	for {
		if failures > 0 {
			if failures >= c.cfg.MaxAttempts {
				return fmt.Errorf("client: stream lost after %d reconnect attempts: %w", failures, lastErr)
			}
			d := c.backoff(failures-1, parseLastRetryAfter(lastErr))
			if c.cfg.Logf != nil {
				c.cfg.Logf("stream reconnect %d/%d in %s: %v", failures, c.cfg.MaxAttempts-1, d.Round(time.Millisecond), lastErr)
			}
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return fmt.Errorf("%w (last error: %v)", ctx.Err(), lastErr)
			}
		}
		resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/events", nil)
		if err != nil {
			// do already retried transient failures; what comes back is
			// permanent (bad ID, ctx done) or out of attempts.
			return err
		}
		done, delivered, err := c.scanSSE(resp.Body, onEvent)
		resp.Body.Close()
		if done {
			return nil
		}
		if delivered {
			failures = 0
		}
		failures++
		if err == nil {
			// Clean EOF without a terminal event: the daemon ended the
			// stream early (drain). The job may still be running; resume.
			err = fmt.Errorf("client: event stream ended before job %s was terminal", id)
		}
		lastErr = err
		if ctx.Err() != nil {
			return fmt.Errorf("%w (last error: %v)", ctx.Err(), lastErr)
		}
	}
}

// scanSSE consumes one SSE connection, reporting whether the terminal
// "done" event arrived and whether any event was delivered at all.
func (c *Client) scanSSE(r io.Reader, onEvent func(event string, data []byte)) (done, delivered bool, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			onEvent(event, []byte(strings.TrimPrefix(line, "data: ")))
			delivered = true
			if event == "done" {
				return true, true, nil
			}
		}
	}
	return false, delivered, sc.Err()
}

// Submit posts a job spec (any JSON-marshalable value) and returns the
// daemon's answer. Retries are idempotent: the daemon dedups by content
// fingerprint, so N replays of one spec still yield one execution.
func (c *Client) Submit(ctx context.Context, spec any) (SubmitResponse, error) {
	blob, err := json.Marshal(spec)
	if err != nil {
		return SubmitResponse{}, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", blob)
	if err != nil {
		return SubmitResponse{}, err
	}
	defer resp.Body.Close()
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return SubmitResponse{}, err
	}
	return sr, nil
}

// Status fetches a job's status.
func (c *Client) Status(ctx context.Context, id string) (Status, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Status{}, err
	}
	return st, nil
}

// Wait long-polls until the job is terminal or ctx expires. Each poll
// bounds its server-side wait so a draining daemon releases us; the
// loop (and its retry layer) carries on until a terminal state.
func (c *Client) Wait(ctx context.Context, id string) (Status, error) {
	for {
		resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"?wait=30s", nil)
		if err != nil {
			return Status{}, err
		}
		var st Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return Status{}, err
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// Result streams a finished job's result in the given format ("json" or
// "csv") to w.
func (c *Client) Result(ctx context.Context, id, format string, w io.Writer) error {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result?format="+format, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(w, resp.Body)
	return err
}

// Cancel cancels a job, reporting whether the daemon actually cancelled
// it (false for already-terminal jobs).
func (c *Client) Cancel(ctx context.Context, id string) (bool, error) {
	resp, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	var cr struct {
		Canceled bool `json:"canceled"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return false, err
	}
	return cr.Canceled, nil
}

// GetJSON streams an arbitrary API path's body to w (list, stats) —
// the escape hatch that keeps fisimctl curl-equivalent.
func (c *Client) GetJSON(ctx context.Context, path string, w io.Writer) error {
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(w, resp.Body)
	return err
}
